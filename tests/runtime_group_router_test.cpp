// Golden tests for the frozen group→shard routing contract.
//
// GroupIdHash and GroupRouter::ShardFor are part of the wire contract of
// the sharded remote runtime: clients may cache shard assignments and a
// future MOVED redirect protocol depends on every binary agreeing on the
// mapping. The pinned values below must NEVER change. If this test fails
// after an edit to group_router.cpp, revert the edit — do not re-pin.

#include "runtime/group_router.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace avoc::runtime {
namespace {

struct GoldenHash {
  const char* group;
  uint64_t hash;
};

// Generated once from the frozen implementation; see file comment.
constexpr GoldenHash kGoldenHashes[] = {
    {"", 0xCC949AE761913C7Dull},
    {"a", 0x7820366B0B476E92ull},
    {"sensor", 0xEB01EACB31F8BCC2ull},
    {"group-0", 0xC6F5EBCC9DBED62Aull},
    {"group-1", 0x816E07B1D668C76Eull},
    {"group-2", 0x354661204762755Full},
    {"group-3", 0xF26C2EC8F7E9671Bull},
    {"group-7", 0xBB4EF60393BA4296ull},
    {"g/42", 0x585D6E29ABE988EEull},
    {"fleet.eu.west", 0x154A2DBDF439E7B1ull},
    {"fleet.us.east", 0xBA344935217993AEull},
    {"temperature", 0x6705786D8B288279ull},
    {"humidity", 0x6D18964367ABACADull},
    {"co2", 0x16ACE8A4776BCAFBull},
};

TEST(GroupRouterGolden, HashValuesArePinned) {
  for (const GoldenHash& g : kGoldenHashes) {
    EXPECT_EQ(GroupIdHash(g.group), g.hash) << "group \"" << g.group << '"';
  }
}

TEST(GroupRouterGolden, ShardAssignmentsArePinned) {
  // One row per shard count, one entry per group in kGoldenHashes order.
  const std::map<size_t, std::vector<size_t>> expected = {
      {2, {1, 0, 1, 1, 1, 0, 1, 1, 0, 0, 1, 0, 0, 0}},
      {3, {2, 1, 2, 2, 1, 0, 2, 2, 1, 0, 2, 1, 1, 0}},
      {4, {3, 1, 3, 3, 2, 0, 3, 2, 1, 0, 2, 1, 1, 0}},
      {8, {6, 3, 7, 6, 4, 1, 7, 5, 2, 0, 5, 3, 3, 0}},
  };
  for (const auto& [shards, row] : expected) {
    GroupRouter router(shards);
    ASSERT_EQ(row.size(), std::size(kGoldenHashes));
    for (size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(router.ShardFor(kGoldenHashes[i].group), row[i])
          << "shards=" << shards << " group \"" << kGoldenHashes[i].group
          << '"';
    }
  }
}

TEST(GroupRouter, SingleShardMapsEverythingToZero) {
  GroupRouter router(1);
  for (const GoldenHash& g : kGoldenHashes) {
    EXPECT_EQ(router.ShardFor(g.group), 0u);
  }
}

TEST(GroupRouter, ShardForIsAlwaysInRange) {
  for (size_t shards = 1; shards <= 16; ++shards) {
    GroupRouter router(shards);
    for (int i = 0; i < 500; ++i) {
      const std::string group = "load-" + std::to_string(i);
      EXPECT_LT(router.ShardFor(group), shards);
    }
  }
}

TEST(GroupRouter, AssignmentIsReasonablyBalanced) {
  // 4096 synthetic groups over 8 shards: each shard should land within a
  // loose factor of the ideal 512. Guards against a degenerate hash.
  GroupRouter router(8);
  std::vector<size_t> counts(8, 0);
  for (int i = 0; i < 4096; ++i) {
    ++counts[router.ShardFor("device-" + std::to_string(i))];
  }
  for (size_t shard = 0; shard < counts.size(); ++shard) {
    EXPECT_GT(counts[shard], 256u) << "shard " << shard;
    EXPECT_LT(counts[shard], 1024u) << "shard " << shard;
  }
}

TEST(GroupRouter, RangesTileTheGroupSpace) {
  // RangeFor must partition [0, group_count) into contiguous,
  // non-overlapping, exhaustive ranges in shard order.
  for (size_t shards = 1; shards <= 9; ++shards) {
    GroupRouter router(shards);
    for (size_t groups : {0u, 1u, 5u, 8u, 9u, 64u, 1000u}) {
      size_t cursor = 0;
      for (size_t shard = 0; shard < shards; ++shard) {
        const ShardRange range = router.RangeFor(shard, groups);
        EXPECT_EQ(range.begin, cursor)
            << "shards=" << shards << " groups=" << groups
            << " shard=" << shard;
        EXPECT_LE(range.begin, range.end);
        cursor = range.end;
      }
      EXPECT_EQ(cursor, groups) << "shards=" << shards << " groups=" << groups;
    }
  }
}

TEST(GroupRouter, RangeSizesDifferByAtMostOne) {
  for (size_t shards = 1; shards <= 9; ++shards) {
    GroupRouter router(shards);
    for (size_t groups : {1u, 7u, 8u, 9u, 100u}) {
      size_t min_size = groups, max_size = 0;
      for (size_t shard = 0; shard < shards; ++shard) {
        const ShardRange range = router.RangeFor(shard, groups);
        const size_t size = range.end - range.begin;
        min_size = size < min_size ? size : min_size;
        max_size = size > max_size ? size : max_size;
      }
      EXPECT_LE(max_size - min_size, 1u)
          << "shards=" << shards << " groups=" << groups;
    }
  }
}

TEST(GroupRouter, ShardForIndexAgreesWithRanges) {
  for (size_t shards = 1; shards <= 9; ++shards) {
    GroupRouter router(shards);
    for (size_t groups : {1u, 5u, 9u, 64u}) {
      for (size_t g = 0; g < groups; ++g) {
        const size_t shard = router.ShardForIndex(g, groups);
        const ShardRange range = router.RangeFor(shard, groups);
        EXPECT_GE(g, range.begin)
            << "shards=" << shards << " groups=" << groups << " g=" << g;
        EXPECT_LT(g, range.end)
            << "shards=" << shards << " groups=" << groups << " g=" << g;
      }
    }
  }
}

TEST(GroupRouter, OutOfRangeShardGetsEmptyRange) {
  GroupRouter router(3);
  const ShardRange range = router.RangeFor(7, 10);
  EXPECT_EQ(range.begin, range.end);
}

}  // namespace
}  // namespace avoc::runtime
