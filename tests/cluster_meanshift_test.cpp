#include "cluster/meanshift.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace avoc::cluster {
namespace {

TEST(MeanShiftTest, RejectsBadArguments) {
  const std::vector<Point> empty;
  EXPECT_FALSE(MeanShift(empty).ok());
  const std::vector<Point> points = {{1.0}, {2.0}};
  MeanShiftOptions bad;
  bad.bandwidth = 0.0;
  EXPECT_FALSE(MeanShift(points, bad).ok());
  const std::vector<Point> ragged = {{1.0}, {2.0, 3.0}};
  EXPECT_FALSE(MeanShift(ragged).ok());
}

TEST(MeanShiftTest, SingleClusterConvergesToMean) {
  Rng rng(1);
  std::vector<Point> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({rng.Gaussian(5.0, 0.2), rng.Gaussian(-3.0, 0.2)});
  }
  MeanShiftOptions options;
  options.bandwidth = 2.0;
  auto result = MeanShift(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cluster_count(), 1u);
  EXPECT_NEAR(result->modes[0][0], 5.0, 0.15);
  EXPECT_NEAR(result->modes[0][1], -3.0, 0.15);
}

TEST(MeanShiftTest, SeparatesTwoModes) {
  Rng rng(2);
  std::vector<Point> points;
  for (int i = 0; i < 50; ++i) points.push_back({rng.Gaussian(0.0, 0.3)});
  for (int i = 0; i < 50; ++i) points.push_back({rng.Gaussian(10.0, 0.3)});
  MeanShiftOptions options;
  options.bandwidth = 1.0;
  auto result = MeanShift(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cluster_count(), 2u);
  EXPECT_EQ(result->labels[0], result->labels[10]);
  EXPECT_NE(result->labels[0], result->labels[60]);
}

TEST(MeanShiftTest, FlatKernelWorks) {
  std::vector<Point> points = {{0.0}, {0.1}, {0.2}, {10.0}, {10.1}};
  MeanShiftOptions options;
  options.bandwidth = 1.0;
  options.kernel = Kernel::kFlat;
  auto result = MeanShift(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cluster_count(), 2u);
}

TEST(MeanShiftTest, LabelsIndexModes) {
  std::vector<Point> points = {{0.0}, {20.0}, {0.1}};
  MeanShiftOptions options;
  options.bandwidth = 1.0;
  auto result = MeanShift(points, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->labels.size(), 3u);
  for (const size_t label : result->labels) {
    EXPECT_LT(label, result->modes.size());
  }
  EXPECT_EQ(result->labels[0], result->labels[2]);
  EXPECT_NE(result->labels[0], result->labels[1]);
}

TEST(MeanShiftTest, MergeThresholdControlsModeFusion) {
  std::vector<Point> points = {{0.0}, {1.0}};
  MeanShiftOptions narrow;
  narrow.bandwidth = 0.3;        // each point is its own mode
  narrow.merge_threshold = 0.1;
  auto separate = MeanShift(points, narrow);
  ASSERT_TRUE(separate.ok());
  EXPECT_EQ(separate->cluster_count(), 2u);

  MeanShiftOptions wide = narrow;
  wide.merge_threshold = 5.0;    // everything merges
  auto merged = MeanShift(points, wide);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->cluster_count(), 1u);
}

}  // namespace
}  // namespace avoc::cluster
