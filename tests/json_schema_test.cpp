#include "json/schema.h"

#include <gtest/gtest.h>

#include "json/parse.h"

namespace avoc::json {
namespace {

bool Valid(std::string_view schema, std::string_view instance) {
  auto report = ValidateSchemaText(schema, instance);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() && report->ok();
}

std::string FirstViolation(std::string_view schema,
                           std::string_view instance) {
  auto report = ValidateSchemaText(schema, instance);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  return report->violations.empty() ? ""
                                    : report->violations.front().path + ": " +
                                          report->violations.front().message;
}

TEST(JsonSchemaTest, TypeKeyword) {
  EXPECT_TRUE(Valid(R"({"type":"number"})", "1.5"));
  EXPECT_FALSE(Valid(R"({"type":"number"})", "\"x\""));
  EXPECT_TRUE(Valid(R"({"type":"integer"})", "3"));
  EXPECT_FALSE(Valid(R"({"type":"integer"})", "3.5"));
  EXPECT_TRUE(Valid(R"({"type":"string"})", "\"x\""));
  EXPECT_TRUE(Valid(R"({"type":"boolean"})", "true"));
  EXPECT_TRUE(Valid(R"({"type":"null"})", "null"));
  EXPECT_TRUE(Valid(R"({"type":"array"})", "[]"));
  EXPECT_TRUE(Valid(R"({"type":"object"})", "{}"));
}

TEST(JsonSchemaTest, TypeUnion) {
  const char* schema = R"({"type":["number","string"]})";
  EXPECT_TRUE(Valid(schema, "1"));
  EXPECT_TRUE(Valid(schema, "\"x\""));
  EXPECT_FALSE(Valid(schema, "true"));
}

TEST(JsonSchemaTest, EnumAndConst) {
  EXPECT_TRUE(Valid(R"({"enum":["A","B"]})", "\"A\""));
  EXPECT_FALSE(Valid(R"({"enum":["A","B"]})", "\"C\""));
  EXPECT_TRUE(Valid(R"({"const":42})", "42"));
  EXPECT_FALSE(Valid(R"({"const":42})", "43"));
}

TEST(JsonSchemaTest, NumericBounds) {
  EXPECT_TRUE(Valid(R"({"minimum":0,"maximum":100})", "50"));
  EXPECT_FALSE(Valid(R"({"minimum":0})", "-1"));
  EXPECT_FALSE(Valid(R"({"maximum":100})", "101"));
  EXPECT_TRUE(Valid(R"({"minimum":0})", "0"));
  EXPECT_FALSE(Valid(R"({"exclusiveMinimum":0})", "0"));
  EXPECT_TRUE(Valid(R"({"exclusiveMinimum":0})", "0.001"));
  EXPECT_FALSE(Valid(R"({"exclusiveMaximum":10})", "10"));
}

TEST(JsonSchemaTest, StringLength) {
  EXPECT_TRUE(Valid(R"({"minLength":1,"maxLength":3})", "\"ab\""));
  EXPECT_FALSE(Valid(R"({"minLength":1})", "\"\""));
  EXPECT_FALSE(Valid(R"({"maxLength":2})", "\"abc\""));
}

TEST(JsonSchemaTest, ArrayConstraints) {
  EXPECT_TRUE(Valid(R"({"minItems":1,"maxItems":3})", "[1,2]"));
  EXPECT_FALSE(Valid(R"({"minItems":1})", "[]"));
  EXPECT_FALSE(Valid(R"({"maxItems":1})", "[1,2]"));
  EXPECT_TRUE(Valid(R"({"items":{"type":"number"}})", "[1,2,3]"));
  EXPECT_FALSE(Valid(R"({"items":{"type":"number"}})", "[1,\"x\"]"));
}

TEST(JsonSchemaTest, ObjectPropertiesAndRequired) {
  const char* schema = R"({
    "type": "object",
    "required": ["name"],
    "properties": {
      "name": {"type": "string"},
      "age": {"type": "integer", "minimum": 0}
    }
  })";
  EXPECT_TRUE(Valid(schema, R"({"name":"x","age":3})"));
  EXPECT_FALSE(Valid(schema, R"({"age":3})"));         // missing required
  EXPECT_FALSE(Valid(schema, R"({"name":1})"));        // wrong type
  EXPECT_FALSE(Valid(schema, R"({"name":"x","age":-1})"));
}

TEST(JsonSchemaTest, AdditionalPropertiesFalse) {
  const char* schema = R"({
    "type": "object",
    "properties": {"a": {"type": "number"}},
    "additionalProperties": false
  })";
  EXPECT_TRUE(Valid(schema, R"({"a":1})"));
  EXPECT_FALSE(Valid(schema, R"({"a":1,"b":2})"));
}

TEST(JsonSchemaTest, AdditionalPropertiesSchema) {
  const char* schema = R"({
    "type": "object",
    "additionalProperties": {"type": "number"}
  })";
  EXPECT_TRUE(Valid(schema, R"({"x":1,"y":2})"));
  EXPECT_FALSE(Valid(schema, R"({"x":"s"})"));
}

TEST(JsonSchemaTest, AnyOf) {
  const char* schema =
      R"({"anyOf":[{"type":"number"},{"type":"string","minLength":2}]})";
  EXPECT_TRUE(Valid(schema, "1"));
  EXPECT_TRUE(Valid(schema, "\"ab\""));
  EXPECT_FALSE(Valid(schema, "\"a\""));
  EXPECT_FALSE(Valid(schema, "true"));
}

TEST(JsonSchemaTest, BooleanSchemas) {
  EXPECT_TRUE(Valid("true", "42"));
  EXPECT_FALSE(Valid("false", "42"));
}

TEST(JsonSchemaTest, NestedPathsInViolations) {
  const char* schema = R"({
    "type": "object",
    "properties": {
      "outer": {
        "type": "object",
        "properties": {"inner": {"type": "number"}}
      }
    }
  })";
  const std::string violation =
      FirstViolation(schema, R"({"outer":{"inner":"no"}})");
  EXPECT_NE(violation.find("/outer/inner"), std::string::npos) << violation;
}

TEST(JsonSchemaTest, TypeMismatchSuppressesNoiseChecks) {
  // A string where an object was expected: exactly one violation, not a
  // cascade of required/properties failures.
  const char* schema = R"({
    "type": "object",
    "required": ["a", "b", "c"]
  })";
  auto report = ValidateSchemaText(schema, "\"oops\"");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->violations.size(), 1u);
}

TEST(JsonSchemaTest, MalformedSchemaIsAnError) {
  EXPECT_FALSE(ValidateSchemaText(R"({"type":3})", "1").ok());
  EXPECT_FALSE(ValidateSchemaText(R"({"enum":5})", "1").ok());
  EXPECT_FALSE(ValidateSchemaText(R"({"required":"name"})", "{}").ok());
  EXPECT_FALSE(ValidateSchemaText("[1]", "{}").ok());
}

TEST(JsonSchemaTest, ReportToStringListsEverything) {
  const char* schema = R"({
    "type": "object",
    "required": ["a"],
    "properties": {"b": {"type": "number"}}
  })";
  auto report = ValidateSchemaText(schema, R"({"b":"x"})");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->violations.size(), 2u);
  const std::string text = report->ToString();
  EXPECT_NE(text.find("required"), std::string::npos);
  EXPECT_NE(text.find("/b"), std::string::npos);
}

TEST(JsonSchemaTest, UnknownKeywordsIgnored) {
  EXPECT_TRUE(Valid(R"({"type":"number","$comment":"hi","format":"x"})",
                    "1"));
}

}  // namespace
}  // namespace avoc::json
