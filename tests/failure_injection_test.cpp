// Failure injection on the runtime's persistence and I/O paths: the
// voter must keep fusing when its datastore or filesystem misbehaves,
// and surface the failure through status instead of crashing or
// corrupting results.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/algorithms.h"
#include "data/csv.h"
#include "runtime/nodes.h"
#include "vdx/registry.h"

namespace avoc {
namespace {

TEST(FailureInjectionTest, UnwritableStoreSurfacesButVotingContinues) {
  // A store rooted in a non-existent directory fails every flush.
  auto store = runtime::HistoryStore::Open(
      "/nonexistent-dir-for-avoc-test/history.json");
  ASSERT_TRUE(store.ok());  // opening a fresh (missing) file is fine

  runtime::GroupChannels channels;
  std::vector<runtime::OutputMessage> outputs;
  channels.outputs.Subscribe(
      [&](const runtime::OutputMessage& m) { outputs.push_back(m); });
  runtime::VoterOptions options;
  options.group = "doomed";
  options.store = &*store;
  auto engine = core::MakeEngine(core::AlgorithmId::kAvoc, 3);
  ASSERT_TRUE(engine.ok());
  runtime::VoterNode voter(std::move(*engine), channels, options);

  core::Round round = {10.0, 10.1, 9.9};
  channels.rounds.Publish({0, round});
  // The vote itself succeeded and reached the sink...
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_NEAR(*outputs[0].result.value, 10.0, 0.2);
  // ...and the persistence failure is visible, not swallowed.
  EXPECT_FALSE(voter.last_status().ok());
  EXPECT_EQ(voter.last_status().code(), ErrorCode::kIoError);
}

TEST(FailureInjectionTest, CorruptHistoryFileRejectedAtOpen) {
  const auto dir =
      std::filesystem::temp_directory_path() / "avoc_failure_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "history.json").string();
  {
    std::ofstream out(path);
    out << "{ \"group\": { \"records\": \"not-an-array\" } }";
  }
  EXPECT_FALSE(runtime::HistoryStore::Open(path).ok());
  std::filesystem::remove_all(dir);
}

TEST(FailureInjectionTest, MismatchedSnapshotArityIsIgnoredOnRestore) {
  // A snapshot recorded for a 5-module group must not poison a 3-module
  // voter that reuses the group name.
  runtime::HistoryStore store;
  runtime::HistorySnapshot snapshot;
  snapshot.records = {0.0, 0.0, 0.0, 0.0, 0.0};
  snapshot.rounds = 99;
  ASSERT_TRUE(store.Put("renamed", snapshot).ok());

  runtime::GroupChannels channels;
  std::vector<runtime::OutputMessage> outputs;
  channels.outputs.Subscribe(
      [&](const runtime::OutputMessage& m) { outputs.push_back(m); });
  runtime::VoterOptions options;
  options.group = "renamed";
  options.store = &store;
  auto engine = core::MakeEngine(core::AlgorithmId::kHybrid, 3);
  ASSERT_TRUE(engine.ok());
  runtime::VoterNode voter(std::move(*engine), channels, options);
  // Records must still be the fresh-set 1.0, not the stale zeros.
  core::Round round = {5.0, 5.0, 5.0};
  channels.rounds.Publish({0, round});
  ASSERT_EQ(outputs.size(), 1u);
  for (const double h : outputs[0].result.history) {
    EXPECT_DOUBLE_EQ(h, 1.0);
  }
}

TEST(FailureInjectionTest, WriteCsvToUnwritablePathFails) {
  data::CsvTable table;
  table.header = {"a"};
  table.rows = {{"1"}};
  EXPECT_FALSE(
      data::WriteCsvFile("/nonexistent-dir-for-avoc-test/out.csv", table)
          .ok());
}

TEST(FailureInjectionTest, RegistryDirectoryWithBrokenSpecFailsLoud) {
  const auto dir =
      std::filesystem::temp_directory_path() / "avoc_failure_registry";
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir / "good.json");
    out << R"({"algorithm_name": "fine"})";
  }
  {
    std::ofstream out(dir / "broken.json");
    out << "{ definitely not json";
  }
  vdx::SpecRegistry registry;
  auto loaded = registry.LoadDirectory(dir.string());
  EXPECT_FALSE(loaded.ok());  // fail the whole load, not silently skip
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace avoc
