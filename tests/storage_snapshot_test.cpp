// Hostile-input coverage for the portable history-snapshot codec
// (storage/snapshot.h) — the byte format a voter group's reliability
// ledger travels in during migration handoff and operator export/import.
//
// The contract: every double round-trips BIT-exactly (NaN payloads,
// infinities, -0.0), an empty group round-trips, and a torn, truncated,
// or corrupted file decodes to a typed ParseError with the importing
// store left untouched.  The mangling menu mirrors the storage engine's
// corruption soak (storage_corruption_soak_test.cpp).
#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "storage/backend.h"
#include "storage/snapshot.h"
#include "util/rng.h"

namespace avoc::storage {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& tag) {
  return (fs::temp_directory_path() /
          ("avoc_snapshot_" + std::to_string(::getpid()) + "_" + tag))
      .string();
}

/// Minimal in-memory HistoryBackend: just enough store to drive the
/// file-level export/import seams without a storage engine on disk.
class MapBackend final : public HistoryBackend {
 public:
  Status Put(const std::string& group,
             const HistorySnapshot& snapshot) override {
    snapshots_[group] = snapshot;
    return Status::Ok();
  }
  Result<HistorySnapshot> Get(const std::string& group) const override {
    const auto it = snapshots_.find(group);
    if (it == snapshots_.end()) return NotFoundError("no group " + group);
    return it->second;
  }
  Result<bool> Erase(const std::string& group) override {
    return snapshots_.erase(group) != 0;
  }
  std::vector<std::string> Groups() const override {
    std::vector<std::string> names;
    for (const auto& [name, snapshot] : snapshots_) names.push_back(name);
    return names;
  }
  size_t size() const override { return snapshots_.size(); }

 private:
  std::map<std::string, HistorySnapshot> snapshots_;
};

bool BitIdentical(const HistorySnapshot& a, const HistorySnapshot& b) {
  if (a.rounds != b.rounds || a.records.size() != b.records.size()) {
    return false;
  }
  for (size_t i = 0; i < a.records.size(); ++i) {
    if (std::bit_cast<uint64_t>(a.records[i]) !=
        std::bit_cast<uint64_t>(b.records[i])) {
      return false;
    }
  }
  return true;
}

HistorySnapshot HostileSnapshot() {
  HistorySnapshot snapshot;
  snapshot.records = {0.0,
                      -0.0,
                      std::numeric_limits<double>::quiet_NaN(),
                      std::numeric_limits<double>::signaling_NaN(),
                      std::numeric_limits<double>::infinity(),
                      -std::numeric_limits<double>::infinity(),
                      std::numeric_limits<double>::denorm_min(),
                      std::numeric_limits<double>::max(),
                      1.0 / 3.0};
  snapshot.rounds = 0xDEADBEEFu;
  return snapshot;
}

TEST(SnapshotCodecTest, SpecialDoublesRoundTripBitExactly) {
  const HistorySnapshot snapshot = HostileSnapshot();
  auto decoded = DecodeHistorySnapshot(EncodeHistorySnapshot(snapshot));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(BitIdentical(snapshot, *decoded));
}

TEST(SnapshotCodecTest, EmptyGroupRoundTrips) {
  HistorySnapshot empty;
  auto decoded = DecodeHistorySnapshot(EncodeHistorySnapshot(empty));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->records.empty());
  EXPECT_EQ(decoded->rounds, 0u);
}

TEST(SnapshotCodecTest, EveryTruncationFailsTyped) {
  const std::string good = EncodeHistorySnapshot(HostileSnapshot());
  for (size_t len = 0; len < good.size(); ++len) {
    auto decoded = DecodeHistorySnapshot(std::string_view(good).substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "len=" << len;
    EXPECT_EQ(decoded.status().code(), ErrorCode::kParseError)
        << "len=" << len << ": " << decoded.status().ToString();
  }
}

TEST(SnapshotCodecTest, BitFlipsCrcTrailingBytesAndBadMagicFailTyped) {
  const std::string good = EncodeHistorySnapshot(HostileSnapshot());
  avoc::Rng rng(0x5A55ull);
  for (int i = 0; i < 500; ++i) {
    std::string bytes = good;
    bytes[rng.UniformInt(bytes.size())] ^=
        static_cast<char>(1u << rng.UniformInt(8));
    auto decoded = DecodeHistorySnapshot(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), ErrorCode::kParseError);
  }
  EXPECT_FALSE(DecodeHistorySnapshot(good + "tail").ok());
  EXPECT_FALSE(DecodeHistorySnapshot("").ok());
  EXPECT_FALSE(DecodeHistorySnapshot("not a snapshot at all").ok());
  std::string wrong_magic = good;
  wrong_magic[0] = 'X';
  auto decoded = DecodeHistorySnapshot(wrong_magic);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kParseError);
}

TEST(SnapshotCodecTest, FuzzBytesNeverFault) {
  avoc::Rng rng(0xFADE5ull);
  for (int iter = 0; iter < 3000; ++iter) {
    std::string bytes;
    const size_t len = rng.UniformInt(160);
    bytes.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng()));
    }
    // Must return ok or a typed error, never crash or read out of bounds.
    auto decoded = DecodeHistorySnapshot(bytes);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), ErrorCode::kParseError);
    }
  }
}

TEST(SnapshotFileTest, ExportImportRoundTripsThroughTheBackendSeam) {
  MapBackend store;
  ASSERT_TRUE(store.Put("lights", HostileSnapshot()).ok());
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(ExportSnapshotToFile(store, "lights", path).ok());

  MapBackend other;
  ASSERT_TRUE(ImportSnapshotFromFile(other, "copy", path).ok());
  auto imported = other.Get("copy");
  ASSERT_TRUE(imported.ok());
  EXPECT_TRUE(BitIdentical(HostileSnapshot(), *imported));
  fs::remove(path);
}

TEST(SnapshotFileTest, ExportOfMissingGroupIsNotFound) {
  MapBackend store;
  const std::string path = TempPath("missing");
  const Status status = ExportSnapshotToFile(store, "ghost", path);
  EXPECT_EQ(status.code(), ErrorCode::kNotFound) << status.ToString();
  EXPECT_FALSE(fs::exists(path));
}

TEST(SnapshotFileTest, TornFileLeavesTheStoreUntouched) {
  MapBackend store;
  ASSERT_TRUE(store.Put("lights", HostileSnapshot()).ok());
  const std::string path = TempPath("torn");
  ASSERT_TRUE(ExportSnapshotToFile(store, "lights", path).ok());

  // Tear the file at every plausible sync point and re-import.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  avoc::Rng rng(0x7042ull);
  for (int i = 0; i < 32; ++i) {
    const size_t keep = rng.UniformInt(bytes.size());
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    MapBackend target;
    ASSERT_TRUE(target.Put("keepme", HistorySnapshot{{1.0}, 1}).ok());
    const Status status = ImportSnapshotFromFile(target, "lights", path);
    EXPECT_FALSE(status.ok()) << "keep=" << keep;
    // All-or-nothing: no partial group appeared, nothing else vanished.
    EXPECT_FALSE(target.Get("lights").ok()) << "keep=" << keep;
    EXPECT_TRUE(target.Get("keepme").ok());
    EXPECT_EQ(target.size(), 1u);
  }
  fs::remove(path);
}

TEST(SnapshotFileTest, ImportOfMissingFileIsTypedError) {
  MapBackend store;
  const Status status =
      ImportSnapshotFromFile(store, "lights", TempPath("never_written"));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(store.size(), 0u);
}

// Seeded soak across the whole mangle menu, mirroring the storage
// engine's corruption soak: decode must recover-or-reject, never fault.
TEST(SnapshotFileTest, SeededCorruptionSoakRecoversOrRejects) {
  size_t rejected = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    avoc::Rng rng(0x5EED ^ (seed * 0x9E3779B97F4A7C15ull));
    HistorySnapshot snapshot;
    const size_t modules = rng.UniformInt(8);
    for (size_t m = 0; m < modules; ++m) {
      switch (rng.UniformInt(4)) {
        case 0:
          snapshot.records.push_back(std::numeric_limits<double>::quiet_NaN());
          break;
        case 1:
          snapshot.records.push_back(-0.0);
          break;
        case 2:
          snapshot.records.push_back(
              -std::numeric_limits<double>::infinity());
          break;
        default:
          snapshot.records.push_back(rng.NextDouble() * 1e9);
          break;
      }
    }
    snapshot.rounds = rng.UniformInt(1 << 20);
    std::string bytes = EncodeHistorySnapshot(snapshot);
    switch (rng.UniformInt(3)) {
      case 0:
        bytes.resize(rng.UniformInt(bytes.size() + 1));
        break;
      case 1: {
        const size_t flips = 1 + rng.UniformInt(8);
        for (size_t i = 0; i < flips && !bytes.empty(); ++i) {
          bytes[rng.UniformInt(bytes.size())] ^=
              static_cast<char>(1u << rng.UniformInt(8));
        }
        break;
      }
      default: {
        const size_t len = 1 + rng.UniformInt(32);
        for (size_t i = 0; i < len; ++i) {
          bytes.push_back(static_cast<char>(rng()));
        }
        break;
      }
    }
    auto decoded = DecodeHistorySnapshot(bytes);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), ErrorCode::kParseError)
          << "seed " << seed;
      ++rejected;
    }
    // A truncation that kept everything can still decode; any real damage
    // must be rejected by the CRC.
  }
  EXPECT_GT(rejected, 150u);
}

}  // namespace
}  // namespace avoc::storage
