#include "core/mlv.h"

#include <gtest/gtest.h>

#include <cmath>

namespace avoc::core {
namespace {

using Label = MlvEngine::Label;

MlvConfig Config(size_t space = 4) {
  MlvConfig config;
  config.output_space_size = space;
  return config;
}

MlvEngine MustCreate(size_t modules, MlvConfig config) {
  auto engine = MlvEngine::Create(modules, config);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

std::vector<Label> Round(std::initializer_list<const char*> labels) {
  std::vector<Label> round;
  for (const char* label : labels) {
    if (label == nullptr) {
      round.push_back(std::nullopt);
    } else {
      round.emplace_back(label);
    }
  }
  return round;
}

TEST(MlvTest, CreateValidates) {
  EXPECT_FALSE(MlvEngine::Create(0, Config()).ok());
  MlvConfig bad = Config();
  bad.output_space_size = 1;
  EXPECT_FALSE(MlvEngine::Create(3, bad).ok());
  bad = Config();
  bad.reliability_clamp = 0.6;
  EXPECT_FALSE(MlvEngine::Create(3, bad).ok());
  bad = Config();
  bad.quorum_fraction = 0.0;
  EXPECT_FALSE(MlvEngine::Create(3, bad).ok());
}

TEST(MlvTest, UnanimousRound) {
  MlvEngine engine = MustCreate(3, Config());
  auto result = engine.CastVote(Round({"x", "x", "x"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->value, "x");
  EXPECT_EQ(result->outcome, RoundOutcome::kVoted);
}

TEST(MlvTest, FreshModulesActAsPlurality) {
  MlvEngine engine = MustCreate(5, Config());
  auto result = engine.CastVote(Round({"a", "a", "a", "b", "b"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->value, "a");
}

TEST(MlvTest, ReliabilityLearnsOverRounds) {
  MlvEngine engine = MustCreate(3, Config());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.CastVote(Round({"up", "up", "down"})).ok());
  }
  EXPECT_GT(engine.reliability(0), 0.9);
  EXPECT_LT(engine.reliability(2), 0.2);
}

TEST(MlvTest, ReliableMinorityBeatsUnreliableMajority) {
  // Train: modules 0 and 1 are right, modules 2-4 are chronically wrong
  // (they disagree with the fused output most rounds).
  MlvEngine engine = MustCreate(5, Config(6));
  for (int i = 0; i < 30; ++i) {
    // Three mutually distinct junk values: "ok" is the unique plurality.
    std::vector<Label> round = {std::string("ok"), std::string("ok"),
                                "junk" + std::to_string(i % 3),
                                "junk" + std::to_string((i + 1) % 3),
                                "junk" + std::to_string((i + 2) % 3)};
    ASSERT_TRUE(engine.CastVote(round).ok());
  }
  // Now the three unreliable modules happen to agree on a wrong value;
  // the two reliable ones say the truth.  Plurality would pick "wrong";
  // maximum likelihood picks "right".
  auto result = engine.CastVote(
      Round({"right", "right", "wrong", "wrong", "wrong"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->value, "right");
}

TEST(MlvTest, LargerOutputSpaceStrengthensAgreement) {
  // With a huge output space, two modules agreeing by chance is nearly
  // impossible, so agreement dominates even against a reliable dissenter.
  MlvConfig config = Config(1000);
  MlvEngine engine = MustCreate(3, config);
  auto result = engine.CastVote(Round({"v1", "v2", "v2"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->value, "v2");
}

TEST(MlvTest, RejectsRoundsExceedingOutputSpace) {
  MlvConfig config = Config(2);
  MlvEngine engine = MustCreate(3, config);
  auto result = engine.CastVote(Round({"a", "b", "c"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kError);
}

TEST(MlvTest, MissingValuesAndQuorum) {
  MlvConfig config = Config();
  config.quorum_fraction = 0.75;
  MlvEngine engine = MustCreate(4, config);
  ASSERT_TRUE(engine.CastVote(Round({"a", "a", "a", "a"})).ok());
  auto starved = engine.CastVote(Round({"b", nullptr, nullptr, nullptr}));
  ASSERT_TRUE(starved.ok());
  EXPECT_EQ(starved->outcome, RoundOutcome::kRevertedLast);
  EXPECT_EQ(*starved->value, "a");
}

TEST(MlvTest, TieBreaksTowardPreviousOutput) {
  MlvEngine engine = MustCreate(2, Config());
  ASSERT_TRUE(engine.CastVote(Round({"b", "b"})).ok());
  auto result = engine.CastVote(Round({"a", "b"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->value, "b");
}

TEST(MlvTest, LogLikelihoodIsExact) {
  // Two fresh modules (reliability (1+0)/(1+0)=1 clamped to 0.99), space
  // 4: unanimous round's LL = 2*log(0.99).
  MlvEngine engine = MustCreate(2, Config(4));
  auto result = engine.CastVote(Round({"x", "x"}));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->log_likelihood, 2.0 * std::log(0.99), 1e-9);
}

TEST(MlvTest, ReliabilityClampPreventsCertainty) {
  MlvConfig config = Config();
  config.reliability_clamp = 0.05;
  MlvEngine engine = MustCreate(2, config);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine.CastVote(Round({"x", "y"})).ok());
  }
  EXPECT_LE(engine.reliability(0), 0.95);
  EXPECT_GE(engine.reliability(1), 0.05);
}

TEST(MlvTest, ResetForgets) {
  MlvEngine engine = MustCreate(2, Config());
  ASSERT_TRUE(engine.CastVote(Round({"x", "y"})).ok());
  engine.Reset();
  EXPECT_FALSE(engine.last_output().has_value());
  EXPECT_NEAR(engine.reliability(1), 0.99, 1e-9);
}

}  // namespace
}  // namespace avoc::core
