#include "runtime/nodes.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"

namespace avoc::runtime {
namespace {

core::VotingEngine AverageEngine(size_t modules) {
  auto engine = core::MakeEngine(core::AlgorithmId::kAverage, modules);
  EXPECT_TRUE(engine.ok());
  return std::move(*engine);
}

TEST(SensorNodeTest, PublishesGeneratorValues) {
  GroupChannels channels;
  std::vector<ReadingMessage> received;
  channels.readings.Subscribe(
      [&](const ReadingMessage& m) { received.push_back(m); });
  SensorNode sensor(2, [](size_t round) { return 10.0 + round; },
                    channels.readings);
  sensor.Emit(0);
  sensor.Emit(1);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].module, 2u);
  EXPECT_DOUBLE_EQ(received[0].value, 10.0);
  EXPECT_DOUBLE_EQ(received[1].value, 11.0);
  EXPECT_EQ(received[1].round, 1u);
}

TEST(SensorNodeTest, SilentWhenGeneratorReturnsNothing) {
  GroupChannels channels;
  size_t count = 0;
  channels.readings.Subscribe([&](const ReadingMessage&) { ++count; });
  SensorNode sensor(0, [](size_t) { return std::optional<double>(); },
                    channels.readings);
  sensor.Emit(0);
  EXPECT_EQ(count, 0u);
}

TEST(HubNodeTest, ClosesRoundWhenAllModulesReport) {
  GroupChannels channels;
  std::vector<RoundMessage> rounds;
  channels.rounds.Subscribe(
      [&](const RoundMessage& m) { rounds.push_back(m); });
  HubNode hub(3, channels);
  channels.readings.Publish({0, 0, 1.0});
  channels.readings.Publish({1, 0, 2.0});
  EXPECT_TRUE(rounds.empty());
  EXPECT_EQ(hub.open_rounds(), 1u);
  channels.readings.Publish({2, 0, 3.0});
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].round, 0u);
  EXPECT_DOUBLE_EQ(*rounds[0].readings[2], 3.0);
  EXPECT_EQ(hub.open_rounds(), 0u);
}

TEST(HubNodeTest, FlushPublishesPartialRound) {
  GroupChannels channels;
  std::vector<RoundMessage> rounds;
  channels.rounds.Subscribe(
      [&](const RoundMessage& m) { rounds.push_back(m); });
  HubNode hub(3, channels);
  channels.readings.Publish({0, 5, 1.0});
  hub.Flush(5);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_TRUE(rounds[0].readings[0].has_value());
  EXPECT_FALSE(rounds[0].readings[1].has_value());
  EXPECT_FALSE(rounds[0].readings[2].has_value());
}

TEST(HubNodeTest, LateReadingsAfterCloseAreDropped) {
  GroupChannels channels;
  std::vector<RoundMessage> rounds;
  channels.rounds.Subscribe(
      [&](const RoundMessage& m) { rounds.push_back(m); });
  HubNode hub(2, channels);
  channels.readings.Publish({0, 0, 1.0});
  hub.Flush(0);
  channels.readings.Publish({1, 0, 2.0});  // too late
  EXPECT_EQ(rounds.size(), 1u);
  EXPECT_EQ(hub.open_rounds(), 0u);
}

TEST(HubNodeTest, FlushOfUnknownRoundOptionallyPublishesEmpty) {
  GroupChannels channels;
  std::vector<RoundMessage> rounds;
  channels.rounds.Subscribe(
      [&](const RoundMessage& m) { rounds.push_back(m); });
  HubNode hub(2, channels);
  hub.Flush(9);  // publish_empty defaults to false
  EXPECT_TRUE(rounds.empty());
  hub.Flush(10, /*publish_empty=*/true);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_FALSE(rounds[0].readings[0].has_value());
}

TEST(HubNodeTest, UnknownModuleIgnored) {
  GroupChannels channels;
  std::vector<RoundMessage> rounds;
  channels.rounds.Subscribe(
      [&](const RoundMessage& m) { rounds.push_back(m); });
  HubNode hub(2, channels);
  channels.readings.Publish({7, 0, 1.0});  // module out of range
  EXPECT_EQ(hub.open_rounds(), 0u);
}

TEST(HubNodeTest, InterleavedRoundsAssembleIndependently) {
  GroupChannels channels;
  std::vector<RoundMessage> rounds;
  channels.rounds.Subscribe(
      [&](const RoundMessage& m) { rounds.push_back(m); });
  HubNode hub(2, channels);
  channels.readings.Publish({0, 0, 1.0});
  channels.readings.Publish({0, 1, 10.0});
  channels.readings.Publish({1, 1, 11.0});  // round 1 completes first
  channels.readings.Publish({1, 0, 2.0});   // then round 0
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_EQ(rounds[0].round, 1u);
  EXPECT_EQ(rounds[1].round, 0u);
}


TEST(HubNodeTest, UntilQuorumClosesEarly) {
  GroupChannels channels;
  std::vector<RoundMessage> rounds;
  channels.rounds.Subscribe(
      [&](const RoundMessage& m) { rounds.push_back(m); });
  HubNode hub(5, channels, /*close_at_count=*/3);
  channels.readings.Publish({0, 0, 1.0});
  channels.readings.Publish({1, 0, 2.0});
  EXPECT_TRUE(rounds.empty());
  channels.readings.Publish({2, 0, 3.0});  // quorum reached: round closes
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_FALSE(rounds[0].readings[3].has_value());
  EXPECT_FALSE(rounds[0].readings[4].has_value());
  // Stragglers are dropped against the closed round.
  channels.readings.Publish({3, 0, 4.0});
  EXPECT_EQ(rounds.size(), 1u);
}

TEST(HubNodeTest, UntilQuorumCappedAtModuleCount) {
  GroupChannels channels;
  std::vector<RoundMessage> rounds;
  channels.rounds.Subscribe(
      [&](const RoundMessage& m) { rounds.push_back(m); });
  HubNode hub(2, channels, /*close_at_count=*/99);
  channels.readings.Publish({0, 0, 1.0});
  EXPECT_TRUE(rounds.empty());
  channels.readings.Publish({1, 0, 2.0});
  EXPECT_EQ(rounds.size(), 1u);
}

TEST(VoterNodeTest, VotesOnIncomingRounds) {
  GroupChannels channels;
  std::vector<OutputMessage> outputs;
  channels.outputs.Subscribe(
      [&](const OutputMessage& m) { outputs.push_back(m); });
  VoterNode voter(AverageEngine(3), channels);
  core::Round round = {10.0, 20.0, 30.0};
  channels.rounds.Publish({0, round});
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_DOUBLE_EQ(*outputs[0].result.value, 20.0);
  EXPECT_TRUE(voter.last_status().ok());
}

TEST(VoterNodeTest, PersistsHistoryToStore) {
  HistoryStore store;
  GroupChannels channels;
  VoterOptions options;
  options.group = "test-group";
  options.store = &store;
  auto engine = core::MakeEngine(core::AlgorithmId::kHybrid, 3);
  ASSERT_TRUE(engine.ok());
  VoterNode voter(std::move(*engine), channels, options);
  core::Round round = {10.0, 10.1, 90.0};
  channels.rounds.Publish({0, round});
  auto snapshot = store.Get("test-group");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->rounds, 1u);
  ASSERT_EQ(snapshot->records.size(), 3u);
  EXPECT_LT(snapshot->records[2], 1.0);  // the outlier's record dropped
}

TEST(VoterNodeTest, RestoresHistoryFromStore) {
  HistoryStore store;
  HistorySnapshot seed;
  seed.records = {1.0, 1.0, 0.0};
  seed.rounds = 50;
  ASSERT_TRUE(store.Put("warm", seed).ok());

  GroupChannels channels;
  std::vector<OutputMessage> outputs;
  channels.outputs.Subscribe(
      [&](const OutputMessage& m) { outputs.push_back(m); });
  VoterOptions options;
  options.group = "warm";
  options.store = &store;
  auto engine = core::MakeEngine(core::AlgorithmId::kHybrid, 3);
  ASSERT_TRUE(engine.ok());
  VoterNode voter(std::move(*engine), channels, options);
  // Module 2's restored record is 0 -> eliminated on the very first round.
  core::Round round = {10.0, 10.1, 10.05};
  channels.rounds.Publish({0, round});
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_TRUE(outputs[0].result.eliminated[2]);
}

TEST(SinkNodeTest, CollectsOutputs) {
  GroupChannels channels;
  SinkNode sink(channels);
  VoterNode voter(AverageEngine(2), channels);
  core::Round round_a = {1.0, 3.0};
  core::Round round_b = {5.0, 7.0};
  channels.rounds.Publish({0, round_a});
  channels.rounds.Publish({1, round_b});
  EXPECT_EQ(sink.output_count(), 2u);
  ASSERT_TRUE(sink.last_value().has_value());
  EXPECT_DOUBLE_EQ(*sink.last_value(), 6.0);
  EXPECT_DOUBLE_EQ(*sink.outputs()[0].result.value, 2.0);
}

TEST(SinkNodeTest, LastValueSkipsSuppressedRounds) {
  GroupChannels channels;
  SinkNode sink(channels);
  auto config = core::MakeConfig(core::AlgorithmId::kAverage);
  config.quorum.fraction = 1.0;
  config.on_no_quorum = core::NoQuorumPolicy::kEmitNothing;
  auto engine = core::VotingEngine::Create(2, config);
  ASSERT_TRUE(engine.ok());
  VoterNode voter(std::move(*engine), channels);
  core::Round full = {4.0, 6.0};
  core::Round starved = {std::nullopt, 6.0};
  channels.rounds.Publish({0, full});
  channels.rounds.Publish({1, starved});
  EXPECT_EQ(sink.output_count(), 2u);
  ASSERT_TRUE(sink.last_value().has_value());
  EXPECT_DOUBLE_EQ(*sink.last_value(), 5.0);  // from round 0
}

TEST(SinkNodeTest, EmptySinkHasNoValue) {
  GroupChannels channels;
  SinkNode sink(channels);
  EXPECT_FALSE(sink.last_value().has_value());
  EXPECT_EQ(sink.output_count(), 0u);
}

}  // namespace
}  // namespace avoc::runtime
