// Deterministic-simulation test for end-to-end distributed tracing.
//
// A 3-shard ShardedVoterServer runs on SimReactors with one shared
// Tracer whose clock is the SimWorld virtual clock, backed by a real
// StorageEngine (so WAL appends land in the trace).  A scripted
// server->client blackhole swallows exactly one SUBMIT_BATCH_SEQ reply,
// forcing the resilient client through a timeout, a reconnect, and a
// dedup-replayed resend — all while the frame's trailing trace-context
// field carries the client's trace id across the cross-shard forward
// hop.  The assertions parse the TRACE_DUMP payload (fetched over the
// wire) and check the span TREE, not just span presence:
//
//   client.submit_batch (root, parent=0)
//     ├─ client.attempt #1 (resend=no outcome=transport_error)
//     │    └─ server.submit_batch_seq (route=forwarded dedup=miss)
//     │         └─ engine.batch
//     │              └─ wal.append (storage)
//     ├─ client.backoff (event)
//     └─ client.attempt #2 (resend=yes outcome=ok)
//          └─ server.submit_batch_seq (dedup=replay)
//
// Determinism: the same seed must produce a byte-identical TRACE_DUMP
// (same span ids, same virtual timestamps, same sort order) — the
// flake-guard lane in CI re-runs this to catch nondeterminism.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "runtime/resilient.h"
#include "runtime/sharded_remote.h"
#include "runtime/sim_net.h"
#include "storage/engine.h"
#include "util/strings.h"

namespace avoc::runtime {
namespace {

constexpr uint16_t kPort = 7;
constexpr size_t kModules = 3;
constexpr char kClientId[] = "trace-dst-client";

// Owned by shards 2, 1, 0 of a 3-shard server (pinned by the GroupRouter
// golden test): submitting group-0 first pins the connection to shard 2,
// so the later group-1 submit must take the cross-shard forward hop.
const char* kGroupNames[] = {"group-0", "group-1", "group-2"};

/// One full round-0 batch for a group: all modules report, so the round
/// closes (engine executes, history persists, the sink appends trace
/// points) inside the submit that delivered it.
std::vector<BatchReading> RoundBatch(size_t group_index) {
  std::vector<BatchReading> batch;
  for (uint64_t m = 0; m < kModules; ++m) {
    batch.push_back(BatchReading{
        m, 0, 20.0 + static_cast<double>(group_index) +
                  0.25 * static_cast<double>(m)});
  }
  return batch;
}

struct TraceRun {
  bool ok = false;
  std::string failure;
  std::string dump;         ///< TRACE_DUMP payload fetched over the wire
  std::string local_dump;   ///< Tracer::DumpText() at the same instant
  std::string world_trace;  ///< SimWorld event trace (determinism diff)
  size_t forwarded = 0;
  size_t dedup_replays = 0;
  uint64_t dropped = 0;
};

/// Runs the scripted-fault scenario once.  Everything that can vary is a
/// function of `seed`; `dir` isolates the storage engine's files.
TraceRun RunScenario(uint64_t seed, const std::string& dir) {
  TraceRun run;
  auto fail = [&run](std::string why) {
    run.failure = std::move(why);
    return run;
  };

  SimWorld::Options world_options;
  // Server->client bytes vanish during [40ms, 200ms): the reply to the
  // submit issued at t>=60 is swallowed, the 150ms receive timeout fires
  // at t>=210 (after the heal), and the resend goes through cleanly.
  world_options.fault_plan.blackhole_s2c = {{40, 200}};
  SimWorld world(seed, world_options);

  obs::TracerOptions tracer_options;
  tracer_options.ring_count = 1;      // single-threaded sim: one ring
  tracer_options.ring_capacity = 4096;  // large enough to never overwrite
  tracer_options.now_ns = [&world] { return world.NowMs() * 1'000'000ull; };
  obs::Tracer tracer(tracer_options);

  obs::Registry registry;
  storage::StorageEngineOptions engine_options;
  engine_options.dir = dir;
  engine_options.tracer = &tracer;
  auto store = storage::StorageEngine::Open(engine_options);
  if (!store.ok()) return fail("storage open: " + store.status().ToString());

  auto listener = world.Listen(kPort);
  if (!listener.ok()) return fail("listen failed");
  std::vector<std::shared_ptr<Reactor>> reactors;
  reactors.push_back(world.reactor());
  reactors.push_back(world.NewReactor());
  reactors.push_back(world.NewReactor());
  ShardedServerOptions server_options;
  server_options.shards = 3;
  server_options.base.tracer = &tracer;
  auto server = ShardedVoterServer::StartOnReactors(
      server_options, std::move(*listener), std::move(reactors),
      /*spawn_loop_threads=*/false, store->get(), &registry, store->get());
  if (!server.ok()) return fail("server start: " + server.status().ToString());
  for (const char* group : kGroupNames) {
    if (!(*server)
             ->AddGroup(group,
                        *core::MakeEngine(core::AlgorithmId::kAvoc, kModules))
             .ok()) {
      return fail("add group failed");
    }
  }
  if (!(*server)->Serve().ok()) return fail("serve failed");

  RetryPolicy policy;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 50;
  policy.request_timeout_ms = 150;
  policy.deadline_ms = 60 * 1000;
  policy.trace_sample_every = 1;  // trace every submit
  ResilientVoterClient client([&world] { return world.Connect(kPort); },
                              &world, kClientId, policy, seed ^ 0xBACC0FFull,
                              &registry, &tracer);

  // seq 0: pins (migrates) the connection to group-0's owner, shard 2,
  // well before the blackhole window opens.
  auto accepted = client.SubmitBatch(kGroupNames[0], RoundBatch(0));
  if (!accepted.ok() || *accepted != kModules) return fail("seq 0 failed");
  if (world.NowMs() >= 40) return fail("seq 0 ran into the fault window");

  // seq 1: issued inside the window.  The request crosses the forward
  // hop to shard 1 and executes; the reply is blackholed, so the client
  // times out, reconnects, and resends the same sequence number.
  if (world.NowMs() < 60) world.RunFor(60 - world.NowMs());
  accepted = client.SubmitBatch(kGroupNames[1], RoundBatch(1));
  if (!accepted.ok() || *accepted != kModules) return fail("seq 1 failed");

  // seq 2: after the heal, through whatever shard the reconnected
  // connection pinned to — one more cross-shard hop.
  accepted = client.SubmitBatch(kGroupNames[2], RoundBatch(2));
  if (!accepted.ok() || *accepted != kModules) return fail("seq 2 failed");

  if (client.reconnects() < 1) return fail("fault did not force a reconnect");

  // Fetch the flight recorder over the wire: the TRACE_DUMP verb on a
  // fresh connection must return exactly the tracer's canonical dump.
  run.local_dump = tracer.DumpText();
  auto transport = world.Connect(kPort);
  if (!transport.ok()) return fail("dump connect failed");
  auto dump_client =
      RemoteVoterClient::FromTransport(std::move(*transport), /*binary=*/true);
  if (!dump_client.ok()) return fail("dump client failed");
  if (!dump_client->SetRequestTimeoutMs(1000).ok()) {
    return fail("dump timeout set failed");
  }
  auto dump = dump_client->TraceDump();
  if (!dump.ok()) return fail("TRACE_DUMP failed: " + dump.status().ToString());
  run.dump = *dump;

  run.world_trace = world.TraceText();
  run.forwarded = (*server)->forwarded_requests();
  run.dedup_replays = (*server)->dedup_replays();
  run.dropped = tracer.dropped();
  run.ok = true;
  (*server)->Stop();
  return run;
}

struct ParsedSpan {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  std::string kind;
  std::string name;
  std::string detail;
};

/// Parses the canonical dump format back into records (asserting on the
/// header); the inverse of Tracer::DumpText for the fields tests need.
std::vector<ParsedSpan> ParseDump(const std::string& dump) {
  std::vector<ParsedSpan> spans;
  size_t cursor = dump.find('\n');
  EXPECT_EQ(dump.substr(0, cursor), "AVOC-TRACE v1");
  if (cursor == std::string::npos) return spans;
  ++cursor;
  while (cursor < dump.size()) {
    size_t eol = dump.find('\n', cursor);
    if (eol == std::string::npos) eol = dump.size();
    const std::string_view line(dump.data() + cursor, eol - cursor);
    cursor = eol + 1;
    if (line.empty()) continue;
    ParsedSpan span;
    unsigned long long trace = 0, id = 0, parent = 0, start = 0, end = 0;
    char kind[16] = {};
    char name[32] = {};
    const int matched = std::sscanf(
        std::string(line).c_str(),
        "trace=%llx span=%llx parent=%llx kind=%15s start=%llu end=%llu "
        "name=%31s",
        &trace, &id, &parent, kind, &start, &end, name);
    EXPECT_EQ(matched, 7) << "unparseable dump line: " << line;
    span.trace_id = trace;
    span.span_id = id;
    span.parent_id = parent;
    span.kind = kind;
    span.name = name;
    const size_t detail_at = line.find(" detail=");
    if (detail_at != std::string_view::npos) {
      span.detail = std::string(line.substr(detail_at + 8));
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

bool Contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string TempDir(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("avoc_trace_dst_") + std::to_string(::getpid()) + "_" +
           tag))
      .string();
}

class TraceDstTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_a_ = TempDir("a");
    dir_b_ = TempDir("b");
    std::filesystem::remove_all(dir_a_);
    std::filesystem::remove_all(dir_b_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_a_);
    std::filesystem::remove_all(dir_b_);
  }

  static uint64_t Seed() {
    if (const char* forced = std::getenv("AVOC_CHAOS_SEED")) {
      return static_cast<uint64_t>(std::strtoull(forced, nullptr, 10));
    }
    return 42;
  }

  std::string dir_a_;
  std::string dir_b_;
};

TEST_F(TraceDstTest, SpanTreeFollowsRetriedSubmitAcrossForwardAndWal) {
  const TraceRun run = RunScenario(Seed(), dir_a_);
  ASSERT_TRUE(run.ok) << run.failure;
  EXPECT_EQ(run.dropped, 0u) << "flight recorder overwrote mid-test";
  EXPECT_GE(run.forwarded, 1u);
  EXPECT_GE(run.dedup_replays, 1u);
  // The wire verb returns the tracer's canonical dump, byte for byte.
  EXPECT_EQ(run.dump, run.local_dump);

  const std::vector<ParsedSpan> spans = ParseDump(run.dump);
  ASSERT_FALSE(spans.empty());

  // Everything about the retried submit hangs off ONE derived trace id.
  // Sequence numbers start at 1, so the group-1 submit (the second one)
  // is seq 2.
  const uint64_t trace_id = obs::Tracer::DeriveTraceId(kClientId, 2);
  std::vector<const ParsedSpan*> in_trace;
  for (const ParsedSpan& span : spans) {
    if (span.trace_id == trace_id) in_trace.push_back(&span);
  }

  // Root: the logical submit, parentless.
  const ParsedSpan* root = nullptr;
  for (const ParsedSpan* span : in_trace) {
    if (span->name == "client.submit_batch") {
      EXPECT_EQ(root, nullptr) << "duplicate root";
      root = span;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(root->kind, "client");
  EXPECT_TRUE(Contains(root->detail, "group=group-1"));
  EXPECT_TRUE(Contains(root->detail, "seq=2"));

  // Attempts: the timed-out original and the successful resend, both
  // children of the root.
  const ParsedSpan* first_attempt = nullptr;
  const ParsedSpan* resend_attempt = nullptr;
  for (const ParsedSpan* span : in_trace) {
    if (span->name != "client.attempt") continue;
    EXPECT_EQ(span->parent_id, root->span_id);
    if (Contains(span->detail, "resend=no")) first_attempt = span;
    if (Contains(span->detail, "resend=yes")) resend_attempt = span;
  }
  ASSERT_NE(first_attempt, nullptr);
  ASSERT_NE(resend_attempt, nullptr);
  EXPECT_TRUE(Contains(first_attempt->detail, "outcome=transport_error"));
  EXPECT_TRUE(Contains(resend_attempt->detail, "outcome=ok"));

  // Server execution: the original request executed via the cross-shard
  // forward (miss), the resend was answered from the dedup cache
  // (replay) — each parented under ITS attempt, joined by the wire
  // trace-context field.
  const ParsedSpan* miss = nullptr;
  const ParsedSpan* replay = nullptr;
  for (const ParsedSpan* span : in_trace) {
    if (span->name != "server.submit_batch_seq") continue;
    if (Contains(span->detail, "dedup=miss")) miss = span;
    if (Contains(span->detail, "dedup=replay")) replay = span;
  }
  ASSERT_NE(miss, nullptr);
  ASSERT_NE(replay, nullptr);
  EXPECT_EQ(miss->parent_id, first_attempt->span_id);
  EXPECT_EQ(replay->parent_id, resend_attempt->span_id);
  EXPECT_TRUE(Contains(miss->detail, "route=forwarded"));
  EXPECT_TRUE(Contains(miss->detail, "group=group-1"));

  // Engine execution under the miss (the replay never re-executes).
  const ParsedSpan* engine = nullptr;
  for (const ParsedSpan* span : in_trace) {
    if (span->name == "engine.batch") {
      EXPECT_EQ(engine, nullptr) << "replay must not re-execute the engine";
      engine = span;
    }
  }
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->parent_id, miss->span_id);
  EXPECT_EQ(engine->kind, "engine");
  EXPECT_TRUE(Contains(engine->detail, "rounds=1"));

  // Storage: the history/trace WAL appends for the closed round, under
  // the engine span on the same trace.
  size_t wal_appends = 0;
  for (const ParsedSpan* span : in_trace) {
    if (span->name != "wal.append") continue;
    ++wal_appends;
    EXPECT_EQ(span->kind, "storage");
    EXPECT_EQ(span->parent_id, engine->span_id);
  }
  EXPECT_GE(wal_appends, 1u);

  // The backoff between the attempts is on the trace as a point event.
  bool saw_backoff = false;
  for (const ParsedSpan* span : in_trace) {
    if (span->name == "client.backoff") {
      saw_backoff = true;
      EXPECT_EQ(span->parent_id, root->span_id);
      EXPECT_TRUE(Contains(span->detail, "sleep_ms="));
    }
  }
  EXPECT_TRUE(saw_backoff);

  // Flight-recorder breadcrumbs from the run as a whole: the migration
  // that pinned the connection and the forward hop itself.
  EXPECT_TRUE(Contains(run.dump, "name=shard.migrate"));
  EXPECT_TRUE(Contains(run.dump, "name=shard.forward"));

  // The dump drops straight into chrome://tracing.
  const Result<std::string> json = obs::TraceDumpToChromeJson(run.dump);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_TRUE(Contains(*json, "\"traceEvents\""));
}

TEST_F(TraceDstTest, SameSeedProducesByteIdenticalTraceDump) {
  const TraceRun first = RunScenario(Seed(), dir_a_);
  const TraceRun second = RunScenario(Seed(), dir_b_);
  ASSERT_TRUE(first.ok) << first.failure;
  ASSERT_TRUE(second.ok) << second.failure;
  EXPECT_FALSE(first.dump.empty());
  // Same seed, same virtual clock, same counter-derived ids: the dump —
  // fetched over the wire both times — is identical byte for byte.
  EXPECT_EQ(first.dump, second.dump);
  EXPECT_EQ(first.world_trace, second.world_trace);
  EXPECT_EQ(first.forwarded, second.forwarded);
  EXPECT_EQ(first.dedup_replays, second.dedup_replays);
}

TEST_F(TraceDstTest, UntracedServerStillAnswersAndRejectsTraceDump) {
  // No tracer anywhere: the optional wire field is absent, the server
  // runs spanless, and TRACE_DUMP reports FailedPrecondition instead of
  // crashing or hanging.
  SimWorld world(Seed());
  obs::Registry registry;
  auto listener = world.Listen(kPort);
  ASSERT_TRUE(listener.ok());
  std::vector<std::shared_ptr<Reactor>> reactors{world.reactor()};
  ShardedServerOptions server_options;
  server_options.shards = 1;
  auto server = ShardedVoterServer::StartOnReactors(
      server_options, std::move(*listener), std::move(reactors),
      /*spawn_loop_threads=*/false, /*store=*/nullptr, &registry);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)
                  ->AddGroup("group-0", *core::MakeEngine(
                                            core::AlgorithmId::kAvoc, kModules))
                  .ok());
  ASSERT_TRUE((*server)->Serve().ok());

  RetryPolicy policy;
  policy.request_timeout_ms = 500;
  ResilientVoterClient client([&world] { return world.Connect(kPort); },
                              &world, "untraced", policy, 1, &registry,
                              /*tracer=*/nullptr);
  auto accepted = client.SubmitBatch("group-0", RoundBatch(0));
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(*accepted, kModules);

  auto transport = world.Connect(kPort);
  ASSERT_TRUE(transport.ok());
  auto dump_client =
      RemoteVoterClient::FromTransport(std::move(*transport), /*binary=*/true);
  ASSERT_TRUE(dump_client.ok());
  ASSERT_TRUE(dump_client->SetRequestTimeoutMs(500).ok());
  const auto dump = dump_client->TraceDump();
  EXPECT_FALSE(dump.ok());
  EXPECT_EQ(dump.status().code(), ErrorCode::kFailedPrecondition);
  (*server)->Stop();
}

}  // namespace
}  // namespace avoc::runtime
