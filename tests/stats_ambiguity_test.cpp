#include "stats/ambiguity.h"

#include <gtest/gtest.h>

#include <vector>

namespace avoc::stats {
namespace {

AmbiguityOptions Margin(double margin) {
  AmbiguityOptions options;
  options.margin = margin;
  return options;
}

TEST(AmbiguityTest, ClearSeparationIsUnambiguous) {
  const std::vector<double> a = {-60.0, -61.0, -62.0};
  const std::vector<double> b = {-80.0, -81.0, -82.0};
  const auto report = MeasureAmbiguity(a, b, Margin(3.0));
  EXPECT_EQ(report.rounds, 3u);
  EXPECT_EQ(report.ambiguous_rounds, 0u);
  EXPECT_EQ(report.decision_flips, 0u);
  EXPECT_DOUBLE_EQ(report.ambiguous_fraction(), 0.0);
}

TEST(AmbiguityTest, CloseValuesAreAmbiguous) {
  const std::vector<double> a = {-70.0, -70.0};
  const std::vector<double> b = {-71.0, -72.9};
  const auto report = MeasureAmbiguity(a, b, Margin(3.0));
  EXPECT_EQ(report.ambiguous_rounds, 2u);
  EXPECT_DOUBLE_EQ(report.ambiguous_fraction(), 1.0);
}

TEST(AmbiguityTest, BoundaryIsExclusive) {
  const std::vector<double> a = {-70.0};
  const std::vector<double> b = {-73.0};  // exactly margin apart
  EXPECT_EQ(MeasureAmbiguity(a, b, Margin(3.0)).ambiguous_rounds, 0u);
}

TEST(AmbiguityTest, MissingValuesCountAsAmbiguous) {
  const std::vector<std::optional<double>> a = {-60.0, std::nullopt, -60.0};
  const std::vector<std::optional<double>> b = {-80.0, -80.0, std::nullopt};
  const auto report = MeasureAmbiguity(a, b, Margin(3.0));
  EXPECT_EQ(report.ambiguous_rounds, 2u);
}

TEST(AmbiguityTest, LongestRunTracksConsecutiveRounds) {
  const std::vector<double> a = {-60, -70, -70, -70, -60, -70, -70};
  const std::vector<double> b = {-80, -70, -70, -70, -80, -70, -70};
  const auto report = MeasureAmbiguity(a, b, Margin(3.0));
  EXPECT_EQ(report.ambiguous_rounds, 5u);
  EXPECT_EQ(report.longest_ambiguous_run, 3u);
}

TEST(AmbiguityTest, DecisionFlipsCounted) {
  // A closer, then B closer, then A closer: two flips.
  const std::vector<double> a = {-60.0, -90.0, -60.0};
  const std::vector<double> b = {-90.0, -60.0, -90.0};
  const auto report = MeasureAmbiguity(a, b, Margin(3.0));
  EXPECT_EQ(report.decision_flips, 2u);
}

TEST(AmbiguityTest, AmbiguousRoundsDoNotFlipDecision) {
  // A closer, ambiguous, A closer again: no flip.
  const std::vector<double> a = {-60.0, -70.0, -60.0};
  const std::vector<double> b = {-90.0, -70.5, -90.0};
  const auto report = MeasureAmbiguity(a, b, Margin(3.0));
  EXPECT_EQ(report.decision_flips, 0u);
  EXPECT_EQ(report.ambiguous_rounds, 1u);
}

TEST(AmbiguityTest, MismatchedLengthsUseShorter) {
  const std::vector<double> a = {-60.0, -60.0, -60.0};
  const std::vector<double> b = {-80.0};
  EXPECT_EQ(MeasureAmbiguity(a, b, Margin(3.0)).rounds, 1u);
}

TEST(AmbiguityTest, EmptySeries) {
  const std::vector<double> empty;
  const auto report = MeasureAmbiguity(empty, empty, Margin(3.0));
  EXPECT_EQ(report.rounds, 0u);
  EXPECT_DOUBLE_EQ(report.ambiguous_fraction(), 0.0);
}

}  // namespace
}  // namespace avoc::stats
