#include "sim/ble.h"

#include <gtest/gtest.h>
#include <cmath>

#include "stats/running.h"

namespace avoc::sim {
namespace {

TEST(BleScenarioTest, TableShapeMatchesPaper) {
  const BleScenario scenario;
  const BleDataset dataset = scenario.Generate();
  // 297 measurements per beacon, 9 beacons per stack (§3).
  EXPECT_EQ(dataset.stack_a.round_count(), 297u);
  EXPECT_EQ(dataset.stack_b.round_count(), 297u);
  EXPECT_EQ(dataset.stack_a.module_count(), 9u);
  EXPECT_EQ(dataset.stack_b.module_count(), 9u);
  EXPECT_EQ(dataset.stack_a.module_names().front(), "A1");
  EXPECT_EQ(dataset.stack_b.module_names().back(), "B9");
}

TEST(BleScenarioTest, RobotTraversesTrack) {
  const BleScenario scenario;
  EXPECT_DOUBLE_EQ(scenario.RobotPosition(0), 0.0);
  EXPECT_DOUBLE_EQ(scenario.RobotPosition(296), 15.0);
  EXPECT_NEAR(scenario.RobotPosition(148), 7.5, 0.05);
  // Monotone.
  for (size_t r = 1; r < 297; r += 31) {
    EXPECT_GT(scenario.RobotPosition(r), scenario.RobotPosition(r - 1));
  }
}

TEST(BleScenarioTest, ExpectedRssiDecaysWithDistance) {
  const BleScenario scenario;
  EXPECT_GT(scenario.ExpectedRssi(1.0), scenario.ExpectedRssi(5.0));
  EXPECT_GT(scenario.ExpectedRssi(5.0), scenario.ExpectedRssi(15.0));
  // At 1 m the RSSI equals the configured TX power.
  EXPECT_DOUBLE_EQ(scenario.ExpectedRssi(1.0), scenario.params().tx_power_dbm);
  // Distances clamp below 0.3 m.
  EXPECT_DOUBLE_EQ(scenario.ExpectedRssi(0.0), scenario.ExpectedRssi(0.3));
}

TEST(BleScenarioTest, ReadingsWithinReceiverRange) {
  const BleDataset dataset = BleScenario().Generate();
  for (const auto* stack : {&dataset.stack_a, &dataset.stack_b}) {
    for (size_t r = 0; r < stack->round_count(); ++r) {
      for (size_t m = 0; m < stack->module_count(); ++m) {
        const auto& reading = stack->At(r, m);
        if (!reading.has_value()) continue;
        EXPECT_GE(*reading, -100.0);
        EXPECT_LE(*reading, -45.0);
        // Whole-dB reporting.
        EXPECT_DOUBLE_EQ(*reading, std::round(*reading));
      }
    }
  }
}

TEST(BleScenarioTest, HasSubstantialMissingValues) {
  // "The resulting data lacks several values" — the missing-value fault
  // scenario needs real holes.
  const BleDataset dataset = BleScenario().Generate();
  const size_t total = 297 * 9;
  const size_t missing_a = dataset.stack_a.missing_count();
  EXPECT_GT(missing_a, total / 20);   // at least ~5%
  EXPECT_LT(missing_a, total / 2);    // but not a majority
}

TEST(BleScenarioTest, DropoutGrowsWithDistance) {
  const BleDataset dataset = BleScenario().Generate();
  // Stack A: robot starts adjacent and drives away -> more holes late.
  size_t early_missing = 0;
  size_t late_missing = 0;
  for (size_t r = 0; r < 100; ++r) {
    for (size_t m = 0; m < 9; ++m) {
      if (!dataset.stack_a.At(r, m).has_value()) ++early_missing;
      if (!dataset.stack_a.At(r + 197, m).has_value()) ++late_missing;
    }
  }
  EXPECT_GT(late_missing, early_missing);
}

TEST(BleScenarioTest, SignalStrengthCrossesOver) {
  // Early rounds: stack A much stronger; late rounds: stack B.  This is
  // the physical ground truth Fig. 7 relies on.
  const BleDataset dataset = BleScenario().Generate();
  auto stack_mean = [](const data::RoundTable& table, size_t r0, size_t r1) {
    stats::RunningStats rs;
    for (size_t r = r0; r < r1; ++r) {
      for (size_t m = 0; m < table.module_count(); ++m) {
        if (table.At(r, m).has_value()) rs.Add(*table.At(r, m));
      }
    }
    return rs.mean();
  };
  EXPECT_GT(stack_mean(dataset.stack_a, 0, 50),
            stack_mean(dataset.stack_b, 0, 50) + 5.0);
  EXPECT_GT(stack_mean(dataset.stack_b, 247, 297),
            stack_mean(dataset.stack_a, 247, 297) + 5.0);
}

TEST(BleScenarioTest, SingleBeaconIsNoisierThanStackAverage) {
  // The premise of UC-2: one beacon's trace is too chaotic to resolve
  // proximity; the 9-beacon average is smoother.
  const BleDataset dataset = BleScenario().Generate();
  stats::RunningStats single_diffs;
  stats::RunningStats average_diffs;
  double previous_single = 0.0;
  double previous_average = 0.0;
  bool have_previous = false;
  for (size_t r = 0; r < 297; ++r) {
    const auto& single = dataset.stack_a.At(r, 0);
    stats::RunningStats row;
    for (size_t m = 0; m < 9; ++m) {
      if (dataset.stack_a.At(r, m).has_value()) {
        row.Add(*dataset.stack_a.At(r, m));
      }
    }
    if (!single.has_value() || row.empty()) {
      have_previous = false;
      continue;
    }
    if (have_previous) {
      single_diffs.Add(std::abs(*single - previous_single));
      average_diffs.Add(std::abs(row.mean() - previous_average));
    }
    previous_single = *single;
    previous_average = row.mean();
    have_previous = true;
  }
  EXPECT_GT(single_diffs.mean(), average_diffs.mean() * 1.5);
}

TEST(BleScenarioTest, DeterministicForSameSeed) {
  const BleDataset a = BleScenario().Generate();
  const BleDataset b = BleScenario().Generate();
  for (size_t r = 0; r < 297; r += 13) {
    for (size_t m = 0; m < 9; ++m) {
      ASSERT_EQ(a.stack_a.At(r, m).has_value(),
                b.stack_a.At(r, m).has_value());
      if (a.stack_a.At(r, m).has_value()) {
        EXPECT_DOUBLE_EQ(*a.stack_a.At(r, m), *b.stack_a.At(r, m));
      }
    }
  }
}

TEST(BleScenarioTest, StacksUseIndependentStreams) {
  const BleDataset dataset = BleScenario().Generate();
  // Same geometry at mirrored rounds but different noise: the stacks must
  // not be copies of each other.
  size_t equal = 0;
  size_t compared = 0;
  for (size_t r = 0; r < 297; ++r) {
    const auto& a = dataset.stack_a.At(r, 0);
    const auto& b = dataset.stack_b.At(296 - r, 0);
    if (a.has_value() && b.has_value()) {
      ++compared;
      if (*a == *b) ++equal;
    }
  }
  ASSERT_GT(compared, 50u);
  EXPECT_LT(equal, compared / 4);
}

TEST(BleScenarioTest, MetadataSampleRateFromKinematics) {
  const auto meta = BleScenario().Metadata();
  EXPECT_EQ(meta.scenario, "uc2-ble");
  EXPECT_EQ(meta.units, "dBm");
  // 297 samples over 15 m at 0.09 m/s ≈ 166.7 s -> ≈ 1.78 Hz.
  EXPECT_NEAR(meta.sample_rate_hz, 1.782, 0.01);
}

}  // namespace
}  // namespace avoc::sim
