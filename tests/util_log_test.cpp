#include "util/log.h"

#include <gtest/gtest.h>

#include <vector>

namespace avoc {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogSink([this](LogLevel level, std::string_view message) {
      captured_.emplace_back(level, std::string(message));
    });
    SetLogLevel(LogLevel::kDebug);
  }

  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(LogLevel::kWarn);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LogTest, MessagesReachTheSink) {
  AVOC_LOG_INFO("hello %d", 42);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LogTest, LevelFiltersLowerMessages) {
  SetLogLevel(LogLevel::kError);
  AVOC_LOG_DEBUG("d");
  AVOC_LOG_INFO("i");
  AVOC_LOG_WARN("w");
  AVOC_LOG_ERROR("e");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "e");
}

TEST_F(LogTest, OffSilencesEverything) {
  SetLogLevel(LogLevel::kOff);
  AVOC_LOG_ERROR("e");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, AllLevelsPassAtDebug) {
  AVOC_LOG_DEBUG("a");
  AVOC_LOG_INFO("b");
  AVOC_LOG_WARN("c");
  AVOC_LOG_ERROR("d");
  EXPECT_EQ(captured_.size(), 4u);
}

TEST_F(LogTest, LevelNames) {
  EXPECT_EQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_EQ(LogLevelName(LogLevel::kOff), "OFF");
}

TEST_F(LogTest, GetLogLevelReflectsSetting) {
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

}  // namespace
}  // namespace avoc
