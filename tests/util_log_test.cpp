#include "util/log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

namespace avoc {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogSink([this](LogLevel level, std::string_view message) {
      captured_.emplace_back(level, std::string(message));
    });
    SetLogLevel(LogLevel::kDebug);
  }

  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(LogLevel::kWarn);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LogTest, MessagesReachTheSink) {
  AVOC_LOG_INFO("hello %d", 42);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LogTest, LevelFiltersLowerMessages) {
  SetLogLevel(LogLevel::kError);
  AVOC_LOG_DEBUG("d");
  AVOC_LOG_INFO("i");
  AVOC_LOG_WARN("w");
  AVOC_LOG_ERROR("e");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "e");
}

TEST_F(LogTest, OffSilencesEverything) {
  SetLogLevel(LogLevel::kOff);
  AVOC_LOG_ERROR("e");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, AllLevelsPassAtDebug) {
  AVOC_LOG_DEBUG("a");
  AVOC_LOG_INFO("b");
  AVOC_LOG_WARN("c");
  AVOC_LOG_ERROR("d");
  EXPECT_EQ(captured_.size(), 4u);
}

TEST_F(LogTest, LevelNames) {
  EXPECT_EQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_EQ(LogLevelName(LogLevel::kOff), "OFF");
}

TEST_F(LogTest, GetLogLevelReflectsSetting) {
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LogTest, ParseLogLevelAcceptsNamesAndDigits) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("3"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("7"), std::nullopt);
}

TEST_F(LogTest, EnvVariableSetsTheLevel) {
  ASSERT_EQ(setenv("AVOC_LOG_LEVEL", "error", 1), 0);
  EXPECT_EQ(InitLogLevelFromEnv(), LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  // Unparseable and unset values leave the level untouched.
  ASSERT_EQ(setenv("AVOC_LOG_LEVEL", "nonsense", 1), 0);
  EXPECT_EQ(InitLogLevelFromEnv(), std::nullopt);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ASSERT_EQ(unsetenv("AVOC_LOG_LEVEL"), 0);
  EXPECT_EQ(InitLogLevelFromEnv(), std::nullopt);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LogTest, ConcurrentLoggersAndSinkSwapsLoseNoMessages) {
  // TSan target: worker threads log while the main thread re-installs
  // the sink.  Every message must reach exactly one capturing sink.
  auto counted = std::make_shared<std::atomic<int>>(0);
  auto make_sink = [counted](int /*tag*/) {
    return [counted](LogLevel, std::string_view) {
      counted->fetch_add(1, std::memory_order_relaxed);
    };
  };
  SetLogSink(make_sink(0));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> loggers;
  loggers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    loggers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        AVOC_LOG_INFO("worker %d message %d", t, i);
      }
    });
  }
  for (int swap = 0; swap < 50; ++swap) {
    SetLogSink(make_sink(swap));
  }
  for (std::thread& logger : loggers) logger.join();
  EXPECT_EQ(counted->load(), kThreads * kPerThread);
}

TEST_F(LogTest, SinkMayLogRecursivelyWithoutDeadlock) {
  auto depth = std::make_shared<std::atomic<int>>(0);
  auto messages = std::make_shared<std::atomic<int>>(0);
  SetLogSink([depth, messages](LogLevel, std::string_view) {
    messages->fetch_add(1);
    if (depth->fetch_add(1) == 0) {
      AVOC_LOG_ERROR("from inside the sink");
    }
    depth->fetch_sub(1);
  });
  AVOC_LOG_ERROR("outer");
  EXPECT_EQ(messages->load(), 2);
}

}  // namespace
}  // namespace avoc
