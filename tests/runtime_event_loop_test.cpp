#include "runtime/event_loop.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace avoc::runtime {
namespace {

// --- TimerWheel --------------------------------------------------------------

TEST(TimerWheelTest, ZeroDelayFiresOnNextAdvance) {
  TimerWheel wheel(25, 128);
  int fired = 0;
  wheel.Schedule(1000, 0, [&] { ++fired; });
  EXPECT_EQ(wheel.MsUntilNext(1000), 0);
  wheel.Advance(1000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, TimerNeverFiresEarly) {
  TimerWheel wheel(25, 128);
  int fired = 0;
  wheel.Schedule(1000, 100, [&] { ++fired; });
  wheel.Advance(1050);  // halfway there
  EXPECT_EQ(fired, 0);
  wheel.Advance(1099);  // due at tick ceil(1100/25)=44 -> 1100ms
  EXPECT_EQ(fired, 0);
  wheel.Advance(1100);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, CancelPreventsFiring) {
  TimerWheel wheel(25, 128);
  int fired = 0;
  const uint64_t id = wheel.Schedule(0, 50, [&] { ++fired; });
  EXPECT_TRUE(wheel.Cancel(id));
  EXPECT_FALSE(wheel.Cancel(id));  // second cancel is a no-op
  wheel.Advance(1000);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, FarFutureTimerSharesSlotWithNearOne) {
  // Two timers that land in the same slot (delays differing by exactly
  // one wheel revolution) must fire at their own deadlines.
  TimerWheel wheel(10, 16);
  std::vector<int> order;
  wheel.Schedule(0, 20, [&] { order.push_back(1); });
  wheel.Schedule(0, 20 + 16 * 10, [&] { order.push_back(2); });
  wheel.Advance(25);
  EXPECT_EQ(order, (std::vector<int>{1}));
  wheel.Advance(20 + 16 * 10);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerWheelTest, LongStallFiresEverythingDue) {
  // Advancing far past several revolutions must not strand entries.
  TimerWheel wheel(10, 8);
  int fired = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    wheel.Schedule(0, 10 + i * 7, [&] { ++fired; });
  }
  wheel.Advance(100000);
  EXPECT_EQ(fired, 20);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CallbackMayScheduleAnotherTimer) {
  TimerWheel wheel(10, 16);
  int chained = 0;
  wheel.Schedule(0, 10, [&] {
    wheel.Schedule(10, 10, [&] { ++chained; });
  });
  wheel.Advance(10);
  EXPECT_EQ(chained, 0);
  wheel.Advance(20);
  EXPECT_EQ(chained, 1);
}

TEST(TimerWheelTest, MsUntilNextReportsSoonestDeadline) {
  TimerWheel wheel(25, 128);
  EXPECT_EQ(wheel.MsUntilNext(0), -1);  // nothing pending
  wheel.Schedule(0, 500, [] {});
  wheel.Schedule(0, 100, [] {});
  const int64_t wait = wheel.MsUntilNext(0);
  EXPECT_GE(wait, 100);
  EXPECT_LE(wait, 125);  // tick rounding may stretch one tick
}

// --- TimerWheel re-entrancy regressions --------------------------------------
// These pin the two bugs of the index-while-firing implementation: a
// cancel from inside a callback shifting the slot under the dispatch
// walk, and a zero-delay re-arm re-firing within the same Advance.

TEST(TimerWheelTest, CallbackMayCancelDueSiblingInSamePass) {
  TimerWheel wheel(10, 16);
  std::vector<int> order;
  uint64_t second = 0;
  uint64_t third = 0;
  // All three due at the same tick, firing in schedule order.  The first
  // cancels the second; the third must still fire (the old slot-index
  // walk skipped it after the erase shifted the vector).
  wheel.Schedule(0, 10, [&] {
    order.push_back(1);
    EXPECT_TRUE(wheel.Cancel(second));
  });
  second = wheel.Schedule(0, 10, [&] { order.push_back(2); });
  third = wheel.Schedule(0, 10, [&] { order.push_back(3); });
  wheel.Advance(10);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_FALSE(wheel.Cancel(third));  // already fired
}

TEST(TimerWheelTest, CallbackMayCancelDueTimerInLaterSlot) {
  TimerWheel wheel(10, 16);
  std::vector<int> order;
  uint64_t later = 0;
  wheel.Schedule(0, 10, [&] {
    order.push_back(1);
    EXPECT_TRUE(wheel.Cancel(later));
  });
  later = wheel.Schedule(0, 30, [&] { order.push_back(2); });
  wheel.Schedule(0, 30, [&] { order.push_back(3); });
  // One big advance covers both slots; the cancel happens while the
  // later slot's entries are already extracted into the firing list.
  wheel.Advance(100);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CancelingEarlierPendingEntryDoesNotSkipDueTimer) {
  TimerWheel wheel(10, 4);  // tiny wheel: 40ms revolution forces sharing
  std::vector<int> order;
  // Same slot, different revolutions: the far timer sits before the near
  // one in the slot vector.  Canceling it mid-advance used to shift the
  // due entry under the index walk for a full revolution.
  const uint64_t far = wheel.Schedule(0, 10 + 4 * 10, [&] { order.push_back(9); });
  wheel.Schedule(0, 10, [&] { order.push_back(1); });
  wheel.Schedule(0, 10, [&] {
    order.push_back(2);
    EXPECT_TRUE(wheel.Cancel(far));
  });
  wheel.Schedule(0, 10, [&] { order.push_back(3); });
  wheel.Advance(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  wheel.Advance(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));  // far stayed canceled
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, ZeroDelayRearmFromCallbackFiresNextAdvanceOnly) {
  TimerWheel wheel(10, 16);
  int fired = 0;
  std::function<void()> rearm = [&] {
    ++fired;
    // Zero-delay re-arm on a tick boundary: the old implementation put
    // the new entry into the slot being drained and re-fired it forever
    // within the same Advance (a live-lock).
    wheel.Schedule(wheel.tick_ms() * static_cast<uint64_t>(fired), 0, rearm);
  };
  wheel.Schedule(0, 10, rearm);
  wheel.Advance(10);
  EXPECT_EQ(fired, 1);  // exactly one firing per Advance
  wheel.Advance(20);
  EXPECT_EQ(fired, 2);
  wheel.Advance(30);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(wheel.pending(), 1u);  // the re-armed one is still pending
}

TEST(TimerWheelTest, RepeatedRearmAcrossManyAdvancesDoesNotHang) {
  TimerWheel wheel(1, 8);
  uint64_t fired = 0;
  std::function<void()> heartbeat = [&] {
    ++fired;
    wheel.Schedule(fired, 1, heartbeat);  // perpetual 1ms heartbeat
  };
  wheel.Schedule(0, 1, heartbeat);
  for (uint64_t now = 1; now <= 500; ++now) wheel.Advance(now);
  EXPECT_EQ(fired, 500u);
  EXPECT_EQ(wheel.pending(), 1u);
}

TEST(TimerWheelTest, CancelFromCallbackOfAlreadyFiredReturnsFalse) {
  TimerWheel wheel(10, 16);
  uint64_t first = 0;
  bool cancel_result = true;
  first = wheel.Schedule(0, 10, [] {});
  wheel.Schedule(0, 10, [&] { cancel_result = wheel.Cancel(first); });
  wheel.Advance(10);
  EXPECT_FALSE(cancel_result);  // sibling had already fired this pass
}

// --- EventLoop ---------------------------------------------------------------

class EventLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto loop = EventLoop::Create();
    ASSERT_TRUE(loop.ok()) << loop.status().ToString();
    loop_ = std::move(*loop);
  }

  std::unique_ptr<EventLoop> loop_;
};

TEST_F(EventLoopTest, PostedFunctionRunsOnLoopThread) {
  std::atomic<bool> ran{false};
  std::thread runner([&] { loop_->Run(); });
  loop_->Post([&] { ran = true; });
  for (int i = 0; i < 500 && !ran.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  loop_->Stop();
  runner.join();
  EXPECT_TRUE(ran.load());
}

TEST_F(EventLoopTest, StopUnblocksRun) {
  std::thread runner([&] { loop_->Run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  loop_->Stop();
  runner.join();  // must return promptly
  EXPECT_TRUE(loop_->stopped());
}

TEST_F(EventLoopTest, WatchDeliversReadReadiness) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string received;
  ASSERT_TRUE(loop_->Watch(fds[0], kIoRead, [&](uint32_t events) {
                       EXPECT_TRUE(events & kIoRead);
                       char buffer[64];
                       const ssize_t n = ::read(fds[0], buffer, sizeof(buffer));
                       if (n > 0) received.assign(buffer, static_cast<size_t>(n));
                       loop_->Stop();
                     })
                  .ok());
  ASSERT_EQ(::write(fds[1], "ping", 4), 4);
  loop_->Run();
  EXPECT_EQ(received, "ping");
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(EventLoopTest, UnwatchStopsDelivery) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::atomic<int> deliveries{0};
  ASSERT_TRUE(loop_->Watch(fds[0], kIoRead, [&](uint32_t) {
                       ++deliveries;
                       // Unwatch from inside the callback (the documented
                       // self-removal pattern); data stays unread, so a
                       // stale registration would re-fire forever.
                       EXPECT_TRUE(loop_->Unwatch(fds[0]).ok());
                     })
                  .ok());
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  ASSERT_TRUE(loop_->RunOnce(100).ok());
  ASSERT_TRUE(loop_->RunOnce(50).ok());
  EXPECT_EQ(deliveries.load(), 1);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(EventLoopTest, SetInterestSwitchesReadAndWrite) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // A pipe's write end is immediately writable.
  std::atomic<bool> writable{false};
  ASSERT_TRUE(loop_->Watch(fds[1], 0, [&](uint32_t events) {
                       if (events & kIoWrite) writable = true;
                       (void)loop_->SetInterest(fds[1], 0);
                     })
                  .ok());
  // Interest 0: nothing may fire.
  ASSERT_TRUE(loop_->RunOnce(50).ok());
  EXPECT_FALSE(writable.load());
  ASSERT_TRUE(loop_->SetInterest(fds[1], kIoWrite).ok());
  ASSERT_TRUE(loop_->RunOnce(100).ok());
  EXPECT_TRUE(writable.load());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(EventLoopTest, DuplicateWatchFails) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(loop_->Watch(fds[0], kIoRead, [](uint32_t) {}).ok());
  EXPECT_FALSE(loop_->Watch(fds[0], kIoRead, [](uint32_t) {}).ok());
  EXPECT_TRUE(loop_->Unwatch(fds[0]).ok());
  EXPECT_FALSE(loop_->Unwatch(fds[0]).ok());  // already gone
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(EventLoopTest, ScheduledTimerFires) {
  std::atomic<bool> fired{false};
  std::thread runner([&] { loop_->Run(); });
  loop_->Post([&] {
    loop_->ScheduleTimer(30, [&] {
      fired = true;
      loop_->Stop();
    });
  });
  runner.join();
  EXPECT_TRUE(fired.load());
}

TEST_F(EventLoopTest, CanceledTimerDoesNotFire) {
  std::atomic<bool> fired{false};
  // Drive the loop manually so cancellation is deterministic.
  uint64_t id = 0;
  loop_->Post([&] { id = loop_->ScheduleTimer(40, [&] { fired = true; }); });
  ASSERT_TRUE(loop_->RunOnce(10).ok());
  loop_->Post([&] { EXPECT_TRUE(loop_->CancelTimer(id)); });
  ASSERT_TRUE(loop_->RunOnce(10).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  ASSERT_TRUE(loop_->RunOnce(10).ok());
  EXPECT_FALSE(fired.load());
}

TEST_F(EventLoopTest, CallbackMayUnwatchAndCloseItsOwnFd) {
  // Close-in-callback is the server's connection-teardown path; the loop
  // must tolerate the fd being gone by dispatch time.
  int first[2];
  int second[2];
  ASSERT_EQ(::pipe(first), 0);
  ASSERT_EQ(::pipe(second), 0);
  std::atomic<int> handled{0};
  auto close_self = [&](int read_fd) {
    return [&, read_fd](uint32_t) {
      ++handled;
      EXPECT_TRUE(loop_->Unwatch(read_fd).ok());
      ::close(read_fd);
    };
  };
  ASSERT_TRUE(loop_->Watch(first[0], kIoRead, close_self(first[0])).ok());
  ASSERT_TRUE(loop_->Watch(second[0], kIoRead, close_self(second[0])).ok());
  // Both readable in the same epoll batch.
  ASSERT_EQ(::write(first[1], "a", 1), 1);
  ASSERT_EQ(::write(second[1], "b", 1), 1);
  ASSERT_TRUE(loop_->RunOnce(100).ok());
  ASSERT_TRUE(loop_->RunOnce(20).ok());
  EXPECT_EQ(handled.load(), 2);
  ::close(first[1]);
  ::close(second[1]);
}

TEST_F(EventLoopTest, PostIsSafeFromManyThreads) {
  std::atomic<int> count{0};
  std::thread runner([&] { loop_->Run(); });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> posters;
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        loop_->Post([&] { ++count; });
      }
    });
  }
  for (auto& poster : posters) poster.join();
  for (int i = 0; i < 500 && count.load() < kThreads * kPerThread; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  loop_->Stop();
  runner.join();
  EXPECT_EQ(count.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace avoc::runtime
