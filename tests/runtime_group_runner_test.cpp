#include "runtime/group_runner.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/algorithms.h"
#include "core/batch.h"

namespace avoc::runtime {
namespace {

core::VotingEngine AverageEngine(size_t modules) {
  auto engine = core::MakeEngine(core::AlgorithmId::kAverage, modules);
  EXPECT_TRUE(engine.ok());
  return std::move(*engine);
}

data::RoundTable SmallTable() {
  data::RoundTable table({"a", "b", "c"});
  EXPECT_TRUE(table.AppendRound({10.0, 10.2, 9.8}).ok());
  EXPECT_TRUE(table.AppendRound({10.1, 10.3, 9.9}).ok());
  EXPECT_TRUE(table.AppendRound({{10.0}, std::nullopt, {10.2}}).ok());
  return table;
}

TEST(GroupRunnerTest, FactoriesValidate) {
  EXPECT_FALSE(GroupRunner::WithGenerators({}, AverageEngine(1)).ok());
  std::vector<SensorNode::Generator> two(2,
                                         [](size_t) {
                                           return std::optional<double>(1.0);
                                         });
  EXPECT_FALSE(GroupRunner::WithGenerators(two, AverageEngine(3)).ok());
  GroupRunner::Options unnamed;
  unnamed.group = "";
  EXPECT_FALSE(GroupRunner::Create(AverageEngine(2), unnamed).ok());
}

TEST(GroupRunnerTest, SynchronousRoundsMatchBatchRunner) {
  const data::RoundTable table = SmallTable();
  auto runner = GroupRunner::FromTable(table, AverageEngine(3));
  ASSERT_TRUE(runner.ok());
  EXPECT_EQ((*runner)->module_count(), 3u);
  EXPECT_EQ((*runner)->sensor_count(), 3u);
  for (size_t r = 0; r < table.round_count(); ++r) {
    (*runner)->RunRound(r);
  }
  core::VotingEngine reference = AverageEngine(3);
  auto batch = core::RunOverTable(reference, table);
  ASSERT_TRUE(batch.ok());
  const auto outputs = (*runner)->sink().outputs();
  ASSERT_EQ(outputs.size(), batch->round_count());
  for (size_t r = 0; r < outputs.size(); ++r) {
    EXPECT_EQ(outputs[r].result.value, batch->output(r)) << "round " << r;
  }
}

TEST(GroupRunnerTest, ExternalSubmitClosesRoundWhenComplete) {
  auto runner = GroupRunner::Create(AverageEngine(2));
  ASSERT_TRUE(runner.ok());
  EXPECT_EQ((*runner)->sensor_count(), 0u);
  EXPECT_TRUE((*runner)->Submit(0, 0, 4.0).ok());
  EXPECT_EQ((*runner)->sink().output_count(), 0u);
  EXPECT_TRUE((*runner)->Submit(1, 0, 6.0).ok());
  ASSERT_EQ((*runner)->sink().output_count(), 1u);
  EXPECT_DOUBLE_EQ(*(*runner)->sink().last_value(), 5.0);
}

TEST(GroupRunnerTest, SubmitRejectsOutOfRangeModule) {
  GroupRunner::Options options;
  options.group = "shelf-1";
  auto runner = GroupRunner::Create(AverageEngine(2), options);
  ASSERT_TRUE(runner.ok());
  const Status status = (*runner)->Submit(7, 0, 1.0);
  EXPECT_EQ(status.code(), ErrorCode::kOutOfRange);
  EXPECT_NE(status.message().find("shelf-1"), std::string::npos);
}

TEST(GroupRunnerTest, FlushTurnsSilenceIntoMissingValues) {
  auto runner = GroupRunner::Create(AverageEngine(3));
  ASSERT_TRUE(runner.ok());
  EXPECT_TRUE((*runner)->Submit(0, 0, 8.0).ok());
  EXPECT_TRUE((*runner)->Submit(2, 0, 10.0).ok());
  (*runner)->FlushRound(0);
  ASSERT_EQ((*runner)->sink().output_count(), 1u);
  const auto outputs = (*runner)->sink().outputs();
  EXPECT_EQ(outputs[0].result.present_count, 2u);
  EXPECT_DOUBLE_EQ(*outputs[0].result.value, 9.0);
}

TEST(GroupRunnerTest, EmitAsyncWithFlushDeliversTheRound) {
  auto runner = GroupRunner::WithGenerators(
      {[](size_t) { return std::optional<double>(3.0); },
       [](size_t) { return std::optional<double>(5.0); }},
      AverageEngine(2));
  ASSERT_TRUE(runner.ok());
  std::vector<std::thread> workers = (*runner)->EmitAsync(0);
  for (std::thread& worker : workers) worker.join();
  (*runner)->FlushRound(0);
  ASSERT_EQ((*runner)->sink().output_count(), 1u);
  EXPECT_DOUBLE_EQ(*(*runner)->sink().last_value(), 4.0);
}

TEST(GroupRunnerTest, PersistsHistoryThroughStore) {
  HistoryStore store;
  GroupRunner::Options options;
  options.group = "gr";
  options.store = &store;
  auto engine = core::MakeEngine(core::AlgorithmId::kHybrid, 3);
  ASSERT_TRUE(engine.ok());
  auto runner = GroupRunner::FromTable(SmallTable(), std::move(*engine),
                                       options);
  ASSERT_TRUE(runner.ok());
  (*runner)->RunRound(0);
  (*runner)->RunRound(1);
  auto snapshot = store.Get("gr");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->rounds, 2u);
  EXPECT_EQ(snapshot->records.size(), 3u);
}

}  // namespace
}  // namespace avoc::runtime
