#include "storage/chunk.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "storage/bits.h"
#include "util/rng.h"

namespace avoc::storage {
namespace {

uint64_t Bits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

TEST(BitsTest, RoundTripSingleBits) {
  BitWriter writer;
  const uint32_t pattern[] = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  for (uint32_t bit : pattern) writer.WriteBit(bit);
  const std::string bytes = writer.Finish();
  BitReader reader(bytes);
  for (uint32_t bit : pattern) {
    auto read = reader.ReadBit();
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, bit);
  }
}

TEST(BitsTest, RoundTripMultiBitFields) {
  BitWriter writer;
  writer.WriteBits(0x5A, 8);
  writer.WriteBits(0x3, 2);
  writer.WriteBits(0xFFFFFFFFFFFFFFFFull, 64);
  writer.WriteBits(0, 1);
  writer.WriteBits(0x12345, 20);
  const std::string bytes = writer.Finish();
  BitReader reader(bytes);
  EXPECT_EQ(*reader.ReadBits(8), 0x5Au);
  EXPECT_EQ(*reader.ReadBits(2), 0x3u);
  EXPECT_EQ(*reader.ReadBits(64), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(*reader.ReadBits(1), 0u);
  EXPECT_EQ(*reader.ReadBits(20), 0x12345u);
}

TEST(BitsTest, ReadPastEndFails) {
  BitWriter writer;
  writer.WriteBits(0xAB, 8);
  const std::string bytes = writer.Finish();
  BitReader reader(bytes);
  EXPECT_TRUE(reader.ReadBits(8).ok());
  EXPECT_FALSE(reader.ReadBits(1).ok());
  EXPECT_EQ(reader.ReadBits(1).status().code(), ErrorCode::kParseError);
}

std::vector<TracePoint> RoundTrip(std::span<const TracePoint> points) {
  const std::string body = EncodeChunk(points);
  std::vector<TracePoint> decoded;
  const Status status = DecodeChunk(body, points.size(), &decoded);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return decoded;
}

void ExpectBitIdentical(std::span<const TracePoint> want,
                        std::span<const TracePoint> got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].round, got[i].round) << "point " << i;
    EXPECT_EQ(want[i].engaged, got[i].engaged) << "point " << i;
    EXPECT_EQ(Bits(want[i].value), Bits(got[i].value)) << "point " << i;
  }
}

TEST(ChunkTest, SinglePoint) {
  const TracePoint point{42, 3.25, true};
  ExpectBitIdentical(std::span(&point, 1), RoundTrip(std::span(&point, 1)));
}

TEST(ChunkTest, MonotoneRoundsSlowlyDriftingValues) {
  std::vector<TracePoint> points;
  double value = 20.0;
  for (uint64_t round = 0; round < 1000; ++round) {
    value += 0.01;
    points.push_back(TracePoint{round, value, true});
  }
  ExpectBitIdentical(points, RoundTrip(points));
  // The whole purpose of the codec: the steady case compresses well
  // below the 17-byte raw point.
  EXPECT_LT(EncodeChunk(points).size(), points.size() * 17 / 2);
}

TEST(ChunkTest, NonEngagedRoundsEncodeAsZero) {
  std::vector<TracePoint> points;
  for (uint64_t round = 0; round < 64; ++round) {
    const bool engaged = round % 3 != 0;
    points.push_back(TracePoint{round, engaged ? 1.5 + round : 0.0, engaged});
  }
  ExpectBitIdentical(points, RoundTrip(points));
}

TEST(ChunkTest, SpecialValuesRoundTripBitExact) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double snan = std::numeric_limits<double>::signaling_NaN();
  std::vector<TracePoint> points{
      {0, 0.0, true},
      {1, -0.0, true},
      {2, std::numeric_limits<double>::infinity(), true},
      {3, -std::numeric_limits<double>::infinity(), true},
      {4, qnan, true},
      {5, snan, true},
      {6, std::numeric_limits<double>::denorm_min(), true},
      {7, -std::numeric_limits<double>::max(), true},
  };
  ExpectBitIdentical(points, RoundTrip(points));
}

TEST(ChunkTest, OutOfOrderAndSparseRounds) {
  std::vector<TracePoint> points{
      {100, 1.0, true},  {5, 2.0, true},     {6, 2.0, true},
      {1000000, 3.0, true}, {999999, -3.0, true}, {0, 0.5, true},
  };
  ExpectBitIdentical(points, RoundTrip(points));
}

TEST(ChunkTest, LargeRoundNumbers) {
  std::vector<TracePoint> points{
      {0, 1.0, true},
      {std::numeric_limits<uint64_t>::max() / 2, 2.0, true},
      {std::numeric_limits<uint64_t>::max(), 3.0, true},
  };
  ExpectBitIdentical(points, RoundTrip(points));
}

TEST(ChunkTest, RandomizedRoundTrip) {
  avoc::Rng rng(20260808);
  for (int iter = 0; iter < 50; ++iter) {
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(300));
    std::vector<TracePoint> points;
    uint64_t round = rng.UniformInt(1000);
    double value = rng.NextDouble() * 100.0;
    for (size_t i = 0; i < n; ++i) {
      // Mostly steady strides and drifts, with occasional jumps — the
      // workload shape the bucket boundaries were picked for.
      switch (rng.UniformInt(8)) {
        case 0: round += rng.UniformInt(100000); break;
        case 1: value = rng.NextDouble() * 1e12 - 5e11; break;
        default:
          round += 1;
          value += rng.NextDouble() * 0.1 - 0.05;
          break;
      }
      const bool engaged = rng.UniformInt(10) != 0;
      points.push_back(TracePoint{round, engaged ? value : 0.0, engaged});
    }
    ExpectBitIdentical(points, RoundTrip(points));
  }
}

TEST(ChunkTest, DecodeRejectsTruncatedBody) {
  std::vector<TracePoint> points;
  for (uint64_t round = 0; round < 100; ++round) {
    points.push_back(TracePoint{round, 1.0 + round * 0.5, true});
  }
  const std::string body = EncodeChunk(points);
  std::vector<TracePoint> decoded;
  for (size_t keep : {size_t{0}, size_t{1}, body.size() / 2, body.size() - 1}) {
    EXPECT_FALSE(
        DecodeChunk(body.substr(0, keep), points.size(), &decoded).ok())
        << "kept " << keep << " of " << body.size();
  }
}

TEST(ChunkTest, DecodeRejectsImpossibleCount) {
  const TracePoint point{1, 2.0, true};
  const std::string body = EncodeChunk(std::span(&point, 1));
  std::vector<TracePoint> decoded;
  // More points than the body has bits cannot be valid.
  EXPECT_FALSE(DecodeChunk(body, body.size() * 8 + 1, &decoded).ok());
}

}  // namespace
}  // namespace avoc::storage
