#include "runtime/framing.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace avoc::runtime {
namespace {

TEST(FramingTest, VarintRoundTrips) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            300,
                            16383,
                            16384,
                            (1ull << 35) - 1,
                            std::numeric_limits<uint64_t>::max()};
  for (const uint64_t value : cases) {
    std::string buffer;
    AppendVarint(buffer, value);
    PayloadReader reader(buffer);
    auto decoded = reader.ReadVarint();
    ASSERT_TRUE(decoded.ok()) << value;
    EXPECT_EQ(*decoded, value);
    EXPECT_TRUE(reader.ExpectEnd().ok());
  }
}

TEST(FramingTest, VarintSingleByteBoundary) {
  std::string buffer;
  AppendVarint(buffer, 127);
  EXPECT_EQ(buffer.size(), 1u);
  buffer.clear();
  AppendVarint(buffer, 128);
  EXPECT_EQ(buffer.size(), 2u);
}

TEST(FramingTest, TruncatedVarintFails) {
  std::string buffer;
  AppendVarint(buffer, 1u << 20);
  buffer.pop_back();
  PayloadReader reader(buffer);
  EXPECT_FALSE(reader.ReadVarint().ok());
}

TEST(FramingTest, OverlongVarintFails) {
  // 11 continuation bytes: no uint64 needs that many.
  std::string buffer(11, static_cast<char>(0x80));
  PayloadReader reader(buffer);
  EXPECT_FALSE(reader.ReadVarint().ok());
}

TEST(FramingTest, DoubleRoundTripsExactly) {
  const double cases[] = {0.0,
                          -0.0,
                          1.5,
                          -273.15,
                          1e-300,
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::infinity()};
  for (const double value : cases) {
    std::string buffer;
    AppendDouble(buffer, value);
    EXPECT_EQ(buffer.size(), 8u);
    PayloadReader reader(buffer);
    auto decoded = reader.ReadDouble();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, value);
  }
}

TEST(FramingTest, StringRoundTrips) {
  std::string buffer;
  AppendLengthPrefixedString(buffer, "lights");
  AppendLengthPrefixedString(buffer, "");
  PayloadReader reader(buffer);
  auto first = reader.ReadString();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, "lights");
  auto second = reader.ReadString();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "");
  EXPECT_TRUE(reader.ExpectEnd().ok());
}

TEST(FramingTest, StringLengthBeyondPayloadFails) {
  std::string buffer;
  AppendVarint(buffer, 100);  // promises 100 bytes
  buffer += "short";
  PayloadReader reader(buffer);
  EXPECT_FALSE(reader.ReadString().ok());
}

TEST(FramingTest, SingleFrameDecodes) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(FrameType::kPing));
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, FrameType::kPing);
  EXPECT_TRUE(frame->payload.empty());
  EXPECT_EQ(decoder.Next().status().code(), ErrorCode::kNotFound);
}

TEST(FramingTest, EveryByteSplitDecodes) {
  // The hard fragmentation case: three frames delivered one byte at a
  // time must decode to exactly the same three frames.
  std::string stream;
  stream += EncodeFrame(FrameType::kQuery, EncodeQuery("lights"));
  stream += EncodeFrame(FrameType::kPing);
  std::vector<BatchReading> readings = {{0, 1, 2.5}, {1, 1, 2.25}};
  stream += EncodeFrame(FrameType::kSubmitBatch,
                        EncodeSubmitBatch("shelf", readings));
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const char byte : stream) {
    decoder.Feed(std::string_view(&byte, 1));
    for (;;) {
      auto frame = decoder.Next();
      if (!frame.ok()) {
        ASSERT_EQ(frame.status().code(), ErrorCode::kNotFound);
        break;
      }
      frames.push_back(std::move(*frame));
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kQuery);
  EXPECT_EQ(frames[1].type, FrameType::kPing);
  EXPECT_EQ(frames[2].type, FrameType::kSubmitBatch);
  std::string group;
  std::vector<BatchReading> decoded;
  ASSERT_TRUE(DecodeSubmitBatch(frames[2].payload, &group, &decoded).ok());
  EXPECT_EQ(group, "shelf");
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[1].value, 2.25);
}

TEST(FramingTest, ManyFramesInOneSegmentDecode) {
  std::string stream;
  constexpr size_t kFrames = 64;
  for (size_t i = 0; i < kFrames; ++i) {
    stream += EncodeFrame(FrameType::kOk, EncodeOk(i));
  }
  FrameDecoder decoder;
  decoder.Feed(stream);
  for (size_t i = 0; i < kFrames; ++i) {
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.ok()) << i;
    uint64_t accepted = 0;
    ASSERT_TRUE(DecodeOk(frame->payload, &accepted).ok());
    EXPECT_EQ(accepted, i);
  }
  EXPECT_EQ(decoder.Next().status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FramingTest, ZeroLengthFramePoisons) {
  FrameDecoder decoder;
  decoder.Feed(std::string(1, '\0'));  // body_len = 0
  auto frame = decoder.Next();
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), ErrorCode::kParseError);
  EXPECT_TRUE(decoder.poisoned());
  // Poison is permanent: later feeds are ignored, Next keeps failing.
  decoder.Feed(EncodeFrame(FrameType::kPing));
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(FramingTest, OversizedLengthPoisons) {
  std::string stream;
  AppendVarint(stream, kMaxFrameBytes + 1);
  FrameDecoder decoder;
  decoder.Feed(stream);
  auto frame = decoder.Next();
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), ErrorCode::kParseError);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FramingTest, MaxLengthFrameDecodesAtLimit) {
  // Exactly at the decoder's limit must still decode.
  constexpr size_t kLimit = 4096;
  FrameDecoder decoder(kLimit);
  const std::string payload(kLimit - 1, 'x');  // body = type + payload
  decoder.Feed(EncodeFrame(FrameType::kText, payload));
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->payload.size(), kLimit - 1);
  // One byte over the limit poisons.
  FrameDecoder strict(kLimit);
  strict.Feed(EncodeFrame(FrameType::kText, payload + "y"));
  EXPECT_EQ(strict.Next().status().code(), ErrorCode::kParseError);
}

TEST(FramingTest, OverlongLengthVarintPoisons) {
  // Six continuation bytes in the length prefix exceed the 5-byte cap
  // even though a uint64 varint could be longer.
  FrameDecoder decoder;
  decoder.Feed(std::string(6, static_cast<char>(0x80)));
  auto frame = decoder.Next();
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), ErrorCode::kParseError);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FramingTest, PartialLengthVarintWaits) {
  // A continuation byte with nothing after it is "need more", not error.
  FrameDecoder decoder;
  decoder.Feed(std::string(1, static_cast<char>(0x80)));
  EXPECT_EQ(decoder.Next().status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(decoder.poisoned());
}

TEST(FramingTest, TrailingBytesParseAsTraceContextField) {
  // Trailing payload bytes are the optional trace-context field.  A
  // version-0 field and a truncated v1 field are protocol violations; a
  // future field version is skipped (forward tolerance).
  std::string zero_version = EncodeQuery("lights");
  zero_version.push_back('\0');
  std::string group;
  Status decoded = DecodeQuery(zero_version, &group);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.code(), ErrorCode::kParseError);

  std::string truncated = EncodeQuery("lights");
  truncated.push_back('\x01');  // v1 header with no trace id after it
  decoded = DecodeQuery(truncated, &group);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.code(), ErrorCode::kParseError);

  std::string future = EncodeQuery("lights");
  future.push_back('\x07');       // version 7 ...
  future += "future-field-bytes";  // ... skip the remainder
  WireTraceContext trace;
  trace.trace_id = 99;  // must be cleared on absent/unknown context
  EXPECT_TRUE(DecodeQuery(future, &group, &trace).ok());
  EXPECT_EQ(group, "lights");
  EXPECT_FALSE(trace.valid());
}

TEST(FramingTest, TraceContextRoundTrips) {
  WireTraceContext trace;
  trace.trace_id = 0xfeedfacecafebeefull;
  trace.parent_span_id = 42;
  trace.flags = 1;
  const std::string payload = EncodeQuery("lights", &trace);
  // Untraced encoding is byte-identical to the pre-trace format.
  EXPECT_EQ(EncodeQuery("lights"), EncodeQuery("lights", nullptr));
  EXPECT_GT(payload.size(), EncodeQuery("lights").size());

  std::string group;
  WireTraceContext decoded;
  ASSERT_TRUE(DecodeQuery(payload, &group, &decoded).ok());
  EXPECT_EQ(group, "lights");
  EXPECT_EQ(decoded.trace_id, trace.trace_id);
  EXPECT_EQ(decoded.parent_span_id, trace.parent_span_id);
  EXPECT_EQ(decoded.flags, trace.flags);

  // Decoders that are handed no context slot still validate the field.
  EXPECT_TRUE(DecodeQuery(payload, &group).ok());
}

TEST(FramingTest, SubmitBatchSeqCarriesTraceContext) {
  const std::vector<BatchReading> readings = {{0, 1, 2.5}, {1, 1, 2.75}};
  WireTraceContext trace;
  trace.trace_id = 7;
  trace.parent_span_id = 3;
  trace.flags = 1;
  const std::string payload =
      EncodeSubmitBatchSeq("client-a", 12, "g", readings, &trace);
  std::string client_id, group;
  uint64_t seq = 0;
  std::vector<BatchReading> decoded_readings;
  WireTraceContext decoded;
  ASSERT_TRUE(DecodeSubmitBatchSeq(payload, &client_id, &seq, &group,
                                   &decoded_readings, &decoded)
                  .ok());
  EXPECT_EQ(client_id, "client-a");
  EXPECT_EQ(seq, 12u);
  EXPECT_EQ(group, "g");
  EXPECT_EQ(decoded_readings.size(), 2u);
  EXPECT_EQ(decoded.trace_id, 7u);
  EXPECT_EQ(decoded.parent_span_id, 3u);
}

TEST(FramingTest, SubmitBatchCountBeyondPayloadRejected) {
  // An absurd reading count with a tiny payload must fail before any
  // allocation, not reserve gigabytes.
  std::string payload;
  AppendLengthPrefixedString(payload, "g");
  AppendVarint(payload, std::numeric_limits<uint32_t>::max());
  std::string group;
  std::vector<BatchReading> readings;
  const Status decoded = DecodeSubmitBatch(payload, &group, &readings);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.code(), ErrorCode::kParseError);
}

TEST(FramingTest, SubmitBatchRoundTrips) {
  std::vector<BatchReading> readings;
  for (uint64_t r = 0; r < 4; ++r) {
    for (uint64_t m = 0; m < 3; ++m) {
      readings.push_back(BatchReading{m, r, 100.0 + static_cast<double>(r) +
                                                static_cast<double>(m) * 0.25});
    }
  }
  const std::string payload = EncodeSubmitBatch("lights", readings);
  std::string group;
  std::vector<BatchReading> decoded;
  ASSERT_TRUE(DecodeSubmitBatch(payload, &group, &decoded).ok());
  EXPECT_EQ(group, "lights");
  ASSERT_EQ(decoded.size(), readings.size());
  for (size_t i = 0; i < readings.size(); ++i) {
    EXPECT_EQ(decoded[i].module, readings[i].module);
    EXPECT_EQ(decoded[i].round, readings[i].round);
    EXPECT_EQ(decoded[i].value, readings[i].value);
  }
}

TEST(FramingTest, TypedMessagesRoundTrip) {
  {
    const std::string payload = EncodeClose("shelf", 17);
    std::string group;
    uint64_t round = 0;
    ASSERT_TRUE(DecodeClose(payload, &group, &round).ok());
    EXPECT_EQ(group, "shelf");
    EXPECT_EQ(round, 17u);
  }
  {
    std::string reason;
    ASSERT_TRUE(DecodeError(EncodeError("busy"), &reason).ok());
    EXPECT_EQ(reason, "busy");
  }
  {
    double value = 0;
    ASSERT_TRUE(DecodeValue(EncodeValue(98.75), &value).ok());
    EXPECT_EQ(value, 98.75);
  }
  {
    std::string text;
    ASSERT_TRUE(DecodeText(EncodeText("HEALTH 0\n"), &text).ok());
    EXPECT_EQ(text, "HEALTH 0\n");
  }
  {
    const std::vector<std::string> groups = {"a", "b", "c"};
    std::vector<std::string> decoded;
    ASSERT_TRUE(DecodeGroupList(EncodeGroupList(groups), &decoded).ok());
    EXPECT_EQ(decoded, groups);
  }
}

TEST(FramingTest, DecoderCompactionPreservesStream) {
  // Enough traffic to trigger the lazy compaction path repeatedly.
  FrameDecoder decoder;
  const std::string frame =
      EncodeFrame(FrameType::kText, EncodeText(std::string(1000, 'z')));
  constexpr size_t kCount = 200;
  size_t decoded = 0;
  for (size_t i = 0; i < kCount; ++i) {
    decoder.Feed(frame);
    // Drain only every third feed so the buffer grows and compacts.
    if (i % 3 != 0) continue;
    for (;;) {
      auto next = decoder.Next();
      if (!next.ok()) break;
      ++decoded;
      EXPECT_EQ(next->type, FrameType::kText);
    }
  }
  for (;;) {
    auto next = decoder.Next();
    if (!next.ok()) break;
    ++decoded;
  }
  EXPECT_EQ(decoded, kCount);
}

}  // namespace
}  // namespace avoc::runtime
