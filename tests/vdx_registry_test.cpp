#include "vdx/registry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "vdx/factory.h"

namespace avoc::vdx {
namespace {

class RegistryFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "avoc_vdx_registry";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(RegistryFileTest, WriteAndReadSpecFile) {
  const Spec original = ExportSpec(core::AlgorithmId::kAvoc);
  ASSERT_TRUE(WriteSpecFile(Path("avoc.json"), original).ok());
  auto loaded = ReadSpecFile(Path("avoc.json"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->algorithm_name, "AVOC");
  EXPECT_EQ(loaded->history, HistoryKind::kHybrid);
  EXPECT_TRUE(loaded->bootstrapping);
}

TEST_F(RegistryFileTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadSpecFile(Path("nope.json")).ok());
}

TEST_F(RegistryFileTest, ReadMalformedFileNamesTheFile) {
  {
    std::ofstream out(Path("broken.json"));
    out << "{ not json";
  }
  auto result = ReadSpecFile(Path("broken.json"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("broken.json"), std::string::npos);
}

TEST_F(RegistryFileTest, LoadDirectoryRegistersByStem) {
  ASSERT_TRUE(
      WriteSpecFile(Path("alpha.json"), ExportSpec(core::AlgorithmId::kAvoc))
          .ok());
  ASSERT_TRUE(
      WriteSpecFile(Path("beta.vdx"), ExportSpec(core::AlgorithmId::kHybrid))
          .ok());
  {
    std::ofstream out(Path("ignored.txt"));
    out << "not a spec";
  }
  SpecRegistry registry;
  auto loaded = registry.LoadDirectory(dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 2u);
  EXPECT_TRUE(registry.contains("alpha"));
  EXPECT_TRUE(registry.contains("beta"));
  EXPECT_FALSE(registry.contains("ignored"));
}

TEST_F(RegistryFileTest, LoadDirectoryFailsOnMalformedSpec) {
  {
    std::ofstream out(Path("bad.json"));
    out << "{}";
  }
  SpecRegistry registry;
  EXPECT_FALSE(registry.LoadDirectory(dir_.string()).ok());
}

TEST(RegistryTest, LoadMissingDirectoryFails) {
  SpecRegistry registry;
  EXPECT_FALSE(registry.LoadDirectory("/no/such/directory").ok());
}

TEST(RegistryTest, RegisterAndGet) {
  SpecRegistry registry;
  registry.Register("mine", ExportSpec(core::AlgorithmId::kStandard));
  EXPECT_TRUE(registry.contains("mine"));
  auto spec = registry.Get("mine");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->history, HistoryKind::kStandard);
  EXPECT_FALSE(registry.Get("other").ok());
}

TEST(RegistryTest, RegisterByAlgorithmNameLowercases) {
  SpecRegistry registry;
  registry.Register(ExportSpec(core::AlgorithmId::kAvoc));  // name "AVOC"
  EXPECT_TRUE(registry.contains("avoc"));
}

TEST(RegistryTest, RegisterReplaces) {
  SpecRegistry registry;
  registry.Register("x", ExportSpec(core::AlgorithmId::kStandard));
  registry.Register("x", ExportSpec(core::AlgorithmId::kHybrid));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Get("x")->history, HistoryKind::kHybrid);
}

TEST(RegistryTest, WithBuiltinsContainsAllPresets) {
  const SpecRegistry registry = SpecRegistry::WithBuiltins();
  EXPECT_EQ(registry.size(), 7u);
  for (const core::AlgorithmId id : core::AllAlgorithms()) {
    EXPECT_TRUE(registry.contains(core::AlgorithmName(id)))
        << core::AlgorithmName(id);
  }
  const auto names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RegistryTest, BuiltinSpecsBuildWorkingVoters) {
  const SpecRegistry registry = SpecRegistry::WithBuiltins();
  for (const std::string& name : registry.Names()) {
    auto spec = registry.Get(name);
    ASSERT_TRUE(spec.ok());
    auto voter = MakeVoter(*spec, 4);
    ASSERT_TRUE(voter.ok()) << name << ": " << voter.status().ToString();
    auto result = voter->CastVote(std::vector<double>{5.0, 5.1, 4.9, 5.05});
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_NEAR(*result->value, 5.0, 0.2) << name;
  }
}

}  // namespace
}  // namespace avoc::vdx
