// Seed-sweep chaos suite for the SHARDED remote runtime.
//
// Same contract as runtime_chaos_test.cpp, but the server under fault is
// a 3-shard ShardedVoterServer on three SimReactors: the workload spans
// three groups owned by three different shards, so every recovery path
// crosses the accept hand-off, migration, and cross-shard forwarding
// machinery.  Assertions:
//
//   1. Convergence: once the network heals, every group's sink trace is
//      BIT-IDENTICAL to the fault-free run of the same workload on a
//      SINGLE-shard server — sharding plus chaos changes nothing about
//      what gets fused.
//   2. Determinism: re-running a seed reproduces the identical simulated
//      event trace, byte for byte, even with three reactors exchanging
//      cross-shard mailbox posts.
//
// Reproduce one seed with AVOC_CHAOS_SEED=<n> (all bands collapse to it).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/resilient.h"
#include "runtime/sharded_remote.h"
#include "runtime/sim_net.h"
#include "util/rng.h"
#include "util/strings.h"

namespace avoc::runtime {
namespace {

constexpr uint16_t kPort = 7;
constexpr size_t kModules = 3;
constexpr size_t kRounds = 6;
constexpr uint64_t kHorizonMs = 4000;

// Owned by shards 2, 1, 0 of a 3-shard server (pinned by the GroupRouter
// golden test) — one group per shard, so the single resilient connection
// must migrate once and forward the other two groups every round.
const char* kGroupNames[] = {"group-0", "group-1", "group-2"};

/// Per-group reading batches for one seed — a function of the seed only,
/// so faulty/sharded and fault-free/single-shard runs submit identically.
std::vector<std::vector<BatchReading>> WorkloadFor(uint64_t seed,
                                                   size_t group_index) {
  Rng values(seed ^ 0xDA7A5EEDull ^ (group_index * 0x9E3779B97F4A7C15ull));
  std::vector<std::vector<BatchReading>> rounds;
  for (size_t r = 0; r < kRounds; ++r) {
    std::vector<BatchReading> batch;
    for (uint64_t m = 0; m < kModules; ++m) {
      batch.push_back(BatchReading{m, r, 20.0 + values.Gaussian(0.0, 2.0)});
    }
    rounds.push_back(std::move(batch));
  }
  return rounds;
}

/// Bit-exact rendering of every group's fused outputs, in group order.
std::string SinkTraces(const ShardedVoterServer& server) {
  std::string trace;
  for (const char* group : kGroupNames) {
    auto sink = server.sink(group);
    if (!sink.ok()) return "<no sink>";
    trace += group;
    trace += ":\n";
    for (const OutputMessage& out : (*sink)->outputs()) {
      trace += StrFormat("%zu %d %a\n", out.round,
                         static_cast<int>(out.result.outcome),
                         out.result.value.value_or(-0.0));
    }
  }
  return trace;
}

struct ChaosRun {
  std::string sink_trace;
  std::string world_trace;
  bool workload_ok = false;
  size_t reconnects = 0;
  size_t migrations = 0;
  size_t forwarded = 0;
};

ChaosRun RunWorkload(uint64_t seed, bool with_faults, size_t shards) {
  SimWorld::Options options;
  if (with_faults) options.fault_plan = FaultPlan::Chaos(seed, kHorizonMs);
  SimWorld world(seed, options);
  obs::Registry registry;
  auto listener = world.Listen(kPort);
  if (!listener.ok()) return {};
  std::vector<std::shared_ptr<Reactor>> reactors;
  reactors.push_back(world.reactor());
  for (size_t s = 1; s < shards; ++s) reactors.push_back(world.NewReactor());
  ShardedServerOptions server_options;
  server_options.shards = shards;
  auto server = ShardedVoterServer::StartOnReactors(
      server_options, std::move(*listener), std::move(reactors),
      /*spawn_loop_threads=*/false, /*store=*/nullptr, &registry);
  if (!server.ok()) return {};
  for (const char* group : kGroupNames) {
    if (!(*server)
             ->AddGroup(group,
                        *core::MakeEngine(core::AlgorithmId::kAvoc, kModules))
             .ok()) {
      return {};
    }
  }
  if (!(*server)->Serve().ok()) return {};

  RetryPolicy policy;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 200;
  policy.request_timeout_ms = 150;
  policy.deadline_ms = 10 * kHorizonMs;  // faults always heal well before
  ResilientVoterClient client([&world] { return world.Connect(kPort); },
                              &world, "sharded-chaos-client", policy,
                              seed ^ 0xBACC0FFull, &registry);

  ChaosRun run;
  run.workload_ok = true;
  // Round-major across groups: every round touches all three shards
  // through the one connection.
  std::vector<std::vector<std::vector<BatchReading>>> workloads;
  for (size_t g = 0; g < std::size(kGroupNames); ++g) {
    workloads.push_back(WorkloadFor(seed, g));
  }
  for (size_t r = 0; r < kRounds && run.workload_ok; ++r) {
    for (size_t g = 0; g < std::size(kGroupNames); ++g) {
      auto accepted = client.SubmitBatch(kGroupNames[g], workloads[g][r]);
      if (!accepted.ok() || *accepted != workloads[g][r].size()) {
        run.workload_ok = false;
        break;
      }
    }
  }
  run.sink_trace = SinkTraces(**server);
  run.world_trace = world.TraceText();
  run.reconnects = client.reconnects();
  run.migrations = (*server)->migrations();
  run.forwarded = (*server)->forwarded_requests();
  (*server)->Stop();
  return run;
}

/// Seed band for one gtest shard, honoring the AVOC_CHAOS_SEED override.
std::vector<uint64_t> SeedBand(uint64_t base, size_t count) {
  if (const char* forced = std::getenv("AVOC_CHAOS_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(forced, nullptr, 10))};
  }
  std::vector<uint64_t> seeds;
  for (size_t i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

class ShardedChaosShard : public ::testing::TestWithParam<uint64_t> {};

// 4 bands x 60 seeds = 240 distinct fault schedules.
constexpr size_t kSeedsPerShard = 60;

TEST_P(ShardedChaosShard, HealedShardedRunsMatchFaultFreeSingleShard) {
  const uint64_t base = GetParam();
  for (uint64_t seed : SeedBand(base, kSeedsPerShard)) {
    SCOPED_TRACE(StrFormat("seed=%llu (AVOC_CHAOS_SEED=%llu to reproduce)",
                           static_cast<unsigned long long>(seed),
                           static_cast<unsigned long long>(seed)));
    const ChaosRun faulty = RunWorkload(seed, /*with_faults=*/true,
                                        /*shards=*/3);
    ASSERT_TRUE(faulty.workload_ok);
    // The fault-free single-shard reference for the same workload.
    const ChaosRun clean = RunWorkload(seed, /*with_faults=*/false,
                                       /*shards=*/1);
    ASSERT_TRUE(clean.workload_ok);
    ASSERT_NE(clean.sink_trace, "<no sink>");
    EXPECT_EQ(faulty.sink_trace, clean.sink_trace);
    EXPECT_FALSE(clean.sink_trace.empty());
    // The sharded run really exercised the cross-shard machinery.
    EXPECT_GE(faulty.migrations, 1u);
    EXPECT_GE(faulty.forwarded, 1u);
  }
}

TEST_P(ShardedChaosShard, SameSeedReplaysIdenticalEventTrace) {
  const uint64_t base = GetParam();
  // Every 5th seed: run the faulty multi-shard world twice, diff traces.
  for (uint64_t seed : SeedBand(base, kSeedsPerShard)) {
    if (std::getenv("AVOC_CHAOS_SEED") == nullptr && seed % 5 != 0) continue;
    SCOPED_TRACE(StrFormat("seed=%llu", static_cast<unsigned long long>(seed)));
    const ChaosRun first = RunWorkload(seed, /*with_faults=*/true, 3);
    const ChaosRun second = RunWorkload(seed, /*with_faults=*/true, 3);
    ASSERT_TRUE(first.workload_ok);
    EXPECT_EQ(first.world_trace, second.world_trace);
    EXPECT_EQ(first.sink_trace, second.sink_trace);
    EXPECT_EQ(first.reconnects, second.reconnects);
    EXPECT_EQ(first.migrations, second.migrations);
    EXPECT_EQ(first.forwarded, second.forwarded);
    EXPECT_FALSE(first.world_trace.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Bands, ShardedChaosShard,
                         ::testing::Values(uint64_t{1000}, uint64_t{2000},
                                           uint64_t{3000}, uint64_t{4000}));

// Across one band the fault machinery must actually bite the sharded
// paths: reconnects happen, and re-pinned connections migrate again.
TEST(ShardedChaosSweep, FaultsExerciseReMigrationAfterReconnect) {
  if (std::getenv("AVOC_CHAOS_SEED") != nullptr) GTEST_SKIP();
  size_t runs_with_reconnects = 0;
  size_t runs_with_remigration = 0;
  for (uint64_t seed = 1000; seed < 1000 + kSeedsPerShard; ++seed) {
    const ChaosRun run = RunWorkload(seed, /*with_faults=*/true, 3);
    if (run.reconnects > 0) ++runs_with_reconnects;
    if (run.reconnects > 0 && run.migrations >= 2) ++runs_with_remigration;
  }
  EXPECT_GT(runs_with_reconnects, 0u);
  EXPECT_GT(runs_with_remigration, 0u);
}

}  // namespace
}  // namespace avoc::runtime
