#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/remote.h"

namespace avoc::runtime {
namespace {

class ObsEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(manager_
                    .AddGroup("lights",
                              *core::MakeEngine(core::AlgorithmId::kAvoc, 3))
                    .ok());
    auto server = RemoteVoterServer::Start(&manager_, 0);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  void TearDown() override { server_->Stop(); }

  RemoteVoterClient MustConnect() {
    auto client = RemoteVoterClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  /// Submits one full round and waits until the group's sink fused it.
  void RunOneRound(RemoteVoterClient& client) {
    ASSERT_TRUE(client.Submit("lights", 0, 0, 100.0).ok());
    ASSERT_TRUE(client.Submit("lights", 1, 0, 101.0).ok());
    ASSERT_TRUE(client.Submit("lights", 2, 0, 99.5).ok());
    auto sink = manager_.sink("lights");
    ASSERT_TRUE(sink.ok());
    for (int i = 0; i < 200 && (*sink)->output_count() < 1; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE((*sink)->output_count(), 1u);
  }

  obs::Registry registry_;
  VoterGroupManager manager_{nullptr, &registry_};
  std::unique_ptr<RemoteVoterServer> server_;
};

TEST_F(ObsEndpointTest, MetricsScrapeReturnsGroupCounters) {
  RemoteVoterClient client = MustConnect();
  RunOneRound(client);
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_FALSE(metrics->empty());
  // The per-group round counter made it through the live scrape
  // (GroupRunner observers flush every round).
  EXPECT_NE(metrics->find("avoc_rounds_total{group=\"lights\"} 1"),
            std::string::npos)
      << *metrics;
  EXPECT_NE(metrics->find("avoc_hub_readings_total{group=\"lights\"} 3"),
            std::string::npos)
      << *metrics;
}

TEST_F(ObsEndpointTest, MetricsScrapeReflectsRegistryState) {
  registry_.GetCounter("avoc_custom_marker_total").Add(7);
  RemoteVoterClient client = MustConnect();
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("avoc_custom_marker_total 7"), std::string::npos);
}

TEST_F(ObsEndpointTest, HealthListsGroupsWithStatus) {
  RemoteVoterClient client = MustConnect();
  RunOneRound(client);
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  ASSERT_EQ(health->size(), 1u);
  const std::string& line = (*health)[0];
  EXPECT_NE(line.find("GROUP lights"), std::string::npos) << line;
  EXPECT_NE(line.find("modules=3"), std::string::npos) << line;
  EXPECT_NE(line.find("outputs=1"), std::string::npos) << line;
  EXPECT_NE(line.find("status=ok"), std::string::npos) << line;
}

TEST_F(ObsEndpointTest, RawMetricsResponseIsEndTerminated) {
  auto raw = TcpConnection::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->SendLine("METRICS").ok());
  std::vector<std::string> lines;
  for (int i = 0; i < 10000; ++i) {
    auto line = raw->ReceiveLine();
    ASSERT_TRUE(line.ok());
    if (*line == "END") break;
    lines.push_back(std::move(*line));
  }
  EXPECT_FALSE(lines.empty());
}

TEST_F(ObsEndpointTest, MetricsWithoutRegistryIsAnError) {
  VoterGroupManager bare_manager;  // no registry wired
  ASSERT_TRUE(bare_manager
                  .AddGroup("lights",
                            *core::MakeEngine(core::AlgorithmId::kAvoc, 3))
                  .ok());
  auto bare_server = RemoteVoterServer::Start(&bare_manager, 0);
  ASSERT_TRUE(bare_server.ok());
  auto client = RemoteVoterClient::Connect("127.0.0.1",
                                           (*bare_server)->port());
  ASSERT_TRUE(client.ok());
  auto metrics = client->Metrics();
  EXPECT_FALSE(metrics.ok());
  // HEALTH still works without a registry.
  auto health = client->Health();
  EXPECT_TRUE(health.ok()) << health.status().ToString();
  (*bare_server)->Stop();
}

}  // namespace
}  // namespace avoc::runtime
