#include "stats/convergence.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace avoc::stats {
namespace {

ConvergenceOptions Options(double tolerance, size_t window,
                           bool permanent = false) {
  ConvergenceOptions options;
  options.tolerance = tolerance;
  options.window = window;
  options.require_permanent = permanent;
  return options;
}

TEST(ConvergenceTest, ImmediateConvergence) {
  const std::vector<double> series = {1.0, 1.0, 1.0, 1.0, 1.0};
  const auto report = MeasureConvergence(series, 1.0, Options(0.1, 3));
  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_EQ(*report.converged_at, 0u);
  EXPECT_NEAR(report.residual_bias, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.peak_error, 0.0);
}

TEST(ConvergenceTest, SpikeThenSettle) {
  const std::vector<double> series = {5.0, 3.0, 1.1, 1.0, 1.0, 1.0, 1.0};
  const auto report = MeasureConvergence(series, 1.0, Options(0.2, 3));
  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_EQ(*report.converged_at, 2u);
  EXPECT_DOUBLE_EQ(report.peak_error, 4.0);
}

TEST(ConvergenceTest, NeverConverges) {
  const std::vector<double> series = {2.0, 2.0, 2.0};
  const auto report = MeasureConvergence(series, 1.0, Options(0.1, 2));
  EXPECT_FALSE(report.converged_at.has_value());
  EXPECT_TRUE(std::isnan(report.residual_bias));
  EXPECT_DOUBLE_EQ(report.peak_error, 1.0);
}

TEST(ConvergenceTest, WindowRequiresConsecutiveRounds) {
  // Single in-tolerance rounds interleaved with excursions: a window of 3
  // never fills.
  const std::vector<double> series = {1.0, 5.0, 1.0, 5.0, 1.0, 5.0};
  const auto report = MeasureConvergence(series, 1.0, Options(0.1, 3));
  EXPECT_FALSE(report.converged_at.has_value());
}

TEST(ConvergenceTest, LaterSpikeAllowedByDefault) {
  std::vector<double> series(20, 1.0);
  series[0] = 9.0;
  series[15] = 9.0;  // isolated late spike
  const auto report = MeasureConvergence(series, 1.0, Options(0.1, 5));
  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_EQ(*report.converged_at, 1u);
}

TEST(ConvergenceTest, PermanentModeRejectsLaterSpike) {
  std::vector<double> series(20, 1.0);
  series[0] = 9.0;
  series[13] = 9.0;
  const auto report =
      MeasureConvergence(series, 1.0, Options(0.1, 5, /*permanent=*/true));
  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_EQ(*report.converged_at, 14u);  // after the last excursion
}

TEST(ConvergenceTest, PerRoundReferenceSeries) {
  const std::vector<double> reference = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> series = {9.0, 2.05, 3.05, 4.05};
  const auto report =
      MeasureConvergence(series, reference, Options(0.1, 2));
  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_EQ(*report.converged_at, 1u);
  EXPECT_NEAR(report.residual_bias, 0.05, 1e-12);
}

TEST(ConvergenceTest, ShortTailOfLongSeriesDoesNotCount) {
  // The series ends in-tolerance but with fewer rounds than the window:
  // not enough evidence of stability.
  const std::vector<double> series = {9.0, 9.0, 1.0, 1.0};
  const auto report = MeasureConvergence(series, 1.0, Options(0.1, 5));
  EXPECT_FALSE(report.converged_at.has_value());
}

TEST(ConvergenceTest, WholeSeriesShorterThanWindowCounts) {
  // A fully in-tolerance series shorter than the window converges at 0
  // (the capture was simply short).
  const std::vector<double> series = {1.0, 1.0};
  const auto report = MeasureConvergence(series, 1.0, Options(0.1, 5));
  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_EQ(*report.converged_at, 0u);
}

TEST(ConvergenceTest, EmptySeries) {
  const std::vector<double> empty;
  const auto report = MeasureConvergence(empty, 1.0, Options(0.1, 3));
  EXPECT_FALSE(report.converged_at.has_value());
  EXPECT_DOUBLE_EQ(report.peak_error, 0.0);
}

TEST(ConvergenceTest, ResidualBiasOverStableTail) {
  const std::vector<double> series = {9.0, 1.2, 1.2, 1.2, 1.2};
  const auto report = MeasureConvergence(series, 1.0, Options(0.3, 2));
  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_EQ(*report.converged_at, 1u);
  EXPECT_NEAR(report.residual_bias, 0.2, 1e-12);
}

TEST(ConvergenceBoostTest, RatioOfOneBasedDurations) {
  ConvergenceReport fast;
  fast.converged_at = 0;  // 1 round
  ConvergenceReport slow;
  slow.converged_at = 7;  // 8 rounds
  const auto boost = ConvergenceBoost(fast, slow);
  ASSERT_TRUE(boost.has_value());
  EXPECT_DOUBLE_EQ(*boost, 8.0);
}

TEST(ConvergenceColumnarTest, MatchesMaterializedSeries) {
  // A masked value column must measure exactly like the continuous series
  // it encodes (suppressed rounds carry the last value forward).
  const std::vector<double> values = {9.0, 1.05, 0.0, 1.02, 1.01, 0.0, 1.0};
  const std::vector<uint8_t> engaged = {1, 1, 0, 1, 1, 0, 1};
  const std::vector<double> continuous = {9.0,  1.05, 1.05, 1.02,
                                          1.01, 1.01, 1.0};
  const auto options = Options(0.1, 3);
  const auto columnar = MeasureConvergence(values, engaged, 1.0, options);
  const auto dense = MeasureConvergence(continuous, 1.0, options);
  ASSERT_EQ(columnar.converged_at, dense.converged_at);
  EXPECT_DOUBLE_EQ(columnar.peak_error, dense.peak_error);
  EXPECT_DOUBLE_EQ(columnar.residual_bias, dense.residual_bias);
}

TEST(ConvergenceColumnarTest, LeadingGapsSeededWithFirstEngagedValue) {
  const std::vector<double> values = {0.0, 0.0, 1.0, 1.0, 1.0};
  const std::vector<uint8_t> engaged = {0, 0, 1, 1, 1};
  const auto report = MeasureConvergence(values, engaged, 1.0, Options(0.1, 3));
  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_EQ(*report.converged_at, 0u);
}

TEST(ConvergenceColumnarTest, AllSuppressedNeverConverges) {
  const std::vector<double> values = {0.0, 0.0, 0.0};
  const std::vector<uint8_t> engaged = {0, 0, 0};
  const auto report = MeasureConvergence(values, engaged, 0.0, Options(1.0, 1));
  EXPECT_FALSE(report.converged_at.has_value());
}

TEST(ConvergenceBoostTest, UnconvergedYieldsNullopt) {
  ConvergenceReport fast;
  fast.converged_at = 0;
  ConvergenceReport never;
  never.converged_at = std::nullopt;
  EXPECT_FALSE(ConvergenceBoost(fast, never).has_value());
  EXPECT_FALSE(ConvergenceBoost(never, fast).has_value());
}

}  // namespace
}  // namespace avoc::stats
