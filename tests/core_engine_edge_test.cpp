// Engine edge cases: feature interactions the per-feature suites do not
// cover (exclusion x clustering, weighting x missing values, the
// weighted-median preset path, stuck-at faults, degenerate rounds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/algorithms.h"
#include "core/batch.h"
#include "sim/fault.h"
#include "sim/light.h"

namespace avoc::core {
namespace {

VotingEngine MustCreate(size_t modules, const EngineConfig& config) {
  auto engine = VotingEngine::Create(modules, config);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

TEST(EngineEdgeTest, ExclusionRunsBeforeClustering) {
  // A gross outlier is removed by stddev exclusion; the remaining values
  // form one cluster, so the bootstrap clustering has nothing to cut.
  EngineConfig config = MakeConfig(AlgorithmId::kAvoc);
  config.exclusion.mode = ExclusionMode::kStdDev;
  config.exclusion.threshold = 1.5;
  VotingEngine engine = MustCreate(5, config);
  auto result =
      engine.CastVote(std::vector<double>{10.0, 10.1, 9.9, 10.05, 500.0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->excluded[4]);
  EXPECT_TRUE(result->used_clustering);  // bootstrap still gates round 1
  EXPECT_NEAR(*result->value, 10.0, 0.2);
  // The excluded module's history still took the hit.
  EXPECT_LT(result->history[4], 1.0);
}

TEST(EngineEdgeTest, AgreementWeightingIgnoresHistory) {
  EngineConfig config = MakeConfig(AlgorithmId::kHybrid);
  config.weighting = RoundWeighting::kAgreement;
  config.module_elimination = false;
  VotingEngine engine = MustCreate(3, config);
  // The outlier's agreement score is 0 -> zero weight on round ONE, even
  // though its record is still 1.
  auto result = engine.CastVote(std::vector<double>{10.0, 10.1, 50.0});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->weights[2], 0.0);
  EXPECT_NEAR(*result->value, 10.05, 0.1);
}

TEST(EngineEdgeTest, CombinedWeightingMultipliesHistoryAndAgreement) {
  EngineConfig config = MakeConfig(AlgorithmId::kHybrid);
  config.weighting = RoundWeighting::kCombined;
  config.module_elimination = false;
  config.collation = Collation::kWeightedAverage;
  VotingEngine engine = MustCreate(2, config);
  // With two modules, each agrees fully with the other or not at all.
  auto result = engine.CastVote(std::vector<double>{10.0, 10.1});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->weights[0], 1.0);  // h=1 * s=1
}

TEST(EngineEdgeTest, WeightedMedianPreset) {
  PresetParams params;
  params.collation = Collation::kWeightedMedian;
  auto engine = MakeEngine(AlgorithmId::kStandard, 5, params);
  ASSERT_TRUE(engine.ok());
  // Median is robust to one wild value even without history.
  auto result =
      engine->CastVote(std::vector<double>{10.0, 10.1, 9.9, 10.05, 500.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(*result->value, 10.05, 0.2);
}

TEST(EngineEdgeTest, AllButOneMissingStillVotesUnderLooseQuorum) {
  EngineConfig config = MakeConfig(AlgorithmId::kAvoc);
  config.quorum.fraction = 0.1;
  VotingEngine engine = MustCreate(5, config);
  Round round(5);
  round[2] = 42.0;
  auto result = engine.CastVote(round);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kVoted);
  EXPECT_DOUBLE_EQ(*result->value, 42.0);
  EXPECT_EQ(result->present_count, 1u);
  EXPECT_TRUE(result->had_majority);  // 1 of 1 is a majority
}

TEST(EngineEdgeTest, IdenticalValuesEverywhere) {
  for (const AlgorithmId id : AllAlgorithms()) {
    auto engine = MakeEngine(id, 4);
    ASSERT_TRUE(engine.ok());
    for (int r = 0; r < 3; ++r) {
      auto result = engine->CastVote(std::vector<double>(4, 7.25));
      ASSERT_TRUE(result.ok()) << AlgorithmName(id);
      EXPECT_DOUBLE_EQ(*result->value, 7.25) << AlgorithmName(id);
    }
  }
}

TEST(EngineEdgeTest, NegativeValuesEverywhere) {
  // RSSI-style all-negative rounds through every preset.
  for (const AlgorithmId id : AllAlgorithms()) {
    PresetParams params;
    params.scale = ThresholdScale::kAbsolute;
    params.error = 5.0;
    auto engine = MakeEngine(id, 3, params);
    ASSERT_TRUE(engine.ok());
    auto result = engine->CastVote(std::vector<double>{-70.0, -72.0, -71.0});
    ASSERT_TRUE(result.ok()) << AlgorithmName(id);
    EXPECT_GE(*result->value, -72.0) << AlgorithmName(id);
    EXPECT_LE(*result->value, -70.0) << AlgorithmName(id);
  }
}

TEST(EngineEdgeTest, ZeroCrossingValuesWithRelativeThreshold) {
  // Values straddling zero: the relative floor keeps margins sane.
  auto engine = MakeEngine(AlgorithmId::kAvoc, 3);
  ASSERT_TRUE(engine.ok());
  auto result = engine->CastVote(std::vector<double>{-0.01, 0.0, 0.02});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kVoted);
}

TEST(EngineEdgeTest, StuckAtSensorGetsEliminated) {
  // A sensor frozen at a once-valid value becomes an outlier once the
  // signal swings beyond the agreement margin; history-aware voting weeds
  // it out for those stretches.  (With the default gentle daylight cycle
  // a frozen sensor stays *plausible* — physically correct — so the test
  // amplifies the swing well past the relative margin.)
  sim::LightScenarioParams params;
  params.rounds = 2000;
  params.daylight_amplitude = 2500.0;
  auto table = sim::LightScenario(params).MakeReferenceTable();
  ASSERT_TRUE(sim::InjectStuckAt(table, 1, 0).ok());  // E2 frozen at round 0

  auto batch = RunAlgorithm(AlgorithmId::kAvoc, table);
  ASSERT_TRUE(batch.ok());
  size_t eliminated_rounds = 0;
  for (size_t r = 0; r < batch->round_count(); ++r) {
    if (batch->weights(r)[1] == 0.0) ++eliminated_rounds;
  }
  // The frozen sensor loses its vote for a substantial part of the
  // capture (the daylight peaks), and the fused output keeps tracking the
  // live sensors: its span covers most of the amplified swing.
  EXPECT_GT(eliminated_rounds, batch->round_count() / 4);
  const auto outputs = batch->ContinuousOutputs();
  const auto [lo, hi] = std::minmax_element(outputs.begin(), outputs.end());
  EXPECT_GT(*hi - *lo, 4000.0);
}

TEST(EngineEdgeTest, IntermittentOutageAndRecovery) {
  // A sensor goes dark for a stretch; on return it re-joins seamlessly
  // (missing rounds leave its record untouched by default).
  auto engine = MakeEngine(AlgorithmId::kAvoc, 3);
  ASSERT_TRUE(engine.ok());
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(
        engine->CastVote(std::vector<double>{10.0, 10.1, 10.05}).ok());
  }
  for (int r = 0; r < 5; ++r) {
    Round round = {10.0, 10.1, std::nullopt};
    auto result = engine->CastVote(round);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->outcome, RoundOutcome::kVoted);
  }
  EXPECT_DOUBLE_EQ(engine->history().record(2), 1.0);  // untouched
  auto back = engine->CastVote(std::vector<double>{10.0, 10.1, 10.05});
  ASSERT_TRUE(back.ok());
  EXPECT_GT(back->weights[2], 0.0);
}

TEST(EngineEdgeTest, MissingPenaltyErodesAbsenteeRecords) {
  EngineConfig config = MakeConfig(AlgorithmId::kAvoc);
  config.history.missing_penalty = 0.2;
  VotingEngine engine = MustCreate(3, config);
  for (int r = 0; r < 5; ++r) {
    Round round = {10.0, 10.1, std::nullopt};
    ASSERT_TRUE(engine.CastVote(round).ok());
  }
  EXPECT_NEAR(engine.history().record(2), 0.0, 1e-12);
}

TEST(EngineEdgeTest, RoundIndexCountsFaultedRounds) {
  EngineConfig config = MakeConfig(AlgorithmId::kAverage);
  config.quorum.fraction = 1.0;
  VotingEngine engine = MustCreate(2, config);
  Round starved = {1.0, std::nullopt};
  ASSERT_TRUE(engine.CastVote(starved).ok());
  ASSERT_TRUE(engine.CastVote(std::vector<double>{1.0, 1.0}).ok());
  EXPECT_EQ(engine.round_index(), 2u);
}

}  // namespace
}  // namespace avoc::core
