// End-to-end reproduction checks for UC-1 (§7, Fig. 6): the qualitative
// claims of the paper's light-sensor evaluation must hold on the synthetic
// reference dataset.
#include <gtest/gtest.h>

#include <cmath>

#include "core/batch.h"
#include "sim/light.h"
#include "stats/convergence.h"
#include "stats/running.h"

namespace avoc {
namespace {

using core::AlgorithmId;
using core::BatchResult;

class Uc1Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::LightScenarioParams params;
    params.rounds = 3000;  // enough rounds for every claim, fast enough CI
    scenario_ = new sim::LightScenario(params);
    clean_ = new data::RoundTable(scenario_->MakeReferenceTable());
    faulty_ = new data::RoundTable(scenario_->MakeFaultyTable());
  }
  static void TearDownTestSuite() {
    delete scenario_;
    delete clean_;
    delete faulty_;
    scenario_ = nullptr;
    clean_ = nullptr;
    faulty_ = nullptr;
  }

  static BatchResult Run(AlgorithmId id, const data::RoundTable& table) {
    auto batch = core::RunAlgorithm(id, table);
    EXPECT_TRUE(batch.ok()) << core::AlgorithmName(id);
    return std::move(*batch);
  }

  static stats::ConvergenceReport Diff(AlgorithmId id) {
    const auto clean_run = Run(id, *clean_);
    const auto faulty_run = Run(id, *faulty_);
    stats::ConvergenceOptions options;
    options.tolerance = 100.0;  // 0.1 klx on an ~18.5 klx signal
    options.window = 5;
    // Columnar form: the faulty trace's raw value/engaged columns feed the
    // measurement directly, no materialized series.
    return stats::MeasureConvergence(faulty_run.values(), faulty_run.engaged(),
                                     clean_run.ContinuousOutputs(), options);
  }

  static sim::LightScenario* scenario_;
  static data::RoundTable* clean_;
  static data::RoundTable* faulty_;
};

sim::LightScenario* Uc1Test::scenario_ = nullptr;
data::RoundTable* Uc1Test::clean_ = nullptr;
data::RoundTable* Uc1Test::faulty_ = nullptr;

TEST_F(Uc1Test, Fig6b_AllVariantsAgreeOnCleanData) {
  // "all 6 variants performed equally well, with outputs matching almost
  // completely" — every output stays within the sensors' envelope and the
  // variants' means sit within ~1% of each other.
  std::vector<double> means;
  for (const AlgorithmId id : core::AllAlgorithms()) {
    const auto batch = Run(id, *clean_);
    stats::RunningStats rs;
    for (const double v : batch.ContinuousOutputs()) rs.Add(v);
    means.push_back(rs.mean());
    EXPECT_GT(rs.min(), 17000.0) << core::AlgorithmName(id);
    EXPECT_LT(rs.max(), 20000.0) << core::AlgorithmName(id);
  }
  const double reference = means.front();
  for (const double mean : means) {
    EXPECT_NEAR(mean, reference, reference * 0.01);
  }
}

TEST_F(Uc1Test, Fig6c_FaultSkewsRawE4Band) {
  // The faulty E4 trace lives in the ~23-25 klx band of Fig. 6-c.
  stats::RunningStats rs;
  for (const double v : faulty_->ModuleValues(3)) rs.Add(v);
  EXPECT_GT(rs.min(), 22000.0);
  EXPECT_LT(rs.max(), 26000.0);
  EXPECT_NEAR(rs.mean(), 24000.0, 1500.0);
}

TEST_F(Uc1Test, Fig6e_AverageNeverRecovers) {
  // The stateless average carries the full +6000/5 = +1200 skew forever.
  const auto report = Diff(AlgorithmId::kAverage);
  EXPECT_FALSE(report.converged_at.has_value());
  EXPECT_NEAR(report.peak_error, 1200.0, 10.0);
}

TEST_F(Uc1Test, Fig6e_StandardRecoversSlowly) {
  // "the skew ... is then slowly mitigated" — standard converges, but far
  // later than ME.
  const auto standard = Diff(AlgorithmId::kStandard);
  const auto me = Diff(AlgorithmId::kModuleElimination);
  ASSERT_TRUE(standard.converged_at.has_value());
  ASSERT_TRUE(me.converged_at.has_value());
  EXPECT_GT(*standard.converged_at, 4 * *me.converged_at);
  EXPECT_GE(*standard.converged_at, 20u);
}

TEST_F(Uc1Test, Fig6e_StandardSkewNotEliminatedCompletely) {
  // Even after convergence-to-tolerance the standard algorithm keeps a
  // nonzero residual (the record decays like 1/t, never reaching 0).
  const auto clean_run = Run(AlgorithmId::kStandard, *clean_);
  const auto faulty_run = Run(AlgorithmId::kStandard, *faulty_);
  const auto clean_out = clean_run.ContinuousOutputs();
  const auto faulty_out = faulty_run.ContinuousOutputs();
  stats::RunningStats tail;
  for (size_t r = clean_out.size() - 200; r < clean_out.size(); ++r) {
    tail.Add(faulty_out[r] - clean_out[r]);
  }
  // A residual skew remains (its sign depends on which healthy sensors'
  // records were damaged during the transient).
  EXPECT_GT(std::abs(tail.mean()), 0.5);
}

TEST_F(Uc1Test, Fig6e_MeEliminatesQuickly) {
  // "the faulty sensor is quickly eliminated in round 2".
  const auto faulty_run = Run(AlgorithmId::kModuleElimination, *faulty_);
  size_t first_eliminated = faulty_run.round_count();
  for (size_t r = 0; r < faulty_run.round_count(); ++r) {
    if (faulty_run.eliminated(r)[3]) {
      first_eliminated = r;
      break;
    }
  }
  EXPECT_LE(first_eliminated, 2u);
}

TEST_F(Uc1Test, Fig6f_HybridSpikesAtBootstrapOnly) {
  const auto clean_run = Run(AlgorithmId::kHybrid, *clean_);
  const auto faulty_run = Run(AlgorithmId::kHybrid, *faulty_);
  const auto clean_out = clean_run.ContinuousOutputs();
  const auto faulty_out = faulty_run.ContinuousOutputs();
  // Round 0: the not-yet-mitigated fault skews the output.
  EXPECT_GT(std::abs(faulty_out[0] - clean_out[0]), 300.0);
  // "minus few spikes, the value is identical to the pre-error output":
  // at most 2% of later rounds deviate.
  size_t deviating = 0;
  for (size_t r = 1; r < clean_out.size(); ++r) {
    if (std::abs(faulty_out[r] - clean_out[r]) > 100.0) ++deviating;
  }
  EXPECT_LT(deviating, clean_out.size() / 50);
}

TEST_F(Uc1Test, Fig6f_AvocPrunesTheBootstrapSpike) {
  // "the initial spike is quickly pruned within the initial rounds".
  const auto clean_run = Run(AlgorithmId::kAvoc, *clean_);
  const auto faulty_run = Run(AlgorithmId::kAvoc, *faulty_);
  const auto clean_out = clean_run.ContinuousOutputs();
  const auto faulty_out = faulty_run.ContinuousOutputs();
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_LT(std::abs(faulty_out[r] - clean_out[r]), 100.0) << "round " << r;
  }
}

TEST_F(Uc1Test, Fig6f_AvocClustersExactlyOnce) {
  // "despite the clustering is only used once".
  const auto faulty_run = Run(AlgorithmId::kAvoc, *faulty_);
  EXPECT_EQ(faulty_run.clustered_rounds(), 1u);
  EXPECT_TRUE(faulty_run.used_clustering(0));
}

TEST_F(Uc1Test, AvocConvergesNoLaterThanEveryBaseline) {
  const auto avoc = Diff(AlgorithmId::kAvoc);
  ASSERT_TRUE(avoc.converged_at.has_value());
  EXPECT_EQ(*avoc.converged_at, 0u);
  for (const AlgorithmId id :
       {AlgorithmId::kStandard, AlgorithmId::kModuleElimination,
        AlgorithmId::kSoftDynamicThreshold, AlgorithmId::kHybrid}) {
    const auto baseline = Diff(id);
    if (baseline.converged_at.has_value()) {
      EXPECT_GE(*baseline.converged_at, *avoc.converged_at)
          << core::AlgorithmName(id);
    }
  }
}

TEST_F(Uc1Test, ConvergenceBoostOverHistoryBaselines) {
  // Abstract: "boosts the convergence of the measurements by 4x".  The
  // measured factor depends on the baseline: >= 2x vs Hybrid and >= 4x vs
  // the other history-based algorithms.
  const auto avoc = Diff(AlgorithmId::kAvoc);
  const auto hybrid = Diff(AlgorithmId::kHybrid);
  const auto me = Diff(AlgorithmId::kModuleElimination);
  const auto boost_hybrid = stats::ConvergenceBoost(avoc, hybrid);
  const auto boost_me = stats::ConvergenceBoost(avoc, me);
  ASSERT_TRUE(boost_hybrid.has_value());
  ASSERT_TRUE(boost_me.has_value());
  EXPECT_GE(*boost_hybrid, 2.0);
  EXPECT_GE(*boost_me, 4.0);
}

TEST_F(Uc1Test, CovOutperformsPlainAverageUnderFault) {
  // "it significantly outperforms other stateless approach".
  const auto cov = Diff(AlgorithmId::kClusteringOnly);
  const auto average = Diff(AlgorithmId::kAverage);
  ASSERT_TRUE(cov.converged_at.has_value());
  EXPECT_FALSE(average.converged_at.has_value());
  EXPECT_LT(cov.peak_error, average.peak_error);
}

TEST_F(Uc1Test, CovExcludesE4FromTheFirstRound) {
  // "Differently from Me, E4 was also excluded from the first round."
  const auto faulty_run = Run(AlgorithmId::kClusteringOnly, *faulty_);
  EXPECT_DOUBLE_EQ(faulty_run.weights(0)[3], 0.0);
  EXPECT_TRUE(faulty_run.used_clustering(0));
}

}  // namespace
}  // namespace avoc
