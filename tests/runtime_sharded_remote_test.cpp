// ShardedVoterServer over the deterministic simulation: the real shard
// state machines (accept hand-off, migration, cross-shard forwarding,
// fan-out verbs) run on N SimReactors pumped by one thread, so every
// scenario here replays bit-identically from its seed.

#include "runtime/sharded_remote.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/sim_net.h"

namespace avoc::runtime {
namespace {

constexpr uint16_t kPort = 7;

std::unique_ptr<Transport> MustConnect(SimWorld& world, uint16_t port) {
  auto transport = world.Connect(port);
  EXPECT_TRUE(transport.ok()) << transport.status().ToString();
  return std::move(*transport);
}

std::vector<BatchReading> MakeReadings(size_t n, uint64_t round = 0) {
  std::vector<BatchReading> readings;
  for (uint64_t m = 0; m < n; ++m) readings.push_back({m, round, 20.0 + m});
  return readings;
}

class ShardedSimTest : public ::testing::Test {
 protected:
  /// Builds an n-shard server over the simulation with the given groups
  /// registered and serving.
  void StartSharded(uint64_t seed, size_t shards,
                    const std::vector<std::string>& groups,
                    SimWorld::Options world_options = {},
                    ShardedServerOptions server_options = {},
                    std::map<std::string, size_t> modules_for = {}) {
    world_ = std::make_unique<SimWorld>(seed, world_options);
    auto listener = world_->Listen(kPort);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    std::vector<std::shared_ptr<Reactor>> reactors;
    reactors.push_back(world_->reactor());
    for (size_t s = 1; s < shards; ++s) reactors.push_back(world_->NewReactor());
    server_options.shards = shards;
    auto server = ShardedVoterServer::StartOnReactors(
        server_options, std::move(*listener), std::move(reactors),
        /*spawn_loop_threads=*/false, /*store=*/nullptr, &registry_);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    for (const std::string& g : groups) {
      const auto it = modules_for.find(g);
      const size_t modules = it == modules_for.end() ? 3 : it->second;
      ASSERT_TRUE(server_
                      ->AddGroup(g, *core::MakeEngine(core::AlgorithmId::kAvoc,
                                                      modules))
                      .ok())
          << g;
    }
    ASSERT_TRUE(server_->Serve().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  RemoteVoterClient MustClient(bool binary) {
    auto client =
        RemoteVoterClient::FromTransport(MustConnect(*world_, kPort), binary);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  /// Some group owned by `shard` (ASSERT-fails when none exists).
  std::string GroupOwnedBy(size_t shard,
                           const std::vector<std::string>& groups) {
    for (const std::string& g : groups) {
      if (server_->shard_of(g) == shard) return g;
    }
    ADD_FAILURE() << "no group owned by shard " << shard;
    return groups.front();
  }

  obs::Registry registry_;
  std::unique_ptr<SimWorld> world_;
  std::unique_ptr<ShardedVoterServer> server_;
};

// Enough names that every shard of a 3-shard server owns at least one
// (assignments are pinned by the GroupRouter golden test).
const std::vector<std::string> kGroups = {"group-0", "group-1", "group-2",
                                          "group-3", "group-7", "sensor",
                                          "humidity", "co2"};

TEST_F(ShardedSimTest, GroupPlacementMatchesRouter) {
  StartSharded(21, 3, kGroups);
  ASSERT_EQ(server_->shard_count(), 3u);
  size_t total = 0;
  for (size_t shard = 0; shard < 3; ++shard) {
    const auto names = server_->manager(shard).GroupNames();
    total += names.size();
    for (const std::string& name : names) {
      EXPECT_EQ(server_->shard_of(name), shard) << name;
    }
  }
  EXPECT_EQ(total, kGroups.size());  // disjoint and exhaustive
  // Every shard owns at least one group from this set.
  for (size_t shard = 0; shard < 3; ++shard) {
    EXPECT_FALSE(server_->manager(shard).GroupNames().empty()) << shard;
  }
}

TEST_F(ShardedSimTest, FirstGroupRequestMigratesToOwningShard) {
  StartSharded(22, 3, kGroups);
  // The first accepted connection lands on shard 0 (round-robin start);
  // submitting to a group owned elsewhere must migrate it.
  const std::string group = GroupOwnedBy(2, kGroups);
  RemoteVoterClient client = MustClient(/*binary=*/true);
  auto accepted = client.SubmitBatch(group, MakeReadings(3));
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(*accepted, 3u);
  EXPECT_GE(server_->migrations(), 1u);

  // The round reached the owning shard's sink, not any other's.
  auto sink = server_->sink(group);
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ((*sink)->output_count(), 1u);
  ASSERT_TRUE(server_->manager(2).sink(group).ok());
  EXPECT_FALSE(server_->manager(0).sink(group).ok());

  // Follow-up requests are shard-local now: no forwarding needed.
  const size_t forwarded_before = server_->forwarded_requests();
  auto value = client.Query(group);
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(server_->forwarded_requests(), forwarded_before);
}

TEST_F(ShardedSimTest, ForeignGroupRequestsForwardWithRepliesInOrder) {
  // `home` fuses 2 modules, `away` 3: full-round accepted counts then
  // discriminate local (2) from forwarded (3) replies, so any reply
  // reordering under pipelining is visible to the client.
  StartSharded(23, 3, kGroups, {}, {}, {{"group-1", 2}});
  RemoteVoterClient client = MustClient(/*binary=*/true);
  const std::string home = "group-1";  // shard 1 (pinned by golden test)
  const std::string away = GroupOwnedBy(2, kGroups);
  ASSERT_EQ(server_->shard_of(home), 1u);

  // Pin (and migrate) to `home`'s shard first.
  ASSERT_TRUE(client.SubmitBatch(home, MakeReadings(2)).ok());

  // Pipeline local and foreign full rounds interleaved.
  ASSERT_TRUE(client.PipelineSubmitBatch(home, MakeReadings(2, 1)).ok());
  ASSERT_TRUE(client.PipelineSubmitBatch(away, MakeReadings(3, 1)).ok());
  ASSERT_TRUE(client.PipelineSubmitBatch(home, MakeReadings(2, 2)).ok());
  ASSERT_TRUE(client.PipelineSubmitBatch(away, MakeReadings(3, 2)).ok());
  for (uint64_t expect : {2u, 3u, 2u, 3u}) {
    auto accepted = client.AwaitSubmitBatch();
    ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
    EXPECT_EQ(*accepted, expect);
  }
  EXPECT_GE(server_->forwarded_requests(), 2u);

  // Both groups saw their rounds, each on its own shard.
  auto home_sink = server_->sink(home);
  auto away_sink = server_->sink(away);
  ASSERT_TRUE(home_sink.ok());
  ASSERT_TRUE(away_sink.ok());
  EXPECT_EQ((*home_sink)->output_count(), 3u);
  EXPECT_EQ((*away_sink)->output_count(), 2u);

  // Cross-shard QUERY forwards too.
  auto value = client.Query(away);
  ASSERT_TRUE(value.ok()) << value.status().ToString();
}

TEST_F(ShardedSimTest, MixedProtocolsOnDifferentShardsConcurrently) {
  StartSharded(24, 3, kGroups);
  const std::string binary_group = GroupOwnedBy(1, kGroups);
  const std::string legacy_group = GroupOwnedBy(2, kGroups);

  RemoteVoterClient binary = MustClient(/*binary=*/true);
  RemoteVoterClient legacy = MustClient(/*binary=*/false);

  // Interleave requests so both connections are live at once, each
  // migrated to (and served by) a different shard in its own protocol.
  ASSERT_TRUE(binary.SubmitBatch(binary_group, MakeReadings(3)).ok());
  for (uint64_t m = 0; m < 3; ++m) {
    ASSERT_TRUE(legacy.Submit(legacy_group, m, 0, 30.0 + m).ok());
  }
  ASSERT_TRUE(binary.SubmitBatch(binary_group, MakeReadings(3, 1)).ok());
  ASSERT_TRUE(legacy.CloseRound(legacy_group, 0).ok());

  auto binary_value = binary.Query(binary_group);
  ASSERT_TRUE(binary_value.ok()) << binary_value.status().ToString();
  auto legacy_value = legacy.Query(legacy_group);
  ASSERT_TRUE(legacy_value.ok()) << legacy_value.status().ToString();
  EXPECT_NEAR(*legacy_value, 31.0, 1.5);
  EXPECT_GE(server_->migrations(), 2u);

  // Cross-protocol isolation: each group fused on its own shard only.
  EXPECT_EQ((*server_->sink(binary_group))->output_count(), 2u);
  EXPECT_EQ((*server_->sink(legacy_group))->output_count(), 1u);
}

TEST_F(ShardedSimTest, DedupReplayWorksAfterMigration) {
  StartSharded(25, 3, kGroups);
  const std::string group = GroupOwnedBy(2, kGroups);
  RemoteVoterClient client = MustClient(/*binary=*/true);

  auto first = client.SubmitBatchSeq("edge-7", 1, group, MakeReadings(3));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, 3u);

  // The retry lands on the same owning shard (stable routing), so the
  // dedup window sees it even though the connection migrated.
  auto replay = client.SubmitBatchSeq("edge-7", 1, group, MakeReadings(3));
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(*replay, 3u);
  EXPECT_EQ((*server_->sink(group))->output_count(), 1u);  // once, not twice
  EXPECT_EQ(server_->dedup_replays(), 1u);
}

TEST_F(ShardedSimTest, FanOutVerbsSeeEveryShard) {
  StartSharded(26, 3, kGroups);
  RemoteVoterClient client = MustClient(/*binary=*/true);
  // Pin the connection to a non-zero shard so the fan-out answers below
  // provably cross shards.
  ASSERT_TRUE(client.SubmitBatch(GroupOwnedBy(1, kGroups), MakeReadings(3))
                  .ok());

  // GROUPS: the frozen global list, from any shard.
  auto groups = client.Groups();
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  std::vector<std::string> sorted = kGroups;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(*groups, sorted);

  // HEALTH: one line per group, scatter-gathered across shards.
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->size(), kGroups.size());
  for (const std::string& g : kGroups) {
    const bool present =
        std::any_of(health->begin(), health->end(), [&](const std::string& l) {
          return l.find(g) != std::string::npos;
        });
    EXPECT_TRUE(present) << g;
  }

  // METRICS: the shared registry, with per-shard scoped families.
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("shard=\"s0\""), std::string::npos);
  EXPECT_NE(metrics->find("shard=\"s1\""), std::string::npos);
  EXPECT_NE(metrics->find("avoc_shard_groups"), std::string::npos);
}

TEST_F(ShardedSimTest, ShardScopedMetricsCountMigrationsAndForwards) {
  StartSharded(27, 3, kGroups);
  RemoteVoterClient client = MustClient(/*binary=*/true);
  ASSERT_TRUE(client.SubmitBatch(GroupOwnedBy(1, kGroups), MakeReadings(3))
                  .ok());
  ASSERT_TRUE(client.SubmitBatch(GroupOwnedBy(2, kGroups), MakeReadings(3))
                  .ok());

  // Shard 0 migrated the connection out; shard 1 adopted it and then
  // forwarded the foreign submit to shard 2.
  EXPECT_EQ(registry_
                .GetCounter(obs::LabeledName("avoc_shard_migrations_total",
                                             "shard", "s0"))
                .Value(),
            1u);
  EXPECT_GE(registry_
                .GetCounter(obs::LabeledName("avoc_shard_adopted_total",
                                             "shard", "s1"))
                .Value(),
            1u);
  EXPECT_EQ(registry_
                .GetCounter(obs::LabeledName("avoc_shard_forwarded_total",
                                             "shard", "s1"))
                .Value(),
            1u);
  // Ownership gauges cover the whole group set.
  size_t owned = 0;
  for (size_t s = 0; s < 3; ++s) {
    owned += static_cast<size_t>(
        registry_
            .GetGauge(obs::LabeledName("avoc_shard_groups", "shard",
                                       "s" + std::to_string(s)))
            .Value());
  }
  EXPECT_EQ(owned, kGroups.size());
}

TEST_F(ShardedSimTest, RoundRobinHandoffSpreadsFreshConnections) {
  StartSharded(28, 2, kGroups);
  // Two ping-only clients: neither ever pins, so they stay where the
  // acceptor handed them — one on each shard.
  RemoteVoterClient a = MustClient(/*binary=*/true);
  RemoteVoterClient b = MustClient(/*binary=*/true);
  ASSERT_TRUE(a.Ping().ok());
  ASSERT_TRUE(b.Ping().ok());
  EXPECT_EQ(server_->migrations(), 0u);
  EXPECT_EQ(server_->requests_served(), 2u);
  EXPECT_EQ(registry_
                .GetCounter(
                    obs::LabeledName("avoc_shard_adopted_total", "shard", "s1"))
                .Value(),
            1u);
}

TEST_F(ShardedSimTest, SingleShardDegradesToPlainServer) {
  StartSharded(29, 1, {"lights"});
  RemoteVoterClient client = MustClient(/*binary=*/true);
  auto accepted = client.SubmitBatch("lights", MakeReadings(3));
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(*accepted, 3u);
  EXPECT_EQ(server_->migrations(), 0u);
  EXPECT_EQ(server_->forwarded_requests(), 0u);
  auto groups = client.Groups();
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->size(), 1u);
}

TEST_F(ShardedSimTest, GroupRegistrationFrozenAfterServe) {
  StartSharded(30, 2, kGroups);
  auto status =
      server_->AddGroup("late", *core::MakeEngine(core::AlgorithmId::kAvoc, 3));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
}

// Same seed, same scripted run => bit-identical world traces even with
// three reactors exchanging cross-shard mailbox posts.
TEST_F(ShardedSimTest, MultiShardRunsReplayDeterministically) {
  auto run = [](uint64_t seed) {
    SimWorld::Options options;
    options.fault_plan = FaultPlan::Gentle(seed);
    SimWorld world(seed, options);
    auto listener = world.Listen(kPort);
    EXPECT_TRUE(listener.ok());
    std::vector<std::shared_ptr<Reactor>> reactors = {world.reactor(),
                                                      world.NewReactor(),
                                                      world.NewReactor()};
    ShardedServerOptions server_options;
    server_options.shards = 3;
    obs::Registry registry;
    auto server = ShardedVoterServer::StartOnReactors(
        server_options, std::move(*listener), std::move(reactors), false,
        nullptr, &registry);
    EXPECT_TRUE(server.ok());
    for (const std::string& g : kGroups) {
      EXPECT_TRUE(
          (*server)
              ->AddGroup(g, *core::MakeEngine(core::AlgorithmId::kAvoc, 3))
              .ok());
    }
    EXPECT_TRUE((*server)->Serve().ok());
    {
      auto transport = world.Connect(kPort);
      EXPECT_TRUE(transport.ok());
      auto client =
          RemoteVoterClient::FromTransport(std::move(*transport), true);
      EXPECT_TRUE(client.ok());
      for (const std::string& g : kGroups) {
        (void)client->SubmitBatch(g, MakeReadings(3));
      }
      (void)client->Health();
    }
    world.RunFor(500);
    (*server)->Stop();
    return world.TraceText();
  };
  const std::string first = run(404);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run(404));
}

// The real thing, briefly: TCP listener, one EventLoop thread per shard.
TEST(ShardedTcpSmoke, ServesOverRealSockets) {
  ShardedServerOptions options;
  options.shards = 2;
  obs::Registry registry;
  auto server = ShardedVoterServer::Start(options, nullptr, &registry);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const std::vector<std::string> names = {"alpha", "beta", "gamma", "delta"};
  for (const std::string& g : names) {
    ASSERT_TRUE(
        (*server)
            ->AddGroup(g, *core::MakeEngine(core::AlgorithmId::kAvoc, 3))
            .ok());
  }
  ASSERT_TRUE((*server)->Serve().ok());

  auto client = RemoteVoterClient::ConnectBinary("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (const std::string& g : names) {
    auto accepted = client->SubmitBatch(g, MakeReadings(3));
    ASSERT_TRUE(accepted.ok()) << g << ": " << accepted.status().ToString();
    EXPECT_EQ(*accepted, 3u);
    EXPECT_EQ((*(*server)->sink(g))->output_count(), 1u);
  }
  auto groups = client->Groups();
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->size(), 4u);
  auto health = client->Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->size(), 4u);
  (*server)->Stop();
}

}  // namespace
}  // namespace avoc::runtime
