#include "data/dataset.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace avoc::data {
namespace {

RoundTable SampleTable() {
  RoundTable table({"E1", "E2"});
  EXPECT_TRUE(table.AppendRound({18500.25, 18400.0}).ok());
  EXPECT_TRUE(table.AppendRound({{18510.0}, std::nullopt}).ok());
  return table;
}

TEST(DatasetCsvTest, TableToCsvShape) {
  const CsvTable csv = RoundTableToCsv(SampleTable());
  EXPECT_EQ(csv.header, (std::vector<std::string>{"round", "E1", "E2"}));
  ASSERT_EQ(csv.rows.size(), 2u);
  EXPECT_EQ(csv.rows[0][0], "0");
  EXPECT_EQ(csv.rows[1][2], "");  // missing reading is an empty cell
}

TEST(DatasetCsvTest, RoundTripPreservesValuesAndGaps) {
  const RoundTable original = SampleTable();
  auto restored = RoundTableFromCsv(RoundTableToCsv(original));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->module_names(), original.module_names());
  ASSERT_EQ(restored->round_count(), original.round_count());
  EXPECT_DOUBLE_EQ(*restored->At(0, 0), 18500.25);
  EXPECT_FALSE(restored->At(1, 1).has_value());
}

TEST(DatasetCsvTest, RejectsTablesWithoutRoundColumn) {
  CsvTable csv;
  csv.header = {"E1", "E2"};
  EXPECT_FALSE(RoundTableFromCsv(csv).ok());
}

TEST(DatasetCsvTest, RejectsNonNumericCells) {
  CsvTable csv;
  csv.header = {"round", "E1"};
  csv.rows = {{"0", "not-a-number"}};
  EXPECT_FALSE(RoundTableFromCsv(csv).ok());
}

TEST(DatasetFileTest, SaveAndLoadWithMetadata) {
  const auto dir = std::filesystem::temp_directory_path() / "avoc_ds_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "sample.csv").string();

  DatasetMetadata meta;
  meta.scenario = "uc1-light";
  meta.seed = 42;
  meta.units = "lux";
  meta.sample_rate_hz = 8.0;

  ASSERT_TRUE(SaveDataset(path, SampleTable(), &meta).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->round_count(), 2u);

  auto loaded_meta = LoadDatasetMetadata(path);
  ASSERT_TRUE(loaded_meta.ok());
  EXPECT_EQ(loaded_meta->scenario, "uc1-light");
  EXPECT_EQ(loaded_meta->seed, 42u);
  EXPECT_EQ(loaded_meta->units, "lux");
  EXPECT_DOUBLE_EQ(loaded_meta->sample_rate_hz, 8.0);

  std::filesystem::remove_all(dir);
}

TEST(DatasetFileTest, SaveWithoutMetadataSkipsSidecar) {
  const auto dir = std::filesystem::temp_directory_path() / "avoc_ds_test2";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "bare.csv").string();
  ASSERT_TRUE(SaveDataset(path, SampleTable()).ok());
  EXPECT_FALSE(LoadDatasetMetadata(path).ok());
  std::filesystem::remove_all(dir);
}

TEST(DatasetMetadataTest, JsonRoundTrip) {
  DatasetMetadata meta;
  meta.scenario = "uc2-ble";
  meta.seed = 7;
  meta.units = "dBm";
  meta.sample_rate_hz = 1.782;
  auto restored = DatasetMetadata::FromJson(meta.ToJson());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->scenario, meta.scenario);
  EXPECT_EQ(restored->seed, meta.seed);
  EXPECT_EQ(restored->units, meta.units);
  EXPECT_DOUBLE_EQ(restored->sample_rate_hz, meta.sample_rate_hz);
}

TEST(DatasetMetadataTest, FromJsonToleratesMissingFields) {
  auto meta = DatasetMetadata::FromJson(json::Value(json::Object{}));
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->scenario, "");
  EXPECT_EQ(meta->seed, 0u);
}

TEST(DatasetMetadataTest, FromJsonRejectsNonObjects) {
  EXPECT_FALSE(DatasetMetadata::FromJson(json::Value(1.0)).ok());
}

}  // namespace
}  // namespace avoc::data
