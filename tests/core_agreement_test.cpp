#include "core/agreement.h"

#include <gtest/gtest.h>

namespace avoc::core {
namespace {

AgreementParams Binary(double error, ThresholdScale scale) {
  AgreementParams params;
  params.error = error;
  params.mode = AgreementMode::kBinary;
  params.scale = scale;
  return params;
}

AgreementParams Soft(double error, double multiple, ThresholdScale scale) {
  AgreementParams params;
  params.error = error;
  params.soft_multiple = multiple;
  params.mode = AgreementMode::kSoftDynamic;
  params.scale = scale;
  return params;
}

TEST(AgreementTest, BinaryAbsoluteThreshold) {
  const auto params = Binary(1.0, ThresholdScale::kAbsolute);
  EXPECT_DOUBLE_EQ(AgreementScore(5.0, 5.5, params), 1.0);
  EXPECT_DOUBLE_EQ(AgreementScore(5.0, 6.0, params), 1.0);  // boundary in
  EXPECT_DOUBLE_EQ(AgreementScore(5.0, 6.1, params), 0.0);
}

TEST(AgreementTest, BinaryRelativeScalesWithMagnitude) {
  const auto params = Binary(0.05, ThresholdScale::kRelative);
  // margin = 0.05 * 18500 = 925.
  EXPECT_DOUBLE_EQ(AgreementScore(18500.0, 18500.0 + 900.0, params), 1.0);
  EXPECT_DOUBLE_EQ(AgreementScore(18500.0, 18500.0 + 1000.0, params), 0.0);
  // Same absolute gap at small magnitude disagrees.
  EXPECT_DOUBLE_EQ(AgreementScore(10.0, 910.0, params), 0.0);
}

TEST(AgreementTest, SymmetricInArguments) {
  const auto soft = Soft(0.05, 2.0, ThresholdScale::kRelative);
  const auto binary = Binary(0.05, ThresholdScale::kRelative);
  for (const double a : {10.0, 100.0, -50.0}) {
    for (const double b : {12.0, 104.0, -53.0}) {
      EXPECT_DOUBLE_EQ(AgreementScore(a, b, soft), AgreementScore(b, a, soft));
      EXPECT_DOUBLE_EQ(AgreementScore(a, b, binary),
                       AgreementScore(b, a, binary));
    }
  }
}

TEST(AgreementTest, SelfAgreementIsOne) {
  const auto params = Soft(0.05, 2.0, ThresholdScale::kRelative);
  EXPECT_DOUBLE_EQ(AgreementScore(42.0, 42.0, params), 1.0);
  EXPECT_DOUBLE_EQ(AgreementScore(0.0, 0.0, params), 1.0);
  EXPECT_DOUBLE_EQ(AgreementScore(-7.0, -7.0, params), 1.0);
}

TEST(AgreementTest, SoftTaperIsLinearBetweenThresholds) {
  // Absolute: margin 1, soft multiple 3 -> taper from 1 at d=1 to 0 at d=3.
  const auto params = Soft(1.0, 3.0, ThresholdScale::kAbsolute);
  EXPECT_DOUBLE_EQ(AgreementScore(0.0, 1.0, params), 1.0);
  EXPECT_DOUBLE_EQ(AgreementScore(0.0, 2.0, params), 0.5);
  EXPECT_DOUBLE_EQ(AgreementScore(0.0, 3.0, params), 0.0);
  EXPECT_DOUBLE_EQ(AgreementScore(0.0, 4.0, params), 0.0);
  // Monotone decrease across the band.
  double previous = 1.1;
  for (double d = 0.0; d <= 4.0; d += 0.1) {
    const double score = AgreementScore(0.0, d, params);
    EXPECT_LE(score, previous + 1e-12);
    previous = score;
  }
}

TEST(AgreementTest, SoftMultipleBelowOneActsBinary) {
  const auto params = Soft(1.0, 0.5, ThresholdScale::kAbsolute);
  EXPECT_DOUBLE_EQ(AgreementScore(0.0, 0.9, params), 1.0);
  EXPECT_DOUBLE_EQ(AgreementScore(0.0, 1.1, params), 0.0);
}

TEST(AgreementTest, RelativeFloorGuardsZeroNeighbourhood) {
  auto params = Binary(0.05, ThresholdScale::kRelative);
  params.relative_floor = 1.0;
  // Without the floor the margin at (0, 0.01) would be 0.05*0.01.
  EXPECT_DOUBLE_EQ(AgreementScore(0.0, 0.01, params), 1.0);
}

TEST(AgreementTest, NegativeValuesUseMagnitude) {
  const auto params = Binary(0.1, ThresholdScale::kRelative);
  // margin = 0.1 * 80 = 8: RSSI-style negative values work.
  EXPECT_DOUBLE_EQ(AgreementScore(-80.0, -75.0, params), 1.0);
  EXPECT_DOUBLE_EQ(AgreementScore(-80.0, -70.0, params), 0.0);
}

TEST(EffectiveMarginTest, ModesAndScale) {
  const auto abs_params = Binary(2.5, ThresholdScale::kAbsolute);
  EXPECT_DOUBLE_EQ(EffectiveMargin(100.0, 200.0, abs_params), 2.5);
  const auto rel_params = Binary(0.1, ThresholdScale::kRelative);
  EXPECT_DOUBLE_EQ(EffectiveMargin(100.0, 200.0, rel_params), 20.0);
  EXPECT_DOUBLE_EQ(EffectiveMargin(-300.0, 200.0, rel_params), 30.0);
}

TEST(AgreementScoresTest, SingleAndEmpty) {
  const auto params = Binary(1.0, ThresholdScale::kAbsolute);
  const std::vector<double> one = {5.0};
  EXPECT_EQ(AgreementScores(one, params), (std::vector<double>{1.0}));
  const std::vector<double> none;
  EXPECT_TRUE(AgreementScores(none, params).empty());
}

TEST(AgreementScoresTest, MeanPairwiseAgreement) {
  const auto params = Binary(1.0, ThresholdScale::kAbsolute);
  // {0, 0.5, 10}: 0 and 0.5 agree; 10 agrees with nobody.
  const std::vector<double> values = {0.0, 0.5, 10.0};
  const auto scores = AgreementScores(values, params);
  EXPECT_DOUBLE_EQ(scores[0], 0.5);
  EXPECT_DOUBLE_EQ(scores[1], 0.5);
  EXPECT_DOUBLE_EQ(scores[2], 0.0);
}

TEST(AgreementScoresTest, FullConsensusScoresOne) {
  const auto params = Binary(1.0, ThresholdScale::kAbsolute);
  const std::vector<double> values = {1.0, 1.2, 0.9, 1.1};
  for (const double s : AgreementScores(values, params)) {
    EXPECT_DOUBLE_EQ(s, 1.0);
  }
}

TEST(LargestAgreementGroupTest, CountsChainedGroup) {
  const auto params = Binary(1.0, ThresholdScale::kAbsolute);
  const std::vector<double> values = {0.0, 0.8, 1.6, 10.0};
  EXPECT_EQ(LargestAgreementGroup(values, params), 3u);
  const std::vector<double> spread = {0.0, 5.0, 10.0};
  EXPECT_EQ(LargestAgreementGroup(spread, params), 1u);
  const std::vector<double> empty;
  EXPECT_EQ(LargestAgreementGroup(empty, params), 0u);
}

}  // namespace
}  // namespace avoc::core
