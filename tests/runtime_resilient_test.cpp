#include "runtime/resilient.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/remote.h"
#include "runtime/sim_net.h"

namespace avoc::runtime {
namespace {

constexpr uint16_t kPort = 7;

class ResilientClientTest : public ::testing::Test {
 protected:
  void StartWorld(uint64_t seed, SimWorld::Options options = {}) {
    world_ = std::make_unique<SimWorld>(seed, options);
    manager_ = std::make_unique<VoterGroupManager>(nullptr, &registry_);
    ASSERT_TRUE(manager_
                    ->AddGroup("lights",
                               *core::MakeEngine(core::AlgorithmId::kAvoc, 3))
                    .ok());
    auto listener = world_->Listen(kPort);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    auto server = RemoteVoterServer::StartOnReactor(
        manager_.get(), RemoteServerOptions{}, std::move(*listener),
        world_->reactor(), /*spawn_loop_thread=*/false);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  RetryPolicy FastPolicy() {
    RetryPolicy policy;
    policy.initial_backoff_ms = 5;
    policy.max_backoff_ms = 50;
    policy.request_timeout_ms = 100;
    policy.deadline_ms = 60 * 1000;
    return policy;
  }

  ResilientVoterClient MakeClient(RetryPolicy policy, uint64_t seed = 1) {
    return ResilientVoterClient(
        [this] { return world_->Connect(kPort); }, world_.get(), "edge-1",
        policy, seed, &registry_);
  }

  std::vector<BatchReading> Round(uint64_t round) {
    std::vector<BatchReading> readings;
    for (uint64_t m = 0; m < 3; ++m) {
      readings.push_back({m, round, 20.0 + static_cast<double>(m)});
    }
    return readings;
  }

  obs::Registry registry_;
  std::unique_ptr<SimWorld> world_;
  std::unique_ptr<VoterGroupManager> manager_;
  std::unique_ptr<RemoteVoterServer> server_;
};

TEST_F(ResilientClientTest, HealthyPathSubmitsWithoutRetries) {
  StartWorld(21);
  ResilientVoterClient client = MakeClient(FastPolicy());
  for (uint64_t r = 0; r < 4; ++r) {
    auto accepted = client.SubmitBatch("lights", Round(r));
    ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
    EXPECT_EQ(*accepted, 3u);
  }
  EXPECT_EQ(client.connects(), 1u);
  EXPECT_EQ(client.retry_attempts(), 0u);
  auto sink = manager_->sink("lights");
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ((*sink)->output_count(), 4u);
}

TEST_F(ResilientClientTest, ReconnectsAfterConnectionReset) {
  StartWorld(22);
  ResilientVoterClient client = MakeClient(FastPolicy());
  ASSERT_TRUE(client.SubmitBatch("lights", Round(0)).ok());

  world_->ResetAllConnections();
  auto accepted = client.SubmitBatch("lights", Round(1));
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(client.reconnects(), 1u);
  EXPECT_GE(client.retry_attempts(), 1u);
  EXPECT_EQ(registry_.GetCounter("avoc_client_reconnects_total").Value(), 1u);
  auto sink = manager_->sink("lights");
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ((*sink)->output_count(), 2u);
}

// The exactly-once core: the reply (not the request) is lost, so the
// server already ingested the batch.  The retry must be answered from the
// dedup cache, leaving one sink output per round.
TEST_F(ResilientClientTest, LostReplyIsRetriedExactlyOnce) {
  SimWorld::Options options;
  options.fault_plan.blackhole_s2c.push_back(FaultWindow{0, 400});
  StartWorld(23, options);
  ResilientVoterClient client = MakeClient(FastPolicy());

  auto accepted = client.SubmitBatch("lights", Round(0));
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(*accepted, 3u);
  EXPECT_GE(client.request_timeouts(), 1u);  // replies vanished for 400ms
  EXPECT_GE(server_->dedup_replays() + client.reconnects(), 1u);
  auto sink = manager_->sink("lights");
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ((*sink)->output_count(), 1u);  // ingested exactly once
  EXPECT_GT(world_->NowMs(), 400u);        // had to outlive the blackhole
}

TEST_F(ResilientClientTest, SubmitsAcrossAPartitionAfterItHeals) {
  SimWorld::Options options;
  options.fault_plan.partitions.push_back(FaultWindow{10, 300});
  StartWorld(24, options);
  ResilientVoterClient client = MakeClient(FastPolicy());

  world_->RunFor(20);  // land inside the partition
  auto accepted = client.SubmitBatch("lights", Round(0));
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_GE(world_->NowMs(), 300u);  // could only succeed after the heal
  EXPECT_GE(client.connect_failures(), 1u);
  auto sink = manager_->sink("lights");
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ((*sink)->output_count(), 1u);
}

TEST_F(ResilientClientTest, GivesUpAfterMaxAttempts) {
  StartWorld(25);
  RetryPolicy policy = FastPolicy();
  policy.max_attempts = 3;
  // Dial a port nobody listens on.
  ResilientVoterClient client(
      [this] { return world_->Connect(kPort + 1); }, world_.get(), "edge-1",
      policy, 1, &registry_);
  auto accepted = client.SubmitBatch("lights", Round(0));
  EXPECT_FALSE(accepted.ok());
  EXPECT_EQ(client.connect_failures(), 3u);
  EXPECT_GE(client.giveups(), 1u);
  EXPECT_GE(registry_.GetCounter("avoc_remote_retry_giveups_total").Value(),
            1u);
}

TEST_F(ResilientClientTest, ApplicationErrorsAreNotRetried) {
  StartWorld(26);
  ResilientVoterClient client = MakeClient(FastPolicy());
  auto accepted = client.SubmitBatch("no-such-group", Round(0));
  EXPECT_FALSE(accepted.ok());
  EXPECT_EQ(client.retry_attempts(), 0u);  // server answered; not a fault

  auto missing = client.Query("no-such-group");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(client.retry_attempts(), 0u);
}

TEST_F(ResilientClientTest, BackoffScheduleIsSeedDeterministic) {
  auto giveup_time = [this](uint64_t seed) {
    StartWorld(27);
    RetryPolicy policy = FastPolicy();
    policy.max_attempts = 5;
    ResilientVoterClient client(
        [this] { return world_->Connect(kPort + 1); }, world_.get(), "edge-1",
        policy, seed, nullptr);
    (void)client.Ping();
    return world_->NowMs();  // sum of the jittered backoffs
  };
  const uint64_t first = giveup_time(1234);
  const uint64_t second = giveup_time(1234);
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 0u);
  EXPECT_NE(giveup_time(4321), first);  // jitter stream follows the seed
}

TEST_F(ResilientClientTest, SequenceNumbersAreAssignedOncePerCall) {
  StartWorld(28);
  ResilientVoterClient client = MakeClient(FastPolicy());
  EXPECT_EQ(client.next_seq(), 1u);
  ASSERT_TRUE(client.SubmitBatch("lights", Round(0)).ok());
  EXPECT_EQ(client.next_seq(), 2u);
  world_->ResetAllConnections();
  ASSERT_TRUE(client.SubmitBatch("lights", Round(1)).ok());
  EXPECT_EQ(client.next_seq(), 3u);  // retries never burned extra numbers
}

}  // namespace
}  // namespace avoc::runtime
