#include "runtime/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/algorithms.h"

namespace avoc::runtime {
namespace {

core::VotingEngine AverageEngine(size_t modules) {
  auto engine = core::MakeEngine(core::AlgorithmId::kAverage, modules);
  EXPECT_TRUE(engine.ok());
  return std::move(*engine);
}

std::vector<SensorNode::Generator> ConstantSamplers(size_t count,
                                                    double base) {
  std::vector<SensorNode::Generator> samplers;
  for (size_t m = 0; m < count; ++m) {
    samplers.push_back([base, m](size_t) {
      return std::optional<double>(base + static_cast<double>(m));
    });
  }
  return samplers;
}

ServiceOptions FastOptions() {
  ServiceOptions options;
  options.round_period = std::chrono::milliseconds(10);
  options.round_timeout = std::chrono::milliseconds(5);
  return options;
}

TEST(VoterServiceTest, CreateValidates) {
  EXPECT_FALSE(
      VoterService::Create(ConstantSamplers(2, 0.0), AverageEngine(3)).ok());
  EXPECT_FALSE(VoterService::Create({}, AverageEngine(1)).ok());
  ServiceOptions bad;
  bad.round_period = std::chrono::milliseconds(0);
  EXPECT_FALSE(
      VoterService::Create(ConstantSamplers(2, 0.0), AverageEngine(2), bad)
          .ok());
}

TEST(VoterServiceTest, ProducesRoundsWhileRunning) {
  auto service = VoterService::Create(ConstantSamplers(3, 10.0),
                                      AverageEngine(3), FastOptions());
  ASSERT_TRUE(service.ok());
  (*service)->Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  (*service)->Stop();
  const size_t rounds = (*service)->rounds_completed();
  EXPECT_GE(rounds, 5u);
  ASSERT_TRUE((*service)->sink().last_value().has_value());
  EXPECT_DOUBLE_EQ(*(*service)->sink().last_value(), 11.0);  // mean of 10,11,12
}

TEST(VoterServiceTest, StartStopIdempotent) {
  auto service = VoterService::Create(ConstantSamplers(2, 1.0),
                                      AverageEngine(2), FastOptions());
  ASSERT_TRUE(service.ok());
  (*service)->Start();
  (*service)->Start();  // no-op
  EXPECT_TRUE((*service)->running());
  (*service)->Stop();
  (*service)->Stop();  // no-op
  EXPECT_FALSE((*service)->running());
}

TEST(VoterServiceTest, StartAfterStopRestartsCleanly) {
  auto service = VoterService::Create(ConstantSamplers(3, 10.0),
                                      AverageEngine(3), FastOptions());
  ASSERT_TRUE(service.ok());
  EXPECT_TRUE((*service)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  (*service)->Stop();
  const size_t first_run = (*service)->rounds_opened();
  EXPECT_GE(first_run, 1u);
  // Restart is well-defined: a new scheduler picks up where the previous
  // run stopped, continuing the round numbering.
  EXPECT_TRUE((*service)->Start().ok());
  EXPECT_TRUE((*service)->running());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  (*service)->Stop();
  EXPECT_FALSE((*service)->running());
  EXPECT_GT((*service)->rounds_opened(), first_run);
  // Both runs fed the same sink; nothing was lost across the restart.
  EXPECT_EQ((*service)->rounds_completed(), (*service)->rounds_opened());
}

TEST(VoterServiceTest, StopDrainsInFlightRound) {
  auto service = VoterService::Create(ConstantSamplers(3, 10.0),
                                      AverageEngine(3), FastOptions());
  ASSERT_TRUE(service.ok());
  EXPECT_TRUE((*service)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  (*service)->Stop();
  // The round that was open when Stop() was called must have been flushed
  // through voter and sink before Stop() returned: every opened round has
  // a sink record, including the last one.
  EXPECT_GE((*service)->rounds_opened(), 1u);
  EXPECT_EQ((*service)->rounds_completed(), (*service)->rounds_opened());
  const auto outputs = (*service)->sink().outputs();
  ASSERT_FALSE(outputs.empty());
  EXPECT_EQ(outputs.back().round, (*service)->rounds_opened() - 1);
}

TEST(VoterServiceTest, StopOnDestruction) {
  auto service = VoterService::Create(ConstantSamplers(2, 1.0),
                                      AverageEngine(2), FastOptions());
  ASSERT_TRUE(service.ok());
  (*service)->Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  service->reset();  // destructor must join cleanly
  SUCCEED();
}

TEST(VoterServiceTest, SlowSensorsBecomeMissingValues) {
  std::vector<SensorNode::Generator> samplers = ConstantSamplers(2, 5.0);
  // A sensor that always overruns the round timeout.
  samplers.push_back([](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return std::optional<double>(9999.0);
  });
  auto engine = core::MakeEngine(core::AlgorithmId::kAverage, 3);
  ASSERT_TRUE(engine.ok());
  auto service =
      VoterService::Create(std::move(samplers), std::move(*engine),
                           FastOptions());
  ASSERT_TRUE(service.ok());
  (*service)->Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  (*service)->Stop();
  const auto outputs = (*service)->sink().outputs();
  ASSERT_GE(outputs.size(), 2u);
  // The slow sensor never makes it into a round; the fused value is the
  // mean of the two fast ones (5, 6), never dragged to 9999.
  for (const auto& output : outputs) {
    if (!output.result.value.has_value()) continue;
    EXPECT_NEAR(*output.result.value, 5.5, 0.01);
    EXPECT_LE(output.result.present_count, 2u);
  }
}

TEST(VoterServiceTest, PersistsThroughStore) {
  HistoryStore store;
  ServiceOptions options = FastOptions();
  options.store = &store;
  options.group = "svc";
  auto engine = core::MakeEngine(core::AlgorithmId::kHybrid, 3);
  ASSERT_TRUE(engine.ok());
  auto service = VoterService::Create(ConstantSamplers(3, 10.0),
                                      std::move(*engine), options);
  ASSERT_TRUE(service.ok());
  (*service)->Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  (*service)->Stop();
  auto snapshot = store.Get("svc");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_GE(snapshot->rounds, 1u);
  EXPECT_EQ(snapshot->records.size(), 3u);
}

}  // namespace
}  // namespace avoc::runtime
