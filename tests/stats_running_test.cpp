#include "stats/running.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace avoc::stats {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 0.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats rs;
  rs.Add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStatsTest, KnownSmallSample) {
  RunningStats rs;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.population_variance(), 4.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats rs;
  rs.Add(-3.0);
  rs.Add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), -3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 18.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(10.0, 3.0);
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats filled;
  filled.Add(1.0);
  filled.Add(3.0);
  RunningStats empty;
  RunningStats copy = filled;
  copy.Merge(empty);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean(), 2.0);
  empty.Merge(filled);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  // Welford survives a huge common offset where naive sum-of-squares dies.
  RunningStats rs;
  const double offset = 1e12;
  for (const double x : {1.0, 2.0, 3.0}) rs.Add(offset + x);
  EXPECT_NEAR(rs.variance(), 1.0, 1e-3);
  EXPECT_NEAR(rs.mean() - offset, 2.0, 1e-3);
}

TEST(RunningStatsTest, StddevIsSqrtVariance) {
  RunningStats rs;
  for (const double x : {1.0, 5.0, 9.0}) rs.Add(x);
  EXPECT_DOUBLE_EQ(rs.stddev(), std::sqrt(rs.variance()));
}

}  // namespace
}  // namespace avoc::stats
