#include "core/explain.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/engine.h"

namespace avoc::core {
namespace {

VoteResult FaultyRound(VotingEngine& engine, Round& round) {
  round = {18400.0, 18520.0, 18470.0, std::nullopt, 24800.0};
  auto result = engine.CastVote(round);
  EXPECT_TRUE(result.ok());
  return std::move(*result);
}

TEST(ExplainTest, SummaryNamesOutcomeValueAndWeights) {
  auto engine = MakeEngine(AlgorithmId::kAvoc, 5);
  ASSERT_TRUE(engine.ok());
  Round round;
  const VoteResult result = FaultyRound(*engine, round);
  const std::string summary = SummarizeResult(result);
  EXPECT_NE(summary.find("voted"), std::string::npos);
  EXPECT_NE(summary.find("(clustered)"), std::string::npos);
  EXPECT_NE(summary.find("w=["), std::string::npos);
  EXPECT_NE(summary.find("0.00"), std::string::npos);  // outlier weight
}

TEST(ExplainTest, TableListsEveryModuleWithFlags) {
  auto engine = MakeEngine(AlgorithmId::kAvoc, 5);
  ASSERT_TRUE(engine.ok());
  Round round;
  const VoteResult result = FaultyRound(*engine, round);
  const std::string table = ExplainResult(
      result, round, {"E1", "E2", "E3", "E4", "E5"});
  EXPECT_NE(table.find("E1"), std::string::npos);
  EXPECT_NE(table.find("E5"), std::string::npos);
  EXPECT_NE(table.find("missing"), std::string::npos);         // E4
  EXPECT_NE(table.find("out-of-cluster"), std::string::npos);  // E5 outlier
  EXPECT_NE(table.find("->"), std::string::npos);
}

TEST(ExplainTest, TableFallsBackToIndexNames) {
  auto engine = MakeEngine(AlgorithmId::kAverage, 2);
  ASSERT_TRUE(engine.ok());
  auto result = engine->CastVote(std::vector<double>{1.0, 2.0});
  ASSERT_TRUE(result.ok());
  Round round = {1.0, 2.0};
  const std::string table = ExplainResult(*result, round);
  EXPECT_NE(table.find("m0"), std::string::npos);
  EXPECT_NE(table.find("m1"), std::string::npos);
}

TEST(ExplainTest, FaultOutcomesRendered) {
  EngineConfig config = MakeConfig(AlgorithmId::kAverage);
  config.quorum.fraction = 1.0;
  config.on_no_quorum = NoQuorumPolicy::kRaise;
  auto engine = VotingEngine::Create(2, config);
  ASSERT_TRUE(engine.ok());
  Round starved = {1.0, std::nullopt};
  auto result = engine->CastVote(starved);
  ASSERT_TRUE(result.ok());
  const std::string summary = SummarizeResult(*result);
  EXPECT_NE(summary.find("error"), std::string::npos);
  EXPECT_NE(summary.find("no_quorum"), std::string::npos);
}

TEST(ExplainTest, EliminationFlagged) {
  auto engine = MakeEngine(AlgorithmId::kHybrid, 3);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->CastVote(std::vector<double>{10.0, 10.1, 90.0}).ok());
  Round round = {10.0, 10.1, 90.0};
  auto result = engine->CastVote(round);
  ASSERT_TRUE(result.ok());
  const std::string table = ExplainResult(*result, round);
  EXPECT_NE(table.find("eliminated"), std::string::npos);
}

}  // namespace
}  // namespace avoc::core
