#include "json/value.h"

#include <gtest/gtest.h>

namespace avoc::json {
namespace {

TEST(JsonValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), Type::kNull);
}

TEST(JsonValueTest, ConstructorsSetTypes) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(1.5).is_number());
  EXPECT_TRUE(Value(3).is_number());
  EXPECT_TRUE(Value(int64_t{7}).is_number());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(std::string("s")).is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
  EXPECT_TRUE(Value(nullptr).is_null());
}

TEST(JsonValueTest, CheckedAccessorsEnforceType) {
  const Value number(2.0);
  EXPECT_TRUE(number.AsDouble().ok());
  EXPECT_FALSE(number.AsBool().ok());
  EXPECT_FALSE(number.AsString().ok());
  const Value text("x");
  EXPECT_TRUE(text.AsString().ok());
  EXPECT_FALSE(text.AsDouble().ok());
}

TEST(JsonValueTest, AsIntRequiresIntegralValue) {
  EXPECT_EQ(*Value(5.0).AsInt(), 5);
  EXPECT_EQ(*Value(-3.0).AsInt(), -3);
  EXPECT_FALSE(Value(5.5).AsInt().ok());
  EXPECT_FALSE(Value(1e20).AsInt().ok());
}

TEST(JsonValueTest, DefaultedAccessors) {
  EXPECT_EQ(Value("x").StringOr("d"), "x");
  EXPECT_EQ(Value(1.0).StringOr("d"), "d");
  EXPECT_DOUBLE_EQ(Value(2.5).DoubleOr(0), 2.5);
  EXPECT_DOUBLE_EQ(Value("x").DoubleOr(9), 9.0);
  EXPECT_TRUE(Value(true).BoolOr(false));
  EXPECT_TRUE(Value("x").BoolOr(true));
  EXPECT_EQ(Value(7.0).IntOr(0), 7);
  EXPECT_EQ(Value(7.5).IntOr(1), 1);
}

TEST(JsonObjectTest, SetAndFind) {
  Object obj;
  obj.Set("a", 1.0);
  obj.Set("b", "two");
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_TRUE(obj.contains("a"));
  EXPECT_FALSE(obj.contains("c"));
  EXPECT_DOUBLE_EQ(obj.find("a")->DoubleOr(0), 1.0);
  EXPECT_EQ(obj.find("c"), nullptr);
}

TEST(JsonObjectTest, SetOverwritesInPlace) {
  Object obj;
  obj.Set("a", 1.0);
  obj.Set("b", 2.0);
  obj.Set("a", 9.0);
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_DOUBLE_EQ(obj.find("a")->DoubleOr(0), 9.0);
  // Insertion order preserved even after overwrite.
  EXPECT_EQ(obj.entries()[0].first, "a");
  EXPECT_EQ(obj.entries()[1].first, "b");
}

TEST(JsonObjectTest, SubscriptInsertsNull) {
  Object obj;
  EXPECT_TRUE(obj["fresh"].is_null());
  EXPECT_EQ(obj.size(), 1u);
  obj["fresh"] = Value(3.0);
  EXPECT_DOUBLE_EQ(obj.find("fresh")->DoubleOr(0), 3.0);
}

TEST(JsonObjectTest, EraseRemovesKey) {
  Object obj;
  obj.Set("a", 1.0);
  EXPECT_TRUE(obj.Erase("a"));
  EXPECT_FALSE(obj.Erase("a"));
  EXPECT_TRUE(obj.empty());
}

TEST(JsonObjectTest, EqualityIsOrderInsensitive) {
  Object a;
  a.Set("x", 1.0);
  a.Set("y", 2.0);
  Object b;
  b.Set("y", 2.0);
  b.Set("x", 1.0);
  EXPECT_TRUE(a == b);
  b.Set("y", 3.0);
  EXPECT_FALSE(a == b);
}

TEST(JsonValueTest, EqualityDeep) {
  const Value a(MakeObject({{"k", MakeArray({1.0, "s", true})}}));
  const Value b(MakeObject({{"k", MakeArray({1.0, "s", true})}}));
  const Value c(MakeObject({{"k", MakeArray({1.0, "s", false})}}));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(JsonValueTest, GetDescendsPaths) {
  const Value v(MakeObject(
      {{"outer", MakeObject({{"inner", MakeObject({{"leaf", 5.0}})}})}}));
  EXPECT_DOUBLE_EQ(v.Get({"outer", "inner", "leaf"})->DoubleOr(0), 5.0);
  EXPECT_EQ(v.Get({"outer", "nope"}), nullptr);
  EXPECT_EQ(v.Get({"outer", "inner", "leaf", "deeper"}), nullptr);
}

TEST(JsonValueTest, FindOnNonObjectIsNull) {
  EXPECT_EQ(Value(1.0).Find("x"), nullptr);
  EXPECT_EQ(Value(Array{}).Find("x"), nullptr);
}

TEST(JsonValueTest, TypeNames) {
  EXPECT_EQ(TypeName(Type::kNull), "null");
  EXPECT_EQ(TypeName(Type::kObject), "object");
  EXPECT_EQ(TypeName(Type::kArray), "array");
}

}  // namespace
}  // namespace avoc::json
