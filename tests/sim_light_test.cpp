#include "sim/light.h"

#include <gtest/gtest.h>

#include "stats/running.h"

namespace avoc::sim {
namespace {

LightScenarioParams SmallParams() {
  LightScenarioParams params;
  params.rounds = 2000;
  params.seed = 42;
  return params;
}

TEST(LightScenarioTest, TableShapeMatchesPaper) {
  LightScenarioParams params;  // paper defaults
  const LightScenario scenario(params);
  EXPECT_EQ(params.rounds, 10000u);
  EXPECT_EQ(params.sensor_count, 5u);
  EXPECT_DOUBLE_EQ(params.sample_rate_hz, 8.0);
  // 10000 rounds at 8 S/s = 1250 s of data collection, as in §3.
  EXPECT_DOUBLE_EQ(static_cast<double>(params.rounds) / params.sample_rate_hz,
                   1250.0);
  const auto table = LightScenario(SmallParams()).MakeReferenceTable();
  EXPECT_EQ(table.module_count(), 5u);
  EXPECT_EQ(table.round_count(), 2000u);
  EXPECT_EQ(table.module_names().front(), "E1");
  EXPECT_EQ(table.module_names().back(), "E5");
}

TEST(LightScenarioTest, EnvelopeMatchesFig6a) {
  const auto table = LightScenario(SmallParams()).MakeReferenceTable();
  // Raw sensor traces span roughly 17-20 klx (Fig. 6-a axis).
  for (size_t m = 0; m < table.module_count(); ++m) {
    stats::RunningStats rs;
    for (const double v : table.ModuleValues(m)) rs.Add(v);
    EXPECT_GT(rs.min(), 16500.0) << "module " << m;
    EXPECT_LT(rs.max(), 20500.0) << "module " << m;
    EXPECT_GT(rs.mean(), 17500.0) << "module " << m;
    EXPECT_LT(rs.mean(), 19500.0) << "module " << m;
  }
}

TEST(LightScenarioTest, SensorsMostlyAgreeWithGroupMean) {
  // The healthy sensors must form one agreement group most of the time,
  // or Fig. 6-b's "all variants identical" would not reproduce.
  const auto table = LightScenario(SmallParams()).MakeReferenceTable();
  size_t coherent_rounds = 0;
  for (size_t r = 0; r < table.round_count(); ++r) {
    const auto round = table.View(r);
    double mean = 0.0;
    for (const double v : round.values) mean += v;
    mean /= static_cast<double>(round.module_count());
    bool all_close = true;
    for (const double v : round.values) {
      if (std::abs(v - mean) > 0.05 * mean) all_close = false;
    }
    if (all_close) ++coherent_rounds;
  }
  EXPECT_GT(coherent_rounds, table.round_count() * 95 / 100);
}

TEST(LightScenarioTest, NoMissingReadings) {
  // Wired light sensors never drop readings.
  EXPECT_EQ(LightScenario(SmallParams()).MakeReferenceTable().missing_count(),
            0u);
}

TEST(LightScenarioTest, DeterministicForSameSeed) {
  const auto a = LightScenario(SmallParams()).MakeReferenceTable();
  const auto b = LightScenario(SmallParams()).MakeReferenceTable();
  for (size_t r = 0; r < a.round_count(); r += 97) {
    for (size_t m = 0; m < a.module_count(); ++m) {
      EXPECT_DOUBLE_EQ(*a.At(r, m), *b.At(r, m));
    }
  }
}

TEST(LightScenarioTest, DifferentSeedsDiffer) {
  LightScenarioParams other = SmallParams();
  other.seed = 43;
  const auto a = LightScenario(SmallParams()).MakeReferenceTable();
  const auto b = LightScenario(other).MakeReferenceTable();
  EXPECT_NE(*a.At(0, 0), *b.At(0, 0));
}

TEST(LightScenarioTest, FaultyTableShiftsOnlyE4) {
  const LightScenario scenario(SmallParams());
  const auto clean = scenario.MakeReferenceTable();
  const auto faulty = scenario.MakeFaultyTable();
  for (size_t r = 0; r < clean.round_count(); r += 113) {
    EXPECT_DOUBLE_EQ(*faulty.At(r, 3), *clean.At(r, 3) + 6000.0);
    EXPECT_DOUBLE_EQ(*faulty.At(r, 0), *clean.At(r, 0));
    EXPECT_DOUBLE_EQ(*faulty.At(r, 4), *clean.At(r, 4));
  }
}

TEST(LightScenarioTest, FaultFromRoundRespected) {
  const LightScenario scenario(SmallParams());
  const auto clean = scenario.MakeReferenceTable();
  const auto faulty = scenario.MakeFaultyTable(/*fault_from=*/1000);
  EXPECT_DOUBLE_EQ(*faulty.At(999, 3), *clean.At(999, 3));
  EXPECT_DOUBLE_EQ(*faulty.At(1000, 3), *clean.At(1000, 3) + 6000.0);
}

TEST(LightScenarioTest, TruthVariesSlowly) {
  const LightScenario scenario(SmallParams());
  // Adjacent rounds differ by far less than the agreement margin.
  for (size_t r = 1; r < 2000; r += 53) {
    EXPECT_LT(std::abs(scenario.Truth(r) - scenario.Truth(r - 1)), 10.0);
  }
}

TEST(LightScenarioTest, MetadataDescribesGeneration) {
  const auto meta = LightScenario(SmallParams()).Metadata();
  EXPECT_EQ(meta.scenario, "uc1-light");
  EXPECT_EQ(meta.seed, 42u);
  EXPECT_EQ(meta.units, "lux");
  EXPECT_DOUBLE_EQ(meta.sample_rate_hz, 8.0);
}

}  // namespace
}  // namespace avoc::sim
