// Seeded corruption soak for the storage engine's decoders.
//
// Every seed builds a small but real store (history puts, trace appends
// across seal boundaries, sometimes a compaction), then mangles one
// on-disk file — truncation, bit flips, or garbage — and reopens.  The
// contract under test is "recovers or fails cleanly": Open may drop the
// corrupted suffix (that is what the CRC framing is for) or return an
// error, but it must never crash, hang, or trip ASan/UBSan.  The chunk
// decoder additionally gets raw fuzz bytes, since a flipped chunk body
// reaches BitReader directly.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "storage/chunk.h"
#include "storage/engine.h"
#include "storage/io.h"
#include "util/rng.h"

namespace avoc::storage {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& tag) {
  return (fs::temp_directory_path() /
          ("avoc_corruption_soak_" + std::to_string(::getpid()) + "_" + tag))
      .string();
}

/// Builds a store with enough variety that every file kind exists.
void Populate(StorageEngine& engine, avoc::Rng& rng) {
  const size_t groups = 1 + rng.UniformInt(4);
  for (size_t g = 0; g < groups; ++g) {
    const std::string name = "g" + std::to_string(g);
    HistorySnapshot snapshot;
    const size_t modules = 1 + rng.UniformInt(6);
    for (size_t m = 0; m < modules; ++m) {
      snapshot.records.push_back(rng.NextDouble());
    }
    snapshot.rounds = rng.UniformInt(100);
    ASSERT_TRUE(engine.Put(name, snapshot).ok());

    std::vector<TracePoint> points;
    const size_t n = 1 + rng.UniformInt(60);
    for (size_t i = 0; i < n; ++i) {
      points.push_back(TracePoint{i, rng.NextDouble() * 40.0,
                                  rng.UniformInt(8) != 0});
    }
    ASSERT_TRUE(engine.AppendTrace(name, points).ok());
  }
  if (rng.UniformInt(3) == 0) ASSERT_TRUE(engine.Compact().ok());
}

void CorruptFile(const fs::path& path, avoc::Rng& rng) {
  auto contents = ReadFileToString(path.string());
  ASSERT_TRUE(contents.ok());
  std::string bytes = *std::move(contents);
  switch (rng.UniformInt(4)) {
    case 0:  // truncate somewhere
      bytes.resize(rng.UniformInt(bytes.size() + 1));
      break;
    case 1: {  // flip 1-8 bits
      if (bytes.empty()) return;
      const size_t flips = 1 + rng.UniformInt(8);
      for (size_t i = 0; i < flips; ++i) {
        bytes[rng.UniformInt(bytes.size())] ^=
            static_cast<char>(1u << rng.UniformInt(8));
      }
      break;
    }
    case 2: {  // overwrite a window with garbage
      if (bytes.empty()) return;
      const size_t at = rng.UniformInt(bytes.size());
      const size_t len = 1 + rng.UniformInt(32);
      for (size_t i = at; i < bytes.size() && i < at + len; ++i) {
        bytes[i] = static_cast<char>(rng());
      }
      break;
    }
    default: {  // append garbage (torn write past the real tail)
      const size_t len = 1 + rng.UniformInt(64);
      for (size_t i = 0; i < len; ++i) {
        bytes.push_back(static_cast<char>(rng()));
      }
      break;
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(StorageCorruptionSoakTest, ReopenAfterCorruptionRecoversOrFailsCleanly) {
  size_t recovered = 0;
  size_t rejected = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    avoc::Rng rng(0xC0FFEE ^ (seed * 0x9E3779B97F4A7C15ull));
    const std::string dir = TempDir("reopen");
    fs::remove_all(dir);

    StorageEngineOptions options;
    options.dir = dir;
    options.chunk_max_points = 4 + rng.UniformInt(16);
    {
      auto engine = StorageEngine::Open(options);
      ASSERT_TRUE(engine.ok()) << "seed " << seed;
      Populate(**engine, rng);
    }

    // Pick one store file and mangle it.
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    ASSERT_FALSE(files.empty()) << "seed " << seed;
    CorruptFile(files[rng.UniformInt(files.size())], rng);

    auto reopened = StorageEngine::Open(options);
    if (reopened.ok()) {
      ++recovered;
      // Whatever survived must still answer queries without faulting.
      for (const std::string& group : (*reopened)->Groups()) {
        EXPECT_TRUE((*reopened)->Get(group).ok()) << "seed " << seed;
      }
      // Corruption can drop any single group entirely, so the query may
      // answer NotFound — it must simply not fault.
      (void)(*reopened)->QueryTraceRange("g0", 0, 1000);
    } else {
      ++rejected;
    }
    fs::remove_all(dir);
  }
  // CRC framing means most single-file corruption is survivable; a
  // mangled snapshot body can legitimately reject the open.  Both
  // outcomes are fine — crashing is not — but if nothing ever recovers
  // the framing itself is broken.
  EXPECT_GT(recovered, 100u) << "recovered=" << recovered
                             << " rejected=" << rejected;
}

TEST(StorageCorruptionSoakTest, ChunkDecoderSurvivesFuzzBytes) {
  avoc::Rng rng(0xFADED);
  std::vector<TracePoint> decoded;
  for (int iter = 0; iter < 3000; ++iter) {
    std::string bytes;
    const size_t len = rng.UniformInt(200);
    bytes.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng()));
    }
    const uint64_t count = rng.UniformInt(300);
    // Must return (ok or error), never fault.
    (void)DecodeChunk(bytes, count, &decoded);
  }
}

TEST(StorageCorruptionSoakTest, ChunkDecoderSurvivesMutatedValidBodies) {
  avoc::Rng rng(0xBEAD);
  std::vector<TracePoint> decoded;
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<TracePoint> points;
    const size_t n = 1 + rng.UniformInt(100);
    uint64_t round = 0;
    for (size_t i = 0; i < n; ++i) {
      round += rng.UniformInt(3);
      points.push_back(
          TracePoint{round, rng.NextDouble() * 100.0, rng.UniformInt(4) != 0});
    }
    std::string body = EncodeChunk(points);
    const size_t flips = 1 + rng.UniformInt(4);
    for (size_t i = 0; i < flips && !body.empty(); ++i) {
      body[rng.UniformInt(body.size())] ^=
          static_cast<char>(1u << rng.UniformInt(8));
    }
    // A flipped body may still decode (the flip can land in a value's
    // meaningful bits) or fail; either way it must stay in bounds.
    (void)DecodeChunk(body, points.size(), &decoded);
  }
}

}  // namespace
}  // namespace avoc::storage
