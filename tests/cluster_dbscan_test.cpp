#include "cluster/dbscan.h"

#include <gtest/gtest.h>

#include <set>

namespace avoc::cluster {
namespace {

DbscanOptions Options(double eps, size_t min_points) {
  DbscanOptions options;
  options.eps = eps;
  options.min_points = min_points;
  return options;
}

TEST(DbscanTest, EmptyInput) {
  const std::vector<double> empty;
  const auto result = Dbscan1D(empty, Options(1.0, 2));
  EXPECT_EQ(result.cluster_count, 0);
  EXPECT_TRUE(result.labels.empty());
}

TEST(DbscanTest, TwoWellSeparatedClusters) {
  const std::vector<double> values = {1.0, 1.1, 1.2, 10.0, 10.1, 10.2};
  const auto result = Dbscan1D(values, Options(0.5, 2));
  EXPECT_EQ(result.cluster_count, 2);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[3], result.labels[5]);
  EXPECT_NE(result.labels[0], result.labels[3]);
}

TEST(DbscanTest, IsolatedPointIsNoise) {
  const std::vector<double> values = {1.0, 1.1, 50.0};
  const auto result = Dbscan1D(values, Options(0.5, 2));
  EXPECT_EQ(result.labels[2], DbscanResult::kNoise);
  EXPECT_EQ(result.cluster_count, 1);
}

TEST(DbscanTest, MinPointsOneMakesEverythingCore) {
  const std::vector<double> values = {1.0, 50.0};
  const auto result = Dbscan1D(values, Options(0.5, 1));
  EXPECT_EQ(result.cluster_count, 2);
  EXPECT_NE(result.labels[0], DbscanResult::kNoise);
  EXPECT_NE(result.labels[1], DbscanResult::kNoise);
}

TEST(DbscanTest, HighMinPointsTurnsSparseDataToNoise) {
  const std::vector<double> values = {1.0, 1.1, 1.2};
  const auto result = Dbscan1D(values, Options(0.5, 5));
  EXPECT_EQ(result.cluster_count, 0);
  for (const int label : result.labels) {
    EXPECT_EQ(label, DbscanResult::kNoise);
  }
}

TEST(DbscanTest, BorderPointsJoinAdjacentCluster) {
  // 2.0 is not core (only 1 neighbour within 0.5 besides itself... it has
  // 1.6? no), but lies within eps of the core at 1.6.
  const std::vector<double> values = {1.0, 1.2, 1.4, 1.6, 2.0};
  const auto result = Dbscan1D(values, Options(0.45, 3));
  EXPECT_EQ(result.cluster_count, 1);
  EXPECT_NE(result.labels[4], DbscanResult::kNoise);
}

TEST(DbscanTest, ClustersNumberedByAscendingValue) {
  const std::vector<double> values = {10.0, 10.1, 1.0, 1.1};
  const auto result = Dbscan1D(values, Options(0.5, 2));
  ASSERT_EQ(result.cluster_count, 2);
  EXPECT_EQ(result.labels[2], 0);  // low cluster gets id 0
  EXPECT_EQ(result.labels[0], 1);
}

TEST(DbscanTest, LabelsIndexOriginalOrder) {
  const std::vector<double> values = {5.0, 1.0, 5.1, 1.1};
  const auto result = Dbscan1D(values, Options(0.5, 2));
  EXPECT_EQ(result.labels[1], result.labels[3]);
  EXPECT_EQ(result.labels[0], result.labels[2]);
  EXPECT_NE(result.labels[0], result.labels[1]);
}

TEST(DbscanTest, ChainedCoresMergeIntoOneCluster) {
  const std::vector<double> values = {0.0, 0.4, 0.8, 1.2, 1.6, 2.0};
  const auto result = Dbscan1D(values, Options(0.45, 2));
  EXPECT_EQ(result.cluster_count, 1);
}

TEST(DbscanTest, DuplicateValuesClusterTogether) {
  const std::vector<double> values = {3.0, 3.0, 3.0, 3.0};
  const auto result = Dbscan1D(values, Options(0.1, 3));
  EXPECT_EQ(result.cluster_count, 1);
  for (const int label : result.labels) EXPECT_EQ(label, 0);
}

}  // namespace
}  // namespace avoc::cluster
