#include "util/status.h"

#include <gtest/gtest.h>

namespace avoc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(ParseError("x").code(), ErrorCode::kParseError);
  EXPECT_EQ(NotFoundError("x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(UnsupportedError("x").code(), ErrorCode::kUnsupported);
  EXPECT_EQ(NoQuorumError("x").code(), ErrorCode::kNoQuorum);
  EXPECT_EQ(NoMajorityError("x").code(), ErrorCode::kNoMajority);
  EXPECT_EQ(IoError("x").code(), ErrorCode::kIoError);
  EXPECT_EQ(InternalError("x").code(), ErrorCode::kInternal);
  EXPECT_EQ(ParseError("broken").message(), "broken");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(ParseError("bad token").ToString(), "parse_error: bad token");
  EXPECT_EQ(Status(ErrorCode::kNotFound, "").ToString(), "not_found");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(ParseError("a"), ParseError("a"));
  EXPECT_FALSE(ParseError("a") == ParseError("b"));
  EXPECT_FALSE(ParseError("a") == NotFoundError("a"));
}

TEST(StatusTest, ErrorCodeNamesAreDistinct) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kNoQuorum), "no_quorum");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kNoMajority), "no_majority");
  EXPECT_NE(ErrorCodeName(ErrorCode::kIoError),
            ErrorCodeName(ErrorCode::kInternal));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(static_cast<bool>(result));
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> good(7);
  Result<int> bad = InternalError("boom");
  EXPECT_EQ(good.value_or(0), 7);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> extracted = std::move(result).value();
  EXPECT_EQ(*extracted, 5);
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result->size(), 5u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  AVOC_ASSIGN_OR_RETURN(const int half, Half(x));
  *out = half;
  AVOC_RETURN_IF_ERROR(Status::Ok());
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  int out = 0;
  EXPECT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 4);
  const Status failed = UseMacros(7, &out);
  EXPECT_EQ(failed.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(out, 4);  // untouched on failure
}

}  // namespace
}  // namespace avoc
