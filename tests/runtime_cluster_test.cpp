// Functional and negative-path coverage for voter-group migration across
// cluster nodes (runtime/cluster.h + the MIGRATE_GROUP / MOVED verbs).
//
// The deterministic simulation hosts a 2-node VoterCluster; every test
// drives it through real wire frames (no test-only seams):
//
//   * happy path: ingest, migrate, MOVED redirect, continued ingest with
//     a bit-identical sink trace and travelling dedup entries;
//   * failover: crash the owner, promote its hot standby, ingest resumes
//     exactly-once;
//   * negative paths: every malformed or impossible migration request
//     answers a TYPED error — nothing hangs, nothing crashes;
//   * telemetry identity: HEALTH lines, TRACE_DUMP spans, and metric
//     families carry the node="<id>" label so fan-outs across nodes stay
//     attributable;
//   * hostile bytes: the GroupStateBlob / ReplicationRecord codecs reject
//     truncation, bit flips, bad magic, and CRC damage with ParseError.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/cluster.h"
#include "runtime/group_manager.h"
#include "runtime/migration.h"
#include "runtime/remote.h"
#include "runtime/resilient.h"
#include "runtime/sim_net.h"
#include "util/rng.h"
#include "util/strings.h"

namespace avoc::runtime {
namespace {

constexpr size_t kModules = 3;
constexpr size_t kRounds = 6;
constexpr uint64_t kSeed = 0xC10C7E57ull;

VoterCluster::EngineMaker AvocMaker() {
  return [] { return core::MakeEngine(core::AlgorithmId::kAvoc, kModules); };
}

std::vector<std::vector<BatchReading>> WorkloadFor(uint64_t seed) {
  Rng values(seed ^ 0xD1FFull);
  std::vector<std::vector<BatchReading>> rounds;
  for (size_t r = 0; r < kRounds; ++r) {
    std::vector<BatchReading> batch;
    for (uint64_t m = 0; m < kModules; ++m) {
      batch.push_back(BatchReading{m, r, 20.0 + values.Gaussian(0.0, 2.0)});
    }
    rounds.push_back(std::move(batch));
  }
  return rounds;
}

std::string RenderOutputs(const SinkNode* sink) {
  std::string trace;
  for (const OutputMessage& out : sink->outputs()) {
    trace += StrFormat("%zu %d %a\n", out.round,
                       static_cast<int>(out.result.outcome),
                       out.result.value.value_or(-0.0));
  }
  return trace;
}

/// The fault-free in-process reference trace for WorkloadFor(seed).
std::string ReferenceTrace(uint64_t seed) {
  obs::Registry registry;
  VoterGroupManager manager(nullptr, &registry);
  EXPECT_TRUE(manager
                  .AddGroup("lights", *core::MakeEngine(
                                          core::AlgorithmId::kAvoc, kModules))
                  .ok());
  for (const std::vector<BatchReading>& batch : WorkloadFor(seed)) {
    std::vector<ReadingMessage> readings;
    for (const BatchReading& r : batch) {
      readings.push_back(ReadingMessage{static_cast<size_t>(r.module),
                                        static_cast<size_t>(r.round),
                                        r.value});
    }
    EXPECT_TRUE(manager.SubmitBatch("lights", readings).ok());
  }
  auto sink = manager.sink("lights");
  EXPECT_TRUE(sink.ok());
  return RenderOutputs(*sink);
}

RetryPolicy TestPolicy() {
  RetryPolicy policy;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 200;
  policy.request_timeout_ms = 150;
  policy.deadline_ms = 30 * 1000;
  return policy;
}

/// Runs the cluster-level operator migration and pumps it to completion.
Status MigrateAndPump(SimWorld& world, VoterCluster& cluster,
                      const std::string& group, size_t dest) {
  Status result = InternalError("migration never completed");
  bool done = false;
  cluster.Migrate(group, dest, [&](Status status) {
    result = std::move(status);
    done = true;
  });
  world.Pump();
  EXPECT_TRUE(done) << "migration callback never fired";
  return result;
}

TEST(ClusterMigrationTest, ClientFollowsMovedRedirectAndTraceStaysBitExact) {
  SimWorld world(kSeed);
  obs::Registry registry;
  VoterCluster::Options options;
  options.nodes = 2;
  auto cluster =
      VoterCluster::StartOnWorld(&world, options, &registry);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ASSERT_TRUE((*cluster)->AddGroup("lights", AvocMaker()).ok());
  const size_t source = (*cluster)->OwnerOf("lights");
  const size_t dest = 1 - source;

  ResilientVoterClient client(
      []() -> Result<std::unique_ptr<Transport>> {
        return IoError("node directory only");
      },
      &world, "cluster-client", TestPolicy(), kSeed, &registry);
  client.UseNodeDirectory(
      [&](size_t node) { return (*cluster)->DialNode(node); }, options.nodes,
      /*initial_node=*/source);

  const auto workload = WorkloadFor(kSeed);
  for (size_t r = 0; r < kRounds / 2; ++r) {
    auto accepted = client.SubmitBatch("lights", workload[r]);
    ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
    ASSERT_EQ(*accepted, workload[r].size());
  }

  ASSERT_TRUE(MigrateAndPump(world, **cluster, "lights", dest).ok());
  EXPECT_EQ((*cluster)->OwnerOf("lights"), dest);
  EXPECT_EQ((*cluster)->ActiveServer(source)->group_migrations_out(), 1u);
  EXPECT_EQ((*cluster)->ActiveServer(dest)->group_migrations_in(), 1u);

  for (size_t r = kRounds / 2; r < kRounds; ++r) {
    auto accepted = client.SubmitBatch("lights", workload[r]);
    ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
    ASSERT_EQ(*accepted, workload[r].size());
  }
  // The still-connected client learned the new owner from MOVED.
  EXPECT_GE(client.redirects_followed(), 1u);
  EXPECT_EQ(client.target_node(), dest);
  EXPECT_GE((*cluster)->ActiveServer(source)->moved_redirects(), 1u);

  auto sink = (*cluster)->sink("lights");
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ(RenderOutputs(*sink), ReferenceTrace(kSeed));
  (*cluster)->Stop();
}

TEST(ClusterMigrationTest, DedupEntriesTravelWithTheGroup) {
  SimWorld world(kSeed);
  VoterCluster::Options options;
  options.nodes = 2;
  auto cluster = VoterCluster::StartOnWorld(&world, options);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->AddGroup("lights", AvocMaker()).ok());
  const size_t source = (*cluster)->OwnerOf("lights");
  const size_t dest = 1 - source;

  const auto workload = WorkloadFor(kSeed);
  auto transport = (*cluster)->DialNode(source);
  ASSERT_TRUE(transport.ok());
  auto writer =
      RemoteVoterClient::FromTransport(std::move(*transport), /*binary=*/true);
  ASSERT_TRUE(writer.ok());
  auto first = writer->SubmitBatchSeq("edge-7", 1, "lights", workload[0]);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(*first, workload[0].size());

  ASSERT_TRUE(MigrateAndPump(world, **cluster, "lights", dest).ok());

  // The SAME (client, seq) resent to the destination must be answered
  // from the migrated dedup cache, not double-ingested.
  auto transport2 = (*cluster)->DialNode(dest);
  ASSERT_TRUE(transport2.ok());
  auto resender =
      RemoteVoterClient::FromTransport(std::move(*transport2), /*binary=*/true);
  ASSERT_TRUE(resender.ok());
  auto replay = resender->SubmitBatchSeq("edge-7", 1, "lights", workload[0]);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(*replay, *first);

  auto sink = (*cluster)->sink("lights");
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ((*sink)->outputs().size(), 1u);  // round 0 fused exactly once
  (*cluster)->Stop();
}

TEST(ClusterMigrationTest, WireMigrateGroupVerbCommitsAndOldOwnerRedirects) {
  SimWorld world(kSeed);
  VoterCluster::Options options;
  options.nodes = 2;
  auto cluster = VoterCluster::StartOnWorld(&world, options);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->AddGroup("lights", AvocMaker()).ok());
  const size_t source = (*cluster)->OwnerOf("lights");
  const size_t dest = 1 - source;

  auto transport = (*cluster)->DialNode(source);
  ASSERT_TRUE(transport.ok());
  auto client =
      RemoteVoterClient::FromTransport(std::move(*transport), /*binary=*/true);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->MigrateGroup("lights", dest).ok());
  EXPECT_EQ((*cluster)->OwnerOf("lights"), dest);

  // A plain (non-resilient) client sees the machine-parseable MOVED.
  const auto workload = WorkloadFor(kSeed);
  auto bounced = client->SubmitBatch("lights", workload[0]);
  ASSERT_FALSE(bounced.ok());
  uint64_t moved_to = std::numeric_limits<uint64_t>::max();
  EXPECT_TRUE(TryParseMoved(bounced.status(), &moved_to))
      << bounced.status().ToString();
  EXPECT_EQ(moved_to, dest);
  (*cluster)->Stop();
}

TEST(ClusterMigrationTest, CrashFailoverResumesIngestExactlyOnce) {
  SimWorld world(kSeed);
  obs::Registry registry;
  VoterCluster::Options options;
  options.nodes = 2;
  options.hot_standbys = true;
  auto cluster = VoterCluster::StartOnWorld(&world, options, &registry);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->AddGroup("lights", AvocMaker()).ok());
  const size_t owner = (*cluster)->OwnerOf("lights");

  ResilientVoterClient client(
      []() -> Result<std::unique_ptr<Transport>> {
        return IoError("node directory only");
      },
      &world, "failover-client", TestPolicy(), kSeed, &registry);
  client.UseNodeDirectory(
      [&](size_t node) { return (*cluster)->DialNode(node); }, options.nodes,
      owner);

  const auto workload = WorkloadFor(kSeed);
  for (size_t r = 0; r < kRounds / 2; ++r) {
    ASSERT_TRUE(client.SubmitBatch("lights", workload[r]).ok());
  }
  // Every acknowledged frame reached the standby before its reply.
  EXPECT_GE((*cluster)->StandbyServer(owner)->replicated_applies(),
            kRounds / 2);

  (*cluster)->CrashNode(owner);
  ASSERT_TRUE((*cluster)->Failover(owner).ok());
  for (size_t r = kRounds / 2; r < kRounds; ++r) {
    auto accepted = client.SubmitBatch("lights", workload[r]);
    ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  }
  EXPECT_GE(client.reconnects(), 1u);  // the crash dropped the connection

  auto sink = (*cluster)->sink("lights");
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ(RenderOutputs(*sink), ReferenceTrace(kSeed));
  (*cluster)->Stop();
}

// --- negative paths ----------------------------------------------------------

TEST(ClusterMigrationNegativeTest, UnknownGroupAnswersNotFound) {
  SimWorld world(kSeed);
  VoterCluster::Options options;
  options.nodes = 2;
  auto cluster = VoterCluster::StartOnWorld(&world, options);
  ASSERT_TRUE(cluster.ok());
  const Status status = MigrateAndPump(world, **cluster, "ghost", 0);
  EXPECT_EQ(status.code(), ErrorCode::kNotFound) << status.ToString();
  (*cluster)->Stop();
}

TEST(ClusterMigrationNegativeTest, WrongNodeAnswersMovedRedirect) {
  SimWorld world(kSeed);
  VoterCluster::Options options;
  options.nodes = 2;
  auto cluster = VoterCluster::StartOnWorld(&world, options);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->AddGroup("lights", AvocMaker()).ok());
  const size_t owner = (*cluster)->OwnerOf("lights");
  const size_t wrong = 1 - owner;

  // Ask the NON-owner to migrate: same MOVED contract as data requests.
  Status result = InternalError("never completed");
  bool done = false;
  auto* server = (*cluster)->ActiveServer(wrong);
  server->BeginMigration("lights", owner, [&](Status status) {
    result = std::move(status);
    done = true;
  });
  world.Pump();
  ASSERT_TRUE(done);
  uint64_t moved_to = 0;
  EXPECT_TRUE(TryParseMoved(result, &moved_to)) << result.ToString();
  EXPECT_EQ(moved_to, owner);
  (*cluster)->Stop();
}

TEST(ClusterMigrationNegativeTest, DestinationOutOfRangeOrSelfIsTyped) {
  SimWorld world(kSeed);
  VoterCluster::Options options;
  options.nodes = 2;
  auto cluster = VoterCluster::StartOnWorld(&world, options);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->AddGroup("lights", AvocMaker()).ok());
  const size_t owner = (*cluster)->OwnerOf("lights");

  const Status out_of_range = MigrateAndPump(world, **cluster, "lights", 7);
  EXPECT_EQ(out_of_range.code(), ErrorCode::kInvalidArgument)
      << out_of_range.ToString();
  const Status to_self = MigrateAndPump(world, **cluster, "lights", owner);
  EXPECT_EQ(to_self.code(), ErrorCode::kInvalidArgument) << to_self.ToString();
  (*cluster)->Stop();
}

TEST(ClusterMigrationNegativeTest, MigrationToDeadNodeFailsFast) {
  SimWorld world(kSeed);
  VoterCluster::Options options;
  options.nodes = 2;
  auto cluster = VoterCluster::StartOnWorld(&world, options);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->AddGroup("lights", AvocMaker()).ok());
  const size_t owner = (*cluster)->OwnerOf("lights");
  const size_t dest = 1 - owner;

  (*cluster)->CrashNode(dest);
  const Status status = MigrateAndPump(world, **cluster, "lights", dest);
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition)
      << status.ToString();
  // The group never left the owner and still serves.
  EXPECT_EQ((*cluster)->OwnerOf("lights"), owner);
  EXPECT_EQ((*cluster)->ActiveServer(owner)->group_migrations_out(), 0u);
  (*cluster)->Stop();
}

TEST(ClusterMigrationNegativeTest, DoubleMigrationRaceSecondIsTyped) {
  SimWorld world(kSeed);
  VoterCluster::Options options;
  options.nodes = 3;
  auto cluster = VoterCluster::StartOnWorld(&world, options);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->AddGroup("lights", AvocMaker()).ok());
  const size_t owner = (*cluster)->OwnerOf("lights");
  const size_t dest_a = (owner + 1) % 3;
  const size_t dest_b = (owner + 2) % 3;

  // Enqueue BOTH migrations before any pump: the second dispatch finds
  // either the in-flight quiesce or the already-moved group — a typed
  // FailedPrecondition either way, never a double transfer.
  Status first = InternalError("never completed");
  Status second = InternalError("never completed");
  (**cluster).Migrate("lights", dest_a, [&](Status s) { first = std::move(s); });
  (**cluster).Migrate("lights", dest_b,
                      [&](Status s) { second = std::move(s); });
  world.Pump();
  EXPECT_TRUE(first.ok()) << first.ToString();
  EXPECT_EQ(second.code(), ErrorCode::kFailedPrecondition)
      << second.ToString();
  EXPECT_EQ((*cluster)->OwnerOf("lights"), dest_a);
  (*cluster)->Stop();
}

TEST(ClusterMigrationNegativeTest, RedirectLoopToDeadOwnerFailsTyped) {
  SimWorld world(kSeed);
  VoterCluster::Options options;
  options.nodes = 2;
  auto cluster = VoterCluster::StartOnWorld(&world, options);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->AddGroup("lights", AvocMaker()).ok());
  const size_t owner = (*cluster)->OwnerOf("lights");

  // Kill the owner WITHOUT failover: the live node keeps answering MOVED
  // toward a corpse.  The client must fail typed at max_redirects, not
  // spin forever.
  (*cluster)->CrashNode(owner);
  RetryPolicy policy = TestPolicy();
  policy.max_redirects = 3;
  policy.deadline_ms = 5000;
  ResilientVoterClient client(
      []() -> Result<std::unique_ptr<Transport>> {
        return IoError("node directory only");
      },
      &world, "loop-client", policy, kSeed);
  client.UseNodeDirectory(
      [&](size_t node) { return (*cluster)->DialNode(node); }, options.nodes,
      1 - owner);

  const auto workload = WorkloadFor(kSeed);
  auto bounced = client.SubmitBatch("lights", workload[0]);
  ASSERT_FALSE(bounced.ok());
  EXPECT_EQ(bounced.status().code(), ErrorCode::kFailedPrecondition)
      << bounced.status().ToString();
  EXPECT_NE(bounced.status().message().find("redirect loop"),
            std::string::npos)
      << bounced.status().ToString();
  EXPECT_GE(client.redirects_followed(), policy.max_redirects);
  (*cluster)->Stop();
}

TEST(ClusterMigrationNegativeTest, StandaloneServerRejectsMigrateGroupVerb) {
  SimWorld world(kSeed);
  obs::Registry registry;
  VoterGroupManager manager(nullptr, &registry);
  ASSERT_TRUE(manager
                  .AddGroup("lights", *core::MakeEngine(
                                          core::AlgorithmId::kAvoc, kModules))
                  .ok());
  auto listener = world.Listen(7);
  ASSERT_TRUE(listener.ok());
  auto server = RemoteVoterServer::StartOnReactor(
      &manager, RemoteServerOptions{}, std::move(*listener), world.reactor(),
      /*spawn_loop_thread=*/false);
  ASSERT_TRUE(server.ok());

  auto transport = world.Connect(7);
  ASSERT_TRUE(transport.ok());
  auto client =
      RemoteVoterClient::FromTransport(std::move(*transport), /*binary=*/true);
  ASSERT_TRUE(client.ok());
  const Status status = client->MigrateGroup("lights", 1);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cluster mode"), std::string::npos)
      << status.ToString();
  // The connection stays healthy for ordinary traffic.
  EXPECT_TRUE(client->Ping().ok());
  (*server)->Stop();
}

// --- per-node telemetry identity --------------------------------------------

TEST(ClusterTelemetryTest, HealthMetricsAndTraceDumpCarryNodeLabels) {
  SimWorld world(kSeed);
  obs::TracerOptions tracer_options;
  tracer_options.ring_count = 1;
  tracer_options.ring_capacity = 4096;
  tracer_options.now_ns = [&world] { return world.NowMs() * 1'000'000ull; };
  obs::Tracer tracer(tracer_options);
  obs::Registry registry;
  VoterCluster::Options options;
  options.nodes = 2;
  options.server.tracer = &tracer;
  auto cluster = VoterCluster::StartOnWorld(&world, options, &registry);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->AddGroup("lights", AvocMaker()).ok());
  const size_t owner = (*cluster)->OwnerOf("lights");

  const auto workload = WorkloadFor(kSeed);
  auto transport = (*cluster)->DialNode(owner);
  ASSERT_TRUE(transport.ok());
  auto client =
      RemoteVoterClient::FromTransport(std::move(*transport), /*binary=*/true);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SubmitBatch("lights", workload[0]).ok());

  const std::string node_label = StrFormat("node=n%zu", owner);
  // HEALTH fan-out: every GROUP line names the node that owns the group.
  auto health = client->Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  ASSERT_FALSE(health->empty());
  for (const std::string& line : *health) {
    EXPECT_NE(line.find(node_label), std::string::npos) << line;
  }
  // Metric families are disambiguated per node.
  auto metrics = client->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find(StrFormat("node=\"n%zu\"", owner)),
            std::string::npos);
  EXPECT_NE(metrics->find("avoc_cluster_moved_total"), std::string::npos);
  // TRACE_DUMP spans say which node did the work.
  auto dump = client->TraceDump();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_NE(dump->find(node_label), std::string::npos) << *dump;
  (*cluster)->Stop();
}

// --- hostile bytes at the codec layer ----------------------------------------

GroupStateBlob SampleBlob() {
  GroupStateBlob blob;
  blob.group = "lights";
  auto& ledger = blob.state.engine.ledger;
  ledger.records = {0.5, std::numeric_limits<double>::quiet_NaN(), -0.0};
  ledger.agreement_sums = {1.25, std::numeric_limits<double>::infinity(),
                           -3.5};
  ledger.observations = {4, 5, 6};
  ledger.rounds = 9;
  blob.state.engine.last_output = -0.0;
  blob.state.engine.round_index = 9;
  blob.state.hub.pending.push_back(
      {11, core::Round{core::Reading(21.5), core::Reading(std::nullopt),
                       core::Reading(22.5)}});
  blob.state.hub.closed_rounds = {0, 1, 2};
  OutputMessage out;
  out.round = 2;
  out.result.value = 21.0;
  out.result.present_count = 3;
  out.result.weights = {0.3, 0.3, 0.4};
  out.result.agreement = {1.0, 0.0, 1.0};
  out.result.history = {0.9, 0.1, 0.8};
  out.result.excluded = {false, true, false};
  out.result.eliminated = {false, false, false};
  blob.state.outputs.push_back(out);
  blob.dedup.push_back({"edge-7", 3, 3});
  return blob;
}

TEST(ClusterCodecTest, GroupStateRoundTripsSpecialDoublesBitExactly) {
  const GroupStateBlob blob = SampleBlob();
  auto decoded = DecodeGroupState(EncodeGroupState(blob));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const auto& ledger = decoded->state.engine.ledger;
  ASSERT_EQ(ledger.records.size(), 3u);
  EXPECT_EQ(std::bit_cast<uint64_t>(ledger.records[1]),
            std::bit_cast<uint64_t>(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(std::bit_cast<uint64_t>(ledger.records[2]),
            std::bit_cast<uint64_t>(-0.0));
  EXPECT_EQ(ledger.agreement_sums[1],
            std::numeric_limits<double>::infinity());
  ASSERT_TRUE(decoded->state.engine.last_output.has_value());
  EXPECT_EQ(std::bit_cast<uint64_t>(*decoded->state.engine.last_output),
            std::bit_cast<uint64_t>(-0.0));
  ASSERT_EQ(decoded->dedup.size(), 1u);
  EXPECT_EQ(decoded->dedup[0].client_id, "edge-7");
  EXPECT_EQ(decoded->dedup[0].seq, 3u);
  ASSERT_EQ(decoded->state.hub.pending.size(), 1u);
  EXPECT_FALSE(decoded->state.hub.pending[0].second[1].has_value());
}

TEST(ClusterCodecTest, GroupStateDecodeRejectsHostileBytes) {
  const std::string good = EncodeGroupState(SampleBlob());
  // Every truncation point fails typed.
  for (size_t len = 0; len < good.size(); ++len) {
    auto decoded = DecodeGroupState(std::string_view(good).substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "len=" << len;
    EXPECT_EQ(decoded.status().code(), ErrorCode::kParseError)
        << "len=" << len;
  }
  // Any single bit flip breaks the CRC.
  Rng rng(0xF11Full);
  for (int i = 0; i < 200; ++i) {
    std::string bytes = good;
    bytes[rng.UniformInt(bytes.size())] ^=
        static_cast<char>(1u << rng.UniformInt(8));
    auto decoded = DecodeGroupState(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), ErrorCode::kParseError);
  }
  // Wrong magic (a replication record is NOT a blob) and trailing bytes.
  EXPECT_FALSE(DecodeGroupState(EncodeReplicationRecord({})).ok());
  EXPECT_FALSE(DecodeGroupState(good + "x").ok());
  EXPECT_FALSE(DecodeGroupState("").ok());
}

TEST(ClusterCodecTest, ReplicationRecordDecodeRejectsHostileBytes) {
  ReplicationRecord record;
  record.kind = ReplicationRecord::Kind::kFrame;
  record.frame_type = 0x06;
  record.bytes = std::string("payload\x00\xff\x80", 10);
  const std::string good = EncodeReplicationRecord(record);
  auto ok = DecodeReplicationRecord(good);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->bytes, record.bytes);

  for (size_t len = 0; len < good.size(); ++len) {
    auto decoded =
        DecodeReplicationRecord(std::string_view(good).substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "len=" << len;
    EXPECT_EQ(decoded.status().code(), ErrorCode::kParseError);
  }
  Rng rng(0xF00Dull);
  for (int i = 0; i < 200; ++i) {
    std::string bytes = good;
    bytes[rng.UniformInt(bytes.size())] ^=
        static_cast<char>(1u << rng.UniformInt(8));
    EXPECT_FALSE(DecodeReplicationRecord(bytes).ok());
  }
  EXPECT_FALSE(DecodeReplicationRecord(EncodeGroupState(SampleBlob())).ok());
  EXPECT_FALSE(DecodeReplicationRecord("").ok());
}

}  // namespace
}  // namespace avoc::runtime
