#include "vdx/spec.h"

#include <gtest/gtest.h>

namespace avoc::vdx {
namespace {

// The paper's Listing 1, verbatim (trailing comma included).
constexpr char kListing1[] = R"({
  "algorithm_name": "AVOC",
  "quorum": "UNTIL",
  "quorum_percentage": 100,
  "exclusion": "NONE",
  "exclusion_threshold": 0,
  "history": "HYBRID",
  "params": {
    "error": 0.05,
    "soft_threshold": 2
  },
  "collation": "MEAN_NEAREST_NEIGHBOR",
  "bootstrapping": true,
})";

TEST(VdxSpecTest, ParsesListing1) {
  auto spec = Spec::Parse(kListing1);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->algorithm_name, "AVOC");
  EXPECT_EQ(spec->quorum, QuorumMode::kUntil);
  EXPECT_DOUBLE_EQ(spec->quorum_amount, 100.0);
  EXPECT_EQ(spec->exclusion, ExclusionKind::kNone);
  EXPECT_EQ(spec->history, HistoryKind::kHybrid);
  EXPECT_DOUBLE_EQ(spec->ParamOr("error", 0), 0.05);
  EXPECT_DOUBLE_EQ(spec->ParamOr("soft_threshold", 0), 2.0);
  EXPECT_EQ(spec->collation, CollationKind::kMeanNearestNeighbor);
  EXPECT_TRUE(spec->bootstrapping);
  EXPECT_EQ(spec->value_type, ValueKind::kNumeric);
  EXPECT_TRUE(spec->Validate().ok());
}

TEST(VdxSpecTest, MissingAlgorithmNameRejected) {
  EXPECT_FALSE(Spec::Parse(R"({"history": "STANDARD"})").ok());
  EXPECT_FALSE(Spec::Parse("[1,2]").ok());
}

TEST(VdxSpecTest, UnknownTokensRejected) {
  EXPECT_FALSE(
      Spec::Parse(R"({"algorithm_name":"x","quorum":"SOMETIMES"})").ok());
  EXPECT_FALSE(
      Spec::Parse(R"({"algorithm_name":"x","history":"MAGIC"})").ok());
  EXPECT_FALSE(
      Spec::Parse(R"({"algorithm_name":"x","collation":"VIBES"})").ok());
  EXPECT_FALSE(
      Spec::Parse(R"({"algorithm_name":"x","exclusion":"YES"})").ok());
  EXPECT_FALSE(
      Spec::Parse(R"({"algorithm_name":"x","value_type":"BLOB"})").ok());
}

TEST(VdxSpecTest, TokenParsingIsCaseInsensitive) {
  EXPECT_EQ(*ParseQuorumMode("until"), QuorumMode::kUntil);
  EXPECT_EQ(*ParseHistoryKind("hybrid"), HistoryKind::kHybrid);
  EXPECT_EQ(*ParseCollationKind("mean_nearest_neighbour"),
            CollationKind::kMeanNearestNeighbor);
  EXPECT_EQ(*ParseExclusionKind(" stddev "), ExclusionKind::kStdDev);
  EXPECT_EQ(*ParseValueKind("categorical"), ValueKind::kCategorical);
  EXPECT_EQ(*ParseFaultAction("revert_last"), FaultAction::kRevertLast);
}

TEST(VdxSpecTest, EnumTokensRoundTrip) {
  for (const auto mode : {QuorumMode::kAny, QuorumMode::kCount,
                          QuorumMode::kPercent, QuorumMode::kUntil}) {
    EXPECT_EQ(*ParseQuorumMode(ToToken(mode)), mode);
  }
  for (const auto kind :
       {HistoryKind::kNone, HistoryKind::kStandard,
        HistoryKind::kModuleElimination, HistoryKind::kSoftDynamicThreshold,
        HistoryKind::kHybrid}) {
    EXPECT_EQ(*ParseHistoryKind(ToToken(kind)), kind);
  }
  for (const auto kind :
       {CollationKind::kWeightedAverage, CollationKind::kMeanNearestNeighbor,
        CollationKind::kWeightedMedian, CollationKind::kMajority}) {
    EXPECT_EQ(*ParseCollationKind(ToToken(kind)), kind);
  }
  for (const auto action :
       {FaultAction::kAccept, FaultAction::kEmitNothing,
        FaultAction::kRevertLast, FaultAction::kRaise}) {
    EXPECT_EQ(*ParseFaultAction(ToToken(action)), action);
  }
}

TEST(VdxSpecTest, SerializeParseRoundTrip) {
  auto spec = Spec::Parse(kListing1);
  ASSERT_TRUE(spec.ok());
  spec->fault_policy.on_no_quorum = FaultAction::kRaise;
  spec->string_params["threshold_scale"] = "ABSOLUTE";
  spec->params["penalty"] = 0.4;
  auto reparsed = Spec::Parse(spec->Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->algorithm_name, spec->algorithm_name);
  EXPECT_EQ(reparsed->quorum, spec->quorum);
  EXPECT_EQ(reparsed->history, spec->history);
  EXPECT_EQ(reparsed->collation, spec->collation);
  EXPECT_EQ(reparsed->bootstrapping, spec->bootstrapping);
  EXPECT_EQ(reparsed->params, spec->params);
  EXPECT_EQ(reparsed->string_params, spec->string_params);
  EXPECT_EQ(reparsed->fault_policy.on_no_quorum, FaultAction::kRaise);
}

TEST(VdxSpecTest, QuorumCountSerialization) {
  Spec spec;
  spec.algorithm_name = "counted";
  spec.quorum = QuorumMode::kCount;
  spec.quorum_amount = 3;
  auto reparsed = Spec::Parse(spec.Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->quorum, QuorumMode::kCount);
  EXPECT_DOUBLE_EQ(reparsed->quorum_amount, 3.0);
}

TEST(VdxSpecTest, ValidateQuorumRanges) {
  Spec spec;
  spec.algorithm_name = "x";
  spec.quorum = QuorumMode::kPercent;
  spec.quorum_amount = 0.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.quorum_amount = 101.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.quorum_amount = 100.0;
  EXPECT_TRUE(spec.Validate().ok());
  spec.quorum = QuorumMode::kCount;
  spec.quorum_amount = 0.0;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(VdxSpecTest, ValidateExclusionThreshold) {
  Spec spec;
  spec.algorithm_name = "x";
  spec.exclusion = ExclusionKind::kStdDev;
  spec.exclusion_threshold = 0.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.exclusion_threshold = 2.0;
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(VdxSpecTest, ValidateParams) {
  Spec spec;
  spec.algorithm_name = "x";
  spec.history = HistoryKind::kStandard;
  spec.params["error"] = -1.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.params["error"] = 0.05;
  EXPECT_TRUE(spec.Validate().ok());
  spec.history = HistoryKind::kSoftDynamicThreshold;
  spec.params["soft_threshold"] = 0.5;
  EXPECT_FALSE(spec.Validate().ok());
}

// --- §6 categorical capability matrix ------------------------------------

Spec CategoricalBase() {
  Spec spec;
  spec.algorithm_name = "labels";
  spec.value_type = ValueKind::kCategorical;
  spec.history = HistoryKind::kStandard;
  spec.collation = CollationKind::kMajority;
  return spec;
}

TEST(VdxCapabilityTest, CategoricalBaseIsValid) {
  EXPECT_TRUE(CategoricalBase().Validate().ok());
}

TEST(VdxCapabilityTest, CategoricalRejectsValueExclusion) {
  Spec spec = CategoricalBase();
  spec.exclusion = ExclusionKind::kStdDev;
  spec.exclusion_threshold = 2.0;
  const Status status = spec.Validate();
  EXPECT_EQ(status.code(), ErrorCode::kUnsupported);
}

TEST(VdxCapabilityTest, CategoricalRejectsNonMajorityCollation) {
  Spec spec = CategoricalBase();
  spec.collation = CollationKind::kWeightedAverage;
  EXPECT_EQ(spec.Validate().code(), ErrorCode::kUnsupported);
}

TEST(VdxCapabilityTest, CategoricalRejectsHybridWithoutDistance) {
  Spec spec = CategoricalBase();
  spec.history = HistoryKind::kHybrid;
  EXPECT_EQ(spec.Validate().code(), ErrorCode::kUnsupported);
  // The paper's escape hatch: a custom distance metric re-enables it.
  EXPECT_TRUE(spec.Validate(/*has_custom_distance=*/true).ok());
}

TEST(VdxCapabilityTest, CategoricalRejectsClusteringWithoutDistance) {
  Spec spec = CategoricalBase();
  spec.bootstrapping = true;
  EXPECT_EQ(spec.Validate().code(), ErrorCode::kUnsupported);
  EXPECT_TRUE(spec.Validate(/*has_custom_distance=*/true).ok());
}

TEST(VdxCapabilityTest, NumericRejectsMajorityCollation) {
  Spec spec;
  spec.algorithm_name = "x";
  spec.collation = CollationKind::kMajority;
  EXPECT_EQ(spec.Validate().code(), ErrorCode::kUnsupported);
}

TEST(VdxSpecTest, ModuleEliminationHistoryAlias) {
  auto spec = Spec::Parse(
      R"({"algorithm_name":"me","history":"MODULE_ELIMINATION"})");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->history, HistoryKind::kModuleElimination);
}

TEST(VdxSpecTest, ParamsRejectNonScalarValues) {
  EXPECT_FALSE(
      Spec::Parse(R"({"algorithm_name":"x","params":{"a":[1,2]}})").ok());
  EXPECT_FALSE(
      Spec::Parse(R"({"algorithm_name":"x","params":"flat"})").ok());
}

TEST(VdxSpecTest, StringParamsPreserved) {
  auto spec = Spec::Parse(
      R"({"algorithm_name":"x","params":{"threshold_scale":"ABSOLUTE","error":0.1}})");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->StringParamOr("threshold_scale", ""), "ABSOLUTE");
  EXPECT_DOUBLE_EQ(spec->ParamOr("error", 0), 0.1);
  EXPECT_EQ(spec->StringParamOr("missing", "dflt"), "dflt");
}

TEST(VdxSpecTest, FaultPolicyParsing) {
  auto spec = Spec::Parse(R"({
    "algorithm_name": "x",
    "fault_policy": {"on_no_quorum": "RAISE", "on_no_majority": "REVERT_LAST"}
  })");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->fault_policy.on_no_quorum, FaultAction::kRaise);
  EXPECT_EQ(spec->fault_policy.on_no_majority, FaultAction::kRevertLast);
}

}  // namespace
}  // namespace avoc::vdx
