#include "data/stream.h"

#include <gtest/gtest.h>

namespace avoc::data {
namespace {

SampleStream MakeStream(std::string name,
                        std::initializer_list<Sample> samples) {
  SampleStream stream(std::move(name));
  for (const Sample& s : samples) stream.Push(s.timestamp, s.value);
  return stream;
}

ResampleOptions Options(double period, ResampleMethod method,
                        double max_age = -1.0) {
  ResampleOptions options;
  options.period = period;
  options.method = method;
  if (max_age > 0.0) options.max_age = max_age;
  return options;
}

TEST(SampleStreamTest, PushKeepsTimestampOrder) {
  SampleStream stream("s");
  stream.Push(3.0, 30.0);
  stream.Push(1.0, 10.0);  // out-of-order arrival
  stream.Push(2.0, 20.0);
  ASSERT_EQ(stream.size(), 3u);
  EXPECT_DOUBLE_EQ(stream.samples()[0].timestamp, 1.0);
  EXPECT_DOUBLE_EQ(stream.samples()[1].timestamp, 2.0);
  EXPECT_DOUBLE_EQ(stream.samples()[2].timestamp, 3.0);
  EXPECT_DOUBLE_EQ(stream.first_timestamp(), 1.0);
  EXPECT_DOUBLE_EQ(stream.last_timestamp(), 3.0);
}

TEST(SampleStreamTest, DuplicateTimestampsAllowed) {
  SampleStream stream("s");
  stream.Push(1.0, 10.0);
  stream.Push(1.0, 11.0);
  EXPECT_EQ(stream.size(), 2u);
}

TEST(ResampleTest, ValidatesInputs) {
  std::vector<SampleStream> empty;
  EXPECT_FALSE(ResampleToRounds(empty).ok());
  std::vector<SampleStream> no_samples = {SampleStream("a")};
  EXPECT_FALSE(ResampleToRounds(no_samples).ok());
  std::vector<SampleStream> one = {MakeStream("a", {{0.0, 1.0}})};
  ResampleOptions bad;
  bad.period = 0.0;
  EXPECT_FALSE(ResampleToRounds(one, bad).ok());
  bad = ResampleOptions{};
  bad.max_age = -2.0;
  EXPECT_FALSE(ResampleToRounds(one, bad).ok());
}

TEST(ResampleTest, NearestPicksClosestSample) {
  std::vector<SampleStream> streams = {
      MakeStream("a", {{0.0, 10.0}, {0.9, 20.0}, {2.1, 30.0}})};
  auto table =
      ResampleToRounds(streams, Options(1.0, ResampleMethod::kNearest));
  ASSERT_TRUE(table.ok());
  // Rounds at t = 0, 1, 2 (start defaults to earliest sample).
  ASSERT_EQ(table->round_count(), 3u);
  EXPECT_DOUBLE_EQ(*table->At(0, 0), 10.0);  // t=0: exact
  EXPECT_DOUBLE_EQ(*table->At(1, 0), 20.0);  // t=1: 0.9 closer than 2.1
  EXPECT_DOUBLE_EQ(*table->At(2, 0), 30.0);  // t=2: 2.1 closest
}

TEST(ResampleTest, StalenessYieldsMissing) {
  std::vector<SampleStream> streams = {
      MakeStream("a", {{0.0, 10.0}, {5.0, 50.0}})};
  ResampleOptions options = Options(1.0, ResampleMethod::kNearest, 0.4);
  options.rounds = 6;
  auto table = ResampleToRounds(streams, options);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->At(0, 0).has_value());
  EXPECT_FALSE(table->At(1, 0).has_value());  // nearest is 1.0 away > 0.4
  EXPECT_FALSE(table->At(3, 0).has_value());
  EXPECT_TRUE(table->At(5, 0).has_value());
}

TEST(ResampleTest, SampleAndHoldNeverLooksAhead) {
  std::vector<SampleStream> streams = {
      MakeStream("a", {{0.5, 10.0}, {2.5, 20.0}})};
  ResampleOptions options = Options(1.0, ResampleMethod::kSampleAndHold, 2.0);
  options.start = 0.0;
  options.rounds = 4;
  auto table = ResampleToRounds(streams, options);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->At(0, 0).has_value());  // t=0: nothing yet
  EXPECT_DOUBLE_EQ(*table->At(1, 0), 10.0);   // t=1: holds 0.5 sample
  EXPECT_DOUBLE_EQ(*table->At(2, 0), 10.0);   // t=2: still holding
  EXPECT_DOUBLE_EQ(*table->At(3, 0), 20.0);   // t=3: 2.5 sample
}

TEST(ResampleTest, WindowMeanAveragesTheRound) {
  std::vector<SampleStream> streams = {
      MakeStream("a", {{0.1, 10.0}, {0.5, 20.0}, {0.9, 30.0}, {1.5, 100.0}})};
  ResampleOptions options = Options(1.0, ResampleMethod::kWindowMean);
  options.start = 1.0;  // round 0 covers (0, 1]
  options.rounds = 2;
  auto table = ResampleToRounds(streams, options);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(*table->At(0, 0), 20.0);   // mean of 10,20,30
  EXPECT_DOUBLE_EQ(*table->At(1, 0), 100.0);  // (1, 2] holds one sample
}

TEST(ResampleTest, MultipleStreamsShareTheGrid) {
  std::vector<SampleStream> streams = {
      MakeStream("fast", {{0.0, 1.0}, {0.5, 2.0}, {1.0, 3.0}, {1.5, 4.0}}),
      MakeStream("slow", {{0.2, 10.0}})};
  ResampleOptions options = Options(0.5, ResampleMethod::kNearest, 0.25);
  auto table = ResampleToRounds(streams, options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->module_count(), 2u);
  EXPECT_EQ(table->module_names()[0], "fast");
  // The slow stream is fresh only near t=0.0/0.5 rounds within 0.25 s.
  EXPECT_TRUE(table->At(0, 1).has_value());
  EXPECT_FALSE(table->At(2, 1).has_value());
  // The fast stream covers every round.
  for (size_t r = 0; r < table->round_count(); ++r) {
    EXPECT_TRUE(table->At(r, 0).has_value()) << r;
  }
}

TEST(ResampleTest, RoundCountDerivedFromLatestSample) {
  std::vector<SampleStream> streams = {
      MakeStream("a", {{10.0, 1.0}, {14.2, 2.0}})};
  auto table =
      ResampleToRounds(streams, Options(1.0, ResampleMethod::kNearest, 10.0));
  ASSERT_TRUE(table.ok());
  // start 10.0, latest 14.2 -> rounds at 10,11,12,13,14 = 5.
  EXPECT_EQ(table->round_count(), 5u);
}

TEST(ResampleTest, ExplicitStartBeyondSamplesFails) {
  std::vector<SampleStream> streams = {MakeStream("a", {{0.0, 1.0}})};
  ResampleOptions options = Options(1.0, ResampleMethod::kNearest);
  options.start = 100.0;
  EXPECT_FALSE(ResampleToRounds(streams, options).ok());
}

TEST(ResampleTest, UnnamedStreamsGetDefaultNames) {
  SampleStream anonymous;
  anonymous.Push(0.0, 1.0);
  std::vector<SampleStream> streams = {anonymous};
  auto table = ResampleToRounds(streams, Options(1.0, ResampleMethod::kNearest));
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->module_names()[0], "m0");
}

}  // namespace
}  // namespace avoc::data
