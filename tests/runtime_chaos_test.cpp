// Seed-sweep chaos suite over the deterministic simulation harness.
//
// Every test case sweeps a band of seeds.  Each seed derives a
// heal-eventually fault schedule (FaultPlan::Chaos): connection resets,
// partitions, half-open links, latency, fragmentation — all strictly
// inside the horizon.  The *real* RemoteVoterServer runs single-threaded
// on the simulated reactor; a ResilientVoterClient submits a fixed
// workload through the faults.  Assertions:
//
//   1. Convergence: once the network heals, the sink trace is
//      BIT-IDENTICAL to the fault-free run of the same workload —
//      exactly-once ingestion, no dropped or duplicated rounds.
//   2. Determinism: re-running a seed reproduces the identical simulated
//      event trace, byte for byte.
//
// Reproducing a failure: every assertion carries its seed.  Set
// AVOC_CHAOS_SEED=<n> to run exactly that seed (all shards collapse to
// it), e.g.  AVOC_CHAOS_SEED=1042 ./runtime_chaos_test.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/remote.h"
#include "runtime/resilient.h"
#include "runtime/sim_net.h"
#include "util/strings.h"

namespace avoc::runtime {
namespace {

constexpr uint16_t kPort = 7;
constexpr size_t kModules = 3;
constexpr size_t kRounds = 8;
constexpr uint64_t kHorizonMs = 4000;

/// The workload's reading values for one seed — a function of the seed
/// only, never of the fault schedule, so faulty and fault-free runs
/// submit identical data.
std::vector<std::vector<BatchReading>> WorkloadFor(uint64_t seed) {
  Rng values(seed ^ 0xDA7A5EEDull);
  std::vector<std::vector<BatchReading>> rounds;
  for (size_t r = 0; r < kRounds; ++r) {
    std::vector<BatchReading> batch;
    for (uint64_t m = 0; m < kModules; ++m) {
      batch.push_back(BatchReading{
          m, r, 20.0 + values.Gaussian(0.0, 2.0)});
    }
    rounds.push_back(std::move(batch));
  }
  return rounds;
}

/// Bit-exact rendering of the sink's fused outputs (hex floats).
std::string SinkTrace(const VoterGroupManager& manager) {
  auto sink = manager.sink("lights");
  if (!sink.ok()) return "<no sink>";
  std::string trace;
  for (const OutputMessage& out : (*sink)->outputs()) {
    trace += StrFormat("%zu %d %a\n", out.round,
                       static_cast<int>(out.result.outcome),
                       out.result.value.value_or(-0.0));
  }
  return trace;
}

struct ChaosRun {
  std::string sink_trace;
  std::string world_trace;
  bool workload_ok = false;
  size_t reconnects = 0;
  size_t dedup_replays = 0;
};

ChaosRun RunWorkload(uint64_t seed, bool with_faults) {
  SimWorld::Options options;
  if (with_faults) options.fault_plan = FaultPlan::Chaos(seed, kHorizonMs);
  SimWorld world(seed, options);
  obs::Registry registry;
  VoterGroupManager manager(nullptr, &registry);
  if (!manager
           .AddGroup("lights", *core::MakeEngine(core::AlgorithmId::kAvoc,
                                                 kModules))
           .ok()) {
    return {};
  }
  auto listener = world.Listen(kPort);
  if (!listener.ok()) return {};
  auto server = RemoteVoterServer::StartOnReactor(
      &manager, RemoteServerOptions{}, std::move(*listener), world.reactor(),
      /*spawn_loop_thread=*/false);
  if (!server.ok()) return {};

  RetryPolicy policy;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 200;
  policy.request_timeout_ms = 150;
  policy.deadline_ms = 10 * kHorizonMs;  // faults always heal well before
  ResilientVoterClient client([&world] { return world.Connect(kPort); },
                              &world, "chaos-client", policy,
                              seed ^ 0xBACC0FFull, &registry);

  ChaosRun run;
  run.workload_ok = true;
  for (const std::vector<BatchReading>& batch : WorkloadFor(seed)) {
    auto accepted = client.SubmitBatch("lights", batch);
    if (!accepted.ok() || *accepted != batch.size()) {
      run.workload_ok = false;
      break;
    }
  }
  run.sink_trace = SinkTrace(manager);
  run.world_trace = world.TraceText();
  run.reconnects = client.reconnects();
  run.dedup_replays = (*server)->dedup_replays();
  (*server)->Stop();
  return run;
}

/// Seed band for one shard, honoring the AVOC_CHAOS_SEED override.
std::vector<uint64_t> SeedBand(uint64_t base, size_t count) {
  if (const char* forced = std::getenv("AVOC_CHAOS_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(forced, nullptr, 10))};
  }
  std::vector<uint64_t> seeds;
  for (size_t i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

class ChaosShard : public ::testing::TestWithParam<uint64_t> {};

// 4 shards x 60 seeds = 240 distinct fault schedules.
constexpr size_t kSeedsPerShard = 60;

TEST_P(ChaosShard, HealedRunsConvergeToFaultFreeSinkTrace) {
  const uint64_t base = GetParam();
  std::optional<std::string> baseline_cache;
  uint64_t baseline_seed = 0;
  for (uint64_t seed : SeedBand(base, kSeedsPerShard)) {
    SCOPED_TRACE(StrFormat("seed=%llu (AVOC_CHAOS_SEED=%llu to reproduce)",
                           static_cast<unsigned long long>(seed),
                           static_cast<unsigned long long>(seed)));
    const ChaosRun faulty = RunWorkload(seed, /*with_faults=*/true);
    ASSERT_TRUE(faulty.workload_ok);
    // The fault-free reference for the same workload.
    const ChaosRun clean = RunWorkload(seed, /*with_faults=*/false);
    ASSERT_TRUE(clean.workload_ok);
    EXPECT_EQ(faulty.sink_trace, clean.sink_trace);
    EXPECT_FALSE(clean.sink_trace.empty());
    ASSERT_NE(clean.sink_trace, "<no sink>");
    // Workload values differ per seed, so traces must too (sanity check
    // that the comparison is not trivially true).
    if (baseline_cache.has_value() && seed != baseline_seed) {
      EXPECT_NE(clean.sink_trace, *baseline_cache)
          << "seeds " << baseline_seed << " and " << seed
          << " produced identical workloads";
    } else {
      baseline_cache = clean.sink_trace;
      baseline_seed = seed;
    }
  }
}

TEST_P(ChaosShard, SameSeedReplaysIdenticalEventTrace) {
  const uint64_t base = GetParam();
  // Every 5th seed: run the faulty world twice, diff the event traces.
  for (uint64_t seed : SeedBand(base, kSeedsPerShard)) {
    if (std::getenv("AVOC_CHAOS_SEED") == nullptr && seed % 5 != 0) continue;
    SCOPED_TRACE(StrFormat("seed=%llu", static_cast<unsigned long long>(seed)));
    const ChaosRun first = RunWorkload(seed, /*with_faults=*/true);
    const ChaosRun second = RunWorkload(seed, /*with_faults=*/true);
    ASSERT_TRUE(first.workload_ok);
    EXPECT_EQ(first.world_trace, second.world_trace);
    EXPECT_EQ(first.sink_trace, second.sink_trace);
    EXPECT_EQ(first.reconnects, second.reconnects);
    EXPECT_EQ(first.dedup_replays, second.dedup_replays);
    EXPECT_FALSE(first.world_trace.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Bands, ChaosShard,
                         ::testing::Values(uint64_t{1000}, uint64_t{2000},
                                           uint64_t{3000}, uint64_t{4000}));

// Across the sweep, the fault machinery must actually bite: some seeds
// reconnect, some replay from the dedup cache.  Guards against the plan
// generator silently degenerating into a no-op.
TEST(ChaosSweep, FaultScheduleActuallyExercisesRecoveryPaths) {
  if (std::getenv("AVOC_CHAOS_SEED") != nullptr) GTEST_SKIP();
  size_t runs_with_reconnects = 0;
  size_t runs_with_replays = 0;
  for (uint64_t seed = 1000; seed < 1000 + kSeedsPerShard; ++seed) {
    const ChaosRun run = RunWorkload(seed, /*with_faults=*/true);
    if (run.reconnects > 0) ++runs_with_reconnects;
    if (run.dedup_replays > 0) ++runs_with_replays;
  }
  EXPECT_GT(runs_with_reconnects, 0u);
  EXPECT_GT(runs_with_replays, 0u);
}

}  // namespace
}  // namespace avoc::runtime
