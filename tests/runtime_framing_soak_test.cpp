// Seeded randomized soak for the FrameDecoder.
//
// Valid streams must decode identically no matter how they are
// fragmented (including one byte at a time, and at EVERY split point);
// mutated or truncated streams must decode-or-poison — never hang, never
// crash, never fabricate trailing frames after a poison.  Every failure
// message carries the seed that reproduces it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/framing.h"
#include "util/rng.h"
#include "util/strings.h"

namespace avoc::runtime {
namespace {

constexpr FrameType kRequestTypes[] = {
    FrameType::kSubmitBatch, FrameType::kSubmitBatchSeq, FrameType::kClose,
    FrameType::kQuery,       FrameType::kGroups,         FrameType::kMetrics,
    FrameType::kHealth,      FrameType::kPing,           FrameType::kQuit,
    FrameType::kOk,          FrameType::kError,          FrameType::kValue,
    FrameType::kText,
};

std::vector<Frame> RandomFrames(Rng& rng, size_t count) {
  std::vector<Frame> frames;
  for (size_t i = 0; i < count; ++i) {
    Frame frame;
    frame.type = kRequestTypes[rng.UniformInt(std::size(kRequestTypes))];
    const size_t payload_len = rng.UniformInt(120);
    frame.payload.reserve(payload_len);
    for (size_t b = 0; b < payload_len; ++b) {
      frame.payload.push_back(static_cast<char>(rng.UniformInt(256)));
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

std::string EncodeStream(const std::vector<Frame>& frames) {
  std::string stream;
  for (const Frame& frame : frames) {
    stream += EncodeFrame(frame.type, frame.payload);
  }
  return stream;
}

/// Drains the decoder; guaranteed to terminate (every Next() either
/// consumes bytes, reports need-more, or poisons).
std::vector<Frame> DrainAll(FrameDecoder& decoder, bool* poisoned) {
  std::vector<Frame> frames;
  for (size_t guard = 0; guard < 100000; ++guard) {
    auto frame = decoder.Next();
    if (frame.ok()) {
      frames.push_back(std::move(*frame));
      continue;
    }
    *poisoned = frame.status().code() == ErrorCode::kParseError;
    return frames;
  }
  ADD_FAILURE() << "decoder did not terminate";
  return frames;
}

void ExpectSameFrames(const std::vector<Frame>& got,
                      const std::vector<Frame>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(static_cast<int>(got[i].type), static_cast<int>(want[i].type));
    EXPECT_EQ(got[i].payload, want[i].payload);
  }
}

TEST(FramingSoakTest, EveryByteSplitPointDecodesIdentically) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE(StrFormat("seed=%llu",
                           static_cast<unsigned long long>(seed)));
    Rng rng(seed);
    const std::vector<Frame> frames = RandomFrames(rng, 6);
    const std::string stream = EncodeStream(frames);
    for (size_t split = 0; split <= stream.size(); ++split) {
      FrameDecoder decoder;
      decoder.Feed(std::string_view(stream).substr(0, split));
      bool poisoned = false;
      std::vector<Frame> got = DrainAll(decoder, &poisoned);
      ASSERT_FALSE(poisoned) << "split=" << split;
      decoder.Feed(std::string_view(stream).substr(split));
      bool poisoned2 = false;
      std::vector<Frame> rest = DrainAll(decoder, &poisoned2);
      ASSERT_FALSE(poisoned2) << "split=" << split;
      got.insert(got.end(), std::make_move_iterator(rest.begin()),
                 std::make_move_iterator(rest.end()));
      ExpectSameFrames(got, frames);
    }
  }
}

TEST(FramingSoakTest, OneByteAtATimeDecodesIdentically) {
  for (uint64_t seed = 100; seed < 140; ++seed) {
    SCOPED_TRACE(StrFormat("seed=%llu",
                           static_cast<unsigned long long>(seed)));
    Rng rng(seed);
    const std::vector<Frame> frames = RandomFrames(rng, 10);
    const std::string stream = EncodeStream(frames);
    FrameDecoder decoder;
    std::vector<Frame> got;
    bool poisoned = false;
    for (char byte : stream) {
      decoder.Feed(std::string_view(&byte, 1));
      std::vector<Frame> ready = DrainAll(decoder, &poisoned);
      ASSERT_FALSE(poisoned);
      got.insert(got.end(), std::make_move_iterator(ready.begin()),
                 std::make_move_iterator(ready.end()));
    }
    ExpectSameFrames(got, frames);
  }
}

TEST(FramingSoakTest, RandomChunkingDecodesIdentically) {
  for (uint64_t seed = 200; seed < 280; ++seed) {
    SCOPED_TRACE(StrFormat("seed=%llu",
                           static_cast<unsigned long long>(seed)));
    Rng rng(seed);
    const std::vector<Frame> frames = RandomFrames(rng, 12);
    const std::string stream = EncodeStream(frames);
    FrameDecoder decoder;
    std::vector<Frame> got;
    bool poisoned = false;
    size_t pos = 0;
    while (pos < stream.size()) {
      const size_t chunk =
          1 + rng.UniformInt(std::min<size_t>(stream.size() - pos, 37));
      decoder.Feed(std::string_view(stream).substr(pos, chunk));
      pos += chunk;
      std::vector<Frame> ready = DrainAll(decoder, &poisoned);
      ASSERT_FALSE(poisoned);
      got.insert(got.end(), std::make_move_iterator(ready.begin()),
                 std::make_move_iterator(ready.end()));
    }
    ExpectSameFrames(got, frames);
  }
}

// Mutated garbage: one byte flipped anywhere in a valid stream.  The
// decoder must terminate with either (a) some decoded frames and a
// need-more verdict, or (b) a poison — and once poisoned it must stay
// poisoned even when fed the rest of the stream.
TEST(FramingSoakTest, MutatedStreamsDecodeOrPoisonNeverHang) {
  for (uint64_t seed = 300; seed < 420; ++seed) {
    SCOPED_TRACE(StrFormat("seed=%llu",
                           static_cast<unsigned long long>(seed)));
    Rng rng(seed);
    const std::vector<Frame> frames = RandomFrames(rng, 8);
    std::string stream = EncodeStream(frames);
    const size_t victim = rng.UniformInt(stream.size());
    stream[victim] = static_cast<char>(
        static_cast<uint8_t>(stream[victim]) ^
        static_cast<uint8_t>(1 + rng.UniformInt(255)));

    FrameDecoder decoder;
    const size_t cut = rng.UniformInt(stream.size() + 1);
    decoder.Feed(std::string_view(stream).substr(0, cut));
    bool poisoned = false;
    (void)DrainAll(decoder, &poisoned);
    decoder.Feed(std::string_view(stream).substr(cut));
    bool poisoned_after = false;
    (void)DrainAll(decoder, &poisoned_after);
    if (poisoned) {
      EXPECT_TRUE(decoder.poisoned());
      EXPECT_TRUE(poisoned_after);  // poison is permanent
    }
  }
}

TEST(FramingSoakTest, TruncatedStreamsReportNeedMoreNotGarbage) {
  for (uint64_t seed = 500; seed < 560; ++seed) {
    SCOPED_TRACE(StrFormat("seed=%llu",
                           static_cast<unsigned long long>(seed)));
    Rng rng(seed);
    const std::vector<Frame> frames = RandomFrames(rng, 6);
    const std::string stream = EncodeStream(frames);
    const size_t keep = rng.UniformInt(stream.size());
    FrameDecoder decoder;
    decoder.Feed(std::string_view(stream).substr(0, keep));
    bool poisoned = false;
    const std::vector<Frame> got = DrainAll(decoder, &poisoned);
    ASSERT_FALSE(poisoned);  // a truncated valid stream is never a violation
    ASSERT_LE(got.size(), frames.size());
    for (size_t i = 0; i < got.size(); ++i) {  // decoded prefix is faithful
      EXPECT_EQ(got[i].payload, frames[i].payload);
    }
  }
}

// Pure garbage bytes: the decoder must terminate quickly for arbitrary
// input and, for inputs that start with an invalid length, poison.
TEST(FramingSoakTest, RandomGarbageTerminates) {
  for (uint64_t seed = 600; seed < 700; ++seed) {
    SCOPED_TRACE(StrFormat("seed=%llu",
                           static_cast<unsigned long long>(seed)));
    Rng rng(seed);
    std::string garbage;
    const size_t len = 1 + rng.UniformInt(512);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformInt(256)));
    }
    FrameDecoder decoder;
    decoder.Feed(garbage);
    bool poisoned = false;
    (void)DrainAll(decoder, &poisoned);  // must return, not loop
  }
}

}  // namespace
}  // namespace avoc::runtime
