#include "runtime/datastore.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace avoc::runtime {
namespace {

HistorySnapshot Snapshot(std::vector<double> records, size_t rounds) {
  HistorySnapshot snapshot;
  snapshot.records = std::move(records);
  snapshot.rounds = rounds;
  return snapshot;
}

TEST(HistoryStoreTest, InMemoryPutGet) {
  HistoryStore store;
  ASSERT_TRUE(store.Put("g1", Snapshot({1.0, 0.5}, 10)).ok());
  auto snapshot = store.Get("g1");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->records, (std::vector<double>{1.0, 0.5}));
  EXPECT_EQ(snapshot->rounds, 10u);
}

TEST(HistoryStoreTest, GetMissingGroupFails) {
  HistoryStore store;
  EXPECT_FALSE(store.Get("absent").ok());
  EXPECT_EQ(store.Get("absent").status().code(), ErrorCode::kNotFound);
}

TEST(HistoryStoreTest, PutReplaces) {
  HistoryStore store;
  ASSERT_TRUE(store.Put("g", Snapshot({0.1}, 1)).ok());
  ASSERT_TRUE(store.Put("g", Snapshot({0.9}, 2)).ok());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_DOUBLE_EQ(store.Get("g")->records[0], 0.9);
}

TEST(HistoryStoreTest, EraseRemoves) {
  HistoryStore store;
  ASSERT_TRUE(store.Put("g", Snapshot({1.0}, 1)).ok());
  auto erased = store.Erase("g");
  ASSERT_TRUE(erased.ok());
  EXPECT_TRUE(*erased);
  auto again = store.Erase("g");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  EXPECT_FALSE(store.Get("g").ok());
}

TEST(HistoryStoreTest, GroupsSorted) {
  HistoryStore store;
  ASSERT_TRUE(store.Put("zeta", Snapshot({1.0}, 1)).ok());
  ASSERT_TRUE(store.Put("alpha", Snapshot({1.0}, 1)).ok());
  EXPECT_EQ(store.Groups(), (std::vector<std::string>{"alpha", "zeta"}));
}

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "avoc_store_test";
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "history.json").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(FileStoreTest, PersistsAcrossReopen) {
  {
    auto store = HistoryStore::Open(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Put("shoebox", Snapshot({1.0, 0.25, 0.0}, 42)).ok());
  }
  auto reopened = HistoryStore::Open(path_);
  ASSERT_TRUE(reopened.ok());
  auto snapshot = reopened->Get("shoebox");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->records, (std::vector<double>{1.0, 0.25, 0.0}));
  EXPECT_EQ(snapshot->rounds, 42u);
}

TEST_F(FileStoreTest, OpenMissingFileYieldsEmptyStore) {
  auto store = HistoryStore::Open(path_);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), 0u);
}

TEST_F(FileStoreTest, OpenRejectsCorruptFile) {
  {
    std::ofstream out(path_);
    out << "[1, 2, 3]";
  }
  EXPECT_FALSE(HistoryStore::Open(path_).ok());
  {
    std::ofstream out(path_, std::ios::trunc);
    out << "not json at all";
  }
  EXPECT_FALSE(HistoryStore::Open(path_).ok());
}

TEST_F(FileStoreTest, ERasepersists) {
  {
    auto store = HistoryStore::Open(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Put("a", Snapshot({1.0}, 1)).ok());
    ASSERT_TRUE(store->Put("b", Snapshot({0.5}, 2)).ok());
    auto erased = store->Erase("a");
    ASSERT_TRUE(erased.ok());
    EXPECT_TRUE(*erased);
  }
  auto reopened = HistoryStore::Open(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(reopened->Get("a").ok());
  EXPECT_TRUE(reopened->Get("b").ok());
}

TEST_F(FileStoreTest, ErasePropagatesFlushFailure) {
  auto store = HistoryStore::Open(path_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("a", Snapshot({1.0}, 1)).ok());
  // Durable writes stage through "<path>.tmp"; a directory squatting on
  // that name makes the flush fail.  Erase used to swallow that error
  // and report success while the file still held the group.
  std::filesystem::create_directory(path_ + ".tmp");
  auto erased = store->Erase("a");
  EXPECT_FALSE(erased.ok());
  std::filesystem::remove_all(path_ + ".tmp");
  // The group is gone from the already-opened store either way; what
  // matters is that the caller learned persistence failed.
}

TEST_F(FileStoreTest, FlushSurvivesReopenAfterPut) {
  // Flush goes through storage::WriteFileDurable (write tmp, fsync,
  // rename, fsync parent dir) — verify the visible contract: the data is
  // on disk under the final name immediately after Put returns.
  auto store = HistoryStore::Open(path_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("durable", Snapshot({0.75}, 3)).ok());
  ASSERT_TRUE(std::filesystem::exists(path_));
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
  auto reopened = HistoryStore::Open(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_NEAR(reopened->Get("durable")->records[0], 0.75, 1e-12);
  EXPECT_EQ(reopened->Get("durable")->rounds, 3u);
}

TEST_F(FileStoreTest, MultipleGroups) {
  auto store = HistoryStore::Open(path_);
  ASSERT_TRUE(store.ok());
  for (int g = 0; g < 10; ++g) {
    ASSERT_TRUE(store
                    ->Put("group" + std::to_string(g),
                          Snapshot({g * 0.1}, static_cast<size_t>(g)))
                    .ok());
  }
  auto reopened = HistoryStore::Open(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->size(), 10u);
  EXPECT_NEAR(reopened->Get("group7")->records[0], 0.7, 1e-12);
}

}  // namespace
}  // namespace avoc::runtime
