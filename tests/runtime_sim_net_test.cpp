#include "runtime/sim_net.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/framing.h"
#include "runtime/remote.h"

namespace avoc::runtime {
namespace {

constexpr uint16_t kPort = 7;

std::unique_ptr<Transport> MustConnect(SimWorld& world, uint16_t port) {
  auto transport = world.Connect(port);
  EXPECT_TRUE(transport.ok()) << transport.status().ToString();
  return std::move(*transport);
}

TEST(SimWorldTest, VirtualClockAdvancesOnlyWhenDriven) {
  SimWorld world(1);
  EXPECT_EQ(world.NowMs(), 0u);
  world.RunFor(250);
  EXPECT_EQ(world.NowMs(), 250u);
  world.SleepMs(50);
  EXPECT_EQ(world.NowMs(), 300u);
}

TEST(SimWorldTest, LoopbackRoundTripWithLatency) {
  SimWorld::Options options;
  options.fault_plan.min_delay_ms = 5;
  options.fault_plan.max_delay_ms = 5;
  SimWorld world(7, options);
  auto listener = world.Listen(kPort);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  std::unique_ptr<Transport> client = MustConnect(world, kPort);
  world.RunFor(5);
  auto accepted = (*listener)->TryAcceptTransport();
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();

  const uint64_t sent_at = world.NowMs();
  ASSERT_TRUE(client->SendLine("hello sim").ok());
  auto line = (*accepted)->ReceiveLine();  // blocks in virtual time
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(*line, "hello sim");
  EXPECT_GE(world.NowMs(), sent_at + 5);  // paid the simulated latency

  ASSERT_TRUE((*accepted)->SendLine("right back").ok());
  auto reply = client->ReceiveLine();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "right back");
}

TEST(SimWorldTest, SegmentationReassemblesExactly) {
  SimWorld::Options options;
  options.fault_plan.max_segment_bytes = 3;
  options.fault_plan.min_delay_ms = 1;
  options.fault_plan.max_delay_ms = 9;
  SimWorld world(42, options);
  auto listener = world.Listen(kPort);
  ASSERT_TRUE(listener.ok());
  std::unique_ptr<Transport> client = MustConnect(world, kPort);
  world.RunFor(5);
  auto accepted = (*listener)->TryAcceptTransport();
  ASSERT_TRUE(accepted.ok());

  const std::string payload(100, 'x');
  ASSERT_TRUE(client->SendLine(payload + "end").ok());
  auto line = (*accepted)->ReceiveLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(*line, payload + "end");  // FIFO + no loss despite 35 segments
}

TEST(SimWorldTest, ResetFailsBothSides) {
  SimWorld world(3);
  auto listener = world.Listen(kPort);
  ASSERT_TRUE(listener.ok());
  std::unique_ptr<Transport> client = MustConnect(world, kPort);
  world.RunFor(5);
  auto accepted = (*listener)->TryAcceptTransport();
  ASSERT_TRUE(accepted.ok());

  world.ResetAllConnections();
  EXPECT_FALSE(client->SendLine("after reset").ok());
  auto line = (*accepted)->ReceiveLine();
  EXPECT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), ErrorCode::kIoError);
}

TEST(SimWorldTest, BlackholedDirectionTimesOutTheReader) {
  SimWorld::Options options;
  options.fault_plan.blackhole_c2s.push_back(FaultWindow{0, 1000});
  SimWorld world(4, options);
  auto listener = world.Listen(kPort);
  ASSERT_TRUE(listener.ok());
  std::unique_ptr<Transport> client = MustConnect(world, kPort);
  world.RunFor(5);
  auto accepted = (*listener)->TryAcceptTransport();
  ASSERT_TRUE(accepted.ok());
  ASSERT_TRUE((*accepted)->SetReceiveTimeoutMs(50).ok());

  ASSERT_TRUE(client->SendLine("into the void").ok());  // silently dropped
  const uint64_t before = world.NowMs();
  auto line = (*accepted)->ReceiveLine();
  EXPECT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), ErrorCode::kIoError);
  EXPECT_GE(world.NowMs(), before + 50);  // waited out the virtual timeout
}

TEST(SimWorldTest, ConnectFailsDuringPartitionAndRecoversAfter) {
  SimWorld::Options options;
  options.fault_plan.partitions.push_back(FaultWindow{0, 100});
  SimWorld world(5, options);
  auto listener = world.Listen(kPort);
  ASSERT_TRUE(listener.ok());

  auto during = world.Connect(kPort);
  EXPECT_FALSE(during.ok());
  world.RunFor(150);
  auto after = world.Connect(kPort);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST(SimWorldTest, EofAfterPeerCloseDrainsPendingBytesFirst) {
  SimWorld world(6);
  auto listener = world.Listen(kPort);
  ASSERT_TRUE(listener.ok());
  std::unique_ptr<Transport> client = MustConnect(world, kPort);
  world.RunFor(5);
  auto accepted = (*listener)->TryAcceptTransport();
  ASSERT_TRUE(accepted.ok());

  ASSERT_TRUE(client->SendAll("last words").ok());
  client->Close();
  world.RunFor(10);
  char buffer[64];
  auto got = (*accepted)->ReceiveSome(buffer, sizeof buffer);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(std::string(buffer, *got), "last words");
  auto eof = (*accepted)->ReceiveSome(buffer, sizeof buffer);
  EXPECT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), ErrorCode::kNotFound);  // orderly EOF
}

// Same seed => bit-identical event trace; that is the property every
// chaos test stands on.
TEST(SimWorldTest, IdenticalSeedsReplayIdenticalTraces) {
  auto run = [](uint64_t seed) {
    SimWorld::Options options;
    options.fault_plan = FaultPlan::Chaos(seed, 2000);
    SimWorld world(seed, options);
    auto listener = world.Listen(kPort);
    EXPECT_TRUE(listener.ok());
    auto client = world.Connect(kPort);
    if (client.ok()) {
      world.RunFor(5);
      auto accepted = (*listener)->TryAcceptTransport();
      (void)(*client)->SendLine("payload one");
      if (accepted.ok()) (void)(*accepted)->ReceiveLine();
    }
    world.RunFor(2500);
    return world.TraceText();
  };
  const std::string first = run(99);
  const std::string second = run(99);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  EXPECT_NE(run(100), first);  // and the seed actually matters
}

TEST(FaultPlanTest, ChaosSchedulesHealWithinHorizon) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const FaultPlan plan = FaultPlan::Chaos(seed, 3000);
    EXPECT_LE(plan.HealedAfterMs(), 3000u) << "seed " << seed;
    EXPECT_FALSE(plan.CorruptsStream()) << "seed " << seed;
  }
}

// --- the real server over the simulated network ------------------------------

class SimServerTest : public ::testing::Test {
 protected:
  void StartWorld(uint64_t seed, SimWorld::Options options = {},
                  RemoteServerOptions server_options = {}) {
    world_ = std::make_unique<SimWorld>(seed, options);
    manager_ = std::make_unique<VoterGroupManager>(nullptr, &registry_);
    ASSERT_TRUE(manager_
                    ->AddGroup("lights",
                               *core::MakeEngine(core::AlgorithmId::kAvoc, 3))
                    .ok());
    auto listener = world_->Listen(kPort);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    auto server = RemoteVoterServer::StartOnReactor(
        manager_.get(), server_options, std::move(*listener),
        world_->reactor(), /*spawn_loop_thread=*/false);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  RemoteVoterClient MustClient(bool binary) {
    auto client = RemoteVoterClient::FromTransport(
        MustConnect(*world_, kPort), binary);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  obs::Registry registry_;
  std::unique_ptr<SimWorld> world_;
  std::unique_ptr<VoterGroupManager> manager_;
  std::unique_ptr<RemoteVoterServer> server_;
};

TEST_F(SimServerTest, BinarySubmitBatchReachesSinkSingleThreaded) {
  StartWorld(11);
  RemoteVoterClient client = MustClient(/*binary=*/true);
  std::vector<BatchReading> readings;
  for (uint64_t m = 0; m < 3; ++m) readings.push_back({m, 0, 20.0 + m});
  auto accepted = client.SubmitBatch("lights", readings);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(*accepted, 3u);
  auto sink = manager_->sink("lights");
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ((*sink)->output_count(), 1u);
  auto value = client.Query("lights");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
}

TEST_F(SimServerTest, LegacyLineProtocolWorksOverSim) {
  StartWorld(12);
  RemoteVoterClient client = MustClient(/*binary=*/false);
  for (uint64_t m = 0; m < 3; ++m) {
    ASSERT_TRUE(client.Submit("lights", m, 0, 20.0 + m).ok());
  }
  auto value = client.Query("lights");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_NEAR(*value, 21.0, 1.5);
}

TEST_F(SimServerTest, DuplicateSeqIsAnsweredFromDedupCache) {
  StartWorld(13);
  RemoteVoterClient client = MustClient(/*binary=*/true);
  std::vector<BatchReading> readings;
  for (uint64_t m = 0; m < 3; ++m) readings.push_back({m, 0, 20.0 + m});

  auto first = client.SubmitBatchSeq("client-a", 1, "lights", readings);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, 3u);
  auto sink = manager_->sink("lights");
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ((*sink)->output_count(), 1u);

  // The retry after a "lost reply": same identity, same seq.
  auto replay = client.SubmitBatchSeq("client-a", 1, "lights", readings);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(*replay, 3u);                       // original ack replayed
  EXPECT_EQ((*sink)->output_count(), 1u);       // NOT double-ingested
  EXPECT_EQ(server_->dedup_replays(), 1u);
  EXPECT_EQ(registry_.GetCounter("avoc_remote_dedup_replays_total").Value(),
            1u);

  // A fresh sequence number ingests normally again.
  for (auto& r : readings) r.round = 1;
  auto second = client.SubmitBatchSeq("client-a", 2, "lights", readings);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*sink)->output_count(), 2u);
  EXPECT_EQ(server_->dedup_replays(), 1u);
}

TEST_F(SimServerTest, IdleTimeoutFiresOnVirtualClock) {
  RemoteServerOptions server_options;
  server_options.idle_timeout_ms = 50;
  StartWorld(14, {}, server_options);
  RemoteVoterClient client = MustClient(/*binary=*/true);
  ASSERT_TRUE(client.Ping().ok());

  world_->RunFor(500);  // idle well past the timeout, in virtual time only
  EXPECT_FALSE(client.Ping().ok());  // server dropped us via its timer wheel
}

// The server's partial-write path: a response much larger than the pipe
// capacity must drain through repeated WouldBlock/write-ready cycles.
TEST_F(SimServerTest, LargeResponseDrainsThroughTinyPipe) {
  SimWorld::Options options;
  options.pipe_capacity_bytes = 256;
  StartWorld(15, options);
  RemoteVoterClient client = MustClient(/*binary=*/true);
  std::vector<BatchReading> readings;
  for (uint64_t m = 0; m < 3; ++m) readings.push_back({m, 0, 20.0 + m});
  ASSERT_TRUE(client.SubmitBatch("lights", readings).ok());

  auto metrics = client.Metrics();  // Prometheus text >> 256 bytes
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GT(metrics->size(), options.pipe_capacity_bytes);
  EXPECT_NE(metrics->find("avoc_remote_frames_in_total"), std::string::npos);
}

}  // namespace
}  // namespace avoc::runtime
