// Randomised round-trip properties.
//
// Seeded generators build random JSON documents and CSV tables; writing
// and re-parsing must reproduce them exactly.  This catches escaping,
// quoting and number-formatting bugs that hand-picked cases miss, while
// staying deterministic (fixed seeds, so failures reproduce).
#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/dataset.h"
#include "json/parse.h"
#include "json/write.h"
#include "util/rng.h"

namespace avoc {
namespace {

// --- random JSON ------------------------------------------------------------

json::Value RandomJson(Rng& rng, int depth) {
  const uint64_t kind = rng.UniformInt(depth <= 0 ? 4 : 6);
  switch (kind) {
    case 0:
      return json::Value(nullptr);
    case 1:
      return json::Value(rng.Bernoulli(0.5));
    case 2: {
      // Mix integers, fractions and extreme magnitudes.
      switch (rng.UniformInt(4)) {
        case 0: return json::Value(static_cast<double>(
            static_cast<int64_t>(rng.UniformInt(2000000)) - 1000000));
        case 1: return json::Value(rng.Uniform(-1e6, 1e6));
        case 2: return json::Value(rng.Uniform(-1e-6, 1e-6));
        default: return json::Value(rng.Gaussian(0.0, 1e12));
      }
    }
    case 3: {
      std::string s;
      const size_t length = rng.UniformInt(20);
      for (size_t i = 0; i < length; ++i) {
        // Printable ASCII plus the characters that need escaping.
        static const char kAlphabet[] =
            "abcXYZ 0189_-\"\\\n\t/{}[]:,€é";
        s += kAlphabet[rng.UniformInt(sizeof(kAlphabet) - 1)];
      }
      return json::Value(std::move(s));
    }
    case 4: {
      json::Array array;
      const size_t n = rng.UniformInt(5);
      for (size_t i = 0; i < n; ++i) {
        array.push_back(RandomJson(rng, depth - 1));
      }
      return json::Value(std::move(array));
    }
    default: {
      json::Object object;
      const size_t n = rng.UniformInt(5);
      for (size_t i = 0; i < n; ++i) {
        object.Set("k" + std::to_string(i) +
                       std::string(rng.UniformInt(2), '"'),
                   RandomJson(rng, depth - 1));
      }
      return json::Value(std::move(object));
    }
  }
}

class JsonFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonFuzzTest, WriteParseRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const json::Value original = RandomJson(rng, 4);
    const std::string compact = json::Write(original);
    auto reparsed = json::Parse(compact);
    ASSERT_TRUE(reparsed.ok())
        << reparsed.status().ToString() << "\n" << compact;
    EXPECT_EQ(original, *reparsed) << compact;
    const std::string pretty = json::WritePretty(original);
    auto repretty = json::Parse(pretty);
    ASSERT_TRUE(repretty.ok()) << pretty;
    EXPECT_EQ(original, *repretty);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- random CSV -------------------------------------------------------------

data::CsvTable RandomCsv(Rng& rng) {
  data::CsvTable table;
  const size_t columns = 1 + rng.UniformInt(6);
  for (size_t c = 0; c < columns; ++c) {
    table.header.push_back("col" + std::to_string(c));
  }
  const size_t rows = rng.UniformInt(20);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < columns; ++c) {
      std::string cell;
      const size_t length = rng.UniformInt(12);
      for (size_t i = 0; i < length; ++i) {
        static const char kAlphabet[] = "ab1 ,\"\n\r;x.-";
        cell += kAlphabet[rng.UniformInt(sizeof(kAlphabet) - 1)];
      }
      row.push_back(std::move(cell));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, WriteParseRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const data::CsvTable original = RandomCsv(rng);
    const std::string text = data::WriteCsv(original);
    auto reparsed = data::ParseCsv(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                               << text;
    EXPECT_EQ(original.header, reparsed->header);
    EXPECT_EQ(original.rows, reparsed->rows) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// --- random round tables through dataset CSV --------------------------------

class DatasetFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DatasetFuzzTest, RoundTableCsvRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const size_t modules = 1 + rng.UniformInt(8);
    data::RoundTable table = data::RoundTable::WithModuleCount(modules);
    const size_t rounds = rng.UniformInt(30);
    for (size_t r = 0; r < rounds; ++r) {
      std::vector<data::Reading> row;
      for (size_t m = 0; m < modules; ++m) {
        if (rng.Bernoulli(0.2)) {
          row.push_back(std::nullopt);
        } else {
          row.emplace_back(rng.Gaussian(0.0, 1e4));
        }
      }
      ASSERT_TRUE(table.AppendRound(std::move(row)).ok());
    }
    auto restored = data::RoundTableFromCsv(data::RoundTableToCsv(table));
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(restored->round_count(), table.round_count());
    for (size_t r = 0; r < rounds; ++r) {
      for (size_t m = 0; m < modules; ++m) {
        ASSERT_EQ(restored->At(r, m).has_value(),
                  table.At(r, m).has_value());
        if (table.At(r, m).has_value()) {
          EXPECT_DOUBLE_EQ(*restored->At(r, m), *table.At(r, m));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetFuzzTest,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace avoc
