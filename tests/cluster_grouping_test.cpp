#include "cluster/grouping.h"

#include <gtest/gtest.h>

#include <numeric>

namespace avoc::cluster {
namespace {

GroupingOptions Absolute(double threshold) {
  GroupingOptions options;
  options.threshold = threshold;
  options.mode = ThresholdMode::kAbsolute;
  return options;
}

GroupingOptions Relative(double threshold) {
  GroupingOptions options;
  options.threshold = threshold;
  options.mode = ThresholdMode::kRelative;
  return options;
}

TEST(GroupingTest, EmptyInputYieldsNoGroups) {
  const std::vector<double> empty;
  EXPECT_TRUE(GroupByThreshold(empty, Absolute(1.0)).groups.empty());
}

TEST(GroupingTest, SingleValueIsOneGroup) {
  const std::vector<double> values = {5.0};
  const auto result = GroupByThreshold(values, Absolute(1.0));
  ASSERT_EQ(result.groups.size(), 1u);
  EXPECT_EQ(result.largest().size(), 1u);
  EXPECT_DOUBLE_EQ(result.largest().mean, 5.0);
}

TEST(GroupingTest, SplitsOnLargeGaps) {
  const std::vector<double> values = {1.0, 1.2, 1.4, 10.0, 10.1};
  const auto result = GroupByThreshold(values, Absolute(0.5));
  ASSERT_EQ(result.groups.size(), 2u);
  EXPECT_EQ(result.largest().size(), 3u);
  EXPECT_NEAR(result.largest().mean, 1.2, 1e-12);
}

TEST(GroupingTest, SingleLinkageChains) {
  // Consecutive gaps of 0.4 chain into one group even though the ends are
  // 1.6 apart.
  const std::vector<double> values = {0.0, 0.4, 0.8, 1.2, 1.6};
  const auto result = GroupByThreshold(values, Absolute(0.5));
  EXPECT_EQ(result.groups.size(), 1u);
}

TEST(GroupingTest, MembersIndexOriginalPositions) {
  const std::vector<double> values = {10.0, 1.0, 10.2, 1.1};
  const auto result = GroupByThreshold(values, Absolute(0.5));
  ASSERT_EQ(result.groups.size(), 2u);
  // Largest-tie broken by ascending mean: {1.0, 1.1} group first.
  std::vector<size_t> low = result.groups[0].members;
  std::sort(low.begin(), low.end());
  EXPECT_EQ(low, (std::vector<size_t>{1, 3}));
}

TEST(GroupingTest, GroupsSortedBySizeThenMean) {
  const std::vector<double> values = {1.0, 1.1, 1.2, 5.0, 9.0, 9.1, 9.2};
  const auto result = GroupByThreshold(values, Absolute(0.5));
  ASSERT_EQ(result.groups.size(), 3u);
  EXPECT_EQ(result.groups[0].size(), 3u);
  EXPECT_LT(result.groups[0].mean, result.groups[1].mean);
  EXPECT_EQ(result.groups[2].size(), 1u);
}

TEST(GroupingTest, RelativeThresholdScalesWithMagnitude) {
  // 5% of ~18500 is ~925: a 800 gap chains, an 1800 gap splits.
  const std::vector<double> close = {18000.0, 18800.0};
  EXPECT_EQ(GroupByThreshold(close, Relative(0.05)).groups.size(), 1u);
  const std::vector<double> far = {18000.0, 19800.0};
  EXPECT_EQ(GroupByThreshold(far, Relative(0.05)).groups.size(), 2u);
}

TEST(GroupingTest, RelativeFloorProtectsNearZero) {
  GroupingOptions options = Relative(0.05);
  options.relative_floor = 1.0;
  const std::vector<double> values = {0.0, 0.04, -0.03};
  EXPECT_EQ(GroupByThreshold(values, options).groups.size(), 1u);
}

TEST(GroupingTest, ThresholdMonotonicity) {
  // Growing the threshold can only merge groups, never split them.
  const std::vector<double> values = {0.0, 0.3, 1.0, 2.0, 2.2, 7.0};
  size_t previous = 100;
  for (const double t : {0.1, 0.35, 1.05, 5.0}) {
    const size_t count = GroupByThreshold(values, Absolute(t)).groups.size();
    EXPECT_LE(count, previous);
    previous = count;
  }
  EXPECT_EQ(previous, 1u);
}

TEST(GroupingTest, DeterministicAcrossPermutations) {
  std::vector<double> values = {3.0, 1.0, 2.0, 10.0, 11.0};
  const auto baseline = GroupByThreshold(values, Absolute(1.5));
  std::vector<double> shuffled = {11.0, 2.0, 10.0, 1.0, 3.0};
  const auto permuted = GroupByThreshold(shuffled, Absolute(1.5));
  ASSERT_EQ(baseline.groups.size(), permuted.groups.size());
  for (size_t g = 0; g < baseline.groups.size(); ++g) {
    EXPECT_DOUBLE_EQ(baseline.groups[g].mean, permuted.groups[g].mean);
    EXPECT_EQ(baseline.groups[g].size(), permuted.groups[g].size());
  }
}

TEST(GroupingTest, PartitionCoversAllIndicesOnce) {
  const std::vector<double> values = {5.0, 1.0, 9.0, 5.1, 1.2, 8.9, 4.9};
  const auto result = GroupByThreshold(values, Absolute(0.5));
  std::vector<size_t> seen;
  for (const Group& group : result.groups) {
    seen.insert(seen.end(), group.members.begin(), group.members.end());
  }
  std::sort(seen.begin(), seen.end());
  std::vector<size_t> expected(values.size());
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(seen, expected);
}

TEST(SelectWinningGroupTest, LargestWinsOutright) {
  const std::vector<double> values = {1.0, 1.1, 9.0};
  const auto grouping = GroupByThreshold(values, Absolute(0.5));
  auto winner = SelectWinningGroup(grouping, values);
  ASSERT_TRUE(winner.ok());
  EXPECT_EQ(winner->size(), 2u);
}

TEST(SelectWinningGroupTest, TieBrokenByPreviousOutput) {
  const std::vector<double> values = {1.0, 1.1, 9.0, 9.1};
  const auto grouping = GroupByThreshold(values, Absolute(0.5));
  const double near_high = 8.0;
  auto winner = SelectWinningGroup(grouping, values, &near_high);
  ASSERT_TRUE(winner.ok());
  EXPECT_NEAR(winner->mean, 9.05, 1e-12);
  const double near_low = 2.0;
  winner = SelectWinningGroup(grouping, values, &near_low);
  ASSERT_TRUE(winner.ok());
  EXPECT_NEAR(winner->mean, 1.05, 1e-12);
}

TEST(SelectWinningGroupTest, TieWithoutPreviousUsesMedianProximity) {
  const std::vector<double> values = {1.0, 9.0, 9.1, 1.1, 4.0};
  const auto grouping = GroupByThreshold(values, Absolute(0.5));
  // Median of values is 4.0; the low group (mean 1.05) is 2.95 away, the
  // high group (9.05) is 5.05 away -> low group wins.
  auto winner = SelectWinningGroup(grouping, values);
  ASSERT_TRUE(winner.ok());
  EXPECT_NEAR(winner->mean, 1.05, 1e-12);
}

TEST(SelectWinningGroupTest, ErrorsOnEmptyGrouping) {
  GroupingResult empty;
  const std::vector<double> values;
  EXPECT_FALSE(SelectWinningGroup(empty, values).ok());
}

}  // namespace
}  // namespace avoc::cluster
