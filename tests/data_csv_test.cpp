#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace avoc::data {
namespace {

TEST(CsvParseTest, BasicTableWithHeader) {
  auto table = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][2], "6");
}

TEST(CsvParseTest, NoHeaderMode) {
  CsvOptions options;
  options.has_header = false;
  auto table = ParseCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->header.empty());
  EXPECT_EQ(table->rows.size(), 2u);
}

TEST(CsvParseTest, MissingFinalNewlineOk) {
  auto table = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 1u);
}

TEST(CsvParseTest, EmptyCellsPreserved) {
  auto table = ParseCsv("a,b,c\n1,,3\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][1], "");
}

TEST(CsvParseTest, QuotedFields) {
  auto table = ParseCsv("a,b\n\"x,y\",\"line1\nline2\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "x,y");
  EXPECT_EQ(table->rows[0][1], "line1\nline2");
}

TEST(CsvParseTest, EscapedQuotes) {
  auto table = ParseCsv("a\n\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "he said \"hi\"");
}

TEST(CsvParseTest, CrlfLineEndings) {
  auto table = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvParseTest, ArityMismatchRejectedWhenStrict) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
  CsvOptions loose;
  loose.strict_row_arity = false;
  EXPECT_TRUE(ParseCsv("a,b\n1,2,3\n", loose).ok());
}

TEST(CsvParseTest, UnterminatedQuoteRejected) {
  EXPECT_FALSE(ParseCsv("a\n\"unclosed\n").ok());
}

TEST(CsvParseTest, QuoteInsideUnquotedFieldRejected) {
  EXPECT_FALSE(ParseCsv("a\nval\"ue\n").ok());
}

TEST(CsvParseTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto table = ParseCsv("a;b\n1;2\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "1");
}

TEST(CsvWriteTest, RoundTripsSimpleTable) {
  CsvTable table;
  table.header = {"x", "y"};
  table.rows = {{"1", "2"}, {"", "4"}};
  const std::string text = WriteCsv(table);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, table.header);
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(CsvWriteTest, QuotesSpecialFields) {
  CsvTable table;
  table.header = {"v"};
  table.rows = {{"a,b"}, {"c\"d"}, {"e\nf"}};
  const std::string text = WriteCsv(table);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(CsvFileTest, WriteAndReadBack) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "avoc_csv_test.csv").string();
  CsvTable table;
  table.header = {"round", "E1"};
  table.rows = {{"0", "18500.5"}, {"1", ""}};
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, table.rows);
  std::filesystem::remove(path);
}

TEST(CsvFileTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/path/file.csv").ok());
}

TEST(CsvTableTest, ColumnCount) {
  CsvTable with_header;
  with_header.header = {"a", "b"};
  EXPECT_EQ(with_header.column_count(), 2u);
  CsvTable headerless;
  headerless.rows = {{"1", "2", "3"}};
  EXPECT_EQ(headerless.column_count(), 3u);
  EXPECT_EQ(CsvTable{}.column_count(), 0u);
}

}  // namespace
}  // namespace avoc::data
