#include "vdx/factory.h"

#include <gtest/gtest.h>

#include "core/batch.h"

namespace avoc::vdx {
namespace {

Spec Listing1() {
  auto spec = Spec::Parse(R"({
    "algorithm_name": "AVOC",
    "quorum": "UNTIL",
    "quorum_percentage": 100,
    "exclusion": "NONE",
    "exclusion_threshold": 0,
    "history": "HYBRID",
    "params": {"error": 0.05, "soft_threshold": 2},
    "collation": "MEAN_NEAREST_NEIGHBOR",
    "bootstrapping": true
  })");
  EXPECT_TRUE(spec.ok());
  return *spec;
}

TEST(VdxFactoryTest, Listing1LowersToAvocConfig) {
  auto config = ToEngineConfig(Listing1());
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->history.rule, core::HistoryRule::kRewardPenalty);
  EXPECT_TRUE(config->module_elimination);
  EXPECT_EQ(config->agreement.mode, core::AgreementMode::kSoftDynamic);
  EXPECT_DOUBLE_EQ(config->agreement.error, 0.05);
  EXPECT_DOUBLE_EQ(config->agreement.soft_multiple, 2.0);
  EXPECT_EQ(config->collation, core::Collation::kMeanNearestNeighbor);
  EXPECT_EQ(config->clustering, core::ClusteringMode::kBootstrap);
  EXPECT_DOUBLE_EQ(config->quorum.fraction, 1.0);
}

TEST(VdxFactoryTest, HistoryKindsMapToRules) {
  Spec spec = Listing1();
  spec.bootstrapping = false;

  spec.history = HistoryKind::kNone;
  spec.collation = CollationKind::kWeightedAverage;
  auto config = ToEngineConfig(spec);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->history.rule, core::HistoryRule::kNone);
  EXPECT_EQ(config->weighting, core::RoundWeighting::kUniform);

  spec.history = HistoryKind::kStandard;
  config = ToEngineConfig(spec);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->history.rule, core::HistoryRule::kCumulativeRatio);
  EXPECT_EQ(config->agreement.mode, core::AgreementMode::kBinary);
  EXPECT_FALSE(config->module_elimination);

  spec.history = HistoryKind::kModuleElimination;
  config = ToEngineConfig(spec);
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->module_elimination);

  spec.history = HistoryKind::kSoftDynamicThreshold;
  config = ToEngineConfig(spec);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->agreement.mode, core::AgreementMode::kSoftDynamic);
  EXPECT_FALSE(config->module_elimination);
}

TEST(VdxFactoryTest, QuorumModesLower) {
  Spec spec = Listing1();
  spec.quorum = QuorumMode::kAny;
  auto config = ToEngineConfig(spec);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->quorum.min_count, 1u);
  EXPECT_LT(config->quorum.fraction, 0.01);

  spec.quorum = QuorumMode::kCount;
  spec.quorum_amount = 3;
  config = ToEngineConfig(spec);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->quorum.min_count, 3u);

  spec.quorum = QuorumMode::kPercent;
  spec.quorum_amount = 60;
  config = ToEngineConfig(spec);
  ASSERT_TRUE(config.ok());
  EXPECT_DOUBLE_EQ(config->quorum.fraction, 0.6);
}

TEST(VdxFactoryTest, StringParamsControlScaleAndWeighting) {
  Spec spec = Listing1();
  spec.string_params["threshold_scale"] = "ABSOLUTE";
  spec.string_params["weighting"] = "AGREEMENT";
  auto config = ToEngineConfig(spec);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->agreement.scale, core::ThresholdScale::kAbsolute);
  EXPECT_EQ(config->weighting, core::RoundWeighting::kAgreement);

  spec.string_params["threshold_scale"] = "SIDEWAYS";
  EXPECT_FALSE(ToEngineConfig(spec).ok());
}

TEST(VdxFactoryTest, FaultPolicyLowers) {
  Spec spec = Listing1();
  spec.fault_policy.on_no_quorum = FaultAction::kRaise;
  spec.fault_policy.on_no_majority = FaultAction::kEmitNothing;
  auto config = ToEngineConfig(spec);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->on_no_quorum, core::NoQuorumPolicy::kRaise);
  EXPECT_EQ(config->on_no_majority, core::NoMajorityPolicy::kEmitNothing);
}

TEST(VdxFactoryTest, CategoricalSpecRejectedByNumericFactory) {
  Spec spec;
  spec.algorithm_name = "labels";
  spec.value_type = ValueKind::kCategorical;
  spec.collation = CollationKind::kMajority;
  EXPECT_FALSE(ToEngineConfig(spec).ok());
}

TEST(VdxFactoryTest, NumericSpecRejectedByCategoricalFactory) {
  EXPECT_FALSE(ToCategoricalConfig(Listing1()).ok());
}

TEST(VdxFactoryTest, MakeVoterVotes) {
  auto voter = MakeVoter(Listing1(), 5);
  ASSERT_TRUE(voter.ok());
  auto result =
      voter->CastVote(std::vector<double>{10.0, 10.1, 9.9, 10.05, 60.0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_clustering);
  EXPECT_NEAR(*result->value, 10.0, 0.2);
}

TEST(VdxFactoryTest, CategoricalVoterFromSpec) {
  Spec spec;
  spec.algorithm_name = "door-state";
  spec.value_type = ValueKind::kCategorical;
  spec.history = HistoryKind::kStandard;
  spec.collation = CollationKind::kMajority;
  spec.quorum = QuorumMode::kPercent;
  spec.quorum_amount = 50;
  auto voter = MakeCategoricalVoter(spec, 3);
  ASSERT_TRUE(voter.ok()) << voter.status().ToString();
  std::vector<core::CategoricalEngine::Label> round = {
      std::string("open"), std::string("open"), std::string("closed")};
  auto result = voter->CastVote(round);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->value, "open");
}

TEST(VdxFactoryTest, CategoricalHybridNeedsDistance) {
  Spec spec;
  spec.algorithm_name = "fuzzy";
  spec.value_type = ValueKind::kCategorical;
  spec.history = HistoryKind::kHybrid;
  spec.collation = CollationKind::kMajority;
  spec.params["error"] = 0.25;
  EXPECT_FALSE(MakeCategoricalVoter(spec, 3).ok());
  auto voter = MakeCategoricalVoter(spec, 3, core::LevenshteinDistance);
  EXPECT_TRUE(voter.ok()) << voter.status().ToString();
}

TEST(VdxExportTest, PresetsExportValidSpecs) {
  for (const core::AlgorithmId id : core::AllAlgorithms()) {
    const Spec spec = ExportSpec(id);
    EXPECT_TRUE(spec.Validate().ok()) << core::AlgorithmName(id);
    auto config = ToEngineConfig(spec);
    ASSERT_TRUE(config.ok()) << core::AlgorithmName(id);
  }
}

TEST(VdxExportTest, ExportedSpecMatchesPresetBehaviour) {
  // Round-trip: preset -> VDX -> engine must behave identically to the
  // preset engine on the same data.
  data::RoundTable table = data::RoundTable::WithModuleCount(5);
  for (int r = 0; r < 50; ++r) {
    ASSERT_TRUE(table
                    .AppendRound(std::vector<double>{
                        100.0, 101.0, 99.0, 100.5 + r * 0.01, 140.0})
                    .ok());
  }
  for (const core::AlgorithmId id : core::AllAlgorithms()) {
    auto direct = core::RunAlgorithm(id, table);
    ASSERT_TRUE(direct.ok());
    auto voter = MakeVoter(ExportSpec(id), 5);
    ASSERT_TRUE(voter.ok()) << core::AlgorithmName(id);
    auto via_vdx = core::RunOverTable(*voter, table);
    ASSERT_TRUE(via_vdx.ok());
    for (size_t r = 0; r < table.round_count(); ++r) {
      const auto direct_output = direct->output(r);
      const auto vdx_output = via_vdx->output(r);
      ASSERT_EQ(direct_output.has_value(), vdx_output.has_value());
      if (direct_output.has_value()) {
        EXPECT_DOUBLE_EQ(*direct_output, *vdx_output)
            << core::AlgorithmName(id) << " round " << r;
      }
    }
  }
}

TEST(VdxFactoryTest, CompileStagePipelineLowersSpecToStageChain) {
  const Spec spec = ExportSpec(core::AlgorithmId::kAvoc);
  auto pipeline = CompileStagePipeline(spec, 5);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ((*pipeline)->size(), 9u);
  const auto names = (*pipeline)->StageNames();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "quorum");
  EXPECT_EQ(names.back(), "history");
  // Invalid inputs are rejected before compilation.
  EXPECT_FALSE(CompileStagePipeline(spec, 0).ok());
  Spec categorical = spec;
  categorical.value_type = ValueKind::kCategorical;
  EXPECT_FALSE(CompileStagePipeline(categorical, 5).ok());
}

TEST(VdxExportTest, AvocExportMatchesListing1Semantics) {
  const Spec spec = ExportSpec(core::AlgorithmId::kAvoc);
  EXPECT_EQ(spec.algorithm_name, "AVOC");
  EXPECT_EQ(spec.history, HistoryKind::kHybrid);
  EXPECT_EQ(spec.collation, CollationKind::kMeanNearestNeighbor);
  EXPECT_TRUE(spec.bootstrapping);
}

}  // namespace
}  // namespace avoc::vdx
