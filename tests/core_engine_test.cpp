#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"

namespace avoc::core {
namespace {

EngineConfig AverageConfig() {
  return MakeConfig(AlgorithmId::kAverage);
}

EngineConfig AvocConfig() { return MakeConfig(AlgorithmId::kAvoc); }

VotingEngine MustCreate(size_t modules, const EngineConfig& config) {
  auto engine = VotingEngine::Create(modules, config);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

TEST(EngineConfigTest, ValidateCatchesBadParameters) {
  EngineConfig config = AverageConfig();
  config.agreement.error = 0.0;
  EXPECT_FALSE(config.Validate().ok());

  config = AverageConfig();
  config.quorum.fraction = 1.5;
  EXPECT_FALSE(config.Validate().ok());

  config = AverageConfig();
  config.quorum.min_count = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = MakeConfig(AlgorithmId::kHybrid);
  config.history.penalty = 2.0;
  EXPECT_FALSE(config.Validate().ok());

  config = MakeConfig(AlgorithmId::kSoftDynamicThreshold);
  config.agreement.soft_multiple = 0.5;
  EXPECT_FALSE(config.Validate().ok());

  config = AverageConfig();
  config.exclusion.mode = ExclusionMode::kStdDev;
  config.exclusion.threshold = 0.0;
  EXPECT_FALSE(config.Validate().ok());

  // History-based weighting without a history rule is contradictory.
  config = AverageConfig();
  config.weighting = RoundWeighting::kHistory;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(EngineTest, CreateRejectsZeroModules) {
  EXPECT_FALSE(VotingEngine::Create(0, AverageConfig()).ok());
}

TEST(EngineTest, CastVoteRejectsArityMismatch) {
  VotingEngine engine = MustCreate(3, AverageConfig());
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_FALSE(engine.CastVote(two).ok());
}

TEST(EngineTest, PlainAverageOfCleanRound) {
  VotingEngine engine = MustCreate(3, AverageConfig());
  const std::vector<double> values = {10.0, 20.0, 30.0};
  auto result = engine.CastVote(values);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kVoted);
  ASSERT_TRUE(result->value.has_value());
  EXPECT_DOUBLE_EQ(*result->value, 20.0);
  EXPECT_EQ(result->present_count, 3u);
  EXPECT_FALSE(result->used_clustering);
}

TEST(EngineTest, MissingValuesReduceCandidates) {
  VotingEngine engine = MustCreate(4, AverageConfig());
  Round round = {10.0, std::nullopt, 30.0, std::nullopt};
  auto result = engine.CastVote(round);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->present_count, 2u);
  EXPECT_DOUBLE_EQ(*result->value, 20.0);
  EXPECT_DOUBLE_EQ(result->weights[1], 0.0);
  EXPECT_DOUBLE_EQ(result->weights[3], 0.0);
}

TEST(EngineTest, QuorumFailureRevertsToLastOutput) {
  EngineConfig config = AverageConfig();
  config.quorum.fraction = 0.75;  // 3 of 4 required
  config.on_no_quorum = NoQuorumPolicy::kRevertLast;
  VotingEngine engine = MustCreate(4, config);

  const std::vector<double> good = {1.0, 1.0, 1.0, 1.0};
  ASSERT_TRUE(engine.CastVote(good).ok());

  Round starved = {5.0, std::nullopt, std::nullopt, std::nullopt};
  auto result = engine.CastVote(starved);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kRevertedLast);
  EXPECT_DOUBLE_EQ(*result->value, 1.0);
}

TEST(EngineTest, QuorumFailureWithoutHistoryEmitsNothing) {
  EngineConfig config = AverageConfig();
  config.quorum.fraction = 1.0;
  config.on_no_quorum = NoQuorumPolicy::kRevertLast;
  VotingEngine engine = MustCreate(2, config);
  Round starved = {5.0, std::nullopt};
  auto result = engine.CastVote(starved);
  ASSERT_TRUE(result.ok());
  // Nothing to revert to yet: degrade to no-output.
  EXPECT_EQ(result->outcome, RoundOutcome::kNoOutput);
  EXPECT_FALSE(result->value.has_value());
}

TEST(EngineTest, QuorumRaisePolicySurfacesError) {
  EngineConfig config = AverageConfig();
  config.quorum.fraction = 1.0;
  config.on_no_quorum = NoQuorumPolicy::kRaise;
  VotingEngine engine = MustCreate(2, config);
  Round starved = {5.0, std::nullopt};
  auto result = engine.CastVote(starved);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kError);
  EXPECT_EQ(result->status.code(), ErrorCode::kNoQuorum);
}

TEST(EngineTest, QuorumEmitNothingPolicy) {
  EngineConfig config = AverageConfig();
  config.quorum.fraction = 1.0;
  config.on_no_quorum = NoQuorumPolicy::kEmitNothing;
  VotingEngine engine = MustCreate(2, config);
  ASSERT_TRUE(engine.CastVote(std::vector<double>{1.0, 1.0}).ok());
  Round starved = {5.0, std::nullopt};
  auto result = engine.CastVote(starved);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kNoOutput);
  EXPECT_FALSE(result->value.has_value());
}

TEST(EngineTest, ValueExclusionPrunesBeforeVoting) {
  EngineConfig config = AverageConfig();
  config.exclusion.mode = ExclusionMode::kStdDev;
  config.exclusion.threshold = 1.5;
  VotingEngine engine = MustCreate(5, config);
  const std::vector<double> values = {10.0, 10.2, 9.8, 10.1, 100.0};
  auto result = engine.CastVote(values);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->excluded[4]);
  EXPECT_DOUBLE_EQ(result->weights[4], 0.0);
  EXPECT_NEAR(*result->value, 10.025, 1e-9);
}

PresetParams AbsoluteHalf() {
  // Absolute agreement margin of 0.5: keeps the skewed round-one mean
  // within reach of the healthy modules so only the outlier is penalised.
  PresetParams params;
  params.error = 0.5;
  params.scale = ThresholdScale::kAbsolute;
  return params;
}

TEST(EngineTest, ModuleEliminationZeroWeightsBadHistory) {
  EngineConfig config =
      MakeConfig(AlgorithmId::kModuleElimination, AbsoluteHalf());
  VotingEngine engine = MustCreate(3, config);
  // Round 1: mean 10.4; module 2 (11.0) is 0.6 away -> record drops.
  ASSERT_TRUE(engine.CastVote(std::vector<double>{10.0, 10.2, 11.0}).ok());
  // Round 2: module 2 must be eliminated (record below mean).
  auto result = engine.CastVote(std::vector<double>{10.0, 10.2, 11.0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->eliminated[2]);
  EXPECT_DOUBLE_EQ(result->weights[2], 0.0);
  EXPECT_NEAR(*result->value, 10.1, 1e-9);
}

TEST(EngineTest, EliminatedModuleHistoryStillUpdates) {
  EngineConfig config =
      MakeConfig(AlgorithmId::kModuleElimination, AbsoluteHalf());
  VotingEngine engine = MustCreate(3, config);
  ASSERT_TRUE(engine.CastVote(std::vector<double>{10.0, 10.2, 11.0}).ok());
  const double damaged = engine.history().record(2);
  // The faulty module recovers by submitting good values, even while
  // eliminated ("even if discarded in the voting itself").
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(engine.CastVote(std::vector<double>{10.0, 10.1, 10.05}).ok());
  }
  EXPECT_GT(engine.history().record(2), damaged);
  auto result = engine.CastVote(std::vector<double>{10.0, 10.1, 10.05});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->weights[2], 0.0);  // re-admitted
}

TEST(EngineTest, AvocBootstrapClustersFirstRound) {
  VotingEngine engine = MustCreate(5, AvocConfig());
  const std::vector<double> values = {100.0, 101.0, 99.0, 100.5, 500.0};
  auto result = engine.CastVote(values);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_clustering);
  // The outlier is excluded from the winning cluster -> zero weight.
  EXPECT_DOUBLE_EQ(result->weights[4], 0.0);
  EXPECT_GE(*result->value, 99.0);
  EXPECT_LE(*result->value, 101.0);
}

TEST(EngineTest, AvocBootstrapStopsOnceHistoryDiverges) {
  VotingEngine engine = MustCreate(5, AvocConfig());
  const std::vector<double> values = {100.0, 101.0, 99.0, 100.5, 500.0};
  ASSERT_TRUE(engine.CastVote(values).ok());
  // After round 1 the outlier's record < 1 -> records are no longer all
  // equal -> no more clustering ("the clustering is only used once").
  auto result = engine.CastVote(values);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->used_clustering);
  // Elimination takes over from history.
  EXPECT_TRUE(result->eliminated[4]);
}

TEST(EngineTest, AvocFallbackWhenAllRecordsCollapse) {
  EngineConfig config = AvocConfig();
  config.history.penalty = 1.0;  // one bad round zeroes a record
  // Averaging collation: the output need not coincide with any candidate,
  // so mutually disagreeing rounds can zero *every* record.
  config.collation = Collation::kWeightedAverage;
  VotingEngine engine = MustCreate(3, config);
  // Round 1 clusters (all-1 records); the outlier's record drops to 0.
  ASSERT_TRUE(engine.CastVote(std::vector<double>{10.0, 10.1, 50.0}).ok());
  // A three-way split: the average agrees with nobody, all records hit 0.
  ASSERT_TRUE(engine.CastVote(std::vector<double>{1.0, 40.0, 90.0}).ok());
  ASSERT_TRUE(engine.history().AllRecordsAre(0.0));
  // All-0 records trigger the clustering fallback ("indicating a failure
  // of the system or an extreme data spike").
  auto result = engine.CastVote(std::vector<double>{20.0, 20.1, 90.0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_clustering);
  ASSERT_TRUE(result->value.has_value());
  EXPECT_NEAR(*result->value, 20.05, 0.1);
}

TEST(EngineTest, ClusteringAlwaysModeClustersEveryRound) {
  EngineConfig config = MakeConfig(AlgorithmId::kClusteringOnly);
  VotingEngine engine = MustCreate(3, config);
  for (int i = 0; i < 5; ++i) {
    auto result = engine.CastVote(std::vector<double>{10.0, 10.2, 80.0});
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->used_clustering);
    EXPECT_NEAR(*result->value, 10.1, 1e-9);
  }
}

TEST(EngineTest, NoMajorityDetectedOnSplitVote) {
  EngineConfig config = AverageConfig();
  config.on_no_majority = NoMajorityPolicy::kAccept;
  VotingEngine engine = MustCreate(4, config);
  // Two camps of two: largest agreement group is not a strict majority.
  auto result = engine.CastVote(std::vector<double>{10.0, 10.1, 90.0, 90.1});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->had_majority);
  EXPECT_EQ(result->outcome, RoundOutcome::kVoted);  // accepted anyway
}

TEST(EngineTest, NoMajorityRevertPolicy) {
  EngineConfig config = AverageConfig();
  config.on_no_majority = NoMajorityPolicy::kRevertLast;
  VotingEngine engine = MustCreate(4, config);
  ASSERT_TRUE(
      engine.CastVote(std::vector<double>{10.0, 10.0, 10.0, 10.0}).ok());
  auto result = engine.CastVote(std::vector<double>{10.0, 10.1, 90.0, 90.1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kRevertedLast);
  EXPECT_DOUBLE_EQ(*result->value, 10.0);
}

TEST(EngineTest, NoMajorityRaisePolicy) {
  EngineConfig config = AverageConfig();
  config.on_no_majority = NoMajorityPolicy::kRaise;
  VotingEngine engine = MustCreate(4, config);
  auto result = engine.CastVote(std::vector<double>{10.0, 10.1, 90.0, 90.1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kError);
  EXPECT_EQ(result->status.code(), ErrorCode::kNoMajority);
}

TEST(EngineTest, MajorityPresentWithClearConsensus) {
  VotingEngine engine = MustCreate(3, AverageConfig());
  auto result = engine.CastVote(std::vector<double>{10.0, 10.1, 90.0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->had_majority);
}

TEST(EngineTest, LastOutputTracksVotedRounds) {
  VotingEngine engine = MustCreate(2, AverageConfig());
  EXPECT_FALSE(engine.last_output().has_value());
  ASSERT_TRUE(engine.CastVote(std::vector<double>{4.0, 6.0}).ok());
  ASSERT_TRUE(engine.last_output().has_value());
  EXPECT_DOUBLE_EQ(*engine.last_output(), 5.0);
  EXPECT_EQ(engine.round_index(), 1u);
}

TEST(EngineTest, ResetForgetsEverything) {
  VotingEngine engine = MustCreate(2, MakeConfig(AlgorithmId::kHybrid));
  ASSERT_TRUE(engine.CastVote(std::vector<double>{1.0, 500.0}).ok());
  EXPECT_FALSE(engine.history().AllRecordsAre(1.0));
  engine.Reset();
  EXPECT_TRUE(engine.history().AllRecordsAre(1.0));
  EXPECT_FALSE(engine.last_output().has_value());
  EXPECT_EQ(engine.round_index(), 0u);
}

TEST(EngineTest, RestoreHistorySeedsRecords) {
  VotingEngine engine = MustCreate(3, MakeConfig(AlgorithmId::kHybrid));
  const std::vector<double> records = {1.0, 1.0, 0.0};
  ASSERT_TRUE(engine.RestoreHistory(records, 100).ok());
  // The zero-record module is eliminated immediately.
  auto result = engine.CastVote(std::vector<double>{10.0, 10.1, 10.05});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->eliminated[2]);
}

TEST(EngineTest, HistoryVectorInResultMatchesLedger) {
  VotingEngine engine = MustCreate(2, MakeConfig(AlgorithmId::kStandard));
  auto result = engine.CastVote(std::vector<double>{5.0, 500.0});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->history.size(), 2u);
  EXPECT_DOUBLE_EQ(result->history[0], engine.history().record(0));
  EXPECT_DOUBLE_EQ(result->history[1], engine.history().record(1));
}

TEST(StatelessVoteTest, MeanAndSelection) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  auto mean = StatelessVote(values);
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(*mean, 2.0);
  auto mnn = StatelessVote(values, Collation::kMeanNearestNeighbor);
  ASSERT_TRUE(mnn.ok());
  EXPECT_DOUBLE_EQ(*mnn, 2.0);
}

TEST(StatelessVoteTest, WithExclusion) {
  ExclusionParams exclusion;
  exclusion.mode = ExclusionMode::kStdDev;
  exclusion.threshold = 1.5;
  const std::vector<double> values = {10.0, 10.1, 9.9, 10.0, 200.0};
  auto result = StatelessVote(values, Collation::kWeightedAverage, exclusion);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(*result, 10.0, 0.1);
}

TEST(StatelessVoteTest, ErrorsOnEmpty) {
  const std::vector<double> none;
  EXPECT_FALSE(StatelessVote(none).ok());
}

}  // namespace
}  // namespace avoc::core
