#include "json/parse.h"

#include <gtest/gtest.h>

namespace avoc::json {
namespace {

Value MustParse(std::string_view text) {
  auto result = Parse(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : Value();
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_EQ(MustParse("true").BoolOr(false), true);
  EXPECT_EQ(MustParse("false").BoolOr(true), false);
  EXPECT_DOUBLE_EQ(MustParse("3.5").DoubleOr(0), 3.5);
  EXPECT_EQ(MustParse("\"hi\"").StringOr(""), "hi");
}

TEST(JsonParseTest, NumberForms) {
  EXPECT_DOUBLE_EQ(MustParse("0").DoubleOr(-1), 0.0);
  EXPECT_DOUBLE_EQ(MustParse("-0.5").DoubleOr(0), -0.5);
  EXPECT_DOUBLE_EQ(MustParse("1e3").DoubleOr(0), 1000.0);
  EXPECT_DOUBLE_EQ(MustParse("2.5E-2").DoubleOr(0), 0.025);
  EXPECT_DOUBLE_EQ(MustParse("-12").DoubleOr(0), -12.0);
}

TEST(JsonParseTest, RejectsMalformedNumbers) {
  EXPECT_FALSE(Parse("01").ok());       // leading zero
  EXPECT_FALSE(Parse("1.").ok());       // bare decimal point
  EXPECT_FALSE(Parse(".5").ok());       // missing integer part
  EXPECT_FALSE(Parse("1e").ok());       // empty exponent
  EXPECT_FALSE(Parse("+1").ok());       // leading plus
  EXPECT_FALSE(Parse("NaN").ok());
  EXPECT_FALSE(Parse("Infinity").ok());
}

TEST(JsonParseTest, Arrays) {
  const Value v = MustParse("[1, 2, 3]");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.array()[1].DoubleOr(0), 2.0);
  EXPECT_TRUE(MustParse("[]").array().empty());
  EXPECT_TRUE(MustParse("[[]]").array()[0].is_array());
}

TEST(JsonParseTest, Objects) {
  const Value v = MustParse(R"({"a": 1, "b": {"c": "x"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.Find("a")->DoubleOr(0), 1.0);
  EXPECT_EQ(v.Get({"b", "c"})->StringOr(""), "x");
  EXPECT_EQ(v.Get({"b", "missing"}), nullptr);
}

TEST(JsonParseTest, RejectsDuplicateKeys) {
  EXPECT_FALSE(Parse(R"({"a": 1, "a": 2})").ok());
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b")").StringOr(""), "a\"b");
  EXPECT_EQ(MustParse(R"("a\\b")").StringOr(""), "a\\b");
  EXPECT_EQ(MustParse(R"("a\nb")").StringOr(""), "a\nb");
  EXPECT_EQ(MustParse(R"("a\tb")").StringOr(""), "a\tb");
  EXPECT_EQ(MustParse(R"("A")").StringOr(""), "A");
}

TEST(JsonParseTest, UnicodeEscapes) {
  EXPECT_EQ(MustParse(R"("é")").StringOr(""), "\xC3\xA9");       // é
  EXPECT_EQ(MustParse(R"("€")").StringOr(""), "\xE2\x82\xAC");   // €
  // Surrogate pair: U+1F600.
  EXPECT_EQ(MustParse(R"("😀")").StringOr(""),
            "\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, RejectsBadEscapes) {
  EXPECT_FALSE(Parse(R"("\x41")").ok());
  EXPECT_FALSE(Parse(R"("\u12")").ok());
  EXPECT_FALSE(Parse(R"("\ud800")").ok());          // unpaired high surrogate
  EXPECT_FALSE(Parse(R"("\udc00")").ok());          // lone low surrogate
  EXPECT_FALSE(Parse(R"("\ud800A")").ok());    // high + non-low
}

TEST(JsonParseTest, RejectsControlCharactersInStrings) {
  EXPECT_FALSE(Parse("\"a\nb\"").ok());
  EXPECT_FALSE(Parse(std::string("\"a\x01") + "b\"").ok());
}

TEST(JsonParseTest, RejectsUnterminatedConstructs) {
  EXPECT_FALSE(Parse("\"abc").ok());
  EXPECT_FALSE(Parse("[1, 2").ok());
  EXPECT_FALSE(Parse("{\"a\": 1").ok());
  EXPECT_FALSE(Parse("{\"a\"").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
}

TEST(JsonParseTest, RejectsTrailingContent) {
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_FALSE(Parse("{} []").ok());
}

TEST(JsonParseTest, TrailingCommasAcceptedByDefault) {
  EXPECT_TRUE(Parse("[1, 2,]").ok());
  EXPECT_TRUE(Parse(R"({"a": 1,})").ok());
}

TEST(JsonParseTest, TrailingCommasRejectedWhenDisabled) {
  ParseOptions options;
  options.allow_trailing_commas = false;
  EXPECT_FALSE(Parse("[1, 2,]", options).ok());
  EXPECT_FALSE(Parse(R"({"a": 1,})", options).ok());
}

TEST(JsonParseTest, CommentsAcceptedByDefault) {
  const Value v = MustParse(R"({
    // line comment
    "a": 1, /* block
    comment */ "b": 2
  })");
  EXPECT_DOUBLE_EQ(v.Find("b")->DoubleOr(0), 2.0);
}

TEST(JsonParseTest, CommentsRejectedWhenDisabled) {
  ParseOptions options;
  options.allow_comments = false;
  EXPECT_FALSE(Parse("// c\n1", options).ok());
}

TEST(JsonParseTest, DepthLimitEnforced) {
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 400; ++i) deep += ']';
  EXPECT_FALSE(Parse(deep).ok());

  ParseOptions loose;
  loose.max_depth = 1000;
  EXPECT_TRUE(Parse(deep, loose).ok());
}

TEST(JsonParseTest, ErrorsCarryLineAndColumn) {
  const auto result = Parse("{\n  \"a\": tru\n}");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos)
      << result.status().message();
}

TEST(JsonParseTest, ParsesThePapersListing1) {
  // Listing 1 verbatim, including its trailing comma.
  const Value v = MustParse(R"({
    "algorithm_name": "AVOC",
    "quorum": "UNTIL",
    "quorum_percentage": 100,
    "exclusion": "NONE",
    "exclusion_threshold": 0,
    "history": "HYBRID",
    "params": {
      "error": 0.05,
      "soft_threshold": 2
    },
    "collation": "MEAN_NEAREST_NEIGHBOR",
    "bootstrapping": true,
  })");
  EXPECT_EQ(v.Find("algorithm_name")->StringOr(""), "AVOC");
  EXPECT_DOUBLE_EQ(v.Get({"params", "error"})->DoubleOr(0), 0.05);
  EXPECT_TRUE(v.Find("bootstrapping")->BoolOr(false));
}

}  // namespace
}  // namespace avoc::json
