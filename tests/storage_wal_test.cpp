#include "storage/wal.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

#include "storage/io.h"

namespace avoc::storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("avoc_wal_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "wal-000001").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(WalTest, AppendAndReadBack) {
  {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(WalRecordType::kHistoryPut, "alpha").ok());
    ASSERT_TRUE(writer->Append(WalRecordType::kHistoryErase, "beta").ok());
    ASSERT_TRUE(writer->Append(WalRecordType::kTraceAppend, "").ok());
    EXPECT_EQ(writer->records(), 3u);
  }
  auto replay = ReadWal(path_);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->truncated_tail);
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[0].type, WalRecordType::kHistoryPut);
  EXPECT_EQ(replay->records[0].payload, "alpha");
  EXPECT_EQ(replay->records[1].type, WalRecordType::kHistoryErase);
  EXPECT_EQ(replay->records[1].payload, "beta");
  EXPECT_EQ(replay->records[2].type, WalRecordType::kTraceAppend);
  EXPECT_TRUE(replay->records[2].payload.empty());
}

TEST_F(WalTest, MissingFileReplaysEmpty) {
  auto replay = ReadWal((dir_ / "absent").string());
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
  EXPECT_EQ(replay->valid_bytes, 0u);
  EXPECT_FALSE(replay->truncated_tail);
}

TEST_F(WalTest, SyncEveryCommitByDefault) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(WalRecordType::kHistoryPut, "p").ok());
  EXPECT_EQ(writer->synced_bytes(), writer->bytes());
  EXPECT_GE(writer->fsyncs(), 1u);
}

TEST_F(WalTest, BatchedSyncPolicyDefersFsync) {
  WalWriterOptions options;
  options.sync_every_bytes = 1u << 20;
  auto writer = WalWriter::Open(path_, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(WalRecordType::kHistoryPut, "p").ok());
  EXPECT_LT(writer->synced_bytes(), writer->bytes());
  ASSERT_TRUE(writer->Sync().ok());
  EXPECT_EQ(writer->synced_bytes(), writer->bytes());
}

TEST_F(WalTest, TornTailIsTruncatedNotFatal) {
  {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(WalRecordType::kHistoryPut, "keep-me").ok());
    ASSERT_TRUE(writer->Append(WalRecordType::kHistoryPut, "torn").ok());
  }
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 3);  // tear the last record
  auto replay = ReadWal(path_);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->truncated_tail);
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].payload, "keep-me");
  EXPECT_LT(replay->valid_bytes, full);
}

TEST_F(WalTest, CorruptCrcStopsReplayAtValidPrefix) {
  {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(WalRecordType::kHistoryPut, "one").ok());
    ASSERT_TRUE(writer->Append(WalRecordType::kHistoryPut, "two").ok());
    ASSERT_TRUE(writer->Append(WalRecordType::kHistoryPut, "three").ok());
  }
  // Flip a byte inside the second record's body.
  auto read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  std::string bytes = *std::move(read);
  const size_t first_len = 8 + 1 + 3;  // header + type + "one"
  bytes[first_len + 8 + 1] ^= 0x40;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto replay = ReadWal(path_);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->truncated_tail);
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].payload, "one");
  EXPECT_EQ(replay->valid_bytes, first_len);
}

TEST_F(WalTest, OversizedLengthRejectedAsCorruption) {
  {
    std::ofstream out(path_, std::ios::binary);
    std::string header;
    AppendU32(header, 0xFFFFFFFFu);  // body_len far past kMaxRecordBytes
    AppendU32(header, 0);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
  }
  auto replay = ReadWal(path_);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->truncated_tail);
  EXPECT_TRUE(replay->records.empty());
  EXPECT_EQ(replay->valid_bytes, 0u);
}

TEST_F(WalTest, AppendAfterReopenContinuesFile) {
  {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(WalRecordType::kHistoryPut, "first").ok());
  }
  {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(WalRecordType::kHistoryPut, "second").ok());
  }
  auto replay = ReadWal(path_);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].payload, "first");
  EXPECT_EQ(replay->records[1].payload, "second");
}

TEST(IoTest, Crc32MatchesKnownVector) {
  // IEEE CRC-32 of "123456789" — the standard check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(IoTest, Crc32Chains) {
  const std::string data = "history-aware data fusion";
  const uint32_t whole = Crc32(data);
  const uint32_t chained =
      Crc32(data.substr(8), Crc32(data.substr(0, 8)));
  EXPECT_EQ(whole, chained);
}

TEST(IoTest, ByteRoundTrip) {
  std::string buffer;
  AppendU8(buffer, 0xAB);
  AppendU32(buffer, 0xDEADBEEFu);
  AppendU64(buffer, 0x0123456789ABCDEFull);
  AppendF64(buffer, -0.0);
  AppendBytes(buffer, "payload");
  ByteReader reader(buffer);
  EXPECT_EQ(*reader.ReadU8(), 0xABu);
  EXPECT_EQ(*reader.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*reader.ReadU64(), 0x0123456789ABCDEFull);
  auto value = reader.ReadF64();
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(std::signbit(*value));
  EXPECT_EQ(*reader.ReadBytes(), "payload");
  EXPECT_TRUE(reader.ExpectEnd().ok());
  EXPECT_FALSE(reader.ReadU8().ok());
}

}  // namespace
}  // namespace avoc::storage
