// Tracer / flight-recorder unit tests: ring seqlock semantics, id
// determinism, span-stack parenting, canonical dump stability, and the
// Chrome trace_event export.  The concurrency cases are the TSan targets
// for the lock-free ring (snapshot while recording must be data-race
// free by construction, not by luck).
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "obs/trace_export.h"

namespace avoc::obs {
namespace {

/// Deterministic clock seam: every call advances 1us of virtual time.
TracerOptions TickingOptions(uint64_t* tick) {
  TracerOptions options;
  options.ring_count = 1;
  options.ring_capacity = 256;
  options.now_ns = [tick] { return *tick += 1000; };
  return options;
}

SpanRecord MakeRecord(uint64_t span_id, std::string_view name) {
  SpanRecord record;
  record.trace_id = 0xabc;
  record.span_id = span_id;
  record.start_ns = span_id * 10;
  record.end_ns = span_id * 10 + 5;
  record.kind = static_cast<uint8_t>(SpanKind::kServer);
  CopyToken(record.name, sizeof(record.name), name);
  return record;
}

TEST(ObsTraceTest, RingRecordsAndSnapshots) {
  TraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 1; i <= 3; ++i) {
    EXPECT_TRUE(ring.Record(MakeRecord(i, "span")));
  }
  std::vector<SpanRecord> out;
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(ObsTraceTest, RingIsAWindowNotAQueue) {
  TraceRing ring(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    ring.Record(MakeRecord(i, "span"));
  }
  std::vector<SpanRecord> out;
  ring.Snapshot(&out);
  // Full ring: exactly capacity live records, and they are the newest.
  ASSERT_EQ(out.size(), 4u);
  for (const SpanRecord& record : out) {
    EXPECT_GE(record.span_id, 7u);
    EXPECT_LE(record.span_id, 10u);
  }
}

TEST(ObsTraceTest, RingCapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(64).capacity(), 64u);
}

TEST(ObsTraceTest, DeriveTraceIdIsDeterministicAndNeverZero) {
  const uint64_t a = Tracer::DeriveTraceId("client-a", 7);
  EXPECT_EQ(a, Tracer::DeriveTraceId("client-a", 7));
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, Tracer::DeriveTraceId("client-a", 8));
  EXPECT_NE(a, Tracer::DeriveTraceId("client-b", 7));
  // Retries reuse the sequence number, so they MUST map to the same id.
  EXPECT_EQ(Tracer::DeriveTraceId("c", 0), Tracer::DeriveTraceId("c", 0));
}

TEST(ObsTraceTest, ScopedSpanParentsNestAndPopInOrder) {
  uint64_t tick = 0;
  Tracer tracer(TickingOptions(&tick));
  EXPECT_EQ(CurrentTraceSpan().tracer, nullptr);
  {
    ScopedSpan outer(&tracer, SpanKind::kClient, "outer", SpanContext{});
    const SpanContext outer_context = outer.context();
    EXPECT_TRUE(outer_context.valid());
    // Locally rooted: the span id doubles as the trace id.
    EXPECT_EQ(outer_context.trace_id, outer_context.span_id);
    EXPECT_EQ(CurrentTraceSpan().context.span_id, outer_context.span_id);
    {
      ScopedSpan inner(&tracer, SpanKind::kEngine, "inner", outer.context());
      EXPECT_EQ(inner.context().trace_id, outer_context.trace_id);
      EXPECT_EQ(CurrentTraceSpan().context.span_id, inner.context().span_id);
    }
    EXPECT_EQ(CurrentTraceSpan().context.span_id, outer_context.span_id);
  }
  EXPECT_EQ(CurrentTraceSpan().tracer, nullptr);

  const std::vector<SpanRecord> records = tracer.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  const SpanRecord& inner =
      std::string_view(records[0].name) == "inner" ? records[0] : records[1];
  const SpanRecord& outer =
      std::string_view(records[0].name) == "inner" ? records[1] : records[0];
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_EQ(inner.trace_id, outer.trace_id);
  EXPECT_GE(inner.end_ns, inner.start_ns);
}

TEST(ObsTraceTest, NullTracerSpanIsInert) {
  ScopedSpan span(nullptr, SpanKind::kClient, "noop", SpanContext{});
  EXPECT_FALSE(span.active());
  EXPECT_FALSE(span.context().valid());
  EXPECT_EQ(CurrentTraceSpan().tracer, nullptr);
  span.SetDetail("ignored");
}

TEST(ObsTraceTest, EventParentsUnderCurrentSpan) {
  uint64_t tick = 0;
  Tracer tracer(TickingOptions(&tick));
  {
    ScopedSpan span(&tracer, SpanKind::kServer, "request", SpanContext{});
    tracer.Event("wal.fsync", "bytes=128");
  }
  tracer.Event("orphan");

  bool saw_parented = false;
  bool saw_orphan = false;
  for (const SpanRecord& record : tracer.Snapshot()) {
    if (std::string_view(record.name) == "wal.fsync") {
      saw_parented = true;
      EXPECT_NE(record.parent_id, 0u);
      EXPECT_NE(record.trace_id, 0u);
      EXPECT_EQ(record.start_ns, record.end_ns);  // point event
      EXPECT_EQ(std::string_view(record.detail), "bytes=128");
    } else if (std::string_view(record.name) == "orphan") {
      saw_orphan = true;
      EXPECT_EQ(record.trace_id, 0u);  // no current span: untraced
    }
  }
  EXPECT_TRUE(saw_parented);
  EXPECT_TRUE(saw_orphan);
}

TEST(ObsTraceTest, ConsumeLastTraceIdIsOneShot) {
  uint64_t tick = 0;
  Tracer tracer(TickingOptions(&tick));
  (void)ConsumeLastTraceId();  // clear residue from other tests
  uint64_t trace_id = 0;
  {
    ScopedSpan span(&tracer, SpanKind::kServer, "request", SpanContext{});
    trace_id = span.context().trace_id;
  }
  EXPECT_EQ(ConsumeLastTraceId(), trace_id);
  EXPECT_EQ(ConsumeLastTraceId(), 0u);  // consumed
}

TEST(ObsTraceTest, NameAndDetailTruncateSafely) {
  uint64_t tick = 0;
  Tracer tracer(TickingOptions(&tick));
  const std::string long_name(100, 'n');
  const std::string long_detail(200, 'd');
  {
    ScopedSpan span(&tracer, SpanKind::kClient, long_name, SpanContext{},
                    long_detail);
  }
  const std::vector<SpanRecord> records = tracer.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::string_view(records[0].name), std::string(30, 'n'));
  EXPECT_EQ(std::string_view(records[0].detail), std::string(79, 'd'));
}

TEST(ObsTraceTest, DumpTextIsByteIdenticalForEqualHistories) {
  auto run = [] {
    uint64_t tick = 0;
    Tracer tracer(TickingOptions(&tick));
    SpanContext parent;
    parent.trace_id = Tracer::DeriveTraceId("client", 1);
    parent.flags = 1;
    {
      ScopedSpan root(&tracer, SpanKind::kClient, "client.submit_batch",
                      parent, "group=g seq=1");
      ScopedSpan attempt(&tracer, SpanKind::kClient, "client.attempt",
                         root.context());
      tracer.Event("client.backoff", "attempt=0 sleep_ms=5");
    }
    return tracer.DumpText();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.substr(0, 14), "AVOC-TRACE v1\n");
  EXPECT_NE(first.find("name=client.submit_batch"), std::string::npos);
  EXPECT_NE(first.find("name=client.backoff"), std::string::npos);
}

TEST(ObsTraceTest, DumpTextSortsByStartThenSpanId) {
  uint64_t tick = 0;
  TracerOptions options = TickingOptions(&tick);
  options.ring_count = 2;  // records land across rings; sort must fix order
  Tracer tracer(options);
  SpanRecord late = MakeRecord(1, "late");
  late.start_ns = 500;
  SpanRecord early = MakeRecord(2, "early");
  early.start_ns = 100;
  tracer.Record(late);
  tracer.Record(early);
  const std::string dump = tracer.DumpText();
  EXPECT_LT(dump.find("name=early"), dump.find("name=late"));
}

TEST(ObsTraceTest, ChromeExportRoundTrips) {
  uint64_t tick = 0;
  Tracer tracer(TickingOptions(&tick));
  {
    ScopedSpan span(&tracer, SpanKind::kServer, "server.submit_batch_seq",
                    SpanContext{}, "group=g route=local");
    tracer.Event("wal.fsync");
  }
  const Result<std::string> json = TraceDumpToChromeJson(tracer.DumpText());
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json->find("\"name\":\"server.submit_batch_seq\""),
            std::string::npos);
  EXPECT_NE(json->find("\"ph\":\"X\""), std::string::npos);   // complete span
  EXPECT_NE(json->find("\"ph\":\"i\""), std::string::npos);   // instant event
  EXPECT_NE(json->find("\"detail\":\"group=g route=local\""),
            std::string::npos);
}

TEST(ObsTraceTest, ChromeExportEscapesHostileDetail) {
  std::string dump = "AVOC-TRACE v1\n";
  SpanRecord record = MakeRecord(1, "span");
  // Newlines are flattened by CopyToken (they would forge dump lines);
  // quotes, backslashes, and tabs must survive into escaped JSON.
  CopyToken(record.detail, sizeof(record.detail), "say \"hi\"\\\n\tdone");
  EXPECT_EQ(std::string_view(record.detail), "say \"hi\"\\ \tdone");
  dump += FormatSpanLine(record);
  dump.push_back('\n');
  const Result<std::string> json = TraceDumpToChromeJson(dump);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("say \\\"hi\\\"\\\\ \\tdone"), std::string::npos);
}

TEST(ObsTraceTest, ChromeExportRejectsMalformedDumps) {
  EXPECT_FALSE(TraceDumpToChromeJson("").ok());
  EXPECT_FALSE(TraceDumpToChromeJson("NOT-A-TRACE\n").ok());
  EXPECT_FALSE(
      TraceDumpToChromeJson("AVOC-TRACE v1\ntrace=zz nonsense\n").ok());
}

TEST(ObsTraceTest, EmptyDumpExportsEmptyEventArray) {
  const Result<std::string> json = TraceDumpToChromeJson("AVOC-TRACE v1\n");
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"traceEvents\":[]"), std::string::npos);
}

// TSan target: hammer one ring from several writers while a reader
// snapshots continuously.  The seqlock must yield only whole records —
// every snapshotted record is one a writer actually published.
TEST(ObsTraceTest, ConcurrentRecordAndSnapshotIsTornFree) {
  TraceRing ring(64);
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 5000;

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        // Self-checking payload: every word derived from span_id, so a
        // torn read is detectable below.
        SpanRecord record;
        const uint64_t id = (static_cast<uint64_t>(w) << 32) | i;
        record.trace_id = id * 3;
        record.span_id = id;
        record.parent_id = id * 7;
        record.start_ns = id * 11;
        record.end_ns = id * 11 + 1;
        record.kind = static_cast<uint8_t>(SpanKind::kServer);
        ring.Record(record);
      }
    });
  }

  uint64_t snapshots = 0;
  uint64_t seen = 0;
  std::thread reader([&] {
    std::vector<SpanRecord> out;
    while (!stop.load(std::memory_order_acquire)) {
      out.clear();
      ring.Snapshot(&out);
      ++snapshots;
      for (const SpanRecord& record : out) {
        const uint64_t id = record.span_id;
        ASSERT_EQ(record.trace_id, id * 3);
        ASSERT_EQ(record.parent_id, id * 7);
        ASSERT_EQ(record.start_ns, id * 11);
        ASSERT_EQ(record.end_ns, id * 11 + 1);
        ++seen;
      }
    }
  });

  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(snapshots, 0u);
  EXPECT_GT(seen, 0u);
  // Conservation: every record was either published or counted dropped.
  std::vector<SpanRecord> final_snapshot;
  ring.Snapshot(&final_snapshot);
  EXPECT_LE(final_snapshot.size(), ring.capacity());
}

// TSan target for the facade: concurrent spans + events through the
// Tracer (thread-local stacks, shared span-id counter, multiple rings).
TEST(ObsTraceTest, ConcurrentScopedSpansAreDataRaceFree) {
  TracerOptions options;
  options.ring_count = 2;
  options.ring_capacity = 128;
  Tracer tracer(options);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < 1000; ++i) {
        ScopedSpan outer(&tracer, SpanKind::kServer, "outer", SpanContext{});
        ScopedSpan inner(&tracer, SpanKind::kEngine, "inner", outer.context());
        tracer.Event("tick");
        (void)ConsumeLastTraceId();
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread dumper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)tracer.DumpText();
    }
  });
  for (std::thread& thread : threads) thread.join();
  stop.store(true, std::memory_order_release);
  dumper.join();
  // Unique span ids: the counter never handed the same id out twice.
  EXPECT_GE(tracer.dropped() + tracer.Snapshot().size(), 1u);
}

}  // namespace
}  // namespace avoc::obs
