#include "core/history.h"

#include <gtest/gtest.h>

namespace avoc::core {
namespace {

HistoryParams RewardPenalty(double reward, double penalty,
                            double missing_penalty = 0.0) {
  HistoryParams params;
  params.rule = HistoryRule::kRewardPenalty;
  params.reward = reward;
  params.penalty = penalty;
  params.missing_penalty = missing_penalty;
  return params;
}

HistoryParams Cumulative() {
  HistoryParams params;
  params.rule = HistoryRule::kCumulativeRatio;
  return params;
}

std::vector<double> Agreements(std::initializer_list<double> values) {
  return std::vector<double>(values);
}

TEST(HistoryLedgerTest, FreshSetStartsAtOne) {
  const HistoryLedger ledger(4, Cumulative());
  EXPECT_EQ(ledger.module_count(), 4u);
  EXPECT_TRUE(ledger.AllRecordsAre(1.0));
  EXPECT_DOUBLE_EQ(ledger.MeanRecord(), 1.0);
  EXPECT_EQ(ledger.round_count(), 0u);
}

TEST(HistoryLedgerTest, UpdateRejectsArityMismatch) {
  HistoryLedger ledger(2, Cumulative());
  EXPECT_FALSE(ledger.Update(Agreements({1.0}), {true, true}).ok());
  EXPECT_FALSE(ledger.Update(Agreements({1.0, 1.0}), {true}).ok());
}

TEST(HistoryLedgerTest, NoneRuleKeepsRecordsPinned) {
  HistoryParams params;
  params.rule = HistoryRule::kNone;
  HistoryLedger ledger(2, params);
  ASSERT_TRUE(ledger.Update(Agreements({0.0, 0.0}), {true, true}).ok());
  EXPECT_TRUE(ledger.AllRecordsAre(1.0));
  EXPECT_EQ(ledger.round_count(), 1u);
}

TEST(HistoryLedgerTest, CumulativeRatioDecaysLikeOneOverT) {
  HistoryLedger ledger(1, Cumulative());
  // Chronic disagreer: record after t rounds = 1/(1+t).
  for (size_t t = 1; t <= 10; ++t) {
    ASSERT_TRUE(ledger.Update(Agreements({0.0}), {true}).ok());
    EXPECT_NEAR(ledger.record(0), 1.0 / (1.0 + static_cast<double>(t)),
                1e-12);
  }
  // Never reaches zero exactly — the paper's "skew is not eliminated
  // completely" behaviour.
  EXPECT_GT(ledger.record(0), 0.0);
}

TEST(HistoryLedgerTest, CumulativeRatioStaysAtOneWhileAgreeing) {
  HistoryLedger ledger(1, Cumulative());
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(ledger.Update(Agreements({1.0}), {true}).ok());
    EXPECT_DOUBLE_EQ(ledger.record(0), 1.0);
  }
}

TEST(HistoryLedgerTest, CumulativeRatioRecovers) {
  HistoryLedger ledger(1, Cumulative());
  ASSERT_TRUE(ledger.Update(Agreements({0.0}), {true}).ok());
  const double damaged = ledger.record(0);
  for (int t = 0; t < 20; ++t) {
    ASSERT_TRUE(ledger.Update(Agreements({1.0}), {true}).ok());
  }
  EXPECT_GT(ledger.record(0), damaged);
  EXPECT_GT(ledger.record(0), 0.9);
}

TEST(HistoryLedgerTest, RewardPenaltyDropsToZeroAndClamps) {
  HistoryLedger ledger(1, RewardPenalty(0.05, 0.3));
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(ledger.Update(Agreements({0.0}), {true}).ok());
  }
  // 1 - 10*0.3 clamps at 0 — "weights can drop to 0".
  EXPECT_DOUBLE_EQ(ledger.record(0), 0.0);
  EXPECT_TRUE(ledger.AllRecordsAre(0.0));
}

TEST(HistoryLedgerTest, RewardPenaltyClampsAtOne) {
  HistoryLedger ledger(1, RewardPenalty(0.5, 0.3));
  ASSERT_TRUE(ledger.Update(Agreements({1.0}), {true}).ok());
  EXPECT_DOUBLE_EQ(ledger.record(0), 1.0);
}

TEST(HistoryLedgerTest, PartialAgreementBlendsRewardAndPenalty) {
  HistoryLedger ledger(1, RewardPenalty(0.1, 0.4));
  ASSERT_TRUE(ledger.Update(Agreements({0.5}), {true}).ok());
  // 1 + 0.5*0.1 - 0.5*0.4 = 0.85.
  EXPECT_NEAR(ledger.record(0), 0.85, 1e-12);
}

TEST(HistoryLedgerTest, RecordsAlwaysBounded) {
  HistoryLedger ledger(3, RewardPenalty(1.0, 1.0));
  for (int t = 0; t < 50; ++t) {
    const double g = (t % 3) / 2.0;
    ASSERT_TRUE(
        ledger.Update(Agreements({g, 1.0 - g, 0.5}), {true, true, true}).ok());
    for (size_t m = 0; m < 3; ++m) {
      EXPECT_GE(ledger.record(m), 0.0);
      EXPECT_LE(ledger.record(m), 1.0);
    }
  }
}

TEST(HistoryLedgerTest, MissingModulesUntouchedByDefault) {
  HistoryLedger ledger(2, RewardPenalty(0.05, 0.3));
  ASSERT_TRUE(ledger.Update(Agreements({0.0, 0.0}), {true, false}).ok());
  EXPECT_LT(ledger.record(0), 1.0);
  EXPECT_DOUBLE_EQ(ledger.record(1), 1.0);
}

TEST(HistoryLedgerTest, MissingPenaltyApplies) {
  HistoryLedger ledger(1, RewardPenalty(0.05, 0.3, /*missing=*/0.1));
  ASSERT_TRUE(ledger.Update(Agreements({0.0}), {false}).ok());
  EXPECT_NEAR(ledger.record(0), 0.9, 1e-12);
}

TEST(HistoryLedgerTest, MeanRecord) {
  HistoryLedger ledger(2, RewardPenalty(0.05, 0.5));
  ASSERT_TRUE(ledger.Update(Agreements({1.0, 0.0}), {true, true}).ok());
  EXPECT_NEAR(ledger.MeanRecord(), (1.0 + 0.5) / 2.0, 1e-12);
}

TEST(HistoryLedgerTest, ResetRestoresFreshSet) {
  HistoryLedger ledger(2, Cumulative());
  ASSERT_TRUE(ledger.Update(Agreements({0.0, 1.0}), {true, true}).ok());
  ledger.Reset();
  EXPECT_TRUE(ledger.AllRecordsAre(1.0));
  EXPECT_EQ(ledger.round_count(), 0u);
  // Cumulative state also cleared: one disagreement decays as from fresh.
  ASSERT_TRUE(ledger.Update(Agreements({0.0, 1.0}), {true, true}).ok());
  EXPECT_NEAR(ledger.record(0), 0.5, 1e-12);
}

TEST(HistoryLedgerTest, RestoreRoundTripsThroughCumulativeState) {
  HistoryLedger ledger(2, Cumulative());
  const std::vector<double> records = {0.25, 0.75};
  ASSERT_TRUE(ledger.Restore(records, 10).ok());
  EXPECT_NEAR(ledger.record(0), 0.25, 1e-12);
  EXPECT_NEAR(ledger.record(1), 0.75, 1e-12);
  EXPECT_EQ(ledger.round_count(), 10u);
  // Updates continue consistently from the restored state.
  ASSERT_TRUE(ledger.Update(Agreements({1.0, 1.0}), {true, true}).ok());
  EXPECT_GT(ledger.record(0), 0.25);
  EXPECT_LE(ledger.record(1), 1.0);
}

TEST(HistoryLedgerTest, RestoreClampsAndValidates) {
  HistoryLedger ledger(2, Cumulative());
  const std::vector<double> wrong_arity = {0.5};
  EXPECT_FALSE(ledger.Restore(wrong_arity, 1).ok());
  const std::vector<double> out_of_range = {-0.5, 1.5};
  ASSERT_TRUE(ledger.Restore(out_of_range, 1).ok());
  EXPECT_DOUBLE_EQ(ledger.record(0), 0.0);
  EXPECT_DOUBLE_EQ(ledger.record(1), 1.0);
}

TEST(HistoryLedgerTest, AllRecordsAreRespectsEpsilon) {
  HistoryLedger ledger(2, RewardPenalty(0.05, 0.3));
  EXPECT_TRUE(ledger.AllRecordsAre(1.0));
  EXPECT_FALSE(ledger.AllRecordsAre(0.0));
  EXPECT_TRUE(ledger.AllRecordsAre(0.999, 0.01));
}

}  // namespace
}  // namespace avoc::core
