#include "util/cli.h"

#include <gtest/gtest.h>

namespace avoc {
namespace {

CommandLine Parse(std::vector<const char*> args) {
  auto result =
      CommandLine::Parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(result.ok());
  return std::move(*result);
}

TEST(CommandLineTest, ParsesSpaceSeparatedValue) {
  const CommandLine cli = Parse({"--name", "value"});
  EXPECT_EQ(cli.GetString("name", ""), "value");
}

TEST(CommandLineTest, ParsesEqualsForm) {
  const CommandLine cli = Parse({"--name=value"});
  EXPECT_EQ(cli.GetString("name", ""), "value");
}

TEST(CommandLineTest, FallbackWhenAbsent) {
  const CommandLine cli = Parse({});
  EXPECT_EQ(cli.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(cli.GetInt("missing", 5), 5);
  EXPECT_DOUBLE_EQ(cli.GetDouble("missing", 2.5), 2.5);
  EXPECT_TRUE(cli.GetBool("missing", true));
}

TEST(CommandLineTest, NumericParsing) {
  const CommandLine cli = Parse({"--count", "12", "--ratio=0.5"});
  EXPECT_EQ(cli.GetInt("count", 0), 12);
  EXPECT_DOUBLE_EQ(cli.GetDouble("ratio", 0), 0.5);
}

TEST(CommandLineTest, MalformedNumberFallsBack) {
  const CommandLine cli = Parse({"--count", "abc"});
  EXPECT_EQ(cli.GetInt("count", 7), 7);
}

TEST(CommandLineTest, BareBooleanFlag) {
  const CommandLine cli = Parse({"--verbose"});
  EXPECT_TRUE(cli.GetBool("verbose", false));
  EXPECT_TRUE(cli.HasFlag("verbose"));
}

TEST(CommandLineTest, NoPrefixDisablesBoolean) {
  const CommandLine cli = Parse({"--no-verbose"});
  EXPECT_FALSE(cli.GetBool("verbose", true));
}

TEST(CommandLineTest, BooleanValueSpellings) {
  EXPECT_TRUE(Parse({"--x=true"}).GetBool("x", false));
  EXPECT_TRUE(Parse({"--x=1"}).GetBool("x", false));
  EXPECT_TRUE(Parse({"--x=YES"}).GetBool("x", false));
  EXPECT_FALSE(Parse({"--x=false"}).GetBool("x", true));
  EXPECT_FALSE(Parse({"--x=0"}).GetBool("x", true));
}

TEST(CommandLineTest, PositionalArguments) {
  const CommandLine cli = Parse({"input.csv", "--mode", "fast", "out.csv"});
  EXPECT_EQ(cli.positional(),
            (std::vector<std::string>{"input.csv", "out.csv"}));
  EXPECT_EQ(cli.GetString("mode", ""), "fast");
}

TEST(CommandLineTest, DoubleDashEndsFlagParsing) {
  const CommandLine cli = Parse({"--a", "1", "--", "--not-a-flag"});
  EXPECT_EQ(cli.GetString("a", ""), "1");
  EXPECT_EQ(cli.positional(), (std::vector<std::string>{"--not-a-flag"}));
}

TEST(CommandLineTest, FlagFollowedByFlagIsBoolean) {
  const CommandLine cli = Parse({"--a", "--b", "v"});
  EXPECT_TRUE(cli.GetBool("a", false));
  EXPECT_EQ(cli.GetString("b", ""), "v");
}

TEST(CommandLineTest, UnconsumedFlagsDetectTypos) {
  const CommandLine cli = Parse({"--typo", "x", "--used", "y"});
  EXPECT_EQ(cli.GetString("used", ""), "y");
  EXPECT_EQ(cli.UnconsumedFlags(), (std::vector<std::string>{"typo"}));
}

}  // namespace
}  // namespace avoc
