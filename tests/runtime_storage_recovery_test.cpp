// DST crash-recovery sweep for the storage engine behind a live server.
//
// Every seed derives one schedule: a StorageEngine (seeded fsync policy
// and chunk size) backs a real RemoteVoterServer on the deterministic
// simulation; a client submits rounds; at a seeded point the process
// "loses power" (StorageEngine::SimulateCrash closes every descriptor
// unsynced), the seed decides how much of the unsynced WAL tail reached
// the platter (truncation anywhere in [synced, written], sometimes a bit
// flip in the unsynced region); the directory is reopened and a fresh
// server resumes on a re-bound port.
//
// The contract proven seed by seed:
//
//   1. Recovery never loses a synced write: the recovered trace is a
//      bit-identical prefix of the pre-crash trace, at least as long as
//      the last commit barrier (with sync-every-commit, exactly equal).
//   2. The restarted server restores the recovered history and keeps
//      serving; a final graceful reopen sees phase-1-prefix + phase-2
//      appends with nothing torn.
//   3. Determinism: the same seed replays the identical schedule byte
//      for byte (world event traces, recovered state, final state).
//
// Reproduce one seed with AVOC_CHAOS_SEED=<n>.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/remote.h"
#include "runtime/sim_net.h"
#include "storage/engine.h"
#include "util/strings.h"

namespace avoc::runtime {
namespace {

constexpr uint16_t kPort = 7;
constexpr size_t kModules = 3;

std::string RecoveryDir(uint64_t seed) {
  return (std::filesystem::temp_directory_path() /
          StrFormat("avoc_recovery_%d_%llu", ::getpid(),
                    static_cast<unsigned long long>(seed)))
      .string();
}

/// Hex-float rendering of a trace — the byte-identity currency.
std::string TraceText(std::span<const storage::TracePoint> points) {
  std::string text;
  for (const storage::TracePoint& point : points) {
    text += StrFormat("%llu %d %a\n",
                      static_cast<unsigned long long>(point.round),
                      point.engaged ? 1 : 0, point.value);
  }
  return text;
}

struct RecoveryRun {
  bool ok = false;             ///< schedule executed end to end
  std::string failure;         ///< first violated invariant, if any
  std::string phase1_world;    ///< sim event trace before the crash
  std::string phase2_world;    ///< sim event trace after the restart
  std::string reference;       ///< full pre-crash trace (hex floats)
  std::string recovered;       ///< trace visible after crash recovery
  std::string final_state;     ///< trace after phase 2 + graceful reopen
  size_t synced_floor = 0;     ///< points guaranteed by the last barrier
  size_t recovered_points = 0;
  bool truncated_tail = false;
};

#define RECOVERY_CHECK(cond, what)                  \
  do {                                              \
    if (!(cond)) {                                  \
      run.failure = (what);                         \
      return run;                                   \
    }                                               \
  } while (0)

RecoveryRun RunSchedule(uint64_t seed) {
  RecoveryRun run;
  Rng rng(seed ^ 0x57A6E5EEDull);
  const std::string dir = RecoveryDir(seed);
  std::filesystem::remove_all(dir);

  storage::StorageEngineOptions store_options;
  store_options.dir = dir;
  // Seeded durability band: strictest (fsync every commit) through
  // batched policies where a crash can tear a real tail.
  const size_t sync_choices[] = {0, 0, 256, 4096};
  store_options.wal_sync_every_bytes = sync_choices[rng.UniformInt(4)];
  store_options.chunk_max_points = rng.UniformInt(2) == 0 ? 4 : 512;
  const bool sync_every_commit = store_options.wal_sync_every_bytes == 0;

  const size_t crash_round = 3 + rng.UniformInt(10);
  const size_t barrier_round = rng.UniformInt(crash_round);
  const size_t phase2_rounds = 2 + rng.UniformInt(6);

  std::vector<storage::TracePoint> reference;
  storage::StorageEngine::CrashState crash;
  std::string ledger_at_crash;

  // --- phase 1: serve until the crash ---------------------------------------
  {
    auto engine = storage::StorageEngine::Open(store_options);
    if (!engine.ok()) {
      run.failure = "phase1 open: " + engine.status().ToString();
      return run;
    }
    storage::StorageEngine& store = **engine;
    SimWorld world(seed);
    obs::Registry registry;
    VoterGroupManager manager(&store, &registry, &store);
    RECOVERY_CHECK(
        manager
            .AddGroup("lights",
                      *core::MakeEngine(core::AlgorithmId::kAvoc, kModules))
            .ok(),
        "phase1 add group");
    auto listener = world.Listen(kPort);
    RECOVERY_CHECK(listener.ok(), "phase1 listen");
    auto server = RemoteVoterServer::StartOnReactor(
        &manager, RemoteServerOptions{}, std::move(*listener), world.reactor(),
        /*spawn_loop_thread=*/false);
    RECOVERY_CHECK(server.ok(), "phase1 start");
    auto transport = world.Connect(kPort);
    RECOVERY_CHECK(transport.ok(), "phase1 connect");
    auto client =
        RemoteVoterClient::FromTransport(std::move(*transport), true);
    RECOVERY_CHECK(client.ok(), "phase1 client");

    Rng values(seed ^ 0xDA7A5EEDull);
    for (size_t r = 0; r < crash_round; ++r) {
      std::vector<BatchReading> batch;
      for (uint64_t m = 0; m < kModules; ++m) {
        batch.push_back(BatchReading{m, r, 20.0 + values.Gaussian(0.0, 2.0)});
      }
      auto accepted = client->SubmitBatch("lights", batch);
      RECOVERY_CHECK(accepted.ok() && *accepted == batch.size(),
                     "phase1 submit");
      if (r == barrier_round) {
        // Commit barrier mid-schedule: everything up to here must
        // survive any crash, whatever the fsync policy.
        RECOVERY_CHECK(store.Sync().ok(), "phase1 barrier");
        auto synced = store.QueryTraceRange("lights", 0, ~uint64_t{0});
        RECOVERY_CHECK(synced.ok(), "phase1 barrier query");
        run.synced_floor = synced->size();
      }
    }
    auto full = store.QueryTraceRange("lights", 0, ~uint64_t{0});
    RECOVERY_CHECK(full.ok(), "phase1 reference query");
    reference = *std::move(full);
    run.reference = TraceText(reference);
    auto voter = manager.voter("lights");
    RECOVERY_CHECK(voter.ok(), "phase1 voter");
    for (const double record : (*voter)->engine().history().records()) {
      ledger_at_crash += StrFormat("%a\n", record);
    }
    (*server)->Stop();
    run.phase1_world = world.TraceText();
    crash = store.SimulateCrash();
  }

  // --- the crash window: seeded torn tail -----------------------------------
  if (sync_every_commit && crash.wal_synced_bytes != crash.wal_bytes) {
    run.failure = "sync-every-commit left an unsynced tail";
    return run;
  }
  const uint64_t torn_span = crash.wal_bytes - crash.wal_synced_bytes;
  const uint64_t keep =
      crash.wal_synced_bytes + (torn_span == 0 ? 0 : rng.UniformInt(torn_span + 1));
  std::filesystem::resize_file(crash.wal_path, keep);
  if (keep > crash.wal_synced_bytes && rng.UniformInt(3) == 0) {
    // A torn sector: flip one bit somewhere in the surviving unsynced
    // region.  CRC framing must stop replay there, never crash.
    std::fstream file(crash.wal_path,
                      std::ios::binary | std::ios::in | std::ios::out);
    const uint64_t at =
        crash.wal_synced_bytes +
        rng.UniformInt(keep - crash.wal_synced_bytes);
    file.seekg(static_cast<std::streamoff>(at));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ (1u << rng.UniformInt(8)));
    file.seekp(static_cast<std::streamoff>(at));
    file.write(&byte, 1);
  }

  // --- recovery + phase 2: restart the server on the recovered store --------
  {
    auto engine = storage::StorageEngine::Open(store_options);
    if (!engine.ok()) {
      run.failure = "recovery open: " + engine.status().ToString();
      return run;
    }
    storage::StorageEngine& store = **engine;
    run.truncated_tail = store.stats().recovered_truncated_tail;
    auto recovered = store.QueryTraceRange("lights", 0, ~uint64_t{0});
    RECOVERY_CHECK(recovered.ok(), "recovered query");
    run.recovered_points = recovered->size();
    run.recovered = TraceText(*recovered);

    // Invariant 1: bit-identical prefix, at least to the barrier.
    RECOVERY_CHECK(recovered->size() <= reference.size(),
                   "recovered more points than were ever written");
    RECOVERY_CHECK(recovered->size() >= run.synced_floor,
                   "lost a synced write");
    RECOVERY_CHECK(
        run.reference.compare(0, run.recovered.size(), run.recovered) == 0,
        "recovered trace is not a prefix of the reference");
    if (sync_every_commit) {
      RECOVERY_CHECK(run.recovered == run.reference,
                     "sync-every-commit lost an acknowledged write");
      auto history = store.Get("lights");
      RECOVERY_CHECK(history.ok(), "sync-every-commit lost the history");
      std::string ledger;
      for (const double record : history->records) {
        ledger += StrFormat("%a\n", record);
      }
      RECOVERY_CHECK(ledger == ledger_at_crash,
                     "recovered history differs from the live ledger");
    }

    // Phase 2: a fresh server on the same (re-bound) port resumes — the
    // voter restores the recovered history on construction.
    SimWorld world(seed ^ 0xF00DULL);
    obs::Registry registry;
    VoterGroupManager manager(&store, &registry, &store);
    RECOVERY_CHECK(
        manager
            .AddGroup("lights",
                      *core::MakeEngine(core::AlgorithmId::kAvoc, kModules))
            .ok(),
        "phase2 add group");
    if (store.Get("lights").ok()) {
      auto voter = manager.voter("lights");
      RECOVERY_CHECK(voter.ok(), "phase2 voter");
      RECOVERY_CHECK(
          (*voter)->engine().history().round_count() ==
              store.Get("lights")->rounds,
          "restarted voter did not restore the recovered history");
    }
    auto listener = world.Listen(kPort);
    RECOVERY_CHECK(listener.ok(), "phase2 listen (port re-bind)");
    auto server = RemoteVoterServer::StartOnReactor(
        &manager, RemoteServerOptions{}, std::move(*listener), world.reactor(),
        /*spawn_loop_thread=*/false);
    RECOVERY_CHECK(server.ok(), "phase2 start");
    auto transport = world.Connect(kPort);
    RECOVERY_CHECK(transport.ok(), "phase2 connect");
    auto client =
        RemoteVoterClient::FromTransport(std::move(*transport), true);
    RECOVERY_CHECK(client.ok(), "phase2 client");
    Rng values(seed ^ 0xF2E5E5ull);
    for (size_t r = 0; r < phase2_rounds; ++r) {
      std::vector<BatchReading> batch;
      for (uint64_t m = 0; m < kModules; ++m) {
        batch.push_back(BatchReading{m, crash_round + r,
                                     25.0 + values.Gaussian(0.0, 2.0)});
      }
      auto accepted = client->SubmitBatch("lights", batch);
      RECOVERY_CHECK(accepted.ok() && *accepted == batch.size(),
                     "phase2 submit");
    }
    auto combined = client->QueryRange("lights", 0, ~uint64_t{0} >> 1);
    RECOVERY_CHECK(combined.ok(), "phase2 range query");
    RECOVERY_CHECK(combined->size() == run.recovered_points + phase2_rounds,
                   "phase2 appends did not land after the recovered prefix");
    (*server)->Stop();
    run.phase2_world = world.TraceText();
  }

  // --- final clean reopen ----------------------------------------------------
  {
    auto engine = storage::StorageEngine::Open(store_options);
    if (!engine.ok()) {
      run.failure = "final open: " + engine.status().ToString();
      return run;
    }
    auto final_trace = (*engine)->QueryTraceRange("lights", 0, ~uint64_t{0});
    RECOVERY_CHECK(final_trace.ok(), "final query");
    run.final_state = TraceText(*final_trace);
    RECOVERY_CHECK(
        final_trace->size() == run.recovered_points + phase2_rounds,
        "graceful shutdown lost phase2 writes");
    RECOVERY_CHECK(
        run.final_state.compare(0, run.recovered.size(), run.recovered) == 0,
        "final state does not extend the recovered prefix");
  }

  std::filesystem::remove_all(dir);
  run.ok = true;
  return run;
}

#undef RECOVERY_CHECK

/// Seed band for one shard, honoring the AVOC_CHAOS_SEED override.
std::vector<uint64_t> SeedBand(uint64_t base, size_t count) {
  if (const char* forced = std::getenv("AVOC_CHAOS_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(forced, nullptr, 10))};
  }
  std::vector<uint64_t> seeds;
  for (size_t i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

class CrashRecoveryShard : public ::testing::TestWithParam<uint64_t> {};

// 4 shards x 30 seeds = 120 distinct crash schedules (>= 100 per the
// acceptance bar).
constexpr size_t kSeedsPerShard = 30;

TEST_P(CrashRecoveryShard, RecoveryLosesNothingBeyondLastSyncedEntry) {
  for (uint64_t seed : SeedBand(GetParam(), kSeedsPerShard)) {
    SCOPED_TRACE(StrFormat("seed=%llu (AVOC_CHAOS_SEED=%llu to reproduce)",
                           static_cast<unsigned long long>(seed),
                           static_cast<unsigned long long>(seed)));
    const RecoveryRun run = RunSchedule(seed);
    EXPECT_TRUE(run.ok) << run.failure;
  }
}

TEST_P(CrashRecoveryShard, SameSeedReplaysByteIdentically) {
  for (uint64_t seed : SeedBand(GetParam(), kSeedsPerShard)) {
    if (std::getenv("AVOC_CHAOS_SEED") == nullptr && seed % 5 != 0) continue;
    SCOPED_TRACE(StrFormat("seed=%llu", static_cast<unsigned long long>(seed)));
    const RecoveryRun first = RunSchedule(seed);
    const RecoveryRun second = RunSchedule(seed);
    ASSERT_TRUE(first.ok) << first.failure;
    ASSERT_TRUE(second.ok) << second.failure;
    EXPECT_EQ(first.phase1_world, second.phase1_world);
    EXPECT_EQ(first.phase2_world, second.phase2_world);
    EXPECT_EQ(first.reference, second.reference);
    EXPECT_EQ(first.recovered, second.recovered);
    EXPECT_EQ(first.final_state, second.final_state);
    EXPECT_EQ(first.recovered_points, second.recovered_points);
    EXPECT_FALSE(first.reference.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Bands, CrashRecoveryShard,
                         ::testing::Values(uint64_t{5000}, uint64_t{6000},
                                           uint64_t{7000}, uint64_t{8000}));

// The sweep must actually exercise torn tails — if every seed syncs
// everything, the recovery path is untested.
TEST(CrashRecoverySweep, ScheduleMixCoversTornAndCleanTails) {
  if (std::getenv("AVOC_CHAOS_SEED") != nullptr) GTEST_SKIP();
  size_t torn = 0;
  size_t clean = 0;
  size_t partial_loss = 0;
  for (uint64_t seed = 5000; seed < 5000 + kSeedsPerShard; ++seed) {
    const RecoveryRun run = RunSchedule(seed);
    ASSERT_TRUE(run.ok) << "seed " << seed << ": " << run.failure;
    if (run.truncated_tail) ++torn;
    if (run.recovered == run.reference) ++clean;
    if (run.recovered != run.reference) ++partial_loss;
  }
  EXPECT_GT(clean, 0u);
  EXPECT_GT(partial_loss, 0u);  // batched-fsync seeds really lose a tail
  (void)torn;
}

}  // namespace
}  // namespace avoc::runtime
