// Golden parity: the columnar result path (RoundView → CastVote(RoundSpan,
// VoteSink) → BatchTrace) must reproduce the legacy per-round-allocation
// path (RunOverTableLegacy) bit for bit — every scalar, every per-module
// column, on the paper's UC-1 and UC-2 fixtures and on degenerate
// all-suppressed batches.
#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/batch.h"
#include "sim/ble.h"
#include "sim/light.h"
#include "util/rng.h"

namespace avoc {
namespace {

using core::AlgorithmId;
using core::VoteResult;

void ExpectBitIdentical(const VoteResult& legacy, const VoteResult& trace,
                        size_t round) {
  ASSERT_EQ(legacy.value.has_value(), trace.value.has_value())
      << "round " << round;
  if (legacy.value.has_value()) {
    // Bit-for-bit, not within-epsilon.
    EXPECT_EQ(*legacy.value, *trace.value) << "round " << round;
  }
  EXPECT_EQ(legacy.outcome, trace.outcome) << "round " << round;
  EXPECT_EQ(legacy.status.code(), trace.status.code()) << "round " << round;
  EXPECT_EQ(legacy.used_clustering, trace.used_clustering)
      << "round " << round;
  EXPECT_EQ(legacy.had_majority, trace.had_majority) << "round " << round;
  EXPECT_EQ(legacy.present_count, trace.present_count) << "round " << round;
  EXPECT_EQ(legacy.weights, trace.weights) << "round " << round;
  EXPECT_EQ(legacy.agreement, trace.agreement) << "round " << round;
  EXPECT_EQ(legacy.history, trace.history) << "round " << round;
  EXPECT_EQ(legacy.excluded, trace.excluded) << "round " << round;
  EXPECT_EQ(legacy.eliminated, trace.eliminated) << "round " << round;
}

void ExpectParity(AlgorithmId id, const data::RoundTable& table,
                  const core::PresetParams& params = {}) {
  auto legacy_engine = core::MakeEngine(id, table.module_count(), params);
  auto trace_engine = core::MakeEngine(id, table.module_count(), params);
  ASSERT_TRUE(legacy_engine.ok());
  ASSERT_TRUE(trace_engine.ok());
  auto legacy = core::RunOverTableLegacy(*legacy_engine, table);
  auto trace = core::RunOverTable(*trace_engine, table);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(legacy->rounds.size(), trace->round_count());
  for (size_t r = 0; r < trace->round_count(); ++r) {
    ExpectBitIdentical(legacy->rounds[r], trace->MaterializeRound(r), r);
    // The outputs column agrees with the materialized value too.
    EXPECT_EQ(legacy->outputs[r], trace->output(r)) << "round " << r;
  }
}

TEST(TraceParityTest, Uc1LightScenarioAllAlgorithms) {
  sim::LightScenarioParams params;
  params.rounds = 300;
  const auto clean = sim::LightScenario(params).MakeReferenceTable();
  const auto faulty = sim::LightScenario(params).MakeFaultyTable();
  for (const AlgorithmId id : core::AllAlgorithms()) {
    SCOPED_TRACE(core::AlgorithmName(id));
    ExpectParity(id, clean);
    ExpectParity(id, faulty);
  }
}

TEST(TraceParityTest, Uc2BleScenarioWithMissingValues) {
  const auto dataset = sim::BleScenario().Generate();
  core::PresetParams preset;
  preset.scale = core::ThresholdScale::kAbsolute;
  preset.error = 6.0;
  preset.quorum_fraction = 0.2;
  for (const AlgorithmId id :
       {AlgorithmId::kAverage, AlgorithmId::kModuleElimination,
        AlgorithmId::kAvoc, AlgorithmId::kHybrid}) {
    SCOPED_TRACE(core::AlgorithmName(id));
    ExpectParity(id, dataset.stack_a, preset);
    ExpectParity(id, dataset.stack_b, preset);
  }
}

TEST(TraceParityTest, FortyEightModuleTableAllAlgorithms) {
  // Dozens-of-sensors regime (§1): 48 modules puts every preset well past
  // the sorted-agreement cutover and drives the batched block entry with
  // wide rounds.  Missing readings and duplicated values exercise the
  // presence gather and the sort's tie handling; the legacy per-round
  // path must stay bit-identical through all of it.
  constexpr size_t kModules = 48;
  Rng rng(11);
  data::RoundTable table = data::RoundTable::WithModuleCount(kModules);
  for (size_t r = 0; r < 120; ++r) {
    std::vector<std::optional<double>> row(kModules);
    for (size_t m = 0; m < kModules; ++m) {
      if (rng.NextDouble() < 0.05) continue;  // missing
      double value = 100.0 + rng.Gaussian(0.0, 2.0);
      if (m >= kModules - 9) value += 30.0;     // faulty camp
      if (rng.NextDouble() < 0.2 && m > 0) {    // exact duplicates
        value = 100.0 + static_cast<double>(m % 7);
      }
      row[m] = value;
    }
    ASSERT_TRUE(table.AppendRound(row).ok());
  }
  for (const AlgorithmId id : core::AllAlgorithms()) {
    SCOPED_TRACE(core::AlgorithmName(id));
    ExpectParity(id, table);
  }
  // Binary agreement over an absolute margin: the configuration the
  // O(N log N) sorted-window kernel serves at this module count.
  core::PresetParams absolute;
  absolute.scale = core::ThresholdScale::kAbsolute;
  absolute.error = 5.0;
  for (const AlgorithmId id :
       {AlgorithmId::kStandard, AlgorithmId::kModuleElimination}) {
    SCOPED_TRACE(std::string(core::AlgorithmName(id)) + "-abs");
    ExpectParity(id, table, absolute);
  }
}

TEST(TraceParityTest, AllSuppressedBatch) {
  // Quorum of 3 with one present module suppresses every round; the fault
  // path must stay bit-identical too (including the legacy defaults for
  // used_clustering / had_majority on fault rounds).
  data::RoundTable table({"a", "b", "c"});
  ASSERT_TRUE(table.AppendRound({{10.0}, std::nullopt, std::nullopt}).ok());
  ASSERT_TRUE(table.AppendRound({{10.1}, std::nullopt, std::nullopt}).ok());
  ASSERT_TRUE(table.AppendRound({{10.2}, std::nullopt, std::nullopt}).ok());
  core::EngineConfig config;
  config.quorum.min_count = 3;
  for (const auto policy :
       {core::NoQuorumPolicy::kEmitNothing, core::NoQuorumPolicy::kRevertLast,
        core::NoQuorumPolicy::kRaise}) {
    config.on_no_quorum = policy;
    auto legacy_engine = core::VotingEngine::Create(3, config);
    auto trace_engine = core::VotingEngine::Create(3, config);
    ASSERT_TRUE(legacy_engine.ok());
    ASSERT_TRUE(trace_engine.ok());
    auto legacy = core::RunOverTableLegacy(*legacy_engine, table);
    auto trace = core::RunOverTable(*trace_engine, table);
    ASSERT_TRUE(legacy.ok());
    ASSERT_TRUE(trace.ok());
    ASSERT_EQ(legacy->rounds.size(), trace->round_count());
    EXPECT_EQ(trace->voted_rounds(), 0u);
    for (size_t r = 0; r < trace->round_count(); ++r) {
      ExpectBitIdentical(legacy->rounds[r], trace->MaterializeRound(r), r);
    }
  }
}

TEST(TraceParityTest, RevertPolicyWithHistoryThenStarvation) {
  // Healthy rounds first so kRevertedLast has a last output to revert to,
  // then total starvation: exercises both fault branches of the emitter.
  data::RoundTable table = data::RoundTable::WithModuleCount(3);
  ASSERT_TRUE(table.AppendRound(std::vector<double>{5.0, 5.1, 4.9}).ok());
  ASSERT_TRUE(table.AppendRound(std::vector<double>{5.2, 5.0, 5.1}).ok());
  ASSERT_TRUE(
      table.AppendRound({std::nullopt, std::nullopt, std::nullopt}).ok());
  ASSERT_TRUE(
      table.AppendRound({std::nullopt, std::nullopt, std::nullopt}).ok());
  core::EngineConfig config;
  config.quorum.min_count = 2;
  config.on_no_quorum = core::NoQuorumPolicy::kRevertLast;
  auto legacy_engine = core::VotingEngine::Create(3, config);
  auto trace_engine = core::VotingEngine::Create(3, config);
  ASSERT_TRUE(legacy_engine.ok());
  ASSERT_TRUE(trace_engine.ok());
  auto legacy = core::RunOverTableLegacy(*legacy_engine, table);
  auto trace = core::RunOverTable(*trace_engine, table);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(trace.ok());
  for (size_t r = 0; r < trace->round_count(); ++r) {
    ExpectBitIdentical(legacy->rounds[r], trace->MaterializeRound(r), r);
  }
  EXPECT_EQ(trace->outcome(2), core::RoundOutcome::kRevertedLast);
}

}  // namespace
}  // namespace avoc
