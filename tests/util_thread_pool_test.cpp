#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace avoc::util {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WaitBlocksUntilSlowTasksFinish) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.Submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    done.store(true);
  });
  pool.Wait();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    pool.ParallelFor(20, [&counter](size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace avoc::util
