#include "core/batch.h"

#include <gtest/gtest.h>

namespace avoc::core {
namespace {

data::RoundTable SmallTable() {
  data::RoundTable table({"a", "b", "c"});
  EXPECT_TRUE(table.AppendRound({10.0, 10.2, 9.8}).ok());
  EXPECT_TRUE(table.AppendRound({10.1, 10.3, 9.9}).ok());
  EXPECT_TRUE(table.AppendRound({{10.0}, std::nullopt, {10.2}}).ok());
  return table;
}

TEST(BatchTest, RunsEveryRound) {
  auto batch = RunAlgorithm(AlgorithmId::kAverage, SmallTable());
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->round_count(), 3u);
  EXPECT_EQ(batch->Outputs().size(), 3u);
  EXPECT_EQ(batch->voted_rounds(), 3u);
  EXPECT_NEAR(*batch->output(0), 10.0, 1e-9);
  EXPECT_NEAR(*batch->output(2), 10.1, 1e-9);
}

TEST(BatchTest, ModuleCountMismatchRejected) {
  auto engine = MakeEngine(AlgorithmId::kAverage, 5);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(RunOverTable(*engine, SmallTable()).ok());
}

TEST(BatchTest, EngineStatePersistsAcrossRounds) {
  data::RoundTable table({"a", "b", "c"});
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(table.AppendRound({10.0, 10.2, 11.0}).ok());
  }
  // Absolute 0.5 margin: the outlier at 11.0 is the only module outside
  // the margin of the fused output.
  PresetParams params;
  params.error = 0.5;
  params.scale = ThresholdScale::kAbsolute;
  auto batch = RunAlgorithm(AlgorithmId::kModuleElimination, table, params);
  ASSERT_TRUE(batch.ok());
  // The chronic outlier gets eliminated from round 2 on.
  EXPECT_FALSE(batch->eliminated(0)[2]);
  for (size_t r = 1; r < 5; ++r) {
    EXPECT_TRUE(batch->eliminated(r)[2]) << "round " << r;
  }
}

// Builds a single-module trace whose per-round outputs match `outputs`
// (nullopt rounds become suppressed kNoOutput rounds).
BatchResult TraceOf(const std::vector<std::optional<double>>& outputs) {
  BatchResult batch(1);
  for (const auto& output : outputs) {
    VoteResult result;
    result.weights = {1.0};
    result.agreement = {1.0};
    result.history = {0.0};
    result.excluded = {false};
    result.eliminated = {false};
    if (output.has_value()) {
      result.value = *output;
      result.outcome = RoundOutcome::kVoted;
    } else {
      result.outcome = RoundOutcome::kNoOutput;
    }
    batch.Append(result);
  }
  return batch;
}

TEST(BatchTest, ContinuousOutputsFillGaps) {
  const BatchResult batch = TraceOf({std::nullopt, 5.0, std::nullopt, 7.0});
  const auto continuous = batch.ContinuousOutputs();
  EXPECT_EQ(continuous, (std::vector<double>{5.0, 5.0, 5.0, 7.0}));
}

TEST(BatchTest, ContinuousOutputsAllMissing) {
  // An all-suppressed series yields an empty continuation, not fabricated
  // zeros (which would poison series metrics like MAE against a truth).
  const BatchResult batch = TraceOf({std::nullopt, std::nullopt});
  EXPECT_TRUE(batch.ContinuousOutputs().empty());
}

TEST(BatchTest, ContinuousOutputsAllMissingFromEngine) {
  // End-to-end: a quorum of 3 over rounds with a single present module
  // suppresses every round, so the continuous series must come back empty.
  data::RoundTable table({"a", "b", "c"});
  ASSERT_TRUE(table.AppendRound({{10.0}, std::nullopt, std::nullopt}).ok());
  ASSERT_TRUE(table.AppendRound({{10.1}, std::nullopt, std::nullopt}).ok());
  EngineConfig config;
  config.quorum.min_count = 3;
  config.on_no_quorum = NoQuorumPolicy::kEmitNothing;
  auto engine = VotingEngine::Create(3, config);
  ASSERT_TRUE(engine.ok());
  auto batch = RunOverTable(*engine, table);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->voted_rounds(), 0u);
  ASSERT_EQ(batch->round_count(), 2u);
  EXPECT_FALSE(batch->output(0).has_value());
  EXPECT_TRUE(batch->ContinuousOutputs().empty());
}

TEST(BatchTest, ClusteredRoundsCounted) {
  auto cov = RunAlgorithm(AlgorithmId::kClusteringOnly, SmallTable());
  ASSERT_TRUE(cov.ok());
  EXPECT_EQ(cov->clustered_rounds(), 3u);
  auto avg = RunAlgorithm(AlgorithmId::kAverage, SmallTable());
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(avg->clustered_rounds(), 0u);
}

TEST(BatchTest, EmptyTableYieldsEmptyBatch) {
  data::RoundTable empty({"a", "b"});
  auto batch = RunAlgorithm(AlgorithmId::kAverage, empty);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
  EXPECT_TRUE(batch->ContinuousOutputs().empty());
}

TEST(BatchTest, PresetParamsReachTheEngine) {
  // With an absurdly small absolute threshold every candidate disagrees;
  // COV still votes but each value forms its own cluster.
  PresetParams params;
  params.error = 1e-9;
  params.scale = ThresholdScale::kAbsolute;
  auto batch = RunAlgorithm(AlgorithmId::kAverage, SmallTable(), params);
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch->had_majority(0));
}

}  // namespace
}  // namespace avoc::core
