// End-to-end VDX flow: definition file on disk -> registry -> voter ->
// middleware pipeline -> fused outputs, i.e. the full §6 "voter service"
// integration surface.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/batch.h"
#include "runtime/pipeline.h"
#include "sim/light.h"
#include "vdx/factory.h"
#include "vdx/registry.h"

namespace avoc {
namespace {

class VdxE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "avoc_vdx_e2e";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(VdxE2eTest, FileToVoterToPipeline) {
  // 1. An application ships a VDX definition file.
  {
    std::ofstream out(Path("app.json"));
    out << R"({
      "algorithm_name": "app-fusion",
      "quorum": "PERCENT",
      "quorum_percentage": 60,
      "exclusion": "STDDEV",
      "exclusion_threshold": 2.5,
      "history": "HYBRID",
      "params": {"error": 0.05, "soft_threshold": 2, "penalty": 0.3},
      "collation": "MEAN_NEAREST_NEIGHBOR",
      "bootstrapping": true
    })";
  }
  // 2. The voter service loads its spec directory.
  vdx::SpecRegistry registry;
  auto loaded = registry.LoadDirectory(dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1u);
  auto spec = registry.Get("app");
  ASSERT_TRUE(spec.ok());

  // 3. A voter is instantiated and wired into the middleware pipeline.
  auto voter = vdx::MakeVoter(*spec, 5);
  ASSERT_TRUE(voter.ok()) << voter.status().ToString();

  sim::LightScenarioParams params;
  params.rounds = 500;
  const auto table = sim::LightScenario(params).MakeFaultyTable();
  auto pipeline = runtime::Pipeline::FromTable(table, std::move(*voter));
  ASSERT_TRUE(pipeline.ok());
  pipeline->Run(table.round_count());

  // 4. The sink sees one fused output per round; the faulty E4 never
  // drags the output out of the healthy band.
  const auto outputs = pipeline->sink().outputs();
  ASSERT_EQ(outputs.size(), 500u);
  for (const auto& output : outputs) {
    ASSERT_TRUE(output.result.value.has_value());
    EXPECT_GT(*output.result.value, 17000.0);
    EXPECT_LT(*output.result.value, 20000.0);
  }
  EXPECT_TRUE(outputs[0].result.used_clustering);
}

TEST_F(VdxE2eTest, BuiltinRegistryDrivesComparison) {
  // The Fig. 5 comparison app flow: run every registered builtin on the
  // same dataset through the VDX factory.
  sim::LightScenarioParams params;
  params.rounds = 200;
  const auto table = sim::LightScenario(params).MakeReferenceTable();
  const vdx::SpecRegistry registry = vdx::SpecRegistry::WithBuiltins();
  for (const std::string& name : registry.Names()) {
    auto spec = registry.Get(name);
    ASSERT_TRUE(spec.ok());
    auto voter = vdx::MakeVoter(*spec, table.module_count());
    ASSERT_TRUE(voter.ok()) << name;
    auto batch = core::RunOverTable(*voter, table);
    ASSERT_TRUE(batch.ok()) << name;
    EXPECT_EQ(batch->voted_rounds(), 200u) << name;
  }
}

TEST_F(VdxE2eTest, SpecRoundTripsThroughDiskUnchanged) {
  const vdx::Spec original = vdx::ExportSpec(core::AlgorithmId::kAvoc);
  ASSERT_TRUE(vdx::WriteSpecFile(Path("avoc.json"), original).ok());
  auto loaded = vdx::ReadSpecFile(Path("avoc.json"));
  ASSERT_TRUE(loaded.ok());
  // Lowered configs must be equivalent (behavioural round-trip).
  auto config_a = vdx::ToEngineConfig(original);
  auto config_b = vdx::ToEngineConfig(*loaded);
  ASSERT_TRUE(config_a.ok());
  ASSERT_TRUE(config_b.ok());
  EXPECT_EQ(config_a->history.rule, config_b->history.rule);
  EXPECT_DOUBLE_EQ(config_a->agreement.error, config_b->agreement.error);
  EXPECT_EQ(config_a->collation, config_b->collation);
  EXPECT_EQ(config_a->clustering, config_b->clustering);
}

TEST_F(VdxE2eTest, FaultPolicyFromSpecControlsPipeline) {
  {
    std::ofstream out(Path("strict.json"));
    out << R"({
      "algorithm_name": "strict",
      "quorum": "PERCENT",
      "quorum_percentage": 100,
      "history": "STANDARD",
      "params": {"error": 0.05},
      "collation": "WEIGHTED_AVERAGE",
      "fault_policy": {"on_no_quorum": "EMIT_NOTHING"}
    })";
  }
  auto spec = vdx::ReadSpecFile(Path("strict.json"));
  ASSERT_TRUE(spec.ok());
  auto voter = vdx::MakeVoter(*spec, 3);
  ASSERT_TRUE(voter.ok());

  data::RoundTable table = data::RoundTable::WithModuleCount(3);
  ASSERT_TRUE(table.AppendRound(std::vector<double>{1.0, 1.0, 1.0}).ok());
  ASSERT_TRUE(table.AppendRound({{1.0}, std::nullopt, {1.0}}).ok());
  auto batch = core::RunOverTable(*voter, table);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->outcome(0), core::RoundOutcome::kVoted);
  EXPECT_EQ(batch->outcome(1), core::RoundOutcome::kNoOutput);
  EXPECT_FALSE(batch->output(1).has_value());
}

}  // namespace
}  // namespace avoc
