#include "obs/stage_metrics.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/algorithms.h"
#include "core/engine.h"
#include "core/vote_sink.h"
#include "obs/metrics.h"

namespace avoc::obs {
namespace {

constexpr size_t kModules = 3;

/// Minimal columnar receiver: hands out real columns, keeps nothing.
class DiscardSink final : public core::VoteSink {
 public:
  core::RoundColumns BeginRound(size_t module_count) override {
    weights_.resize(module_count);
    agreement_.resize(module_count);
    history_.resize(module_count);
    excluded_.resize(module_count);
    eliminated_.resize(module_count);
    return {weights_, agreement_, history_, excluded_, eliminated_};
  }
  void EndRound(const core::RoundScalars& /*scalars*/) override {}

 private:
  std::vector<double> weights_;
  std::vector<double> agreement_;
  std::vector<double> history_;
  std::vector<uint8_t> excluded_;
  std::vector<uint8_t> eliminated_;
};

MetricsObserverOptions EveryRound(const char* scope) {
  MetricsObserverOptions options;
  options.scope = scope;
  options.sample_every = 1;
  options.flush_every = 1;
  options.log_events = false;
  return options;
}

core::VotingEngine MustMakeEngine() {
  auto engine = core::MakeEngine(core::AlgorithmId::kAvoc, kModules);
  EXPECT_TRUE(engine.ok());
  return std::move(*engine);
}

TEST(ObsObserverTest, CountsVotedRoundsAndSamplesLatency) {
  Registry registry;
  MetricsObserver observer(registry, EveryRound("g"));
  core::VotingEngine engine = MustMakeEngine();
  engine.set_observer(&observer);
  DiscardSink sink;
  for (int r = 0; r < 10; ++r) {
    const std::array<double, kModules> values = {20.0, 20.1, 19.9};
    ASSERT_TRUE(engine.CastVote(values, sink).ok());
  }
  observer.Flush();
  EXPECT_EQ(observer.rounds_total().Value(), 10u);
  EXPECT_EQ(observer.voted_total().Value(), 10u);
  EXPECT_EQ(observer.error_total().Value(), 0u);
  EXPECT_EQ(observer.quorum_failures_total().Value(), 0u);
  EXPECT_EQ(observer.round_latency().count(), 10u);
  // Every stage histogram saw every sampled round.
  for (size_t s = 0; s < core::kStageNames.size(); ++s) {
    EXPECT_EQ(observer.stage_latency(s).count(), 10u)
        << core::kStageNames[s];
  }
  // The registry sees the same counts through the scrape path.
  EXPECT_EQ(registry.SumCounters("avoc_rounds_total"), 10u);
}

TEST(ObsObserverTest, LegacyAndColumnarPathsUpdateMetricsIdentically) {
  // Satellite pin: the observer hooks fire identically whether rounds go
  // through the legacy VoteResult path or the columnar sink path.
  Registry legacy_registry;
  Registry columnar_registry;
  MetricsObserver legacy_observer(legacy_registry, EveryRound("g"));
  MetricsObserver columnar_observer(columnar_registry, EveryRound("g"));
  core::VotingEngine legacy_engine = MustMakeEngine();
  core::VotingEngine columnar_engine = MustMakeEngine();
  legacy_engine.set_observer(&legacy_observer);
  columnar_engine.set_observer(&columnar_observer);

  DiscardSink sink;
  for (int r = 0; r < 20; ++r) {
    core::Round round(kModules);
    for (size_t m = 0; m < kModules; ++m) {
      // A drifting module 0 exercises exclusion/elimination; round 13
      // drops below quorum to exercise the fault counters on both paths.
      round[m] = (r == 13 && m > 0)
                     ? core::Reading{}
                     : core::Reading{20.0 + (m == 0 ? 3.0 : 0.1 * r)};
    }
    if (r == 13) round[0] = core::Reading{};
    ASSERT_TRUE(legacy_engine.CastVote(round).ok());      // legacy path
    ASSERT_TRUE(columnar_engine.CastVote(round, sink).ok());  // columnar
  }
  legacy_observer.Flush();
  columnar_observer.Flush();

  EXPECT_EQ(legacy_observer.rounds_total().Value(),
            columnar_observer.rounds_total().Value());
  EXPECT_EQ(legacy_observer.voted_total().Value(),
            columnar_observer.voted_total().Value());
  EXPECT_EQ(legacy_observer.reverted_total().Value(),
            columnar_observer.reverted_total().Value());
  EXPECT_EQ(legacy_observer.no_output_total().Value(),
            columnar_observer.no_output_total().Value());
  EXPECT_EQ(legacy_observer.excluded_modules_total().Value(),
            columnar_observer.excluded_modules_total().Value());
  EXPECT_EQ(legacy_observer.eliminated_modules_total().Value(),
            columnar_observer.eliminated_modules_total().Value());
  EXPECT_EQ(legacy_observer.clustered_rounds_total().Value(),
            columnar_observer.clustered_rounds_total().Value());
  EXPECT_EQ(legacy_observer.quorum_failures_total().Value(),
            columnar_observer.quorum_failures_total().Value());
  EXPECT_EQ(legacy_observer.majority_failures_total().Value(),
            columnar_observer.majority_failures_total().Value());
  EXPECT_EQ(legacy_observer.round_latency().count(),
            columnar_observer.round_latency().count());
  // The fault round was counted, and as a quorum failure.
  EXPECT_EQ(legacy_observer.rounds_total().Value(), 20u);
  EXPECT_EQ(legacy_observer.quorum_failures_total().Value(), 1u);
}

TEST(ObsObserverTest, QuorumShortRoundAttributedToQuorumStage) {
  Registry registry;
  MetricsObserver observer(registry, EveryRound("g"));
  core::VotingEngine engine = MustMakeEngine();
  engine.set_observer(&observer);
  DiscardSink sink;
  // 1 of 3 present is below ceil(0.5 * 3) = 2: the quorum policy fires
  // (revert-last with no prior output degrades to no-output).
  const core::Round round = {core::Reading{20.0}, core::Reading{},
                             core::Reading{}};
  ASSERT_TRUE(engine.CastVote(round, sink).ok());
  observer.Flush();
  EXPECT_EQ(observer.voted_total().Value(), 0u);
  EXPECT_EQ(observer.no_output_total().Value(), 1u);
  EXPECT_EQ(observer.quorum_failures_total().Value(), 1u);
  EXPECT_EQ(observer.majority_failures_total().Value(), 0u);
}

TEST(ObsObserverTest, SamplingPeriodLimitsLatencyRecords) {
  Registry registry;
  MetricsObserverOptions options = EveryRound("g");
  options.sample_every = 4;
  MetricsObserver observer(registry, options);
  core::VotingEngine engine = MustMakeEngine();
  engine.set_observer(&observer);
  DiscardSink sink;
  for (int r = 0; r < 16; ++r) {
    const std::array<double, kModules> values = {20.0, 20.1, 19.9};
    ASSERT_TRUE(engine.CastVote(values, sink).ok());
  }
  observer.Flush();
  // Counters are exact on every round; the clock is only sampled on the
  // first round plus every fourth after it.
  EXPECT_EQ(observer.rounds_total().Value(), 16u);
  EXPECT_LE(observer.round_latency().count(), 5u);
  EXPECT_GE(observer.round_latency().count(), 4u);
}

TEST(ObsObserverTest, HistoryCollapseDetectedFromCommittedColumns) {
  Registry registry;
  MetricsObserver observer(registry, EveryRound("g"));
  // Drive the hook directly with synthetic columns: an all-zero history
  // column is the §5 collapse state that forces a bootstrap re-cluster.
  std::array<double, kModules> weights{};
  std::array<double, kModules> agreement{};
  std::array<double, kModules> history{};
  std::array<uint8_t, kModules> excluded{};
  std::array<uint8_t, kModules> eliminated{};
  core::RoundColumns columns;
  columns.weights = weights;
  columns.agreement = agreement;
  columns.history = history;
  columns.excluded = excluded;
  columns.eliminated = eliminated;
  core::RoundScalars scalars;
  scalars.outcome = core::RoundOutcome::kVoted;
  scalars.has_value = true;
  scalars.value = 20.0;
  scalars.present_count = kModules;

  observer.OnRoundCommitted(0, columns, scalars);
  history[0] = 0.7;  // healthy history: no collapse
  observer.OnRoundCommitted(1, columns, scalars);
  observer.Flush();
  EXPECT_EQ(observer.history_collapse_total().Value(), 1u);
  EXPECT_EQ(observer.rounds_total().Value(), 2u);
}

TEST(ObsObserverTest, StageHooksGateFollowsSamplingSchedule) {
  Registry registry;
  MetricsObserverOptions options = EveryRound("g");
  options.sample_every = 8;
  MetricsObserver observer(registry, options);
  // The constructor leaves the gate up so the first round is timed (and
  // the quorum mirror runs); OnRoundCommitted lowers it until the next
  // scheduled sample.
  EXPECT_TRUE(observer.stage_hooks_enabled());
  EXPECT_FALSE(observer.wants_vote_result());

  core::VotingEngine engine = MustMakeEngine();
  engine.set_observer(&observer);
  DiscardSink sink;
  const std::array<double, kModules> values = {20.0, 20.1, 19.9};
  ASSERT_TRUE(engine.CastVote(values, sink).ok());
  EXPECT_FALSE(observer.stage_hooks_enabled());
  for (int r = 0; r < 7; ++r) {
    ASSERT_TRUE(engine.CastVote(values, sink).ok());
  }
  // Eight unsampled rounds have passed: the gate is up for the ninth.
  EXPECT_TRUE(observer.stage_hooks_enabled());
}

}  // namespace
}  // namespace avoc::obs
