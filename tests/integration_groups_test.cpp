// End-to-end UC-2 through the multi-group middleware: both beacon stacks
// run as named voter groups inside one VoterGroupManager, fed from the
// asynchronous-stream resampler, and the fused outputs drive the
// proximity decision — the full "voter service on an edge node" picture.
#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithms.h"
#include "core/batch.h"
#include "data/stream.h"
#include "runtime/group_manager.h"
#include "sim/ble.h"
#include "stats/ambiguity.h"
#include "vdx/factory.h"

namespace avoc {
namespace {

core::PresetParams BlePreset() {
  core::PresetParams params;
  params.scale = core::ThresholdScale::kAbsolute;
  params.error = 6.0;
  params.quorum_fraction = 0.2;
  return params;
}

TEST(GroupsIntegrationTest, TwoStacksThroughTheManager) {
  const auto dataset = sim::BleScenario().Generate();
  const vdx::Spec spec =
      vdx::ExportSpec(core::AlgorithmId::kAvoc, BlePreset());

  runtime::VoterGroupManager manager;
  ASSERT_TRUE(manager.AddGroupFromSpec("stack-a", spec, 9).ok());
  ASSERT_TRUE(manager.AddGroupFromSpec("stack-b", spec, 9).ok());

  for (size_t r = 0; r < dataset.stack_a.round_count(); ++r) {
    for (size_t m = 0; m < 9; ++m) {
      if (dataset.stack_a.At(r, m).has_value()) {
        ASSERT_TRUE(
            manager.Submit("stack-a", m, r, *dataset.stack_a.At(r, m)).ok());
      }
      if (dataset.stack_b.At(r, m).has_value()) {
        ASSERT_TRUE(
            manager.Submit("stack-b", m, r, *dataset.stack_b.At(r, m)).ok());
      }
    }
    manager.CloseRoundAll(r);
  }

  const auto outputs_a = (*manager.sink("stack-a"))->outputs();
  const auto outputs_b = (*manager.sink("stack-b"))->outputs();
  ASSERT_EQ(outputs_a.size(), 297u);
  ASSERT_EQ(outputs_b.size(), 297u);

  // Middleware path must equal the direct batch path bit-for-bit.
  auto direct =
      core::RunAlgorithm(core::AlgorithmId::kAvoc, dataset.stack_a,
                         BlePreset());
  ASSERT_TRUE(direct.ok());
  for (size_t r = 0; r < 297; ++r) {
    const auto direct_output = direct->output(r);
    ASSERT_EQ(outputs_a[r].result.value.has_value(),
              direct_output.has_value());
    if (direct_output.has_value()) {
      EXPECT_DOUBLE_EQ(*outputs_a[r].result.value, *direct_output);
    }
  }

  // Proximity decision: start near A, end near B.
  auto fused = [](const std::vector<runtime::OutputMessage>& outputs,
                  size_t r) {
    return outputs[r].result.value;
  };
  size_t early_a_wins = 0;
  size_t late_b_wins = 0;
  for (size_t r = 0; r < 50; ++r) {
    if (fused(outputs_a, r).has_value() && fused(outputs_b, r).has_value() &&
        *fused(outputs_a, r) > *fused(outputs_b, r)) {
      ++early_a_wins;
    }
    const size_t rl = 296 - r;
    if (fused(outputs_a, rl).has_value() &&
        fused(outputs_b, rl).has_value() &&
        *fused(outputs_b, rl) > *fused(outputs_a, rl)) {
      ++late_b_wins;
    }
  }
  EXPECT_GT(early_a_wins, 40u);
  EXPECT_GT(late_b_wins, 40u);
}

TEST(GroupsIntegrationTest, AsynchronousStreamsFeedTheVoter) {
  // Simulate 5 sensors reporting asynchronously with jitter and loss,
  // resample into rounds, and fuse: the fused series must track the
  // ground-truth ramp despite one sensor being completely wrong.
  Rng rng(77);
  std::vector<data::SampleStream> streams;
  for (size_t m = 0; m < 5; ++m) {
    streams.emplace_back("s" + std::to_string(m));
  }
  auto truth = [](double t) { return 100.0 + 5.0 * t; };
  for (size_t m = 0; m < 5; ++m) {
    double t = rng.Uniform(0.0, 0.3);
    while (t < 30.0) {
      if (!rng.Bernoulli(0.15)) {  // 15% packet loss
        double value = truth(t) + rng.Gaussian(0.0, 1.0);
        if (m == 4) value += 500.0;  // broken sensor
        streams[m].Push(t, value);
      }
      t += rng.Uniform(0.7, 1.3);  // ~1 Hz with jitter
    }
  }
  data::ResampleOptions options;
  options.period = 1.0;
  options.start = 0.0;
  options.rounds = 30;
  options.method = data::ResampleMethod::kNearest;
  auto table = data::ResampleToRounds(streams, options);
  ASSERT_TRUE(table.ok());

  core::PresetParams preset;
  preset.scale = core::ThresholdScale::kAbsolute;
  preset.error = 10.0;
  preset.quorum_fraction = 0.4;
  auto batch = core::RunAlgorithm(core::AlgorithmId::kAvoc, *table, preset);
  ASSERT_TRUE(batch.ok());
  size_t good_rounds = 0;
  for (size_t r = 0; r < 30; ++r) {
    const auto output = batch->output(r);
    if (!output.has_value()) continue;
    // Resampling tolerates up to one period of skew: compare loosely.
    if (std::abs(*output - truth(static_cast<double>(r))) < 15.0) {
      ++good_rounds;
    }
  }
  EXPECT_GT(good_rounds, 25u);
}

}  // namespace
}  // namespace avoc
