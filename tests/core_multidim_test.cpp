#include "core/multidim.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"

namespace avoc::core {
namespace {

MultiDimConfig HybridConfig() {
  MultiDimConfig config;
  config.scalar = MakeConfig(AlgorithmId::kHybrid);
  return config;
}

MultiDimEngine MustCreate(size_t modules, size_t dims,
                          const MultiDimConfig& config) {
  auto engine = MultiDimEngine::Create(modules, dims, config);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

std::vector<VectorReading> Round(
    std::initializer_list<std::vector<double>> vectors) {
  std::vector<VectorReading> round;
  for (const auto& v : vectors) round.emplace_back(v);
  return round;
}

TEST(MultiDimTest, CreateValidates) {
  EXPECT_FALSE(MultiDimEngine::Create(3, 0, HybridConfig()).ok());
  EXPECT_FALSE(MultiDimEngine::Create(0, 2, HybridConfig()).ok());
  MultiDimConfig bad = HybridConfig();
  bad.bandwidth_fraction = 0.0;
  EXPECT_FALSE(MultiDimEngine::Create(3, 2, bad).ok());
}

TEST(MultiDimTest, ScalarClusteringForcedOff) {
  // §5: per-dimension voting "without incorporating the clustering".
  MultiDimConfig config;
  config.scalar = MakeConfig(AlgorithmId::kAvoc);  // asks for bootstrap
  MultiDimEngine engine = MustCreate(4, 2, config);
  auto result = engine.CastVote(Round(
      {{10.0, 1.0}, {10.1, 1.1}, {9.9, 0.9}, {60.0, 7.0}}));
  ASSERT_TRUE(result.ok());
  // No scalar clustering happened in any dimension.
  for (const VoteResult& dim : result->dimensions) {
    EXPECT_FALSE(dim.used_clustering);
  }
}

TEST(MultiDimTest, FusesEachDimensionIndependently) {
  MultiDimConfig config;
  config.scalar = MakeConfig(AlgorithmId::kAverage);
  MultiDimEngine engine = MustCreate(3, 2, config);
  auto result =
      engine.CastVote(Round({{1.0, 100.0}, {2.0, 200.0}, {3.0, 300.0}}));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->value.has_value());
  EXPECT_DOUBLE_EQ((*result->value)[0], 2.0);
  EXPECT_DOUBLE_EQ((*result->value)[1], 200.0);
  EXPECT_EQ(result->outcome, RoundOutcome::kVoted);
  EXPECT_EQ(result->dimensions.size(), 2u);
}

TEST(MultiDimTest, ArityAndDimensionValidation) {
  MultiDimEngine engine = MustCreate(3, 2, HybridConfig());
  // Wrong module count.
  EXPECT_FALSE(engine.CastVote(Round({{1.0, 2.0}, {1.0, 2.0}})).ok());
  // Wrong dimension count in one vector.
  EXPECT_FALSE(
      engine.CastVote(Round({{1.0, 2.0}, {1.0}, {1.0, 2.0}})).ok());
}

TEST(MultiDimTest, MissingModulesPropagateToEveryDimension) {
  MultiDimConfig config;
  config.scalar = MakeConfig(AlgorithmId::kAverage);
  MultiDimEngine engine = MustCreate(3, 2, config);
  std::vector<VectorReading> round = {std::vector<double>{1.0, 10.0},
                                      std::nullopt,
                                      std::vector<double>{3.0, 30.0}};
  auto result = engine.CastVote(round);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->value.has_value());
  EXPECT_DOUBLE_EQ((*result->value)[0], 2.0);
  EXPECT_DOUBLE_EQ((*result->value)[1], 20.0);
  EXPECT_EQ(result->dimensions[0].present_count, 2u);
}

TEST(MultiDimTest, OutcomeIsWorstAcrossDimensions) {
  MultiDimConfig config;
  config.scalar = MakeConfig(AlgorithmId::kAverage);
  config.scalar.quorum.fraction = 1.0;
  config.scalar.on_no_quorum = NoQuorumPolicy::kEmitNothing;
  MultiDimEngine engine = MustCreate(2, 2, config);
  std::vector<VectorReading> starved = {std::vector<double>{1.0, 10.0},
                                        std::nullopt};
  auto result = engine.CastVote(starved);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kNoOutput);
  EXPECT_FALSE(result->value.has_value());
}

TEST(MultiDimTest, PerDimensionHistoryTracksPerDimensionFaults) {
  // Module 2 is faulty only in dimension 1; dimension 0 trusts it fully.
  MultiDimEngine engine = MustCreate(3, 2, HybridConfig());
  for (int r = 0; r < 5; ++r) {
    auto result = engine.CastVote(
        Round({{10.0, 1.0}, {10.1, 1.05}, {10.05, 9.0}}));
    ASSERT_TRUE(result.ok());
  }
  EXPECT_DOUBLE_EQ(engine.history(0).record(2), 1.0);
  EXPECT_LT(engine.history(1).record(2), 0.5);
}

TEST(MultiDimTest, MeanShiftBootstrapExcludesVectorOutlier) {
  MultiDimConfig config = HybridConfig();
  config.bootstrap = VectorBootstrap::kMeanShift;
  config.bandwidth_fraction = 0.05;
  MultiDimEngine engine = MustCreate(4, 2, config);
  // Module 3 is wrong in *both* dimensions; the vector clusterer catches
  // it in round 1, before any history exists.
  auto result = engine.CastVote(Round(
      {{100.0, 50.0}, {101.0, 50.5}, {99.5, 49.5}, {160.0, 80.0}}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_vector_clustering);
  EXPECT_TRUE(result->vector_outliers[3]);
  ASSERT_TRUE(result->value.has_value());
  EXPECT_NEAR((*result->value)[0], 100.0, 1.5);
  EXPECT_NEAR((*result->value)[1], 50.0, 1.0);
}

TEST(MultiDimTest, MeanShiftBootstrapOnlyGatesTheFirstRound) {
  MultiDimConfig config = HybridConfig();
  config.bootstrap = VectorBootstrap::kMeanShift;
  MultiDimEngine engine = MustCreate(4, 2, config);
  auto first = engine.CastVote(Round(
      {{100.0, 50.0}, {101.0, 50.5}, {99.5, 49.5}, {160.0, 80.0}}));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->used_vector_clustering);
  auto second = engine.CastVote(Round(
      {{100.0, 50.0}, {101.0, 50.5}, {99.5, 49.5}, {160.0, 80.0}}));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->used_vector_clustering);
}

TEST(MultiDimTest, NoBootstrapWhenVectorsAgree) {
  MultiDimConfig config = HybridConfig();
  config.bootstrap = VectorBootstrap::kMeanShift;
  MultiDimEngine engine = MustCreate(3, 2, config);
  auto result = engine.CastVote(Round(
      {{100.0, 50.0}, {100.5, 50.2}, {99.8, 49.9}}));
  ASSERT_TRUE(result.ok());
  // Mean-shift found a single mode: no outliers flagged.
  for (const bool outlier : result->vector_outliers) {
    EXPECT_FALSE(outlier);
  }
}

TEST(MultiDimTest, ResetClearsEveryDimension) {
  MultiDimEngine engine = MustCreate(3, 2, HybridConfig());
  ASSERT_TRUE(
      engine.CastVote(Round({{10.0, 1.0}, {10.1, 1.0}, {50.0, 9.0}})).ok());
  EXPECT_FALSE(engine.history(1).AllRecordsAre(1.0));
  engine.Reset();
  EXPECT_TRUE(engine.history(0).AllRecordsAre(1.0));
  EXPECT_TRUE(engine.history(1).AllRecordsAre(1.0));
}

}  // namespace
}  // namespace avoc::core
