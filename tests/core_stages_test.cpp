#include "core/stages.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/engine.h"
#include "core/explain.h"

namespace avoc::core {
namespace {

const std::vector<std::string> kExpectedOrder = {
    "quorum",     "exclusion", "clustering", "agreement", "elimination",
    "weighting",  "collation", "majority",   "history"};

TEST(StagePipelineTest, CompilesNineStagesInDeclaredOrder) {
  auto engine = MakeEngine(AlgorithmId::kAvoc, 3);
  ASSERT_TRUE(engine.ok());
  const StagePipeline& pipeline = engine->stage_pipeline();
  EXPECT_EQ(pipeline.size(), 9u);
  const auto names = pipeline.StageNames();
  ASSERT_EQ(names.size(), kExpectedOrder.size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], kExpectedOrder[i]) << "stage " << i;
  }
}

TEST(StagePipelineTest, EngineCopiesShareTheCompiledChain) {
  auto engine = MakeEngine(AlgorithmId::kHybrid, 4);
  ASSERT_TRUE(engine.ok());
  const VotingEngine copy = *engine;
  // The chain is immutable and stateless, so a copy reuses it instead of
  // recompiling.
  EXPECT_EQ(&copy.stage_pipeline(), &engine->stage_pipeline());
}

TEST(StageObserverTest, SeesEveryStageOfACleanRound) {
  auto engine = MakeEngine(AlgorithmId::kStandard, 3);
  ASSERT_TRUE(engine.ok());
  StageTraceObserver trace;
  engine->set_observer(&trace);
  auto result = engine->CastVote(std::vector<double>{10.0, 10.1, 9.9});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kVoted);
  EXPECT_EQ(trace.round_index(), 1u);
  ASSERT_EQ(trace.entries().size(), kExpectedOrder.size());
  for (size_t i = 0; i < trace.entries().size(); ++i) {
    EXPECT_EQ(trace.entries()[i].stage, kExpectedOrder[i]) << "stage " << i;
    EXPECT_FALSE(trace.entries()[i].faulted);
  }
  // After weighting, the round carries positive weight mass.
  EXPECT_GT(trace.entries()[5].weight_sum, 0.0);
  // Detaching stops observation.
  engine->set_observer(nullptr);
  ASSERT_TRUE(engine->CastVote(std::vector<double>{10.0, 10.1, 9.9}).ok());
  EXPECT_EQ(trace.round_index(), 1u);
}

TEST(StageObserverTest, FaultShortCircuitSkipsLaterStages) {
  EngineConfig config;
  config.quorum.min_count = 3;
  config.on_no_quorum = NoQuorumPolicy::kEmitNothing;
  auto engine = VotingEngine::Create(3, config);
  ASSERT_TRUE(engine.ok());
  StageTraceObserver trace;
  engine->set_observer(&trace);
  Round round = {std::optional<double>(10.0), std::nullopt, std::nullopt};
  auto result = engine->CastVote(round);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kNoOutput);
  // Only the quorum stage ran; the fault short-circuit skipped the rest.
  ASSERT_EQ(trace.entries().size(), 1u);
  EXPECT_EQ(trace.entries()[0].stage, "quorum");
  EXPECT_TRUE(trace.entries()[0].faulted);
}

TEST(StageObserverTest, RoundLifecycleHooksFire) {
  struct CountingObserver : StageObserver {
    size_t begins = 0;
    size_t stages = 0;
    size_t ends = 0;
    std::optional<RoundOutcome> last_outcome;
    void OnRoundBegin(size_t, const VoteContext&) override { ++begins; }
    void OnStageDone(std::string_view, const VoteContext&) override {
      ++stages;
    }
    void OnRoundEnd(size_t, const VoteResult& result) override {
      ++ends;
      last_outcome = result.outcome;
    }
  };
  auto engine = MakeEngine(AlgorithmId::kAverage, 2);
  ASSERT_TRUE(engine.ok());
  CountingObserver observer;
  engine->set_observer(&observer);
  ASSERT_TRUE(engine->CastVote(std::vector<double>{1.0, 1.2}).ok());
  ASSERT_TRUE(engine->CastVote(std::vector<double>{1.1, 1.3}).ok());
  EXPECT_EQ(observer.begins, 2u);
  EXPECT_EQ(observer.ends, 2u);
  EXPECT_EQ(observer.stages, 2 * kExpectedOrder.size());
  ASSERT_TRUE(observer.last_outcome.has_value());
  EXPECT_EQ(*observer.last_outcome, RoundOutcome::kVoted);
}

TEST(StageObserverTest, FormatStageTraceRendersEveryRow) {
  auto engine = MakeEngine(AlgorithmId::kAvoc, 3);
  ASSERT_TRUE(engine.ok());
  StageTraceObserver trace;
  engine->set_observer(&trace);
  ASSERT_TRUE(engine->CastVote(std::vector<double>{5.0, 5.1, 4.9}).ok());
  const std::string rendered = FormatStageTrace(trace.entries());
  for (const std::string& name : kExpectedOrder) {
    EXPECT_NE(rendered.find(name), std::string::npos) << name;
  }
  // The AVOC bootstrap round clusters (all records start at 1).
  EXPECT_NE(rendered.find("clustered"), std::string::npos);
}

// --- RestoreHistory / Reset round-trip through the stage pipeline ----------

TEST(HistoryRestoreTest, RestoredLedgerDoesNotRetriggerBootstrap) {
  // AVOC gates clustering on a pristine ledger (all records 1: "new set").
  auto engine = MakeEngine(AlgorithmId::kAvoc, 3);
  ASSERT_TRUE(engine.ok());
  auto fresh = engine->CastVote(std::vector<double>{10.0, 10.1, 9.9});
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->used_clustering) << "bootstrap round must cluster";

  // A restored mid-life ledger is neither a new set nor a collapse, so
  // the clustering stage must stay closed after a datastore round-trip.
  const std::vector<double> records = {0.9, 0.7, 0.8};
  ASSERT_TRUE(engine->RestoreHistory(records, /*rounds=*/25).ok());
  EXPECT_EQ(engine->history().round_count(), 25u);
  auto restored = engine->CastVote(std::vector<double>{10.0, 10.1, 9.9});
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->outcome, RoundOutcome::kVoted);
  EXPECT_FALSE(restored->used_clustering)
      << "restored history must not look like a new set";

  // Reset forgets the deployment: the next round bootstraps again.
  engine->Reset();
  EXPECT_EQ(engine->round_index(), 0u);
  auto reset_round = engine->CastVote(std::vector<double>{10.0, 10.1, 9.9});
  ASSERT_TRUE(reset_round.ok());
  EXPECT_TRUE(reset_round->used_clustering)
      << "reset must re-arm the bootstrap gate";
}

TEST(HistoryRestoreTest, RestoreRoundTripsThroughStoreSnapshot) {
  // Run an engine for a while, snapshot its ledger, restore it into a
  // fresh engine: the two engines must then vote identically.
  auto source = MakeEngine(AlgorithmId::kAvoc, 3);
  ASSERT_TRUE(source.ok());
  for (int r = 0; r < 10; ++r) {
    ASSERT_TRUE(
        source->CastVote(std::vector<double>{10.0, 10.2, 12.0}).ok());
  }
  const std::vector<double> snapshot(source->history().records().begin(),
                                     source->history().records().end());

  auto restored = MakeEngine(AlgorithmId::kAvoc, 3);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(
      restored
          ->RestoreHistory(snapshot, source->history().round_count())
          .ok());
  // Seed the previous-output dependence identically before comparing.
  auto a = source->CastVote(std::vector<double>{10.1, 10.3, 12.1});
  auto b = restored->CastVote(std::vector<double>{10.1, 10.3, 12.1});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->value.has_value());
  ASSERT_TRUE(b->value.has_value());
  EXPECT_DOUBLE_EQ(*a->value, *b->value);
  EXPECT_EQ(a->used_clustering, b->used_clustering);
  EXPECT_EQ(a->weights, b->weights);
}

}  // namespace
}  // namespace avoc::core
