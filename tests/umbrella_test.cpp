// The umbrella header must compile standalone and expose the whole public
// surface; this test is the one-include smoke path a new application hits.
#include "avoc.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaTest, VersionIsCoherent) {
  EXPECT_EQ(avoc::kVersionMajor, 1);
  const std::string expected = std::to_string(avoc::kVersionMajor) + "." +
                               std::to_string(avoc::kVersionMinor) + "." +
                               std::to_string(avoc::kVersionPatch);
  EXPECT_EQ(expected, avoc::kVersionString);
}

TEST(UmbrellaTest, EndToEndThroughTheUmbrellaOnly) {
  // Everything an application needs, via one include: parse a VDX spec,
  // build a voter, fuse a faulty round.
  auto spec = avoc::vdx::Spec::Parse(R"({
    "algorithm_name": "AVOC",
    "history": "HYBRID",
    "params": {"error": 0.05, "soft_threshold": 2},
    "collation": "MEAN_NEAREST_NEIGHBOR",
    "bootstrapping": true
  })");
  ASSERT_TRUE(spec.ok());
  auto voter = avoc::vdx::MakeVoter(*spec, 5);
  ASSERT_TRUE(voter.ok());
  auto result = voter->CastVote(
      std::vector<double>{18400, 18520, 18470, 18390, 24800});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_clustering);
  EXPECT_NEAR(*result->value, 18450.0, 80.0);
}

}  // namespace
