#include "stats/quantile.h"

#include <gtest/gtest.h>

namespace avoc::stats {
namespace {

TEST(QuantileTest, MedianOddAndEven) {
  const std::vector<double> odd = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(*Median(odd), 2.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(*Median(even), 2.5);
}

TEST(QuantileTest, ExtremesAreMinMax) {
  const std::vector<double> data = {5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(*Quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*Quantile(data, 1.0), 9.0);
}

TEST(QuantileTest, LinearInterpolationType7) {
  const std::vector<double> data = {1.0, 2.0, 3.0, 4.0};
  // h = 3 * 0.25 = 0.75 -> 1 + 0.75*(2-1) = 1.75 (numpy default).
  EXPECT_DOUBLE_EQ(*Quantile(data, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(*Quantile(data, 0.75), 3.25);
}

TEST(QuantileTest, SingleElement) {
  const std::vector<double> data = {7.0};
  EXPECT_DOUBLE_EQ(*Quantile(data, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(*Quantile(data, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(*Quantile(data, 1.0), 7.0);
}

TEST(QuantileTest, RejectsEmptyAndBadQ) {
  const std::vector<double> empty;
  EXPECT_FALSE(Quantile(empty, 0.5).ok());
  const std::vector<double> data = {1.0};
  EXPECT_FALSE(Quantile(data, -0.1).ok());
  EXPECT_FALSE(Quantile(data, 1.1).ok());
}

TEST(QuantileTest, InputOrderIrrelevant) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> b = {5.0, 3.0, 1.0, 4.0, 2.0};
  for (const double q : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(*Quantile(a, q), *Quantile(b, q));
  }
}

TEST(QuantilesTest, MultiQuantileMatchesSingle) {
  const std::vector<double> data = {8.0, 6.0, 7.0, 5.0, 3.0, 0.0, 9.0};
  const std::vector<double> qs = {0.1, 0.5, 0.9};
  const auto multi = Quantiles(data, qs);
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(multi->size(), 3u);
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ((*multi)[i], *Quantile(data, qs[i]));
  }
}

TEST(QuantilesTest, RejectsBadInputs) {
  const std::vector<double> data = {1.0};
  const std::vector<double> bad_q = {0.5, 2.0};
  EXPECT_FALSE(Quantiles(data, bad_q).ok());
  const std::vector<double> empty;
  const std::vector<double> ok_q = {0.5};
  EXPECT_FALSE(Quantiles(empty, ok_q).ok());
}

TEST(MadTest, KnownValues) {
  // median = 3, |x - 3| = {2,1,0,1,2} -> MAD = 1.
  const std::vector<double> data = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(*MedianAbsoluteDeviation(data), 1.0);
}

TEST(MadTest, RobustToOneOutlier) {
  const std::vector<double> clean = {10.0, 11.0, 12.0, 13.0, 14.0};
  std::vector<double> polluted = clean;
  polluted.back() = 1e6;
  EXPECT_NEAR(*MedianAbsoluteDeviation(polluted),
              *MedianAbsoluteDeviation(clean), 1.0);
}

TEST(MadTest, ZeroForConstantData) {
  const std::vector<double> data = {4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(*MedianAbsoluteDeviation(data), 0.0);
}

}  // namespace
}  // namespace avoc::stats
