#include "util/strings.h"

#include <gtest/gtest.h>

namespace avoc {
namespace {

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  abc  "), "abc");
  EXPECT_EQ(TrimWhitespace("\t\nabc\r "), "abc");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
}

TEST(TrimWhitespaceTest, AllWhitespaceBecomesEmpty) {
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(TrimWhitespaceTest, PreservesInnerWhitespace) {
  EXPECT_EQ(TrimWhitespace(" a b "), "a b");
}

TEST(SplitStringTest, SplitsOnSeparator) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitStringTest, KeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitString(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitStringTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(JoinStringsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(SplitJoinTest, RoundTrips) {
  const std::string original = "x,y,,z";
  EXPECT_EQ(JoinStrings(SplitString(original, ','), ","), original);
}

TEST(AsciiCaseTest, LowerAndUpper) {
  EXPECT_EQ(AsciiToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(AsciiToUpper("MiXeD 123"), "MIXED 123");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(EndsWith("data.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("  42 "), 42.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("1.5 2.5").ok());
}

TEST(ParseIntTest, ParsesValidIntegers) {
  EXPECT_EQ(*ParseInt("123"), 123);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_EQ(*ParseInt(" 0 "), 0);
}

TEST(ParseIntTest, RejectsNonIntegers) {
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("ten").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999").ok());  // overflow
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, HandlesLongOutput) {
  const std::string long_string(500, 'a');
  EXPECT_EQ(StrFormat("%s", long_string.c_str()).size(), 500u);
}

}  // namespace
}  // namespace avoc
