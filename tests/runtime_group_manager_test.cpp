#include "runtime/group_manager.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "vdx/factory.h"

namespace avoc::runtime {
namespace {

core::VotingEngine AverageEngine(size_t modules) {
  auto engine = core::MakeEngine(core::AlgorithmId::kAverage, modules);
  EXPECT_TRUE(engine.ok());
  return std::move(*engine);
}

TEST(GroupManagerTest, AddAndListGroups) {
  VoterGroupManager manager;
  ASSERT_TRUE(manager.AddGroup("stack-a", AverageEngine(3)).ok());
  ASSERT_TRUE(manager.AddGroup("stack-b", AverageEngine(3)).ok());
  EXPECT_EQ(manager.group_count(), 2u);
  EXPECT_TRUE(manager.HasGroup("stack-a"));
  EXPECT_FALSE(manager.HasGroup("stack-c"));
  EXPECT_EQ(manager.GroupNames(),
            (std::vector<std::string>{"stack-a", "stack-b"}));
}

TEST(GroupManagerTest, RejectsDuplicatesAndEmptyNames) {
  VoterGroupManager manager;
  ASSERT_TRUE(manager.AddGroup("g", AverageEngine(2)).ok());
  EXPECT_FALSE(manager.AddGroup("g", AverageEngine(2)).ok());
  EXPECT_FALSE(manager.AddGroup("", AverageEngine(2)).ok());
}

TEST(GroupManagerTest, RoutesReadingsToTheRightGroup) {
  VoterGroupManager manager;
  ASSERT_TRUE(manager.AddGroup("a", AverageEngine(2)).ok());
  ASSERT_TRUE(manager.AddGroup("b", AverageEngine(2)).ok());
  // Complete round 0 of group a; group b gets nothing.
  ASSERT_TRUE(manager.Submit("a", 0, 0, 10.0).ok());
  ASSERT_TRUE(manager.Submit("a", 1, 0, 20.0).ok());
  auto sink_a = manager.sink("a");
  auto sink_b = manager.sink("b");
  ASSERT_TRUE(sink_a.ok());
  ASSERT_TRUE(sink_b.ok());
  EXPECT_EQ((*sink_a)->output_count(), 1u);
  EXPECT_EQ((*sink_b)->output_count(), 0u);
  EXPECT_DOUBLE_EQ(*(*sink_a)->last_value(), 15.0);
}

TEST(GroupManagerTest, SubmitValidatesGroupAndModule) {
  VoterGroupManager manager;
  ASSERT_TRUE(manager.AddGroup("g", AverageEngine(2)).ok());
  EXPECT_FALSE(manager.Submit("ghost", 0, 0, 1.0).ok());
  EXPECT_FALSE(manager.Submit("g", 5, 0, 1.0).ok());
}

TEST(GroupManagerTest, CloseRoundFlushesPartialRounds) {
  VoterGroupManager manager;
  ASSERT_TRUE(manager.AddGroup("g", AverageEngine(3)).ok());
  ASSERT_TRUE(manager.Submit("g", 0, 0, 9.0).ok());
  ASSERT_TRUE(manager.Submit("g", 1, 0, 11.0).ok());
  ASSERT_TRUE(manager.CloseRound("g", 0).ok());
  auto sink = manager.sink("g");
  ASSERT_TRUE(sink.ok());
  ASSERT_EQ((*sink)->output_count(), 1u);
  const auto outputs = (*sink)->outputs();
  EXPECT_EQ(outputs[0].result.present_count, 2u);
  EXPECT_DOUBLE_EQ(*outputs[0].result.value, 10.0);
  EXPECT_FALSE(manager.CloseRound("ghost", 0).ok());
}

TEST(GroupManagerTest, CloseRoundAllAffectsEveryGroup) {
  VoterGroupManager manager;
  ASSERT_TRUE(manager.AddGroup("a", AverageEngine(2)).ok());
  ASSERT_TRUE(manager.AddGroup("b", AverageEngine(2)).ok());
  ASSERT_TRUE(manager.Submit("a", 0, 0, 5.0).ok());
  ASSERT_TRUE(manager.Submit("b", 0, 0, 7.0).ok());
  manager.CloseRoundAll(0);
  EXPECT_EQ((*manager.sink("a"))->output_count(), 1u);
  EXPECT_EQ((*manager.sink("b"))->output_count(), 1u);
}

TEST(GroupManagerTest, GroupsFromVdxSpecs) {
  VoterGroupManager manager;
  const vdx::Spec spec = vdx::ExportSpec(core::AlgorithmId::kAvoc);
  ASSERT_TRUE(manager.AddGroupFromSpec("shelf-1", spec, 5).ok());
  for (size_t m = 0; m < 5; ++m) {
    const double value = m == 4 ? 60.0 : 10.0 + 0.1 * static_cast<double>(m);
    ASSERT_TRUE(manager.Submit("shelf-1", m, 0, value).ok());
  }
  auto sink = manager.sink("shelf-1");
  ASSERT_TRUE(sink.ok());
  ASSERT_EQ((*sink)->output_count(), 1u);
  const auto outputs = (*sink)->outputs();
  EXPECT_TRUE(outputs[0].result.used_clustering);  // AVOC bootstrap fired
  EXPECT_NEAR(*outputs[0].result.value, 10.15, 0.3);
}

TEST(GroupManagerTest, SharedStorePersistsPerGroupKeys) {
  HistoryStore store;
  {
    VoterGroupManager manager(&store);
    ASSERT_TRUE(manager.AddGroup(
        "left", *core::MakeEngine(core::AlgorithmId::kHybrid, 3)).ok());
    ASSERT_TRUE(manager.AddGroup(
        "right", *core::MakeEngine(core::AlgorithmId::kHybrid, 3)).ok());
    // Module 2 of "left" misbehaves; "right" stays clean.
    for (size_t r = 0; r < 3; ++r) {
      ASSERT_TRUE(manager.Submit("left", 0, r, 10.0).ok());
      ASSERT_TRUE(manager.Submit("left", 1, r, 10.1).ok());
      ASSERT_TRUE(manager.Submit("left", 2, r, 90.0).ok());
      ASSERT_TRUE(manager.Submit("right", 0, r, 10.0).ok());
      ASSERT_TRUE(manager.Submit("right", 1, r, 10.1).ok());
      ASSERT_TRUE(manager.Submit("right", 2, r, 10.05).ok());
    }
  }
  auto left = store.Get("left");
  auto right = store.Get("right");
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  EXPECT_LT(left->records[2], 0.5);
  EXPECT_DOUBLE_EQ(right->records[2], 1.0);
  // A new manager restores the learned distrust.
  VoterGroupManager revived(&store);
  ASSERT_TRUE(revived.AddGroup(
      "left", *core::MakeEngine(core::AlgorithmId::kHybrid, 3)).ok());
  ASSERT_TRUE(revived.Submit("left", 0, 0, 10.0).ok());
  ASSERT_TRUE(revived.Submit("left", 1, 0, 10.1).ok());
  ASSERT_TRUE(revived.Submit("left", 2, 0, 10.05).ok());
  const auto outputs = (*revived.sink("left"))->outputs();
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_TRUE(outputs[0].result.eliminated[2]);
}

}  // namespace
}  // namespace avoc::runtime
