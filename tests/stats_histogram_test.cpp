#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace avoc::stats {
namespace {

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_FALSE(Histogram::Create(0.0, 1.0, 0).ok());
  EXPECT_FALSE(Histogram::Create(1.0, 1.0, 5).ok());
  EXPECT_FALSE(Histogram::Create(2.0, 1.0, 5).ok());
}

TEST(HistogramTest, BinsValuesUniformly) {
  auto hist = Histogram::Create(0.0, 10.0, 5);
  ASSERT_TRUE(hist.ok());
  for (const double x : {0.5, 1.5, 2.5, 4.5, 9.5}) hist->Add(x);
  EXPECT_EQ(hist->count(0), 2u);  // [0,2)
  EXPECT_EQ(hist->count(1), 1u);  // [2,4)
  EXPECT_EQ(hist->count(2), 1u);  // [4,6)
  EXPECT_EQ(hist->count(3), 0u);
  EXPECT_EQ(hist->count(4), 1u);  // [8,10)
  EXPECT_EQ(hist->total(), 5u);
}

TEST(HistogramTest, UnderOverflowTracked) {
  auto hist = Histogram::Create(0.0, 1.0, 2);
  ASSERT_TRUE(hist.ok());
  hist->Add(-0.1);
  hist->Add(1.0);  // hi is exclusive
  hist->Add(0.5);
  EXPECT_EQ(hist->underflow(), 1u);
  EXPECT_EQ(hist->overflow(), 1u);
  EXPECT_EQ(hist->total(), 3u);
}

TEST(HistogramTest, BinGeometry) {
  auto hist = Histogram::Create(0.0, 10.0, 5);
  ASSERT_TRUE(hist.ok());
  EXPECT_DOUBLE_EQ(hist->BinEdge(0), 0.0);
  EXPECT_DOUBLE_EQ(hist->BinEdge(5), 10.0);
  EXPECT_DOUBLE_EQ(hist->BinCenter(0), 1.0);
  EXPECT_DOUBLE_EQ(hist->BinCenter(4), 9.0);
}

TEST(HistogramTest, LowerEdgeInclusive) {
  auto hist = Histogram::Create(0.0, 10.0, 5);
  ASSERT_TRUE(hist.ok());
  hist->Add(0.0);
  hist->Add(2.0);
  EXPECT_EQ(hist->count(0), 1u);
  EXPECT_EQ(hist->count(1), 1u);
}

TEST(HistogramTest, RenderShowsEveryBin) {
  auto hist = Histogram::Create(0.0, 4.0, 4);
  ASSERT_TRUE(hist.ok());
  hist->Add(0.5);
  hist->Add(0.6);
  hist->Add(3.5);
  const std::string render = hist->Render(10);
  EXPECT_EQ(std::count(render.begin(), render.end(), '\n'), 4);
  EXPECT_NE(render.find('#'), std::string::npos);
}

}  // namespace
}  // namespace avoc::stats
