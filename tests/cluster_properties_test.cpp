// Cross-algorithm clustering properties over randomised inputs (seeded):
// partitions are valid, labels index real clusters, and the three
// clusterers agree on well-separated data.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "cluster/dbscan.h"
#include "cluster/grouping.h"
#include "cluster/kmeans.h"
#include "cluster/meanshift.h"
#include "cluster/xmeans.h"
#include "util/rng.h"

namespace avoc::cluster {
namespace {

class ClusterPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  /// Two well-separated 1-D blobs plus one far outlier.
  static std::vector<double> BlobsWithOutlier(Rng& rng) {
    std::vector<double> values;
    for (int i = 0; i < 20; ++i) values.push_back(rng.Gaussian(100.0, 1.0));
    for (int i = 0; i < 12; ++i) values.push_back(rng.Gaussian(200.0, 1.0));
    values.push_back(500.0);
    return values;
  }
};

TEST_P(ClusterPropertyTest, GroupingPartitionIsExact) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> values;
    const size_t n = 1 + rng.UniformInt(40);
    for (size_t i = 0; i < n; ++i) values.push_back(rng.Uniform(-100, 100));
    GroupingOptions options;
    options.mode = ThresholdMode::kAbsolute;
    options.threshold = rng.Uniform(0.1, 30.0);
    const auto result = GroupByThreshold(values, options);
    // Partition: every index exactly once.
    std::vector<size_t> seen;
    for (const Group& group : result.groups) {
      EXPECT_FALSE(group.members.empty());
      seen.insert(seen.end(), group.members.begin(), group.members.end());
      // Mean really is the member mean.
      double sum = 0.0;
      for (const size_t m : group.members) sum += values[m];
      EXPECT_NEAR(group.mean, sum / static_cast<double>(group.size()),
                  1e-9);
    }
    std::sort(seen.begin(), seen.end());
    std::vector<size_t> expected(values.size());
    std::iota(expected.begin(), expected.end(), size_t{0});
    EXPECT_EQ(seen, expected);
    // Groups are separated by more than the threshold, and internally
    // chained within it (single-linkage invariant).
    for (size_t g = 1; g < result.groups.size(); ++g) {
      // Sizes are non-increasing in the sort order.
      EXPECT_GE(result.groups[g - 1].size(), result.groups[g].size());
    }
  }
}

TEST_P(ClusterPropertyTest, AllClusterersIsolateTheOutlier) {
  Rng rng(GetParam());
  const std::vector<double> values = BlobsWithOutlier(rng);

  // Grouping: outlier is alone in its group.
  GroupingOptions g_options;
  g_options.mode = ThresholdMode::kAbsolute;
  g_options.threshold = 20.0;
  const auto grouped = GroupByThreshold(values, g_options);
  EXPECT_EQ(grouped.groups.size(), 3u);
  EXPECT_EQ(grouped.groups.back().size(), 1u);

  // DBSCAN: outlier is noise.
  DbscanOptions d_options;
  d_options.eps = 10.0;
  d_options.min_points = 3;
  const auto scanned = Dbscan1D(values, d_options);
  EXPECT_EQ(scanned.cluster_count, 2);
  EXPECT_EQ(scanned.labels.back(), DbscanResult::kNoise);

  // Mean-shift (on 1-D points): outlier is its own mode.
  std::vector<Point> points;
  for (const double v : values) points.push_back({v});
  MeanShiftOptions m_options;
  m_options.bandwidth = 15.0;
  const auto shifted = MeanShift(points, m_options);
  ASSERT_TRUE(shifted.ok());
  EXPECT_EQ(shifted->cluster_count(), 3u);
  std::set<size_t> outlier_cluster = {shifted->labels.back()};
  size_t outlier_mates = 0;
  for (const size_t label : shifted->labels) {
    if (outlier_cluster.count(label)) ++outlier_mates;
  }
  EXPECT_EQ(outlier_mates, 1u);
}

TEST_P(ClusterPropertyTest, KMeansLabelsIndexCentroids) {
  Rng rng(GetParam());
  std::vector<Point> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({rng.Uniform(-10, 10), rng.Uniform(-10, 10)});
  }
  for (const size_t k : {1u, 2u, 5u}) {
    auto result = KMeans(points, k, rng);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->centroids.size(), k);
    EXPECT_EQ(result->labels.size(), points.size());
    for (const size_t label : result->labels) {
      EXPECT_LT(label, k);
    }
    // Each point's assigned centroid is its nearest one.
    for (size_t i = 0; i < points.size(); ++i) {
      const double assigned =
          SquaredDistance(points[i], result->centroids[result->labels[i]]);
      for (size_t c = 0; c < k; ++c) {
        EXPECT_LE(assigned,
                  SquaredDistance(points[i], result->centroids[c]) + 1e-9);
      }
    }
  }
}

TEST_P(ClusterPropertyTest, XMeansNeverExceedsBounds) {
  Rng rng(GetParam());
  std::vector<Point> points;
  for (int i = 0; i < 80; ++i) {
    points.push_back({rng.Gaussian(0.0, 1.0)});
  }
  XMeansOptions options;
  options.k_min = 1;
  options.k_max = 4;
  auto result = XMeans(points, rng, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->centroids.size(), 1u);
  EXPECT_LE(result->centroids.size(), 4u);
  for (const size_t label : result->labels) {
    EXPECT_LT(label, result->centroids.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterPropertyTest,
                         ::testing::Values(31, 32, 33, 34, 35));

}  // namespace
}  // namespace avoc::cluster
