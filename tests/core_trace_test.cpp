// Units for the SoA result path: BatchTrace as a VoteSink, the TraceView
// read surface, sparse error storage, and the legacy materializers.
#include "core/trace.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/types.h"
#include "core/vote_sink.h"

namespace avoc::core {
namespace {

// Writes one round through the sink seam the way the engine does.
void PushRound(VoteSink& sink, size_t modules, double base,
               const RoundScalars& scalars) {
  RoundColumns cols = sink.BeginRound(modules);
  ASSERT_EQ(cols.weights.size(), modules);
  ASSERT_EQ(cols.agreement.size(), modules);
  ASSERT_EQ(cols.history.size(), modules);
  ASSERT_EQ(cols.excluded.size(), modules);
  ASSERT_EQ(cols.eliminated.size(), modules);
  for (size_t m = 0; m < modules; ++m) {
    cols.weights[m] = base + static_cast<double>(m);
    cols.agreement[m] = base * 0.1 + static_cast<double>(m);
    cols.history[m] = base * 0.01 + static_cast<double>(m);
    cols.excluded[m] = m % 2;
    cols.eliminated[m] = m == modules - 1 ? 1 : 0;
  }
  sink.EndRound(scalars);
}

RoundScalars VotedScalars(double value, uint32_t present) {
  RoundScalars scalars;
  scalars.value = value;
  scalars.has_value = true;
  scalars.outcome = RoundOutcome::kVoted;
  scalars.used_clustering = false;
  scalars.had_majority = true;
  scalars.present_count = present;
  return scalars;
}

TEST(BatchTraceTest, SinkRoundsLandInColumns) {
  BatchTrace trace(3);
  PushRound(trace, 3, 10.0, VotedScalars(42.5, 3));
  RoundScalars suppressed;
  suppressed.has_value = false;
  suppressed.outcome = RoundOutcome::kNoOutput;
  suppressed.present_count = 1;
  PushRound(trace, 3, 20.0, suppressed);

  ASSERT_EQ(trace.round_count(), 2u);
  EXPECT_EQ(trace.module_count(), 3u);
  ASSERT_TRUE(trace.output(0).has_value());
  EXPECT_DOUBLE_EQ(*trace.output(0), 42.5);
  EXPECT_FALSE(trace.output(1).has_value());
  EXPECT_EQ(trace.outcome(0), RoundOutcome::kVoted);
  EXPECT_EQ(trace.outcome(1), RoundOutcome::kNoOutput);
  EXPECT_EQ(trace.present_count(0), 3u);
  EXPECT_EQ(trace.present_count(1), 1u);
  EXPECT_EQ(trace.voted_rounds(), 1u);

  // Per-module rows are the disjoint subspans of the block columns.
  EXPECT_DOUBLE_EQ(trace.weights(0)[2], 12.0);
  EXPECT_DOUBLE_EQ(trace.weights(1)[0], 20.0);
  EXPECT_DOUBLE_EQ(trace.agreement(1)[1], 3.0);
  EXPECT_DOUBLE_EQ(trace.history(0)[0], 0.1);
  EXPECT_EQ(trace.excluded(0)[1], 1);
  EXPECT_EQ(trace.excluded(0)[0], 0);
  EXPECT_EQ(trace.eliminated(1)[2], 1);
}

TEST(BatchTraceTest, SparseStatusLookup) {
  BatchTrace trace(2);
  PushRound(trace, 2, 1.0, VotedScalars(5.0, 2));
  const Status no_quorum(ErrorCode::kNoQuorum, "starved");
  RoundScalars errored;
  errored.has_value = false;
  errored.outcome = RoundOutcome::kError;
  errored.status = &no_quorum;
  PushRound(trace, 2, 2.0, errored);
  PushRound(trace, 2, 3.0, VotedScalars(6.0, 2));
  const Status no_majority(ErrorCode::kNoMajority, "split");
  errored.status = &no_majority;
  PushRound(trace, 2, 4.0, errored);

  EXPECT_TRUE(trace.status(0).ok());
  EXPECT_EQ(trace.status(1).code(), ErrorCode::kNoQuorum);
  EXPECT_TRUE(trace.status(2).ok());
  EXPECT_EQ(trace.status(3).code(), ErrorCode::kNoMajority);
  // The borrowed Status was copied, not kept by pointer.
  EXPECT_EQ(trace.status(1).message(), "starved");
}

TEST(BatchTraceTest, ResetKeepsArityDropsRounds) {
  BatchTrace trace(4);
  PushRound(trace, 4, 1.0, VotedScalars(1.0, 4));
  PushRound(trace, 4, 2.0, VotedScalars(2.0, 4));
  trace.Reset(4);
  EXPECT_EQ(trace.round_count(), 0u);
  EXPECT_EQ(trace.module_count(), 4u);
  EXPECT_TRUE(trace.empty());
  // Reusable after Reset; the new round is round 0.
  PushRound(trace, 4, 9.0, VotedScalars(9.0, 4));
  ASSERT_EQ(trace.round_count(), 1u);
  EXPECT_DOUBLE_EQ(*trace.output(0), 9.0);
  EXPECT_DOUBLE_EQ(trace.weights(0)[0], 9.0);
}

TEST(BatchTraceTest, AppendAdoptsArityWhenEmpty) {
  VoteResult result;
  result.value = 7.0;
  result.outcome = RoundOutcome::kVoted;
  result.weights = {1.0, 0.0, 1.0};
  result.agreement = {0.9, 0.1, 0.8};
  result.history = {1.0, 0.2, 1.0};
  result.excluded = {false, true, false};
  result.eliminated = {false, false, false};
  result.present_count = 3;

  BatchTrace trace;  // unsized
  trace.Append(result);
  EXPECT_EQ(trace.module_count(), 3u);
  ASSERT_EQ(trace.round_count(), 1u);
  EXPECT_DOUBLE_EQ(trace.weights(0)[0], 1.0);
  EXPECT_EQ(trace.excluded(0)[1], 1);
}

TEST(BatchTraceTest, MaterializeRoundTripsAppend) {
  VoteResult result;
  result.value = std::nullopt;
  result.outcome = RoundOutcome::kError;
  result.status = Status(ErrorCode::kNoQuorum, "too few");
  result.used_clustering = true;
  result.had_majority = false;
  result.present_count = 1;
  result.weights = {0.0, 0.5};
  result.agreement = {0.0, 1.0};
  result.history = {0.3, 0.6};
  result.excluded = {true, false};
  result.eliminated = {false, true};

  BatchTrace trace(2);
  trace.Append(result);
  const VoteResult back = trace.MaterializeRound(0);
  EXPECT_EQ(back.value, result.value);
  EXPECT_EQ(back.outcome, result.outcome);
  EXPECT_EQ(back.status.code(), result.status.code());
  EXPECT_EQ(back.used_clustering, result.used_clustering);
  EXPECT_EQ(back.had_majority, result.had_majority);
  EXPECT_EQ(back.present_count, result.present_count);
  EXPECT_EQ(back.weights, result.weights);
  EXPECT_EQ(back.agreement, result.agreement);
  EXPECT_EQ(back.history, result.history);
  EXPECT_EQ(back.excluded, result.excluded);
  EXPECT_EQ(back.eliminated, result.eliminated);
}

TEST(BatchTraceTest, OutputsAndContinuousOutputs) {
  BatchTrace trace(1);
  RoundScalars gap;
  gap.has_value = false;
  gap.outcome = RoundOutcome::kNoOutput;
  PushRound(trace, 1, 0.0, gap);                    // leading gap
  PushRound(trace, 1, 0.0, VotedScalars(3.0, 1));
  PushRound(trace, 1, 0.0, gap);                    // carried forward
  PushRound(trace, 1, 0.0, VotedScalars(4.0, 1));

  const auto outputs = trace.Outputs();
  ASSERT_EQ(outputs.size(), 4u);
  EXPECT_FALSE(outputs[0].has_value());
  EXPECT_EQ(outputs[1], std::optional<double>(3.0));
  EXPECT_FALSE(outputs[2].has_value());
  EXPECT_EQ(outputs[3], std::optional<double>(4.0));

  const auto continuous = trace.ContinuousOutputs();
  const std::vector<double> expected = {3.0, 3.0, 3.0, 4.0};
  EXPECT_EQ(continuous, expected);
}

TEST(TraceViewTest, ViewIsNonOwningWindowOverTrace) {
  BatchTrace trace(2);
  RoundScalars clustered = VotedScalars(8.0, 2);
  clustered.used_clustering = true;
  PushRound(trace, 2, 5.0, clustered);
  const TraceView view = trace.view();
  EXPECT_EQ(view.round_count(), 1u);
  EXPECT_EQ(view.module_count(), 2u);
  EXPECT_EQ(view.clustered_rounds(), 1u);
  EXPECT_TRUE(view.used_clustering(0));
  EXPECT_DOUBLE_EQ(view.weights(0)[1], 6.0);
  // columns() exposes the raw block layout: round r module m at
  // [r * modules + m].
  EXPECT_DOUBLE_EQ(view.columns().weights[1], 6.0);
  EXPECT_EQ(view.columns().engaged[0], 1);
}

TEST(VoteResultSinkTest, AdaptsSeamToLegacyResult) {
  VoteResultSink sink;
  RoundScalars scalars = VotedScalars(11.0, 3);
  scalars.used_clustering = true;
  RoundColumns cols = sink.BeginRound(3);
  for (size_t m = 0; m < 3; ++m) {
    cols.weights[m] = static_cast<double>(m);
    cols.agreement[m] = 0.5;
    cols.history[m] = 1.0;
    cols.excluded[m] = 0;
    cols.eliminated[m] = 0;
  }
  cols.excluded[2] = 1;
  sink.EndRound(scalars);

  const VoteResult result = sink.TakeResult();
  ASSERT_TRUE(result.value.has_value());
  EXPECT_DOUBLE_EQ(*result.value, 11.0);
  EXPECT_TRUE(result.used_clustering);
  EXPECT_EQ(result.present_count, 3u);
  EXPECT_EQ(result.weights, (std::vector<double>{0.0, 1.0, 2.0}));
  EXPECT_EQ(result.excluded, (std::vector<bool>{false, false, true}));
}

}  // namespace
}  // namespace avoc::core
