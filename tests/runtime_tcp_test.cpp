#include "runtime/tcp.h"

#include <gtest/gtest.h>

#include <thread>

namespace avoc::runtime {
namespace {

struct Pair {
  TcpConnection server;
  TcpConnection client;
};

/// Opens a loopback connection pair through an ephemeral listener.
Pair MakePair() {
  auto listener = TcpListener::Listen(0);
  EXPECT_TRUE(listener.ok()) << listener.status().ToString();
  TcpConnection client_side = [&] {
    auto client = TcpConnection::Connect("127.0.0.1", listener->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }();
  auto server_side = listener->Accept();
  EXPECT_TRUE(server_side.ok()) << server_side.status().ToString();
  return Pair{std::move(*server_side), std::move(client_side)};
}

TEST(TcpTest, ListenOnEphemeralPortReportsIt) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  EXPECT_GT(listener->port(), 0u);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Grab a port, close it, then connect: must fail cleanly.
  uint16_t port = 0;
  {
    auto listener = TcpListener::Listen(0);
    ASSERT_TRUE(listener.ok());
    port = listener->port();
  }
  auto client = TcpConnection::Connect("127.0.0.1", port);
  EXPECT_FALSE(client.ok());
}

TEST(TcpTest, ConnectRejectsGarbageHost) {
  EXPECT_FALSE(TcpConnection::Connect("not-an-address", 1).ok());
}

TEST(TcpTest, SendLineReceiveLine) {
  Pair pair = MakePair();
  ASSERT_TRUE(pair.client.SendLine("hello").ok());
  auto line = pair.server.ReceiveLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "hello");
}

TEST(TcpTest, MultipleLinesInOneSegment) {
  Pair pair = MakePair();
  ASSERT_TRUE(pair.client.SendAll("a\nb\nc\n").ok());
  EXPECT_EQ(*pair.server.ReceiveLine(), "a");
  EXPECT_EQ(*pair.server.ReceiveLine(), "b");
  EXPECT_EQ(*pair.server.ReceiveLine(), "c");
}

TEST(TcpTest, LineSplitAcrossSends) {
  Pair pair = MakePair();
  ASSERT_TRUE(pair.client.SendAll("par").ok());
  ASSERT_TRUE(pair.client.SendAll("tial\nrest\n").ok());
  EXPECT_EQ(*pair.server.ReceiveLine(), "partial");
  EXPECT_EQ(*pair.server.ReceiveLine(), "rest");
}

TEST(TcpTest, CrlfStripped) {
  Pair pair = MakePair();
  ASSERT_TRUE(pair.client.SendAll("dos line\r\n").ok());
  EXPECT_EQ(*pair.server.ReceiveLine(), "dos line");
}

TEST(TcpTest, EofReturnsFinalUnterminatedLine) {
  Pair pair = MakePair();
  ASSERT_TRUE(pair.client.SendAll("no newline").ok());
  pair.client.Close();
  auto line = pair.server.ReceiveLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "no newline");
  auto eof = pair.server.ReceiveLine();
  EXPECT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), ErrorCode::kNotFound);
}

TEST(TcpTest, ReceiveTimeoutSurfacesAsIoError) {
  Pair pair = MakePair();
  ASSERT_TRUE(pair.server.SetReceiveTimeoutMs(50).ok());
  auto line = pair.server.ReceiveLine();
  EXPECT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), ErrorCode::kIoError);
  // The message must name the timeout (not strerror(EAGAIN)) so retry
  // layers can count it as a request timeout rather than breakage.
  EXPECT_NE(line.status().message().find("timed out"), std::string::npos);
}

TEST(TcpTest, ReceiveSomeTimeoutIsNamedToo) {
  Pair pair = MakePair();
  ASSERT_TRUE(pair.server.SetReceiveTimeoutMs(50).ok());
  char buffer[16];
  auto n = pair.server.ReceiveSome(buffer, sizeof(buffer));
  EXPECT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), ErrorCode::kIoError);
  EXPECT_NE(n.status().message().find("timed out"), std::string::npos);
}

TEST(TcpTest, SendAllPushesThroughTinySendBuffer) {
  // Forces the partial-send loop: a payload far larger than SO_SNDBUF
  // can only leave in many short writes while the peer drains slowly.
  Pair pair = MakePair();
  (void)pair.client.SetSendBufferBytes(4 * 1024);
  const std::string payload(512 * 1024, 'y');
  std::thread sender([&] { ASSERT_TRUE(pair.client.SendAll(payload).ok()); });
  std::string received;
  char chunk[3000];
  while (received.size() < payload.size()) {
    auto n = pair.server.ReceiveSome(chunk, sizeof(chunk));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    received.append(chunk, *n);
  }
  sender.join();
  EXPECT_EQ(received, payload);
}

TEST(TcpTest, BidirectionalTraffic) {
  Pair pair = MakePair();
  ASSERT_TRUE(pair.client.SendLine("ping").ok());
  ASSERT_EQ(*pair.server.ReceiveLine(), "ping");
  ASSERT_TRUE(pair.server.SendLine("pong").ok());
  EXPECT_EQ(*pair.client.ReceiveLine(), "pong");
}

TEST(TcpTest, CloseUnblocksAccept) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    listener->Close();
  });
  auto connection = listener->Accept();
  EXPECT_FALSE(connection.ok());
  closer.join();
}

TEST(TcpTest, LargePayloadRoundTrips) {
  Pair pair = MakePair();
  const std::string payload(64 * 1024, 'x');
  std::thread sender([&] {
    ASSERT_TRUE(pair.client.SendLine(payload).ok());
  });
  auto line = pair.server.ReceiveLine();
  sender.join();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line->size(), payload.size());
  EXPECT_EQ(*line, payload);
}

}  // namespace
}  // namespace avoc::runtime
