#include "core/algorithms.h"

#include <gtest/gtest.h>

namespace avoc::core {
namespace {

TEST(AlgorithmsTest, AllAlgorithmsListsSevenInPaperOrder) {
  const auto all = AllAlgorithms();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all.front(), AlgorithmId::kAverage);
  EXPECT_EQ(all.back(), AlgorithmId::kAvoc);
}

TEST(AlgorithmsTest, NamesRoundTripThroughParser) {
  for (const AlgorithmId id : AllAlgorithms()) {
    auto parsed = ParseAlgorithmName(AlgorithmName(id));
    ASSERT_TRUE(parsed.ok()) << AlgorithmName(id);
    EXPECT_EQ(*parsed, id);
  }
}

TEST(AlgorithmsTest, ParserAcceptsPaperSpellings) {
  EXPECT_EQ(*ParseAlgorithmName("avg."), AlgorithmId::kAverage);
  EXPECT_EQ(*ParseAlgorithmName("strd."), AlgorithmId::kStandard);
  EXPECT_EQ(*ParseAlgorithmName("ME"), AlgorithmId::kModuleElimination);
  EXPECT_EQ(*ParseAlgorithmName("Hybrid"), AlgorithmId::kHybrid);
  EXPECT_EQ(*ParseAlgorithmName("Clustering"), AlgorithmId::kClusteringOnly);
  EXPECT_EQ(*ParseAlgorithmName("AVOC"), AlgorithmId::kAvoc);
  EXPECT_EQ(*ParseAlgorithmName(" sdt "), AlgorithmId::kSoftDynamicThreshold);
}

TEST(AlgorithmsTest, ParserRejectsUnknown) {
  EXPECT_FALSE(ParseAlgorithmName("quantum").ok());
  EXPECT_FALSE(ParseAlgorithmName("").ok());
}

TEST(AlgorithmsTest, PresetStructure) {
  const EngineConfig avg = MakeConfig(AlgorithmId::kAverage);
  EXPECT_EQ(avg.history.rule, HistoryRule::kNone);
  EXPECT_EQ(avg.weighting, RoundWeighting::kUniform);
  EXPECT_FALSE(avg.module_elimination);
  EXPECT_EQ(avg.clustering, ClusteringMode::kOff);

  const EngineConfig standard = MakeConfig(AlgorithmId::kStandard);
  EXPECT_EQ(standard.history.rule, HistoryRule::kCumulativeRatio);
  EXPECT_EQ(standard.agreement.mode, AgreementMode::kBinary);
  EXPECT_FALSE(standard.module_elimination);

  const EngineConfig me = MakeConfig(AlgorithmId::kModuleElimination);
  EXPECT_TRUE(me.module_elimination);
  EXPECT_EQ(me.collation, Collation::kWeightedAverage);

  const EngineConfig sdt = MakeConfig(AlgorithmId::kSoftDynamicThreshold);
  EXPECT_EQ(sdt.agreement.mode, AgreementMode::kSoftDynamic);
  EXPECT_FALSE(sdt.module_elimination);

  const EngineConfig hybrid = MakeConfig(AlgorithmId::kHybrid);
  EXPECT_EQ(hybrid.history.rule, HistoryRule::kRewardPenalty);
  EXPECT_TRUE(hybrid.module_elimination);
  EXPECT_EQ(hybrid.collation, Collation::kMeanNearestNeighbor);
  EXPECT_EQ(hybrid.clustering, ClusteringMode::kOff);

  const EngineConfig cov = MakeConfig(AlgorithmId::kClusteringOnly);
  EXPECT_EQ(cov.clustering, ClusteringMode::kAlways);
  EXPECT_EQ(cov.history.rule, HistoryRule::kNone);

  const EngineConfig avoc = MakeConfig(AlgorithmId::kAvoc);
  EXPECT_EQ(avoc.clustering, ClusteringMode::kBootstrap);
  EXPECT_EQ(avoc.history.rule, HistoryRule::kRewardPenalty);
  EXPECT_TRUE(avoc.module_elimination);
  EXPECT_EQ(avoc.collation, Collation::kMeanNearestNeighbor);
}

TEST(AlgorithmsTest, PresetParamsPropagate) {
  PresetParams params;
  params.error = 0.1;
  params.soft_multiple = 3.0;
  params.reward = 0.2;
  params.penalty = 0.4;
  params.quorum_fraction = 0.8;
  params.scale = ThresholdScale::kAbsolute;
  const EngineConfig config = MakeConfig(AlgorithmId::kAvoc, params);
  EXPECT_DOUBLE_EQ(config.agreement.error, 0.1);
  EXPECT_DOUBLE_EQ(config.agreement.soft_multiple, 3.0);
  EXPECT_DOUBLE_EQ(config.history.reward, 0.2);
  EXPECT_DOUBLE_EQ(config.history.penalty, 0.4);
  EXPECT_DOUBLE_EQ(config.quorum.fraction, 0.8);
  EXPECT_EQ(config.agreement.scale, ThresholdScale::kAbsolute);
}

TEST(AlgorithmsTest, CollationOverride) {
  PresetParams params;
  params.collation = Collation::kWeightedAverage;
  const EngineConfig config = MakeConfig(AlgorithmId::kAvoc, params);
  EXPECT_EQ(config.collation, Collation::kWeightedAverage);
}

TEST(AlgorithmsTest, EveryPresetValidates) {
  for (const AlgorithmId id : AllAlgorithms()) {
    const EngineConfig config = MakeConfig(id);
    EXPECT_TRUE(config.Validate().ok())
        << AlgorithmName(id) << ": " << config.Validate().ToString();
  }
}

TEST(AlgorithmsTest, MakeEngineBuildsWorkingVoter) {
  for (const AlgorithmId id : AllAlgorithms()) {
    auto engine = MakeEngine(id, 5);
    ASSERT_TRUE(engine.ok()) << AlgorithmName(id);
    auto result =
        engine->CastVote(std::vector<double>{10.0, 10.1, 9.9, 10.05, 10.2});
    ASSERT_TRUE(result.ok()) << AlgorithmName(id);
    EXPECT_EQ(result->outcome, RoundOutcome::kVoted);
    EXPECT_NEAR(*result->value, 10.05, 0.2) << AlgorithmName(id);
  }
}

}  // namespace
}  // namespace avoc::core
