// Seed-sweep chaos suite for voter-group MIGRATION across cluster nodes.
//
// Every seed drives a 3-node VoterCluster (each node with a hot standby)
// on the deterministic simulation under FaultPlan::Chaos, while a seeded
// disruption schedule fires between ingest rounds:
//
//   * plain migrations launched WITHOUT draining the world, so the
//     handoff quiesce overlaps in-flight SUBMIT_BATCH_SEQ frames
//     (mid-batch migration: requests park, then chase the MOVED);
//   * destination crashes landing between the export and the import
//     (the transfer fails typed and the source keeps serving);
//   * SOURCE crashes landing mid-handoff, followed by hot-standby
//     failover — the replica serves on with dedup-backed exactly-once;
//   * plain crash + failover with no migration in flight.
//
// Assertions per seed:
//   1. Convergence: every group's sink trace is BIT-IDENTICAL (hex-float
//      rendering) to the fault-free single-node run of the same
//      workload — migration, partitions, crashes, and failover change
//      nothing about what gets fused, and no round is lost or doubled.
//   2. Determinism: re-running a seed reproduces the identical simulated
//      event trace, byte for byte (every 5th seed).
//
// Reproduce one seed with AVOC_CHAOS_SEED=<n> (all bands collapse to it).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/cluster.h"
#include "runtime/resilient.h"
#include "runtime/sim_net.h"
#include "util/rng.h"
#include "util/strings.h"

namespace avoc::runtime {
namespace {

constexpr size_t kNodes = 3;
constexpr size_t kModules = 3;
constexpr size_t kRounds = 8;
constexpr uint64_t kHorizonMs = 4000;

const char* kGroupNames[] = {"group-0", "group-1", "group-2"};

VoterCluster::EngineMaker AvocMaker() {
  return [] { return core::MakeEngine(core::AlgorithmId::kAvoc, kModules); };
}

/// Per-group reading batches for one seed — a function of the seed only,
/// so faulty/clustered and fault-free/single-node runs submit identically.
std::vector<std::vector<BatchReading>> WorkloadFor(uint64_t seed,
                                                   size_t group_index) {
  Rng values(seed ^ 0xDA7A5EEDull ^ (group_index * 0x9E3779B97F4A7C15ull));
  std::vector<std::vector<BatchReading>> rounds;
  for (size_t r = 0; r < kRounds; ++r) {
    std::vector<BatchReading> batch;
    for (uint64_t m = 0; m < kModules; ++m) {
      batch.push_back(BatchReading{m, r, 20.0 + values.Gaussian(0.0, 2.0)});
    }
    rounds.push_back(std::move(batch));
  }
  return rounds;
}

/// Bit-exact rendering of every group's fused outputs, in group order,
/// read from whichever node currently owns each group.
std::string SinkTraces(const VoterCluster& cluster) {
  std::string trace;
  for (const char* group : kGroupNames) {
    auto sink = cluster.sink(group);
    if (!sink.ok()) return "<no sink>";
    trace += group;
    trace += ":\n";
    for (const OutputMessage& out : (*sink)->outputs()) {
      trace += StrFormat("%zu %d %a\n", out.round,
                         static_cast<int>(out.result.outcome),
                         out.result.value.value_or(-0.0));
    }
  }
  return trace;
}

struct ChaosRun {
  std::string sink_trace;
  std::string world_trace;
  bool workload_ok = false;
  size_t reconnects = 0;
  size_t redirects = 0;
  size_t migrations_started = 0;
  size_t migrations_committed = 0;
  size_t migrations_failed_typed = 0;
  size_t failovers = 0;
  size_t source_crashes_mid_migration = 0;
};

ChaosRun RunWorkload(uint64_t seed, bool with_faults, size_t nodes) {
  SimWorld::Options options;
  if (with_faults) options.fault_plan = FaultPlan::Chaos(seed, kHorizonMs);
  SimWorld world(seed, options);
  obs::Registry registry;
  VoterCluster::Options cluster_options;
  cluster_options.nodes = nodes;
  cluster_options.hot_standbys = nodes > 1;
  auto cluster =
      VoterCluster::StartOnWorld(&world, cluster_options, &registry);
  if (!cluster.ok()) return {};
  for (const char* group : kGroupNames) {
    if (!(*cluster)->AddGroup(group, AvocMaker()).ok()) return {};
  }

  RetryPolicy policy;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 200;
  policy.request_timeout_ms = 150;
  policy.deadline_ms = 10 * kHorizonMs;  // faults always heal well before
  ResilientVoterClient client(
      []() -> Result<std::unique_ptr<Transport>> {
        return IoError("node directory only");
      },
      &world, "migration-chaos-client", policy, seed ^ 0xBACC0FFull,
      &registry);
  client.UseNodeDirectory(
      [&cluster](size_t node) { return (*cluster)->DialNode(node); }, nodes);

  ChaosRun run;
  run.workload_ok = true;
  Rng plan(seed ^ 0x5C7ED01Eull);
  std::vector<bool> crashed_once(nodes, false);

  const auto migrate = [&](const std::string& group, size_t dest) {
    ++run.migrations_started;
    (*cluster)->Migrate(group, dest, [&run](Status status) {
      if (status.ok()) {
        ++run.migrations_committed;
      } else {
        ++run.migrations_failed_typed;
      }
    });
  };
  const auto pick_move = [&](std::string* group, size_t* owner,
                             size_t* dest) {
    *group = kGroupNames[plan.UniformInt(std::size(kGroupNames))];
    *owner = (*cluster)->OwnerOf(*group);
    *dest = (*owner + 1 + plan.UniformInt(nodes - 1)) % nodes;
  };

  std::vector<std::vector<std::vector<BatchReading>>> workloads;
  for (size_t g = 0; g < std::size(kGroupNames); ++g) {
    workloads.push_back(WorkloadFor(seed, g));
  }
  for (size_t r = 0; r < kRounds && run.workload_ok; ++r) {
    // Round-major across groups: every round crosses node boundaries
    // through the one redirect-following connection.
    for (size_t g = 0; g < std::size(kGroupNames); ++g) {
      auto accepted = client.SubmitBatch(kGroupNames[g], workloads[g][r]);
      if (!accepted.ok() || *accepted != workloads[g][r].size()) {
        run.workload_ok = false;
        break;
      }
    }
    if (!run.workload_ok || nodes < 2 || r + 1 >= kRounds) continue;

    // Seeded disruption between rounds.  Consumes the same plan draws on
    // every run of this seed, so replays are byte-identical.
    std::string group;
    size_t owner = 0;
    size_t dest = 0;
    switch (plan.UniformInt(10)) {
      case 0:
      case 1:
      case 2:
        // Plain migration, deliberately NOT pumped to completion: the
        // quiesce overlaps the next round's in-flight submits, which
        // park in the deferred queue and resolve to MOVED on commit.
        pick_move(&group, &owner, &dest);
        migrate(group, dest);
        break;
      case 3: {
        // Destination crashes between the export and the import.
        pick_move(&group, &owner, &dest);
        if (crashed_once[dest]) {
          migrate(group, dest);
          break;
        }
        migrate(group, dest);
        VoterCluster* raw = cluster->get();
        (*cluster)->NodeReactor(dest)->Post(
            [raw, dest] { raw->CrashNode(dest); });
        world.Pump();
        if (!(*cluster)->Failover(dest).ok()) {
          run.workload_ok = false;
          break;
        }
        crashed_once[dest] = true;
        ++run.failovers;
        break;
      }
      case 4: {
        // SOURCE crashes mid-handoff, then its hot standby takes over.
        pick_move(&group, &owner, &dest);
        if (crashed_once[owner]) {
          migrate(group, dest);
          break;
        }
        migrate(group, dest);
        VoterCluster* raw = cluster->get();
        (*cluster)->NodeReactor(owner)->Post(
            [raw, owner] { raw->CrashNode(owner); });
        world.Pump();
        if (!(*cluster)->Failover(owner).ok()) {
          run.workload_ok = false;
          break;
        }
        crashed_once[owner] = true;
        ++run.failovers;
        ++run.source_crashes_mid_migration;
        break;
      }
      case 5: {
        // Crash + failover with no migration in flight.
        const size_t victim = plan.UniformInt(nodes);
        if (crashed_once[victim]) break;
        (*cluster)->CrashNode(victim);
        if (!(*cluster)->Failover(victim).ok()) {
          run.workload_ok = false;
          break;
        }
        crashed_once[victim] = true;
        ++run.failovers;
        break;
      }
      default:
        break;  // quiet gap
    }
  }
  world.Pump();  // drain any migration still in flight
  run.sink_trace = SinkTraces(**cluster);
  run.world_trace = world.TraceText();
  run.reconnects = client.reconnects();
  run.redirects = client.redirects_followed();
  (*cluster)->Stop();
  return run;
}

/// Seed band for one gtest shard, honoring the AVOC_CHAOS_SEED override.
std::vector<uint64_t> SeedBand(uint64_t base, size_t count) {
  if (const char* forced = std::getenv("AVOC_CHAOS_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(forced, nullptr, 10))};
  }
  std::vector<uint64_t> seeds;
  for (size_t i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

class MigrationChaosShard : public ::testing::TestWithParam<uint64_t> {};

// 4 bands x 60 seeds = 240 distinct disruption schedules.
constexpr size_t kSeedsPerShard = 60;

TEST_P(MigrationChaosShard, MigratingClusterMatchesFaultFreeSingleNode) {
  const uint64_t base = GetParam();
  for (uint64_t seed : SeedBand(base, kSeedsPerShard)) {
    SCOPED_TRACE(StrFormat("seed=%llu (AVOC_CHAOS_SEED=%llu to reproduce)",
                           static_cast<unsigned long long>(seed),
                           static_cast<unsigned long long>(seed)));
    const ChaosRun faulty = RunWorkload(seed, /*with_faults=*/true, kNodes);
    ASSERT_TRUE(faulty.workload_ok);
    const ChaosRun clean = RunWorkload(seed, /*with_faults=*/false,
                                       /*nodes=*/1);
    ASSERT_TRUE(clean.workload_ok);
    ASSERT_NE(clean.sink_trace, "<no sink>");
    EXPECT_FALSE(clean.sink_trace.empty());
    // Rounds lost: 0.  Rounds doubled: 0.  Values drifted: none — the
    // hex-float rendering makes any ULP of drift a test failure.
    EXPECT_EQ(faulty.sink_trace, clean.sink_trace);
  }
}

TEST_P(MigrationChaosShard, SameSeedReplaysIdenticalEventTrace) {
  const uint64_t base = GetParam();
  for (uint64_t seed : SeedBand(base, kSeedsPerShard)) {
    if (std::getenv("AVOC_CHAOS_SEED") == nullptr && seed % 5 != 0) continue;
    SCOPED_TRACE(StrFormat("seed=%llu", static_cast<unsigned long long>(seed)));
    const ChaosRun first = RunWorkload(seed, /*with_faults=*/true, kNodes);
    const ChaosRun second = RunWorkload(seed, /*with_faults=*/true, kNodes);
    ASSERT_TRUE(first.workload_ok);
    EXPECT_EQ(first.world_trace, second.world_trace);
    EXPECT_EQ(first.sink_trace, second.sink_trace);
    EXPECT_EQ(first.reconnects, second.reconnects);
    EXPECT_EQ(first.redirects, second.redirects);
    EXPECT_EQ(first.migrations_committed, second.migrations_committed);
    EXPECT_EQ(first.failovers, second.failovers);
    EXPECT_FALSE(first.world_trace.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Bands, MigrationChaosShard,
                         ::testing::Values(uint64_t{1000}, uint64_t{2000},
                                           uint64_t{3000}, uint64_t{4000}));

// Across one band the disruption machinery must actually bite: handoffs
// commit, clients chase MOVED, standbys get promoted, and at least one
// schedule kills the SOURCE mid-handoff and survives on the replica.
TEST(MigrationChaosSweep, DisruptionsExerciseEveryRecoveryPath) {
  if (std::getenv("AVOC_CHAOS_SEED") != nullptr) GTEST_SKIP();
  size_t committed = 0;
  size_t typed_failures = 0;
  size_t redirect_runs = 0;
  size_t failover_runs = 0;
  size_t source_crash_runs = 0;
  for (uint64_t seed = 1000; seed < 1000 + kSeedsPerShard; ++seed) {
    const ChaosRun run = RunWorkload(seed, /*with_faults=*/true, kNodes);
    committed += run.migrations_committed;
    typed_failures += run.migrations_failed_typed;
    if (run.redirects > 0) ++redirect_runs;
    if (run.failovers > 0) ++failover_runs;
    if (run.source_crashes_mid_migration > 0 && run.workload_ok) {
      ++source_crash_runs;
    }
  }
  EXPECT_GT(committed, 0u);
  EXPECT_GT(typed_failures, 0u);  // crashed handoffs fail typed, not silent
  EXPECT_GT(redirect_runs, 0u);
  EXPECT_GT(failover_runs, 0u);
  EXPECT_GT(source_crash_runs, 0u);
}

}  // namespace
}  // namespace avoc::runtime
