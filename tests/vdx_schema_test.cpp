#include "vdx/schema.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/algorithms.h"
#include "json/parse.h"
#include "vdx/factory.h"

namespace avoc::vdx {
namespace {

bool SchemaAccepts(std::string_view document) {
  auto report = ValidateTextAgainstSchema(document);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() && report->ok();
}

TEST(VdxSchemaTest, SchemaItselfParses) {
  auto schema = json::Parse(VdxJsonSchema());
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_TRUE(schema->is_object());
}

TEST(VdxSchemaTest, AcceptsListing1) {
  EXPECT_TRUE(SchemaAccepts(R"({
    "algorithm_name": "AVOC",
    "quorum": "UNTIL",
    "quorum_percentage": 100,
    "exclusion": "NONE",
    "exclusion_threshold": 0,
    "history": "HYBRID",
    "params": {"error": 0.05, "soft_threshold": 2},
    "collation": "MEAN_NEAREST_NEIGHBOR",
    "bootstrapping": true
  })"));
}

TEST(VdxSchemaTest, AcceptsEveryBuiltinExport) {
  for (const core::AlgorithmId id : core::AllAlgorithms()) {
    const Spec spec = ExportSpec(id);
    auto report = ValidateAgainstSchema(spec.ToJson());
    ASSERT_TRUE(report.ok()) << core::AlgorithmName(id);
    EXPECT_TRUE(report->ok())
        << core::AlgorithmName(id) << ":\n" << report->ToString();
  }
}

TEST(VdxSchemaTest, RejectsMissingAlgorithmName) {
  EXPECT_FALSE(SchemaAccepts(R"({"history": "STANDARD"})"));
}

TEST(VdxSchemaTest, RejectsUnknownTopLevelMembers) {
  EXPECT_FALSE(SchemaAccepts(
      R"({"algorithm_name": "x", "surprise_field": 1})"));
}

TEST(VdxSchemaTest, RejectsBadEnumTokens) {
  EXPECT_FALSE(SchemaAccepts(
      R"({"algorithm_name": "x", "history": "MAGIC"})"));
  EXPECT_FALSE(SchemaAccepts(
      R"({"algorithm_name": "x", "collation": "VIBES"})"));
  EXPECT_FALSE(SchemaAccepts(
      R"({"algorithm_name": "x", "quorum": "MAYBE"})"));
}

TEST(VdxSchemaTest, RejectsOutOfRangeQuorum) {
  EXPECT_FALSE(SchemaAccepts(
      R"({"algorithm_name": "x", "quorum_percentage": 0})"));
  EXPECT_FALSE(SchemaAccepts(
      R"({"algorithm_name": "x", "quorum_percentage": 101})"));
  EXPECT_FALSE(SchemaAccepts(
      R"({"algorithm_name": "x", "quorum_count": 0})"));
}

TEST(VdxSchemaTest, RejectsNonScalarParams) {
  EXPECT_FALSE(SchemaAccepts(
      R"({"algorithm_name": "x", "params": {"a": [1]}})"));
  EXPECT_TRUE(SchemaAccepts(
      R"({"algorithm_name": "x", "params": {"a": 1, "b": "RELATIVE"}})"));
}

TEST(VdxSchemaTest, RejectsUnknownFaultPolicyMembers) {
  EXPECT_FALSE(SchemaAccepts(R"({
    "algorithm_name": "x",
    "fault_policy": {"on_meltdown": "PANIC"}
  })"));
  EXPECT_TRUE(SchemaAccepts(R"({
    "algorithm_name": "x",
    "fault_policy": {"on_no_quorum": "RAISE"}
  })"));
}

TEST(VdxSchemaTest, EmbeddedSchemaMatchesDocsFile) {
  // docs/vdx.schema.json must stay in sync with the embedded text.
  std::ifstream in(std::string(AVOC_SOURCE_DIR) + "/docs/vdx.schema.json");
  ASSERT_TRUE(in) << "docs/vdx.schema.json missing";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto embedded = json::Parse(VdxJsonSchema());
  auto on_disk = json::Parse(buffer.str());
  ASSERT_TRUE(embedded.ok());
  ASSERT_TRUE(on_disk.ok());
  EXPECT_TRUE(*embedded == *on_disk);
}

}  // namespace
}  // namespace avoc::vdx
