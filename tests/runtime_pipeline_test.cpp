#include "runtime/pipeline.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/batch.h"
#include "sim/light.h"

namespace avoc::runtime {
namespace {

core::VotingEngine MakeEngineOrDie(core::AlgorithmId id, size_t modules) {
  auto engine = core::MakeEngine(id, modules);
  EXPECT_TRUE(engine.ok());
  return std::move(*engine);
}

data::RoundTable SmallTable() {
  data::RoundTable table = data::RoundTable::WithModuleCount(3);
  EXPECT_TRUE(table.AppendRound(std::vector<double>{1.0, 2.0, 3.0}).ok());
  EXPECT_TRUE(table.AppendRound(std::vector<double>{4.0, 5.0, 6.0}).ok());
  return table;
}

TEST(PipelineTest, CreateValidatesArity) {
  std::vector<SensorNode::Generator> two(2, [](size_t) {
    return std::optional<double>(1.0);
  });
  EXPECT_FALSE(Pipeline::FromGenerators(
                   std::move(two),
                   MakeEngineOrDie(core::AlgorithmId::kAverage, 3))
                   .ok());
  std::vector<SensorNode::Generator> none;
  EXPECT_FALSE(Pipeline::FromGenerators(
                   std::move(none),
                   MakeEngineOrDie(core::AlgorithmId::kAverage, 3))
                   .ok());
}

TEST(PipelineTest, ReplaysTableThroughVoter) {
  auto pipeline = Pipeline::FromTable(
      SmallTable(), MakeEngineOrDie(core::AlgorithmId::kAverage, 3));
  ASSERT_TRUE(pipeline.ok());
  pipeline->Run(2);
  EXPECT_EQ(pipeline->rounds_run(), 2u);
  const auto outputs = pipeline->sink().outputs();
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_DOUBLE_EQ(*outputs[0].result.value, 2.0);
  EXPECT_DOUBLE_EQ(*outputs[1].result.value, 5.0);
}

TEST(PipelineTest, StepsBeyondTableProduceEmptyRounds) {
  auto config = core::MakeConfig(core::AlgorithmId::kAverage);
  config.on_no_quorum = core::NoQuorumPolicy::kRevertLast;
  auto engine = core::VotingEngine::Create(3, config);
  ASSERT_TRUE(engine.ok());
  auto pipeline = Pipeline::FromTable(SmallTable(), std::move(*engine));
  ASSERT_TRUE(pipeline.ok());
  pipeline->Run(3);  // one step past the table
  const auto outputs = pipeline->sink().outputs();
  ASSERT_EQ(outputs.size(), 3u);
  // The starved round reverts to the last fused value.
  EXPECT_EQ(outputs[2].result.outcome, core::RoundOutcome::kRevertedLast);
  EXPECT_DOUBLE_EQ(*outputs[2].result.value, 5.0);
}

TEST(PipelineTest, GeneratorsDriveRounds) {
  std::vector<SensorNode::Generator> generators;
  for (int m = 0; m < 3; ++m) {
    generators.push_back([m](size_t round) {
      return std::optional<double>(static_cast<double>(round * 10 + m));
    });
  }
  auto pipeline = Pipeline::FromGenerators(
      std::move(generators), MakeEngineOrDie(core::AlgorithmId::kAverage, 3));
  ASSERT_TRUE(pipeline.ok());
  pipeline->Run(2);
  const auto outputs = pipeline->sink().outputs();
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_DOUBLE_EQ(*outputs[0].result.value, 1.0);   // (0+1+2)/3
  EXPECT_DOUBLE_EQ(*outputs[1].result.value, 11.0);  // (10+11+12)/3
}

TEST(PipelineTest, MissingGeneratorsBecomeMissingValues) {
  std::vector<SensorNode::Generator> generators;
  generators.push_back([](size_t) { return std::optional<double>(10.0); });
  generators.push_back([](size_t round) {
    return round % 2 == 0 ? std::optional<double>(20.0) : std::nullopt;
  });
  auto pipeline = Pipeline::FromGenerators(
      std::move(generators), MakeEngineOrDie(core::AlgorithmId::kAverage, 2));
  ASSERT_TRUE(pipeline.ok());
  pipeline->Run(2);
  const auto outputs = pipeline->sink().outputs();
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_DOUBLE_EQ(*outputs[0].result.value, 15.0);
  EXPECT_EQ(outputs[1].result.present_count, 1u);
}

TEST(PipelineTest, MatchesBatchRunnerExactly) {
  // The middleware path must fuse identically to the direct batch path.
  avoc::sim::LightScenarioParams params;
  params.rounds = 300;
  const auto table = avoc::sim::LightScenario(params).MakeFaultyTable();

  auto batch = core::RunAlgorithm(core::AlgorithmId::kAvoc, table);
  ASSERT_TRUE(batch.ok());

  auto pipeline = Pipeline::FromTable(
      table, MakeEngineOrDie(core::AlgorithmId::kAvoc, 5));
  ASSERT_TRUE(pipeline.ok());
  pipeline->Run(table.round_count());
  const auto outputs = pipeline->sink().outputs();
  ASSERT_EQ(outputs.size(), table.round_count());
  for (size_t r = 0; r < table.round_count(); ++r) {
    const auto batch_output = batch->output(r);
    ASSERT_EQ(outputs[r].result.value.has_value(), batch_output.has_value());
    if (batch_output.has_value()) {
      EXPECT_DOUBLE_EQ(*outputs[r].result.value, *batch_output)
          << "round " << r;
    }
  }
}

TEST(PipelineTest, HistoryPersistsThroughStoreAcrossPipelines) {
  HistoryStore store;
  PipelineOptions options;
  options.store = &store;
  options.group = "uc1";

  data::RoundTable table = data::RoundTable::WithModuleCount(3);
  for (int r = 0; r < 10; ++r) {
    ASSERT_TRUE(table.AppendRound(std::vector<double>{10.0, 10.1, 60.0}).ok());
  }
  {
    auto pipeline = Pipeline::FromTable(
        table, MakeEngineOrDie(core::AlgorithmId::kHybrid, 3), options);
    ASSERT_TRUE(pipeline.ok());
    pipeline->Run(10);
  }
  // A fresh pipeline restores the learned distrust of module 2.
  auto pipeline = Pipeline::FromTable(
      table, MakeEngineOrDie(core::AlgorithmId::kHybrid, 3), options);
  ASSERT_TRUE(pipeline.ok());
  pipeline->Step();
  const auto outputs = pipeline->sink().outputs();
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_TRUE(outputs[0].result.eliminated[2]);
}

}  // namespace
}  // namespace avoc::runtime
