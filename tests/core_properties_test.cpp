// Property-style invariant sweeps over every algorithm preset (TEST_P).
//
// These pin down the contracts the evaluation relies on: outputs stay
// inside the candidate hull, weights stay non-negative, histories stay in
// [0,1], result-selection outputs are real candidate values, permutation
// of module order permutes (but never changes) results, and relative-
// threshold algorithms are scale-equivariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/algorithms.h"
#include "core/batch.h"
#include "util/rng.h"

namespace avoc::core {
namespace {

class AlgorithmPropertyTest : public ::testing::TestWithParam<AlgorithmId> {
 protected:
  static data::RoundTable NoisyTable(uint64_t seed, size_t modules,
                                     size_t rounds, double base,
                                     double spread, double outlier_offset) {
    Rng rng(seed);
    data::RoundTable table = data::RoundTable::WithModuleCount(modules);
    std::vector<double> biases;
    for (size_t m = 0; m < modules; ++m) {
      biases.push_back(rng.Uniform(-spread, spread));
    }
    for (size_t r = 0; r < rounds; ++r) {
      std::vector<double> row;
      for (size_t m = 0; m < modules; ++m) {
        double v = base + biases[m] + rng.Gaussian(0.0, spread / 10.0);
        if (m == modules - 1) v += outlier_offset;
        row.push_back(v);
      }
      EXPECT_TRUE(table.AppendRound(row).ok());
    }
    return table;
  }
};

TEST_P(AlgorithmPropertyTest, OutputStaysInsideCandidateHull) {
  const auto table = NoisyTable(11, 5, 200, 1000.0, 20.0, 300.0);
  auto batch = RunAlgorithm(GetParam(), table);
  ASSERT_TRUE(batch.ok());
  for (size_t r = 0; r < table.round_count(); ++r) {
    const auto output = batch->output(r);
    if (!output.has_value()) continue;
    const auto round = table.View(r);
    double lo = 1e300;
    double hi = -1e300;
    for (size_t m = 0; m < round.module_count(); ++m) {
      const auto reading = round.at(m);
      if (reading.has_value()) {
        lo = std::min(lo, *reading);
        hi = std::max(hi, *reading);
      }
    }
    EXPECT_GE(*output, lo - 1e-9) << "round " << r;
    EXPECT_LE(*output, hi + 1e-9) << "round " << r;
  }
}

TEST_P(AlgorithmPropertyTest, WeightsNonNegativeAndHistoriesBounded) {
  const auto table = NoisyTable(13, 6, 150, 500.0, 15.0, 200.0);
  auto batch = RunAlgorithm(GetParam(), table);
  ASSERT_TRUE(batch.ok());
  for (size_t r = 0; r < batch->round_count(); ++r) {
    for (const double w : batch->weights(r)) EXPECT_GE(w, 0.0);
    for (const double h : batch->history(r)) {
      EXPECT_GE(h, 0.0);
      EXPECT_LE(h, 1.0);
    }
  }
}

TEST_P(AlgorithmPropertyTest, ModulePermutationPermutesResults) {
  const auto table = NoisyTable(17, 5, 80, 2000.0, 30.0, 500.0);
  const std::vector<size_t> permutation = {3, 0, 4, 1, 2};
  auto permuted_table = table.SelectModules(permutation);
  ASSERT_TRUE(permuted_table.ok());

  auto original = RunAlgorithm(GetParam(), table);
  auto permuted = RunAlgorithm(GetParam(), *permuted_table);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(permuted.ok());
  for (size_t r = 0; r < table.round_count(); ++r) {
    const auto original_output = original->output(r);
    const auto permuted_output = permuted->output(r);
    ASSERT_EQ(original_output.has_value(), permuted_output.has_value());
    if (original_output.has_value()) {
      EXPECT_NEAR(*original_output, *permuted_output, 1e-9) << "round " << r;
    }
    for (size_t m = 0; m < permutation.size(); ++m) {
      EXPECT_NEAR(original->weights(r)[permutation[m]],
                  permuted->weights(r)[m], 1e-9);
      EXPECT_NEAR(original->history(r)[permutation[m]],
                  permuted->history(r)[m], 1e-9);
    }
  }
}

TEST_P(AlgorithmPropertyTest, RelativeThresholdIsScaleEquivariant) {
  const auto table = NoisyTable(19, 5, 60, 1000.0, 25.0, 400.0);
  // Scale every reading by a constant: with relative thresholds the fused
  // outputs must scale by the same constant.
  const double factor = 7.5;
  data::RoundTable scaled = table;
  for (size_t r = 0; r < scaled.round_count(); ++r) {
    for (size_t m = 0; m < scaled.module_count(); ++m) {
      if (scaled.At(r, m).has_value()) *scaled.At(r, m) *= factor;
    }
  }
  auto original = RunAlgorithm(GetParam(), table);
  auto rescaled = RunAlgorithm(GetParam(), scaled);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(rescaled.ok());
  for (size_t r = 0; r < table.round_count(); ++r) {
    const auto original_output = original->output(r);
    if (!original_output.has_value()) continue;
    const auto rescaled_output = rescaled->output(r);
    ASSERT_TRUE(rescaled_output.has_value());
    EXPECT_NEAR(*rescaled_output, *original_output * factor,
                std::abs(*original_output) * factor * 1e-9)
        << "round " << r;
  }
}

TEST_P(AlgorithmPropertyTest, DeterministicAcrossRuns) {
  const auto table = NoisyTable(23, 5, 100, 800.0, 10.0, 250.0);
  auto first = RunAlgorithm(GetParam(), table);
  auto second = RunAlgorithm(GetParam(), table);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  for (size_t r = 0; r < table.round_count(); ++r) {
    const auto first_output = first->output(r);
    const auto second_output = second->output(r);
    ASSERT_EQ(first_output.has_value(), second_output.has_value());
    if (first_output.has_value()) {
      EXPECT_DOUBLE_EQ(*first_output, *second_output);
    }
  }
}

TEST_P(AlgorithmPropertyTest, UnanimousRoundsFuseToTheSharedValue) {
  data::RoundTable table = data::RoundTable::WithModuleCount(4);
  for (int r = 0; r < 10; ++r) {
    const double v = 100.0 + r;
    ASSERT_TRUE(table.AppendRound(std::vector<double>(4, v)).ok());
  }
  auto batch = RunAlgorithm(GetParam(), table);
  ASSERT_TRUE(batch.ok());
  for (size_t r = 0; r < 10; ++r) {
    const auto output = batch->output(r);
    ASSERT_TRUE(output.has_value());
    EXPECT_NEAR(*output, 100.0 + static_cast<double>(r), 1e-9);
  }
}

TEST_P(AlgorithmPropertyTest, SurvivesHeavyDropout) {
  Rng rng(29);
  data::RoundTable table = data::RoundTable::WithModuleCount(5);
  for (int r = 0; r < 100; ++r) {
    std::vector<data::Reading> row;
    size_t present = 0;
    for (int m = 0; m < 5; ++m) {
      if (rng.Bernoulli(0.5)) {
        row.emplace_back(50.0 + rng.Gaussian(0.0, 1.0));
        ++present;
      } else {
        row.push_back(std::nullopt);
      }
    }
    ASSERT_TRUE(table.AppendRound(std::move(row)).ok());
  }
  PresetParams params;
  params.quorum_fraction = 0.4;
  auto batch = RunAlgorithm(GetParam(), table, params);
  ASSERT_TRUE(batch.ok());
  // Every round yields either a vote, a revert, or (early, with nothing to
  // revert to) no output — never a hard failure.
  for (size_t r = 0; r < batch->round_count(); ++r) {
    EXPECT_NE(batch->outcome(r), RoundOutcome::kError);
  }
  // And voted outputs stay plausible.
  for (size_t r = 0; r < batch->round_count(); ++r) {
    const auto value = batch->output(r);
    if (value.has_value()) {
      EXPECT_NEAR(*value, 50.0, 5.0);
    }
  }
}

TEST_P(AlgorithmPropertyTest, SingleModuleGroupEchoesInput) {
  data::RoundTable table = data::RoundTable::WithModuleCount(1);
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(table.AppendRound(std::vector<double>{3.5 + r}).ok());
  }
  PresetParams params;
  params.quorum_fraction = 1.0;
  auto batch = RunAlgorithm(GetParam(), table, params);
  ASSERT_TRUE(batch.ok());
  for (size_t r = 0; r < 5; ++r) {
    const auto output = batch->output(r);
    ASSERT_TRUE(output.has_value());
    EXPECT_DOUBLE_EQ(*output, 3.5 + static_cast<double>(r));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmPropertyTest,
    ::testing::Values(AlgorithmId::kAverage, AlgorithmId::kStandard,
                      AlgorithmId::kModuleElimination,
                      AlgorithmId::kSoftDynamicThreshold, AlgorithmId::kHybrid,
                      AlgorithmId::kClusteringOnly, AlgorithmId::kAvoc),
    [](const ::testing::TestParamInfo<AlgorithmId>& info) {
      return std::string(AlgorithmName(info.param));
    });

// Selection collations must output real candidate values.
class SelectionCollationTest : public AlgorithmPropertyTest {};

TEST_P(SelectionCollationTest, OutputIsACandidateValue) {
  const auto table = NoisyTable(31, 5, 100, 1500.0, 40.0, 600.0);
  auto batch = RunAlgorithm(GetParam(), table);
  ASSERT_TRUE(batch.ok());
  for (size_t r = 0; r < table.round_count(); ++r) {
    const auto output = batch->output(r);
    if (!output.has_value()) continue;
    const auto round = table.View(r);
    bool found = false;
    for (size_t m = 0; m < round.module_count(); ++m) {
      const auto reading = round.at(m);
      if (reading.has_value() && std::abs(*reading - *output) < 1e-9) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "round " << r << " output " << *output;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MnnAlgorithms, SelectionCollationTest,
    ::testing::Values(AlgorithmId::kHybrid, AlgorithmId::kAvoc),
    [](const ::testing::TestParamInfo<AlgorithmId>& info) {
      return std::string(AlgorithmName(info.param));
    });

}  // namespace
}  // namespace avoc::core
