#include "cluster/xmeans.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace avoc::cluster {
namespace {

std::vector<Point> Blobs(Rng& rng, std::vector<Point> centers,
                         size_t per_blob, double spread) {
  std::vector<Point> points;
  for (const Point& center : centers) {
    for (size_t i = 0; i < per_blob; ++i) {
      Point p;
      for (const double c : center) p.push_back(rng.Gaussian(c, spread));
      points.push_back(std::move(p));
    }
  }
  return points;
}

TEST(XMeansTest, RejectsBadArguments) {
  Rng rng(1);
  const std::vector<Point> empty;
  EXPECT_FALSE(XMeans(empty, rng).ok());
  const std::vector<Point> one = {{1.0}};
  XMeansOptions bad;
  bad.k_min = 0;
  EXPECT_FALSE(XMeans(one, rng, bad).ok());
  bad.k_min = 5;
  bad.k_max = 2;
  EXPECT_FALSE(XMeans(one, rng, bad).ok());
}

TEST(XMeansTest, FindsTwoClusters) {
  Rng rng(2);
  const auto points = Blobs(rng, {{0.0, 0.0}, {20.0, 20.0}}, 60, 0.5);
  auto result = XMeans(points, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids.size(), 2u);
}

TEST(XMeansTest, FindsThreeClusters) {
  Rng rng(3);
  const auto points =
      Blobs(rng, {{0.0}, {50.0}, {100.0}}, 80, 1.0);
  auto result = XMeans(points, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids.size(), 3u);
}

TEST(XMeansTest, SingleTightBlobStaysOneCluster) {
  Rng rng(4);
  const auto points = Blobs(rng, {{5.0, 5.0}}, 100, 0.3);
  auto result = XMeans(points, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids.size(), 1u);
}

TEST(XMeansTest, RespectsKMax) {
  Rng rng(5);
  const auto points =
      Blobs(rng, {{0.0}, {30.0}, {60.0}, {90.0}}, 40, 0.5);
  XMeansOptions options;
  options.k_max = 2;
  auto result = XMeans(points, rng, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->centroids.size(), 2u);
}

TEST(XMeansTest, RespectsKMin) {
  Rng rng(6);
  const auto points = Blobs(rng, {{5.0}}, 50, 0.2);
  XMeansOptions options;
  options.k_min = 2;
  auto result = XMeans(points, rng, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->centroids.size(), 2u);
}

TEST(BicScoreTest, TwoClusterModelBeatsOneForSeparatedData) {
  Rng rng(7);
  const auto points = Blobs(rng, {{0.0}, {100.0}}, 50, 1.0);
  auto one = KMeans(points, 1, rng);
  auto two = KMeans(points, 2, rng);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_GT(BicScore(points, *two), BicScore(points, *one));
}

TEST(BicScoreTest, PenalisesOverfittingOnOneBlob) {
  Rng rng(8);
  const auto points = Blobs(rng, {{0.0}}, 100, 1.0);
  auto one = KMeans(points, 1, rng);
  auto five = KMeans(points, 5, rng);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(five.ok());
  EXPECT_GT(BicScore(points, *one), BicScore(points, *five));
}

}  // namespace
}  // namespace avoc::cluster
