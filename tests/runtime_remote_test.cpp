#include "runtime/remote.h"

#include <gtest/gtest.h>

#include <thread>

#include "core/algorithms.h"

namespace avoc::runtime {
namespace {

class RemoteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(manager_
                    .AddGroup("lights",
                              *core::MakeEngine(core::AlgorithmId::kAvoc, 3))
                    .ok());
    auto server = RemoteVoterServer::Start(&manager_, 0);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  void TearDown() override { server_->Stop(); }

  RemoteVoterClient MustConnect() {
    auto client = RemoteVoterClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  VoterGroupManager manager_;
  std::unique_ptr<RemoteVoterServer> server_;
};

TEST_F(RemoteTest, PingPong) {
  RemoteVoterClient client = MustConnect();
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(RemoteTest, SubmitFullRoundAndQuery) {
  RemoteVoterClient client = MustConnect();
  ASSERT_TRUE(client.Submit("lights", 0, 0, 100.0).ok());
  ASSERT_TRUE(client.Submit("lights", 1, 0, 101.0).ok());
  ASSERT_TRUE(client.Submit("lights", 2, 0, 99.5).ok());
  auto value = client.Query("lights");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_NEAR(*value, 100.0, 1.5);
}

TEST_F(RemoteTest, CloseFlushesPartialRound) {
  RemoteVoterClient client = MustConnect();
  ASSERT_TRUE(client.Submit("lights", 0, 5, 42.0).ok());
  ASSERT_TRUE(client.Submit("lights", 1, 5, 44.0).ok());
  ASSERT_TRUE(client.CloseRound("lights", 5).ok());
  auto value = client.Query("lights");
  ASSERT_TRUE(value.ok());
  // AVOC's mean-nearest-neighbour selection returns a real candidate.
  EXPECT_TRUE(*value == 42.0 || *value == 44.0) << *value;
}

TEST_F(RemoteTest, QueryBeforeAnyRoundReturnsNone) {
  RemoteVoterClient client = MustConnect();
  auto value = client.Query("lights");
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), ErrorCode::kNotFound);
}

TEST_F(RemoteTest, ErrorsForUnknownGroupAndBadInput) {
  RemoteVoterClient client = MustConnect();
  EXPECT_FALSE(client.Submit("ghosts", 0, 0, 1.0).ok());
  EXPECT_FALSE(client.Query("ghosts").ok());
  EXPECT_FALSE(client.CloseRound("ghosts", 0).ok());
  // Out-of-range module.
  EXPECT_FALSE(client.Submit("lights", 99, 0, 1.0).ok());
}

TEST_F(RemoteTest, GroupsListsRegisteredGroups) {
  ASSERT_TRUE(manager_
                  .AddGroup("extra",
                            *core::MakeEngine(core::AlgorithmId::kAverage, 2))
                  .ok());
  RemoteVoterClient client = MustConnect();
  auto groups = client.Groups();
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(*groups, (std::vector<std::string>{"extra", "lights"}));
}

TEST_F(RemoteTest, MultipleConcurrentClients) {
  constexpr int kClients = 4;
  constexpr int kRounds = 20;
  std::vector<std::thread> feeders;
  // Each client plays one module; rounds complete when all three modules
  // of a round arrived (module 2 is fed by the main thread).
  for (int m = 0; m < 2; ++m) {
    feeders.emplace_back([this, m] {
      auto client = RemoteVoterClient::Connect("127.0.0.1", server_->port());
      ASSERT_TRUE(client.ok());
      for (int r = 0; r < kRounds; ++r) {
        ASSERT_TRUE(client
                        ->Submit("lights", static_cast<size_t>(m),
                                 static_cast<size_t>(r), 10.0 + m)
                        .ok());
      }
    });
  }
  RemoteVoterClient main_client = MustConnect();
  for (int r = 0; r < kRounds; ++r) {
    ASSERT_TRUE(main_client.Submit("lights", 2, static_cast<size_t>(r), 12.0)
                    .ok());
  }
  for (std::thread& feeder : feeders) feeder.join();
  // Give the last in-flight round a moment to fuse.
  auto sink = manager_.sink("lights");
  ASSERT_TRUE(sink.ok());
  for (int i = 0; i < 100 && (*sink)->output_count() < kRounds; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ((*sink)->output_count(), static_cast<size_t>(kRounds));
  (void)kClients;
}

TEST_F(RemoteTest, MalformedRequestsYieldErrors) {
  auto raw = TcpConnection::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->SendLine("SUBMIT lights notanumber 0 1.0").ok());
  auto response = raw->ReceiveLine();
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->rfind("ERR", 0) == 0) << *response;
  ASSERT_TRUE(raw->SendLine("FROBNICATE").ok());
  response = raw->ReceiveLine();
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->rfind("ERR", 0) == 0);
  ASSERT_TRUE(raw->SendLine("QUIT").ok());
  response = raw->ReceiveLine();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, "BYE");
}

TEST_F(RemoteTest, ServerStopsCleanlyWithConnectedClients) {
  RemoteVoterClient client = MustConnect();
  ASSERT_TRUE(client.Ping().ok());
  server_->Stop();  // must not hang with the client still connected
  SUCCEED();
}

TEST_F(RemoteTest, RequestsServedCounts) {
  RemoteVoterClient client = MustConnect();
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Ping().ok());
  EXPECT_GE(server_->requests_served(), 2u);
}

}  // namespace
}  // namespace avoc::runtime
