// End-to-end reproduction checks for UC-2 (§7, Fig. 7): BLE beacon fusion
// with heavy noise, missing values and the averaging-vs-selection split.
#include <gtest/gtest.h>

#include <cmath>

#include "core/batch.h"
#include "sim/ble.h"
#include "stats/ambiguity.h"

namespace avoc {
namespace {

using core::AlgorithmId;

core::PresetParams BlePreset() {
  // Absolute 6 dB agreement margin; BLE dropouts demand a loose quorum.
  core::PresetParams params;
  params.scale = core::ThresholdScale::kAbsolute;
  params.error = 6.0;
  params.quorum_fraction = 0.2;
  return params;
}

class Uc2Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new sim::BleDataset(sim::BleScenario().Generate());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static std::vector<std::optional<double>> Fuse(
      AlgorithmId id, const data::RoundTable& table,
      const core::PresetParams& params) {
    auto batch = core::RunAlgorithm(id, table, params);
    EXPECT_TRUE(batch.ok()) << core::AlgorithmName(id);
    return batch->Outputs();
  }

  static std::vector<std::optional<double>> Single(
      const data::RoundTable& table) {
    std::vector<std::optional<double>> out;
    for (size_t r = 0; r < table.round_count(); ++r) {
      out.push_back(table.At(r, 0));
    }
    return out;
  }

  static stats::AmbiguityReport Ambiguity(
      const std::vector<std::optional<double>>& a,
      const std::vector<std::optional<double>>& b) {
    stats::AmbiguityOptions options;
    options.margin = 3.0;
    return stats::MeasureAmbiguity(a, b, options);
  }

  static sim::BleDataset* dataset_;
};

sim::BleDataset* Uc2Test::dataset_ = nullptr;

TEST_F(Uc2Test, Fig7a_SingleBeaconIsAmbiguous) {
  // "it is not possible to identify the closest stack to the robot for
  // most of the duration" — a large fraction of rounds is ambiguous.
  const auto report =
      Ambiguity(Single(dataset_->stack_a), Single(dataset_->stack_b));
  EXPECT_GT(report.ambiguous_fraction(), 0.30);
}

TEST_F(Uc2Test, Fig7b_AveragingHalvesTheAmbiguity) {
  const auto single =
      Ambiguity(Single(dataset_->stack_a), Single(dataset_->stack_b));
  const auto averaged = Ambiguity(
      Fuse(AlgorithmId::kAverage, dataset_->stack_a, BlePreset()),
      Fuse(AlgorithmId::kAverage, dataset_->stack_b, BlePreset()));
  EXPECT_LT(averaged.ambiguous_fraction(),
            single.ambiguous_fraction() * 0.6);
}

TEST_F(Uc2Test, Fig7c_AvocResolvesProximity) {
  const auto fused =
      Ambiguity(Fuse(AlgorithmId::kAvoc, dataset_->stack_a, BlePreset()),
                Fuse(AlgorithmId::kAvoc, dataset_->stack_b, BlePreset()));
  const auto single =
      Ambiguity(Single(dataset_->stack_a), Single(dataset_->stack_b));
  EXPECT_LT(fused.ambiguous_fraction(), single.ambiguous_fraction());
}

TEST_F(Uc2Test, HistoryMethodHasNoEffectWithinEachCollationGroup) {
  // "The output of all history-based algorithms overlaps completely ...
  // This created 2 algorithm groups" — compare the averaging group.
  const auto avg =
      Fuse(AlgorithmId::kAverage, dataset_->stack_a, BlePreset());
  const auto standard =
      Fuse(AlgorithmId::kStandard, dataset_->stack_a, BlePreset());
  const auto sdt = Fuse(AlgorithmId::kSoftDynamicThreshold,
                        dataset_->stack_a, BlePreset());
  size_t close_standard = 0;
  size_t close_sdt = 0;
  size_t compared = 0;
  for (size_t r = 0; r < avg.size(); ++r) {
    if (!avg[r].has_value()) continue;
    ++compared;
    if (standard[r].has_value() && std::abs(*standard[r] - *avg[r]) < 1.0) {
      ++close_standard;
    }
    if (sdt[r].has_value() && std::abs(*sdt[r] - *avg[r]) < 1.0) {
      ++close_sdt;
    }
  }
  ASSERT_GT(compared, 200u);
  // "the chaotic nature of the measurements meant the history values were
  // all very low" -> the weighted averages track the plain average.
  EXPECT_GT(close_standard, compared * 9 / 10);
  EXPECT_GT(close_sdt, compared * 9 / 10);
}

TEST_F(Uc2Test, CollationMethodSplitsTheAlgorithms) {
  // The averaging group and the mean-nearest-neighbour group genuinely
  // differ: MNN outputs are whole-dB candidate values.
  const auto avg =
      Fuse(AlgorithmId::kAverage, dataset_->stack_a, BlePreset());
  const auto avoc = Fuse(AlgorithmId::kAvoc, dataset_->stack_a, BlePreset());
  size_t different = 0;
  size_t compared = 0;
  for (size_t r = 0; r < avg.size(); ++r) {
    if (!avg[r].has_value() || !avoc[r].has_value()) continue;
    ++compared;
    if (std::abs(*avg[r] - *avoc[r]) > 0.25) ++different;
  }
  ASSERT_GT(compared, 200u);
  EXPECT_GT(different, compared / 4);
}

TEST_F(Uc2Test, AveragingCollationWinsOnStability) {
  // "averaging being the better option in our experiment": fewer decision
  // flips plus ambiguous rounds than mean-nearest-neighbour selection.
  const auto averaging = Ambiguity(
      Fuse(AlgorithmId::kAverage, dataset_->stack_a, BlePreset()),
      Fuse(AlgorithmId::kAverage, dataset_->stack_b, BlePreset()));
  const auto selecting =
      Ambiguity(Fuse(AlgorithmId::kAvoc, dataset_->stack_a, BlePreset()),
                Fuse(AlgorithmId::kAvoc, dataset_->stack_b, BlePreset()));
  const size_t averaging_bad =
      averaging.ambiguous_rounds + averaging.decision_flips;
  const size_t selecting_bad =
      selecting.ambiguous_rounds + selecting.decision_flips;
  EXPECT_LT(averaging_bad, selecting_bad);
}

TEST_F(Uc2Test, MissingValueRoundsStillFuse) {
  // Fault scenario "missing values": rounds with a minority of readings
  // still converge to a common result.
  auto batch =
      core::RunAlgorithm(AlgorithmId::kAverage, dataset_->stack_a,
                         BlePreset());
  ASSERT_TRUE(batch.ok());
  size_t partial_rounds = 0;
  for (size_t r = 0; r < batch->round_count(); ++r) {
    if (batch->present_count(r) < 9 && batch->present_count(r) >= 2 &&
        batch->outcome(r) == core::RoundOutcome::kVoted) {
      ++partial_rounds;
    }
  }
  EXPECT_GT(partial_rounds, 50u);
}

TEST_F(Uc2Test, StarvedRoundsRevertToLastResult) {
  // "the system should either revert to the last accepted result, or
  // raise an error" — starve a table region and check the revert policy.
  data::RoundTable starved = dataset_->stack_a;
  for (size_t r = 100; r < 105; ++r) {
    for (size_t m = 0; m < starved.module_count(); ++m) {
      starved.At(r, m).reset();
    }
  }
  auto batch = core::RunAlgorithm(AlgorithmId::kAverage, starved, BlePreset());
  ASSERT_TRUE(batch.ok());
  for (size_t r = 100; r < 105; ++r) {
    EXPECT_EQ(batch->outcome(r), core::RoundOutcome::kRevertedLast);
    ASSERT_TRUE(batch->output(r).has_value());
    EXPECT_DOUBLE_EQ(*batch->output(r), *batch->output(99));
  }
}

TEST_F(Uc2Test, RaisePolicySurfacesStarvedRounds) {
  data::RoundTable starved = dataset_->stack_a;
  for (size_t m = 0; m < starved.module_count(); ++m) {
    starved.At(50, m).reset();
  }
  auto config = core::MakeConfig(AlgorithmId::kAverage, BlePreset());
  config.on_no_quorum = core::NoQuorumPolicy::kRaise;
  auto engine = core::VotingEngine::Create(9, config);
  ASSERT_TRUE(engine.ok());
  auto batch = core::RunOverTable(*engine, starved);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->outcome(50), core::RoundOutcome::kError);
  EXPECT_EQ(batch->status(50).code(), ErrorCode::kNoQuorum);
}

}  // namespace
}  // namespace avoc
