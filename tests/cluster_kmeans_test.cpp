#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace avoc::cluster {
namespace {

std::vector<Point> TwoBlobs(Rng& rng, size_t per_blob) {
  std::vector<Point> points;
  for (size_t i = 0; i < per_blob; ++i) {
    points.push_back({rng.Gaussian(0.0, 0.5), rng.Gaussian(0.0, 0.5)});
  }
  for (size_t i = 0; i < per_blob; ++i) {
    points.push_back({rng.Gaussian(10.0, 0.5), rng.Gaussian(10.0, 0.5)});
  }
  return points;
}

TEST(SquaredDistanceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(SquaredDistance({0.0, 0.0}, {3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1.0}, {1.0}), 0.0);
}

TEST(KMeansTest, RejectsBadArguments) {
  Rng rng(1);
  const std::vector<Point> empty;
  EXPECT_FALSE(KMeans(empty, 1, rng).ok());
  const std::vector<Point> two = {{1.0}, {2.0}};
  EXPECT_FALSE(KMeans(two, 0, rng).ok());
  EXPECT_FALSE(KMeans(two, 3, rng).ok());
  const std::vector<Point> ragged = {{1.0}, {2.0, 3.0}};
  EXPECT_FALSE(KMeans(ragged, 1, rng).ok());
}

TEST(KMeansTest, KEqualsOneYieldsCentroidAtMean) {
  Rng rng(2);
  const std::vector<Point> points = {{0.0, 0.0}, {2.0, 2.0}, {4.0, 4.0}};
  auto result = KMeans(points, 1, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->centroids.size(), 1u);
  EXPECT_NEAR(result->centroids[0][0], 2.0, 1e-9);
  EXPECT_NEAR(result->centroids[0][1], 2.0, 1e-9);
}

TEST(KMeansTest, SeparatesTwoBlobs) {
  Rng rng(3);
  const std::vector<Point> points = TwoBlobs(rng, 50);
  auto result = KMeans(points, 2, rng);
  ASSERT_TRUE(result.ok());
  // All points of the same blob share a label.
  const size_t label_a = result->labels[0];
  for (size_t i = 1; i < 50; ++i) EXPECT_EQ(result->labels[i], label_a);
  const size_t label_b = result->labels[50];
  for (size_t i = 51; i < 100; ++i) EXPECT_EQ(result->labels[i], label_b);
  EXPECT_NE(label_a, label_b);
}

TEST(KMeansTest, InertiaIsSumOfSquaredResiduals) {
  Rng rng(4);
  const std::vector<Point> points = {{0.0}, {1.0}, {10.0}, {11.0}};
  auto result = KMeans(points, 2, rng);
  ASSERT_TRUE(result.ok());
  // Optimal clustering: {0,1} and {10,11}, inertia = 0.25*4 = 1.0.
  EXPECT_NEAR(result->inertia, 1.0, 1e-9);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  Rng rng(5);
  const std::vector<Point> points = {{1.0}, {5.0}, {9.0}};
  auto result = KMeans(points, 3, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, DeterministicForSameSeed) {
  Rng rng_a(6);
  Rng rng_b(6);
  const std::vector<Point> points = TwoBlobs(rng_a, 20);
  Rng rng_c(6);
  std::vector<Point> points_b = TwoBlobs(rng_c, 20);
  auto a = KMeans(points, 2, rng_a);
  Rng rng_a2(6);
  (void)TwoBlobs(rng_a2, 20);
  auto b = KMeans(points_b, 2, rng_a2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

TEST(KMeansTest, DuplicatePointsDoNotCrashSeeding) {
  Rng rng(7);
  const std::vector<Point> points(10, Point{5.0, 5.0});
  auto result = KMeans(points, 3, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

}  // namespace
}  // namespace avoc::cluster
