#include "runtime/remote.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/framing.h"

namespace avoc::runtime {
namespace {

class RemoteBinaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    manager_ = std::make_unique<VoterGroupManager>(nullptr, &registry_);
    ASSERT_TRUE(manager_
                    ->AddGroup("lights",
                               *core::MakeEngine(core::AlgorithmId::kAvoc, 3))
                    .ok());
    auto server = RemoteVoterServer::Start(manager_.get(), 0);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  void TearDown() override { server_->Stop(); }

  RemoteVoterClient MustConnectBinary() {
    auto client =
        RemoteVoterClient::ConnectBinary("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  obs::Registry registry_;
  std::unique_ptr<VoterGroupManager> manager_;
  std::unique_ptr<RemoteVoterServer> server_;
};

// One SUBMIT_BATCH frame carrying several complete rounds must reach the
// sink via a single columnar vote — the e2e path of the refactor.
TEST_F(RemoteBinaryTest, BatchedSubmitReachesSinkViaOneFrame) {
  RemoteVoterClient client = MustConnectBinary();
  constexpr size_t kRounds = 8;
  std::vector<BatchReading> readings;
  for (size_t r = 0; r < kRounds; ++r) {
    for (uint64_t m = 0; m < 3; ++m) {
      readings.push_back(BatchReading{m, r, 20.0 + static_cast<double>(m)});
    }
  }
  auto accepted = client.SubmitBatch("lights", readings);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(*accepted, readings.size());
  // Dispatch is synchronous inside the server's frame handler, so by the
  // time the OK reply arrived every round has been voted and sunk.
  auto sink = manager_->sink("lights");
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ((*sink)->output_count(), kRounds);
  (*sink)->WithTrace([&](const core::BatchTrace&,
                         const std::vector<size_t>& rounds) {
    ASSERT_EQ(rounds.size(), kRounds);
    for (size_t i = 0; i < kRounds; ++i) EXPECT_EQ(rounds[i], i);
  });
  auto value = client.Query("lights");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_NEAR(*value, 21.0, 1.5);
}

TEST_F(RemoteBinaryTest, BatchReportsOutOfRangeModulesAsUnaccepted) {
  RemoteVoterClient client = MustConnectBinary();
  const std::vector<BatchReading> readings = {
      {0, 0, 1.0}, {99, 0, 2.0}, {1, 0, 3.0}};
  auto accepted = client.SubmitBatch("lights", readings);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(*accepted, 2u);
}

TEST_F(RemoteBinaryTest, PipelinedBatchesReplyInOrder) {
  RemoteVoterClient client = MustConnectBinary();
  constexpr size_t kFrames = 16;
  for (size_t f = 0; f < kFrames; ++f) {
    std::vector<BatchReading> readings;
    for (uint64_t m = 0; m < 3; ++m) {
      readings.push_back(BatchReading{m, f, 5.0});
    }
    ASSERT_TRUE(client.PipelineSubmitBatch("lights", readings).ok());
  }
  EXPECT_EQ(client.pending_replies(), kFrames);
  for (size_t f = 0; f < kFrames; ++f) {
    auto accepted = client.AwaitSubmitBatch();
    ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
    EXPECT_EQ(*accepted, 3u);
  }
  EXPECT_EQ(client.pending_replies(), 0u);
  EXPECT_FALSE(client.AwaitSubmitBatch().ok());  // nothing pending
  auto sink = manager_->sink("lights");
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ((*sink)->output_count(), kFrames);
}

// Both protocols share the port; detection is per-connection.
TEST_F(RemoteBinaryTest, BinaryAndLegacyClientsCoexist) {
  RemoteVoterClient binary = MustConnectBinary();
  auto legacy = RemoteVoterClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(legacy->Submit("lights", 0, 0, 30.0).ok());
  const std::vector<BatchReading> rest = {{1, 0, 31.0}, {2, 0, 32.0}};
  auto accepted = binary.SubmitBatch("lights", rest);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(*accepted, 2u);
  auto via_legacy = legacy->Query("lights");
  auto via_binary = binary.Query("lights");
  ASSERT_TRUE(via_legacy.ok());
  ASSERT_TRUE(via_binary.ok());
  EXPECT_EQ(*via_legacy, *via_binary);
}

TEST_F(RemoteBinaryTest, ControlFramesWork) {
  RemoteVoterClient client = MustConnectBinary();
  EXPECT_TRUE(client.Ping().ok());

  auto groups = client.Groups();
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(*groups, (std::vector<std::string>{"lights"}));

  auto empty = client.Query("lights");
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), ErrorCode::kNotFound);

  const std::vector<BatchReading> partial = {{0, 3, 7.0}, {1, 3, 9.0}};
  ASSERT_TRUE(client.SubmitBatch("lights", partial).ok());
  ASSERT_TRUE(client.CloseRound("lights", 3).ok());
  auto value = client.Query("lights");
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(*value == 7.0 || *value == 9.0) << *value;

  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("avoc_remote_frames_in_total"), std::string::npos);

  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  ASSERT_EQ(health->size(), 1u);
  EXPECT_EQ(health->front().rfind("GROUP lights", 0), 0u) << health->front();

  EXPECT_FALSE(client.SubmitBatch("ghosts", partial).ok());
  EXPECT_FALSE(client.CloseRound("ghosts", 0).ok());
  EXPECT_FALSE(client.Query("ghosts").ok());
}

TEST_F(RemoteBinaryTest, RequestsServedCountsBinaryFrames) {
  RemoteVoterClient client = MustConnectBinary();
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Ping().ok());
  EXPECT_GE(server_->requests_served(), 3u);
}

// --- raw-socket adversarial cases --------------------------------------------

// Reads frames off a raw connection until EOF or `want` frames arrived.
std::vector<Frame> DrainFrames(TcpConnection& conn, size_t want) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  char chunk[4096];
  while (frames.size() < want) {
    auto frame = decoder.Next();
    if (frame.ok()) {
      frames.push_back(std::move(*frame));
      continue;
    }
    if (frame.status().code() != ErrorCode::kNotFound) break;
    auto n = conn.ReceiveSome(chunk, sizeof(chunk));
    if (!n.ok()) break;  // EOF or error
    decoder.Feed(std::string_view(chunk, *n));
  }
  return frames;
}

bool AtEof(TcpConnection& conn) {
  char byte;
  auto n = conn.ReceiveSome(&byte, 1);
  return !n.ok() && n.status().code() == ErrorCode::kNotFound;
}

TEST_F(RemoteBinaryTest, BadPreambleGetsErrorAndClose) {
  auto raw = TcpConnection::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->SetReceiveTimeoutMs(5000).ok());
  // First byte announces binary, second byte is wrong.
  ASSERT_TRUE(raw->SendAll(std::string("\xAB\xFF", 2)).ok());
  const std::vector<Frame> frames = DrainFrames(*raw, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kError);
  EXPECT_TRUE(AtEof(*raw));
}

TEST_F(RemoteBinaryTest, ZeroLengthFramePoisonsConnection) {
  auto raw = TcpConnection::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->SetReceiveTimeoutMs(5000).ok());
  std::string bytes(reinterpret_cast<const char*>(kBinaryMagic), 2);
  bytes.push_back('\x00');  // zero-length frame: protocol violation
  ASSERT_TRUE(raw->SendAll(bytes).ok());
  const std::vector<Frame> frames = DrainFrames(*raw, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kError);
  EXPECT_TRUE(AtEof(*raw));
}

TEST_F(RemoteBinaryTest, QuitDrainsRepliesBeforeClose) {
  auto raw = TcpConnection::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->SetReceiveTimeoutMs(5000).ok());
  std::string bytes(reinterpret_cast<const char*>(kBinaryMagic), 2);
  bytes += EncodeFrame(FrameType::kPing);
  bytes += EncodeFrame(FrameType::kQuit);
  ASSERT_TRUE(raw->SendAll(bytes).ok());
  const std::vector<Frame> frames = DrainFrames(*raw, 2);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kPong);
  EXPECT_EQ(frames[1].type, FrameType::kBye);
  EXPECT_TRUE(AtEof(*raw));
}

// A byte-at-a-time sender (slow loris) must still be served correctly:
// the decoder buffers across arbitrarily small reads.
TEST_F(RemoteBinaryTest, SlowLorisSingleBytesStillServed) {
  auto raw = TcpConnection::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->SetReceiveTimeoutMs(5000).ok());
  std::string bytes(reinterpret_cast<const char*>(kBinaryMagic), 2);
  bytes += EncodeFrame(FrameType::kPing);
  bytes += EncodeFrame(FrameType::kQuery, EncodeQuery("lights"));
  for (char byte : bytes) {
    ASSERT_TRUE(raw->SendAll(std::string(1, byte)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::vector<Frame> frames = DrainFrames(*raw, 2);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kPong);
  EXPECT_EQ(frames[1].type, FrameType::kNone);  // no rounds voted yet
}

// --- tests with tuned server options ------------------------------------------

TEST(RemoteBinaryOptionsTest, OversizedFrameRejectedAtConfiguredLimit) {
  VoterGroupManager manager;
  ASSERT_TRUE(
      manager.AddGroup("g", *core::MakeEngine(core::AlgorithmId::kAverage, 2))
          .ok());
  RemoteServerOptions options;
  options.max_frame_bytes = 512;
  auto server = RemoteVoterServer::StartWithOptions(&manager, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto raw = TcpConnection::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->SetReceiveTimeoutMs(5000).ok());
  std::vector<BatchReading> readings(100);  // ~1.7 KB payload > 512
  for (uint64_t i = 0; i < readings.size(); ++i) {
    readings[i] = BatchReading{i % 2, i / 2, 1.0};
  }
  std::string bytes(reinterpret_cast<const char*>(kBinaryMagic), 2);
  bytes += EncodeFrame(FrameType::kSubmitBatch,
                       EncodeSubmitBatch("g", readings));
  ASSERT_TRUE(raw->SendAll(bytes).ok());
  const std::vector<Frame> frames = DrainFrames(*raw, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kError);
  EXPECT_TRUE(AtEof(*raw));
  (*server)->Stop();
}

TEST(RemoteBinaryOptionsTest, IdleConnectionsAreDropped) {
  VoterGroupManager manager;
  ASSERT_TRUE(
      manager.AddGroup("g", *core::MakeEngine(core::AlgorithmId::kAverage, 2))
          .ok());
  RemoteServerOptions options;
  options.idle_timeout_ms = 60;
  auto server = RemoteVoterServer::StartWithOptions(&manager, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto raw = TcpConnection::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->SetReceiveTimeoutMs(5000).ok());
  // Say nothing; the timer wheel must reap us.  Bounded wait: the recv
  // returns NotFound at the server-initiated EOF.
  char byte;
  auto n = raw->ReceiveSome(&byte, 1);
  EXPECT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), ErrorCode::kNotFound) << n.status().ToString();
  (*server)->Stop();
}

// Pipelining hundreds of METRICS requests without reading replies must
// trip the write high-water mark: past it the server answers "ERR busy"
// instead of executing, and counts backpressure events.  Small kernel
// buffers on both ends make the queue growth deterministic.
TEST(RemoteBinaryOptionsTest, BackpressureRejectsPastHighWater) {
  obs::Registry registry;
  VoterGroupManager manager(nullptr, &registry);
  ASSERT_TRUE(
      manager.AddGroup("g", *core::MakeEngine(core::AlgorithmId::kAverage, 2))
          .ok());
  RemoteServerOptions options;
  options.write_high_water_bytes = 8 * 1024;
  options.read_pause_bytes = 64 * 1024;
  options.send_buffer_bytes = 4 * 1024;
  auto server = RemoteVoterServer::StartWithOptions(&manager, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto raw = TcpConnection::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->SetReceiveTimeoutMs(10000).ok());
  const int rcvbuf = 4 * 1024;
  ASSERT_EQ(::setsockopt(raw->fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                         sizeof(rcvbuf)),
            0);

  constexpr size_t kRequests = 500;
  std::string bytes(reinterpret_cast<const char*>(kBinaryMagic), 2);
  const std::string metrics_frame = EncodeFrame(FrameType::kMetrics);
  for (size_t i = 0; i < kRequests; ++i) bytes += metrics_frame;
  ASSERT_TRUE(raw->SendAll(bytes).ok());

  // Now drain every reply; some must be busy-rejections.
  const std::vector<Frame> frames = DrainFrames(*raw, kRequests);
  ASSERT_EQ(frames.size(), kRequests);
  size_t busy = 0;
  for (const Frame& frame : frames) {
    if (frame.type == FrameType::kError) {
      std::string reason;
      ASSERT_TRUE(DecodeError(frame.payload, &reason).ok());
      EXPECT_EQ(reason, "busy");
      ++busy;
    } else {
      EXPECT_EQ(frame.type, FrameType::kText);
    }
  }
  EXPECT_GT(busy, 0u);
  EXPECT_LT(busy, kRequests);  // the early requests were served
  EXPECT_GT((*server)->backpressure_events(), 0u);
  (*server)->Stop();
}

}  // namespace
}  // namespace avoc::runtime
