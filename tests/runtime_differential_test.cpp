// Differential test: five ingest paths, one truth.
//
// The same seeded workload is pushed through (a) the in-process
// VoterGroupManager batch API, (b) the binary frame protocol over a
// chaotic-but-healing simulated network with the resilient client, (c)
// the legacy line protocol over a gentle simulated network (delays and
// fragmentation only — the line protocol has no retry identity), (d)
// the 3-shard ShardedVoterServer under the same chaos, where the
// target group lives on whatever shard the router says and the
// connection must migrate to reach it, and (e) a 2-node VoterCluster
// under the same chaos with the group MIGRATED between nodes twice
// mid-workload, the client chasing MOVED redirects.  All five must
// produce bit-identical sink traces: same rounds, same fused values,
// no duplicates, no holes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/cluster.h"
#include "runtime/group_manager.h"
#include "runtime/remote.h"
#include "runtime/resilient.h"
#include "runtime/sharded_remote.h"
#include "runtime/sim_net.h"
#include "util/rng.h"
#include "util/strings.h"

namespace avoc::runtime {
namespace {

constexpr uint16_t kPort = 7;
constexpr size_t kModules = 3;
constexpr size_t kRounds = 6;

std::vector<std::vector<BatchReading>> WorkloadFor(uint64_t seed) {
  Rng values(seed ^ 0xD1FFull);
  std::vector<std::vector<BatchReading>> rounds;
  for (size_t r = 0; r < kRounds; ++r) {
    std::vector<BatchReading> batch;
    for (uint64_t m = 0; m < kModules; ++m) {
      batch.push_back(BatchReading{m, r, 20.0 + values.Gaussian(0.0, 2.0)});
    }
    rounds.push_back(std::move(batch));
  }
  return rounds;
}

std::string SinkTrace(const VoterGroupManager& manager) {
  auto sink = manager.sink("lights");
  if (!sink.ok()) return "<no sink>";
  std::string trace;
  for (const OutputMessage& out : (*sink)->outputs()) {
    trace += StrFormat("%zu %d %a\n", out.round,
                       static_cast<int>(out.result.outcome),
                       out.result.value.value_or(-0.0));
  }
  return trace;
}

std::unique_ptr<VoterGroupManager> MakeManager(obs::Registry* registry) {
  auto manager = std::make_unique<VoterGroupManager>(nullptr, registry);
  EXPECT_TRUE(
      manager
          ->AddGroup("lights", *core::MakeEngine(core::AlgorithmId::kAvoc,
                                                 kModules))
          .ok());
  return manager;
}

std::string InProcessTrace(uint64_t seed) {
  obs::Registry registry;
  auto manager = MakeManager(&registry);
  for (const std::vector<BatchReading>& batch : WorkloadFor(seed)) {
    std::vector<ReadingMessage> readings;
    for (const BatchReading& r : batch) {
      readings.push_back(ReadingMessage{static_cast<size_t>(r.module),
                                        static_cast<size_t>(r.round),
                                        r.value});
    }
    auto stats = manager->SubmitBatch("lights", readings);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  }
  return SinkTrace(*manager);
}

std::string BinaryChaosTrace(uint64_t seed) {
  SimWorld::Options options;
  options.fault_plan = FaultPlan::Chaos(seed, 3000);
  SimWorld world(seed, options);
  obs::Registry registry;
  auto manager = MakeManager(&registry);
  auto listener = world.Listen(kPort);
  EXPECT_TRUE(listener.ok());
  auto server = RemoteVoterServer::StartOnReactor(
      manager.get(), RemoteServerOptions{}, std::move(*listener),
      world.reactor(), /*spawn_loop_thread=*/false);
  EXPECT_TRUE(server.ok()) << server.status().ToString();

  RetryPolicy policy;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 200;
  policy.request_timeout_ms = 150;
  policy.deadline_ms = 60 * 1000;
  ResilientVoterClient client([&world] { return world.Connect(kPort); },
                              &world, "diff-client", policy, seed, &registry);
  for (const std::vector<BatchReading>& batch : WorkloadFor(seed)) {
    auto accepted = client.SubmitBatch("lights", batch);
    EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
  }
  const std::string trace = SinkTrace(*manager);
  (*server)->Stop();
  return trace;
}

std::string LegacyGentleTrace(uint64_t seed) {
  SimWorld::Options options;
  options.fault_plan = FaultPlan::Gentle(seed);
  SimWorld world(seed, options);
  obs::Registry registry;
  auto manager = MakeManager(&registry);
  auto listener = world.Listen(kPort);
  EXPECT_TRUE(listener.ok());
  auto server = RemoteVoterServer::StartOnReactor(
      manager.get(), RemoteServerOptions{}, std::move(*listener),
      world.reactor(), /*spawn_loop_thread=*/false);
  EXPECT_TRUE(server.ok()) << server.status().ToString();

  auto transport = world.Connect(kPort);
  EXPECT_TRUE(transport.ok());
  auto client =
      RemoteVoterClient::FromTransport(std::move(*transport), /*binary=*/false);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  for (const std::vector<BatchReading>& batch : WorkloadFor(seed)) {
    for (const BatchReading& r : batch) {
      const Status status =
          client->Submit("lights", static_cast<size_t>(r.module),
                         static_cast<size_t>(r.round), r.value);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
  }
  const std::string trace = SinkTrace(*manager);
  (*server)->Stop();
  return trace;
}

std::string ShardedChaosTrace(uint64_t seed) {
  SimWorld::Options options;
  options.fault_plan = FaultPlan::Chaos(seed, 3000);
  SimWorld world(seed, options);
  obs::Registry registry;
  auto listener = world.Listen(kPort);
  EXPECT_TRUE(listener.ok());
  std::vector<std::shared_ptr<Reactor>> reactors = {
      world.reactor(), world.NewReactor(), world.NewReactor()};
  ShardedServerOptions server_options;
  server_options.shards = 3;
  auto server = ShardedVoterServer::StartOnReactors(
      server_options, std::move(*listener), std::move(reactors),
      /*spawn_loop_threads=*/false, /*store=*/nullptr, &registry);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  // A decoy on every other shard so the server is genuinely multi-shard
  // even though the workload only feeds "lights".
  for (const char* group : {"lights", "group-0", "group-1", "group-2"}) {
    EXPECT_TRUE((*server)
                    ->AddGroup(group, *core::MakeEngine(
                                          core::AlgorithmId::kAvoc, kModules))
                    .ok());
  }
  EXPECT_TRUE((*server)->Serve().ok());

  RetryPolicy policy;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 200;
  policy.request_timeout_ms = 150;
  policy.deadline_ms = 60 * 1000;
  ResilientVoterClient client([&world] { return world.Connect(kPort); },
                              &world, "diff-client", policy, seed, &registry);
  for (const std::vector<BatchReading>& batch : WorkloadFor(seed)) {
    auto accepted = client.SubmitBatch("lights", batch);
    EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
  }
  auto sink = (*server)->sink("lights");
  std::string trace = "<no sink>";
  if (sink.ok()) {
    trace.clear();
    for (const OutputMessage& out : (*sink)->outputs()) {
      trace += StrFormat("%zu %d %a\n", out.round,
                         static_cast<int>(out.result.outcome),
                         out.result.value.value_or(-0.0));
    }
  }
  (*server)->Stop();
  return trace;
}

std::string ClusterMigrationTrace(uint64_t seed) {
  SimWorld::Options options;
  options.fault_plan = FaultPlan::Chaos(seed, 3000);
  SimWorld world(seed, options);
  obs::Registry registry;
  VoterCluster::Options cluster_options;
  cluster_options.nodes = 2;
  auto cluster = VoterCluster::StartOnWorld(&world, cluster_options,
                                            &registry);
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  EXPECT_TRUE(
      (*cluster)
          ->AddGroup("lights",
                     [] {
                       return core::MakeEngine(core::AlgorithmId::kAvoc,
                                               kModules);
                     })
          .ok());

  RetryPolicy policy;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 200;
  policy.request_timeout_ms = 150;
  policy.deadline_ms = 60 * 1000;
  ResilientVoterClient client(
      []() -> Result<std::unique_ptr<Transport>> {
        return IoError("node directory only");
      },
      &world, "diff-client", policy, seed, &registry);
  client.UseNodeDirectory(
      [&cluster](size_t node) { return (*cluster)->DialNode(node); },
      /*node_count=*/2);
  const auto workload = WorkloadFor(seed);
  for (size_t r = 0; r < workload.size(); ++r) {
    auto accepted = client.SubmitBatch("lights", workload[r]);
    EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
    if (r == 1 || r == 3) {
      // Bounce the group to the other node mid-workload; the handoff
      // commits while the next rounds are already being submitted.
      const size_t owner = (*cluster)->OwnerOf("lights");
      (*cluster)->Migrate("lights", 1 - owner, [](Status status) {
        EXPECT_TRUE(status.ok()) << status.ToString();
      });
      world.Pump();
    }
  }
  world.Pump();
  auto sink = (*cluster)->sink("lights");
  std::string trace = "<no sink>";
  if (sink.ok()) {
    trace.clear();
    for (const OutputMessage& out : (*sink)->outputs()) {
      trace += StrFormat("%zu %d %a\n", out.round,
                         static_cast<int>(out.result.outcome),
                         out.result.value.value_or(-0.0));
    }
  }
  EXPECT_GE(client.redirects_followed(), 1u);
  (*cluster)->Stop();
  return trace;
}

TEST(DifferentialTest, AllIngestPathsProduceIdenticalSinkTraces) {
  for (uint64_t seed = 500; seed < 516; ++seed) {
    SCOPED_TRACE(StrFormat("seed=%llu",
                           static_cast<unsigned long long>(seed)));
    const std::string in_process = InProcessTrace(seed);
    ASSERT_NE(in_process, "<no sink>");
    ASSERT_FALSE(in_process.empty());
    EXPECT_EQ(BinaryChaosTrace(seed), in_process);
    EXPECT_EQ(LegacyGentleTrace(seed), in_process);
    EXPECT_EQ(ShardedChaosTrace(seed), in_process);
    EXPECT_EQ(ClusterMigrationTrace(seed), in_process);
  }
}

}  // namespace
}  // namespace avoc::runtime
