#include "json/write.h"

#include <gtest/gtest.h>

#include "json/parse.h"

namespace avoc::json {
namespace {

TEST(JsonWriteTest, Scalars) {
  EXPECT_EQ(Write(Value()), "null");
  EXPECT_EQ(Write(Value(true)), "true");
  EXPECT_EQ(Write(Value(false)), "false");
  EXPECT_EQ(Write(Value("hi")), "\"hi\"");
}

TEST(JsonWriteTest, IntegralNumbersHaveNoDecimalPoint) {
  EXPECT_EQ(Write(Value(5.0)), "5");
  EXPECT_EQ(Write(Value(-17.0)), "-17");
  EXPECT_EQ(Write(Value(0.0)), "0");
}

TEST(JsonWriteTest, FractionalNumbersRoundTripExactly) {
  for (const double d : {0.05, 3.14159, -2.5, 1e-9, 6.02e23}) {
    const std::string text = Write(Value(d));
    auto parsed = Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_DOUBLE_EQ(parsed->DoubleOr(0), d) << text;
  }
}

TEST(JsonWriteTest, NonFiniteBecomesNull) {
  EXPECT_EQ(Write(Value(std::numeric_limits<double>::quiet_NaN())), "null");
  EXPECT_EQ(Write(Value(std::numeric_limits<double>::infinity())), "null");
}

TEST(JsonWriteTest, StringEscaping) {
  EXPECT_EQ(Write(Value("a\"b")), R"("a\"b")");
  EXPECT_EQ(Write(Value("a\\b")), R"("a\\b")");
  EXPECT_EQ(Write(Value("a\nb")), R"("a\nb")");
  EXPECT_EQ(Write(Value(std::string("a\x01") + "b")), "\"a\\u0001b\"");
}

TEST(JsonWriteTest, CompactContainers) {
  EXPECT_EQ(Write(Value(MakeArray({1.0, 2.0}))), "[1,2]");
  EXPECT_EQ(Write(Value(MakeObject({{"a", 1.0}}))), R"({"a":1})");
  EXPECT_EQ(Write(Value(Array{})), "[]");
  EXPECT_EQ(Write(Value(Object{})), "{}");
}

TEST(JsonWriteTest, PrettyIndents) {
  const std::string pretty =
      WritePretty(Value(MakeObject({{"a", MakeArray({1.0})}})));
  EXPECT_EQ(pretty, "{\n  \"a\": [\n    1\n  ]\n}");
}

TEST(JsonWriteTest, ObjectOrderPreserved) {
  Object obj;
  obj.Set("z", 1.0);
  obj.Set("a", 2.0);
  EXPECT_EQ(Write(Value(std::move(obj))), R"({"z":1,"a":2})");
}

class JsonRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTripTest, ParseWriteParseIsIdentity) {
  auto first = Parse(GetParam());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string compact = Write(*first);
  auto second = Parse(compact);
  ASSERT_TRUE(second.ok()) << compact;
  EXPECT_EQ(*first, *second) << compact;
  // Pretty output parses back to the same value too.
  auto third = Parse(WritePretty(*first));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*first, *third);
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonRoundTripTest,
    ::testing::Values(
        "null", "true", "42", "-0.5", "\"text with \\\"quotes\\\"\"", "[]",
        "{}", "[1, [2, [3, [4]]]]",
        R"({"nested": {"deep": {"array": [1, 2, {"x": null}]}}})",
        R"({"unicode": "café €"})",
        R"([true, false, null, 0, -1, 1.5, "mix"])",
        R"({"algorithm_name":"AVOC","params":{"error":0.05},"bootstrapping":true})"));

}  // namespace
}  // namespace avoc::json
