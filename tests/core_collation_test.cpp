#include "core/collation.h"

#include <gtest/gtest.h>

#include <vector>

namespace avoc::core {
namespace {

const std::optional<double> kNoPrevious;

TEST(CollationTest, WeightedAverageBasic) {
  const std::vector<double> values = {10.0, 20.0};
  const std::vector<double> weights = {1.0, 3.0};
  auto result = Collate(Collation::kWeightedAverage, values, weights,
                        kNoPrevious);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, 17.5);
}

TEST(CollationTest, UniformWeightsGiveMean) {
  const std::vector<double> values = {1.0, 2.0, 6.0};
  const std::vector<double> weights = {1.0, 1.0, 1.0};
  auto result =
      Collate(Collation::kWeightedAverage, values, weights, kNoPrevious);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, 3.0);
}

TEST(CollationTest, ZeroWeightCandidatesIgnored) {
  const std::vector<double> values = {10.0, 9999.0};
  const std::vector<double> weights = {2.0, 0.0};
  auto result =
      Collate(Collation::kWeightedAverage, values, weights, kNoPrevious);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, 10.0);
}

TEST(CollationTest, ErrorsOnDegenerateInputs) {
  const std::vector<double> none;
  EXPECT_FALSE(Collate(Collation::kWeightedAverage, none, none, kNoPrevious)
                   .ok());
  const std::vector<double> values = {1.0, 2.0};
  const std::vector<double> short_weights = {1.0};
  EXPECT_FALSE(Collate(Collation::kWeightedAverage, values, short_weights,
                       kNoPrevious)
                   .ok());
  const std::vector<double> zero_weights = {0.0, 0.0};
  EXPECT_FALSE(Collate(Collation::kWeightedAverage, values, zero_weights,
                       kNoPrevious)
                   .ok());
  EXPECT_FALSE(Collate(Collation::kMeanNearestNeighbor, values, zero_weights,
                       kNoPrevious)
                   .ok());
  EXPECT_FALSE(Collate(Collation::kWeightedMedian, values, zero_weights,
                       kNoPrevious)
                   .ok());
}

TEST(CollationTest, MnnSelectsRealCandidate) {
  const std::vector<double> values = {10.0, 20.0, 30.0};
  const std::vector<double> weights = {1.0, 1.0, 2.0};
  // Weighted mean = 22.5 -> nearest candidate is 20.
  auto result =
      Collate(Collation::kMeanNearestNeighbor, values, weights, kNoPrevious);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, 20.0);
}

TEST(CollationTest, MnnNeverSelectsZeroWeightCandidate) {
  // Mean of weighted candidates is 15; the zero-weight 15.1 is nearest but
  // ineligible.
  const std::vector<double> values = {10.0, 20.0, 15.1};
  const std::vector<double> weights = {1.0, 1.0, 0.0};
  auto result =
      Collate(Collation::kMeanNearestNeighbor, values, weights, kNoPrevious);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result == 10.0 || *result == 20.0);
}

TEST(CollationTest, MnnTieBrokenByPreviousOutput) {
  // Mean = 15: candidates 10 and 20 are equidistant.
  const std::vector<double> values = {10.0, 20.0};
  const std::vector<double> weights = {1.0, 1.0};
  auto high = Collate(Collation::kMeanNearestNeighbor, values, weights,
                      std::optional<double>(19.0));
  ASSERT_TRUE(high.ok());
  EXPECT_DOUBLE_EQ(*high, 20.0);
  auto low = Collate(Collation::kMeanNearestNeighbor, values, weights,
                     std::optional<double>(11.0));
  ASSERT_TRUE(low.ok());
  EXPECT_DOUBLE_EQ(*low, 10.0);
}

TEST(CollationTest, MnnOutputIsAlwaysACandidate) {
  const std::vector<double> values = {3.0, 7.0, 12.0, 40.0};
  const std::vector<double> weights = {0.2, 0.9, 0.4, 0.1};
  auto result =
      Collate(Collation::kMeanNearestNeighbor, values, weights, kNoPrevious);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::find(values.begin(), values.end(), *result) !=
              values.end());
}

TEST(CollationTest, WeightedMedianOddUniform) {
  const std::vector<double> values = {5.0, 1.0, 9.0};
  const std::vector<double> weights = {1.0, 1.0, 1.0};
  auto result =
      Collate(Collation::kWeightedMedian, values, weights, kNoPrevious);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, 5.0);
}

TEST(CollationTest, WeightedMedianFollowsWeightMass) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const std::vector<double> weights = {10.0, 1.0, 1.0};
  auto result =
      Collate(Collation::kWeightedMedian, values, weights, kNoPrevious);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, 1.0);
}

TEST(CollationTest, WeightedMedianEvenSplitTakesMidpoint) {
  const std::vector<double> values = {1.0, 3.0};
  const std::vector<double> weights = {1.0, 1.0};
  auto result =
      Collate(Collation::kWeightedMedian, values, weights, kNoPrevious);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, 2.0);
}

TEST(CollationTest, OutputInsideCandidateHull) {
  const std::vector<double> values = {2.0, 8.0, 5.0};
  const std::vector<double> weights = {0.5, 0.3, 0.9};
  for (const Collation method :
       {Collation::kWeightedAverage, Collation::kMeanNearestNeighbor,
        Collation::kWeightedMedian}) {
    auto result = Collate(method, values, weights, kNoPrevious);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(*result, 2.0);
    EXPECT_LE(*result, 8.0);
  }
}

}  // namespace
}  // namespace avoc::core
