#include "sim/fault.h"

#include <gtest/gtest.h>

namespace avoc::sim {
namespace {

data::RoundTable UniformTable(size_t rounds = 10, size_t modules = 3,
                              double value = 100.0) {
  data::RoundTable table = data::RoundTable::WithModuleCount(modules);
  for (size_t r = 0; r < rounds; ++r) {
    EXPECT_TRUE(
        table.AppendRound(std::vector<double>(modules, value)).ok());
  }
  return table;
}

TEST(FaultTest, InjectBiasWholeCapture) {
  data::RoundTable table = UniformTable();
  ASSERT_TRUE(InjectBias(table, 1, 6000.0).ok());
  for (size_t r = 0; r < table.round_count(); ++r) {
    EXPECT_DOUBLE_EQ(*table.At(r, 0), 100.0);
    EXPECT_DOUBLE_EQ(*table.At(r, 1), 6100.0);
  }
}

TEST(FaultTest, InjectBiasWindowed) {
  data::RoundTable table = UniformTable(10);
  ASSERT_TRUE(InjectBias(table, 0, 5.0, 3, 6).ok());
  EXPECT_DOUBLE_EQ(*table.At(2, 0), 100.0);
  EXPECT_DOUBLE_EQ(*table.At(3, 0), 105.0);
  EXPECT_DOUBLE_EQ(*table.At(5, 0), 105.0);
  EXPECT_DOUBLE_EQ(*table.At(6, 0), 100.0);
}

TEST(FaultTest, InjectBiasSkipsMissingReadings) {
  data::RoundTable table = UniformTable(3);
  table.At(1, 0).reset();
  ASSERT_TRUE(InjectBias(table, 0, 10.0).ok());
  EXPECT_FALSE(table.At(1, 0).has_value());
  EXPECT_DOUBLE_EQ(*table.At(0, 0), 110.0);
}

TEST(FaultTest, InjectBiasValidatesModule) {
  data::RoundTable table = UniformTable();
  EXPECT_FALSE(InjectBias(table, 99, 1.0).ok());
}

TEST(FaultTest, InjectDropoutRemovesRoughlyPFraction) {
  data::RoundTable table = UniformTable(2000);
  Rng rng(1);
  ASSERT_TRUE(InjectDropout(table, 2, 0.25, rng).ok());
  size_t missing = 0;
  for (size_t r = 0; r < table.round_count(); ++r) {
    if (!table.At(r, 2).has_value()) ++missing;
  }
  EXPECT_NEAR(static_cast<double>(missing) / 2000.0, 0.25, 0.04);
  // Other modules untouched.
  for (size_t r = 0; r < table.round_count(); ++r) {
    EXPECT_TRUE(table.At(r, 0).has_value());
  }
}

TEST(FaultTest, InjectDropoutValidatesProbability) {
  data::RoundTable table = UniformTable();
  Rng rng(2);
  EXPECT_FALSE(InjectDropout(table, 0, -0.1, rng).ok());
  EXPECT_FALSE(InjectDropout(table, 0, 1.1, rng).ok());
}

TEST(FaultTest, InjectOutageKillsRange) {
  data::RoundTable table = UniformTable(10);
  ASSERT_TRUE(InjectOutage(table, 1, 4).ok());
  EXPECT_TRUE(table.At(3, 1).has_value());
  for (size_t r = 4; r < 10; ++r) {
    EXPECT_FALSE(table.At(r, 1).has_value());
  }
}

TEST(FaultTest, InjectSpikeSingleRound) {
  data::RoundTable table = UniformTable(5);
  ASSERT_TRUE(InjectSpike(table, 0, 2, -50.0).ok());
  EXPECT_DOUBLE_EQ(*table.At(2, 0), 50.0);
  EXPECT_DOUBLE_EQ(*table.At(1, 0), 100.0);
  EXPECT_FALSE(InjectSpike(table, 0, 99, 1.0).ok());
}

TEST(FaultTest, InjectStuckAtFreezesValue) {
  data::RoundTable table = data::RoundTable::WithModuleCount(1);
  for (int r = 0; r < 6; ++r) {
    ASSERT_TRUE(table.AppendRound(std::vector<double>{r * 10.0}).ok());
  }
  ASSERT_TRUE(InjectStuckAt(table, 0, 2).ok());
  EXPECT_DOUBLE_EQ(*table.At(1, 0), 10.0);
  for (size_t r = 2; r < 6; ++r) {
    EXPECT_DOUBLE_EQ(*table.At(r, 0), 20.0);
  }
  EXPECT_FALSE(InjectStuckAt(table, 0, 99).ok());
}

TEST(FaultTest, InjectConflictSplitsCamps) {
  data::RoundTable table = UniformTable(4, 5);
  ASSERT_TRUE(InjectConflict(table, 3, 500.0).ok());
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(*table.At(r, 2), 100.0);
    EXPECT_DOUBLE_EQ(*table.At(r, 3), 600.0);
    EXPECT_DOUBLE_EQ(*table.At(r, 4), 600.0);
  }
}

TEST(FaultTest, InjectConflictNeedsBothCamps) {
  data::RoundTable table = UniformTable(2, 3);
  EXPECT_FALSE(InjectConflict(table, 0, 1.0).ok());
  EXPECT_FALSE(InjectConflict(table, 3, 1.0).ok());
}

}  // namespace
}  // namespace avoc::sim
