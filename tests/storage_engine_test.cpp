#include "storage/engine.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace avoc::storage {
namespace {

uint64_t Bits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

HistorySnapshot Snapshot(std::vector<double> records, size_t rounds) {
  HistorySnapshot snapshot;
  snapshot.records = std::move(records);
  snapshot.rounds = rounds;
  return snapshot;
}

class StorageEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("avoc_engine_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  StorageEngineOptions Options() {
    StorageEngineOptions options;
    options.dir = dir_;
    return options;
  }

  std::string dir_;
};

TEST_F(StorageEngineTest, HistoryPutGetEraseRoundTrip) {
  auto engine = StorageEngine::Open(Options());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Put("shelf1", Snapshot({1.0, 0.5, 0.25}, 7)).ok());
  ASSERT_TRUE((*engine)->Put("shelf2", Snapshot({0.9}, 2)).ok());
  EXPECT_EQ((*engine)->size(), 2u);
  EXPECT_EQ((*engine)->Groups(),
            (std::vector<std::string>{"shelf1", "shelf2"}));
  auto got = (*engine)->Get("shelf1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->records, (std::vector<double>{1.0, 0.5, 0.25}));
  EXPECT_EQ(got->rounds, 7u);
  EXPECT_EQ((*engine)->Get("absent").status().code(), ErrorCode::kNotFound);
  auto erased = (*engine)->Erase("shelf1");
  ASSERT_TRUE(erased.ok());
  EXPECT_TRUE(*erased);
  auto again = (*engine)->Erase("shelf1");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  EXPECT_EQ((*engine)->size(), 1u);
}

TEST_F(StorageEngineTest, HistorySurvivesReopen) {
  {
    auto engine = StorageEngine::Open(Options());
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Put("g", Snapshot({0.75, 0.5}, 11)).ok());
    ASSERT_TRUE((*engine)->Erase("doomed").ok());
  }
  auto reopened = StorageEngine::Open(Options());
  ASSERT_TRUE(reopened.ok());
  auto got = (*reopened)->Get("g");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->records, (std::vector<double>{0.75, 0.5}));
  EXPECT_EQ(got->rounds, 11u);
}

TEST_F(StorageEngineTest, TraceAppendAndRangeQuery) {
  auto engine = StorageEngine::Open(Options());
  ASSERT_TRUE(engine.ok());
  std::vector<TracePoint> points;
  for (uint64_t round = 0; round < 100; ++round) {
    points.push_back(
        TracePoint{round, 20.0 + 0.01 * round, round % 7 != 0});
  }
  ASSERT_TRUE((*engine)->AppendTrace("g", points).ok());

  auto all = (*engine)->QueryTraceRange("g", 0, 99);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ((*all)[i].round, points[i].round);
    EXPECT_EQ((*all)[i].engaged, points[i].engaged);
    EXPECT_EQ(Bits((*all)[i].value), Bits(points[i].value));
  }

  auto window = (*engine)->QueryTraceRange("g", 10, 19);
  ASSERT_TRUE(window.ok());
  ASSERT_EQ(window->size(), 10u);
  EXPECT_EQ(window->front().round, 10u);
  EXPECT_EQ(window->back().round, 19u);

  auto empty = (*engine)->QueryTraceRange("unknown", 0, 99);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(StorageEngineTest, TraceSealsChunksAndStillAnswersExactly) {
  auto options = Options();
  options.chunk_max_points = 16;  // force many seals
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  std::vector<TracePoint> points;
  for (uint64_t round = 0; round < 333; ++round) {
    points.push_back(TracePoint{round, 1.0 + 0.5 * round, true});
  }
  // Append in uneven slices to exercise partial seals.
  size_t at = 0;
  for (size_t slice : {7u, 40u, 1u, 100u, 185u}) {
    ASSERT_TRUE(
        (*engine)
            ->AppendTrace("g", std::span(points).subspan(at, slice))
            .ok());
    at += slice;
  }
  EXPECT_GT((*engine)->stats().sealed_chunks, 10u);
  auto all = (*engine)->QueryTraceRange("g", 0, 1000);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(Bits((*all)[i].value), Bits(points[i].value)) << i;
  }
}

TEST_F(StorageEngineTest, TraceSurvivesReopenAcrossSealBoundary) {
  auto options = Options();
  options.chunk_max_points = 8;
  std::vector<TracePoint> points;
  for (uint64_t round = 0; round < 50; ++round) {
    points.push_back(TracePoint{round, 2.0 * round, round % 2 == 0});
  }
  {
    auto engine = StorageEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->AppendTrace("g", points).ok());
  }
  auto reopened = StorageEngine::Open(options);
  ASSERT_TRUE(reopened.ok());
  auto all = (*reopened)->QueryTraceRange("g", 0, 49);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ((*all)[i].round, points[i].round);
    EXPECT_EQ(Bits((*all)[i].value), Bits(points[i].value));
  }
}

TEST_F(StorageEngineTest, CompactionRotatesWalAndKeepsState) {
  auto options = Options();
  options.chunk_max_points = 8;
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Put("g", Snapshot({0.5}, 3)).ok());
  std::vector<TracePoint> points;
  for (uint64_t round = 0; round < 20; ++round) {
    points.push_back(TracePoint{round, 1.0 + round, true});
  }
  ASSERT_TRUE((*engine)->AppendTrace("g", points).ok());
  const auto before = (*engine)->stats();
  ASSERT_TRUE((*engine)->Compact().ok());
  const auto after = (*engine)->stats();
  EXPECT_EQ(after.compactions, before.compactions + 1);
  EXPECT_GT(after.snapshot_seq, before.snapshot_seq);
  EXPECT_LT(after.wal_bytes, before.wal_bytes);

  // State is intact in memory and across a reopen of the compacted dir.
  EXPECT_TRUE((*engine)->Get("g").ok());
  auto reopened = StorageEngine::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Get("g")->rounds, 3u);
  auto all = (*reopened)->QueryTraceRange("g", 0, 19);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 20u);
}

TEST_F(StorageEngineTest, AutoCompactionTriggersOnWalGrowth) {
  auto options = Options();
  options.compact_wal_bytes = 4096;
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        (*engine)
            ->Put("g" + std::to_string(i % 10), Snapshot({0.1, 0.2, 0.3}, 1))
            .ok());
  }
  EXPECT_GT((*engine)->stats().compactions, 0u);
}

TEST_F(StorageEngineTest, MetricsRegisteredWhenRegistryProvided) {
  obs::Registry registry;
  auto options = Options();
  options.registry = &registry;
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Put("g", Snapshot({1.0}, 1)).ok());
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("avoc_storage_wal_records_total"), std::string::npos);
  EXPECT_NE(text.find("avoc_storage_fsyncs_total"), std::string::npos);
  EXPECT_NE(text.find("avoc_storage_groups"), std::string::npos);
}

TEST_F(StorageEngineTest, SyncEveryCommitByDefault) {
  auto engine = StorageEngine::Open(Options());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Put("g", Snapshot({1.0}, 1)).ok());
  const auto stats = (*engine)->stats();
  EXPECT_EQ(stats.wal_synced_bytes, stats.wal_bytes);
}

TEST_F(StorageEngineTest, SimulateCrashLosesNothingWhenEverySynced) {
  StorageEngine::CrashState crash;
  {
    auto engine = StorageEngine::Open(Options());
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Put("g", Snapshot({0.25}, 5)).ok());
    ASSERT_TRUE(
        (*engine)
            ->AppendTrace("g", std::vector<TracePoint>{{0, 1.5, true}})
            .ok());
    crash = (*engine)->SimulateCrash();
    // Dead engine rejects every call.
    EXPECT_FALSE((*engine)->Put("g", Snapshot({1.0}, 1)).ok());
    EXPECT_FALSE((*engine)->Get("g").ok());
  }
  EXPECT_EQ(crash.wal_synced_bytes, crash.wal_bytes);  // sync-every-commit
  auto reopened = StorageEngine::Open(Options());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Get("g")->rounds, 5u);
  auto trace = (*reopened)->QueryTraceRange("g", 0, 0);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->size(), 1u);
  EXPECT_EQ(Bits(trace->front().value), Bits(1.5));
}

TEST_F(StorageEngineTest, SimulateCrashUnsyncedTailMayVanish) {
  auto options = Options();
  options.wal_sync_every_bytes = 1u << 20;  // nothing syncs on its own
  StorageEngine::CrashState crash;
  {
    auto engine = StorageEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Put("synced", Snapshot({1.0}, 1)).ok());
    ASSERT_TRUE((*engine)->Sync().ok());  // commit barrier
    ASSERT_TRUE((*engine)->Put("unsynced", Snapshot({2.0}, 2)).ok());
    crash = (*engine)->SimulateCrash();
  }
  ASSERT_LT(crash.wal_synced_bytes, crash.wal_bytes);
  // Model the worst crash: only the synced prefix reached the platter.
  std::filesystem::resize_file(crash.wal_path, crash.wal_synced_bytes);
  auto reopened = StorageEngine::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->Get("synced").ok());
  EXPECT_EQ((*reopened)->Get("unsynced").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(StorageEngineTest, CompressionRatioReportedOnSealedTraces) {
  auto options = Options();
  options.chunk_max_points = 64;
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  std::vector<TracePoint> points;
  for (uint64_t round = 0; round < 640; ++round) {
    points.push_back(TracePoint{round, 20.0, true});  // maximally steady
  }
  ASSERT_TRUE((*engine)->AppendTrace("g", points).ok());
  const auto stats = (*engine)->stats();
  ASSERT_GT(stats.sealed_chunks, 0u);
  EXPECT_GT(stats.compression_ratio(), 4.0);
}

TEST_F(StorageEngineTest, OpenRejectsEmptyDir) {
  StorageEngineOptions options;
  EXPECT_FALSE(StorageEngine::Open(options).ok());
}

}  // namespace
}  // namespace avoc::storage
