#include "data/round_table.h"

#include <gtest/gtest.h>

namespace avoc::data {
namespace {

RoundTable SmallTable() {
  RoundTable table({"E1", "E2", "E3"});
  EXPECT_TRUE(table.AppendRound({1.0, 2.0, 3.0}).ok());
  EXPECT_TRUE(table.AppendRound({{4.0}, std::nullopt, {6.0}}).ok());
  EXPECT_TRUE(table.AppendRound({7.0, 8.0, 9.0}).ok());
  return table;
}

TEST(RoundTableTest, ConstructionAndNames) {
  const RoundTable table({"a", "b"});
  EXPECT_EQ(table.module_count(), 2u);
  EXPECT_EQ(table.round_count(), 0u);
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.module_names()[1], "b");
}

TEST(RoundTableTest, WithModuleCountNamesModules) {
  const RoundTable table = RoundTable::WithModuleCount(3);
  EXPECT_EQ(table.module_names(),
            (std::vector<std::string>{"m0", "m1", "m2"}));
}

TEST(RoundTableTest, ModuleIndexLookup) {
  const RoundTable table = SmallTable();
  EXPECT_EQ(*table.ModuleIndex("E2"), 1u);
  EXPECT_FALSE(table.ModuleIndex("E9").ok());
}

TEST(RoundTableTest, AppendRejectsWrongArity) {
  RoundTable table({"a", "b"});
  EXPECT_FALSE(table.AppendRound({1.0}).ok());
  EXPECT_FALSE(table.AppendRound({1.0, 2.0, 3.0}).ok());
  EXPECT_EQ(table.round_count(), 0u);
}

TEST(RoundTableTest, RoundAccess) {
  const RoundTable table = SmallTable();
  const auto round = table.MaterializeRound(1);
  ASSERT_EQ(round.size(), 3u);
  EXPECT_DOUBLE_EQ(*round[0], 4.0);
  EXPECT_FALSE(round[1].has_value());
}

TEST(RoundTableTest, ViewExposesValuesAndPresence) {
  const RoundTable table = SmallTable();
  const RoundView view = table.View(1);
  ASSERT_EQ(view.module_count(), 3u);
  EXPECT_DOUBLE_EQ(view.values[0], 4.0);
  EXPECT_EQ(view.present[0], 1);
  EXPECT_EQ(view.present[1], 0);
  EXPECT_FALSE(view.at(1).has_value());
  EXPECT_THROW((void)table.View(99), std::out_of_range);
}

TEST(RoundTableTest, AtMutatesCells) {
  RoundTable table = SmallTable();
  table.At(0, 0) = 99.0;
  EXPECT_DOUBLE_EQ(*table.At(0, 0), 99.0);
  table.At(0, 0).reset();
  EXPECT_FALSE(table.At(0, 0).has_value());
}

TEST(RoundTableTest, ModuleSeriesAndValues) {
  const RoundTable table = SmallTable();
  const auto series = table.ModuleSeries(1);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_FALSE(series[1].has_value());
  const auto values = table.ModuleValues(1);
  EXPECT_EQ(values, (std::vector<double>{2.0, 8.0}));
}

TEST(RoundTableTest, MissingCount) {
  EXPECT_EQ(SmallTable().missing_count(), 1u);
}

TEST(RoundTableTest, SliceExtractsRounds) {
  const RoundTable table = SmallTable();
  auto slice = table.Slice(1, 3);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->round_count(), 2u);
  EXPECT_DOUBLE_EQ(*slice->At(0, 0), 4.0);
  EXPECT_FALSE(table.Slice(2, 1).ok());
  EXPECT_FALSE(table.Slice(0, 9).ok());
}

TEST(RoundTableTest, SelectModulesExtractsColumns) {
  const RoundTable table = SmallTable();
  const std::vector<size_t> picks = {2, 0};
  auto selected = table.SelectModules(picks);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->module_names(),
            (std::vector<std::string>{"E3", "E1"}));
  EXPECT_DOUBLE_EQ(*selected->At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(*selected->At(0, 1), 1.0);
  const std::vector<size_t> bad = {5};
  EXPECT_FALSE(table.SelectModules(bad).ok());
}

TEST(CategoricalRoundTableTest, AppendAndAccess) {
  CategoricalRoundTable table({"s1", "s2"});
  EXPECT_TRUE(table.AppendRound({{"open"}, {"closed"}}).ok());
  EXPECT_TRUE(table.AppendRound({{"open"}, std::nullopt}).ok());
  EXPECT_EQ(table.round_count(), 2u);
  EXPECT_EQ(*table.Round(0)[1], "closed");
  EXPECT_FALSE(table.Round(1)[1].has_value());
}

TEST(CategoricalRoundTableTest, ArityEnforced) {
  CategoricalRoundTable table({"s1", "s2"});
  EXPECT_FALSE(table.AppendRound({{"only-one"}}).ok());
}

}  // namespace
}  // namespace avoc::data
