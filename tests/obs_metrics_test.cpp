#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace avoc::obs {
namespace {

TEST(ObsMetricsTest, CounterStartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(ObsMetricsTest, CounterConcurrentWritersLoseNothing) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(ObsMetricsTest, GaugeSetAndAdd) {
  Gauge gauge;
  gauge.Set(3.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
}

TEST(ObsMetricsTest, HistogramExactBucketsBelowEight) {
  for (uint64_t v = 0; v < LatencyHistogram::kLinearBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(v), v);
  }
}

TEST(ObsMetricsTest, HistogramBucketBoundsBracketTheirValues) {
  // Every value must land in a bucket whose [lower, next-lower) range
  // contains it, and bucket indices must be monotone in the value.
  uint64_t previous_index = 0;
  for (uint64_t v = 0; v < (1u << 20); v = v < 64 ? v + 1 : v + v / 3) {
    const size_t index = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(index, LatencyHistogram::kBucketCount);
    EXPECT_LE(LatencyHistogram::BucketLowerBound(index), v);
    EXPECT_LT(v, LatencyHistogram::BucketLowerBound(index + 1));
    EXPECT_GE(index, previous_index);
    previous_index = index;
  }
}

TEST(ObsMetricsTest, HistogramSubBucketWidthBoundsQuantileError) {
  // Above the linear range each octave splits into kSubBuckets buckets,
  // so a bucket's width is at most 1/kSubBuckets of its lower bound —
  // the documented 12.5% relative error bound (half-width 1/8).
  for (size_t index = LatencyHistogram::kLinearBuckets + 1;
       index + 1 < LatencyHistogram::kBucketCount; ++index) {
    const uint64_t low = LatencyHistogram::BucketLowerBound(index);
    const uint64_t high = LatencyHistogram::BucketLowerBound(index + 1);
    EXPECT_LE(high - low, low / LatencyHistogram::kSubBuckets + 1)
        << "bucket " << index;
  }
}

TEST(ObsMetricsTest, HistogramHugeValuesClampIntoLastBucket) {
  const uint64_t huge = ~uint64_t{0};
  EXPECT_EQ(LatencyHistogram::BucketIndex(huge),
            LatencyHistogram::kBucketCount - 1);
  LatencyHistogram histogram;
  histogram.Record(huge);
  EXPECT_EQ(histogram.count(), 1u);
}

TEST(ObsMetricsTest, HistogramQuantilesApproximateTheData) {
  LatencyHistogram histogram;
  // 1000 samples at 1000ns, 50 at 10000ns: p50 ~ 1000, p99 ~ 10000.
  for (int i = 0; i < 1000; ++i) histogram.Record(1000);
  for (int i = 0; i < 50; ++i) histogram.Record(10000);
  const LatencySnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1050u);
  EXPECT_NEAR(snapshot.p50(), 1000.0, 1000.0 * 0.125);
  EXPECT_NEAR(snapshot.p99(), 10000.0, 10000.0 * 0.125);
  EXPECT_NEAR(snapshot.Mean(), (1000.0 * 1000 + 50 * 10000) / 1050, 1.0);
}

TEST(ObsMetricsTest, SnapshotMergeAddsBucketwise) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 10; ++i) a.Record(100);
  for (int i = 0; i < 30; ++i) b.Record(100000);
  LatencySnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 40u);
  EXPECT_EQ(merged.sum, 10u * 100 + 30u * 100000);
  EXPECT_NEAR(merged.Quantile(0.1), 100.0, 100.0 * 0.125);
  EXPECT_NEAR(merged.Quantile(0.9), 100000.0, 100000.0 * 0.125);
}

TEST(ObsMetricsTest, SnapshotUnderConcurrentWritersStaysConsistent) {
  // TSan target: snapshots race with writers by design; every snapshot
  // must still be internally consistent (bucket sum == count snapshot
  // modulo in-flight records) and the final state exact.
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&histogram, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Record(100 + static_cast<uint64_t>(t));
      }
    });
  }
  uint64_t snapshots_taken = 0;
  while (!done.load(std::memory_order_relaxed)) {
    const LatencySnapshot snapshot = histogram.Snapshot();
    uint64_t bucket_sum = 0;
    for (const uint64_t c : snapshot.counts) bucket_sum += c;
    // A Record bumps its bin before the count, and Snapshot copies bins
    // before the count: the count may run ahead of the bins by however
    // many records landed mid-copy, but the bins can only run ahead of
    // the count by one in-flight Record per writer.
    EXPECT_LE(bucket_sum, snapshot.count + kThreads);
    EXPECT_LE(snapshot.count, kThreads * kPerThread);
    if (++snapshots_taken >= 50) done.store(true, std::memory_order_relaxed);
  }
  for (std::thread& w : writers) w.join();
  const LatencySnapshot final_snapshot = histogram.Snapshot();
  EXPECT_EQ(final_snapshot.count, kThreads * kPerThread);
}

TEST(ObsMetricsTest, LabeledNameFormatsPrometheusStyle) {
  EXPECT_EQ(LabeledName("avoc_rounds_total", "group", "g0"),
            "avoc_rounds_total{group=\"g0\"}");
  EXPECT_EQ(LabeledName("avoc_stage_latency_ns", "shard", "s1", "stage",
                        "quorum"),
            "avoc_stage_latency_ns{shard=\"s1\",stage=\"quorum\"}");
}

TEST(ObsMetricsTest, RegistryReturnsStableSharedInstances) {
  Registry registry;
  Counter& first = registry.GetCounter("avoc_test_total");
  first.Add(5);
  Counter& second = registry.GetCounter("avoc_test_total");
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.Value(), 5u);
  EXPECT_EQ(registry.metric_count(), 1u);
}

TEST(ObsMetricsTest, RegistryAggregatesLabeledFamilies) {
  Registry registry;
  registry.GetCounter(LabeledName("avoc_rounds_total", "group", "a")).Add(3);
  registry.GetCounter(LabeledName("avoc_rounds_total", "group", "b")).Add(4);
  registry.GetCounter("avoc_rounds_total_unrelated").Add(100);
  EXPECT_EQ(registry.SumCounters("avoc_rounds_total"), 7u);

  registry.GetHistogram(LabeledName("avoc_lat_ns", "shard", "s0")).Record(10);
  registry.GetHistogram(LabeledName("avoc_lat_ns", "shard", "s1")).Record(20);
  EXPECT_EQ(registry.MergeHistograms("avoc_lat_ns").count, 2u);
}

TEST(ObsMetricsTest, RenderPrometheusEmitsAllKinds) {
  Registry registry;
  registry.GetCounter(LabeledName("avoc_rounds_total", "group", "g")).Add(2);
  registry.GetGauge("avoc_queue_depth").Set(7.0);
  registry.GetHistogram("avoc_lat_ns").Record(1000);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("avoc_rounds_total{group=\"g\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("avoc_queue_depth 7"), std::string::npos) << text;
  EXPECT_NE(text.find("avoc_lat_ns_count 1"), std::string::npos) << text;
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(ObsMetricsTest, RegistryConcurrentGetAndWrite) {
  // Creation takes the registry mutex; concurrent callers for the same
  // name must converge on one object and lose no increments.
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("avoc_contended_total").Increment();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(registry.GetCounter("avoc_contended_total").Value(),
            static_cast<uint64_t>(kThreads) * 1000u);
}

TEST(ObsMetricsTest, EscapeLabelValueHandlesHostileBytes) {
  EXPECT_EQ(EscapeLabelValue("plain-group"), "plain-group");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(EscapeLabelValue("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(EscapeLabelValue(""), "");
}

// Regression: group names come off the wire.  A group id built from
// quotes, backslashes, and newlines must render as ONE well-formed
// Prometheus line — no forged metrics, no broken exposition.
TEST(ObsMetricsTest, RenderPrometheusSurvivesHostileGroupId) {
  Registry registry;
  const std::string hostile = "g\"} 999\nforged_total 1 #\\";
  registry.GetCounter(LabeledName("avoc_rounds_total", "group", hostile))
      .Add(2);
  const std::string text = registry.RenderPrometheus();
  // The hostile id renders escaped inside the label value...
  EXPECT_NE(
      text.find("avoc_rounds_total{group=\"g\\\"} 999\\nforged_total 1 #\\\\\"}"
                " 2"),
      std::string::npos)
      << text;
  // ...and no line of the exposition is the forged metric.
  EXPECT_EQ(text.find("\nforged_total"), std::string::npos) << text;
  for (size_t at = 0, eol; at < text.size(); at = eol + 1) {
    eol = text.find('\n', at);
    ASSERT_NE(eol, std::string::npos);  // exposition ends with newline
    const std::string line = text.substr(at, eol - at);
    EXPECT_EQ(line.rfind("avoc_", 0), 0u) << "forged line: " << line;
  }
}

TEST(ObsMetricsTest, BothLabeledNameOverloadsEscapeValues) {
  EXPECT_EQ(LabeledName("f", "k", "a\"b"), "f{k=\"a\\\"b\"}");
  EXPECT_EQ(LabeledName("f", "k1", "a\nb", "k2", "c\\d"),
            "f{k1=\"a\\nb\",k2=\"c\\\\d\"}");
}

TEST(ObsMetricsTest, ExemplarLinksHistogramToTrace) {
  LatencyHistogram histogram;
  histogram.Record(100);  // untraced: no exemplar yet
  EXPECT_EQ(histogram.exemplar_trace_id(), 0u);
  histogram.RecordWithExemplar(2000, 0xabcdef);
  histogram.RecordWithExemplar(3000, 0);  // untraced keeps the previous one
  const LatencySnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_EQ(snapshot.exemplar_trace_id, 0xabcdefu);
  EXPECT_EQ(snapshot.exemplar_nanos, 2000u);
}

TEST(ObsMetricsTest, RenderPrometheusEmitsExemplarOnlyWhenTraced) {
  Registry registry;
  registry.GetHistogram("avoc_plain_ns").Record(500);
  registry.GetHistogram("avoc_traced_ns").RecordWithExemplar(500, 0x2a);
  const std::string text = registry.RenderPrometheus();
  EXPECT_EQ(text.find("avoc_plain_ns_exemplar"), std::string::npos) << text;
  EXPECT_NE(
      text.find(
          "avoc_traced_ns_exemplar{trace_id=\"000000000000002a\"} 500"),
      std::string::npos)
      << text;
}

TEST(ObsMetricsTest, SnapshotMergeCarriesExemplars) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.RecordWithExemplar(100, 0x1);
  b.RecordWithExemplar(200, 0x2);
  LatencySnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 2u);
  EXPECT_EQ(merged.exemplar_trace_id, 0x2u);  // other's exemplar wins
  LatencySnapshot empty;
  empty.Merge(a.Snapshot());
  EXPECT_EQ(empty.exemplar_trace_id, 0x1u);

  LatencyHistogram untraced;
  untraced.Record(300);
  LatencySnapshot keep = a.Snapshot();
  keep.Merge(untraced.Snapshot());
  EXPECT_EQ(keep.exemplar_trace_id, 0x1u);  // untraced merge keeps ours
}

// TSan target: snapshot + merge + render while writers (including
// exemplar writers) hammer the same histograms.  Snapshots may straddle
// in-flight records but must stay internally sane.
TEST(ObsMetricsTest, SnapshotAndMergeConcurrentWithRecording) {
  Registry registry;
  LatencyHistogram& h0 =
      registry.GetHistogram(LabeledName("avoc_busy_ns", "shard", "s0"));
  LatencyHistogram& h1 =
      registry.GetHistogram(LabeledName("avoc_busy_ns", "shard", "s1"));
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&h0, &h1, t] {
      LatencyHistogram& mine = t % 2 == 0 ? h0 : h1;
      for (uint64_t i = 1; i <= kPerWriter; ++i) {
        mine.RecordWithExemplar(i, /*trace_id=*/i | 0x100);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      LatencySnapshot merged = registry.MergeHistograms("avoc_busy_ns");
      uint64_t bucket_total = 0;
      for (const uint64_t c : merged.counts) bucket_total += c;
      // Bucket increments land before the count increment, so a snapshot
      // can only over-count buckets relative to `count`, never invent
      // samples beyond the writers' ceiling.
      ASSERT_LE(merged.count, bucket_total);
      ASSERT_LE(bucket_total, kWriters * kPerWriter);
      (void)registry.RenderPrometheus();
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const LatencySnapshot final_merge = registry.MergeHistograms("avoc_busy_ns");
  EXPECT_EQ(final_merge.count, kWriters * kPerWriter);
  EXPECT_NE(final_merge.exemplar_trace_id, 0u);
}

}  // namespace
}  // namespace avoc::obs
