#include "core/categorical.h"

#include <gtest/gtest.h>

namespace avoc::core {
namespace {

using Label = CategoricalEngine::Label;

CategoricalConfig StandardConfig() {
  CategoricalConfig config;
  config.history.rule = HistoryRule::kCumulativeRatio;
  config.quorum_fraction = 0.5;
  return config;
}

CategoricalEngine MustCreate(size_t modules, CategoricalConfig config) {
  auto engine = CategoricalEngine::Create(modules, std::move(config));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

std::vector<Label> Round(std::initializer_list<const char*> labels) {
  std::vector<Label> round;
  for (const char* label : labels) {
    if (label == nullptr) {
      round.push_back(std::nullopt);
    } else {
      round.emplace_back(label);
    }
  }
  return round;
}

TEST(CategoricalTest, CreateValidates) {
  CategoricalConfig config = StandardConfig();
  config.quorum_fraction = 0.0;
  EXPECT_FALSE(CategoricalEngine::Create(3, config).ok());
  config = StandardConfig();
  config.quorum_min_count = 0;
  EXPECT_FALSE(CategoricalEngine::Create(3, config).ok());
  config = StandardConfig();
  config.distance = LevenshteinDistance;
  config.error = 1.5;
  EXPECT_FALSE(CategoricalEngine::Create(3, config).ok());
  EXPECT_FALSE(CategoricalEngine::Create(0, StandardConfig()).ok());
}

TEST(CategoricalTest, PluralityWinner) {
  CategoricalEngine engine = MustCreate(3, StandardConfig());
  auto result = engine.CastVote(Round({"open", "open", "closed"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kVoted);
  EXPECT_EQ(*result->value, "open");
  EXPECT_TRUE(result->had_majority);
}

TEST(CategoricalTest, ArityEnforced) {
  CategoricalEngine engine = MustCreate(3, StandardConfig());
  EXPECT_FALSE(engine.CastVote(Round({"a", "b"})).ok());
}

TEST(CategoricalTest, MissingValuesIgnored) {
  CategoricalEngine engine = MustCreate(4, StandardConfig());
  auto result = engine.CastVote(Round({"x", nullptr, "x", "y"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->value, "x");
  EXPECT_EQ(result->present_count, 3u);
}

TEST(CategoricalTest, QuorumFailureReverts) {
  CategoricalConfig config = StandardConfig();
  config.quorum_fraction = 0.75;
  CategoricalEngine engine = MustCreate(4, config);
  ASSERT_TRUE(engine.CastVote(Round({"a", "a", "a", "a"})).ok());
  auto result = engine.CastVote(Round({"b", nullptr, nullptr, nullptr}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kRevertedLast);
  EXPECT_EQ(*result->value, "a");
}

TEST(CategoricalTest, QuorumRaisePolicy) {
  CategoricalConfig config = StandardConfig();
  config.quorum_fraction = 1.0;
  config.on_no_quorum = NoQuorumPolicy::kRaise;
  CategoricalEngine engine = MustCreate(2, config);
  auto result = engine.CastVote(Round({"a", nullptr}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kError);
  EXPECT_EQ(result->status.code(), ErrorCode::kNoQuorum);
}

TEST(CategoricalTest, HistoryWeighsChronicDisagreers) {
  CategoricalEngine engine = MustCreate(3, StandardConfig());
  // Module 2 always dissents; its record decays.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.CastVote(Round({"up", "up", "down"})).ok());
  }
  EXPECT_LT(engine.history().record(2), 0.2);
  EXPECT_DOUBLE_EQ(engine.history().record(0), 1.0);
}

TEST(CategoricalTest, WeightedPluralityCanOverruleRawCount) {
  CategoricalEngine engine = MustCreate(5, StandardConfig());
  // Modules 3 and 4 destroy their records first.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        engine.CastVote(Round({"up", "up", "up", "down", "down"})).ok());
  }
  // Now 3 reliable modules say "left"... two say "right" plus the two
  // distrusted ones: raw count would be 3 vs 2, weighted too.  Flip it:
  // two reliable say "right", one reliable says "left", two distrusted say
  // "left": raw count left=3, right=2; weighted right ≈ 2, left ≈ 1+ε.
  auto result = engine.CastVote(Round({"left", "right", "right", "left",
                                       "left"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->value, "right");
  EXPECT_FALSE(result->had_majority);  // 2 of 5 supporters
}

TEST(CategoricalTest, ModuleEliminationExcludesBadModules) {
  CategoricalConfig config = StandardConfig();
  config.module_elimination = true;
  CategoricalEngine engine = MustCreate(3, config);
  ASSERT_TRUE(engine.CastVote(Round({"a", "a", "z"})).ok());
  auto result = engine.CastVote(Round({"a", "a", "z"}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->eliminated[2]);
  EXPECT_DOUBLE_EQ(result->weights[2], 0.0);
}

TEST(CategoricalTest, TieBreaksTowardPreviousOutput) {
  CategoricalConfig config;
  config.history.rule = HistoryRule::kNone;
  CategoricalEngine engine = MustCreate(2, config);
  ASSERT_TRUE(engine.CastVote(Round({"b", "b"})).ok());
  auto result = engine.CastVote(Round({"a", "b"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->value, "b");  // previous output wins the tie
}

TEST(CategoricalTest, TieWithoutPreviousIsDeterministic) {
  CategoricalConfig config;
  config.history.rule = HistoryRule::kNone;
  CategoricalEngine engine = MustCreate(2, config);
  auto result = engine.CastVote(Round({"b", "a"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->value, "a");  // lexicographically smallest
}

TEST(CategoricalTest, NoMajorityPolicyEmitNothing) {
  CategoricalConfig config = StandardConfig();
  config.on_no_majority = NoMajorityPolicy::kEmitNothing;
  CategoricalEngine engine = MustCreate(4, config);
  auto result = engine.CastVote(Round({"a", "a", "b", "b"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kNoOutput);
}

TEST(CategoricalTest, AllRecordsZeroFallsBackToUnweighted) {
  CategoricalConfig config = StandardConfig();
  config.history.rule = HistoryRule::kRewardPenalty;
  config.history.penalty = 1.0;
  CategoricalEngine engine = MustCreate(2, config);
  // Both modules always disagree with each other; records hit 0 fast.
  ASSERT_TRUE(engine.CastVote(Round({"a", "b"})).ok());
  ASSERT_TRUE(engine.CastVote(Round({"c", "d"})).ok());
  auto result = engine.CastVote(Round({"e", "f"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RoundOutcome::kVoted);
  ASSERT_TRUE(result->value.has_value());
}

TEST(CategoricalTest, CustomDistanceEnablesFuzzyAgreement) {
  CategoricalConfig config = StandardConfig();
  config.distance = LevenshteinDistance;
  config.error = 0.25;  // up to a quarter of characters may differ
  CategoricalEngine engine = MustCreate(3, config);
  // "colour" vs "color": distance 1/6 ≈ 0.17 <= 0.25 -> agreement.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.CastVote(Round({"colour", "color", "colour"})).ok());
  }
  // The dissenting spelling still counts as agreeing with the output.
  EXPECT_DOUBLE_EQ(engine.history().record(1), 1.0);
}

TEST(CategoricalTest, ResetClearsState) {
  CategoricalEngine engine = MustCreate(2, StandardConfig());
  ASSERT_TRUE(engine.CastVote(Round({"a", "b"})).ok());
  engine.Reset();
  EXPECT_FALSE(engine.last_output().has_value());
  EXPECT_TRUE(engine.history().AllRecordsAre(1.0));
}

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_DOUBLE_EQ(LevenshteinDistance("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(LevenshteinDistance("", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinDistance("abc", ""), 1.0);
  EXPECT_NEAR(LevenshteinDistance("kitten", "sitting"), 3.0 / 7.0, 1e-12);
  EXPECT_NEAR(LevenshteinDistance("abcd", "abxd"), 0.25, 1e-12);
}

TEST(LevenshteinTest, SymmetricAndBounded) {
  const std::vector<std::string> words = {"alpha", "beta", "alphabet", ""};
  for (const auto& a : words) {
    for (const auto& b : words) {
      const double d = LevenshteinDistance(a, b);
      EXPECT_DOUBLE_EQ(d, LevenshteinDistance(b, a));
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

}  // namespace
}  // namespace avoc::core
