#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace avoc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-5.0, 3.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.UniformInt(10);
    EXPECT_LT(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);  // every bucket hit in 1000 draws
}

TEST(RngTest, GaussianHasUnitMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double variance = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsScalesAndShifts) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child must differ from a parent continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(31);
  Rng b(31);
  Rng child_a = a.Fork();
  Rng child_b = b.Fork();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child_a(), child_b());
  }
}

TEST(SplitMix64Test, KnownFirstValueIsStable) {
  // Regression pin: dataset reproducibility depends on this stream.
  SplitMix64 sm(0);
  const uint64_t first = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.Next());
  EXPECT_NE(first, sm.Next());
}

}  // namespace
}  // namespace avoc
