// QUERY_RANGE / HISTORY_GET wire verbs end to end.
//
// The acceptance bar for the storage seam is bit-identity: a range query
// answered from the persisted trace (StorageEngine) must match the
// in-memory BatchTrace hex-float for hex-float, both on a single-node
// server and through the sharded server's per-group routing.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/remote.h"
#include "runtime/resilient.h"
#include "runtime/sharded_remote.h"
#include "runtime/sim_net.h"
#include "storage/engine.h"

namespace avoc::runtime {
namespace {

constexpr uint16_t kPort = 7;

std::string HexFloat(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

uint64_t Bits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

std::vector<BatchReading> MakeRound(uint64_t round, double base) {
  std::vector<BatchReading> readings;
  for (uint64_t m = 0; m < 3; ++m) {
    readings.push_back(
        BatchReading{m, round, base + 0.125 * static_cast<double>(m)});
  }
  return readings;
}

/// The sink's in-memory trace as RangePoints, restricted to [lo, hi].
std::vector<RangePoint> SinkRange(const SinkNode& sink, uint64_t lo,
                                  uint64_t hi) {
  std::vector<RangePoint> points;
  sink.WithTrace(
      [&](const core::BatchTrace& trace, const std::vector<size_t>& rounds) {
        for (size_t i = 0; i < rounds.size(); ++i) {
          const uint64_t round = rounds[i];
          if (round < lo || round > hi) continue;
          const auto value = trace.output(i);
          points.push_back(RangePoint{round, value.value_or(0.0),
                                      value.has_value() ? uint8_t{1}
                                                        : uint8_t{0}});
        }
      });
  return points;
}

void ExpectBitIdentical(std::span<const RangePoint> want,
                        std::span<const RangePoint> got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].round, got[i].round) << "point " << i;
    EXPECT_EQ(want[i].engaged, got[i].engaged) << "point " << i;
    EXPECT_EQ(HexFloat(want[i].value), HexFloat(got[i].value)) << "point " << i;
    EXPECT_EQ(Bits(want[i].value), Bits(got[i].value)) << "point " << i;
  }
}

class QueryRangeTest : public ::testing::Test {
 protected:
  void Start(bool with_trace_store) {
    if (with_trace_store) {
      dir_ = (std::filesystem::temp_directory_path() /
              ("avoc_query_range_" + std::to_string(::getpid())))
                 .string();
      std::filesystem::remove_all(dir_);
      storage::StorageEngineOptions options;
      options.dir = dir_;
      options.chunk_max_points = 4;  // force seals mid-test
      auto engine = storage::StorageEngine::Open(options);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      store_ = std::move(*engine);
    }
    world_ = std::make_unique<SimWorld>(97);
    manager_ = std::make_unique<VoterGroupManager>(store_.get(), &registry_,
                                                   store_.get());
    ASSERT_TRUE(manager_
                    ->AddGroup("lights",
                               *core::MakeEngine(core::AlgorithmId::kAvoc, 3))
                    .ok());
    auto listener = world_->Listen(kPort);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    auto server = RemoteVoterServer::StartOnReactor(
        manager_.get(), RemoteServerOptions{}, std::move(*listener),
        world_->reactor(), /*spawn_loop_thread=*/false);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  RemoteVoterClient MustClient() {
    auto transport = world_->Connect(kPort);
    EXPECT_TRUE(transport.ok());
    auto client =
        RemoteVoterClient::FromTransport(std::move(*transport), /*binary=*/true);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  void SubmitRounds(RemoteVoterClient& client, size_t rounds) {
    for (uint64_t r = 0; r < rounds; ++r) {
      auto accepted =
          client.SubmitBatch("lights", MakeRound(r, 20.0 + 0.01 * r));
      ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
    }
  }

  obs::Registry registry_;
  std::string dir_;
  std::unique_ptr<storage::StorageEngine> store_;
  std::unique_ptr<SimWorld> world_;
  std::unique_ptr<VoterGroupManager> manager_;
  std::unique_ptr<RemoteVoterServer> server_;
};

TEST_F(QueryRangeTest, RangeFromStorageEngineIsBitIdenticalToSink) {
  Start(/*with_trace_store=*/true);
  RemoteVoterClient client = MustClient();
  SubmitRounds(client, 25);  // crosses several 4-point seal boundaries
  auto sink = manager_->sink("lights");
  ASSERT_TRUE(sink.ok());
  auto got = client.QueryRange("lights", 0, 24);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectBitIdentical(SinkRange(**sink, 0, 24), *got);
  EXPECT_EQ(got->size(), 25u);
}

TEST_F(QueryRangeTest, RangeWithoutTraceStoreServedFromSinkMemory) {
  Start(/*with_trace_store=*/false);
  RemoteVoterClient client = MustClient();
  SubmitRounds(client, 10);
  auto sink = manager_->sink("lights");
  ASSERT_TRUE(sink.ok());
  auto got = client.QueryRange("lights", 0, 9);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectBitIdentical(SinkRange(**sink, 0, 9), *got);
}

TEST_F(QueryRangeTest, SubrangesAreInclusiveBothEnds) {
  Start(/*with_trace_store=*/true);
  RemoteVoterClient client = MustClient();
  SubmitRounds(client, 20);
  auto got = client.QueryRange("lights", 5, 12);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 8u);
  EXPECT_EQ(got->front().round, 5u);
  EXPECT_EQ(got->back().round, 12u);
  auto single = client.QueryRange("lights", 7, 7);
  ASSERT_TRUE(single.ok());
  ASSERT_EQ(single->size(), 1u);
  EXPECT_EQ(single->front().round, 7u);
  auto past_end = client.QueryRange("lights", 100, 200);
  ASSERT_TRUE(past_end.ok());
  EXPECT_TRUE(past_end->empty());
}

TEST_F(QueryRangeTest, InvalidRangeAndUnknownGroupAreErrors) {
  Start(/*with_trace_store=*/true);
  RemoteVoterClient client = MustClient();
  SubmitRounds(client, 3);
  EXPECT_FALSE(client.QueryRange("lights", 9, 2).ok());
  EXPECT_FALSE(client.QueryRange("no-such-group", 0, 9).ok());
}

TEST_F(QueryRangeTest, HistoryGetMatchesLiveLedger) {
  Start(/*with_trace_store=*/true);
  RemoteVoterClient client = MustClient();
  SubmitRounds(client, 12);
  auto voter = manager_->voter("lights");
  ASSERT_TRUE(voter.ok());
  const core::HistoryLedger& ledger = (*voter)->engine().history();
  auto got = client.HistoryGet("lights");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->rounds, ledger.round_count());
  ASSERT_EQ(got->records.size(), ledger.records().size());
  for (size_t i = 0; i < got->records.size(); ++i) {
    EXPECT_EQ(Bits(got->records[i]), Bits(ledger.records()[i])) << i;
  }
  EXPECT_FALSE(client.HistoryGet("no-such-group").ok());
}

TEST_F(QueryRangeTest, ResilientClientWrapsBothVerbs) {
  Start(/*with_trace_store=*/true);
  {
    RemoteVoterClient feeder = MustClient();
    SubmitRounds(feeder, 8);
  }
  RetryPolicy policy;
  policy.request_timeout_ms = 1000;
  ResilientVoterClient client([this] { return world_->Connect(kPort); },
                              world_.get(), "edge-qr", policy, 1, &registry_);
  auto range = client.QueryRange("lights", 2, 5);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_EQ(range->size(), 4u);
  auto sink = manager_->sink("lights");
  ASSERT_TRUE(sink.ok());
  ExpectBitIdentical(SinkRange(**sink, 2, 5), *range);
  auto history = client.HistoryGet("lights");
  ASSERT_TRUE(history.ok()) << history.status().ToString();
  EXPECT_EQ(history->rounds, 8u);
  EXPECT_EQ(history->records.size(), 3u);
}

TEST_F(QueryRangeTest, RangeSurvivesStoreReopen) {
  Start(/*with_trace_store=*/true);
  std::vector<RangePoint> want;
  {
    RemoteVoterClient client = MustClient();
    SubmitRounds(client, 15);
    auto sink = manager_->sink("lights");
    ASSERT_TRUE(sink.ok());
    want = SinkRange(**sink, 0, 14);
  }
  server_->Stop();
  server_ = nullptr;
  manager_ = nullptr;
  store_ = nullptr;  // graceful close syncs the WAL

  storage::StorageEngineOptions options;
  options.dir = dir_;
  options.chunk_max_points = 4;
  auto reopened = storage::StorageEngine::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto stored = (*reopened)->QueryTraceRange("lights", 0, 14);
  ASSERT_TRUE(stored.ok());
  ASSERT_EQ(stored->size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ((*stored)[i].round, want[i].round);
    EXPECT_EQ((*stored)[i].engaged ? 1 : 0, want[i].engaged);
    EXPECT_EQ(HexFloat((*stored)[i].value), HexFloat(want[i].value)) << i;
  }
}

// --- sharded -----------------------------------------------------------------

class ShardedQueryRangeTest : public ::testing::Test {
 protected:
  void Start(size_t shards, const std::vector<std::string>& groups) {
    dir_ = (std::filesystem::temp_directory_path() /
            ("avoc_sharded_query_range_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    storage::StorageEngineOptions store_options;
    store_options.dir = dir_;
    store_options.chunk_max_points = 4;
    auto engine = storage::StorageEngine::Open(store_options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    store_ = std::move(*engine);

    world_ = std::make_unique<SimWorld>(4242);
    auto listener = world_->Listen(kPort);
    ASSERT_TRUE(listener.ok());
    std::vector<std::shared_ptr<Reactor>> reactors;
    reactors.push_back(world_->reactor());
    for (size_t s = 1; s < shards; ++s) {
      reactors.push_back(world_->NewReactor());
    }
    ShardedServerOptions server_options;
    server_options.shards = shards;
    auto server = ShardedVoterServer::StartOnReactors(
        server_options, std::move(*listener), std::move(reactors),
        /*spawn_loop_threads=*/false, store_.get(), &registry_, store_.get());
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    for (const std::string& g : groups) {
      ASSERT_TRUE(
          server_->AddGroup(g, *core::MakeEngine(core::AlgorithmId::kAvoc, 3))
              .ok());
    }
    ASSERT_TRUE(server_->Serve().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  RemoteVoterClient MustClient() {
    auto transport = world_->Connect(kPort);
    EXPECT_TRUE(transport.ok());
    auto client = RemoteVoterClient::FromTransport(std::move(*transport),
                                                   /*binary=*/true);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  obs::Registry registry_;
  std::string dir_;
  std::unique_ptr<storage::StorageEngine> store_;
  std::unique_ptr<SimWorld> world_;
  std::unique_ptr<ShardedVoterServer> server_;
};

// Group names that spread across 3 shards (same set the sharded remote
// test pins via the router golden test).
const std::vector<std::string> kGroups = {"group-0", "group-1", "group-2",
                                          "group-3", "group-7", "sensor",
                                          "humidity", "co2"};

TEST_F(ShardedQueryRangeTest, RangeIsBitIdenticalThroughShardRouting) {
  Start(3, kGroups);
  RemoteVoterClient client = MustClient();
  // Distinct per-group workloads so cross-shard mixups cannot cancel out.
  for (size_t g = 0; g < kGroups.size(); ++g) {
    for (uint64_t r = 0; r < 9; ++r) {
      auto accepted = client.SubmitBatch(
          kGroups[g], MakeRound(r, 10.0 + 3.0 * static_cast<double>(g)));
      ASSERT_TRUE(accepted.ok()) << kGroups[g] << " round " << r;
    }
  }
  for (const std::string& group : kGroups) {
    const size_t shard = server_->shard_of(group);
    auto sink = server_->manager(shard).sink(group);
    ASSERT_TRUE(sink.ok()) << group;
    auto got = client.QueryRange(group, 0, 8);
    ASSERT_TRUE(got.ok()) << group << ": " << got.status().ToString();
    EXPECT_EQ(got->size(), 9u) << group;
    ExpectBitIdentical(SinkRange(**sink, 0, 8), *got);
  }
}

TEST_F(ShardedQueryRangeTest, HistoryGetAnswersFromOwningShard) {
  Start(3, kGroups);
  RemoteVoterClient client = MustClient();
  for (const std::string& group : kGroups) {
    for (uint64_t r = 0; r < 5; ++r) {
      ASSERT_TRUE(client.SubmitBatch(group, MakeRound(r, 15.0)).ok());
    }
  }
  for (const std::string& group : kGroups) {
    const size_t shard = server_->shard_of(group);
    auto voter = server_->manager(shard).voter(group);
    ASSERT_TRUE(voter.ok()) << group;
    const core::HistoryLedger& ledger = (*voter)->engine().history();
    auto got = client.HistoryGet(group);
    ASSERT_TRUE(got.ok()) << group << ": " << got.status().ToString();
    EXPECT_EQ(got->rounds, ledger.round_count()) << group;
    ASSERT_EQ(got->records.size(), ledger.records().size()) << group;
    for (size_t i = 0; i < got->records.size(); ++i) {
      EXPECT_EQ(Bits(got->records[i]), Bits(ledger.records()[i]))
          << group << " record " << i;
    }
  }
}

}  // namespace
}  // namespace avoc::runtime
