// Property suite of the voting kernel layer (core/kernels): the
// sorted-window agreement kernel against the brute-force pairwise
// reference, the symmetric pairwise kernel against the naive two-sided
// loop, and the flat-mask exclusion against the vector<bool> path.  All
// equalities here are bitwise (EXPECT_EQ on doubles), because bit parity
// is the kernel layer's hard contract.
#include "core/kernels/kernels.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/agreement.h"
#include "core/exclusion.h"
#include "util/rng.h"

namespace avoc::core {
namespace {

// The naive reference: the exact loop AgreementScoresInto shipped with
// before the kernel layer (each ordered pair scored separately).
std::vector<double> NaiveAgreementScores(const std::vector<double>& values,
                                         const AgreementParams& params) {
  const size_t n = values.size();
  std::vector<double> scores(n, 1.0);
  if (n <= 1) return scores;
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sum += AgreementScore(values[i], values[j], params);
    }
    scores[i] = sum / static_cast<double>(n - 1);
  }
  return scores;
}

void ExpectBitEqual(const std::vector<double>& got,
                    const std::vector<double>& want, const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << label << " diverges at index " << i;
  }
}

std::vector<double> RandomValues(Rng& rng, size_t n, double lo, double hi,
                                 double duplicate_probability) {
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && rng.NextDouble() < duplicate_probability) {
      values[i] = values[rng.UniformInt(i)];  // exact duplicate
    } else {
      values[i] = rng.Uniform(lo, hi);
    }
  }
  return values;
}

// --- Pairwise symmetry ------------------------------------------------------

TEST(AgreementPairwiseKernel, MatchesNaiveLoopAcrossModesRandomized) {
  Rng rng(2024);
  const AgreementMode modes[] = {AgreementMode::kBinary,
                                 AgreementMode::kSoftDynamic};
  const ThresholdScale scales[] = {ThresholdScale::kAbsolute,
                                   ThresholdScale::kRelative};
  kernels::AgreementScratch scratch;
  for (int iter = 0; iter < 200; ++iter) {
    const size_t n = 1 + rng.UniformInt(24);
    const std::vector<double> values =
        RandomValues(rng, n, -100.0, 100.0, 0.2);
    AgreementParams params;
    params.error = rng.Uniform(0.0, 5.0);
    params.soft_multiple = rng.Uniform(0.5, 4.0);
    params.mode = modes[rng.UniformInt(2)];
    params.scale = scales[rng.UniformInt(2)];
    std::vector<double> kernel_scores(n);
    kernels::AgreementPairwiseKernel(values.data(), n, params,
                                     kernel_scores.data(), scratch);
    ExpectBitEqual(kernel_scores, NaiveAgreementScores(values, params),
                   "pairwise kernel");
  }
}

TEST(AgreementPairwiseKernel, ScoreFunctionIsSymmetric) {
  // The symmetry the pair-once kernel rests on: AgreementScore(a,b) ==
  // AgreementScore(b,a) bitwise, in every mode/scale.
  Rng rng(7);
  for (int iter = 0; iter < 500; ++iter) {
    const double a = rng.Uniform(-1e6, 1e6);
    const double b = rng.Uniform(-1e6, 1e6);
    AgreementParams params;
    params.error = rng.Uniform(0.0, 10.0);
    params.soft_multiple = rng.Uniform(0.0, 5.0);
    params.mode = rng.NextDouble() < 0.5 ? AgreementMode::kBinary
                                         : AgreementMode::kSoftDynamic;
    params.scale = rng.NextDouble() < 0.5 ? ThresholdScale::kAbsolute
                                          : ThresholdScale::kRelative;
    EXPECT_EQ(AgreementScore(a, b, params), AgreementScore(b, a, params));
  }
}

TEST(AgreementScoresInto, LegacySignatureStillMatchesNaive) {
  // The public entry point dispatches into the kernels; the regression
  // bar is the naive loop it replaced.
  Rng rng(11);
  for (int iter = 0; iter < 100; ++iter) {
    const size_t n = 1 + rng.UniformInt(40);
    const std::vector<double> values = RandomValues(rng, n, 900.0, 1100.0, 0.3);
    AgreementParams params;  // default: binary relative — pairwise path
    std::vector<double> scores;
    AgreementScoresInto(values, params, scores);
    ExpectBitEqual(scores, NaiveAgreementScores(values, params),
                   "AgreementScoresInto");
  }
}

// --- Sorted-window path -----------------------------------------------------

TEST(AgreementSortedKernel, MatchesPairwiseOnRandomBinaryAbsolute) {
  Rng rng(42);
  kernels::AgreementScratch scratch;
  for (int iter = 0; iter < 300; ++iter) {
    const size_t n = 2 + rng.UniformInt(63);
    // Heavy duplicates: ties at the window edges are the regression risk.
    const std::vector<double> values = RandomValues(rng, n, 0.0, 10.0, 0.4);
    AgreementParams params;
    params.mode = AgreementMode::kBinary;
    params.scale = ThresholdScale::kAbsolute;
    params.error = rng.Uniform(0.0, 5.0);
    std::vector<double> sorted_scores(n);
    kernels::AgreementSortedKernel(values.data(), n, params.error,
                                   sorted_scores.data(), scratch);
    ExpectBitEqual(sorted_scores, NaiveAgreementScores(values, params),
                   "sorted kernel");
  }
}

TEST(AgreementSortedKernel, MarginBoundaryTiesCountAsAgreement) {
  // distance == error is agreement (<=); values placed exactly one
  // margin apart must agree in both kernels.
  kernels::AgreementScratch scratch;
  const std::vector<double> values = {0.0, 1.0, 2.0, 3.0, 4.0,
                                      5.0, 6.0, 7.0, 8.0};
  AgreementParams params;
  params.mode = AgreementMode::kBinary;
  params.scale = ThresholdScale::kAbsolute;
  params.error = 1.0;
  std::vector<double> scores(values.size());
  kernels::AgreementSortedKernel(values.data(), values.size(), params.error,
                                 scores.data(), scratch);
  ExpectBitEqual(scores, NaiveAgreementScores(values, params),
                 "margin-boundary ties");
  // Interior candidates agree with exactly two neighbours.
  EXPECT_EQ(scores[4], 2.0 / 8.0);
}

TEST(AgreementSortedKernel, NanFreeExtremesStayExact) {
  // Large-magnitude but finite values: the windowed subtraction sees the
  // same rounded |a-b| the pairwise path does.
  Rng rng(99);
  kernels::AgreementScratch scratch;
  for (int iter = 0; iter < 100; ++iter) {
    const size_t n = 8 + rng.UniformInt(24);
    std::vector<double> values(n);
    for (auto& v : values) {
      v = rng.Uniform(-1.0, 1.0) * 1e15;
      if (rng.NextDouble() < 0.1) v = std::numeric_limits<double>::max() / 4;
    }
    AgreementParams params;
    params.mode = AgreementMode::kBinary;
    params.scale = ThresholdScale::kAbsolute;
    params.error = rng.Uniform(0.0, 1e14);
    std::vector<double> scores(n);
    kernels::AgreementSortedKernel(values.data(), n, params.error,
                                   scores.data(), scratch);
    ExpectBitEqual(scores, NaiveAgreementScores(values, params),
                   "extreme magnitudes");
  }
}

TEST(AgreementScoresKernelDispatch, SortedRequiresBinaryAbsoluteFinite) {
  AgreementParams params;
  params.mode = AgreementMode::kBinary;
  params.scale = ThresholdScale::kAbsolute;
  EXPECT_TRUE(kernels::SortedAgreementEligible(params));
  params.scale = ThresholdScale::kRelative;
  EXPECT_FALSE(kernels::SortedAgreementEligible(params));
  params.scale = ThresholdScale::kAbsolute;
  params.mode = AgreementMode::kSoftDynamic;
  EXPECT_FALSE(kernels::SortedAgreementEligible(params));
  params.mode = AgreementMode::kBinary;
  params.error = -1.0;
  EXPECT_FALSE(kernels::SortedAgreementEligible(params));

  const std::vector<double> with_nan = {1.0, 2.0,
                                        std::numeric_limits<double>::quiet_NaN()};
  EXPECT_FALSE(kernels::AllFinite(with_nan.data(), with_nan.size()));
  const std::vector<double> with_inf = {1.0,
                                        std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(kernels::AllFinite(with_inf.data(), with_inf.size()));
  const std::vector<double> finite = {1.0, -2.5, 1e300, -1e300, 0.0};
  EXPECT_TRUE(kernels::AllFinite(finite.data(), finite.size()));
}

TEST(AgreementScoresKernelDispatch, RelativeAndSoftFallBackToPairwise) {
  // The dispatcher must produce pairwise-exact results for the modes the
  // sorted window cannot express.
  Rng rng(5);
  kernels::AgreementScratch scratch;
  for (int iter = 0; iter < 100; ++iter) {
    const size_t n = 8 + rng.UniformInt(32);  // above the sorted cutover
    const std::vector<double> values =
        RandomValues(rng, n, 500.0, 1500.0, 0.25);
    AgreementParams params;
    params.error = rng.Uniform(0.0, 0.2);
    params.soft_multiple = rng.Uniform(1.0, 3.0);
    params.mode = iter % 2 == 0 ? AgreementMode::kSoftDynamic
                                : AgreementMode::kBinary;
    params.scale = ThresholdScale::kRelative;
    std::vector<double> scores(n);
    kernels::AgreementScoresKernel(values.data(), n, params, scores.data(),
                                   scratch);
    ExpectBitEqual(scores, NaiveAgreementScores(values, params),
                   "relative/soft fallback");
  }
}

TEST(AgreementScoresKernelDispatch, NonFiniteValuesFallBackToPairwise) {
  // NaN/inf candidates must not reach the sort; the dispatcher detects
  // them per call and the result still matches the naive loop (NaN
  // distances score 0 in binary mode).
  kernels::AgreementScratch scratch;
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0,
                                5.0, 6.0, 7.0,
                                std::numeric_limits<double>::quiet_NaN(),
                                std::numeric_limits<double>::infinity()};
  AgreementParams params;
  params.mode = AgreementMode::kBinary;
  params.scale = ThresholdScale::kAbsolute;
  params.error = 2.0;
  std::vector<double> scores(values.size());
  kernels::AgreementScoresKernel(values.data(), values.size(), params,
                                 scores.data(), scratch);
  ExpectBitEqual(scores, NaiveAgreementScores(values, params),
                 "non-finite fallback");
}

// --- Exclusion mask ---------------------------------------------------------

TEST(ExclusionMask, MatchesVectorBoolPathRandomized) {
  Rng rng(17);
  kernels::ExclusionScratch scratch;
  const ExclusionMode modes[] = {ExclusionMode::kNone, ExclusionMode::kStdDev,
                                 ExclusionMode::kMad};
  for (int iter = 0; iter < 300; ++iter) {
    const size_t n = rng.UniformInt(32);
    std::vector<double> values = RandomValues(rng, n, 0.0, 100.0, 0.2);
    if (n > 0 && rng.NextDouble() < 0.3) {
      values[rng.UniformInt(n)] = rng.Uniform(1e4, 1e6);  // hard outlier
    }
    ExclusionParams params;
    params.mode = modes[rng.UniformInt(3)];
    params.threshold = rng.Uniform(-0.5, 4.0);

    const std::vector<bool> reference = ComputeExclusions(values, params);
    std::vector<uint8_t> mask(n, 0xCD);
    const size_t kept =
        ComputeExclusionMask(values, params, scratch, mask.data());
    ASSERT_EQ(reference.size(), n);
    size_t reference_kept = 0;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(mask[i] != 0, static_cast<bool>(reference[i]))
          << "mode " << static_cast<int>(params.mode) << " index " << i;
      if (!reference[i]) ++reference_kept;
    }
    EXPECT_EQ(kept, reference_kept);
  }
}

TEST(ExclusionMask, NeverExcludesEveryone) {
  // Two tight clusters far apart with a huge threshold on a tiny spread
  // can flag everything; the mask path must then keep everyone, exactly
  // like the vector<bool> path.
  kernels::ExclusionScratch scratch;
  std::vector<double> values = {0.0, 0.0, 1e9, 1e9};
  ExclusionParams params;
  params.mode = ExclusionMode::kStdDev;
  params.threshold = 0.5;
  std::vector<uint8_t> mask(values.size(), 0xCD);
  const size_t kept = ComputeExclusionMask(values, params, scratch, mask.data());
  const std::vector<bool> reference = ComputeExclusions(values, params);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(mask[i] != 0, static_cast<bool>(reference[i]));
  }
  size_t reference_kept = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!reference[i]) ++reference_kept;
  }
  EXPECT_EQ(kept, reference_kept);
}

// --- Weighted mean ----------------------------------------------------------

TEST(WeightedMeanKernel, MatchesOrderedScalarFold) {
  Rng rng(23);
  kernels::WeightedMeanScratch scratch;
  for (int iter = 0; iter < 300; ++iter) {
    const size_t n = 1 + rng.UniformInt(32);
    std::vector<double> values = RandomValues(rng, n, -50.0, 50.0, 0.1);
    std::vector<double> weights(n);
    for (auto& w : weights) {
      w = rng.NextDouble() < 0.3 ? 0.0 : rng.Uniform(-0.2, 1.0);
    }
    // Reference: the historical skip-nonpositive inline loop.
    double weight_sum = 0.0;
    double value_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (weights[i] <= 0.0) continue;
      weight_sum += weights[i];
      value_sum += weights[i] * values[i];
    }
    double mean = 0.0;
    const bool ok = kernels::WeightedMeanKernel(values.data(), weights.data(),
                                                n, scratch, &mean);
    EXPECT_EQ(ok, weight_sum > 0.0);
    if (ok) {
      EXPECT_EQ(mean, value_sum / weight_sum);
    }
  }
}

TEST(WeightedMeanKernel, AllNonPositiveWeightsReportFailure) {
  kernels::WeightedMeanScratch scratch;
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const std::vector<double> weights = {0.0, -1.0, 0.0};
  double mean = 123.0;
  EXPECT_FALSE(kernels::WeightedMeanKernel(values.data(), weights.data(),
                                           values.size(), scratch, &mean));
}

// --- Pivot kernel -----------------------------------------------------------

TEST(AgreementWithPivotKernel, MatchesPerElementAgreementScore) {
  Rng rng(31);
  for (int iter = 0; iter < 200; ++iter) {
    const size_t n = 1 + rng.UniformInt(24);
    const std::vector<double> values = RandomValues(rng, n, -80.0, 80.0, 0.2);
    const double pivot = rng.Uniform(-80.0, 80.0);
    AgreementParams params;
    params.error = rng.Uniform(0.0, 2.0);
    params.soft_multiple = rng.Uniform(0.5, 3.0);
    params.mode = rng.NextDouble() < 0.5 ? AgreementMode::kBinary
                                         : AgreementMode::kSoftDynamic;
    params.scale = rng.NextDouble() < 0.5 ? ThresholdScale::kAbsolute
                                          : ThresholdScale::kRelative;
    std::vector<double> out(n);
    kernels::AgreementWithPivotKernel(values.data(), n, pivot, params,
                                      out.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], AgreementScore(values[i], pivot, params));
    }
  }
}

}  // namespace
}  // namespace avoc::core
