#include "runtime/multi_group.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/algorithms.h"
#include "util/rng.h"

namespace avoc::runtime {
namespace {

// One noisy table per group, each from its own deterministic stream so
// groups exercise genuinely different data.
std::vector<data::RoundTable> MakeTables(size_t groups, size_t modules,
                                         size_t rounds) {
  std::vector<data::RoundTable> tables;
  tables.reserve(groups);
  for (size_t g = 0; g < groups; ++g) {
    std::vector<std::string> names;
    for (size_t m = 0; m < modules; ++m) {
      names.push_back("m" + std::to_string(m));
    }
    data::RoundTable table(names);
    avoc::Rng rng(1234 + g);
    for (size_t r = 0; r < rounds; ++r) {
      std::vector<std::optional<double>> row;
      const double base = 20.0 + static_cast<double>(g);
      for (size_t m = 0; m < modules; ++m) {
        // Module 0 drifts badly in odd groups: distinct per-group history.
        const double bias = (m == 0 && g % 2 == 1) ? 4.0 : 0.0;
        row.emplace_back(base + bias + rng.Uniform(-0.3, 0.3));
      }
      EXPECT_TRUE(table.AppendRound(row).ok());
    }
    tables.push_back(std::move(table));
  }
  return tables;
}

core::EngineConfig AvocConfig() {
  auto engine = core::MakeEngine(core::AlgorithmId::kAvoc, 3);
  EXPECT_TRUE(engine.ok());
  return engine->config();
}

TEST(MultiGroupEngineTest, CreateValidates) {
  EXPECT_FALSE(MultiGroupEngine::Create(0, 3, AvocConfig()).ok());
  EXPECT_FALSE(MultiGroupEngine::Create(4, 0, AvocConfig()).ok());
  auto engine = MultiGroupEngine::Create(4, 3, AvocConfig());
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->group_count(), 4u);
  EXPECT_EQ(engine->module_count(), 3u);
}

TEST(MultiGroupEngineTest, GroupsShareOneCompiledPipeline) {
  auto engine = MultiGroupEngine::Create(8, 3, AvocConfig());
  ASSERT_TRUE(engine.ok());
  for (size_t g = 1; g < engine->group_count(); ++g) {
    EXPECT_EQ(&engine->group(g).stage_pipeline(),
              &engine->group(0).stage_pipeline());
  }
}

TEST(MultiGroupEngineTest, RunBatchRejectsShapeMismatches) {
  auto engine = MultiGroupEngine::Create(4, 3, AvocConfig());
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->RunBatch(MakeTables(3, 3, 5)).ok());  // group count
  EXPECT_FALSE(engine->RunBatch(MakeTables(4, 2, 5)).ok());  // module count
}

TEST(MultiGroupEngineTest, ParallelMatchesSequentialBitForBit) {
  const auto tables = MakeTables(8, 3, 40);
  MultiGroupOptions options;
  options.threads = 4;
  auto parallel = MultiGroupEngine::Create(8, 3, AvocConfig(), options);
  auto sequential = MultiGroupEngine::Create(8, 3, AvocConfig());
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(sequential.ok());
  auto par = parallel->RunBatch(tables);
  auto seq = sequential->RunBatchSequential(tables);
  ASSERT_TRUE(par.ok());
  ASSERT_TRUE(seq.ok());
  ASSERT_EQ(par->group_count(), seq->group_count());
  for (size_t g = 0; g < par->group_count(); ++g) {
    const core::TraceView p = par->group(g);
    const core::TraceView s = seq->group(g);
    ASSERT_EQ(p.round_count(), s.round_count()) << "group " << g;
    for (size_t r = 0; r < p.round_count(); ++r) {
      EXPECT_EQ(p.output(r), s.output(r))
          << "group " << g << " round " << r;
      for (size_t m = 0; m < p.module_count(); ++m) {
        EXPECT_EQ(p.weights(r)[m], s.weights(r)[m])
            << "group " << g << " round " << r << " module " << m;
        EXPECT_EQ(p.history(r)[m], s.history(r)[m])
            << "group " << g << " round " << r << " module " << m;
      }
    }
  }
  // The contiguous history snapshots agree as well.
  ASSERT_EQ(parallel->history_block().size(),
            sequential->history_block().size());
  for (size_t i = 0; i < parallel->history_block().size(); ++i) {
    EXPECT_EQ(parallel->history_block()[i], sequential->history_block()[i]);
  }
}

TEST(MultiGroupEngineTest, GroupsEvolveIndependently) {
  const auto tables = MakeTables(4, 3, 60);
  auto engine = MultiGroupEngine::Create(4, 3, AvocConfig(),
                                         MultiGroupOptions{2});
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->RunBatch(tables).ok());
  // Odd groups carry a drifting module 0; its record must fall behind the
  // same module's record in the clean even groups.
  EXPECT_LT(engine->GroupHistory(1)[0], engine->GroupHistory(0)[0]);
  EXPECT_LT(engine->GroupHistory(3)[0], engine->GroupHistory(2)[0]);
}

TEST(MultiGroupEngineTest, HistoryBlockRoundTripsThroughRestore) {
  const auto tables = MakeTables(4, 3, 30);
  auto source = MultiGroupEngine::Create(4, 3, AvocConfig(),
                                         MultiGroupOptions{2});
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(source->RunBatch(tables).ok());
  const std::vector<double> snapshot(source->history_block().begin(),
                                     source->history_block().end());

  auto restored = MultiGroupEngine::Create(4, 3, AvocConfig());
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->RestoreAll(std::vector<double>(3, 1.0), 1).ok());
  ASSERT_TRUE(restored->RestoreAll(snapshot, 30).ok());
  for (size_t g = 0; g < 4; ++g) {
    for (size_t m = 0; m < 3; ++m) {
      EXPECT_EQ(restored->GroupHistory(g)[m], source->GroupHistory(g)[m]);
      EXPECT_EQ(restored->group(g).history().record(m),
                source->group(g).history().record(m));
    }
  }

  restored->ResetAll();
  for (const double record : restored->history_block()) {
    EXPECT_EQ(record, 1.0);
  }
}

}  // namespace
}  // namespace avoc::runtime
