#include "runtime/bus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace avoc::runtime {
namespace {

TEST(TopicTest, DeliversToSubscriber) {
  Topic<int> topic;
  std::vector<int> received;
  topic.Subscribe([&](const int& v) { received.push_back(v); });
  topic.Publish(1);
  topic.Publish(2);
  EXPECT_EQ(received, (std::vector<int>{1, 2}));
}

TEST(TopicTest, MultipleSubscribersInOrder) {
  Topic<std::string> topic;
  std::string log;
  topic.Subscribe([&](const std::string& v) { log += "a:" + v + ";"; });
  topic.Subscribe([&](const std::string& v) { log += "b:" + v + ";"; });
  topic.Publish("x");
  EXPECT_EQ(log, "a:x;b:x;");
  EXPECT_EQ(topic.subscriber_count(), 2u);
}

TEST(TopicTest, UnsubscribeStopsDelivery) {
  Topic<int> topic;
  int count = 0;
  const SubscriptionId id = topic.Subscribe([&](const int&) { ++count; });
  topic.Publish(1);
  EXPECT_TRUE(topic.Unsubscribe(id));
  topic.Publish(2);
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(topic.Unsubscribe(id));  // second removal is a no-op
  EXPECT_EQ(topic.subscriber_count(), 0u);
}

TEST(TopicTest, PublishWithoutSubscribersIsSafe) {
  Topic<int> topic;
  topic.Publish(42);  // must not crash
  EXPECT_EQ(topic.subscriber_count(), 0u);
}

TEST(TopicTest, SubscriptionIdsAreUnique) {
  Topic<int> topic;
  const SubscriptionId a = topic.Subscribe([](const int&) {});
  const SubscriptionId b = topic.Subscribe([](const int&) {});
  EXPECT_NE(a, b);
}

TEST(TopicTest, ConcurrentPublishersDeliverEverything) {
  Topic<int> topic;
  std::atomic<int> sum{0};
  topic.Subscribe([&](const int& v) { sum += v; });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&topic] {
      for (int i = 0; i < kPerThread; ++i) topic.Publish(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(sum.load(), kThreads * kPerThread);
}

TEST(TopicTest, ChainedTopicsDispatchSynchronously) {
  // sensor -> hub -> voter style chaining across distinct topics.
  Topic<int> first;
  Topic<int> second;
  std::vector<int> out;
  second.Subscribe([&](const int& v) { out.push_back(v); });
  first.Subscribe([&](const int& v) { second.Publish(v * 10); });
  first.Publish(7);
  EXPECT_EQ(out, (std::vector<int>{70}));
}

}  // namespace
}  // namespace avoc::runtime
