#include "runtime/bus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace avoc::runtime {
namespace {

TEST(TopicTest, DeliversToSubscriber) {
  Topic<int> topic;
  std::vector<int> received;
  topic.Subscribe([&](const int& v) { received.push_back(v); });
  topic.Publish(1);
  topic.Publish(2);
  EXPECT_EQ(received, (std::vector<int>{1, 2}));
}

TEST(TopicTest, MultipleSubscribersInOrder) {
  Topic<std::string> topic;
  std::string log;
  topic.Subscribe([&](const std::string& v) { log += "a:" + v + ";"; });
  topic.Subscribe([&](const std::string& v) { log += "b:" + v + ";"; });
  topic.Publish("x");
  EXPECT_EQ(log, "a:x;b:x;");
  EXPECT_EQ(topic.subscriber_count(), 2u);
}

TEST(TopicTest, UnsubscribeStopsDelivery) {
  Topic<int> topic;
  int count = 0;
  const SubscriptionId id = topic.Subscribe([&](const int&) { ++count; });
  topic.Publish(1);
  EXPECT_TRUE(topic.Unsubscribe(id));
  topic.Publish(2);
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(topic.Unsubscribe(id));  // second removal is a no-op
  EXPECT_EQ(topic.subscriber_count(), 0u);
}

TEST(TopicTest, PublishWithoutSubscribersIsSafe) {
  Topic<int> topic;
  topic.Publish(42);  // must not crash
  EXPECT_EQ(topic.subscriber_count(), 0u);
}

TEST(TopicTest, SubscriptionIdsAreUnique) {
  Topic<int> topic;
  const SubscriptionId a = topic.Subscribe([](const int&) {});
  const SubscriptionId b = topic.Subscribe([](const int&) {});
  EXPECT_NE(a, b);
}

TEST(TopicTest, ConcurrentPublishersDeliverEverything) {
  Topic<int> topic;
  std::atomic<int> sum{0};
  topic.Subscribe([&](const int& v) { sum += v; });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&topic] {
      for (int i = 0; i < kPerThread; ++i) topic.Publish(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(sum.load(), kThreads * kPerThread);
}

TEST(TopicTest, ConcurrentPublishersRunHandlersInParallel) {
  // Regression: Publish used to run handlers under an exclusive topic
  // mutex, so a slow handler on one publisher thread serialized every
  // other publisher.  With the shared lock, two publishers must be able
  // to sit inside the handler at the same time.
  // Lock-free observation on purpose: the handler runs under the topic's
  // shared lock, and taking another mutex inside it would hand TSan a
  // spurious lock-order edge against unrelated tests.
  Topic<int> topic;
  std::atomic<int> inside{0};
  std::atomic<bool> both_seen{false};
  topic.Subscribe([&](const int&) {
    inside.fetch_add(1);
    // Wait (bounded) for the second publisher to join us in here; under
    // the old exclusive lock this always timed out.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!both_seen.load()) {
      if (inside.load() >= 2) {
        both_seen.store(true);
        break;
      }
      if (std::chrono::steady_clock::now() > deadline) break;
      std::this_thread::yield();
    }
    inside.fetch_sub(1);
  });
  std::thread a([&] { topic.Publish(1); });
  std::thread b([&] { topic.Publish(2); });
  a.join();
  b.join();
  EXPECT_TRUE(both_seen.load());
}

TEST(TopicTest, UnsubscribeExcludesInFlightPublish) {
  // Unsubscribe must block until in-flight deliveries finish, so the
  // subscriber can be destroyed right after it returns.
  Topic<int> topic;
  std::atomic<bool> in_handler{false};
  std::atomic<bool> release{false};
  std::atomic<bool> unsubscribed{false};
  const SubscriptionId id = topic.Subscribe([&](const int&) {
    in_handler = true;
    while (!release.load()) std::this_thread::yield();
  });
  std::thread publisher([&] { topic.Publish(1); });
  while (!in_handler.load()) std::this_thread::yield();
  std::thread remover([&] {
    topic.Unsubscribe(id);
    unsubscribed = true;
  });
  // The handler is still running: Unsubscribe must not have completed.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(unsubscribed.load());
  release = true;
  publisher.join();
  remover.join();
  EXPECT_TRUE(unsubscribed.load());
}

TEST(TopicTest, ChainedTopicsDispatchSynchronously) {
  // sensor -> hub -> voter style chaining across distinct topics.
  Topic<int> first;
  Topic<int> second;
  std::vector<int> out;
  second.Subscribe([&](const int& v) { out.push_back(v); });
  first.Subscribe([&](const int& v) { second.Publish(v * 10); });
  first.Publish(7);
  EXPECT_EQ(out, (std::vector<int>{70}));
}

}  // namespace
}  // namespace avoc::runtime
