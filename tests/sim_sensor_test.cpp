#include "sim/sensor.h"

#include <gtest/gtest.h>

#include "stats/running.h"

namespace avoc::sim {
namespace {

TEST(SensorModelTest, BiasShiftsReadings) {
  SensorParams params;
  params.bias = 100.0;
  SensorModel sensor(params, Rng(1));
  stats::RunningStats rs;
  for (size_t r = 0; r < 100; ++r) {
    auto reading = sensor.Sample(r, 1000.0);
    ASSERT_TRUE(reading.has_value());
    rs.Add(*reading);
  }
  EXPECT_DOUBLE_EQ(rs.mean(), 1100.0);  // no noise configured
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(SensorModelTest, NoiseHasConfiguredSpread) {
  SensorParams params;
  params.noise_stddev = 50.0;
  SensorModel sensor(params, Rng(2));
  stats::RunningStats rs;
  for (size_t r = 0; r < 20000; ++r) {
    rs.Add(*sensor.Sample(r, 500.0));
  }
  EXPECT_NEAR(rs.mean(), 500.0, 2.0);
  EXPECT_NEAR(rs.stddev(), 50.0, 2.0);
}

TEST(SensorModelTest, DriftAccumulatesLinearly) {
  SensorParams params;
  params.drift_per_round = 0.5;
  SensorModel sensor(params, Rng(3));
  EXPECT_DOUBLE_EQ(*sensor.Sample(0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(*sensor.Sample(10, 100.0), 105.0);
  EXPECT_DOUBLE_EQ(*sensor.Sample(100, 100.0), 150.0);
}

TEST(SensorModelTest, DropoutProbabilityRespected) {
  SensorParams params;
  params.dropout_probability = 0.3;
  SensorModel sensor(params, Rng(4));
  size_t missing = 0;
  constexpr size_t kRounds = 20000;
  for (size_t r = 0; r < kRounds; ++r) {
    if (!sensor.Sample(r, 1.0).has_value()) ++missing;
  }
  EXPECT_NEAR(static_cast<double>(missing) / kRounds, 0.3, 0.02);
}

TEST(SensorModelTest, SpikesOccurAtConfiguredRate) {
  SensorParams params;
  params.spike_probability = 0.1;
  params.spike_magnitude = 1000.0;
  SensorModel sensor(params, Rng(5));
  size_t spiked = 0;
  constexpr size_t kRounds = 10000;
  for (size_t r = 0; r < kRounds; ++r) {
    const double v = *sensor.Sample(r, 0.0);
    if (std::abs(v) > 500.0) ++spiked;
  }
  EXPECT_NEAR(static_cast<double>(spiked) / kRounds, 0.1, 0.02);
}

TEST(SensorModelTest, StuckAtFreezesLastValue) {
  SensorParams params;
  params.noise_stddev = 1.0;
  params.stuck_from_round = 5;
  SensorModel sensor(params, Rng(6));
  double last_before_stuck = 0.0;
  for (size_t r = 0; r < 5; ++r) {
    last_before_stuck = *sensor.Sample(r, 100.0);
  }
  for (size_t r = 5; r < 10; ++r) {
    auto reading = sensor.Sample(r, 500.0);  // truth moved, sensor did not
    ASSERT_TRUE(reading.has_value());
    EXPECT_DOUBLE_EQ(*reading, last_before_stuck);
  }
}

TEST(SensorModelTest, DeterministicForSameSeed) {
  SensorParams params;
  params.noise_stddev = 10.0;
  params.dropout_probability = 0.2;
  params.spike_probability = 0.05;
  params.spike_magnitude = 100.0;
  SensorModel a(params, Rng(7));
  SensorModel b(params, Rng(7));
  for (size_t r = 0; r < 1000; ++r) {
    const auto ra = a.Sample(r, 50.0);
    const auto rb = b.Sample(r, 50.0);
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (ra.has_value()) EXPECT_DOUBLE_EQ(*ra, *rb);
  }
}

}  // namespace
}  // namespace avoc::sim
