// Golden regression pins.
//
// The evaluation's reproducibility rests on two layers of determinism:
// the seeded simulators must generate bit-identical datasets, and the
// engines must fuse them bit-identically.  These tests pin a handful of
// exact values so that an accidental change to the RNG stream, a sensor
// calibration constant, or an engine tie-break shows up as a loud test
// failure instead of silently shifted experiment numbers.
//
// When a pinned value changes *intentionally* (recalibration), update the
// constants here and re-record EXPERIMENTS.md in the same commit.
#include <gtest/gtest.h>

#include "core/batch.h"
#include "sim/ble.h"
#include "sim/light.h"
#include "util/rng.h"

namespace avoc {
namespace {

TEST(GoldenTest, RngStreamIsPinned) {
  Rng rng(42);
  EXPECT_EQ(rng(), 15021278609987233951ull);
  EXPECT_EQ(rng(), 5881210131331364753ull);
  EXPECT_EQ(rng(), 18149643915985481100ull);
}

TEST(GoldenTest, GaussianStreamIsPinned) {
  Rng rng(42);
  EXPECT_NEAR(rng.Gaussian(), -0.76899305382100613, 1e-12);
  EXPECT_NEAR(rng.Gaussian(), 1.6661184587141999, 1e-12);
}

TEST(GoldenTest, LightDatasetFirstRoundIsPinned) {
  sim::LightScenarioParams params;
  params.rounds = 10;
  const auto table = sim::LightScenario(params).MakeReferenceTable();
  ASSERT_EQ(table.module_count(), 5u);
  // Values must lie in the calibrated envelope and be identical across
  // runs (cross-run identity is checked in sim_light_test; here we pin
  // the magnitudes so calibration drift is caught).
  for (size_t m = 0; m < 5; ++m) {
    ASSERT_TRUE(table.At(0, m).has_value());
  }
  EXPECT_NEAR(*table.At(0, 0), 17900.0, 450.0);  // E1 reads low
  EXPECT_NEAR(*table.At(0, 2), 19200.0, 450.0);  // E3 reads high
  EXPECT_NEAR(*table.At(0, 3), 18900.0, 450.0);  // E4 (+350 bias)
}

TEST(GoldenTest, AvocOutputsOnFaultyDatasetArePinned) {
  sim::LightScenarioParams params;
  params.rounds = 20;
  const auto faulty = sim::LightScenario(params).MakeFaultyTable();
  auto batch = core::RunAlgorithm(core::AlgorithmId::kAvoc, faulty);
  ASSERT_TRUE(batch.ok());
  // AVOC's fused outputs never leave the healthy band even though E4
  // reads ~24.9 klx; exact values recorded on first calibration.
  for (size_t r = 0; r < batch->round_count(); ++r) {
    const auto value = batch->output(r);
    ASSERT_TRUE(value.has_value());
    EXPECT_GT(*value, 17500.0);
    EXPECT_LT(*value, 19500.0);
  }
  EXPECT_TRUE(batch->used_clustering(0));
  EXPECT_DOUBLE_EQ(batch->weights(0)[3], 0.0);
}

TEST(GoldenTest, BleDatasetShapeIsPinned) {
  const auto dataset = sim::BleScenario().Generate();
  // Missing-count is a sensitive fingerprint of the whole RNG stream.
  EXPECT_EQ(dataset.stack_a.missing_count(), 553u);
  EXPECT_EQ(dataset.stack_b.missing_count(), 545u);
}

TEST(GoldenTest, EngineOutputsIdenticalAcrossIdenticalRuns) {
  sim::LightScenarioParams params;
  params.rounds = 100;
  const auto faulty = sim::LightScenario(params).MakeFaultyTable();
  for (const core::AlgorithmId id : core::AllAlgorithms()) {
    auto first = core::RunAlgorithm(id, faulty);
    auto second = core::RunAlgorithm(id, faulty);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    for (size_t r = 0; r < 100; ++r) {
      const auto first_output = first->output(r);
      const auto second_output = second->output(r);
      ASSERT_EQ(first_output.has_value(), second_output.has_value());
      if (first_output.has_value()) {
        EXPECT_DOUBLE_EQ(*first_output, *second_output);
      }
    }
  }
}

}  // namespace
}  // namespace avoc
