#include "stats/filters.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace avoc::stats {
namespace {

TEST(EwmaFilterTest, CreateValidates) {
  EXPECT_FALSE(EwmaFilter::Create(0.0).ok());
  EXPECT_FALSE(EwmaFilter::Create(1.5).ok());
  EXPECT_TRUE(EwmaFilter::Create(1.0).ok());
}

TEST(EwmaFilterTest, FirstSampleSeedsState) {
  auto filter = EwmaFilter::Create(0.2);
  ASSERT_TRUE(filter.ok());
  EXPECT_DOUBLE_EQ(filter->Step(10.0), 10.0);
}

TEST(EwmaFilterTest, ConvergesToConstant) {
  auto filter = EwmaFilter::Create(0.3);
  ASSERT_TRUE(filter.ok());
  filter->Step(0.0);
  double y = 0.0;
  for (int i = 0; i < 50; ++i) y = filter->Step(10.0);
  EXPECT_NEAR(y, 10.0, 1e-6);
}

TEST(EwmaFilterTest, AlphaOneIsIdentity) {
  auto filter = EwmaFilter::Create(1.0);
  ASSERT_TRUE(filter.ok());
  for (const double x : {3.0, -7.0, 42.0}) {
    EXPECT_DOUBLE_EQ(filter->Step(x), x);
  }
}

TEST(EwmaFilterTest, KnownRecursion) {
  auto filter = EwmaFilter::Create(0.5);
  ASSERT_TRUE(filter.ok());
  EXPECT_DOUBLE_EQ(filter->Step(0.0), 0.0);
  EXPECT_DOUBLE_EQ(filter->Step(10.0), 5.0);
  EXPECT_DOUBLE_EQ(filter->Step(10.0), 7.5);
}

TEST(EwmaFilterTest, ResetForgets) {
  auto filter = EwmaFilter::Create(0.1);
  ASSERT_TRUE(filter.ok());
  filter->Step(100.0);
  filter->Reset();
  EXPECT_DOUBLE_EQ(filter->Step(5.0), 5.0);
}

TEST(MovingAverageFilterTest, WindowSemantics) {
  auto filter = MovingAverageFilter::Create(3);
  ASSERT_TRUE(filter.ok());
  EXPECT_DOUBLE_EQ(filter->Step(3.0), 3.0);
  EXPECT_DOUBLE_EQ(filter->Step(6.0), 4.5);
  EXPECT_DOUBLE_EQ(filter->Step(9.0), 6.0);
  EXPECT_DOUBLE_EQ(filter->Step(12.0), 9.0);  // 3 dropped
}

TEST(MovingAverageFilterTest, CreateValidates) {
  EXPECT_FALSE(MovingAverageFilter::Create(0).ok());
}

TEST(MovingMedianFilterTest, RejectsSpikes) {
  auto filter = MovingMedianFilter::Create(5);
  ASSERT_TRUE(filter.ok());
  double y = 0.0;
  for (const double x : {10.0, 10.0, 10.0, 500.0, 10.0}) y = filter->Step(x);
  EXPECT_DOUBLE_EQ(y, 10.0);  // the spike never surfaces
}

TEST(MovingMedianFilterTest, EvenWindowMidpoint) {
  auto filter = MovingMedianFilter::Create(2);
  ASSERT_TRUE(filter.ok());
  filter->Step(1.0);
  EXPECT_DOUBLE_EQ(filter->Step(3.0), 2.0);
}

TEST(SlewLimitFilterTest, ClampsStepSize) {
  auto filter = SlewLimitFilter::Create(1.0);
  ASSERT_TRUE(filter.ok());
  EXPECT_DOUBLE_EQ(filter->Step(0.0), 0.0);
  EXPECT_DOUBLE_EQ(filter->Step(10.0), 1.0);
  EXPECT_DOUBLE_EQ(filter->Step(10.0), 2.0);
  EXPECT_DOUBLE_EQ(filter->Step(-10.0), 1.0);
}

TEST(SlewLimitFilterTest, SmallMovesPassThrough) {
  auto filter = SlewLimitFilter::Create(5.0);
  ASSERT_TRUE(filter.ok());
  filter->Step(10.0);
  EXPECT_DOUBLE_EQ(filter->Step(12.0), 12.0);
}

TEST(KalmanFilterTest, CreateValidates) {
  EXPECT_FALSE(KalmanFilter::Create(-1.0, 1.0).ok());
  EXPECT_FALSE(KalmanFilter::Create(0.1, 0.0).ok());
  EXPECT_TRUE(KalmanFilter::Create(0.0, 1.0).ok());
}

TEST(KalmanFilterTest, VarianceShrinksWithSamples) {
  auto filter = KalmanFilter::Create(0.01, 4.0);
  ASSERT_TRUE(filter.ok());
  filter->Step(10.0);
  const double after_one = filter->variance();
  for (int i = 0; i < 20; ++i) filter->Step(10.0);
  EXPECT_LT(filter->variance(), after_one);
}

TEST(KalmanFilterTest, SmoothsNoiseTowardsTruth) {
  auto filter = KalmanFilter::Create(0.001, 25.0);
  ASSERT_TRUE(filter.ok());
  avoc::Rng rng(1);
  double y = 0.0;
  for (int i = 0; i < 500; ++i) {
    y = filter->Step(50.0 + rng.Gaussian(0.0, 5.0));
  }
  EXPECT_NEAR(y, 50.0, 1.0);
}

TEST(KalmanFilterTest, TracksSlowDrift) {
  auto filter = KalmanFilter::Create(0.5, 4.0);
  ASSERT_TRUE(filter.ok());
  double y = 0.0;
  for (int i = 0; i < 200; ++i) {
    y = filter->Step(static_cast<double>(i) * 0.1);
  }
  EXPECT_NEAR(y, 19.9, 1.5);
}

TEST(ApplyTest, DenseSeries) {
  auto filter = EwmaFilter::Create(0.5);
  ASSERT_TRUE(filter.ok());
  const std::vector<double> series = {0.0, 10.0, 10.0};
  const auto out = Apply(*filter, series);
  EXPECT_EQ(out, (std::vector<double>{0.0, 5.0, 7.5}));
}

TEST(ApplyTest, GappySeriesHoldsState) {
  auto filter = EwmaFilter::Create(0.5);
  ASSERT_TRUE(filter.ok());
  const std::vector<std::optional<double>> series = {0.0, std::nullopt, 10.0};
  const auto out = ApplyWithGaps(*filter, series);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(*out[0], 0.0);
  EXPECT_FALSE(out[1].has_value());
  EXPECT_DOUBLE_EQ(*out[2], 5.0);  // gap did not advance the filter
}

TEST(FilterVarianceReduction, EwmaReducesNoiseVariance) {
  auto filter = EwmaFilter::Create(0.2);
  ASSERT_TRUE(filter.ok());
  avoc::Rng rng(2);
  double raw_var = 0.0;
  double filtered_var = 0.0;
  double previous_filtered = 0.0;
  filter->Step(0.0);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Gaussian(0.0, 1.0);
    const double y = filter->Step(x);
    raw_var += x * x;
    filtered_var += y * y;
    previous_filtered = y;
  }
  (void)previous_filtered;
  EXPECT_LT(filtered_var, raw_var * 0.3);
}

}  // namespace
}  // namespace avoc::stats
