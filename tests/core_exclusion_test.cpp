#include "core/exclusion.h"

#include <gtest/gtest.h>

namespace avoc::core {
namespace {

ExclusionParams StdDev(double threshold) {
  ExclusionParams params;
  params.mode = ExclusionMode::kStdDev;
  params.threshold = threshold;
  return params;
}

ExclusionParams Mad(double threshold) {
  ExclusionParams params;
  params.mode = ExclusionMode::kMad;
  params.threshold = threshold;
  return params;
}

size_t CountExcluded(const std::vector<bool>& flags) {
  size_t count = 0;
  for (const bool f : flags) {
    if (f) ++count;
  }
  return count;
}

TEST(ExclusionTest, NoneKeepsEverything) {
  const std::vector<double> values = {1.0, 100.0, -50.0};
  const auto flags = ComputeExclusions(values, ExclusionParams{});
  EXPECT_EQ(CountExcluded(flags), 0u);
}

TEST(ExclusionTest, StdDevDropsGrossOutlier) {
  const std::vector<double> values = {10.0, 10.1, 9.9, 10.0, 10.2, 500.0};
  const auto flags = ComputeExclusions(values, StdDev(2.0));
  EXPECT_EQ(CountExcluded(flags), 1u);
  EXPECT_TRUE(flags[5]);
}

TEST(ExclusionTest, StdDevKeepsTightCluster) {
  const std::vector<double> values = {10.0, 10.1, 9.9, 10.05, 9.95};
  const auto flags = ComputeExclusions(values, StdDev(3.0));
  EXPECT_EQ(CountExcluded(flags), 0u);
}

TEST(ExclusionTest, MadIsRobustWhereStdDevIsNot) {
  // The 1e6 outlier inflates the stddev so much that sigma-based exclusion
  // at 2 sigma keeps it; MAD still rejects it.
  const std::vector<double> values = {10.0, 10.5, 9.5, 10.2, 9.8, 1e6};
  const auto sigma_flags = ComputeExclusions(values, StdDev(2.0));
  EXPECT_TRUE(sigma_flags[5]);  // 2-sigma happens to catch it here
  const auto mad_flags = ComputeExclusions(values, Mad(3.0));
  EXPECT_TRUE(mad_flags[5]);
  EXPECT_EQ(CountExcluded(mad_flags), 1u);
}

TEST(ExclusionTest, FewerThanThreeCandidatesNeverExcluded) {
  const std::vector<double> two = {1.0, 100.0};
  EXPECT_EQ(CountExcluded(ComputeExclusions(two, StdDev(0.1))), 0u);
  const std::vector<double> one = {1.0};
  EXPECT_EQ(CountExcluded(ComputeExclusions(one, StdDev(0.1))), 0u);
}

TEST(ExclusionTest, ZeroSpreadExcludesNothing) {
  const std::vector<double> constant = {5.0, 5.0, 5.0, 5.0};
  EXPECT_EQ(CountExcluded(ComputeExclusions(constant, StdDev(1.0))), 0u);
  EXPECT_EQ(CountExcluded(ComputeExclusions(constant, Mad(1.0))), 0u);
}

TEST(ExclusionTest, NonPositiveThresholdDisables) {
  const std::vector<double> values = {1.0, 2.0, 100.0};
  EXPECT_EQ(CountExcluded(ComputeExclusions(values, StdDev(0.0))), 0u);
  EXPECT_EQ(CountExcluded(ComputeExclusions(values, StdDev(-1.0))), 0u);
}

TEST(ExclusionTest, NeverExcludesEveryone) {
  // Every value sits far from the mean; a tiny threshold would flag all of
  // them, and the guard keeps them all instead.
  const std::vector<double> values = {1.0, 9.0, 1.0, 9.0};
  const auto flags = ComputeExclusions(values, StdDev(1e-6));
  EXPECT_EQ(CountExcluded(flags), 0u);
}

TEST(ExclusionTest, MadZeroWithMajorityConstant) {
  // Median 5, MAD 0 (3 of 5 identical): degenerate spread, keep all.
  const std::vector<double> values = {5.0, 5.0, 5.0, 7.0, 3.0};
  EXPECT_EQ(CountExcluded(ComputeExclusions(values, Mad(2.0))), 0u);
}

}  // namespace
}  // namespace avoc::core
