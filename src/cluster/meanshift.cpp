#include "cluster/meanshift.h"

#include <cmath>
#include <limits>

namespace avoc::cluster {
namespace {

double KernelWeight(double dist2, double bandwidth, Kernel kernel) {
  const double h2 = bandwidth * bandwidth;
  switch (kernel) {
    case Kernel::kFlat:
      return dist2 <= h2 ? 1.0 : 0.0;
    case Kernel::kGaussian:
      return std::exp(-dist2 / (2.0 * h2));
  }
  return 0.0;
}

}  // namespace

Result<MeanShiftResult> MeanShift(std::span<const Point> points,
                                  const MeanShiftOptions& options) {
  if (points.empty()) return InvalidArgumentError("mean-shift on empty data");
  if (options.bandwidth <= 0.0) {
    return InvalidArgumentError("bandwidth must be positive");
  }
  const size_t dim = points.front().size();
  for (const Point& p : points) {
    if (p.size() != dim) {
      return InvalidArgumentError("inconsistent point dimensions");
    }
  }
  const double merge_threshold = options.merge_threshold > 0.0
                                     ? options.merge_threshold
                                     : options.bandwidth / 2.0;

  // Shift every point to its density mode.
  std::vector<Point> shifted(points.begin(), points.end());
  for (Point& p : shifted) {
    for (size_t iter = 0; iter < options.max_iterations; ++iter) {
      Point numerator(dim, 0.0);
      double denominator = 0.0;
      for (const Point& q : points) {
        const double w =
            KernelWeight(SquaredDistance(p, q), options.bandwidth,
                         options.kernel);
        if (w <= 0.0) continue;
        denominator += w;
        for (size_t d = 0; d < dim; ++d) numerator[d] += w * q[d];
      }
      if (denominator <= 0.0) break;  // isolated point under flat kernel
      Point next(dim);
      for (size_t d = 0; d < dim; ++d) next[d] = numerator[d] / denominator;
      const double move2 = SquaredDistance(next, p);
      p = std::move(next);
      if (move2 <= options.convergence_threshold *
                       options.convergence_threshold) {
        break;
      }
    }
  }

  // Merge converged points into modes.
  MeanShiftResult result;
  result.labels.assign(points.size(), 0);
  const double merge2 = merge_threshold * merge_threshold;
  for (size_t i = 0; i < shifted.size(); ++i) {
    size_t assigned = result.modes.size();
    for (size_t m = 0; m < result.modes.size(); ++m) {
      if (SquaredDistance(shifted[i], result.modes[m]) <= merge2) {
        assigned = m;
        break;
      }
    }
    if (assigned == result.modes.size()) {
      result.modes.push_back(shifted[i]);
    }
    result.labels[i] = assigned;
  }
  return result;
}

}  // namespace avoc::cluster
