// X-means (Pelleg & Moore, 2000): k-means with automatic selection of k by
// recursively splitting clusters while the Bayesian Information Criterion
// improves.  One of the two multi-dimensional generalisations §5 proposes
// for AVOC's clustering step.
#pragma once

#include <span>

#include "cluster/kmeans.h"
#include "util/rng.h"
#include "util/status.h"

namespace avoc::cluster {

struct XMeansOptions {
  size_t k_min = 1;
  size_t k_max = 16;
  KMeansOptions kmeans;
};

/// Runs X-means; the result's centroid count is the chosen k.
Result<KMeansResult> XMeans(std::span<const Point> points, Rng& rng,
                            const XMeansOptions& options = {});

/// BIC score of a clustering under the identical-spherical-Gaussian model
/// of the X-means paper (higher is better).  Exposed for tests.
double BicScore(std::span<const Point> points, const KMeansResult& clustering);

}  // namespace avoc::cluster
