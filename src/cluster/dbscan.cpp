#include "cluster/dbscan.h"

#include <algorithm>
#include <numeric>

namespace avoc::cluster {

DbscanResult Dbscan1D(std::span<const double> values,
                      const DbscanOptions& options) {
  DbscanResult result;
  result.labels.assign(values.size(), DbscanResult::kNoise);
  if (values.empty()) return result;

  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });

  // In 1-D the eps-neighbourhood of sorted index i is a contiguous window;
  // two-pointer sweep finds it in O(n).
  const size_t n = order.size();
  std::vector<size_t> neighbour_count(n, 0);
  size_t lo = 0;
  size_t hi = 0;
  for (size_t i = 0; i < n; ++i) {
    const double v = values[order[i]];
    while (values[order[lo]] < v - options.eps) ++lo;
    if (hi < i) hi = i;
    while (hi + 1 < n && values[order[hi + 1]] <= v + options.eps) ++hi;
    neighbour_count[i] = hi - lo + 1;
  }

  // Core points chain into clusters: consecutive core points within eps of
  // each other belong together; border points attach to the adjacent core
  // cluster within eps.
  int next_cluster = 0;
  std::vector<int> sorted_labels(n, DbscanResult::kNoise);
  int open_cluster = -1;
  double last_core_value = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const bool is_core = neighbour_count[i] >= options.min_points;
    const double v = values[order[i]];
    if (is_core) {
      if (open_cluster >= 0 && v - last_core_value <= options.eps) {
        sorted_labels[i] = open_cluster;
      } else {
        open_cluster = next_cluster++;
        sorted_labels[i] = open_cluster;
        // Back-fill border points to the left within eps of this core.
        for (size_t j = i; j-- > 0;) {
          if (v - values[order[j]] > options.eps) break;
          if (sorted_labels[j] == DbscanResult::kNoise) {
            sorted_labels[j] = open_cluster;
          }
        }
      }
      last_core_value = v;
    } else if (open_cluster >= 0 && v - last_core_value <= options.eps) {
      // Border point to the right of the open cluster's last core.
      sorted_labels[i] = open_cluster;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    result.labels[order[i]] = sorted_labels[i];
  }
  result.cluster_count = next_cluster;
  return result;
}

}  // namespace avoc::cluster
