#include "cluster/xmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <vector>

namespace avoc::cluster {

double BicScore(std::span<const Point> points,
                const KMeansResult& clustering) {
  const size_t n = points.size();
  const size_t k = clustering.centroids.size();
  if (n == 0 || k == 0) return -std::numeric_limits<double>::infinity();
  const size_t dim = points.front().size();

  std::vector<size_t> counts(k, 0);
  for (const size_t label : clustering.labels) ++counts[label];

  // Maximum-likelihood variance of the identical spherical Gaussian model.
  const double denom = static_cast<double>(n > k ? n - k : 1);
  double variance = clustering.inertia / (denom * static_cast<double>(dim));
  variance = std::max(variance, 1e-12);  // degenerate: all points identical

  double log_likelihood = 0.0;
  for (size_t c = 0; c < k; ++c) {
    const double nc = static_cast<double>(counts[c]);
    if (nc == 0) continue;
    log_likelihood +=
        nc * std::log(nc) - nc * std::log(static_cast<double>(n)) -
        nc * static_cast<double>(dim) / 2.0 *
            std::log(2.0 * std::numbers::pi * variance) -
        (nc - 1.0) * static_cast<double>(dim) / 2.0;
  }
  // Free parameters: k-1 mixing weights, k*dim centroid coords, 1 variance.
  const double params =
      static_cast<double>(k - 1 + k * dim + 1);
  return log_likelihood - params / 2.0 * std::log(static_cast<double>(n));
}

Result<KMeansResult> XMeans(std::span<const Point> points, Rng& rng,
                            const XMeansOptions& options) {
  if (points.empty()) return InvalidArgumentError("x-means on empty data");
  if (options.k_min == 0 || options.k_min > options.k_max) {
    return InvalidArgumentError("invalid k range");
  }
  const size_t k_start = std::min(options.k_min, points.size());
  AVOC_ASSIGN_OR_RETURN(KMeansResult best,
                        KMeans(points, k_start, rng, options.kmeans));

  size_t k = k_start;
  bool improved = true;
  while (improved && k < options.k_max && k < points.size()) {
    improved = false;
    // Improve-structure step: try splitting each cluster in two and keep
    // splits that raise the local BIC.
    std::vector<Point> new_centroids;
    for (size_t c = 0; c < best.centroids.size(); ++c) {
      std::vector<Point> members;
      for (size_t i = 0; i < points.size(); ++i) {
        if (best.labels[i] == c) members.push_back(points[i]);
      }
      if (members.size() < 4) {
        new_centroids.push_back(best.centroids[c]);
        continue;
      }
      // Parent model: this cluster as one Gaussian.
      KMeansResult parent;
      parent.centroids = {best.centroids[c]};
      parent.labels.assign(members.size(), 0);
      parent.inertia = 0.0;
      for (const Point& p : members) {
        parent.inertia += SquaredDistance(p, best.centroids[c]);
      }
      const double parent_bic = BicScore(members, parent);
      auto child = KMeans(members, 2, rng, options.kmeans);
      if (!child.ok()) {
        new_centroids.push_back(best.centroids[c]);
        continue;
      }
      const double child_bic = BicScore(members, *child);
      if (child_bic > parent_bic &&
          new_centroids.size() + 2 +
                  (best.centroids.size() - c - 1) <= options.k_max) {
        new_centroids.push_back(child->centroids[0]);
        new_centroids.push_back(child->centroids[1]);
        improved = true;
      } else {
        new_centroids.push_back(best.centroids[c]);
      }
    }
    if (!improved) break;
    // Re-run full k-means from the accepted split structure.
    k = new_centroids.size();
    KMeansResult refined;
    refined.centroids = std::move(new_centroids);
    refined.labels.assign(points.size(), 0);
    // One assignment + polish via ordinary k-means (seeded implicitly by
    // running Lloyd iterations from these centroids).
    KMeansOptions polish = options.kmeans;
    // Manual Lloyd loop reusing the helper through KMeans would reseed, so
    // polish in place:
    for (size_t iter = 0; iter < polish.max_iterations; ++iter) {
      refined.inertia = 0.0;
      for (size_t i = 0; i < points.size(); ++i) {
        double best_d = std::numeric_limits<double>::infinity();
        size_t best_c = 0;
        for (size_t c = 0; c < refined.centroids.size(); ++c) {
          const double d = SquaredDistance(points[i], refined.centroids[c]);
          if (d < best_d) {
            best_d = d;
            best_c = c;
          }
        }
        refined.labels[i] = best_c;
        refined.inertia += best_d;
      }
      const size_t dim = points.front().size();
      std::vector<Point> sums(refined.centroids.size(), Point(dim, 0.0));
      std::vector<size_t> counts(refined.centroids.size(), 0);
      for (size_t i = 0; i < points.size(); ++i) {
        ++counts[refined.labels[i]];
        for (size_t d = 0; d < dim; ++d) {
          sums[refined.labels[i]][d] += points[i][d];
        }
      }
      double max_shift = 0.0;
      for (size_t c = 0; c < refined.centroids.size(); ++c) {
        if (counts[c] == 0) continue;
        Point updated(dim);
        for (size_t d = 0; d < dim; ++d) {
          updated[d] = sums[c][d] / static_cast<double>(counts[c]);
        }
        max_shift =
            std::max(max_shift, SquaredDistance(updated, refined.centroids[c]));
        refined.centroids[c] = std::move(updated);
      }
      refined.iterations = iter + 1;
      if (max_shift <= polish.tolerance) break;
    }
    best = std::move(refined);
  }
  return best;
}

}  // namespace avoc::cluster
