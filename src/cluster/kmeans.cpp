#include "cluster/kmeans.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/strings.h"

namespace avoc::cluster {

double SquaredDistance(const Point& a, const Point& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

namespace {

/// k-means++ seeding: first centroid uniform, subsequent proportional to
/// squared distance from the nearest chosen centroid.
std::vector<Point> SeedCentroids(std::span<const Point> points, size_t k,
                                 Rng& rng) {
  std::vector<Point> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.UniformInt(points.size())]);
  std::vector<double> dist2(points.size(),
                            std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      dist2[i] = std::min(dist2[i], SquaredDistance(points[i], centroids.back()));
      total += dist2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; duplicate one.
      centroids.push_back(points[rng.UniformInt(points.size())]);
      continue;
    }
    double target = rng.NextDouble() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      target -= dist2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

Result<KMeansResult> KMeans(std::span<const Point> points, size_t k, Rng& rng,
                            const KMeansOptions& options) {
  if (points.empty()) return InvalidArgumentError("k-means on empty data");
  if (k == 0) return InvalidArgumentError("k must be >= 1");
  if (k > points.size()) {
    return InvalidArgumentError(
        StrFormat("k=%zu exceeds point count %zu", k, points.size()));
  }
  const size_t dim = points.front().size();
  for (const Point& p : points) {
    if (p.size() != dim) {
      return InvalidArgumentError("inconsistent point dimensions");
    }
  }

  KMeansResult result;
  result.centroids = SeedCentroids(points, k, rng);
  result.labels.assign(points.size(), 0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    result.inertia = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      size_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double d = SquaredDistance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.labels[i] = best_c;
      result.inertia += best;
    }
    // Update step.
    std::vector<Point> sums(k, Point(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const size_t c = result.labels[i];
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    double max_shift = 0.0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      Point updated(dim);
      for (size_t d = 0; d < dim; ++d) {
        updated[d] = sums[c][d] / static_cast<double>(counts[c]);
      }
      max_shift = std::max(max_shift, SquaredDistance(updated, result.centroids[c]));
      result.centroids[c] = std::move(updated);
    }
    if (max_shift <= options.tolerance) break;
  }
  return result;
}

}  // namespace avoc::cluster
