// Threshold grouping: AVOC's self-calibrating clustering step (§5).
//
// "we check for values within a given scaling threshold of each other
//  (which is selected to mirror the parameters of the given algorithm),
//  and group the values in agreement.  Then, we select as output value the
//  average (or its closest real value) of the largest group."
//
// This is single-linkage agglomeration over 1-D values: after sorting,
// consecutive values whose gap is within the (possibly value-scaled)
// threshold join the same group.  Like DBSCAN with minPts=1, but
// self-calibrating: in relative mode the margin scales with the local
// reference value, so no dataset-specific eps tuning is needed — exactly
// the property §5 claims over DBSCAN.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/status.h"

namespace avoc::cluster {

enum class ThresholdMode {
  kAbsolute,  ///< gap <= threshold
  kRelative,  ///< gap <= threshold * max(|a|, |b|, floor)
};

struct GroupingOptions {
  double threshold = 0.05;
  ThresholdMode mode = ThresholdMode::kRelative;
  /// In relative mode, the scale used for near-zero values so that the
  /// margin never collapses to zero.
  double relative_floor = 1e-9;
};

/// One cluster: member indices into the input span, plus its mean.
struct Group {
  std::vector<size_t> members;  // indices into the input values
  double mean = 0.0;

  size_t size() const { return members.size(); }
};

struct GroupingResult {
  /// Groups sorted by descending size; ties broken by ascending mean so
  /// results are deterministic.
  std::vector<Group> groups;

  /// The largest group (errors on empty input are prevented upstream).
  const Group& largest() const { return groups.front(); }
};

/// Groups `values` by threshold linkage.  Empty input yields zero groups.
GroupingResult GroupByThreshold(std::span<const double> values,
                                const GroupingOptions& options = {});

/// The winning group per AVOC: the largest; ties broken by proximity of
/// the group mean to `previous_output` when provided (the paper's
/// tie-breaking "proximity to the previous output"), else by the group
/// whose mean is nearest the overall median.
Result<Group> SelectWinningGroup(const GroupingResult& grouping,
                                 std::span<const double> values,
                                 const double* previous_output = nullptr);

}  // namespace avoc::cluster
