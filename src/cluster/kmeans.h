// k-means with k-means++ seeding, over d-dimensional points.
//
// §5 of the paper generalises AVOC's grouping step to multi-dimensional
// data via unsupervised clustering (Mean-shift, X-means).  X-means (see
// xmeans.h) builds on this k-means core.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace avoc::cluster {

using Point = std::vector<double>;

struct KMeansOptions {
  size_t max_iterations = 100;
  /// Convergence: stop when no centroid moves more than this (squared
  /// Euclidean distance).
  double tolerance = 1e-8;
};

struct KMeansResult {
  std::vector<Point> centroids;   // k centroids
  std::vector<size_t> labels;     // per-point centroid index
  double inertia = 0.0;           // sum of squared distances to assigned centroid
  size_t iterations = 0;
};

/// Squared Euclidean distance; dimensions must match.
double SquaredDistance(const Point& a, const Point& b);

/// Runs k-means.  Errors when points is empty, k == 0, k > points.size()
/// or dimensions are inconsistent.
Result<KMeansResult> KMeans(std::span<const Point> points, size_t k, Rng& rng,
                            const KMeansOptions& options = {});

}  // namespace avoc::cluster
