#include "cluster/grouping.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace avoc::cluster {
namespace {

double GapLimit(double a, double b, const GroupingOptions& options) {
  if (options.mode == ThresholdMode::kAbsolute) return options.threshold;
  const double scale =
      std::max({std::abs(a), std::abs(b), options.relative_floor});
  return options.threshold * scale;
}

}  // namespace

GroupingResult GroupByThreshold(std::span<const double> values,
                                const GroupingOptions& options) {
  GroupingResult result;
  if (values.empty()) return result;

  // Sort indices by value; single-linkage over sorted order is exact for
  // 1-D data.
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });

  Group current;
  current.members.push_back(order[0]);
  double sum = values[order[0]];
  for (size_t i = 1; i < order.size(); ++i) {
    const double prev = values[order[i - 1]];
    const double next = values[order[i]];
    if (next - prev <= GapLimit(prev, next, options)) {
      current.members.push_back(order[i]);
      sum += next;
    } else {
      current.mean = sum / static_cast<double>(current.members.size());
      result.groups.push_back(std::move(current));
      current = Group{};
      current.members.push_back(order[i]);
      sum = next;
    }
  }
  current.mean = sum / static_cast<double>(current.members.size());
  result.groups.push_back(std::move(current));

  std::sort(result.groups.begin(), result.groups.end(),
            [](const Group& a, const Group& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.mean < b.mean;
            });
  return result;
}

Result<Group> SelectWinningGroup(const GroupingResult& grouping,
                                 std::span<const double> values,
                                 const double* previous_output) {
  if (grouping.groups.empty()) {
    return InvalidArgumentError("no groups to select from");
  }
  const size_t top_size = grouping.groups.front().size();
  // Collect all groups tied for the largest size.
  std::vector<const Group*> tied;
  for (const Group& g : grouping.groups) {
    if (g.size() == top_size) tied.push_back(&g);
  }
  if (tied.size() == 1) return *tied.front();

  double reference;
  if (previous_output != nullptr) {
    reference = *previous_output;
  } else {
    // Median of all candidate values as a neutral reference.
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    const size_t n = sorted.size();
    reference = (n % 2 == 1) ? sorted[n / 2]
                             : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }
  const Group* best = tied.front();
  double best_distance = std::abs(best->mean - reference);
  for (const Group* g : tied) {
    const double distance = std::abs(g->mean - reference);
    if (distance < best_distance) {
      best = g;
      best_distance = distance;
    }
  }
  return *best;
}

}  // namespace avoc::cluster
