// Mean-shift clustering (Comaniciu & Meer, 2002) with a flat or Gaussian
// kernel — the second multi-dimensional generalisation §5 proposes.
#pragma once

#include <span>

#include "cluster/kmeans.h"  // Point
#include "util/status.h"

namespace avoc::cluster {

enum class Kernel { kFlat, kGaussian };

struct MeanShiftOptions {
  double bandwidth = 1.0;
  Kernel kernel = Kernel::kGaussian;
  size_t max_iterations = 300;
  /// Stop shifting a point when its move is below this distance.
  double convergence_threshold = 1e-5;
  /// Modes closer than this merge into one cluster (defaults to
  /// bandwidth/2 when <= 0).
  double merge_threshold = 0.0;
};

struct MeanShiftResult {
  std::vector<Point> modes;      // one per cluster
  std::vector<size_t> labels;    // per-point mode index
  size_t cluster_count() const { return modes.size(); }
};

/// Runs mean-shift.  Errors on empty input, non-positive bandwidth or
/// inconsistent dimensions.
Result<MeanShiftResult> MeanShift(std::span<const Point> points,
                                  const MeanShiftOptions& options = {});

}  // namespace avoc::cluster
