// 1-D DBSCAN (Ester et al., KDD'96), the algorithm §5 compares AVOC's
// grouping step against.  Provided so the ablation bench can quantify the
// paper's claim that threshold grouping "opts for self-calibration, rather
// than requiring costly parameter tuning".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace avoc::cluster {

struct DbscanOptions {
  /// Neighbourhood radius.
  double eps = 0.5;
  /// Minimum neighbours (inclusive of the point itself) for a core point.
  size_t min_points = 2;
};

struct DbscanResult {
  /// Cluster id per input point; kNoise (-1) for outliers.
  std::vector<int> labels;
  /// Number of clusters found.
  int cluster_count = 0;

  static constexpr int kNoise = -1;
};

/// Runs DBSCAN over 1-D values.  Deterministic: clusters are numbered in
/// ascending order of their smallest member value.
DbscanResult Dbscan1D(std::span<const double> values,
                      const DbscanOptions& options = {});

}  // namespace avoc::cluster
