// Engine configuration: the policy knobs every §4 algorithm is a preset
// over.
//
// EngineConfig composes the per-step parameters (quorum, exclusion,
// clustering gate, agreement, elimination, weighting, collation, history)
// that the stage pipeline (core/stages.h) compiles into a fixed chain of
// VoteStage objects.  Kept separate from engine.h so the stages can see
// the configuration without depending on the engine itself.
#pragma once

#include <cstddef>

#include "core/agreement.h"
#include "core/collation.h"
#include "core/exclusion.h"
#include "core/history.h"
#include "core/types.h"
#include "util/status.h"

namespace avoc::core {

/// How a module's effective voting weight for the round is derived.
enum class RoundWeighting {
  kUniform,    ///< every surviving candidate weighs 1 (plain average)
  kHistory,    ///< weight = history record h_i
  kAgreement,  ///< weight = this round's agreement score s_i
  kCombined,   ///< weight = h_i * s_i
};

/// When the clustering step (cluster::GroupByThreshold) gates the vote.
enum class ClusteringMode {
  kOff,
  /// AVOC: only when the ledger indicates a new set (all records 1) or a
  /// collapse (all records 0) — bootstrap and fallback.
  kBootstrap,
  /// COV: every round, statelessly.
  kAlways,
};

struct QuorumParams {
  /// Candidates present / modules registered must reach this fraction for
  /// a vote to trigger (VDX `quorum_percentage` / 100).
  double fraction = 0.5;
  /// At least this many candidates regardless of fraction.
  size_t min_count = 1;
};

struct EngineConfig {
  AgreementParams agreement;
  HistoryParams history;
  ExclusionParams exclusion;
  QuorumParams quorum;
  RoundWeighting weighting = RoundWeighting::kHistory;
  Collation collation = Collation::kWeightedAverage;
  ClusteringMode clustering = ClusteringMode::kOff;

  /// Module elimination (ME): zero-weight modules whose history record is
  /// below the mean record of the present modules.
  bool module_elimination = false;
  /// Slack below the mean record before a module is eliminated.  Without
  /// it, a module that blemished once could never rejoin a group of
  /// perfect peers (its record approaches but never reaches theirs),
  /// violating the paper's "until their historical records improve by
  /// submitting better values".
  double elimination_margin = 0.05;

  /// Fault policies (§7 "fault scenario" discussion).
  NoQuorumPolicy on_no_quorum = NoQuorumPolicy::kRevertLast;
  NoMajorityPolicy on_no_majority = NoMajorityPolicy::kAccept;

  /// Validates parameter ranges (error > 0, quorum fraction in (0,1], ...).
  Status Validate() const;
};

}  // namespace avoc::core
