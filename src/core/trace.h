// Columnar batch traces (structure-of-arrays result path).
//
// A batch run over R rounds x M modules used to produce R VoteResults —
// R * 6 heap vectors.  BatchTrace stores the same information as eleven
// flat columns: one rounds-long column per scalar field and one
// (rounds x modules) row-major block per per-module field.  The layout is
// the unit of every downstream consumer: span accessors for metrics and
// benches, a VoteResult materializer for explain/tests, and a contiguous
// block a future SIMD or persistence pass can work on directly.
//
// TraceView is the non-owning read surface over that layout; BatchTrace
// owns the storage, implements VoteSink (core/vote_sink.h) so an engine
// writes rounds straight into it, and is reusable: Reset keeps capacity,
// so a warmed-up trace adds no allocations on subsequent batches.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/types.h"
#include "core/vote_sink.h"
#include "util/status.h"

namespace avoc::core {

/// Sparse error record: the Status of one kError round.
struct RoundError {
  uint32_t round = 0;
  Status status;
};

/// Allocator whose value-initialization is a no-op: vector::resize leaves
/// new elements uninitialized instead of memset-ing them.  Used for the
/// per-module slab blocks, which are sized ahead of the committed rounds
/// and fully written row by row before any read (view() clamps to the
/// committed prefix) — zero-filling megabytes of slab up front would be
/// pure waste on the hot path.
template <typename T>
struct UninitAllocator : std::allocator<T> {
  template <typename U>
  struct rebind {
    using other = UninitAllocator<U>;
  };
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      ::new (static_cast<void*>(p)) U;  // default-init: no zero fill
    } else {
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
  }
};

/// One slab block of a BatchTrace (doubles or mask bytes).
template <typename T>
using SlabVector = std::vector<T, UninitAllocator<T>>;

/// The raw columns of a trace; all round-indexed spans have `rounds`
/// entries, all block spans have `rounds * modules` entries (row-major:
/// round r, module m at [r * modules + m]).  `errors` is sparse and
/// ordered by round.
struct TraceColumns {
  size_t rounds = 0;
  size_t modules = 0;
  std::span<const double> values;          ///< fused value where engaged
  std::span<const uint8_t> engaged;        ///< 1 = round produced a value
  std::span<const RoundOutcome> outcomes;
  std::span<const uint8_t> used_clustering;
  std::span<const uint8_t> had_majority;
  std::span<const uint32_t> present_counts;
  std::span<const double> weights;    ///< block
  std::span<const double> agreement;  ///< block
  std::span<const double> history;    ///< block
  std::span<const uint8_t> excluded;    ///< block
  std::span<const uint8_t> eliminated;  ///< block
  std::span<const RoundError> errors;
};

/// Non-owning read surface over one trace (or one group's slice of a
/// multi-group block).  Copyable, cheap, and valid as long as the
/// underlying storage is.
class TraceView {
 public:
  TraceView() = default;
  explicit TraceView(TraceColumns columns) : c_(columns) {}

  size_t round_count() const { return c_.rounds; }
  size_t module_count() const { return c_.modules; }
  bool empty() const { return c_.rounds == 0; }

  const TraceColumns& columns() const { return c_; }

  // --- per-round scalars ----------------------------------------------------
  std::optional<double> output(size_t r) const {
    return c_.engaged[r] != 0 ? std::optional<double>(c_.values[r])
                              : std::nullopt;
  }
  RoundOutcome outcome(size_t r) const { return c_.outcomes[r]; }
  bool used_clustering(size_t r) const { return c_.used_clustering[r] != 0; }
  bool had_majority(size_t r) const { return c_.had_majority[r] != 0; }
  size_t present_count(size_t r) const { return c_.present_counts[r]; }
  /// Status of round r; Ok unless the outcome was kError.
  Status status(size_t r) const;

  // --- per-round module columns ---------------------------------------------
  std::span<const double> weights(size_t r) const { return Row(c_.weights, r); }
  std::span<const double> agreement(size_t r) const {
    return Row(c_.agreement, r);
  }
  std::span<const double> history(size_t r) const { return Row(c_.history, r); }
  std::span<const uint8_t> excluded(size_t r) const {
    return Row(c_.excluded, r);
  }
  std::span<const uint8_t> eliminated(size_t r) const {
    return Row(c_.eliminated, r);
  }

  // --- derived series -------------------------------------------------------
  /// Per-round fused values; nullopt for suppressed/errored rounds.
  std::vector<std::optional<double>> Outputs() const;

  /// Outputs with gaps filled by the previous value (leading gaps seeded
  /// with the first real output).  Empty when no round produced a value.
  std::vector<double> ContinuousOutputs() const;

  /// Number of rounds whose outcome was kVoted.
  size_t voted_rounds() const;
  /// Rounds where the clustering step gated the vote.
  size_t clustered_rounds() const;

  /// Legacy materializer: round r as a full VoteResult (for explain,
  /// goldens, and APIs that still speak per-round results).
  VoteResult MaterializeRound(size_t r) const;

 private:
  template <typename T>
  std::span<const T> Row(std::span<const T> block, size_t r) const {
    return block.subspan(r * c_.modules, c_.modules);
  }

  TraceColumns c_;
};

/// Owning, growable SoA trace; the canonical VoteSink.  One BatchTrace is
/// one engine's result series; reuse it across batches via Reset to keep
/// the warmed-up capacity.
class BatchTrace final : public VoteSink {
 public:
  BatchTrace() = default;
  explicit BatchTrace(size_t modules) { Reset(modules); }

  /// Drops all rounds and fixes the module arity; keeps capacity.
  void Reset(size_t modules);

  /// Pre-grows every column for `rounds` rounds.
  void ReserveRounds(size_t rounds);

  // --- VoteSink -------------------------------------------------------------
  RoundColumns BeginRound(size_t module_count) override;
  void EndRound(const RoundScalars& scalars) override;

  /// Copies a legacy VoteResult in as one round (message-driven sinks).
  /// Adopts the result's arity when the trace is still empty/unsized.
  void Append(const VoteResult& result);

  /// Copies row `r` of another trace in as one round — the bulk-append
  /// path of batch-driven sinks, with no intermediate VoteResult (and
  /// thus no per-round heap vectors).  Adopts the source's arity when the
  /// trace is still empty/unsized.
  void AppendFrom(const TraceView& src, size_t r);

  // --- read surface ---------------------------------------------------------
  size_t round_count() const { return rounds_; }
  size_t module_count() const { return modules_; }
  bool empty() const { return rounds_ == 0; }

  TraceView view() const;

  std::optional<double> output(size_t r) const { return view().output(r); }
  RoundOutcome outcome(size_t r) const { return outcomes_[r]; }
  bool used_clustering(size_t r) const { return used_clustering_[r] != 0; }
  bool had_majority(size_t r) const { return had_majority_[r] != 0; }
  size_t present_count(size_t r) const { return present_counts_[r]; }
  Status status(size_t r) const { return view().status(r); }

  std::span<const double> weights(size_t r) const { return view().weights(r); }
  std::span<const double> agreement(size_t r) const {
    return view().agreement(r);
  }
  std::span<const double> history(size_t r) const { return view().history(r); }
  std::span<const uint8_t> excluded(size_t r) const {
    return view().excluded(r);
  }
  std::span<const uint8_t> eliminated(size_t r) const {
    return view().eliminated(r);
  }

  /// Raw value/engaged columns — the inputs of the columnar convergence
  /// overloads in stats/convergence.h.
  std::span<const double> values() const { return values_; }
  std::span<const uint8_t> engaged() const { return engaged_; }

  std::vector<std::optional<double>> Outputs() const {
    return view().Outputs();
  }
  std::vector<double> ContinuousOutputs() const {
    return view().ContinuousOutputs();
  }
  size_t voted_rounds() const { return view().voted_rounds(); }
  size_t clustered_rounds() const { return view().clustered_rounds(); }
  VoteResult MaterializeRound(size_t r) const {
    return view().MaterializeRound(r);
  }

 private:
  /// Grows the five per-module blocks to at least `elements` doubles /
  /// bytes each, in geometric slabs.  Blocks are sized ahead of the
  /// committed rounds so BeginRound never resizes on the hot path;
  /// view() clamps reads back to the committed prefix.
  void GrowBlocks(size_t elements);

  size_t modules_ = 0;
  size_t rounds_ = 0;       ///< committed rounds
  bool open_round_ = false;  ///< BeginRound issued, EndRound pending

  std::vector<double> values_;
  std::vector<uint8_t> engaged_;
  std::vector<RoundOutcome> outcomes_;
  std::vector<uint8_t> used_clustering_;
  std::vector<uint8_t> had_majority_;
  std::vector<uint32_t> present_counts_;
  SlabVector<double> weights_;
  SlabVector<double> agreement_;
  SlabVector<double> history_;
  SlabVector<uint8_t> excluded_;
  SlabVector<uint8_t> eliminated_;
  std::vector<RoundError> errors_;
};

}  // namespace avoc::core
