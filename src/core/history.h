// Historical reliability records (§4).
//
// Every module carries a record h ∈ [0,1] summarising how well its past
// readings agreed with the voted outputs.  Records start at 1 ("all
// records are 1, indicating a new set", §5) and are updated after every
// round, *including* for modules whose values were excluded or eliminated
// from the vote itself — the paper is explicit that eliminated modules
// rejoin "by submitting better values, even if discarded in the voting".
//
// Two update rules cover the algorithm family:
//  * kCumulativeRatio — the record is the running mean agreement with the
//    voted output (Laplace-smoothed so it starts at 1).  A chronic
//    disagreer decays like 1/t and never quite reaches 0; this is why the
//    paper's Standard algorithm "even after 10000 voting rounds" has not
//    fully eliminated the faulty sensor's skew (Fig. 6-c discussion).
//  * kRewardPenalty — additive reward on agreement, penalty on
//    disagreement, clamped to [0,1].  Records *can* hit 0 after a streak
//    of disagreements ("weights can drop to 0", §5); the Hybrid/AVOC
//    presets use this aggressive rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace avoc::core {

enum class HistoryRule {
  kNone,             ///< stateless voting; records pinned at 1
  kCumulativeRatio,  ///< running mean agreement (slow decay)
  kRewardPenalty,    ///< additive +reward / -penalty, clamped to [0,1]
};

struct HistoryParams {
  HistoryRule rule = HistoryRule::kCumulativeRatio;
  /// kRewardPenalty: added per unit agreement.
  double reward = 0.05;
  /// kRewardPenalty: subtracted per unit disagreement.
  double penalty = 0.3;
  /// Penalty applied to modules that submitted no reading this round
  /// (0 = missing values leave the record untouched).
  double missing_penalty = 0.0;
};

/// The per-module record store.
class HistoryLedger {
 public:
  HistoryLedger(size_t module_count, HistoryParams params);

  size_t module_count() const { return records_.size(); }
  const HistoryParams& params() const { return params_; }

  /// Current record of module `i`.
  double record(size_t i) const { return records_.at(i); }
  std::span<const double> records() const { return records_; }

  /// Rounds absorbed so far.
  size_t round_count() const { return rounds_; }

  /// Applies one round's update.  `agreement_with_output[i]` is module i's
  /// agreement score against the voted output in [0,1]; `present[i]` says
  /// whether the module submitted a reading.
  Status Update(std::span<const double> agreement_with_output,
                const std::vector<bool>& present);

  /// Flat-mask form — the per-round hot path.  `present` holds 0/1 bytes
  /// (the VoteContext mask column); the update rule is resolved once
  /// outside the module loop.  Identical results to the vector<bool>
  /// overload, bit for bit.
  Status Update(std::span<const double> agreement_with_output,
                std::span<const uint8_t> present);

  /// Mean record across modules.
  double MeanRecord() const;

  /// True when every record equals `value` within `epsilon` — the AVOC
  /// bootstrap trigger tests all-1 (new set) and all-0 (collapse).
  bool AllRecordsAre(double value, double epsilon = 1e-12) const;

  /// Resets to a fresh set (all records 1, round count 0).
  void Reset();

  /// Replaces the records wholesale (datastore restore path).  Values are
  /// clamped to [0,1]; the count must match.
  Status Restore(std::span<const double> records, size_t rounds);

  /// Full internal state, for migrating a live ledger between nodes.
  /// Restore() reseeds the cumulative-ratio accumulators from the records
  /// alone (an approximation good enough for cold restarts); a migrated
  /// voter must keep voting bit-identically, so this form carries every
  /// accumulator verbatim.
  struct State {
    std::vector<double> records;
    std::vector<double> agreement_sums;
    std::vector<uint64_t> observations;
    uint64_t rounds = 0;
  };
  State ExportState() const;
  /// Installs an exported state verbatim (no clamping).  All vectors must
  /// match the module count.
  Status RestoreState(const State& state);

 private:
  HistoryParams params_;
  std::vector<double> records_;
  /// kCumulativeRatio state: per-module summed agreement and observation
  /// count (Laplace prior of one full agreement).
  std::vector<double> agreement_sums_;
  std::vector<size_t> observations_;
  size_t rounds_ = 0;
};

}  // namespace avoc::core
