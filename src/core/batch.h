// Batch execution: drive a VotingEngine over a pre-recorded RoundTable.
//
// This is how the paper evaluates ("the evaluation was done with
// pre-recorded data for reproducibility purposes"): every algorithm sees
// the identical table of raw readings and produces one output series.
#pragma once

#include <optional>
#include <vector>

#include "core/algorithms.h"
#include "core/engine.h"
#include "data/round_table.h"
#include "util/status.h"

namespace avoc::core {

struct BatchResult {
  /// Per-round full results.
  std::vector<VoteResult> rounds;

  /// Per-round fused values; nullopt for suppressed/errored rounds.
  std::vector<std::optional<double>> outputs;

  /// Outputs with gaps filled by the previous value (first gaps dropped
  /// from the front are filled with the first real output).  Convenient
  /// for plotting and series metrics.  Empty when no round produced a
  /// value at all — a fully-suppressed series has nothing to continue.
  std::vector<double> ContinuousOutputs() const;

  /// Number of rounds whose outcome was kVoted.
  size_t voted_rounds() const;
  /// Rounds where the clustering step gated the vote.
  size_t clustered_rounds() const;
};

/// Runs `engine` over every round of `table`.  The engine keeps its state,
/// so a fresh engine gives the from-bootstrap behaviour of the figures.
Result<BatchResult> RunOverTable(VotingEngine& engine,
                                 const data::RoundTable& table);

/// Convenience: fresh preset engine over the table.
Result<BatchResult> RunAlgorithm(AlgorithmId id, const data::RoundTable& table,
                                 const PresetParams& params = {});

}  // namespace avoc::core
