// Batch execution: drive a VotingEngine over a pre-recorded RoundTable.
//
// This is how the paper evaluates ("the evaluation was done with
// pre-recorded data for reproducibility purposes"): every algorithm sees
// the identical table of raw readings and produces one output series.
//
// The result path is columnar: each round flows RoundTable::View →
// CastVote(RoundSpan, VoteSink) → BatchTrace, so the hot loop performs no
// per-round Round materialization and no VoteResult allocation.  The
// legacy one-VoteResult-per-round path survives as RunOverTableLegacy —
// the bit-parity baseline the golden tests and bench_multi_group's
// "legacy" mode compare against.
#pragma once

#include <optional>
#include <vector>

#include "core/algorithms.h"
#include "core/engine.h"
#include "core/trace.h"
#include "data/round_table.h"
#include "util/status.h"

namespace avoc::core {

/// The batch result IS the columnar trace; the old name stays usable.
using BatchResult = BatchTrace;

/// Runs `engine` over every round of `table`, appending into the
/// caller-owned sink (reusable across batches).  The engine keeps its
/// state, so a fresh engine gives the from-bootstrap behaviour of the
/// figures.
Status RunOverTable(VotingEngine& engine, const data::RoundTable& table,
                    VoteSink& sink);

/// Convenience wrapper returning a freshly-built trace.
Result<BatchTrace> RunOverTable(VotingEngine& engine,
                                const data::RoundTable& table);

/// Convenience: fresh preset engine over the table.
Result<BatchTrace> RunAlgorithm(AlgorithmId id, const data::RoundTable& table,
                                const PresetParams& params = {});

/// Pre-refactor result shape: one heap-allocated VoteResult per round.
struct LegacyBatchResult {
  std::vector<VoteResult> rounds;
  std::vector<std::optional<double>> outputs;
};

/// The pre-refactor per-round-allocation path, kept verbatim as the
/// correctness and throughput baseline of the columnar trace.
Result<LegacyBatchResult> RunOverTableLegacy(VotingEngine& engine,
                                             const data::RoundTable& table);

}  // namespace avoc::core
