#include "core/kernels/kernels.h"

#include <algorithm>
#include <cmath>

namespace avoc::core::kernels {
namespace {

// One pair score, templated so the mode/scale branches hoist out of the
// row loops entirely.  Bit-identical to core::AgreementScore: same
// operations on the same operands, with max(1.0, soft_multiple) and the
// relative floor passed in pre-resolved (loop-invariant either way).
// The selects keep NaN distances on the same path as the branchy
// original: binary scores 0, soft falls through to the (NaN) taper.
template <bool kSoft, bool kRelative>
inline double PairScore(double a, double b, double error, double soft_cap,
                        double relative_floor) {
  const double distance = std::abs(a - b);
  double margin = error;
  if constexpr (kRelative) {
    const double magnitude =
        std::max(std::max(std::abs(a), std::abs(b)), relative_floor);
    margin = error * magnitude;
  }
  if constexpr (!kSoft) {
    return distance <= margin ? 1.0 : 0.0;
  } else {
    const double outer = margin * soft_cap;
    const double taper = (outer - distance) / (outer - margin);
    return distance <= margin ? 1.0 : (distance >= outer ? 0.0 : taper);
  }
}

/// Small-round pairwise path: one fused scalar sweep.  Below this count
/// the vector loops of PairwiseImpl are epilogue-dominated (trip counts
/// shrink from n-1 to 1) while the fused loop keeps the same serial
/// accumulation chain busy with pair-score work; the adds land on the
/// same operands in the same order, so both paths are bit-identical.
inline constexpr size_t kPairwiseFusedMaxCount = 20;

template <bool kSoft, bool kRelative>
void PairwiseFusedImpl(const double* values, size_t n,
                       const AgreementParams& params, double* scores) {
  const double error = params.error;
  const double relative_floor = params.relative_floor;
  const double soft_cap = std::max(1.0, params.soft_multiple);
  std::fill(scores, scores + n, 0.0);
  for (size_t i = 0; i + 1 < n; ++i) {
    const double vi = values[i];
    double s = scores[i];
    for (size_t j = i + 1; j < n; ++j) {
      const double pair = PairScore<kSoft, kRelative>(vi, values[j], error,
                                                      soft_cap,
                                                      relative_floor);
      s += pair;
      scores[j] += pair;
    }
    scores[i] = s;
  }
  const double denom = static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) scores[i] = scores[i] / denom;
}

template <bool kSoft, bool kRelative>
void PairwiseImpl(const double* values, size_t n,
                  const AgreementParams& params, double* scores,
                  std::vector<double>& row) {
  if (n <= kPairwiseFusedMaxCount) {
    PairwiseFusedImpl<kSoft, kRelative>(values, n, params, scores);
    return;
  }
  row.resize(n);
  double* buf = row.data();
  const double error = params.error;
  const double relative_floor = params.relative_floor;
  const double soft_cap = std::max(1.0, params.soft_multiple);
  std::fill(scores, scores + n, 0.0);
  for (size_t i = 0; i + 1 < n; ++i) {
    const double vi = values[i];
    const double* tail = values + i + 1;
    double* tail_scores = scores + i + 1;
    const size_t m = n - i - 1;
    // vec-hot(agreement-pair-row): elementwise pair scores of row i
    // against every later candidate — the expensive work, no reduction.
    for (size_t t = 0; t < m; ++t) {
      buf[t] = PairScore<kSoft, kRelative>(vi, tail[t], error, soft_cap,
                                           relative_floor);
    }
    // Ordered row fold — scalar on purpose.  scores[i] already holds the
    // contributions of pairs (k, i) for k < i, added in ascending k by
    // the column loop below, so appending the own row in ascending j
    // reproduces the naive loop's exact j = 0..n-1 (skip i) order.
    double s = scores[i];
    for (size_t t = 0; t < m; ++t) s += buf[t];
    scores[i] = s;
    // vec-hot(agreement-pair-col): mirror each pair score into the later
    // row's accumulator — elementwise add, no reduction.
    for (size_t t = 0; t < m; ++t) tail_scores[t] += buf[t];
  }
  const double denom = static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) scores[i] = scores[i] / denom;
}

template <bool kSoft, bool kRelative>
void PivotImpl(const double* values, size_t n, double pivot,
               const AgreementParams& params, double* out) {
  const double error = params.error;
  const double relative_floor = params.relative_floor;
  const double soft_cap = std::max(1.0, params.soft_multiple);
  // vec-hot(agreement-pivot): elementwise agreement against one pivot
  // (the history stage's agreement-with-output column).
  for (size_t t = 0; t < n; ++t) {
    out[t] = PairScore<kSoft, kRelative>(values[t], pivot, error, soft_cap,
                                         relative_floor);
  }
}

}  // namespace

bool AllFinite(const double* values, size_t n) {
  // (v - v) == 0 holds exactly for finite values and fails for NaN and
  // ±inf (inf - inf = NaN); folds to a vectorizable integer AND.
  unsigned ok = 1;
  for (size_t i = 0; i < n; ++i) {
    ok &= static_cast<unsigned>((values[i] - values[i]) == 0.0);
  }
  return ok != 0;
}

void AgreementScoresKernel(const double* values, size_t n,
                           const AgreementParams& params, double* scores,
                           AgreementScratch& scratch) {
  if (n == 0) return;
  if (n == 1) {
    scores[0] = 1.0;
    return;
  }
  if (SortedAgreementEligible(params) && n >= kSortedAgreementMinCount &&
      AllFinite(values, n)) {
    AgreementSortedKernel(values, n, params.error, scores, scratch);
    return;
  }
  AgreementPairwiseKernel(values, n, params, scores, scratch);
}

void AgreementPairwiseKernel(const double* values, size_t n,
                             const AgreementParams& params, double* scores,
                             AgreementScratch& scratch) {
  if (n == 0) return;
  if (n == 1) {
    scores[0] = 1.0;
    return;
  }
  const bool soft = params.mode == AgreementMode::kSoftDynamic;
  const bool relative = params.scale == ThresholdScale::kRelative;
  if (soft) {
    if (relative) {
      PairwiseImpl<true, true>(values, n, params, scores, scratch.row);
    } else {
      PairwiseImpl<true, false>(values, n, params, scores, scratch.row);
    }
  } else {
    if (relative) {
      PairwiseImpl<false, true>(values, n, params, scores, scratch.row);
    } else {
      PairwiseImpl<false, false>(values, n, params, scores, scratch.row);
    }
  }
}

void AgreementSortedKernel(const double* values, size_t n, double error,
                           double* scores, AgreementScratch& scratch) {
  if (n == 0) return;
  if (n == 1) {
    scores[0] = 1.0;
    return;
  }
  scratch.order.resize(n);
  scratch.sorted.resize(n);
  uint32_t* order = scratch.order.data();
  double* sorted = scratch.sorted.data();
  if (n <= 32) {
    // Insertion-sort values and indices together: group-sized rounds hit
    // this every round, and the generic std::sort setup costs more than
    // the handful of shifted elements.  Any value-sorted order gives the
    // same scores (equal values share identical agreement windows), so
    // sort stability is immaterial.
    sorted[0] = values[0];
    order[0] = 0;
    for (size_t i = 1; i < n; ++i) {
      const double x = values[i];
      size_t j = i;
      for (; j > 0 && sorted[j - 1] > x; --j) {
        sorted[j] = sorted[j - 1];
        order[j] = order[j - 1];
      }
      sorted[j] = x;
      order[j] = static_cast<uint32_t>(i);
    }
  } else {
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    std::sort(order, order + n, [values](uint32_t a, uint32_t b) {
      return values[a] < values[b];
    });
    for (size_t k = 0; k < n; ++k) sorted[k] = values[order[k]];
  }
  const double denom = static_cast<double>(n - 1);
  // Two-pointer agreement window: for ascending pivots both edges only
  // ever move right, so the whole sweep is O(N) after the sort.  The
  // window difference (a prefix-count subtraction) is the candidate's
  // agreeing-pair count — an exact small integer, so count/denom is
  // bit-identical to the pairwise path's sum-of-ones/denom.  The edge
  // comparisons subtract larger-minus-smaller, the same rounded value
  // the pairwise |a-b| sees (IEEE round(-x) == -round(x)).
  size_t lo = 0;
  size_t hi = 0;
  for (size_t k = 0; k < n; ++k) {
    const double vk = sorted[k];
    while (vk - sorted[lo] > error) ++lo;
    if (hi < k + 1) hi = k + 1;
    while (hi < n && sorted[hi] - vk <= error) ++hi;
    scores[order[k]] = static_cast<double>(hi - lo - 1) / denom;
  }
}

void AgreementWithPivotKernel(const double* values, size_t n, double pivot,
                              const AgreementParams& params, double* out) {
  const bool soft = params.mode == AgreementMode::kSoftDynamic;
  const bool relative = params.scale == ThresholdScale::kRelative;
  if (soft) {
    if (relative) {
      PivotImpl<true, true>(values, n, pivot, params, out);
    } else {
      PivotImpl<true, false>(values, n, pivot, params, out);
    }
  } else {
    if (relative) {
      PivotImpl<false, true>(values, n, pivot, params, out);
    } else {
      PivotImpl<false, false>(values, n, pivot, params, out);
    }
  }
}

size_t ExclusionMaskKernel(const double* values, size_t n, double center,
                           double limit, ExclusionScratch& scratch,
                           uint8_t* excluded) {
  scratch.wide.resize(n);
  double* wide = scratch.wide.data();
  // vec-hot(exclusion-mask): elementwise |v - center| > limit compare.
  // Stored as 1.0/0.0 double lanes (the values' own vector width) — a
  // direct byte store would leave the FP compare unvectorizable.
  for (size_t i = 0; i < n; ++i) {
    wide[i] = std::abs(values[i] - center) > limit ? 1.0 : 0.0;
  }
  size_t dropped = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t bit = static_cast<uint8_t>(wide[i]);
    excluded[i] = bit;
    dropped += bit;
  }
  return n - dropped;
}

bool WeightedMeanKernel(const double* values, const double* weights, size_t n,
                        WeightedMeanScratch& scratch, double* mean) {
  scratch.products.resize(n);
  double* products = scratch.products.data();
  // vec-hot(weighted-products): elementwise w·x terms; the historical
  // loop computed the same products inline, so folding the buffer below
  // in index order reproduces its sums bit for bit.
  for (size_t i = 0; i < n; ++i) products[i] = weights[i] * values[i];
  double weight_sum = 0.0;
  double value_sum = 0.0;
  // Ordered fold — scalar on purpose (reassociation would change bits).
  for (size_t i = 0; i < n; ++i) {
    if (weights[i] <= 0.0) continue;
    weight_sum += weights[i];
    value_sum += products[i];
  }
  if (weight_sum <= 0.0) return false;
  *mean = value_sum / weight_sum;
  return true;
}

}  // namespace avoc::core::kernels
