// The voting kernel layer: branch-light flat-array routines behind the
// hot stages (agreement scoring, outlier exclusion, weighted average).
//
// Design rules, in priority order:
//
//  1. **Bit parity.**  Every kernel reproduces the scalar stage helpers
//     bit for bit — same operations on the same operands in the same
//     accumulation order.  The symmetric pairwise kernel relies on
//     AgreementScore(a,b) == AgreementScore(b,a) being an identity of the
//     formula (|a-b| and the margin are symmetric), and on IEEE-754
//     round(-x) == -round(x) for the subtraction; the sorted kernel
//     relies on binary agreement sums being exact small integers.
//  2. **Autovectorization.**  The expensive elementwise work (pair
//     scores, pivot scores, mask compares) runs over contiguous arrays
//     with no per-element calls, allocations or stores the compiler
//     cannot disambiguate — the loops tagged `vec-hot` below must show up
//     in -fopt-info-vec (scripts/check_vectorization.sh gates this in
//     CI).  Ordered float *reductions* are deliberately left scalar:
//     vectorizing them would reassociate the sums and break rule 1, so
//     kernels split "compute terms into a row buffer (vector)" from
//     "fold the buffer in order (scalar)".
//  3. **No allocations.**  Callers own the scratch (reused across
//     rounds); kernels only resize within reserved capacity.
//
// Dispatch: AgreementScoresKernel picks the O(N log N) sorted-window
// path when it is *exactly* equal to the pairwise result — binary mode,
// absolute threshold scale, all-finite values — and otherwise runs the
// symmetric pairwise kernel (half the score evaluations of the naive
// row-by-row loop).  See DESIGN.md "The kernel layer".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/agreement.h"

namespace avoc::core::kernels {

/// Reusable flat scratch of the agreement kernels; one per VoteContext
/// (or per caller thread), capacity kept across rounds.
struct AgreementScratch {
  /// Pair-score row buffer of the symmetric pairwise kernel; also the
  /// dense staging buffer of scattered pivot scores.
  std::vector<double> row;
  /// Ascending value copy (sorted kernel).
  std::vector<double> sorted;
  /// Sort permutation: order[k] = original index of sorted[k].
  std::vector<uint32_t> order;
};

/// True when every value is finite (no NaN, no ±inf) — the precondition
/// of the sorted-window path (NaN breaks the sort's ordering, and
/// inf-inf distances are NaN in the pairwise path).
bool AllFinite(const double* values, size_t n);

/// Whether `params` selects a mode where the sorted-window kernel is
/// bit-exactly equal to the pairwise kernel: binary agreement over an
/// absolute (value-independent) margin.  The per-call value check
/// (AllFinite) still applies.
inline bool SortedAgreementEligible(const AgreementParams& params) {
  return params.mode == AgreementMode::kBinary &&
         params.scale == ThresholdScale::kAbsolute && params.error >= 0.0;
}

/// Values below this candidate count always take the pairwise kernel:
/// the sort costs more than the handful of pairs it saves.  Either path
/// is exact, so the cutover is a pure performance knob.
inline constexpr size_t kSortedAgreementMinCount = 8;

/// Mean pairwise agreement of each candidate with every other candidate,
/// dispatching sorted-window vs symmetric-pairwise per the rules above.
/// `scores` must hold n doubles; n <= 1 writes all-1 (a single candidate
/// trivially agrees with itself).  Bit-identical to the historical
/// row-by-row AgreementScoresInto loop.
void AgreementScoresKernel(const double* values, size_t n,
                           const AgreementParams& params, double* scores,
                           AgreementScratch& scratch);

/// The symmetric pairwise fallback: evaluates each unordered pair once
/// (the naive loop evaluated AgreementScore(i,j) and AgreementScore(j,i)
/// separately) and accumulates both rows in the naive loop's exact
/// addition order.  Exact for every mode/scale.
void AgreementPairwiseKernel(const double* values, size_t n,
                             const AgreementParams& params, double* scores,
                             AgreementScratch& scratch);

/// The large-N path: sort an index once, then a two-pointer agreement
/// window per candidate — O(N log N) total.  Binary absolute mode only
/// (callers gate on SortedAgreementEligible + AllFinite); the agreeing
/// count is the window width, an exact integer, so count/(n-1) is
/// bit-identical to the pairwise sum/(n-1).
void AgreementSortedKernel(const double* values, size_t n, double error,
                           double* scores, AgreementScratch& scratch);

/// Elementwise agreement of each value against one pivot (the history
/// stage's agreement-with-voted-output column).  `out` must hold n
/// doubles; bit-identical to calling AgreementScore(values[t], pivot)
/// per element.
void AgreementWithPivotKernel(const double* values, size_t n, double pivot,
                              const AgreementParams& params, double* out);

/// Exclusion kernel scratch: the lane-width compare buffer.  The compare
/// stores 1.0/0.0 into double lanes (same vector width as the values, so
/// the FP-hot loop vectorizes — a direct byte store would not); the
/// cheap narrowing pass packs it into the byte mask.
struct ExclusionScratch {
  std::vector<double> wide;
};

/// Flat-mask exclusion compare: excluded[i] = |values[i] - center| >
/// limit, where limit is the caller's threshold * spread product.
/// Returns the kept (non-excluded) count; the caller applies the
/// never-exclude-everyone rule.  Bit-identical to the historical
/// vector<bool> loop (the product was loop-invariant there too).
size_t ExclusionMaskKernel(const double* values, size_t n, double center,
                           double limit, ExclusionScratch& scratch,
                           uint8_t* excluded);

/// Weighted-average kernel scratch: the elementwise w*x product buffer.
struct WeightedMeanScratch {
  std::vector<double> products;
};

/// Weighted mean Σ w·x / Σ w over candidates with weight > 0.  The
/// products are computed elementwise into scratch (vectorizable); the
/// two sums fold in index order (scalar), matching the historical
/// skip-nonpositive loop bit for bit.  Returns false when every weight
/// is <= 0 (the caller raises the error).
bool WeightedMeanKernel(const double* values, const double* weights, size_t n,
                        WeightedMeanScratch& scratch, double* mean);

}  // namespace avoc::core::kernels
