// VoteSink: the zero-allocation result seam of CastVote.
//
// The legacy CastVote materializes one VoteResult per round — six
// heap-backed vectors every time, which makes large batch runs
// allocator-bound rather than compute-bound.  VoteSink inverts the
// ownership: the *caller* owns flat, reusable column storage and the
// engine writes each round's outputs straight into it.  A round is two
// virtual calls:
//
//   RoundColumns cols = sink.BeginRound(module_count);  // where to write
//   ... engine fills the per-module columns in place ...
//   sink.EndRound(scalars);                             // commit scalars
//
// BatchTrace (core/trace.h) is the canonical SoA sink; VoteResultSink
// adapts the seam back to a single legacy VoteResult for the
// compatibility overloads and for explain/tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace avoc::core {

/// Writable per-module columns of one round.  Every span has exactly the
/// module count handed to BeginRound and stays valid (and readable) until
/// the next BeginRound on the same sink.
struct RoundColumns {
  std::span<double> weights;      ///< effective voting weight (0 when out)
  std::span<double> agreement;    ///< pairwise agreement score in [0,1]
  std::span<double> history;      ///< history record after the update
  std::span<uint8_t> excluded;    ///< 1 = pruned by value exclusion
  std::span<uint8_t> eliminated;  ///< 1 = eliminated by history (ME)
};

/// Scalar fields of one round, committed by EndRound.
struct RoundScalars {
  double value = 0.0;  ///< fused output; meaningful iff has_value
  bool has_value = false;
  RoundOutcome outcome = RoundOutcome::kVoted;
  bool used_clustering = false;
  bool had_majority = true;
  uint32_t present_count = 0;
  /// Set-bit totals of the excluded/eliminated columns, counted while the
  /// engine fills them — consumers (the metrics observer) read the rates
  /// without rescanning the masks.  Zero on fault rounds.
  uint32_t excluded_count = 0;
  uint32_t eliminated_count = 0;
  /// Non-null only when outcome == kError; borrowed for the call.
  const Status* status = nullptr;
};

/// Caller-owned columnar receiver for CastVote outputs.
class VoteSink {
 public:
  virtual ~VoteSink() = default;

  /// Opens the next round and returns its writable columns.
  virtual RoundColumns BeginRound(size_t module_count) = 0;

  /// Commits the round after the columns were filled.
  virtual void EndRound(const RoundScalars& scalars) = 0;
};

/// Builds a legacy VoteResult from a filled round (columns are read back,
/// mask bytes become vector<bool>).  The substrate of every
/// trace-to-VoteResult materializer.
VoteResult MaterializeVoteResult(const RoundColumns& columns,
                                 const RoundScalars& scalars);

/// Adapter sink producing one legacy VoteResult per round — the
/// compatibility bridge for the allocating CastVote overloads.
class VoteResultSink final : public VoteSink {
 public:
  RoundColumns BeginRound(size_t module_count) override;
  void EndRound(const RoundScalars& scalars) override;

  const VoteResult& result() const { return result_; }
  VoteResult TakeResult() { return std::move(result_); }

 private:
  VoteResult result_;
  std::vector<uint8_t> excluded_;
  std::vector<uint8_t> eliminated_;
};

}  // namespace avoc::core
