#include "core/batch.h"

namespace avoc::core {

Status RunOverTable(VotingEngine& engine, const data::RoundTable& table,
                    VoteSink& sink) {
  if (table.module_count() != engine.module_count()) {
    return InvalidArgumentError("table/engine module count mismatch");
  }
  // The whole table goes through the engine's many-rounds entry point as
  // one contiguous block — per-round dispatch overhead is paid once.
  return engine.CastVoteBlock(
      RoundBlock{table.value_block(), table.present_block(),
                 table.module_count()},
      sink);
}

Result<BatchTrace> RunOverTable(VotingEngine& engine,
                                const data::RoundTable& table) {
  BatchTrace trace(engine.module_count());
  trace.ReserveRounds(table.round_count());
  AVOC_RETURN_IF_ERROR(RunOverTable(engine, table, trace));
  return trace;
}

Result<BatchTrace> RunAlgorithm(AlgorithmId id, const data::RoundTable& table,
                                const PresetParams& params) {
  AVOC_ASSIGN_OR_RETURN(VotingEngine engine,
                        MakeEngine(id, table.module_count(), params));
  return RunOverTable(engine, table);
}

Result<LegacyBatchResult> RunOverTableLegacy(VotingEngine& engine,
                                             const data::RoundTable& table) {
  if (table.module_count() != engine.module_count()) {
    return InvalidArgumentError("table/engine module count mismatch");
  }
  LegacyBatchResult batch;
  batch.rounds.reserve(table.round_count());
  batch.outputs.reserve(table.round_count());
  for (size_t r = 0; r < table.round_count(); ++r) {
    const Round round = table.MaterializeRound(r);
    AVOC_ASSIGN_OR_RETURN(VoteResult result, engine.CastVote(round));
    batch.outputs.push_back(result.value);
    batch.rounds.push_back(std::move(result));
  }
  return batch;
}

}  // namespace avoc::core
