#include "core/batch.h"

namespace avoc::core {

std::vector<double> BatchResult::ContinuousOutputs() const {
  std::vector<double> out;
  out.reserve(outputs.size());
  // First engaged value seeds any leading gaps.
  double current = 0.0;
  bool seeded = false;
  for (const auto& value : outputs) {
    if (value.has_value()) {
      current = *value;
      seeded = true;
      break;
    }
  }
  // No round ever produced a value: there is nothing to continue, and a
  // series of fabricated zeros would skew every downstream metric.
  if (!seeded) return {};
  for (const auto& value : outputs) {
    if (value.has_value()) current = *value;
    out.push_back(current);
  }
  return out;
}

size_t BatchResult::voted_rounds() const {
  size_t count = 0;
  for (const auto& r : rounds) {
    if (r.outcome == RoundOutcome::kVoted) ++count;
  }
  return count;
}

size_t BatchResult::clustered_rounds() const {
  size_t count = 0;
  for (const auto& r : rounds) {
    if (r.used_clustering) ++count;
  }
  return count;
}

Result<BatchResult> RunOverTable(VotingEngine& engine,
                                 const data::RoundTable& table) {
  if (table.module_count() != engine.module_count()) {
    return InvalidArgumentError("table/engine module count mismatch");
  }
  BatchResult batch;
  batch.rounds.reserve(table.round_count());
  batch.outputs.reserve(table.round_count());
  for (size_t r = 0; r < table.round_count(); ++r) {
    const auto row = table.Round(r);
    Round round(row.begin(), row.end());
    AVOC_ASSIGN_OR_RETURN(VoteResult result, engine.CastVote(round));
    batch.outputs.push_back(result.value);
    batch.rounds.push_back(std::move(result));
  }
  return batch;
}

Result<BatchResult> RunAlgorithm(AlgorithmId id, const data::RoundTable& table,
                                 const PresetParams& params) {
  AVOC_ASSIGN_OR_RETURN(VotingEngine engine,
                        MakeEngine(id, table.module_count(), params));
  return RunOverTable(engine, table);
}

}  // namespace avoc::core
