// Multi-dimensional voting (§5, "Generalisation").
//
// For vector-valued sensors (position fixes, RGB colour, IMU axes) the
// paper prescribes: "the voting approach can be applied for each dimension
// separately, leaving other data fusion techniques to process the
// multi-dimensional results.  In AVOC, we follow the approach of voting on
// each dimension separately, without incorporating the clustering itself."
//
// MultiDimEngine wraps one scalar VotingEngine per dimension.  Clustering
// is disabled in the per-dimension engines by default, per the quote; the
// paper's suggested alternative — an unsupervised multi-dimensional
// clusterer (mean-shift) gating the bootstrap across *all* dimensions at
// once — is available as VectorBootstrap::kMeanShift.
#pragma once

#include <optional>
#include <vector>

#include "core/engine.h"
#include "util/status.h"

namespace avoc::core {

/// One module's vector reading; nullopt = module missing entirely.
using VectorReading = std::optional<std::vector<double>>;

/// How the first-round outlier elimination generalises to vectors.
enum class VectorBootstrap {
  /// §5 default: no clustering; each dimension votes independently.
  kNone,
  /// Experimental: mean-shift over the module vectors gates the first
  /// round (and all-0/all-1 history fallbacks) for every dimension at
  /// once, zero-weighting modules outside the densest mode.
  kMeanShift,
};

struct MultiDimConfig {
  /// Per-dimension scalar engine configuration.  `clustering` inside it is
  /// overridden to kOff (the scalar bootstrap does not apply; see above).
  EngineConfig scalar;
  VectorBootstrap bootstrap = VectorBootstrap::kNone;
  /// Mean-shift bandwidth as a fraction of the mean vector magnitude
  /// (self-scaling, mirroring the relative agreement threshold).
  double bandwidth_fraction = 0.05;
};

struct MultiDimVoteResult {
  /// Fused vector; engaged when every dimension produced a value.
  std::optional<std::vector<double>> value;
  /// Worst outcome across dimensions (kVoted < kRevertedLast < kNoOutput
  /// < kError).
  RoundOutcome outcome = RoundOutcome::kVoted;
  /// Per-dimension scalar results.
  std::vector<VoteResult> dimensions;
  /// True when the vector bootstrap gated this round.
  bool used_vector_clustering = false;
  /// Modules zero-weighted by the vector bootstrap this round.
  std::vector<bool> vector_outliers;
};

class MultiDimEngine {
 public:
  static Result<MultiDimEngine> Create(size_t module_count,
                                       size_t dimensions,
                                       const MultiDimConfig& config);

  size_t module_count() const { return module_count_; }
  size_t dimensions() const { return engines_.size(); }

  /// One round: a vector (or nothing) per module.  Present vectors must
  /// have exactly `dimensions()` components.
  Result<MultiDimVoteResult> CastVote(const std::vector<VectorReading>& round);

  /// Per-dimension history access (dimension d, module m).
  const HistoryLedger& history(size_t dimension) const {
    return engines_.at(dimension).history();
  }

  void Reset();

 private:
  MultiDimEngine(size_t module_count, std::vector<VotingEngine> engines,
                 const MultiDimConfig& config);

  /// True when the vector bootstrap should gate this round.
  bool ShouldBootstrap() const;

  size_t module_count_;
  std::vector<VotingEngine> engines_;
  MultiDimConfig config_;
};

}  // namespace avoc::core
