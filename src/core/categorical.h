// Categorical voting (§6).
//
// VDX extends VDL with voting on non-numeric values — "character strings
// and JSON blobs".  The paper restricts the feature set:
//   * no value-based exclusion (no mean / standard deviation),
//   * history rules 'standard' and 'module elimination' only (the hybrid's
//     fine-grained agreement does not apply),
//   * no clustering bootstrap,
//   * collation is the weighted majority (plurality) vote only.
// The stated escape hatch — "implementers may re-introduce some of these
// features by supplying a custom distance metric" — is the `distance`
// hook: when set, agreement becomes graded (1 - distance/ε taper) and the
// soft-dynamic rules apply.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/history.h"
#include "core/types.h"
#include "util/status.h"

namespace avoc::core {

/// Distance between two labels, normalised to [0,1] (0 = identical).
using CategoricalDistance =
    std::function<double(const std::string&, const std::string&)>;

/// Normalised Levenshtein distance — a ready-made custom metric.
double LevenshteinDistance(const std::string& a, const std::string& b);

struct CategoricalConfig {
  HistoryParams history;
  /// Quorum as a fraction of registered modules.
  double quorum_fraction = 0.5;
  size_t quorum_min_count = 1;
  /// Module elimination by below-average history record.
  bool module_elimination = false;
  /// Rejoin slack below the mean record (see EngineConfig).
  double elimination_margin = 0.05;
  /// Optional custom metric; exact string equality when unset.
  CategoricalDistance distance;
  /// With a custom metric: two labels agree when distance <= error.
  double error = 0.0;
  NoQuorumPolicy on_no_quorum = NoQuorumPolicy::kRevertLast;
  /// Categorical conflicts are the paper's second UC-2 fault scenario;
  /// plurality winners that are overall minorities trip this policy.
  NoMajorityPolicy on_no_majority = NoMajorityPolicy::kAccept;

  Status Validate() const;
};

struct CategoricalVoteResult {
  std::optional<std::string> value;
  RoundOutcome outcome = RoundOutcome::kVoted;
  Status status;
  /// Effective plurality weight each module contributed.
  std::vector<double> weights;
  /// History records after the update.
  std::vector<double> history;
  std::vector<bool> eliminated;
  size_t present_count = 0;
  /// Winner's supporters were an absolute majority of present candidates.
  bool had_majority = true;
};

class CategoricalEngine {
 public:
  using Label = std::optional<std::string>;

  static Result<CategoricalEngine> Create(size_t module_count,
                                          CategoricalConfig config);

  size_t module_count() const { return module_count_; }

  Result<CategoricalVoteResult> CastVote(const std::vector<Label>& round);

  const std::optional<std::string>& last_output() const { return last_output_; }
  const HistoryLedger& history() const { return ledger_; }
  void Reset();

 private:
  CategoricalEngine(size_t module_count, CategoricalConfig config);

  /// Agreement of two labels in [0,1].
  double Agreement(const std::string& a, const std::string& b) const;

  CategoricalVoteResult MakeFaultResult(RoundOutcome fallback, Status status,
                                        size_t present_count) const;

  size_t module_count_;
  CategoricalConfig config_;
  HistoryLedger ledger_;
  std::optional<std::string> last_output_;
};

}  // namespace avoc::core
