#include "core/explain.h"

#include "util/strings.h"

namespace avoc::core {

std::string SummarizeResult(const VoteResult& result) {
  std::string out(RoundOutcomeName(result.outcome));
  if (result.value.has_value()) {
    out += StrFormat(" %.4g", *result.value);
  }
  out += "  w=[";
  for (size_t m = 0; m < result.weights.size(); ++m) {
    if (m > 0) out += " ";
    out += StrFormat("%.2f", result.weights[m]);
  }
  out += "]";
  if (result.used_clustering) out += " (clustered)";
  if (!result.had_majority) out += " (no majority)";
  if (!result.status.ok()) out += " [" + result.status.ToString() + "]";
  return out;
}

std::string ExplainResult(const VoteResult& result, const Round& round,
                          const std::vector<std::string>& names) {
  std::string out;
  out += StrFormat("%-8s %12s %7s %7s %7s  %s\n", "module", "reading",
                   "weight", "agree", "record", "flags");
  for (size_t m = 0; m < result.weights.size(); ++m) {
    const std::string name =
        m < names.size() ? names[m] : StrFormat("m%zu", m);
    std::string reading = "-";
    if (m < round.size() && round[m].has_value()) {
      reading = StrFormat("%.6g", *round[m]);
    }
    std::string flags;
    if (m >= round.size() || !round[m].has_value()) flags += " missing";
    if (m < result.excluded.size() && result.excluded[m]) flags += " excluded";
    if (m < result.eliminated.size() && result.eliminated[m]) {
      flags += " eliminated";
    }
    if (result.used_clustering && m < round.size() && round[m].has_value() &&
        m < result.weights.size() && result.weights[m] == 0.0 &&
        !(m < result.excluded.size() && result.excluded[m]) &&
        !(m < result.eliminated.size() && result.eliminated[m])) {
      flags += " out-of-cluster";
    }
    out += StrFormat("%-8s %12s %7.2f %7.2f %7.2f %s\n", name.c_str(),
                     reading.c_str(), result.weights[m],
                     m < result.agreement.size() ? result.agreement[m] : 0.0,
                     m < result.history.size() ? result.history[m] : 0.0,
                     flags.empty() ? " -" : flags.c_str());
  }
  out += "-> " + SummarizeResult(result) + "\n";
  return out;
}

std::string FormatStageTrace(std::span<const StageTraceEntry> entries) {
  std::string out;
  out += StrFormat("%-12s %10s %10s  %s\n", "stage", "candidates", "w-sum",
                   "flags");
  for (const StageTraceEntry& entry : entries) {
    std::string flags;
    if (entry.used_clustering) flags += " clustered";
    if (entry.faulted) flags += " faulted";
    out += StrFormat("%-12s %10zu %10.3f %s\n", entry.stage.c_str(),
                     entry.candidates, entry.weight_sum,
                     flags.empty() ? " -" : flags.c_str());
  }
  return out;
}

}  // namespace avoc::core
