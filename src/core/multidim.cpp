#include "core/multidim.h"

#include <algorithm>
#include <cmath>

#include "cluster/meanshift.h"
#include "util/strings.h"

namespace avoc::core {
namespace {

int OutcomeSeverity(RoundOutcome outcome) {
  switch (outcome) {
    case RoundOutcome::kVoted: return 0;
    case RoundOutcome::kRevertedLast: return 1;
    case RoundOutcome::kNoOutput: return 2;
    case RoundOutcome::kError: return 3;
  }
  return 3;
}

}  // namespace

MultiDimEngine::MultiDimEngine(size_t module_count,
                               std::vector<VotingEngine> engines,
                               const MultiDimConfig& config)
    : module_count_(module_count),
      engines_(std::move(engines)),
      config_(config) {}

Result<MultiDimEngine> MultiDimEngine::Create(size_t module_count,
                                              size_t dimensions,
                                              const MultiDimConfig& config) {
  if (dimensions == 0) {
    return InvalidArgumentError("need at least one dimension");
  }
  if (config.bandwidth_fraction <= 0.0) {
    return InvalidArgumentError("bandwidth fraction must be > 0");
  }
  EngineConfig scalar = config.scalar;
  // §5: per-dimension voting "without incorporating the clustering itself".
  scalar.clustering = ClusteringMode::kOff;
  std::vector<VotingEngine> engines;
  engines.reserve(dimensions);
  for (size_t d = 0; d < dimensions; ++d) {
    AVOC_ASSIGN_OR_RETURN(VotingEngine engine,
                          VotingEngine::Create(module_count, scalar));
    engines.push_back(std::move(engine));
  }
  return MultiDimEngine(module_count, std::move(engines), config);
}

bool MultiDimEngine::ShouldBootstrap() const {
  if (config_.bootstrap != VectorBootstrap::kMeanShift) return false;
  // Fresh set (first round) or collapse of any dimension's records.
  if (engines_.front().round_index() == 0) return true;
  for (const VotingEngine& engine : engines_) {
    if (engine.history().AllRecordsAre(0.0)) return true;
  }
  return false;
}

Result<MultiDimVoteResult> MultiDimEngine::CastVote(
    const std::vector<VectorReading>& round) {
  if (round.size() != module_count_) {
    return InvalidArgumentError(
        StrFormat("round has %zu modules, engine has %zu", round.size(),
                  module_count_));
  }
  const size_t dims = engines_.size();
  for (const VectorReading& reading : round) {
    if (reading.has_value() && reading->size() != dims) {
      return InvalidArgumentError(
          StrFormat("vector reading has %zu dimensions, engine has %zu",
                    reading->size(), dims));
    }
  }

  MultiDimVoteResult result;
  result.vector_outliers.assign(module_count_, false);

  // --- Vector bootstrap: one clustering over whole module vectors -------
  if (ShouldBootstrap()) {
    std::vector<size_t> present_index;
    std::vector<cluster::Point> points;
    double magnitude_sum = 0.0;
    for (size_t m = 0; m < module_count_; ++m) {
      if (!round[m].has_value()) continue;
      present_index.push_back(m);
      points.push_back(*round[m]);
      double norm2 = 0.0;
      for (const double x : *round[m]) norm2 += x * x;
      magnitude_sum += std::sqrt(norm2);
    }
    if (points.size() >= 3) {
      cluster::MeanShiftOptions options;
      options.bandwidth = std::max(
          1e-9, config_.bandwidth_fraction * magnitude_sum /
                    static_cast<double>(points.size()));
      auto shifted = cluster::MeanShift(points, options);
      if (shifted.ok() && shifted->cluster_count() > 1) {
        // Densest mode wins; everything else is a vector outlier.
        std::vector<size_t> counts(shifted->cluster_count(), 0);
        for (const size_t label : shifted->labels) ++counts[label];
        const size_t winner = static_cast<size_t>(
            std::max_element(counts.begin(), counts.end()) - counts.begin());
        for (size_t k = 0; k < points.size(); ++k) {
          if (shifted->labels[k] != winner) {
            result.vector_outliers[present_index[k]] = true;
          }
        }
        result.used_vector_clustering = true;
      }
    }
  }

  // --- Per-dimension scalar votes ----------------------------------------
  result.dimensions.reserve(dims);
  std::vector<double> fused(dims, 0.0);
  bool complete = true;
  for (size_t d = 0; d < dims; ++d) {
    Round scalar_round(module_count_);
    for (size_t m = 0; m < module_count_; ++m) {
      if (round[m].has_value() && !result.vector_outliers[m]) {
        scalar_round[m] = (*round[m])[d];
      }
    }
    AVOC_ASSIGN_OR_RETURN(VoteResult dim_result,
                          engines_[d].CastVote(scalar_round));
    result.outcome =
        OutcomeSeverity(dim_result.outcome) > OutcomeSeverity(result.outcome)
            ? dim_result.outcome
            : result.outcome;
    if (dim_result.value.has_value()) {
      fused[d] = *dim_result.value;
    } else {
      complete = false;
    }
    result.dimensions.push_back(std::move(dim_result));
  }
  if (complete) {
    result.value = std::move(fused);
  }
  return result;
}

void MultiDimEngine::Reset() {
  for (VotingEngine& engine : engines_) engine.Reset();
}

}  // namespace avoc::core
