#include "core/trace.h"

#include <algorithm>

namespace avoc::core {

Status TraceView::status(size_t r) const {
  const auto it = std::lower_bound(
      c_.errors.begin(), c_.errors.end(), r,
      [](const RoundError& e, size_t round) { return e.round < round; });
  if (it != c_.errors.end() && it->round == r) return it->status;
  return Status::Ok();
}

std::vector<std::optional<double>> TraceView::Outputs() const {
  std::vector<std::optional<double>> out;
  out.reserve(c_.rounds);
  for (size_t r = 0; r < c_.rounds; ++r) out.push_back(output(r));
  return out;
}

std::vector<double> TraceView::ContinuousOutputs() const {
  std::vector<double> out;
  out.reserve(c_.rounds);
  // First engaged value seeds any leading gaps.
  double current = 0.0;
  bool seeded = false;
  for (size_t r = 0; r < c_.rounds; ++r) {
    if (c_.engaged[r] != 0) {
      current = c_.values[r];
      seeded = true;
      break;
    }
  }
  // No round ever produced a value: there is nothing to continue, and a
  // series of fabricated zeros would skew every downstream metric.
  if (!seeded) return out;
  for (size_t r = 0; r < c_.rounds; ++r) {
    if (c_.engaged[r] != 0) current = c_.values[r];
    out.push_back(current);
  }
  return out;
}

size_t TraceView::voted_rounds() const {
  size_t count = 0;
  for (size_t r = 0; r < c_.rounds; ++r) {
    if (c_.outcomes[r] == RoundOutcome::kVoted) ++count;
  }
  return count;
}

size_t TraceView::clustered_rounds() const {
  size_t count = 0;
  for (size_t r = 0; r < c_.rounds; ++r) {
    if (c_.used_clustering[r] != 0) ++count;
  }
  return count;
}

VoteResult TraceView::MaterializeRound(size_t r) const {
  VoteResult result;
  if (c_.engaged[r] != 0) result.value = c_.values[r];
  result.outcome = c_.outcomes[r];
  result.status = status(r);
  result.used_clustering = c_.used_clustering[r] != 0;
  result.had_majority = c_.had_majority[r] != 0;
  result.present_count = c_.present_counts[r];
  const auto w = weights(r);
  const auto a = agreement(r);
  const auto h = history(r);
  const auto ex = excluded(r);
  const auto el = eliminated(r);
  result.weights.assign(w.begin(), w.end());
  result.agreement.assign(a.begin(), a.end());
  result.history.assign(h.begin(), h.end());
  result.excluded.assign(ex.begin(), ex.end());
  result.eliminated.assign(el.begin(), el.end());
  return result;
}

void BatchTrace::Reset(size_t modules) {
  modules_ = modules;
  rounds_ = 0;
  open_round_ = false;
  values_.clear();
  engaged_.clear();
  outcomes_.clear();
  used_clustering_.clear();
  had_majority_.clear();
  present_counts_.clear();
  weights_.clear();
  agreement_.clear();
  history_.clear();
  excluded_.clear();
  eliminated_.clear();
  errors_.clear();
}

void BatchTrace::ReserveRounds(size_t rounds) {
  values_.reserve(rounds);
  engaged_.reserve(rounds);
  outcomes_.reserve(rounds);
  used_clustering_.reserve(rounds);
  had_majority_.reserve(rounds);
  present_counts_.reserve(rounds);
  weights_.reserve(rounds * modules_);
  agreement_.reserve(rounds * modules_);
  history_.reserve(rounds * modules_);
  excluded_.reserve(rounds * modules_);
  eliminated_.reserve(rounds * modules_);
}

RoundColumns BatchTrace::BeginRound(size_t module_count) {
  if (modules_ == 0) modules_ = module_count;
  const size_t offset = rounds_ * modules_;
  weights_.resize(offset + modules_);
  agreement_.resize(offset + modules_);
  history_.resize(offset + modules_);
  excluded_.resize(offset + modules_);
  eliminated_.resize(offset + modules_);
  open_round_ = true;
  return RoundColumns{
      std::span<double>(weights_).subspan(offset, modules_),
      std::span<double>(agreement_).subspan(offset, modules_),
      std::span<double>(history_).subspan(offset, modules_),
      std::span<uint8_t>(excluded_).subspan(offset, modules_),
      std::span<uint8_t>(eliminated_).subspan(offset, modules_)};
}

void BatchTrace::EndRound(const RoundScalars& scalars) {
  values_.push_back(scalars.has_value ? scalars.value : 0.0);
  engaged_.push_back(scalars.has_value ? 1 : 0);
  outcomes_.push_back(scalars.outcome);
  used_clustering_.push_back(scalars.used_clustering ? 1 : 0);
  had_majority_.push_back(scalars.had_majority ? 1 : 0);
  present_counts_.push_back(scalars.present_count);
  if (scalars.status != nullptr && !scalars.status->ok()) {
    errors_.push_back(
        RoundError{static_cast<uint32_t>(rounds_), *scalars.status});
  }
  ++rounds_;
  open_round_ = false;
}

void BatchTrace::Append(const VoteResult& result) {
  if (modules_ == 0) modules_ = result.weights.size();
  RoundColumns columns = BeginRound(modules_);
  const size_t n = std::min(modules_, result.weights.size());
  std::copy_n(result.weights.begin(), n, columns.weights.begin());
  std::copy_n(result.agreement.begin(), n, columns.agreement.begin());
  std::copy_n(result.history.begin(), n, columns.history.begin());
  for (size_t m = 0; m < n; ++m) {
    columns.excluded[m] = result.excluded[m] ? 1 : 0;
    columns.eliminated[m] = result.eliminated[m] ? 1 : 0;
  }
  RoundScalars scalars;
  scalars.has_value = result.value.has_value();
  scalars.value = result.value.value_or(0.0);
  scalars.outcome = result.outcome;
  scalars.used_clustering = result.used_clustering;
  scalars.had_majority = result.had_majority;
  scalars.present_count = static_cast<uint32_t>(result.present_count);
  scalars.status = &result.status;
  EndRound(scalars);
}

void BatchTrace::AppendFrom(const TraceView& src, size_t r) {
  if (modules_ == 0) modules_ = src.module_count();
  RoundColumns columns = BeginRound(modules_);
  const size_t n = std::min(modules_, src.module_count());
  const auto w = src.weights(r);
  const auto a = src.agreement(r);
  const auto h = src.history(r);
  const auto ex = src.excluded(r);
  const auto el = src.eliminated(r);
  std::copy_n(w.begin(), n, columns.weights.begin());
  std::copy_n(a.begin(), n, columns.agreement.begin());
  std::copy_n(h.begin(), n, columns.history.begin());
  std::copy_n(ex.begin(), n, columns.excluded.begin());
  std::copy_n(el.begin(), n, columns.eliminated.begin());
  RoundScalars scalars;
  const TraceColumns& c = src.columns();
  scalars.has_value = c.engaged[r] != 0;
  scalars.value = c.values[r];
  scalars.outcome = c.outcomes[r];
  scalars.used_clustering = c.used_clustering[r] != 0;
  scalars.had_majority = c.had_majority[r] != 0;
  scalars.present_count = c.present_counts[r];
  const Status status = src.status(r);
  scalars.status = &status;
  EndRound(scalars);
}

TraceView BatchTrace::view() const {
  TraceColumns columns;
  columns.rounds = rounds_;
  columns.modules = modules_;
  columns.values = values_;
  columns.engaged = engaged_;
  columns.outcomes = outcomes_;
  columns.used_clustering = used_clustering_;
  columns.had_majority = had_majority_;
  columns.present_counts = present_counts_;
  columns.weights = weights_;
  columns.agreement = agreement_;
  columns.history = history_;
  columns.excluded = excluded_;
  columns.eliminated = eliminated_;
  columns.errors = errors_;
  return TraceView(columns);
}

}  // namespace avoc::core
