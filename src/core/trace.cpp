#include "core/trace.h"

#include <algorithm>

namespace avoc::core {
namespace {

/// Zeroes the columns of one handed-out row from `from` to the end.
void ZeroRowTail(RoundColumns& columns, size_t from) {
  std::fill(columns.weights.begin() + from, columns.weights.end(), 0.0);
  std::fill(columns.agreement.begin() + from, columns.agreement.end(), 0.0);
  std::fill(columns.history.begin() + from, columns.history.end(), 0.0);
  std::fill(columns.excluded.begin() + from, columns.excluded.end(), 0);
  std::fill(columns.eliminated.begin() + from, columns.eliminated.end(), 0);
}

}  // namespace

Status TraceView::status(size_t r) const {
  const auto it = std::lower_bound(
      c_.errors.begin(), c_.errors.end(), r,
      [](const RoundError& e, size_t round) { return e.round < round; });
  if (it != c_.errors.end() && it->round == r) return it->status;
  return Status::Ok();
}

std::vector<std::optional<double>> TraceView::Outputs() const {
  std::vector<std::optional<double>> out;
  out.reserve(c_.rounds);
  for (size_t r = 0; r < c_.rounds; ++r) out.push_back(output(r));
  return out;
}

std::vector<double> TraceView::ContinuousOutputs() const {
  std::vector<double> out;
  out.reserve(c_.rounds);
  // First engaged value seeds any leading gaps.
  double current = 0.0;
  bool seeded = false;
  for (size_t r = 0; r < c_.rounds; ++r) {
    if (c_.engaged[r] != 0) {
      current = c_.values[r];
      seeded = true;
      break;
    }
  }
  // No round ever produced a value: there is nothing to continue, and a
  // series of fabricated zeros would skew every downstream metric.
  if (!seeded) return out;
  for (size_t r = 0; r < c_.rounds; ++r) {
    if (c_.engaged[r] != 0) current = c_.values[r];
    out.push_back(current);
  }
  return out;
}

size_t TraceView::voted_rounds() const {
  size_t count = 0;
  for (size_t r = 0; r < c_.rounds; ++r) {
    if (c_.outcomes[r] == RoundOutcome::kVoted) ++count;
  }
  return count;
}

size_t TraceView::clustered_rounds() const {
  size_t count = 0;
  for (size_t r = 0; r < c_.rounds; ++r) {
    if (c_.used_clustering[r] != 0) ++count;
  }
  return count;
}

VoteResult TraceView::MaterializeRound(size_t r) const {
  VoteResult result;
  if (c_.engaged[r] != 0) result.value = c_.values[r];
  result.outcome = c_.outcomes[r];
  result.status = status(r);
  result.used_clustering = c_.used_clustering[r] != 0;
  result.had_majority = c_.had_majority[r] != 0;
  result.present_count = c_.present_counts[r];
  const auto w = weights(r);
  const auto a = agreement(r);
  const auto h = history(r);
  const auto ex = excluded(r);
  const auto el = eliminated(r);
  result.weights.assign(w.begin(), w.end());
  result.agreement.assign(a.begin(), a.end());
  result.history.assign(h.begin(), h.end());
  result.excluded.assign(ex.begin(), ex.end());
  result.eliminated.assign(el.begin(), el.end());
  return result;
}

void BatchTrace::Reset(size_t modules) {
  modules_ = modules;
  rounds_ = 0;
  open_round_ = false;
  values_.clear();
  engaged_.clear();
  outcomes_.clear();
  used_clustering_.clear();
  had_majority_.clear();
  present_counts_.clear();
  weights_.clear();
  agreement_.clear();
  history_.clear();
  excluded_.clear();
  eliminated_.clear();
  errors_.clear();
}

void BatchTrace::ReserveRounds(size_t rounds) {
  values_.reserve(rounds);
  engaged_.reserve(rounds);
  outcomes_.reserve(rounds);
  used_clustering_.reserve(rounds);
  had_majority_.reserve(rounds);
  present_counts_.reserve(rounds);
  // The per-module blocks are *sized* (not just reserved) up front: the
  // hot path then hands out row subspans with no per-round resize calls
  // (each of which would zero-fill the fresh row only for EmitColumns to
  // overwrite it).  The block size is decoupled from the committed round
  // count — every read goes through view(), which clamps the spans to
  // rounds_ * modules_.
  GrowBlocks(rounds * modules_);
}

void BatchTrace::GrowBlocks(size_t elements) {
  if (elements <= weights_.size()) return;
  // Geometric slabs so unreserved streaming stays amortized-O(1).
  const size_t grown = std::max(elements, weights_.size() * 2);
  weights_.resize(grown);
  agreement_.resize(grown);
  history_.resize(grown);
  excluded_.resize(grown);
  eliminated_.resize(grown);
}

RoundColumns BatchTrace::BeginRound(size_t module_count) {
  if (modules_ == 0) modules_ = module_count;
  const size_t offset = rounds_ * modules_;
  GrowBlocks(offset + modules_);
  open_round_ = true;
  return RoundColumns{
      std::span<double>(weights_).subspan(offset, modules_),
      std::span<double>(agreement_).subspan(offset, modules_),
      std::span<double>(history_).subspan(offset, modules_),
      std::span<uint8_t>(excluded_).subspan(offset, modules_),
      std::span<uint8_t>(eliminated_).subspan(offset, modules_)};
}

void BatchTrace::EndRound(const RoundScalars& scalars) {
  values_.push_back(scalars.has_value ? scalars.value : 0.0);
  engaged_.push_back(scalars.has_value ? 1 : 0);
  outcomes_.push_back(scalars.outcome);
  used_clustering_.push_back(scalars.used_clustering ? 1 : 0);
  had_majority_.push_back(scalars.had_majority ? 1 : 0);
  present_counts_.push_back(scalars.present_count);
  if (scalars.status != nullptr && !scalars.status->ok()) {
    errors_.push_back(
        RoundError{static_cast<uint32_t>(rounds_), *scalars.status});
  }
  ++rounds_;
  open_round_ = false;
}

void BatchTrace::Append(const VoteResult& result) {
  if (modules_ == 0) modules_ = result.weights.size();
  RoundColumns columns = BeginRound(modules_);
  const size_t n = std::min(modules_, result.weights.size());
  // Slab rows start uninitialized (UninitAllocator); zero any tail a
  // smaller-arity source leaves unwritten.
  if (n < modules_) ZeroRowTail(columns, n);
  std::copy_n(result.weights.begin(), n, columns.weights.begin());
  std::copy_n(result.agreement.begin(), n, columns.agreement.begin());
  std::copy_n(result.history.begin(), n, columns.history.begin());
  for (size_t m = 0; m < n; ++m) {
    columns.excluded[m] = result.excluded[m] ? 1 : 0;
    columns.eliminated[m] = result.eliminated[m] ? 1 : 0;
  }
  RoundScalars scalars;
  scalars.has_value = result.value.has_value();
  scalars.value = result.value.value_or(0.0);
  scalars.outcome = result.outcome;
  scalars.used_clustering = result.used_clustering;
  scalars.had_majority = result.had_majority;
  scalars.present_count = static_cast<uint32_t>(result.present_count);
  scalars.status = &result.status;
  EndRound(scalars);
}

void BatchTrace::AppendFrom(const TraceView& src, size_t r) {
  if (modules_ == 0) modules_ = src.module_count();
  RoundColumns columns = BeginRound(modules_);
  const size_t n = std::min(modules_, src.module_count());
  if (n < modules_) ZeroRowTail(columns, n);
  const auto w = src.weights(r);
  const auto a = src.agreement(r);
  const auto h = src.history(r);
  const auto ex = src.excluded(r);
  const auto el = src.eliminated(r);
  std::copy_n(w.begin(), n, columns.weights.begin());
  std::copy_n(a.begin(), n, columns.agreement.begin());
  std::copy_n(h.begin(), n, columns.history.begin());
  std::copy_n(ex.begin(), n, columns.excluded.begin());
  std::copy_n(el.begin(), n, columns.eliminated.begin());
  RoundScalars scalars;
  const TraceColumns& c = src.columns();
  scalars.has_value = c.engaged[r] != 0;
  scalars.value = c.values[r];
  scalars.outcome = c.outcomes[r];
  scalars.used_clustering = c.used_clustering[r] != 0;
  scalars.had_majority = c.had_majority[r] != 0;
  scalars.present_count = c.present_counts[r];
  const Status status = src.status(r);
  scalars.status = &status;
  EndRound(scalars);
}

TraceView BatchTrace::view() const {
  TraceColumns columns;
  columns.rounds = rounds_;
  columns.modules = modules_;
  columns.values = values_;
  columns.engaged = engaged_;
  columns.outcomes = outcomes_;
  columns.used_clustering = used_clustering_;
  columns.had_majority = had_majority_;
  columns.present_counts = present_counts_;
  // The blocks are slab-sized past the committed rounds (see
  // ReserveRounds); clamp the read surface to what EndRound committed.
  const size_t committed = rounds_ * modules_;
  columns.weights = std::span<const double>(weights_.data(), committed);
  columns.agreement = std::span<const double>(agreement_.data(), committed);
  columns.history = std::span<const double>(history_.data(), committed);
  columns.excluded = std::span<const uint8_t>(excluded_.data(), committed);
  columns.eliminated =
      std::span<const uint8_t>(eliminated_.data(), committed);
  columns.errors = errors_;
  return TraceView(columns);
}

}  // namespace avoc::core
