// Maximum Likelihood Voting for finite output spaces (Leung, 1995).
//
// §6 of the paper names MLV as an algorithm VDX *cannot* define, because
// it parameterises over the candidate values themselves (the size of the
// output space enters the likelihood).  It is implemented here as a
// library-level baseline so the expressiveness boundary can be measured:
// bench_mlv compares MLV against the weighted-majority categorical voter
// on noisy finite-alphabet channels.
//
// Model: module i is correct with probability p_i; when wrong, its output
// is uniform over the remaining s-1 values of the output space.  The vote
// selects the candidate v maximising
//
//     L(v) = Π_i  ( x_i == v ?  p_i  :  (1 - p_i) / (s - 1) )
//
// over the submitted values.  Reliabilities are learned online as the
// running fraction of rounds the module agreed with the fused output
// (Laplace-smoothed), clamped away from {0,1} so likelihoods stay finite.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/history.h"
#include "core/types.h"
#include "util/status.h"

namespace avoc::core {

struct MlvConfig {
  /// Size of the finite output space (must be >= 2 and >= the number of
  /// distinct values ever submitted).
  size_t output_space_size = 2;
  /// Reliability clamp: p_i is kept within [clamp, 1 - clamp].
  double reliability_clamp = 0.01;
  /// Quorum as a fraction of registered modules.
  double quorum_fraction = 0.5;
  NoQuorumPolicy on_no_quorum = NoQuorumPolicy::kRevertLast;

  Status Validate() const;
};

struct MlvVoteResult {
  std::optional<std::string> value;
  RoundOutcome outcome = RoundOutcome::kVoted;
  Status status;
  /// Per-module reliability estimates after the update.
  std::vector<double> reliability;
  /// Log-likelihood of the winning candidate.
  double log_likelihood = 0.0;
  size_t present_count = 0;
};

class MlvEngine {
 public:
  using Label = std::optional<std::string>;

  static Result<MlvEngine> Create(size_t module_count, MlvConfig config);

  size_t module_count() const { return module_count_; }

  Result<MlvVoteResult> CastVote(const std::vector<Label>& round);

  const std::optional<std::string>& last_output() const {
    return last_output_;
  }

  /// Current reliability estimate of module `i`.
  double reliability(size_t i) const;

  void Reset();

 private:
  MlvEngine(size_t module_count, MlvConfig config);

  MlvVoteResult MakeFaultResult(RoundOutcome fallback, Status status,
                                size_t present_count) const;

  size_t module_count_;
  MlvConfig config_;
  HistoryLedger ledger_;  // cumulative agreement ratio = reliability
  std::optional<std::string> last_output_;
};

}  // namespace avoc::core
