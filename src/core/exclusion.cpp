#include "core/exclusion.h"

#include <algorithm>
#include <cmath>

#include "stats/quantile.h"
#include "stats/running.h"

namespace avoc::core {

std::vector<bool> ComputeExclusions(std::span<const double> values,
                                    const ExclusionParams& params) {
  std::vector<bool> excluded(values.size(), false);
  if (params.mode == ExclusionMode::kNone || values.size() < 3 ||
      params.threshold <= 0.0) {
    return excluded;
  }

  double center = 0.0;
  double spread = 0.0;
  switch (params.mode) {
    case ExclusionMode::kNone:
      return excluded;
    case ExclusionMode::kStdDev: {
      stats::RunningStats rs;
      for (const double v : values) rs.Add(v);
      center = rs.mean();
      spread = rs.stddev();
      break;
    }
    case ExclusionMode::kMad: {
      auto median = stats::Median(values);
      auto mad = stats::MedianAbsoluteDeviation(values);
      if (!median.ok() || !mad.ok()) return excluded;
      center = *median;
      spread = *mad;
      break;
    }
  }
  if (spread <= 0.0) return excluded;

  size_t kept = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    excluded[i] = std::abs(values[i] - center) > params.threshold * spread;
    if (!excluded[i]) ++kept;
  }
  if (kept == 0) {
    std::fill(excluded.begin(), excluded.end(), false);
  }
  return excluded;
}

}  // namespace avoc::core
