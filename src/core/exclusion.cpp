#include "core/exclusion.h"

#include <algorithm>
#include <cmath>

#include "stats/quantile.h"
#include "stats/running.h"

namespace avoc::core {

std::vector<bool> ComputeExclusions(std::span<const double> values,
                                    const ExclusionParams& params) {
  std::vector<bool> excluded;
  ComputeExclusionsInto(values, params, excluded);
  return excluded;
}

void ComputeExclusionsInto(std::span<const double> values,
                           const ExclusionParams& params,
                           std::vector<bool>& excluded) {
  excluded.assign(values.size(), false);
  if (params.mode == ExclusionMode::kNone || values.size() < 3 ||
      params.threshold <= 0.0) {
    return;
  }

  double center = 0.0;
  double spread = 0.0;
  switch (params.mode) {
    case ExclusionMode::kNone:
      return;
    case ExclusionMode::kStdDev: {
      stats::RunningStats rs;
      for (const double v : values) rs.Add(v);
      center = rs.mean();
      spread = rs.stddev();
      break;
    }
    case ExclusionMode::kMad: {
      auto median = stats::Median(values);
      auto mad = stats::MedianAbsoluteDeviation(values);
      if (!median.ok() || !mad.ok()) return;
      center = *median;
      spread = *mad;
      break;
    }
  }
  if (spread <= 0.0) return;

  size_t kept = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    excluded[i] = std::abs(values[i] - center) > params.threshold * spread;
    if (!excluded[i]) ++kept;
  }
  if (kept == 0) {
    std::fill(excluded.begin(), excluded.end(), false);
  }
}

}  // namespace avoc::core
