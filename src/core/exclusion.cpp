#include "core/exclusion.h"

#include <algorithm>
#include <cmath>

#include "core/kernels/kernels.h"
#include "stats/quantile.h"
#include "stats/running.h"

namespace avoc::core {
namespace {

/// Resolves the round's center/spread statistic.  Returns false when the
/// exclusion step is inert (mode off, too few values, degenerate spread)
/// — the caller keeps everything.
bool ExclusionStatistic(std::span<const double> values,
                        const ExclusionParams& params, double* center,
                        double* spread) {
  if (params.mode == ExclusionMode::kNone || values.size() < 3 ||
      params.threshold <= 0.0) {
    return false;
  }
  switch (params.mode) {
    case ExclusionMode::kNone:
      return false;
    case ExclusionMode::kStdDev: {
      stats::RunningStats rs;
      for (const double v : values) rs.Add(v);
      *center = rs.mean();
      *spread = rs.stddev();
      break;
    }
    case ExclusionMode::kMad: {
      auto median = stats::Median(values);
      auto mad = stats::MedianAbsoluteDeviation(values);
      if (!median.ok() || !mad.ok()) return false;
      *center = *median;
      *spread = *mad;
      break;
    }
  }
  return *spread > 0.0;
}

}  // namespace

std::vector<bool> ComputeExclusions(std::span<const double> values,
                                    const ExclusionParams& params) {
  std::vector<bool> excluded;
  ComputeExclusionsInto(values, params, excluded);
  return excluded;
}

void ComputeExclusionsInto(std::span<const double> values,
                           const ExclusionParams& params,
                           std::vector<bool>& excluded) {
  excluded.assign(values.size(), false);
  double center = 0.0;
  double spread = 0.0;
  if (!ExclusionStatistic(values, params, &center, &spread)) return;

  const double limit = params.threshold * spread;
  size_t kept = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    excluded[i] = std::abs(values[i] - center) > limit;
    if (!excluded[i]) ++kept;
  }
  if (kept == 0) {
    std::fill(excluded.begin(), excluded.end(), false);
  }
}

size_t ComputeExclusionMask(std::span<const double> values,
                            const ExclusionParams& params,
                            kernels::ExclusionScratch& scratch,
                            uint8_t* excluded) {
  const size_t n = values.size();
  double center = 0.0;
  double spread = 0.0;
  if (!ExclusionStatistic(values, params, &center, &spread)) {
    std::fill(excluded, excluded + n, uint8_t{0});
    return n;
  }
  const size_t kept = kernels::ExclusionMaskKernel(
      values.data(), n, center, params.threshold * spread, scratch, excluded);
  if (kept == 0) {
    std::fill(excluded, excluded + n, uint8_t{0});
    return n;
  }
  return kept;
}

}  // namespace avoc::core
