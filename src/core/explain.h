// Human-readable rendering of vote results.
//
// The paper's shoe-box demonstrator shows "input, weights and results" on
// an LCD, and its Fig. 5 application displays per-algorithm comparisons;
// this is the formatting behind both: one VoteResult (plus the module
// names and the raw round) becomes a compact table or one-line summary.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/stages.h"
#include "core/types.h"

namespace avoc::core {

/// One line: outcome, value, and the per-module weight vector.
///   "voted 18470.0  w=[1.00 1.00 1.00 1.00 0.00] (clustered)"
std::string SummarizeResult(const VoteResult& result);

/// Multi-line table: one row per module with reading, weight, agreement,
/// history and status flags (missing/excluded/eliminated/out-of-cluster),
/// then the outcome line.  `names` may be empty (indices are used).
std::string ExplainResult(const VoteResult& result, const Round& round,
                          const std::vector<std::string>& names = {});

/// Multi-line rendering of a StageTraceObserver recording: one row per
/// executed stage with the surviving candidate count, the weight mass and
/// the clustering/fault flags — how a round moved through the chain.
std::string FormatStageTrace(std::span<const StageTraceEntry> entries);

}  // namespace avoc::core
