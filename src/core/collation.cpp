#include "core/collation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/kernels/kernels.h"
#include "util/strings.h"

namespace avoc::core {
namespace {

Result<double> WeightedMean(std::span<const double> values,
                            std::span<const double> weights,
                            kernels::WeightedMeanScratch& scratch) {
  double mean = 0.0;
  if (!kernels::WeightedMeanKernel(values.data(), weights.data(),
                                   values.size(), scratch, &mean)) {
    return FailedPreconditionError("all candidate weights are zero");
  }
  return mean;
}

Result<double> WeightedMedian(std::span<const double> values,
                              std::span<const double> weights) {
  std::vector<size_t> order;
  double total = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (weights[i] > 0.0) {
      order.push_back(i);
      total += weights[i];
    }
  }
  if (order.empty()) {
    return FailedPreconditionError("all candidate weights are zero");
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  double cumulative = 0.0;
  for (size_t k = 0; k < order.size(); ++k) {
    cumulative += weights[order[k]];
    if (cumulative >= total / 2.0) {
      // Midpoint rule on an exact 50/50 split for an even-ish balance.
      if (std::abs(cumulative - total / 2.0) < 1e-12 && k + 1 < order.size()) {
        return 0.5 * (values[order[k]] + values[order[k + 1]]);
      }
      return values[order[k]];
    }
  }
  return values[order.back()];
}

}  // namespace

Result<double> Collate(Collation method, std::span<const double> values,
                       std::span<const double> weights,
                       const std::optional<double>& previous_output) {
  thread_local kernels::WeightedMeanScratch scratch;
  return Collate(method, values, weights, previous_output, scratch);
}

Result<double> Collate(Collation method, std::span<const double> values,
                       std::span<const double> weights,
                       const std::optional<double>& previous_output,
                       kernels::WeightedMeanScratch& scratch) {
  if (values.empty()) return InvalidArgumentError("no candidates to collate");
  if (values.size() != weights.size()) {
    return InvalidArgumentError(
        StrFormat("%zu values vs %zu weights", values.size(), weights.size()));
  }
  switch (method) {
    case Collation::kWeightedAverage:
      return WeightedMean(values, weights, scratch);
    case Collation::kWeightedMedian:
      return WeightedMedian(values, weights);
    case Collation::kMeanNearestNeighbor: {
      AVOC_ASSIGN_OR_RETURN(const double mean,
                            WeightedMean(values, weights, scratch));
      // Select the weight-bearing candidate nearest the weighted mean.
      double best_value = 0.0;
      double best_distance = -1.0;
      for (size_t i = 0; i < values.size(); ++i) {
        if (weights[i] <= 0.0) continue;
        const double distance = std::abs(values[i] - mean);
        const bool closer =
            best_distance < 0.0 || distance < best_distance ||
            // Tie: prefer proximity to the previous output when known.
            (distance == best_distance && previous_output.has_value() &&
             std::abs(values[i] - *previous_output) <
                 std::abs(best_value - *previous_output));
        if (closer) {
          best_value = values[i];
          best_distance = distance;
        }
      }
      return best_value;
    }
  }
  return InternalError("unknown collation method");
}

}  // namespace avoc::core
