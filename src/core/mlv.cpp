#include "core/mlv.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/strings.h"

namespace avoc::core {

Status MlvConfig::Validate() const {
  if (output_space_size < 2) {
    return InvalidArgumentError("MLV needs an output space of >= 2 values");
  }
  if (reliability_clamp <= 0.0 || reliability_clamp >= 0.5) {
    return InvalidArgumentError("reliability clamp must lie in (0, 0.5)");
  }
  if (quorum_fraction <= 0.0 || quorum_fraction > 1.0) {
    return InvalidArgumentError("quorum fraction must lie in (0,1]");
  }
  return Status::Ok();
}

MlvEngine::MlvEngine(size_t module_count, MlvConfig config)
    : module_count_(module_count),
      config_(config),
      ledger_(module_count, HistoryParams{HistoryRule::kCumulativeRatio,
                                          0.0, 0.0, 0.0}) {}

Result<MlvEngine> MlvEngine::Create(size_t module_count, MlvConfig config) {
  if (module_count == 0) {
    return InvalidArgumentError("engine needs at least one module");
  }
  AVOC_RETURN_IF_ERROR(config.Validate());
  return MlvEngine(module_count, config);
}

double MlvEngine::reliability(size_t i) const {
  return std::clamp(ledger_.record(i), config_.reliability_clamp,
                    1.0 - config_.reliability_clamp);
}

MlvVoteResult MlvEngine::MakeFaultResult(RoundOutcome fallback, Status status,
                                         size_t present_count) const {
  MlvVoteResult result;
  result.present_count = present_count;
  result.reliability.resize(module_count_);
  for (size_t i = 0; i < module_count_; ++i) {
    result.reliability[i] = reliability(i);
  }
  switch (fallback) {
    case RoundOutcome::kRevertedLast:
      if (last_output_.has_value()) {
        result.outcome = RoundOutcome::kRevertedLast;
        result.value = last_output_;
      } else {
        result.outcome = RoundOutcome::kNoOutput;
      }
      break;
    case RoundOutcome::kError:
      result.outcome = RoundOutcome::kError;
      result.status = std::move(status);
      break;
    default:
      result.outcome = RoundOutcome::kNoOutput;
  }
  return result;
}

Result<MlvVoteResult> MlvEngine::CastVote(const std::vector<Label>& round) {
  if (round.size() != module_count_) {
    return InvalidArgumentError(
        StrFormat("round has %zu labels, engine has %zu modules", round.size(),
                  module_count_));
  }
  std::vector<size_t> present_index;
  std::vector<std::string> labels;
  std::vector<bool> present(module_count_, false);
  for (size_t i = 0; i < module_count_; ++i) {
    if (round[i].has_value()) {
      present[i] = true;
      present_index.push_back(i);
      labels.push_back(*round[i]);
    }
  }
  const size_t present_count = present_index.size();
  const size_t required = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(
             config_.quorum_fraction * static_cast<double>(module_count_) -
             1e-9)));
  if (present_count < required) {
    switch (config_.on_no_quorum) {
      case NoQuorumPolicy::kEmitNothing:
        return MakeFaultResult(RoundOutcome::kNoOutput, Status::Ok(),
                               present_count);
      case NoQuorumPolicy::kRevertLast:
        return MakeFaultResult(RoundOutcome::kRevertedLast, Status::Ok(),
                               present_count);
      case NoQuorumPolicy::kRaise:
        return MakeFaultResult(
            RoundOutcome::kError,
            NoQuorumError(StrFormat("%zu of %zu modules", present_count,
                                    module_count_)),
            present_count);
    }
  }

  // Distinct candidates: MLV only scores values somebody submitted.
  std::map<std::string, bool> candidates;
  for (const std::string& label : labels) candidates[label] = true;
  if (candidates.size() > config_.output_space_size) {
    return MakeFaultResult(
        RoundOutcome::kError,
        InvalidArgumentError(StrFormat(
            "round contains %zu distinct values but output space is %zu",
            candidates.size(), config_.output_space_size)),
        present_count);
  }

  const double space =
      static_cast<double>(config_.output_space_size);
  double best_log_likelihood = -1e300;
  std::string winner;
  bool first = true;
  for (const auto& [candidate, unused] : candidates) {
    (void)unused;
    double log_likelihood = 0.0;
    for (size_t k = 0; k < present_count; ++k) {
      const double p = reliability(present_index[k]);
      const double term =
          labels[k] == candidate ? p : (1.0 - p) / (space - 1.0);
      log_likelihood += std::log(term);
    }
    // Ties break towards the previous output, else the first (smallest)
    // candidate — deterministic either way.
    const bool better =
        log_likelihood > best_log_likelihood + 1e-12 ||
        (std::abs(log_likelihood - best_log_likelihood) <= 1e-12 &&
         last_output_.has_value() && candidate == *last_output_);
    if (first || better) {
      best_log_likelihood = log_likelihood;
      winner = candidate;
      first = false;
    }
  }

  // Reliability update: agreement with the ML winner.
  std::vector<double> agreement(module_count_, 0.0);
  for (size_t k = 0; k < present_count; ++k) {
    agreement[present_index[k]] = labels[k] == winner ? 1.0 : 0.0;
  }
  AVOC_RETURN_IF_ERROR(ledger_.Update(agreement, present));

  MlvVoteResult result;
  result.value = winner;
  result.outcome = RoundOutcome::kVoted;
  result.log_likelihood = best_log_likelihood;
  result.present_count = present_count;
  result.reliability.resize(module_count_);
  for (size_t i = 0; i < module_count_; ++i) {
    result.reliability[i] = reliability(i);
  }
  last_output_ = winner;
  return result;
}

void MlvEngine::Reset() {
  ledger_.Reset();
  last_output_.reset();
}

}  // namespace avoc::core
