// Named algorithm presets (§4–§5).
//
// Each factory returns the EngineConfig that realises one of the paper's
// seven compared variants.  All presets share the accepted error threshold
// ε and (where applicable) the SDT multiple m, which the evaluation sets
// to ε=0.05 (relative) and m=2 — the values of Listing 1.
//
// | preset     | agreement | history rule     | weights    | elim | collation | clustering |
// |------------|-----------|------------------|------------|------|-----------|------------|
// | average    | —         | none             | uniform    | no   | mean      | off        |
// | standard   | binary    | cumulative ratio | history    | no   | w-average | off        |
// | ME         | binary    | cumulative ratio | history    | yes  | w-average | off        |
// | SDT        | soft      | cumulative ratio | history    | no   | w-average | off        |
// | hybrid     | soft      | reward/penalty   | history    | yes  | MNN       | off        |
// | COV        | binary    | none             | uniform    | no   | w-average | always     |
// | AVOC       | soft      | reward/penalty   | history    | yes  | MNN       | bootstrap  |
//
// Interpretation note (documented deviation): Alahmadi & Soh describe the
// Hybrid's weights as "agreement-based"; we read that as weights derived
// from the agreement *record* (the reward/penalty ledger driven by soft
// agreement scores), because the paper's own Fig. 6 shows Hybrid suffering
// the same round-one spike as the other history-based algorithms — which
// can only happen if round weights do not react to the current round's
// agreement.  The RoundWeighting knob exposes the alternative readings;
// bench_ablation compares them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "util/status.h"

namespace avoc::core {

/// Shared tunables of the preset family.
struct PresetParams {
  /// Accepted error threshold ε (relative by default).
  double error = 0.05;
  /// SDT / Hybrid / AVOC soft threshold multiple m.
  double soft_multiple = 2.0;
  ThresholdScale scale = ThresholdScale::kRelative;
  /// Reward/penalty for the reward-penalty history rule.
  double reward = 0.05;
  double penalty = 0.3;
  /// Quorum as a fraction of registered modules.
  double quorum_fraction = 0.5;
  /// Collation override: presets pick their paper default when nullopt.
  std::optional<Collation> collation;
};

enum class AlgorithmId {
  kAverage,
  kStandard,
  kModuleElimination,
  kSoftDynamicThreshold,
  kHybrid,
  kClusteringOnly,
  kAvoc,
};

/// All algorithm ids in the order the paper's figures list them.
std::vector<AlgorithmId> AllAlgorithms();

/// Canonical lower-case name ("avoc", "hybrid", ...).
std::string_view AlgorithmName(AlgorithmId id);

/// Parses names case-insensitively, accepting the paper's spellings
/// ("ME", "Me", "standard", "avg.", "Clustering", "COV", ...).
Result<AlgorithmId> ParseAlgorithmName(std::string_view name);

/// The preset EngineConfig for an algorithm.
EngineConfig MakeConfig(AlgorithmId id, const PresetParams& params = {});

/// Convenience: engine for `modules` sensors running the preset.
Result<VotingEngine> MakeEngine(AlgorithmId id, size_t modules,
                                const PresetParams& params = {});

}  // namespace avoc::core
