// The voting round as an explicit stage pipeline.
//
// Every §4 algorithm is a composition of the same ordered steps; here each
// step is one VoteStage object and a round is one pass of a VoteContext
// through the fixed chain
//
//   quorum → exclusion → clustering → agreement → elimination
//          → weighting → collation → majority → history
//
// StagePipeline::Compile lowers an EngineConfig into that chain exactly
// once per engine: per-stage constants (the quorum count, the mirrored
// clustering threshold, ...) are resolved at compile time, and the round
// hot path only threads the context through.  The chain is immutable and
// stateless across rounds, so engine copies share one compiled pipeline.
//
// StageObserver is the extension seam: tracing, metrics and debugging
// attach from the outside (VotingEngine::set_observer) without touching
// the stages themselves.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/grouping.h"
#include "core/config.h"
#include "core/history.h"
#include "core/kernels/kernels.h"
#include "core/types.h"
#include "util/status.h"

namespace avoc::core {

struct RoundColumns;  // core/vote_sink.h
struct RoundScalars;  // core/vote_sink.h

/// The nine stage names in execution order — the contract between
/// StagePipeline::Compile and everything that keys per-stage data (the
/// stage trace renderer, the metrics observer, the tests).
inline constexpr std::array<std::string_view, 9> kStageNames = {
    "quorum",     "exclusion", "clustering",
    "agreement",  "elimination", "weighting",
    "collation",  "majority",  "history"};

/// One round's scratch state, threaded through the stage chain.  Owned by
/// the engine and reused across rounds (Begin resets everything), so the
/// hot path performs no per-round vector allocations once warmed up.
struct VoteContext {
  // --- round inputs (set by Begin) -----------------------------------------
  const EngineConfig* config = nullptr;
  HistoryLedger* ledger = nullptr;
  size_t module_count = 0;
  /// Last accepted output before this round (MNN tie-break, clustering
  /// winner selection, revert-last).
  std::optional<double> previous_output;

  // --- presence (set by Begin) ---------------------------------------------
  // Masks are flat 0/1 byte columns (not std::vector<bool>): the voting
  // kernels read and write them with contiguous vector loads/stores.
  std::vector<size_t> present_index;   ///< module index of each candidate
  std::vector<double> present_values;  ///< value of each candidate
  std::vector<uint8_t> present;        ///< per-module submitted-a-reading mask
  size_t present_count = 0;

  // --- exclusion -----------------------------------------------------------
  std::vector<uint8_t> excluded_present;  ///< per present candidate
  std::vector<size_t> included_index;  ///< module index per included candidate
  std::vector<double> included_values;

  // --- clustering ----------------------------------------------------------
  bool used_clustering = false;
  std::vector<uint8_t> in_winning_cluster;  ///< per included candidate

  // --- agreement / elimination / weighting ---------------------------------
  std::vector<double> scores;                ///< per included candidate
  std::vector<uint8_t> eliminated_included;  ///< per included candidate
  std::vector<double> weights;               ///< per included candidate
  double weight_sum = 0.0;

  // --- collation / majority ------------------------------------------------
  std::optional<double> output;
  bool had_majority = true;

  // --- reusable stage scratch ----------------------------------------------
  /// Per-module agreement-with-output column of the history update.
  std::vector<double> output_agreement;
  /// Sort buffer of the majority check's largest-group scan.
  std::vector<double> majority_scratch;
  /// Kernel scratch (see core/kernels/kernels.h), reused across rounds so
  /// the stage bodies stay allocation-free once warmed up.
  kernels::AgreementScratch agreement_scratch;
  kernels::ExclusionScratch exclusion_scratch;
  kernels::WeightedMeanScratch mean_scratch;

  // --- fault short-circuit -------------------------------------------------
  /// Engaged when a fault policy fired; the remaining stages are skipped
  /// and the engine emits a fault result with this outcome.
  std::optional<RoundOutcome> fault;
  Status fault_status;

  /// Resets the context for a new round and gathers the present candidates.
  void Begin(const Round& round, const EngineConfig& engine_config,
             HistoryLedger& engine_ledger, std::optional<double> previous);

  /// Zero-copy Begin: the round arrives as contiguous values plus a
  /// present-bitmask (data::RoundTable::View), no Round vector involved.
  void Begin(RoundSpan round, const EngineConfig& engine_config,
             HistoryLedger& engine_ledger, std::optional<double> previous);

  /// Fully-populated Begin: every module present.
  void Begin(std::span<const double> values, const EngineConfig& engine_config,
             HistoryLedger& engine_ledger, std::optional<double> previous);

  bool faulted() const { return fault.has_value(); }

  /// Ends the round with a fault outcome (quorum / majority policies).
  void Fault(RoundOutcome outcome, Status status = Status::Ok());

  /// Runs the clustering step over the included candidates and keeps only
  /// the winning group.  Shared by the clustering stage and the weighting
  /// stage's zero-weight fallback.
  Status ApplyClustering(const cluster::GroupingOptions& options);

 private:
  /// Shared reset of everything but the presence scan.
  void BeginCommon(size_t modules, const EngineConfig& engine_config,
                   HistoryLedger& engine_ledger,
                   std::optional<double> previous);
};

/// One step of the voting round.  Stages are immutable after compilation
/// and hold no per-round state, so a compiled chain is safe to share
/// between engine copies and across threads (each engine brings its own
/// context and ledger).
class VoteStage {
 public:
  virtual ~VoteStage() = default;

  /// Stable lower-case stage name ("quorum", "exclusion", ...).
  virtual std::string_view name() const = 0;

  /// Advances the context.  Non-OK only on hard errors (these surface as
  /// a non-OK CastVote result); policy outcomes go through context.Fault.
  virtual Status Run(VoteContext& context) const = 0;
};

/// Observation seam for tracing/metrics.  Hooks are no-ops by default;
/// implementations must not mutate engine state.
class StageObserver {
 public:
  virtual ~StageObserver() = default;

  /// Before the first stage of a round (context holds the presence scan).
  virtual void OnRoundBegin(size_t /*round_index*/,
                            const VoteContext& /*context*/) {}

  /// After each stage that ran.  Stages skipped by a fault short-circuit
  /// are not reported.
  virtual void OnStageDone(std::string_view /*stage*/,
                           const VoteContext& /*context*/) {}

  /// With the committed sink columns and scalars, before CastVote
  /// returns.  This is the allocation-free hook: it fires identically on
  /// the legacy and columnar result paths and hands over the same flat
  /// columns the sink received (valid until the sink's next BeginRound).
  virtual void OnRoundCommitted(size_t /*round_index*/,
                                const RoundColumns& /*columns*/,
                                const RoundScalars& /*scalars*/) {}

  /// With the assembled result, before CastVote returns.  Fires on both
  /// result paths, but materializing the VoteResult costs one set of
  /// per-round allocations — hot-path observers should override
  /// wants_vote_result() to false and use OnRoundCommitted instead.
  virtual void OnRoundEnd(size_t /*round_index*/,
                          const VoteResult& /*result*/) {}

  /// Whether the engine should materialize a VoteResult for OnRoundEnd.
  virtual bool wants_vote_result() const { return true; }

  /// Inline gate the engine reads once per round (before OnRoundBegin)
  /// to decide whether the per-round tracing hooks — OnRoundBegin and the
  /// nine OnStageDone calls — are dispatched at all.  A sampling observer
  /// clears the flag from OnRoundCommitted for the rounds it does not
  /// time, shrinking an untimed round to a single virtual call; the
  /// committed/end hooks always fire, so counting stays exact.
  bool stage_hooks_enabled() const { return stage_hooks_enabled_; }

 protected:
  /// Derived observers may toggle this between rounds (i.e. from
  /// OnRoundCommitted); see stage_hooks_enabled.
  bool stage_hooks_enabled_ = true;
};

/// One observed stage transition, as recorded by StageTraceObserver.
struct StageTraceEntry {
  std::string stage;
  size_t candidates = 0;  ///< included candidates after the stage
  double weight_sum = 0.0;
  bool used_clustering = false;
  bool faulted = false;
};

/// Ready-made observer that records one StageTraceEntry per stage of the
/// most recent round — the substrate of core::FormatStageTrace and a
/// template for richer metrics observers.
class StageTraceObserver : public StageObserver {
 public:
  void OnRoundBegin(size_t round_index, const VoteContext& context) override;
  void OnStageDone(std::string_view stage,
                   const VoteContext& context) override;

  size_t round_index() const { return round_index_; }
  const std::vector<StageTraceEntry>& entries() const { return entries_; }

 private:
  size_t round_index_ = 0;
  std::vector<StageTraceEntry> entries_;
};

/// The fully-resolved per-stage constants of one compiled pipeline — what
/// Compile lowers an EngineConfig into.  The virtual stage objects and
/// the non-virtual StagePipeline::RunRound batch path both execute the
/// *same* stage bodies from this plan, so the two paths cannot diverge.
struct RoundPlan {
  size_t module_count = 0;
  size_t quorum_required = 0;
  NoQuorumPolicy on_no_quorum = NoQuorumPolicy::kEmitNothing;
  ExclusionParams exclusion;
  ClusteringMode clustering = ClusteringMode::kOff;
  cluster::GroupingOptions grouping;
  AgreementParams agreement;
  bool module_elimination = false;
  double elimination_margin = 0.0;
  RoundWeighting weighting = RoundWeighting::kUniform;
  Collation collation = Collation::kWeightedAverage;
  NoMajorityPolicy on_no_majority = NoMajorityPolicy::kAccept;
};

/// The compiled, immutable stage chain for one EngineConfig.
class StagePipeline {
 public:
  using Ptr = std::shared_ptr<const StagePipeline>;

  /// Lowers `config` (assumed validated) for a `module_count`-ary round
  /// into the fixed nine-stage chain (and the equivalent RoundPlan).
  static Ptr Compile(size_t module_count, const EngineConfig& config);

  std::span<const std::unique_ptr<VoteStage>> stages() const {
    return stages_;
  }
  size_t size() const { return stages_.size(); }

  const RoundPlan& plan() const { return plan_; }

  /// Runs one round through the compiled plan without virtual dispatch or
  /// per-stage observer boundaries — the batch hot path.  Bit-identical
  /// to threading the context through stages() (both call the same stage
  /// bodies); engines pick this path when no stage hooks are attached.
  Status RunRound(VoteContext& context) const;

  /// Stage names in execution order.
  std::vector<std::string_view> StageNames() const;

 private:
  StagePipeline() = default;

  std::vector<std::unique_ptr<VoteStage>> stages_;
  RoundPlan plan_;
};

}  // namespace avoc::core
