// Value-based exclusion (the VDL-inherited "excluding outliers" step).
//
// VDX's `exclusion` / `exclusion_threshold` fields prune candidates whose
// value deviates from the round's central tendency by more than a
// threshold, *before* agreement and weighting.  §6 notes this feature is
// unavailable for categorical values ("there can be no mean or standard
// deviation calculation").
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace avoc::core::kernels {
struct ExclusionScratch;  // core/kernels/kernels.h
}  // namespace avoc::core::kernels

namespace avoc::core {

enum class ExclusionMode {
  kNone,    ///< keep every candidate
  kStdDev,  ///< drop |x - mean| > threshold * stddev
  kMad,     ///< drop |x - median| > threshold * MAD (robust variant)
};

struct ExclusionParams {
  ExclusionMode mode = ExclusionMode::kNone;
  /// Multiple of the spread statistic beyond which a value is excluded.
  double threshold = 0.0;
};

/// Returns a keep/drop flag per value (true = excluded).  Degenerate
/// spreads (stddev or MAD of 0) exclude nothing: all values coincide.
/// Exclusion never removes every candidate; if it would, nothing is
/// excluded (a vote of all-outliers is still better than no vote).
std::vector<bool> ComputeExclusions(std::span<const double> values,
                                    const ExclusionParams& params);

/// In-place form: writes the mask into `excluded` (resized to
/// `values.size()`), reusing its capacity.
void ComputeExclusionsInto(std::span<const double> values,
                           const ExclusionParams& params,
                           std::vector<bool>& excluded);

/// Flat-mask form — the per-round hot path.  Writes 0/1 bytes into
/// `excluded` (which must hold values.size() bytes) via the vectorized
/// exclusion kernel and returns the kept (non-excluded) count.  Same
/// semantics as ComputeExclusionsInto, including the never-exclude-
/// everyone rule, bit for bit.
size_t ComputeExclusionMask(std::span<const double> values,
                            const ExclusionParams& params,
                            kernels::ExclusionScratch& scratch,
                            uint8_t* excluded);

}  // namespace avoc::core
