// Agreement functions (§4).
//
// Two candidate values *agree* when they are within an accepted error
// threshold of each other.  The binary definition (Standard / ME) scores
// 1 or 0; the Soft Dynamic Threshold definition (Das & Bhattacharya 2010)
// assigns a graded score in [0,1] when the distance falls between the
// threshold and a tunable multiple of it.
//
// Thresholds are *relative* by default: the accepted margin scales with
// the magnitude of the values compared ("a soft-dynamic error margin (as
// the margin depends on a reference value)", §5), so the same ε=0.05 works
// for ~18,500-lux light readings and ~-75-dBm RSSI readings.  Absolute
// mode is available for calibrated scales.
#pragma once

#include <span>
#include <vector>

namespace avoc::core::kernels {
struct AgreementScratch;  // core/kernels/kernels.h
}  // namespace avoc::core::kernels

namespace avoc::core {

enum class AgreementMode {
  kBinary,       ///< 1 when within threshold, else 0
  kSoftDynamic,  ///< linear taper from 1 at ε to 0 at m·ε
};

enum class ThresholdScale {
  kRelative,  ///< margin = error * max(|a|, |b|, floor)
  kAbsolute,  ///< margin = error
};

struct AgreementParams {
  /// The accepted error threshold ε (VDX `params.error`).
  double error = 0.05;
  /// SDT multiple m (VDX `params.soft_threshold`); distances beyond m·ε
  /// score 0.  Ignored in binary mode.
  double soft_multiple = 2.0;
  AgreementMode mode = AgreementMode::kBinary;
  ThresholdScale scale = ThresholdScale::kRelative;
  /// Magnitude floor for relative mode so near-zero values keep a margin.
  double relative_floor = 1e-9;
};

/// Agreement score of two values in [0,1].
double AgreementScore(double a, double b, const AgreementParams& params);

/// Effective absolute margin when comparing `a` and `b` (the ε·scale the
/// binary test uses).  Exposed for the clustering step, which mirrors the
/// vote's threshold.
double EffectiveMargin(double a, double b, const AgreementParams& params);

/// Mean pairwise agreement of each candidate with every *other* candidate.
/// A single candidate scores 1 (it trivially agrees with itself).
std::vector<double> AgreementScores(std::span<const double> values,
                                    const AgreementParams& params);

/// In-place form of AgreementScores: writes into `scores` (resized to
/// `values.size()`), reusing its capacity — the per-round hot path.
/// Dispatches to the kernel layer: the sorted O(N log N) window when it
/// is exact (binary mode, absolute scale, finite values), else the
/// symmetric pairwise kernel (each unordered pair scored once).
void AgreementScoresInto(std::span<const double> values,
                         const AgreementParams& params,
                         std::vector<double>& scores);

/// Scratch-threaded form: identical results, but the kernel scratch is
/// owned by the caller (VoteContext) so repeated rounds never allocate.
void AgreementScoresInto(std::span<const double> values,
                         const AgreementParams& params,
                         std::vector<double>& scores,
                         kernels::AgreementScratch& scratch);

/// Size of the largest mutually-chained agreement group among `values`
/// (threshold-linkage by binary agreement, regardless of mode).  Used for
/// the absolute-majority check of the conflicting-results fault scenario.
size_t LargestAgreementGroup(std::span<const double> values,
                             const AgreementParams& params);

/// Allocation-free form: sorts a copy of `values` in `scratch` (capacity
/// reused across rounds) and scans threshold-linkage runs directly.
size_t LargestAgreementGroup(std::span<const double> values,
                             const AgreementParams& params,
                             std::vector<double>& scratch);

}  // namespace avoc::core
