#include "core/stages.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace avoc::core {
namespace {

cluster::GroupingOptions MirroredGroupingOptions(
    const AgreementParams& agreement) {
  // §5: the clustering threshold "is selected to mirror the parameters of
  // the given algorithm".
  cluster::GroupingOptions options;
  options.threshold = agreement.error;
  options.mode = agreement.scale == ThresholdScale::kRelative
                     ? cluster::ThresholdMode::kRelative
                     : cluster::ThresholdMode::kAbsolute;
  options.relative_floor = agreement.relative_floor;
  return options;
}

// --- Quorum -----------------------------------------------------------------

class QuorumStage final : public VoteStage {
 public:
  QuorumStage(size_t module_count, const QuorumParams& params,
              NoQuorumPolicy policy)
      : module_count_(module_count),
        required_(std::max<size_t>(
            params.min_count,
            static_cast<size_t>(std::ceil(
                params.fraction * static_cast<double>(module_count) - 1e-9)))),
        policy_(policy) {}

  std::string_view name() const override { return "quorum"; }

  Status Run(VoteContext& context) const override {
    if (context.present_count >= required_) return Status::Ok();
    switch (policy_) {
      case NoQuorumPolicy::kEmitNothing:
        context.Fault(RoundOutcome::kNoOutput);
        break;
      case NoQuorumPolicy::kRevertLast:
        context.Fault(RoundOutcome::kRevertedLast);
        break;
      case NoQuorumPolicy::kRaise:
        context.Fault(
            RoundOutcome::kError,
            NoQuorumError(StrFormat("%zu of %zu candidates, %zu required",
                                    context.present_count, module_count_,
                                    required_)));
        break;
    }
    return Status::Ok();
  }

 private:
  size_t module_count_;
  size_t required_;
  NoQuorumPolicy policy_;
};

// --- Value-based exclusion --------------------------------------------------

class ExclusionStage final : public VoteStage {
 public:
  explicit ExclusionStage(const ExclusionParams& params) : params_(params) {}

  std::string_view name() const override { return "exclusion"; }

  Status Run(VoteContext& context) const override {
    ComputeExclusionsInto(context.present_values, params_,
                          context.excluded_present);
    context.included_index.clear();
    context.included_values.clear();
    for (size_t k = 0; k < context.present_count; ++k) {
      if (!context.excluded_present[k]) {
        context.included_index.push_back(context.present_index[k]);
        context.included_values.push_back(context.present_values[k]);
      }
    }
    return Status::Ok();
  }

 private:
  ExclusionParams params_;
};

// --- Clustering gate (AVOC bootstrap / COV) ---------------------------------

class ClusteringStage final : public VoteStage {
 public:
  ClusteringStage(ClusteringMode mode, const cluster::GroupingOptions& options)
      : mode_(mode), options_(options) {}

  std::string_view name() const override { return "clustering"; }

  Status Run(VoteContext& context) const override {
    context.in_winning_cluster.assign(context.included_values.size(), true);
    if (!ShouldCluster(context) || context.included_values.empty()) {
      return Status::Ok();
    }
    return context.ApplyClustering(options_);
  }

 private:
  bool ShouldCluster(const VoteContext& context) const {
    switch (mode_) {
      case ClusteringMode::kOff:
        return false;
      case ClusteringMode::kAlways:
        return true;
      case ClusteringMode::kBootstrap:
        // §5: "the clustering approach should be used when all records are
        // 1 (indicating a new set) or 0 (indicating a failure of the
        // system or an extreme data spike)".
        return context.ledger->AllRecordsAre(1.0) ||
               context.ledger->AllRecordsAre(0.0);
    }
    return false;
  }

  ClusteringMode mode_;
  cluster::GroupingOptions options_;
};

// --- Agreement scores -------------------------------------------------------

class AgreementStage final : public VoteStage {
 public:
  explicit AgreementStage(const AgreementParams& params) : params_(params) {}

  std::string_view name() const override { return "agreement"; }

  Status Run(VoteContext& context) const override {
    AgreementScoresInto(context.included_values, params_, context.scores);
    return Status::Ok();
  }

 private:
  AgreementParams params_;
};

// --- Module elimination (ME) ------------------------------------------------

class EliminationStage final : public VoteStage {
 public:
  EliminationStage(bool enabled, double margin)
      : enabled_(enabled), margin_(margin) {}

  std::string_view name() const override { return "elimination"; }

  Status Run(VoteContext& context) const override {
    context.eliminated_included.assign(context.included_values.size(), false);
    if (!enabled_ || context.included_values.size() <= 1) return Status::Ok();
    double mean_record = 0.0;
    for (const size_t m : context.included_index) {
      mean_record += context.ledger->record(m);
    }
    mean_record /= static_cast<double>(context.included_index.size());
    for (size_t k = 0; k < context.included_index.size(); ++k) {
      // Strictly below average (minus the rejoin slack): at least one
      // candidate always survives.
      context.eliminated_included[k] =
          context.ledger->record(context.included_index[k]) <
          mean_record - margin_ - 1e-12;
    }
    return Status::Ok();
  }

 private:
  bool enabled_;
  double margin_;
};

// --- Round weights ----------------------------------------------------------

class WeightingStage final : public VoteStage {
 public:
  WeightingStage(RoundWeighting weighting, ClusteringMode clustering,
                 const cluster::GroupingOptions& options)
      : weighting_(weighting), clustering_(clustering), options_(options) {}

  std::string_view name() const override { return "weighting"; }

  Status Run(VoteContext& context) const override {
    const size_t count = context.included_values.size();
    context.weights.assign(count, 0.0);
    context.weight_sum = 0.0;
    for (size_t k = 0; k < count; ++k) {
      if (context.eliminated_included[k] || !context.in_winning_cluster[k]) {
        continue;
      }
      context.weights[k] = BaseWeight(context, k);
      context.weight_sum += context.weights[k];
    }

    // Zero-weight fallback.  §5: engines fall back to an unweighted
    // approach "when the weights become 0 due to severe issues with the
    // data"; with clustering enabled the clustering step itself is the
    // fallback.
    if (context.weight_sum <= 0.0 && count > 0) {
      if (clustering_ != ClusteringMode::kOff && !context.used_clustering) {
        AVOC_RETURN_IF_ERROR(context.ApplyClustering(options_));
      }
      for (size_t k = 0; k < count; ++k) {
        context.weights[k] = context.in_winning_cluster[k] ? 1.0 : 0.0;
        context.weight_sum += context.weights[k];
      }
    }
    return Status::Ok();
  }

 private:
  double BaseWeight(const VoteContext& context, size_t k) const {
    switch (weighting_) {
      case RoundWeighting::kUniform:
        return 1.0;
      case RoundWeighting::kHistory:
        return context.ledger->record(context.included_index[k]);
      case RoundWeighting::kAgreement:
        return context.scores[k];
      case RoundWeighting::kCombined:
        return context.ledger->record(context.included_index[k]) *
               context.scores[k];
    }
    return 0.0;
  }

  RoundWeighting weighting_;
  ClusteringMode clustering_;
  cluster::GroupingOptions options_;
};

// --- Collation --------------------------------------------------------------

class CollationStage final : public VoteStage {
 public:
  explicit CollationStage(Collation method) : method_(method) {}

  std::string_view name() const override { return "collation"; }

  Status Run(VoteContext& context) const override {
    AVOC_ASSIGN_OR_RETURN(
        const double output,
        Collate(method_, context.included_values, context.weights,
                context.previous_output));
    context.output = output;
    return Status::Ok();
  }

 private:
  Collation method_;
};

// --- Majority check ---------------------------------------------------------

class MajorityStage final : public VoteStage {
 public:
  MajorityStage(const AgreementParams& params, NoMajorityPolicy policy)
      : params_(params), policy_(policy) {}

  std::string_view name() const override { return "majority"; }

  Status Run(VoteContext& context) const override {
    const size_t largest_group = LargestAgreementGroup(
        context.included_values, params_, context.majority_scratch);
    context.had_majority =
        2 * largest_group > context.included_values.size();
    if (context.had_majority) return Status::Ok();
    switch (policy_) {
      case NoMajorityPolicy::kAccept:
        break;
      case NoMajorityPolicy::kEmitNothing:
        context.Fault(RoundOutcome::kNoOutput);
        break;
      case NoMajorityPolicy::kRevertLast:
        context.Fault(RoundOutcome::kRevertedLast);
        break;
      case NoMajorityPolicy::kRaise:
        context.Fault(
            RoundOutcome::kError,
            NoMajorityError(StrFormat(
                "largest agreement group %zu of %zu candidates",
                largest_group, context.included_values.size())));
        break;
    }
    return Status::Ok();
  }

 private:
  AgreementParams params_;
  NoMajorityPolicy policy_;
};

// --- History update ---------------------------------------------------------

class HistoryUpdateStage final : public VoteStage {
 public:
  explicit HistoryUpdateStage(const AgreementParams& params)
      : params_(params) {}

  std::string_view name() const override { return "history"; }

  Status Run(VoteContext& context) const override {
    // Every *present* module is scored against the voted output, including
    // excluded and eliminated ones ("even if discarded in the voting
    // itself"), so discarded modules can rehabilitate.
    context.output_agreement.assign(context.module_count, 0.0);
    for (size_t k = 0; k < context.present_count; ++k) {
      context.output_agreement[context.present_index[k]] =
          AgreementScore(context.present_values[k], *context.output, params_);
    }
    return context.ledger->Update(context.output_agreement, context.present);
  }

 private:
  AgreementParams params_;
};

}  // namespace

void VoteContext::Begin(const Round& round, const EngineConfig& engine_config,
                        HistoryLedger& engine_ledger,
                        std::optional<double> previous) {
  BeginCommon(round.size(), engine_config, engine_ledger, previous);
  for (size_t i = 0; i < module_count; ++i) {
    if (round[i].has_value()) {
      present[i] = true;
      present_index.push_back(i);
      present_values.push_back(*round[i]);
    }
  }
  present_count = present_index.size();
}

void VoteContext::Begin(RoundSpan round, const EngineConfig& engine_config,
                        HistoryLedger& engine_ledger,
                        std::optional<double> previous) {
  BeginCommon(round.size(), engine_config, engine_ledger, previous);
  for (size_t i = 0; i < module_count; ++i) {
    if (round.present[i] != 0) {
      present[i] = true;
      present_index.push_back(i);
      present_values.push_back(round.values[i]);
    }
  }
  present_count = present_index.size();
}

void VoteContext::Begin(std::span<const double> values,
                        const EngineConfig& engine_config,
                        HistoryLedger& engine_ledger,
                        std::optional<double> previous) {
  BeginCommon(values.size(), engine_config, engine_ledger, previous);
  present.assign(module_count, true);
  for (size_t i = 0; i < module_count; ++i) {
    present_index.push_back(i);
    present_values.push_back(values[i]);
  }
  present_count = module_count;
}

void VoteContext::BeginCommon(size_t modules,
                              const EngineConfig& engine_config,
                              HistoryLedger& engine_ledger,
                              std::optional<double> previous) {
  config = &engine_config;
  ledger = &engine_ledger;
  module_count = modules;
  previous_output = previous;

  present_index.clear();
  present_values.clear();
  present.assign(module_count, false);
  present_count = 0;

  excluded_present.clear();
  included_index.clear();
  included_values.clear();
  used_clustering = false;
  in_winning_cluster.clear();
  scores.clear();
  eliminated_included.clear();
  weights.clear();
  weight_sum = 0.0;
  output.reset();
  had_majority = true;
  fault.reset();
  fault_status = Status::Ok();
}

void VoteContext::Fault(RoundOutcome outcome, Status status) {
  fault = outcome;
  fault_status = std::move(status);
}

Status VoteContext::ApplyClustering(const cluster::GroupingOptions& options) {
  const cluster::GroupingResult grouping =
      cluster::GroupByThreshold(included_values, options);
  const double* prev =
      previous_output.has_value() ? &*previous_output : nullptr;
  AVOC_ASSIGN_OR_RETURN(
      const cluster::Group winner,
      cluster::SelectWinningGroup(grouping, included_values, prev));
  std::fill(in_winning_cluster.begin(), in_winning_cluster.end(), false);
  for (const size_t member : winner.members) {
    in_winning_cluster[member] = true;
  }
  used_clustering = true;
  return Status::Ok();
}

void StageTraceObserver::OnRoundBegin(size_t round_index,
                                      const VoteContext& context) {
  (void)context;
  round_index_ = round_index;
  entries_.clear();
}

void StageTraceObserver::OnStageDone(std::string_view stage,
                                     const VoteContext& context) {
  StageTraceEntry entry;
  entry.stage = std::string(stage);
  entry.candidates = context.included_values.size();
  entry.weight_sum = context.weight_sum;
  entry.used_clustering = context.used_clustering;
  entry.faulted = context.faulted();
  entries_.push_back(std::move(entry));
}

StagePipeline::Ptr StagePipeline::Compile(size_t module_count,
                                          const EngineConfig& config) {
  const cluster::GroupingOptions grouping =
      MirroredGroupingOptions(config.agreement);
  auto pipeline = std::shared_ptr<StagePipeline>(new StagePipeline());
  auto& stages = pipeline->stages_;
  stages.reserve(9);
  stages.push_back(std::make_unique<QuorumStage>(module_count, config.quorum,
                                                 config.on_no_quorum));
  stages.push_back(std::make_unique<ExclusionStage>(config.exclusion));
  stages.push_back(
      std::make_unique<ClusteringStage>(config.clustering, grouping));
  stages.push_back(std::make_unique<AgreementStage>(config.agreement));
  stages.push_back(std::make_unique<EliminationStage>(
      config.module_elimination, config.elimination_margin));
  stages.push_back(std::make_unique<WeightingStage>(
      config.weighting, config.clustering, grouping));
  stages.push_back(std::make_unique<CollationStage>(config.collation));
  stages.push_back(
      std::make_unique<MajorityStage>(config.agreement, config.on_no_majority));
  stages.push_back(std::make_unique<HistoryUpdateStage>(config.agreement));
  return pipeline;
}

std::vector<std::string_view> StagePipeline::StageNames() const {
  std::vector<std::string_view> names;
  names.reserve(stages_.size());
  for (const auto& stage : stages_) names.push_back(stage->name());
  return names;
}

}  // namespace avoc::core
