#include "core/stages.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace avoc::core {
namespace {

cluster::GroupingOptions MirroredGroupingOptions(
    const AgreementParams& agreement) {
  // §5: the clustering threshold "is selected to mirror the parameters of
  // the given algorithm".
  cluster::GroupingOptions options;
  options.threshold = agreement.error;
  options.mode = agreement.scale == ThresholdScale::kRelative
                     ? cluster::ThresholdMode::kRelative
                     : cluster::ThresholdMode::kAbsolute;
  options.relative_floor = agreement.relative_floor;
  return options;
}

// --- Stage bodies -----------------------------------------------------------
//
// Each stage's work is one free function over (context, compiled
// constants).  The virtual VoteStage chain (the observed path) and
// StagePipeline::RunRound (the batch path) both call these, so the two
// execution paths are bit-identical by construction.

// Quorum.
Status RunQuorumStage(VoteContext& context, size_t module_count,
                      size_t required, NoQuorumPolicy policy) {
  if (context.present_count >= required) return Status::Ok();
  switch (policy) {
    case NoQuorumPolicy::kEmitNothing:
      context.Fault(RoundOutcome::kNoOutput);
      break;
    case NoQuorumPolicy::kRevertLast:
      context.Fault(RoundOutcome::kRevertedLast);
      break;
    case NoQuorumPolicy::kRaise:
      context.Fault(
          RoundOutcome::kError,
          NoQuorumError(StrFormat("%zu of %zu candidates, %zu required",
                                  context.present_count, module_count,
                                  required)));
      break;
  }
  return Status::Ok();
}

// Value-based exclusion.
Status RunExclusionStage(VoteContext& context, const ExclusionParams& params) {
  context.excluded_present.resize(context.present_count);
  ComputeExclusionMask(context.present_values, params,
                       context.exclusion_scratch,
                       context.excluded_present.data());
  context.included_index.clear();
  context.included_values.clear();
  for (size_t k = 0; k < context.present_count; ++k) {
    if (context.excluded_present[k] == 0) {
      context.included_index.push_back(context.present_index[k]);
      context.included_values.push_back(context.present_values[k]);
    }
  }
  return Status::Ok();
}

// Clustering gate (AVOC bootstrap / COV).
Status RunClusteringStage(VoteContext& context, ClusteringMode mode,
                          const cluster::GroupingOptions& options) {
  context.in_winning_cluster.assign(context.included_values.size(),
                                    uint8_t{1});
  bool should_cluster = false;
  switch (mode) {
    case ClusteringMode::kOff:
      break;
    case ClusteringMode::kAlways:
      should_cluster = true;
      break;
    case ClusteringMode::kBootstrap:
      // §5: "the clustering approach should be used when all records are
      // 1 (indicating a new set) or 0 (indicating a failure of the
      // system or an extreme data spike)".
      should_cluster = context.ledger->AllRecordsAre(1.0) ||
                       context.ledger->AllRecordsAre(0.0);
      break;
  }
  if (!should_cluster || context.included_values.empty()) {
    return Status::Ok();
  }
  return context.ApplyClustering(options);
}

// Agreement scores.
Status RunAgreementStage(VoteContext& context, const AgreementParams& params) {
  AgreementScoresInto(context.included_values, params, context.scores,
                      context.agreement_scratch);
  return Status::Ok();
}

// Module elimination (ME).
Status RunEliminationStage(VoteContext& context, bool enabled, double margin) {
  context.eliminated_included.assign(context.included_values.size(),
                                     uint8_t{0});
  if (!enabled || context.included_values.size() <= 1) return Status::Ok();
  const std::span<const double> records = context.ledger->records();
  double mean_record = 0.0;
  for (const size_t m : context.included_index) {
    mean_record += records[m];
  }
  mean_record /= static_cast<double>(context.included_index.size());
  const double cutoff = mean_record - margin - 1e-12;
  for (size_t k = 0; k < context.included_index.size(); ++k) {
    // Strictly below average (minus the rejoin slack): at least one
    // candidate always survives.
    context.eliminated_included[k] = records[context.included_index[k]] < cutoff;
  }
  return Status::Ok();
}

// Round weights.
Status RunWeightingStage(VoteContext& context, RoundWeighting weighting,
                         ClusteringMode clustering,
                         const cluster::GroupingOptions& options) {
  const size_t count = context.included_values.size();
  context.weights.assign(count, 0.0);
  context.weight_sum = 0.0;
  const std::span<const double> records = context.ledger->records();
  for (size_t k = 0; k < count; ++k) {
    if (context.eliminated_included[k] || !context.in_winning_cluster[k]) {
      continue;
    }
    double weight = 0.0;
    switch (weighting) {
      case RoundWeighting::kUniform:
        weight = 1.0;
        break;
      case RoundWeighting::kHistory:
        weight = records[context.included_index[k]];
        break;
      case RoundWeighting::kAgreement:
        weight = context.scores[k];
        break;
      case RoundWeighting::kCombined:
        weight = records[context.included_index[k]] * context.scores[k];
        break;
    }
    context.weights[k] = weight;
    context.weight_sum += weight;
  }

  // Zero-weight fallback.  §5: engines fall back to an unweighted
  // approach "when the weights become 0 due to severe issues with the
  // data"; with clustering enabled the clustering step itself is the
  // fallback.
  if (context.weight_sum <= 0.0 && count > 0) {
    if (clustering != ClusteringMode::kOff && !context.used_clustering) {
      AVOC_RETURN_IF_ERROR(context.ApplyClustering(options));
    }
    for (size_t k = 0; k < count; ++k) {
      context.weights[k] = context.in_winning_cluster[k] ? 1.0 : 0.0;
      context.weight_sum += context.weights[k];
    }
  }
  return Status::Ok();
}

// Collation.
Status RunCollationStage(VoteContext& context, Collation method) {
  AVOC_ASSIGN_OR_RETURN(
      const double output,
      Collate(method, context.included_values, context.weights,
              context.previous_output, context.mean_scratch));
  context.output = output;
  return Status::Ok();
}

// Majority check.
Status RunMajorityStage(VoteContext& context, const AgreementParams& params,
                        NoMajorityPolicy policy) {
  const size_t largest_group = LargestAgreementGroup(
      context.included_values, params, context.majority_scratch);
  context.had_majority =
      2 * largest_group > context.included_values.size();
  if (context.had_majority) return Status::Ok();
  switch (policy) {
    case NoMajorityPolicy::kAccept:
      break;
    case NoMajorityPolicy::kEmitNothing:
      context.Fault(RoundOutcome::kNoOutput);
      break;
    case NoMajorityPolicy::kRevertLast:
      context.Fault(RoundOutcome::kRevertedLast);
      break;
    case NoMajorityPolicy::kRaise:
      context.Fault(
          RoundOutcome::kError,
          NoMajorityError(StrFormat(
              "largest agreement group %zu of %zu candidates",
              largest_group, context.included_values.size())));
      break;
  }
  return Status::Ok();
}

// History update.
Status RunHistoryStage(VoteContext& context, const AgreementParams& params) {
  // Every *present* module is scored against the voted output, including
  // excluded and eliminated ones ("even if discarded in the voting
  // itself"), so discarded modules can rehabilitate.  The scores come out
  // of the dense pivot kernel, then scatter to module positions.
  context.output_agreement.assign(context.module_count, 0.0);
  if (context.config->history.rule == HistoryRule::kNone) {
    // Stateless presets: the ledger ignores the agreement column, so the
    // pivot scores are dead work — keep the Update call (round counting
    // and arity check), skip the scoring.
    return context.ledger->Update(
        context.output_agreement,
        std::span<const uint8_t>(context.present.data(),
                                 context.module_count));
  }
  std::vector<double>& dense = context.agreement_scratch.row;
  dense.resize(context.present_count);
  kernels::AgreementWithPivotKernel(context.present_values.data(),
                                    context.present_count, *context.output,
                                    params, dense.data());
  for (size_t k = 0; k < context.present_count; ++k) {
    context.output_agreement[context.present_index[k]] = dense[k];
  }
  return context.ledger->Update(
      context.output_agreement,
      std::span<const uint8_t>(context.present.data(), context.module_count));
}

// --- Virtual stage wrappers -------------------------------------------------

class QuorumStage final : public VoteStage {
 public:
  QuorumStage(size_t module_count, size_t required, NoQuorumPolicy policy)
      : module_count_(module_count), required_(required), policy_(policy) {}

  std::string_view name() const override { return "quorum"; }

  Status Run(VoteContext& context) const override {
    return RunQuorumStage(context, module_count_, required_, policy_);
  }

 private:
  size_t module_count_;
  size_t required_;
  NoQuorumPolicy policy_;
};

class ExclusionStage final : public VoteStage {
 public:
  explicit ExclusionStage(const ExclusionParams& params) : params_(params) {}

  std::string_view name() const override { return "exclusion"; }

  Status Run(VoteContext& context) const override {
    return RunExclusionStage(context, params_);
  }

 private:
  ExclusionParams params_;
};

class ClusteringStage final : public VoteStage {
 public:
  ClusteringStage(ClusteringMode mode, const cluster::GroupingOptions& options)
      : mode_(mode), options_(options) {}

  std::string_view name() const override { return "clustering"; }

  Status Run(VoteContext& context) const override {
    return RunClusteringStage(context, mode_, options_);
  }

 private:
  ClusteringMode mode_;
  cluster::GroupingOptions options_;
};

class AgreementStage final : public VoteStage {
 public:
  explicit AgreementStage(const AgreementParams& params) : params_(params) {}

  std::string_view name() const override { return "agreement"; }

  Status Run(VoteContext& context) const override {
    return RunAgreementStage(context, params_);
  }

 private:
  AgreementParams params_;
};

class EliminationStage final : public VoteStage {
 public:
  EliminationStage(bool enabled, double margin)
      : enabled_(enabled), margin_(margin) {}

  std::string_view name() const override { return "elimination"; }

  Status Run(VoteContext& context) const override {
    return RunEliminationStage(context, enabled_, margin_);
  }

 private:
  bool enabled_;
  double margin_;
};

class WeightingStage final : public VoteStage {
 public:
  WeightingStage(RoundWeighting weighting, ClusteringMode clustering,
                 const cluster::GroupingOptions& options)
      : weighting_(weighting), clustering_(clustering), options_(options) {}

  std::string_view name() const override { return "weighting"; }

  Status Run(VoteContext& context) const override {
    return RunWeightingStage(context, weighting_, clustering_, options_);
  }

 private:
  RoundWeighting weighting_;
  ClusteringMode clustering_;
  cluster::GroupingOptions options_;
};

class CollationStage final : public VoteStage {
 public:
  explicit CollationStage(Collation method) : method_(method) {}

  std::string_view name() const override { return "collation"; }

  Status Run(VoteContext& context) const override {
    return RunCollationStage(context, method_);
  }

 private:
  Collation method_;
};

class MajorityStage final : public VoteStage {
 public:
  MajorityStage(const AgreementParams& params, NoMajorityPolicy policy)
      : params_(params), policy_(policy) {}

  std::string_view name() const override { return "majority"; }

  Status Run(VoteContext& context) const override {
    return RunMajorityStage(context, params_, policy_);
  }

 private:
  AgreementParams params_;
  NoMajorityPolicy policy_;
};

class HistoryUpdateStage final : public VoteStage {
 public:
  explicit HistoryUpdateStage(const AgreementParams& params)
      : params_(params) {}

  std::string_view name() const override { return "history"; }

  Status Run(VoteContext& context) const override {
    return RunHistoryStage(context, params_);
  }

 private:
  AgreementParams params_;
};

}  // namespace

void VoteContext::Begin(const Round& round, const EngineConfig& engine_config,
                        HistoryLedger& engine_ledger,
                        std::optional<double> previous) {
  BeginCommon(round.size(), engine_config, engine_ledger, previous);
  for (size_t i = 0; i < module_count; ++i) {
    if (round[i].has_value()) {
      present[i] = 1;
      present_index.push_back(i);
      present_values.push_back(*round[i]);
    }
  }
  present_count = present_index.size();
}

void VoteContext::Begin(RoundSpan round, const EngineConfig& engine_config,
                        HistoryLedger& engine_ledger,
                        std::optional<double> previous) {
  BeginCommon(round.size(), engine_config, engine_ledger, previous);
  for (size_t i = 0; i < module_count; ++i) {
    if (round.present[i] != 0) {
      present[i] = 1;
      present_index.push_back(i);
      present_values.push_back(round.values[i]);
    }
  }
  present_count = present_index.size();
}

void VoteContext::Begin(std::span<const double> values,
                        const EngineConfig& engine_config,
                        HistoryLedger& engine_ledger,
                        std::optional<double> previous) {
  BeginCommon(values.size(), engine_config, engine_ledger, previous);
  present.assign(module_count, uint8_t{1});
  for (size_t i = 0; i < module_count; ++i) {
    present_index.push_back(i);
    present_values.push_back(values[i]);
  }
  present_count = module_count;
}

void VoteContext::BeginCommon(size_t modules,
                              const EngineConfig& engine_config,
                              HistoryLedger& engine_ledger,
                              std::optional<double> previous) {
  config = &engine_config;
  ledger = &engine_ledger;
  module_count = modules;
  previous_output = previous;

  present_index.clear();
  present_values.clear();
  present.assign(module_count, uint8_t{0});
  present_count = 0;

  excluded_present.clear();
  included_index.clear();
  included_values.clear();
  used_clustering = false;
  in_winning_cluster.clear();
  scores.clear();
  eliminated_included.clear();
  weights.clear();
  weight_sum = 0.0;
  output.reset();
  had_majority = true;
  fault.reset();
  fault_status = Status::Ok();
}

void VoteContext::Fault(RoundOutcome outcome, Status status) {
  fault = outcome;
  fault_status = std::move(status);
}

Status VoteContext::ApplyClustering(const cluster::GroupingOptions& options) {
  const cluster::GroupingResult grouping =
      cluster::GroupByThreshold(included_values, options);
  const double* prev =
      previous_output.has_value() ? &*previous_output : nullptr;
  AVOC_ASSIGN_OR_RETURN(
      const cluster::Group winner,
      cluster::SelectWinningGroup(grouping, included_values, prev));
  std::fill(in_winning_cluster.begin(), in_winning_cluster.end(), uint8_t{0});
  for (const size_t member : winner.members) {
    in_winning_cluster[member] = 1;
  }
  used_clustering = true;
  return Status::Ok();
}

void StageTraceObserver::OnRoundBegin(size_t round_index,
                                      const VoteContext& context) {
  (void)context;
  round_index_ = round_index;
  entries_.clear();
}

void StageTraceObserver::OnStageDone(std::string_view stage,
                                     const VoteContext& context) {
  StageTraceEntry entry;
  entry.stage = std::string(stage);
  entry.candidates = context.included_values.size();
  entry.weight_sum = context.weight_sum;
  entry.used_clustering = context.used_clustering;
  entry.faulted = context.faulted();
  entries_.push_back(std::move(entry));
}

StagePipeline::Ptr StagePipeline::Compile(size_t module_count,
                                          const EngineConfig& config) {
  auto pipeline = std::shared_ptr<StagePipeline>(new StagePipeline());

  RoundPlan& plan = pipeline->plan_;
  plan.module_count = module_count;
  plan.quorum_required = std::max<size_t>(
      config.quorum.min_count,
      static_cast<size_t>(
          std::ceil(config.quorum.fraction * static_cast<double>(module_count) -
                    1e-9)));
  plan.on_no_quorum = config.on_no_quorum;
  plan.exclusion = config.exclusion;
  plan.clustering = config.clustering;
  plan.grouping = MirroredGroupingOptions(config.agreement);
  plan.agreement = config.agreement;
  plan.module_elimination = config.module_elimination;
  plan.elimination_margin = config.elimination_margin;
  plan.weighting = config.weighting;
  plan.collation = config.collation;
  plan.on_no_majority = config.on_no_majority;

  auto& stages = pipeline->stages_;
  stages.reserve(9);
  stages.push_back(std::make_unique<QuorumStage>(
      module_count, plan.quorum_required, plan.on_no_quorum));
  stages.push_back(std::make_unique<ExclusionStage>(plan.exclusion));
  stages.push_back(
      std::make_unique<ClusteringStage>(plan.clustering, plan.grouping));
  stages.push_back(std::make_unique<AgreementStage>(plan.agreement));
  stages.push_back(std::make_unique<EliminationStage>(
      plan.module_elimination, plan.elimination_margin));
  stages.push_back(std::make_unique<WeightingStage>(
      plan.weighting, plan.clustering, plan.grouping));
  stages.push_back(std::make_unique<CollationStage>(plan.collation));
  stages.push_back(
      std::make_unique<MajorityStage>(plan.agreement, plan.on_no_majority));
  stages.push_back(std::make_unique<HistoryUpdateStage>(plan.agreement));
  return pipeline;
}

Status StagePipeline::RunRound(VoteContext& context) const {
  // The same nine bodies stages() dispatches virtually, inlined into one
  // call frame with the fault short-circuit between steps.
  const RoundPlan& plan = plan_;
  AVOC_RETURN_IF_ERROR(RunQuorumStage(context, plan.module_count,
                                      plan.quorum_required,
                                      plan.on_no_quorum));
  if (context.faulted()) return Status::Ok();
  AVOC_RETURN_IF_ERROR(RunExclusionStage(context, plan.exclusion));
  if (context.faulted()) return Status::Ok();
  AVOC_RETURN_IF_ERROR(
      RunClusteringStage(context, plan.clustering, plan.grouping));
  if (context.faulted()) return Status::Ok();
  AVOC_RETURN_IF_ERROR(RunAgreementStage(context, plan.agreement));
  if (context.faulted()) return Status::Ok();
  AVOC_RETURN_IF_ERROR(RunEliminationStage(context, plan.module_elimination,
                                           plan.elimination_margin));
  if (context.faulted()) return Status::Ok();
  AVOC_RETURN_IF_ERROR(RunWeightingStage(context, plan.weighting,
                                         plan.clustering, plan.grouping));
  if (context.faulted()) return Status::Ok();
  AVOC_RETURN_IF_ERROR(RunCollationStage(context, plan.collation));
  if (context.faulted()) return Status::Ok();
  AVOC_RETURN_IF_ERROR(
      RunMajorityStage(context, plan.agreement, plan.on_no_majority));
  if (context.faulted()) return Status::Ok();
  return RunHistoryStage(context, plan.agreement);
}

std::vector<std::string_view> StagePipeline::StageNames() const {
  std::vector<std::string_view> names;
  names.reserve(stages_.size());
  for (const auto& stage : stages_) names.push_back(stage->name());
  return names;
}

}  // namespace avoc::core
