#include "core/engine.h"

#include <algorithm>
#include <cmath>

#include "cluster/grouping.h"
#include "util/strings.h"

namespace avoc::core {
namespace {

cluster::GroupingOptions MirroredGroupingOptions(
    const AgreementParams& agreement) {
  // §5: the clustering threshold "is selected to mirror the parameters of
  // the given algorithm".
  cluster::GroupingOptions options;
  options.threshold = agreement.error;
  options.mode = agreement.scale == ThresholdScale::kRelative
                     ? cluster::ThresholdMode::kRelative
                     : cluster::ThresholdMode::kAbsolute;
  options.relative_floor = agreement.relative_floor;
  return options;
}

}  // namespace

Status EngineConfig::Validate() const {
  if (agreement.error <= 0.0) {
    return InvalidArgumentError("agreement error threshold must be > 0");
  }
  if (agreement.mode == AgreementMode::kSoftDynamic &&
      agreement.soft_multiple < 1.0) {
    return InvalidArgumentError("soft threshold multiple must be >= 1");
  }
  if (history.rule == HistoryRule::kRewardPenalty) {
    if (history.reward < 0.0 || history.reward > 1.0 ||
        history.penalty < 0.0 || history.penalty > 1.0) {
      return InvalidArgumentError("reward/penalty must lie in [0,1]");
    }
  }
  if (history.missing_penalty < 0.0 || history.missing_penalty > 1.0) {
    return InvalidArgumentError("missing penalty must lie in [0,1]");
  }
  if (quorum.fraction <= 0.0 || quorum.fraction > 1.0) {
    return InvalidArgumentError("quorum fraction must lie in (0,1]");
  }
  if (quorum.min_count < 1) {
    return InvalidArgumentError("quorum min count must be >= 1");
  }
  if (exclusion.mode != ExclusionMode::kNone && exclusion.threshold <= 0.0) {
    return InvalidArgumentError("exclusion threshold must be > 0");
  }
  if (elimination_margin < 0.0 || elimination_margin >= 1.0) {
    return InvalidArgumentError("elimination margin must lie in [0,1)");
  }
  if ((weighting == RoundWeighting::kHistory ||
       weighting == RoundWeighting::kCombined) &&
      history.rule == HistoryRule::kNone) {
    return InvalidArgumentError(
        "history-based weighting requires a history rule");
  }
  return Status::Ok();
}

VotingEngine::VotingEngine(size_t module_count, const EngineConfig& config)
    : module_count_(module_count),
      config_(config),
      ledger_(module_count, config.history) {}

Result<VotingEngine> VotingEngine::Create(size_t module_count,
                                          const EngineConfig& config) {
  if (module_count == 0) {
    return InvalidArgumentError("engine needs at least one module");
  }
  AVOC_RETURN_IF_ERROR(config.Validate());
  return VotingEngine(module_count, config);
}

bool VotingEngine::ShouldCluster() const {
  switch (config_.clustering) {
    case ClusteringMode::kOff:
      return false;
    case ClusteringMode::kAlways:
      return true;
    case ClusteringMode::kBootstrap:
      // §5: "the clustering approach should be used when all records are 1
      // (indicating a new set) or 0 (indicating a failure of the system or
      // an extreme data spike)".
      return ledger_.AllRecordsAre(1.0) || ledger_.AllRecordsAre(0.0);
  }
  return false;
}

VoteResult VotingEngine::MakeFaultResult(RoundOutcome fallback_outcome,
                                         Status status,
                                         size_t present_count) const {
  VoteResult result;
  result.present_count = present_count;
  result.weights.assign(module_count_, 0.0);
  result.agreement.assign(module_count_, 0.0);
  result.history.assign(ledger_.records().begin(), ledger_.records().end());
  result.excluded.assign(module_count_, false);
  result.eliminated.assign(module_count_, false);
  switch (fallback_outcome) {
    case RoundOutcome::kRevertedLast:
      if (last_output_.has_value()) {
        result.outcome = RoundOutcome::kRevertedLast;
        result.value = last_output_;
      } else {
        // Nothing to revert to: degrade to no-output.
        result.outcome = RoundOutcome::kNoOutput;
      }
      break;
    case RoundOutcome::kError:
      result.outcome = RoundOutcome::kError;
      result.status = std::move(status);
      break;
    default:
      result.outcome = RoundOutcome::kNoOutput;
      break;
  }
  return result;
}

Result<VoteResult> VotingEngine::CastVote(std::span<const double> values) {
  Round round;
  round.reserve(values.size());
  for (const double v : values) round.emplace_back(v);
  return CastVote(round);
}

Result<VoteResult> VotingEngine::CastVote(const Round& round) {
  if (round.size() != module_count_) {
    return InvalidArgumentError(
        StrFormat("round has %zu readings, engine has %zu modules",
                  round.size(), module_count_));
  }
  ++round_index_;

  // --- Gather present candidates ------------------------------------------
  std::vector<size_t> present_index;  // module index of each candidate
  std::vector<double> present_values;
  std::vector<bool> present(module_count_, false);
  for (size_t i = 0; i < module_count_; ++i) {
    if (round[i].has_value()) {
      present[i] = true;
      present_index.push_back(i);
      present_values.push_back(*round[i]);
    }
  }
  const size_t present_count = present_index.size();

  // --- Quorum ---------------------------------------------------------------
  const size_t required = std::max<size_t>(
      config_.quorum.min_count,
      static_cast<size_t>(std::ceil(
          config_.quorum.fraction * static_cast<double>(module_count_) -
          1e-9)));
  if (present_count < required) {
    switch (config_.on_no_quorum) {
      case NoQuorumPolicy::kEmitNothing:
        return MakeFaultResult(RoundOutcome::kNoOutput, Status::Ok(),
                               present_count);
      case NoQuorumPolicy::kRevertLast:
        return MakeFaultResult(RoundOutcome::kRevertedLast, Status::Ok(),
                               present_count);
      case NoQuorumPolicy::kRaise:
        return MakeFaultResult(
            RoundOutcome::kError,
            NoQuorumError(StrFormat("%zu of %zu candidates, %zu required",
                                    present_count, module_count_, required)),
            present_count);
    }
  }

  // --- Value-based exclusion -------------------------------------------------
  const std::vector<bool> excluded_present =
      ComputeExclusions(present_values, config_.exclusion);
  std::vector<size_t> included_index;   // module index per included candidate
  std::vector<double> included_values;  // candidate values after exclusion
  for (size_t k = 0; k < present_count; ++k) {
    if (!excluded_present[k]) {
      included_index.push_back(present_index[k]);
      included_values.push_back(present_values[k]);
    }
  }

  // --- Clustering gate (AVOC bootstrap / COV) --------------------------------
  bool used_clustering = false;
  std::vector<bool> in_winning_cluster(included_values.size(), true);
  auto apply_clustering = [&]() -> Status {
    const cluster::GroupingResult grouping = cluster::GroupByThreshold(
        included_values, MirroredGroupingOptions(config_.agreement));
    const double* prev =
        last_output_.has_value() ? &*last_output_ : nullptr;
    AVOC_ASSIGN_OR_RETURN(
        const cluster::Group winner,
        cluster::SelectWinningGroup(grouping, included_values, prev));
    std::fill(in_winning_cluster.begin(), in_winning_cluster.end(), false);
    for (const size_t member : winner.members) {
      in_winning_cluster[member] = true;
    }
    used_clustering = true;
    return Status::Ok();
  };
  if (ShouldCluster() && !included_values.empty()) {
    AVOC_RETURN_IF_ERROR(apply_clustering());
  }

  // --- Agreement scores -------------------------------------------------------
  const std::vector<double> scores =
      AgreementScores(included_values, config_.agreement);

  // --- Module elimination (ME) -------------------------------------------------
  std::vector<bool> eliminated_included(included_values.size(), false);
  if (config_.module_elimination && included_values.size() > 1) {
    double mean_record = 0.0;
    for (const size_t m : included_index) mean_record += ledger_.record(m);
    mean_record /= static_cast<double>(included_index.size());
    for (size_t k = 0; k < included_index.size(); ++k) {
      // Strictly below average (minus the rejoin slack): at least one
      // candidate always survives.
      eliminated_included[k] =
          ledger_.record(included_index[k]) <
          mean_record - config_.elimination_margin - 1e-12;
    }
  }

  // --- Round weights ------------------------------------------------------------
  std::vector<double> weights(included_values.size(), 0.0);
  auto base_weight = [&](size_t k) {
    switch (config_.weighting) {
      case RoundWeighting::kUniform:
        return 1.0;
      case RoundWeighting::kHistory:
        return ledger_.record(included_index[k]);
      case RoundWeighting::kAgreement:
        return scores[k];
      case RoundWeighting::kCombined:
        return ledger_.record(included_index[k]) * scores[k];
    }
    return 0.0;
  };
  double weight_sum = 0.0;
  for (size_t k = 0; k < included_values.size(); ++k) {
    if (eliminated_included[k] || !in_winning_cluster[k]) continue;
    weights[k] = base_weight(k);
    weight_sum += weights[k];
  }

  // --- Zero-weight fallback -------------------------------------------------------
  // §5: engines fall back to an unweighted approach "when the weights
  // become 0 due to severe issues with the data"; with clustering enabled
  // the clustering step itself is the fallback.
  if (weight_sum <= 0.0 && !included_values.empty()) {
    if (config_.clustering != ClusteringMode::kOff && !used_clustering) {
      AVOC_RETURN_IF_ERROR(apply_clustering());
    }
    for (size_t k = 0; k < included_values.size(); ++k) {
      weights[k] = in_winning_cluster[k] ? 1.0 : 0.0;
      weight_sum += weights[k];
    }
  }

  // --- Majority check ----------------------------------------------------------------
  const size_t largest_group =
      LargestAgreementGroup(included_values, config_.agreement);
  const bool had_majority = 2 * largest_group > included_values.size();
  if (!had_majority) {
    switch (config_.on_no_majority) {
      case NoMajorityPolicy::kAccept:
        break;
      case NoMajorityPolicy::kEmitNothing:
        return MakeFaultResult(RoundOutcome::kNoOutput, Status::Ok(),
                               present_count);
      case NoMajorityPolicy::kRevertLast:
        return MakeFaultResult(RoundOutcome::kRevertedLast, Status::Ok(),
                               present_count);
      case NoMajorityPolicy::kRaise:
        return MakeFaultResult(
            RoundOutcome::kError,
            NoMajorityError(StrFormat(
                "largest agreement group %zu of %zu candidates",
                largest_group, included_values.size())),
            present_count);
    }
  }

  // --- Collation -------------------------------------------------------------------
  AVOC_ASSIGN_OR_RETURN(
      const double output,
      Collate(config_.collation, included_values, weights, last_output_));

  // --- History update ----------------------------------------------------------------
  // Every *present* module is scored against the voted output, including
  // excluded and eliminated ones ("even if discarded in the voting
  // itself"), so discarded modules can rehabilitate.
  std::vector<double> agreement_with_output(module_count_, 0.0);
  for (size_t k = 0; k < present_count; ++k) {
    agreement_with_output[present_index[k]] =
        AgreementScore(present_values[k], output, config_.agreement);
  }
  AVOC_RETURN_IF_ERROR(ledger_.Update(agreement_with_output, present));

  // --- Assemble result ------------------------------------------------------------------
  VoteResult result;
  result.value = output;
  result.outcome = RoundOutcome::kVoted;
  result.used_clustering = used_clustering;
  result.present_count = present_count;
  result.had_majority = had_majority;
  result.weights.assign(module_count_, 0.0);
  result.agreement.assign(module_count_, 0.0);
  result.excluded.assign(module_count_, false);
  result.eliminated.assign(module_count_, false);
  for (size_t k = 0; k < present_count; ++k) {
    result.excluded[present_index[k]] = excluded_present[k];
  }
  for (size_t k = 0; k < included_index.size(); ++k) {
    result.weights[included_index[k]] = weights[k];
    result.agreement[included_index[k]] = scores[k];
    result.eliminated[included_index[k]] = eliminated_included[k];
  }
  result.history.assign(ledger_.records().begin(), ledger_.records().end());
  last_output_ = output;
  return result;
}

Status VotingEngine::RestoreHistory(std::span<const double> records,
                                    size_t rounds) {
  return ledger_.Restore(records, rounds);
}

void VotingEngine::Reset() {
  ledger_.Reset();
  last_output_.reset();
  round_index_ = 0;
}

Result<double> StatelessVote(std::span<const double> values,
                             Collation collation,
                             const ExclusionParams& exclusion) {
  if (values.empty()) return InvalidArgumentError("no candidates");
  const std::vector<bool> excluded = ComputeExclusions(values, exclusion);
  std::vector<double> kept;
  kept.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (!excluded[i]) kept.push_back(values[i]);
  }
  const std::vector<double> weights(kept.size(), 1.0);
  return Collate(collation, kept, weights, std::nullopt);
}

}  // namespace avoc::core
