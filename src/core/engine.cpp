#include "core/engine.h"

#include <algorithm>

#include "util/strings.h"

namespace avoc::core {

VotingEngine::VotingEngine(size_t module_count, const EngineConfig& config)
    : module_count_(module_count),
      config_(config),
      pipeline_(StagePipeline::Compile(module_count, config)),
      ledger_(module_count, config.history) {}

Result<VotingEngine> VotingEngine::Create(size_t module_count,
                                          const EngineConfig& config) {
  if (module_count == 0) {
    return InvalidArgumentError("engine needs at least one module");
  }
  AVOC_RETURN_IF_ERROR(config.Validate());
  return VotingEngine(module_count, config);
}

VoteResult VotingEngine::MakeFaultResult(RoundOutcome fallback_outcome,
                                         Status status,
                                         size_t present_count) const {
  VoteResult result;
  result.present_count = present_count;
  result.weights.assign(module_count_, 0.0);
  result.agreement.assign(module_count_, 0.0);
  result.history.assign(ledger_.records().begin(), ledger_.records().end());
  result.excluded.assign(module_count_, false);
  result.eliminated.assign(module_count_, false);
  switch (fallback_outcome) {
    case RoundOutcome::kRevertedLast:
      if (last_output_.has_value()) {
        result.outcome = RoundOutcome::kRevertedLast;
        result.value = last_output_;
      } else {
        // Nothing to revert to: degrade to no-output.
        result.outcome = RoundOutcome::kNoOutput;
      }
      break;
    case RoundOutcome::kError:
      result.outcome = RoundOutcome::kError;
      result.status = std::move(status);
      break;
    default:
      result.outcome = RoundOutcome::kNoOutput;
      break;
  }
  return result;
}

VoteResult VotingEngine::AssembleVotedResult(
    const VoteContext& context) const {
  VoteResult result;
  result.value = *context.output;
  result.outcome = RoundOutcome::kVoted;
  result.used_clustering = context.used_clustering;
  result.present_count = context.present_count;
  result.had_majority = context.had_majority;
  result.weights.assign(module_count_, 0.0);
  result.agreement.assign(module_count_, 0.0);
  result.excluded.assign(module_count_, false);
  result.eliminated.assign(module_count_, false);
  for (size_t k = 0; k < context.present_count; ++k) {
    result.excluded[context.present_index[k]] = context.excluded_present[k];
  }
  for (size_t k = 0; k < context.included_index.size(); ++k) {
    result.weights[context.included_index[k]] = context.weights[k];
    result.agreement[context.included_index[k]] = context.scores[k];
    result.eliminated[context.included_index[k]] =
        context.eliminated_included[k];
  }
  result.history.assign(ledger_.records().begin(), ledger_.records().end());
  return result;
}

Result<VoteResult> VotingEngine::CastVote(std::span<const double> values) {
  Round round;
  round.reserve(values.size());
  for (const double v : values) round.emplace_back(v);
  return CastVote(round);
}

Result<VoteResult> VotingEngine::CastVote(const Round& round) {
  if (round.size() != module_count_) {
    return InvalidArgumentError(
        StrFormat("round has %zu readings, engine has %zu modules",
                  round.size(), module_count_));
  }
  ++round_index_;

  scratch_.Begin(round, config_, ledger_, last_output_);
  if (observer_ != nullptr) observer_->OnRoundBegin(round_index_, scratch_);
  for (const auto& stage : pipeline_->stages()) {
    AVOC_RETURN_IF_ERROR(stage->Run(scratch_));
    if (observer_ != nullptr) observer_->OnStageDone(stage->name(), scratch_);
    if (scratch_.faulted()) break;
  }

  VoteResult result;
  if (scratch_.faulted()) {
    result = MakeFaultResult(*scratch_.fault, std::move(scratch_.fault_status),
                             scratch_.present_count);
  } else {
    result = AssembleVotedResult(scratch_);
    last_output_ = *scratch_.output;
  }
  if (observer_ != nullptr) observer_->OnRoundEnd(round_index_, result);
  return result;
}

Status VotingEngine::RestoreHistory(std::span<const double> records,
                                    size_t rounds) {
  return ledger_.Restore(records, rounds);
}

void VotingEngine::Reset() {
  ledger_.Reset();
  last_output_.reset();
  round_index_ = 0;
}

Result<double> StatelessVote(std::span<const double> values,
                             Collation collation,
                             const ExclusionParams& exclusion) {
  if (values.empty()) return InvalidArgumentError("no candidates");
  const std::vector<bool> excluded = ComputeExclusions(values, exclusion);
  std::vector<double> kept;
  kept.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (!excluded[i]) kept.push_back(values[i]);
  }
  const std::vector<double> weights(kept.size(), 1.0);
  return Collate(collation, kept, weights, std::nullopt);
}

}  // namespace avoc::core
