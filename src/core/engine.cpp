#include "core/engine.h"

#include <algorithm>

#include "util/strings.h"

namespace avoc::core {

VotingEngine::VotingEngine(size_t module_count, const EngineConfig& config)
    : module_count_(module_count),
      config_(config),
      pipeline_(StagePipeline::Compile(module_count, config)),
      ledger_(module_count, config.history) {}

Result<VotingEngine> VotingEngine::Create(size_t module_count,
                                          const EngineConfig& config) {
  if (module_count == 0) {
    return InvalidArgumentError("engine needs at least one module");
  }
  AVOC_RETURN_IF_ERROR(config.Validate());
  return VotingEngine(module_count, config);
}

namespace {

Status ArityError(size_t readings, size_t modules) {
  return InvalidArgumentError(
      StrFormat("round has %zu readings, engine has %zu modules", readings,
                modules));
}

}  // namespace

RoundScalars VotingEngine::EmitColumns(VoteSink& sink, RoundColumns* columns) {
  RoundColumns cols = sink.BeginRound(module_count_);
  RoundScalars scalars;
  scalars.present_count = static_cast<uint32_t>(scratch_.present_count);
  // The scatter loops below write excluded[] at every present index and
  // weights/agreement/eliminated[] at every included index.  When every
  // module is present and included — the overwhelmingly common round —
  // they cover all four columns and the blanket zero-fill is redundant.
  const bool scatter_covers_all =
      !scratch_.faulted() && scratch_.present_count == module_count_ &&
      scratch_.included_index.size() == module_count_;
  if (!scatter_covers_all) {
    std::fill(cols.weights.begin(), cols.weights.end(), 0.0);
    std::fill(cols.agreement.begin(), cols.agreement.end(), 0.0);
    std::fill(cols.excluded.begin(), cols.excluded.end(), 0);
    std::fill(cols.eliminated.begin(), cols.eliminated.end(), 0);
  }
  const std::span<const double> records = ledger_.records();
  std::copy(records.begin(), records.end(), cols.history.begin());

  if (scratch_.faulted()) {
    // Fault rounds keep the default used_clustering / had_majority fields,
    // matching the historical VoteResult shape bit for bit.
    switch (*scratch_.fault) {
      case RoundOutcome::kRevertedLast:
        if (last_output_.has_value()) {
          scalars.outcome = RoundOutcome::kRevertedLast;
          scalars.has_value = true;
          scalars.value = *last_output_;
        } else {
          // Nothing to revert to: degrade to no-output.
          scalars.outcome = RoundOutcome::kNoOutput;
        }
        break;
      case RoundOutcome::kError:
        scalars.outcome = RoundOutcome::kError;
        scalars.status = &scratch_.fault_status;
        break;
      default:
        scalars.outcome = RoundOutcome::kNoOutput;
        break;
    }
  } else {
    scalars.outcome = RoundOutcome::kVoted;
    scalars.has_value = true;
    scalars.value = *scratch_.output;
    scalars.used_clustering = scratch_.used_clustering;
    scalars.had_majority = scratch_.had_majority;
    uint32_t excluded_count = 0;
    uint32_t eliminated_count = 0;
    if (scatter_covers_all) {
      // Full round: present_index and included_index are both the
      // identity, so the scatters below degenerate to straight copies.
      std::copy_n(scratch_.excluded_present.begin(), module_count_,
                  cols.excluded.begin());
      std::copy_n(scratch_.weights.begin(), module_count_,
                  cols.weights.begin());
      std::copy_n(scratch_.scores.begin(), module_count_,
                  cols.agreement.begin());
      std::copy_n(scratch_.eliminated_included.begin(), module_count_,
                  cols.eliminated.begin());
      for (size_t m = 0; m < module_count_; ++m) {
        excluded_count += cols.excluded[m];
        eliminated_count += cols.eliminated[m];
      }
    } else {
      for (size_t k = 0; k < scratch_.present_count; ++k) {
        const uint8_t bit = scratch_.excluded_present[k];
        cols.excluded[scratch_.present_index[k]] = bit;
        excluded_count += bit;
      }
      for (size_t k = 0; k < scratch_.included_index.size(); ++k) {
        cols.weights[scratch_.included_index[k]] = scratch_.weights[k];
        cols.agreement[scratch_.included_index[k]] = scratch_.scores[k];
        const uint8_t bit = scratch_.eliminated_included[k];
        cols.eliminated[scratch_.included_index[k]] = bit;
        eliminated_count += bit;
      }
    }
    scalars.excluded_count = excluded_count;
    scalars.eliminated_count = eliminated_count;
  }
  sink.EndRound(scalars);
  if (columns != nullptr) *columns = cols;
  return scalars;
}

Status VotingEngine::FinishRound(VoteSink& sink) {
  ++round_index_;
  const bool stage_hooks =
      observer_ != nullptr && observer_->stage_hooks_enabled();
  if (stage_hooks) {
    observer_->OnRoundBegin(round_index_, scratch_);
    for (const auto& stage : pipeline_->stages()) {
      AVOC_RETURN_IF_ERROR(stage->Run(scratch_));
      observer_->OnStageDone(stage->name(), scratch_);
      if (scratch_.faulted()) break;
    }
  } else {
    // No per-stage observation wanted: the compiled plan runs the same
    // stage bodies without virtual dispatch between them.
    AVOC_RETURN_IF_ERROR(pipeline_->RunRound(scratch_));
  }
  RoundColumns columns;
  const RoundScalars scalars = EmitColumns(sink, &columns);
  if (!scratch_.faulted()) last_output_ = *scratch_.output;
  if (observer_ != nullptr) {
    observer_->OnRoundCommitted(round_index_, columns, scalars);
    if (observer_wants_result_) {
      // Legacy-shaped observers speak VoteResult; materialize only for
      // them — hot-path observers opt out and stay allocation-free.
      observer_->OnRoundEnd(round_index_,
                            MaterializeVoteResult(columns, scalars));
    }
  }
  return Status::Ok();
}

Status VotingEngine::CastVoteBlock(RoundBlock block, VoteSink& sink) {
  if (block.modules != module_count_ ||
      block.present.size() != block.values.size() ||
      block.values.size() % module_count_ != 0) {
    return ArityError(block.modules, module_count_);
  }
  const size_t rounds = block.round_count();
  if (observer_ == nullptr) {
    // Observer-free batch loop: compiled plan + column emit, with the
    // dispatch decisions hoisted out of the round loop.  Mirrors
    // FinishRound's ordering exactly (round counter, stages, emit,
    // last-output update).
    const StagePipeline& pipeline = *pipeline_;
    for (size_t r = 0; r < rounds; ++r) {
      scratch_.Begin(block.round(r), config_, ledger_, last_output_);
      ++round_index_;
      AVOC_RETURN_IF_ERROR(pipeline.RunRound(scratch_));
      EmitColumns(sink, nullptr);
      if (!scratch_.faulted()) last_output_ = *scratch_.output;
    }
    return Status::Ok();
  }
  // Observed batches keep the full per-round hook protocol (sampling
  // observers may toggle stage hooks between rounds).
  for (size_t r = 0; r < rounds; ++r) {
    scratch_.Begin(block.round(r), config_, ledger_, last_output_);
    AVOC_RETURN_IF_ERROR(FinishRound(sink));
  }
  return Status::Ok();
}

Status VotingEngine::CastVote(RoundSpan round, VoteSink& sink) {
  if (round.size() != module_count_ ||
      round.present.size() != module_count_) {
    return ArityError(round.size(), module_count_);
  }
  scratch_.Begin(round, config_, ledger_, last_output_);
  return FinishRound(sink);
}

Status VotingEngine::CastVote(const Round& round, VoteSink& sink) {
  if (round.size() != module_count_) {
    return ArityError(round.size(), module_count_);
  }
  scratch_.Begin(round, config_, ledger_, last_output_);
  return FinishRound(sink);
}

Status VotingEngine::CastVote(std::span<const double> values, VoteSink& sink) {
  if (values.size() != module_count_) {
    return ArityError(values.size(), module_count_);
  }
  scratch_.Begin(values, config_, ledger_, last_output_);
  return FinishRound(sink);
}

Result<VoteResult> VotingEngine::CastVote(std::span<const double> values) {
  VoteResultSink sink;
  AVOC_RETURN_IF_ERROR(CastVote(values, sink));
  return sink.TakeResult();
}

Result<VoteResult> VotingEngine::CastVote(const Round& round) {
  VoteResultSink sink;
  AVOC_RETURN_IF_ERROR(CastVote(round, sink));
  return sink.TakeResult();
}

Status VotingEngine::RestoreHistory(std::span<const double> records,
                                    size_t rounds) {
  return ledger_.Restore(records, rounds);
}

VotingEngine::State VotingEngine::ExportState() const {
  State state;
  state.ledger = ledger_.ExportState();
  state.last_output = last_output_;
  state.round_index = static_cast<uint64_t>(round_index_);
  return state;
}

Status VotingEngine::RestoreState(const State& state) {
  AVOC_RETURN_IF_ERROR(ledger_.RestoreState(state.ledger));
  last_output_ = state.last_output;
  round_index_ = static_cast<size_t>(state.round_index);
  return Status::Ok();
}

void VotingEngine::Reset() {
  ledger_.Reset();
  last_output_.reset();
  round_index_ = 0;
}

Result<double> StatelessVote(std::span<const double> values,
                             Collation collation,
                             const ExclusionParams& exclusion) {
  if (values.empty()) return InvalidArgumentError("no candidates");
  const std::vector<bool> excluded = ComputeExclusions(values, exclusion);
  std::vector<double> kept;
  kept.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (!excluded[i]) kept.push_back(values[i]);
  }
  const std::vector<double> weights(kept.size(), 1.0);
  return Collate(collation, kept, weights, std::nullopt);
}

}  // namespace avoc::core
