// Collation: turning weighted candidates into one output value (§4, §6).
//
// The paper distinguishes *amalgamation* (weighted average) from *result
// selection* (mean-nearest-neighbour: output the real candidate value
// closest to the weighted mean).  UC-2 shows the choice matters more than
// the history method: "what had the most impact on the output was whether
// the last step was to average the values or to select a value".
#pragma once

#include <optional>
#include <span>

#include "util/status.h"

namespace avoc::core::kernels {
struct WeightedMeanScratch;  // core/kernels/kernels.h
}  // namespace avoc::core::kernels

namespace avoc::core {

enum class Collation {
  kWeightedAverage,       ///< Σ w·x / Σ w (amalgamation)
  kMeanNearestNeighbor,   ///< candidate closest to the weighted mean
  kWeightedMedian,        ///< 50% point of the weight-ordered candidates
};

/// Fuses candidates with the given per-candidate weights.  Candidates with
/// weight <= 0 cannot be *selected* but still do not shift the weighted
/// mean (their contribution is zero either way).  `previous_output` breaks
/// mean-nearest-neighbour ties (the paper's "proximity to the previous
/// output" tie-breaker).  Errors when values is empty, sizes mismatch, or
/// all weights are <= 0.
Result<double> Collate(Collation method, std::span<const double> values,
                       std::span<const double> weights,
                       const std::optional<double>& previous_output);

/// Scratch-threaded form — the per-round hot path.  Identical results;
/// the weighted-mean product buffer is owned by the caller (VoteContext)
/// so repeated rounds never allocate for the average/MNN methods.
Result<double> Collate(Collation method, std::span<const double> values,
                       std::span<const double> weights,
                       const std::optional<double>& previous_output,
                       kernels::WeightedMeanScratch& scratch);

}  // namespace avoc::core
