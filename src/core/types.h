// Core value and result types of the voting engine.
//
// Terminology follows the paper: a *module* is one redundant sensor; a
// *round* is one set of concurrent candidate readings (one per module,
// possibly missing); a *vote* reconciles a round into a single output.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace avoc::core {

/// One module's candidate reading for a round; nullopt = missing value
/// (the paper's first UC-2 fault scenario).
using Reading = std::optional<double>;

/// One voting round: exactly one Reading per registered module, in module
/// registration order.
using Round = std::vector<Reading>;

/// A borrowed columnar round: contiguous per-module candidate values plus
/// a present-bitmask.  values[m] is meaningful only where present[m] != 0.
/// This is the zero-copy shape data::RoundTable::View hands to batch runs,
/// so the hot loop never materializes a Round of std::optional.
struct RoundSpan {
  std::span<const double> values;
  std::span<const uint8_t> present;

  size_t size() const { return values.size(); }
};

/// A borrowed contiguous block of rounds: `round_count() × modules`
/// row-major values plus a matching 0/1 present block — exactly
/// data::RoundTable's storage, so a whole table (or any round range)
/// batches into the engine with zero copies.
struct RoundBlock {
  std::span<const double> values;    ///< rounds × modules, row-major
  std::span<const uint8_t> present;  ///< rounds × modules, row-major
  size_t modules = 0;

  size_t round_count() const {
    return modules == 0 ? 0 : values.size() / modules;
  }
  /// Zero-copy view of round `r` within the block.
  RoundSpan round(size_t r) const {
    return RoundSpan{values.subspan(r * modules, modules),
                     present.subspan(r * modules, modules)};
  }
};

/// What the engine did with a round.  uint8_t-backed so result traces can
/// store outcomes as a flat byte column.
enum class RoundOutcome : uint8_t {
  kVoted,         ///< normal vote, `value` is the fused output
  kRevertedLast,  ///< fault policy returned the last accepted output
  kNoOutput,      ///< fault policy suppressed the output
  kError,         ///< fault policy raised; `status` holds the reason
};

std::string_view RoundOutcomeName(RoundOutcome outcome);

/// Full per-round result.  Vectors are indexed by registered module.
struct VoteResult {
  /// Fused output; engaged for kVoted and kRevertedLast.
  std::optional<double> value;
  RoundOutcome outcome = RoundOutcome::kVoted;
  /// Non-OK only when outcome == kError.
  Status status;

  /// True when the clustering step produced this round's candidate pool
  /// (AVOC bootstrap/fallback, or every round for clustering-only voting).
  bool used_clustering = false;

  /// Effective voting weight per module this round (0 when missing,
  /// excluded or eliminated).
  std::vector<double> weights;
  /// Pairwise agreement score per module in [0,1] (0 when missing).
  std::vector<double> agreement;
  /// History record per module *after* this round's update.
  std::vector<double> history;
  /// Module was pruned by value-based exclusion this round.
  std::vector<bool> excluded;
  /// Module was eliminated by its below-average history record (ME).
  std::vector<bool> eliminated;

  /// Number of modules that actually submitted a reading.
  size_t present_count = 0;
  /// Whether the largest agreement group was an absolute majority of the
  /// present candidates.
  bool had_majority = true;
};

/// The paper's UC-2 fault policies, applied when a vote cannot be
/// triggered (too few candidates) or yields no majority.  The paper leaves
/// these to client code; the engine makes them declarative, which §7
/// suggests as a VDX extension.
enum class NoQuorumPolicy { kEmitNothing, kRevertLast, kRaise };
enum class NoMajorityPolicy { kAccept, kEmitNothing, kRevertLast, kRaise };

}  // namespace avoc::core
