// VotingEngine: the paper's voting pipeline as a policy composition.
//
// One engine instance owns the state of one logical sensor group: the
// per-module history ledger and the last accepted output.  Each call to
// CastVote consumes one Round and threads a VoteContext through the
// stage chain StagePipeline::Compile lowered from the EngineConfig (see
// core/stages.h), in VDX's declared order:
//
//   quorum check → value exclusion → clustering (bootstrap/fallback/always)
//   → agreement scoring → module elimination → round weighting → collation
//   → majority check → history update
//
// The named algorithms (avg / standard / ME / SDT / hybrid / COV / AVOC)
// are presets over EngineConfig — see algorithms.h.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/history.h"
#include "core/stages.h"
#include "core/types.h"
#include "core/vote_sink.h"
#include "util/status.h"

namespace avoc::core {

class VotingEngine {
 public:
  /// `module_count` fixes the round arity; must be >= 1.
  static Result<VotingEngine> Create(size_t module_count,
                                     const EngineConfig& config);

  size_t module_count() const { return module_count_; }
  const EngineConfig& config() const { return config_; }

  /// The compiled stage chain this engine runs (shared, immutable).
  const StagePipeline& stage_pipeline() const { return *pipeline_; }

  /// Attaches a non-owning observer receiving per-stage hooks for every
  /// subsequent round; nullptr detaches.  The observer must outlive its
  /// attachment and must not mutate the engine from within a hook.
  void set_observer(StageObserver* observer) {
    observer_ = observer;
    // Cached once: answering this per round would cost a virtual call on
    // the hot path for a property that never changes mid-attachment.
    observer_wants_result_ =
        observer != nullptr && observer->wants_vote_result();
  }
  StageObserver* observer() const { return observer_; }

  /// Consumes one round.  Always returns a VoteResult describing what
  /// happened; hard errors (arity mismatch) surface as a non-OK Result.
  /// Allocates one VoteResult per call — batch hot loops should use the
  /// VoteSink overloads below instead.
  Result<VoteResult> CastVote(const Round& round);

  /// Convenience overload for fully-populated rounds.
  Result<VoteResult> CastVote(std::span<const double> values);

  // --- Columnar (zero-allocation) result path -------------------------------
  //
  // The engine writes the round's outputs straight into the caller-owned
  // sink (flat columns, see core/vote_sink.h): no VoteResult, no per-round
  // vectors.  Outcomes that the legacy overloads report as a VoteResult
  // (kNoOutput, kRevertedLast, kError) are committed to the sink the same
  // way; only hard errors (arity mismatch, stage failure) return non-OK —
  // then nothing was written.

  /// Zero-copy round: contiguous values + present-bitmask (a
  /// data::RoundTable::View), written into `sink`.
  Status CastVote(RoundSpan round, VoteSink& sink);

  /// Many-rounds batch entry: consumes every round of the contiguous
  /// block (a whole RoundTable, or one worker's slice of it) in one call.
  /// The arity check, observer dispatch decision, and compiled-plan
  /// lookup are hoisted out of the per-round loop, so the rounds run back
  /// to back through one instruction stream.  Identical results to
  /// calling CastVote(RoundSpan, sink) per round, bit for bit.
  Status CastVoteBlock(RoundBlock block, VoteSink& sink);

  /// Legacy-shaped round, written into `sink`.
  Status CastVote(const Round& round, VoteSink& sink);

  /// Fully-populated round, written into `sink`.
  Status CastVote(std::span<const double> values, VoteSink& sink);

  /// Last accepted output (from a kVoted round), if any.
  const std::optional<double>& last_output() const { return last_output_; }

  /// Rounds consumed (including faulted ones).
  size_t round_index() const { return round_index_; }

  const HistoryLedger& history() const { return ledger_; }

  /// Replaces history records (datastore restore); see HistoryLedger.
  Status RestoreHistory(std::span<const double> records, size_t rounds);

  /// Full mutable engine state, for migrating a live voter between
  /// nodes.  RestoreHistory reseeds the cumulative accumulators
  /// approximately and loses the last accepted output; a migrated engine
  /// must keep voting bit-identically with the source, so this form
  /// round-trips everything verbatim.
  struct State {
    HistoryLedger::State ledger;
    std::optional<double> last_output;
    uint64_t round_index = 0;
  };
  State ExportState() const;
  Status RestoreState(const State& state);

  /// Forgets all state: history, last output, round counter.
  void Reset();

 private:
  VotingEngine(size_t module_count, const EngineConfig& config);

  /// Runs the compiled stage chain over the Begin-initialized scratch and
  /// commits the round into `sink`.  Shared tail of every CastVote.
  Status FinishRound(VoteSink& sink);

  /// Writes the scratch state into one sink round; returns the committed
  /// scalars (for the observer hook).
  RoundScalars EmitColumns(VoteSink& sink, RoundColumns* columns);

  size_t module_count_;
  EngineConfig config_;
  StagePipeline::Ptr pipeline_;
  HistoryLedger ledger_;
  std::optional<double> last_output_;
  size_t round_index_ = 0;
  StageObserver* observer_ = nullptr;
  bool observer_wants_result_ = false;  ///< cached observer_->wants_vote_result()
  /// Reused round scratch state (see VoteContext); reset by Begin.
  VoteContext scratch_;
};

/// One-shot stateless vote: plain (exclusion + collation) fusion of a
/// value set without any engine state.  This is the "stateless vote in 50
/// microseconds" path of the paper's implementation notes.
Result<double> StatelessVote(std::span<const double> values,
                             Collation collation = Collation::kWeightedAverage,
                             const ExclusionParams& exclusion = {});

}  // namespace avoc::core
