// VotingEngine: the paper's voting pipeline as a policy composition.
//
// One engine instance owns the state of one logical sensor group: the
// per-module history ledger and the last accepted output.  Each call to
// CastVote consumes one Round and threads a VoteContext through the
// stage chain StagePipeline::Compile lowered from the EngineConfig (see
// core/stages.h), in VDX's declared order:
//
//   quorum check → value exclusion → clustering (bootstrap/fallback/always)
//   → agreement scoring → module elimination → round weighting → collation
//   → majority check → history update
//
// The named algorithms (avg / standard / ME / SDT / hybrid / COV / AVOC)
// are presets over EngineConfig — see algorithms.h.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/history.h"
#include "core/stages.h"
#include "core/types.h"
#include "util/status.h"

namespace avoc::core {

class VotingEngine {
 public:
  /// `module_count` fixes the round arity; must be >= 1.
  static Result<VotingEngine> Create(size_t module_count,
                                     const EngineConfig& config);

  size_t module_count() const { return module_count_; }
  const EngineConfig& config() const { return config_; }

  /// The compiled stage chain this engine runs (shared, immutable).
  const StagePipeline& stage_pipeline() const { return *pipeline_; }

  /// Attaches a non-owning observer receiving per-stage hooks for every
  /// subsequent round; nullptr detaches.  The observer must outlive its
  /// attachment and must not mutate the engine from within a hook.
  void set_observer(StageObserver* observer) { observer_ = observer; }
  StageObserver* observer() const { return observer_; }

  /// Consumes one round.  Always returns a VoteResult describing what
  /// happened; hard errors (arity mismatch) surface as a non-OK Result.
  Result<VoteResult> CastVote(const Round& round);

  /// Convenience overload for fully-populated rounds.
  Result<VoteResult> CastVote(std::span<const double> values);

  /// Last accepted output (from a kVoted round), if any.
  const std::optional<double>& last_output() const { return last_output_; }

  /// Rounds consumed (including faulted ones).
  size_t round_index() const { return round_index_; }

  const HistoryLedger& history() const { return ledger_; }

  /// Replaces history records (datastore restore); see HistoryLedger.
  Status RestoreHistory(std::span<const double> records, size_t rounds);

  /// Forgets all state: history, last output, round counter.
  void Reset();

 private:
  VotingEngine(size_t module_count, const EngineConfig& config);

  VoteResult MakeFaultResult(RoundOutcome fallback_outcome, Status status,
                             size_t present_count) const;
  VoteResult AssembleVotedResult(const VoteContext& context) const;

  size_t module_count_;
  EngineConfig config_;
  StagePipeline::Ptr pipeline_;
  HistoryLedger ledger_;
  std::optional<double> last_output_;
  size_t round_index_ = 0;
  StageObserver* observer_ = nullptr;
  /// Reused round scratch state (see VoteContext); reset by Begin.
  VoteContext scratch_;
};

/// One-shot stateless vote: plain (exclusion + collation) fusion of a
/// value set without any engine state.  This is the "stateless vote in 50
/// microseconds" path of the paper's implementation notes.
Result<double> StatelessVote(std::span<const double> values,
                             Collation collation = Collation::kWeightedAverage,
                             const ExclusionParams& exclusion = {});

}  // namespace avoc::core
