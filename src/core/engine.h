// VotingEngine: the paper's voting pipeline as a policy composition.
//
// One engine instance owns the state of one logical sensor group: the
// per-module history ledger and the last accepted output.  Each call to
// CastVote consumes one Round and executes the steps every §4 algorithm
// shares, in VDX's declared order:
//
//   quorum check → value exclusion → clustering (bootstrap/fallback/always)
//   → agreement scoring → module elimination → round weighting → collation
//   → majority check → history update
//
// The named algorithms (avg / standard / ME / SDT / hybrid / COV / AVOC)
// are presets over EngineConfig — see algorithms.h.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/agreement.h"
#include "core/collation.h"
#include "core/exclusion.h"
#include "core/history.h"
#include "core/types.h"
#include "util/status.h"

namespace avoc::core {

/// How a module's effective voting weight for the round is derived.
enum class RoundWeighting {
  kUniform,    ///< every surviving candidate weighs 1 (plain average)
  kHistory,    ///< weight = history record h_i
  kAgreement,  ///< weight = this round's agreement score s_i
  kCombined,   ///< weight = h_i * s_i
};

/// When the clustering step (cluster::GroupByThreshold) gates the vote.
enum class ClusteringMode {
  kOff,
  /// AVOC: only when the ledger indicates a new set (all records 1) or a
  /// collapse (all records 0) — bootstrap and fallback.
  kBootstrap,
  /// COV: every round, statelessly.
  kAlways,
};

struct QuorumParams {
  /// Candidates present / modules registered must reach this fraction for
  /// a vote to trigger (VDX `quorum_percentage` / 100).
  double fraction = 0.5;
  /// At least this many candidates regardless of fraction.
  size_t min_count = 1;
};

struct EngineConfig {
  AgreementParams agreement;
  HistoryParams history;
  ExclusionParams exclusion;
  QuorumParams quorum;
  RoundWeighting weighting = RoundWeighting::kHistory;
  Collation collation = Collation::kWeightedAverage;
  ClusteringMode clustering = ClusteringMode::kOff;

  /// Module elimination (ME): zero-weight modules whose history record is
  /// below the mean record of the present modules.
  bool module_elimination = false;
  /// Slack below the mean record before a module is eliminated.  Without
  /// it, a module that blemished once could never rejoin a group of
  /// perfect peers (its record approaches but never reaches theirs),
  /// violating the paper's "until their historical records improve by
  /// submitting better values".
  double elimination_margin = 0.05;

  /// Fault policies (§7 "fault scenario" discussion).
  NoQuorumPolicy on_no_quorum = NoQuorumPolicy::kRevertLast;
  NoMajorityPolicy on_no_majority = NoMajorityPolicy::kAccept;

  /// Validates parameter ranges (error > 0, quorum fraction in (0,1], ...).
  Status Validate() const;
};

class VotingEngine {
 public:
  /// `module_count` fixes the round arity; must be >= 1.
  static Result<VotingEngine> Create(size_t module_count,
                                     const EngineConfig& config);

  size_t module_count() const { return module_count_; }
  const EngineConfig& config() const { return config_; }

  /// Consumes one round.  Always returns a VoteResult describing what
  /// happened; hard errors (arity mismatch) surface as a non-OK Result.
  Result<VoteResult> CastVote(const Round& round);

  /// Convenience overload for fully-populated rounds.
  Result<VoteResult> CastVote(std::span<const double> values);

  /// Last accepted output (from a kVoted round), if any.
  const std::optional<double>& last_output() const { return last_output_; }

  /// Rounds consumed (including faulted ones).
  size_t round_index() const { return round_index_; }

  const HistoryLedger& history() const { return ledger_; }

  /// Replaces history records (datastore restore); see HistoryLedger.
  Status RestoreHistory(std::span<const double> records, size_t rounds);

  /// Forgets all state: history, last output, round counter.
  void Reset();

 private:
  VotingEngine(size_t module_count, const EngineConfig& config);

  /// Resolves the clustering gate for this round.
  bool ShouldCluster() const;

  VoteResult MakeFaultResult(RoundOutcome fallback_outcome, Status status,
                             size_t present_count) const;

  size_t module_count_;
  EngineConfig config_;
  HistoryLedger ledger_;
  std::optional<double> last_output_;
  size_t round_index_ = 0;
};

/// One-shot stateless vote: plain (exclusion + collation) fusion of a
/// value set without any engine state.  This is the "stateless vote in 50
/// microseconds" path of the paper's implementation notes.
Result<double> StatelessVote(std::span<const double> values,
                             Collation collation = Collation::kWeightedAverage,
                             const ExclusionParams& exclusion = {});

}  // namespace avoc::core
