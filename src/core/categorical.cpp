#include "core/categorical.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace avoc::core {

double LevenshteinDistance(const std::string& a, const std::string& b) {
  if (a == b) return 0.0;
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0 || n == 0) return 1.0;
  std::vector<size_t> previous(n + 1);
  std::vector<size_t> current(n + 1);
  for (size_t j = 0; j <= n; ++j) previous[j] = j;
  for (size_t i = 1; i <= m; ++i) {
    current[0] = i;
    for (size_t j = 1; j <= n; ++j) {
      const size_t substitution =
          previous[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      current[j] =
          std::min({previous[j] + 1, current[j - 1] + 1, substitution});
    }
    std::swap(previous, current);
  }
  return static_cast<double>(previous[n]) /
         static_cast<double>(std::max(m, n));
}

Status CategoricalConfig::Validate() const {
  if (quorum_fraction <= 0.0 || quorum_fraction > 1.0) {
    return InvalidArgumentError("quorum fraction must lie in (0,1]");
  }
  if (quorum_min_count < 1) {
    return InvalidArgumentError("quorum min count must be >= 1");
  }
  if (distance && (error < 0.0 || error > 1.0)) {
    return InvalidArgumentError(
        "categorical error threshold must lie in [0,1]");
  }
  return Status::Ok();
}

CategoricalEngine::CategoricalEngine(size_t module_count,
                                     CategoricalConfig config)
    : module_count_(module_count),
      config_(std::move(config)),
      ledger_(module_count, config_.history) {}

Result<CategoricalEngine> CategoricalEngine::Create(size_t module_count,
                                                    CategoricalConfig config) {
  if (module_count == 0) {
    return InvalidArgumentError("engine needs at least one module");
  }
  AVOC_RETURN_IF_ERROR(config.Validate());
  return CategoricalEngine(module_count, std::move(config));
}

double CategoricalEngine::Agreement(const std::string& a,
                                    const std::string& b) const {
  if (!config_.distance) return a == b ? 1.0 : 0.0;
  const double d = std::clamp(config_.distance(a, b), 0.0, 1.0);
  return d <= config_.error ? 1.0 : 0.0;
}

CategoricalVoteResult CategoricalEngine::MakeFaultResult(
    RoundOutcome fallback, Status status, size_t present_count) const {
  CategoricalVoteResult result;
  result.present_count = present_count;
  result.weights.assign(module_count_, 0.0);
  result.history.assign(ledger_.records().begin(), ledger_.records().end());
  result.eliminated.assign(module_count_, false);
  switch (fallback) {
    case RoundOutcome::kRevertedLast:
      if (last_output_.has_value()) {
        result.outcome = RoundOutcome::kRevertedLast;
        result.value = last_output_;
      } else {
        result.outcome = RoundOutcome::kNoOutput;
      }
      break;
    case RoundOutcome::kError:
      result.outcome = RoundOutcome::kError;
      result.status = std::move(status);
      break;
    default:
      result.outcome = RoundOutcome::kNoOutput;
  }
  return result;
}

Result<CategoricalVoteResult> CategoricalEngine::CastVote(
    const std::vector<Label>& round) {
  if (round.size() != module_count_) {
    return InvalidArgumentError(
        StrFormat("round has %zu labels, engine has %zu modules", round.size(),
                  module_count_));
  }

  std::vector<size_t> present_index;
  std::vector<std::string> present_labels;
  std::vector<bool> present(module_count_, false);
  for (size_t i = 0; i < module_count_; ++i) {
    if (round[i].has_value()) {
      present[i] = true;
      present_index.push_back(i);
      present_labels.push_back(*round[i]);
    }
  }
  const size_t present_count = present_index.size();

  const size_t required = std::max<size_t>(
      config_.quorum_min_count,
      static_cast<size_t>(config_.quorum_fraction *
                              static_cast<double>(module_count_) +
                          0.999999));
  if (present_count < required) {
    switch (config_.on_no_quorum) {
      case NoQuorumPolicy::kEmitNothing:
        return MakeFaultResult(RoundOutcome::kNoOutput, Status::Ok(),
                               present_count);
      case NoQuorumPolicy::kRevertLast:
        return MakeFaultResult(RoundOutcome::kRevertedLast, Status::Ok(),
                               present_count);
      case NoQuorumPolicy::kRaise:
        return MakeFaultResult(
            RoundOutcome::kError,
            NoQuorumError(StrFormat("%zu of %zu labels, %zu required",
                                    present_count, module_count_, required)),
            present_count);
    }
  }

  // Module elimination by below-average history record.
  std::vector<bool> eliminated(module_count_, false);
  if (config_.module_elimination && present_count > 1) {
    double mean_record = 0.0;
    for (const size_t m : present_index) mean_record += ledger_.record(m);
    mean_record /= static_cast<double>(present_count);
    for (const size_t m : present_index) {
      eliminated[m] =
          ledger_.record(m) < mean_record - config_.elimination_margin - 1e-12;
    }
  }

  // Weighted plurality: each non-eliminated candidate contributes its
  // history record (or 1 under HistoryRule::kNone) to its label's tally.
  std::map<std::string, double> tally;
  std::map<std::string, size_t> supporters;
  std::vector<double> weights(module_count_, 0.0);
  double total_weight = 0.0;
  for (size_t k = 0; k < present_count; ++k) {
    const size_t m = present_index[k];
    if (eliminated[m]) continue;
    const double w = config_.history.rule == HistoryRule::kNone
                         ? 1.0
                         : ledger_.record(m);
    weights[m] = w;
    tally[present_labels[k]] += w;
    supporters[present_labels[k]] += 1;
    total_weight += w;
  }
  if (total_weight <= 0.0) {
    // All records collapsed: fall back to unweighted plurality.
    tally.clear();
    supporters.clear();
    for (size_t k = 0; k < present_count; ++k) {
      const size_t m = present_index[k];
      weights[m] = 1.0;
      tally[present_labels[k]] += 1.0;
      supporters[present_labels[k]] += 1;
      total_weight += 1.0;
    }
  }

  // Winner: highest tally; ties break towards the previous output when it
  // is among the tied labels, else the lexicographically smallest label
  // (std::map iteration order makes this deterministic).
  double best_weight = -1.0;
  std::string winner;
  bool previous_among_tied = false;
  for (const auto& [label, weight] : tally) {
    if (weight > best_weight + 1e-12) {
      best_weight = weight;
      winner = label;
      previous_among_tied =
          last_output_.has_value() && label == *last_output_;
    } else if (std::abs(weight - best_weight) <= 1e-12) {
      if (!previous_among_tied && last_output_.has_value() &&
          label == *last_output_) {
        winner = label;
        previous_among_tied = true;
      }
    }
  }

  const bool had_majority = 2 * supporters[winner] > present_count;
  if (!had_majority) {
    switch (config_.on_no_majority) {
      case NoMajorityPolicy::kAccept:
        break;
      case NoMajorityPolicy::kEmitNothing:
        return MakeFaultResult(RoundOutcome::kNoOutput, Status::Ok(),
                               present_count);
      case NoMajorityPolicy::kRevertLast:
        return MakeFaultResult(RoundOutcome::kRevertedLast, Status::Ok(),
                               present_count);
      case NoMajorityPolicy::kRaise:
        return MakeFaultResult(
            RoundOutcome::kError,
            NoMajorityError(StrFormat("winner has %zu of %zu candidates",
                                      supporters[winner], present_count)),
            present_count);
    }
  }

  // History update: agreement with the winning label, including for
  // eliminated modules.
  std::vector<double> agreement_with_output(module_count_, 0.0);
  for (size_t k = 0; k < present_count; ++k) {
    agreement_with_output[present_index[k]] =
        Agreement(present_labels[k], winner);
  }
  AVOC_RETURN_IF_ERROR(ledger_.Update(agreement_with_output, present));

  CategoricalVoteResult result;
  result.value = winner;
  result.outcome = RoundOutcome::kVoted;
  result.weights = std::move(weights);
  result.history.assign(ledger_.records().begin(), ledger_.records().end());
  result.eliminated = std::move(eliminated);
  result.present_count = present_count;
  result.had_majority = had_majority;
  last_output_ = winner;
  return result;
}

void CategoricalEngine::Reset() {
  ledger_.Reset();
  last_output_.reset();
}

}  // namespace avoc::core
