#include "core/history.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace avoc::core {
namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

HistoryLedger::HistoryLedger(size_t module_count, HistoryParams params)
    : params_(params),
      records_(module_count, 1.0),
      agreement_sums_(module_count, 0.0),
      observations_(module_count, 0) {}

Status HistoryLedger::Update(std::span<const double> agreement_with_output,
                             const std::vector<bool>& present) {
  if (agreement_with_output.size() != records_.size() ||
      present.size() != records_.size()) {
    return InvalidArgumentError(
        StrFormat("history update arity %zu/%zu, ledger has %zu modules",
                  agreement_with_output.size(), present.size(),
                  records_.size()));
  }
  ++rounds_;
  if (params_.rule == HistoryRule::kNone) return Status::Ok();

  for (size_t i = 0; i < records_.size(); ++i) {
    if (!present[i]) {
      if (params_.missing_penalty > 0.0) {
        records_[i] = Clamp01(records_[i] - params_.missing_penalty);
      }
      continue;
    }
    const double g = Clamp01(agreement_with_output[i]);
    switch (params_.rule) {
      case HistoryRule::kNone:
        break;
      case HistoryRule::kCumulativeRatio: {
        agreement_sums_[i] += g;
        ++observations_[i];
        // Laplace prior (1 agreement / 1 observation) keeps fresh modules
        // at record 1 and makes the decay of a disagreer gradual.
        records_[i] = (1.0 + agreement_sums_[i]) /
                      (1.0 + static_cast<double>(observations_[i]));
        break;
      }
      case HistoryRule::kRewardPenalty:
        records_[i] =
            Clamp01(records_[i] + g * params_.reward -
                    (1.0 - g) * params_.penalty);
        break;
    }
  }
  return Status::Ok();
}

Status HistoryLedger::Update(std::span<const double> agreement_with_output,
                             std::span<const uint8_t> present) {
  if (agreement_with_output.size() != records_.size() ||
      present.size() != records_.size()) {
    return InvalidArgumentError(
        StrFormat("history update arity %zu/%zu, ledger has %zu modules",
                  agreement_with_output.size(), present.size(),
                  records_.size()));
  }
  ++rounds_;
  if (params_.rule == HistoryRule::kNone) return Status::Ok();

  // Same per-module arithmetic as the vector<bool> overload, with the
  // rule and missing-penalty switches hoisted out of the module loop.
  const size_t n = records_.size();
  const bool penalize_missing = params_.missing_penalty > 0.0;
  switch (params_.rule) {
    case HistoryRule::kNone:
      break;
    case HistoryRule::kCumulativeRatio:
      for (size_t i = 0; i < n; ++i) {
        if (present[i] == 0) {
          if (penalize_missing) {
            records_[i] = Clamp01(records_[i] - params_.missing_penalty);
          }
          continue;
        }
        agreement_sums_[i] += Clamp01(agreement_with_output[i]);
        ++observations_[i];
        records_[i] = (1.0 + agreement_sums_[i]) /
                      (1.0 + static_cast<double>(observations_[i]));
      }
      break;
    case HistoryRule::kRewardPenalty:
      for (size_t i = 0; i < n; ++i) {
        if (present[i] == 0) {
          if (penalize_missing) {
            records_[i] = Clamp01(records_[i] - params_.missing_penalty);
          }
          continue;
        }
        const double g = Clamp01(agreement_with_output[i]);
        records_[i] = Clamp01(records_[i] + g * params_.reward -
                              (1.0 - g) * params_.penalty);
      }
      break;
  }
  return Status::Ok();
}

double HistoryLedger::MeanRecord() const {
  if (records_.empty()) return 0.0;
  double sum = 0.0;
  for (const double r : records_) sum += r;
  return sum / static_cast<double>(records_.size());
}

bool HistoryLedger::AllRecordsAre(double value, double epsilon) const {
  for (const double r : records_) {
    if (std::abs(r - value) > epsilon) return false;
  }
  return true;
}

void HistoryLedger::Reset() {
  std::fill(records_.begin(), records_.end(), 1.0);
  std::fill(agreement_sums_.begin(), agreement_sums_.end(), 0.0);
  std::fill(observations_.begin(), observations_.end(), size_t{0});
  rounds_ = 0;
}

Status HistoryLedger::Restore(std::span<const double> records, size_t rounds) {
  if (records.size() != records_.size()) {
    return InvalidArgumentError(
        StrFormat("restore arity %zu, ledger has %zu modules", records.size(),
                  records_.size()));
  }
  for (size_t i = 0; i < records_.size(); ++i) {
    records_[i] = Clamp01(records[i]);
    // Rebuild a consistent cumulative state: treat the restored record as
    // the mean agreement over `rounds` observations.
    observations_[i] = rounds;
    agreement_sums_[i] =
        records_[i] * (1.0 + static_cast<double>(rounds)) - 1.0;
    agreement_sums_[i] = std::max(0.0, agreement_sums_[i]);
  }
  rounds_ = rounds;
  return Status::Ok();
}

HistoryLedger::State HistoryLedger::ExportState() const {
  State state;
  state.records = records_;
  state.agreement_sums = agreement_sums_;
  state.observations.reserve(observations_.size());
  for (const size_t n : observations_) {
    state.observations.push_back(static_cast<uint64_t>(n));
  }
  state.rounds = static_cast<uint64_t>(rounds_);
  return state;
}

Status HistoryLedger::RestoreState(const State& state) {
  if (state.records.size() != records_.size() ||
      state.agreement_sums.size() != records_.size() ||
      state.observations.size() != records_.size()) {
    return InvalidArgumentError(
        StrFormat("state restore arity %zu/%zu/%zu, ledger has %zu modules",
                  state.records.size(), state.agreement_sums.size(),
                  state.observations.size(), records_.size()));
  }
  records_ = state.records;
  agreement_sums_ = state.agreement_sums;
  for (size_t i = 0; i < observations_.size(); ++i) {
    observations_[i] = static_cast<size_t>(state.observations[i]);
  }
  rounds_ = static_cast<size_t>(state.rounds);
  return Status::Ok();
}

}  // namespace avoc::core
