#include "core/config.h"

namespace avoc::core {

Status EngineConfig::Validate() const {
  if (agreement.error <= 0.0) {
    return InvalidArgumentError("agreement error threshold must be > 0");
  }
  if (agreement.mode == AgreementMode::kSoftDynamic &&
      agreement.soft_multiple < 1.0) {
    return InvalidArgumentError("soft threshold multiple must be >= 1");
  }
  if (history.rule == HistoryRule::kRewardPenalty) {
    if (history.reward < 0.0 || history.reward > 1.0 ||
        history.penalty < 0.0 || history.penalty > 1.0) {
      return InvalidArgumentError("reward/penalty must lie in [0,1]");
    }
  }
  if (history.missing_penalty < 0.0 || history.missing_penalty > 1.0) {
    return InvalidArgumentError("missing penalty must lie in [0,1]");
  }
  if (quorum.fraction <= 0.0 || quorum.fraction > 1.0) {
    return InvalidArgumentError("quorum fraction must lie in (0,1]");
  }
  if (quorum.min_count < 1) {
    return InvalidArgumentError("quorum min count must be >= 1");
  }
  if (exclusion.mode != ExclusionMode::kNone && exclusion.threshold <= 0.0) {
    return InvalidArgumentError("exclusion threshold must be > 0");
  }
  if (elimination_margin < 0.0 || elimination_margin >= 1.0) {
    return InvalidArgumentError("elimination margin must lie in [0,1)");
  }
  if ((weighting == RoundWeighting::kHistory ||
       weighting == RoundWeighting::kCombined) &&
      history.rule == HistoryRule::kNone) {
    return InvalidArgumentError(
        "history-based weighting requires a history rule");
  }
  return Status::Ok();
}

}  // namespace avoc::core
