#include "core/types.h"

namespace avoc::core {

std::string_view RoundOutcomeName(RoundOutcome outcome) {
  switch (outcome) {
    case RoundOutcome::kVoted: return "voted";
    case RoundOutcome::kRevertedLast: return "reverted_last";
    case RoundOutcome::kNoOutput: return "no_output";
    case RoundOutcome::kError: return "error";
  }
  return "?";
}

}  // namespace avoc::core
