#include "core/agreement.h"

#include <algorithm>
#include <cmath>

#include "core/kernels/kernels.h"

namespace avoc::core {

double EffectiveMargin(double a, double b, const AgreementParams& params) {
  if (params.scale == ThresholdScale::kAbsolute) return params.error;
  const double magnitude =
      std::max({std::abs(a), std::abs(b), params.relative_floor});
  return params.error * magnitude;
}

double AgreementScore(double a, double b, const AgreementParams& params) {
  const double distance = std::abs(a - b);
  const double margin = EffectiveMargin(a, b, params);
  if (distance <= margin) return 1.0;
  if (params.mode == AgreementMode::kBinary) return 0.0;
  const double outer = margin * std::max(1.0, params.soft_multiple);
  if (distance >= outer) return 0.0;
  // Linear taper between the hard threshold and its soft multiple.
  return (outer - distance) / (outer - margin);
}

std::vector<double> AgreementScores(std::span<const double> values,
                                    const AgreementParams& params) {
  std::vector<double> scores;
  AgreementScoresInto(values, params, scores);
  return scores;
}

void AgreementScoresInto(std::span<const double> values,
                         const AgreementParams& params,
                         std::vector<double>& scores) {
  // Per-thread scratch keeps the scratch-less legacy signature
  // allocation-free after warmup (and data-race-free under TSan).
  thread_local kernels::AgreementScratch scratch;
  AgreementScoresInto(values, params, scores, scratch);
}

void AgreementScoresInto(std::span<const double> values,
                         const AgreementParams& params,
                         std::vector<double>& scores,
                         kernels::AgreementScratch& scratch) {
  const size_t n = values.size();
  scores.resize(n);
  kernels::AgreementScoresKernel(values.data(), n, params, scores.data(),
                                 scratch);
}

size_t LargestAgreementGroup(std::span<const double> values,
                             const AgreementParams& params) {
  std::vector<double> scratch;
  return LargestAgreementGroup(values, params, scratch);
}

size_t LargestAgreementGroup(std::span<const double> values,
                             const AgreementParams& params,
                             std::vector<double>& scratch) {
  if (values.empty()) return 0;
  // 1-D threshold linkage over sorted values: a group is a maximal run
  // whose consecutive gaps stay within the agreement margin — the same
  // chaining cluster::GroupByThreshold builds, reduced to run lengths.
  const size_t n = values.size();
  scratch.resize(n);
  double* v = scratch.data();
  if (n <= 32) {
    // Group-sized rounds run this every round; a copy-as-you-insert
    // insertion sort beats the generic std::sort setup at these counts
    // (and produces the identical ascending order).
    v[0] = values[0];
    for (size_t i = 1; i < n; ++i) {
      const double x = values[i];
      size_t j = i;
      for (; j > 0 && v[j - 1] > x; --j) v[j] = v[j - 1];
      v[j] = x;
    }
  } else {
    std::copy(values.begin(), values.end(), v);
    std::sort(v, v + n);
  }
  size_t largest = 1;
  size_t run = 1;
  if (params.scale == ThresholdScale::kAbsolute) {
    // The margin is value-independent: hoist it (bit-identical to
    // calling EffectiveMargin per gap, which returns params.error).
    const double margin = params.error;
    for (size_t i = 1; i < n; ++i) {
      run = (v[i] - v[i - 1] <= margin) ? run + 1 : 1;
      largest = std::max(largest, run);
    }
  } else if (v[0] >= 0.0) {
    // All values non-negative (v is sorted ascending, so checking the
    // minimum suffices): |prev| = prev, |next| = next, and next >= prev,
    // so EffectiveMargin's max({|prev|, |next|, floor}) collapses to
    // max(next, floor) — same operands, bit-identical margin.
    const double error = params.error;
    const double floor = params.relative_floor;
    for (size_t i = 1; i < n; ++i) {
      const double next = v[i];
      const double margin = error * std::max(next, floor);
      run = (next - v[i - 1] <= margin) ? run + 1 : 1;
      largest = std::max(largest, run);
    }
  } else {
    for (size_t i = 1; i < n; ++i) {
      const double prev = v[i - 1];
      const double next = v[i];
      run = (next - prev <= EffectiveMargin(prev, next, params)) ? run + 1 : 1;
      largest = std::max(largest, run);
    }
  }
  return largest;
}

}  // namespace avoc::core
