#include "core/agreement.h"

#include <algorithm>
#include <cmath>

namespace avoc::core {

double EffectiveMargin(double a, double b, const AgreementParams& params) {
  if (params.scale == ThresholdScale::kAbsolute) return params.error;
  const double magnitude =
      std::max({std::abs(a), std::abs(b), params.relative_floor});
  return params.error * magnitude;
}

double AgreementScore(double a, double b, const AgreementParams& params) {
  const double distance = std::abs(a - b);
  const double margin = EffectiveMargin(a, b, params);
  if (distance <= margin) return 1.0;
  if (params.mode == AgreementMode::kBinary) return 0.0;
  const double outer = margin * std::max(1.0, params.soft_multiple);
  if (distance >= outer) return 0.0;
  // Linear taper between the hard threshold and its soft multiple.
  return (outer - distance) / (outer - margin);
}

std::vector<double> AgreementScores(std::span<const double> values,
                                    const AgreementParams& params) {
  std::vector<double> scores;
  AgreementScoresInto(values, params, scores);
  return scores;
}

void AgreementScoresInto(std::span<const double> values,
                         const AgreementParams& params,
                         std::vector<double>& scores) {
  const size_t n = values.size();
  scores.assign(n, 1.0);
  if (n <= 1) return;
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sum += AgreementScore(values[i], values[j], params);
    }
    scores[i] = sum / static_cast<double>(n - 1);
  }
}

size_t LargestAgreementGroup(std::span<const double> values,
                             const AgreementParams& params) {
  std::vector<double> scratch;
  return LargestAgreementGroup(values, params, scratch);
}

size_t LargestAgreementGroup(std::span<const double> values,
                             const AgreementParams& params,
                             std::vector<double>& scratch) {
  if (values.empty()) return 0;
  // 1-D threshold linkage over sorted values: a group is a maximal run
  // whose consecutive gaps stay within the agreement margin — the same
  // chaining cluster::GroupByThreshold builds, reduced to run lengths.
  scratch.assign(values.begin(), values.end());
  std::sort(scratch.begin(), scratch.end());
  size_t largest = 1;
  size_t run = 1;
  for (size_t i = 1; i < scratch.size(); ++i) {
    const double prev = scratch[i - 1];
    const double next = scratch[i];
    if (next - prev <= EffectiveMargin(prev, next, params)) {
      ++run;
    } else {
      run = 1;
    }
    largest = std::max(largest, run);
  }
  return largest;
}

}  // namespace avoc::core
