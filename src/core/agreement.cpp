#include "core/agreement.h"

#include <algorithm>
#include <cmath>

#include "cluster/grouping.h"

namespace avoc::core {

double EffectiveMargin(double a, double b, const AgreementParams& params) {
  if (params.scale == ThresholdScale::kAbsolute) return params.error;
  const double magnitude =
      std::max({std::abs(a), std::abs(b), params.relative_floor});
  return params.error * magnitude;
}

double AgreementScore(double a, double b, const AgreementParams& params) {
  const double distance = std::abs(a - b);
  const double margin = EffectiveMargin(a, b, params);
  if (distance <= margin) return 1.0;
  if (params.mode == AgreementMode::kBinary) return 0.0;
  const double outer = margin * std::max(1.0, params.soft_multiple);
  if (distance >= outer) return 0.0;
  // Linear taper between the hard threshold and its soft multiple.
  return (outer - distance) / (outer - margin);
}

std::vector<double> AgreementScores(std::span<const double> values,
                                    const AgreementParams& params) {
  const size_t n = values.size();
  std::vector<double> scores(n, 1.0);
  if (n <= 1) return scores;
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sum += AgreementScore(values[i], values[j], params);
    }
    scores[i] = sum / static_cast<double>(n - 1);
  }
  return scores;
}

size_t LargestAgreementGroup(std::span<const double> values,
                             const AgreementParams& params) {
  if (values.empty()) return 0;
  cluster::GroupingOptions options;
  options.threshold = params.error;
  options.mode = params.scale == ThresholdScale::kRelative
                     ? cluster::ThresholdMode::kRelative
                     : cluster::ThresholdMode::kAbsolute;
  options.relative_floor = params.relative_floor;
  return cluster::GroupByThreshold(values, options).largest().size();
}

}  // namespace avoc::core
