#include "core/vote_sink.h"

namespace avoc::core {

VoteResult MaterializeVoteResult(const RoundColumns& columns,
                                 const RoundScalars& scalars) {
  VoteResult result;
  if (scalars.has_value) result.value = scalars.value;
  result.outcome = scalars.outcome;
  if (scalars.status != nullptr) result.status = *scalars.status;
  result.used_clustering = scalars.used_clustering;
  result.had_majority = scalars.had_majority;
  result.present_count = scalars.present_count;
  result.weights.assign(columns.weights.begin(), columns.weights.end());
  result.agreement.assign(columns.agreement.begin(), columns.agreement.end());
  result.history.assign(columns.history.begin(), columns.history.end());
  result.excluded.assign(columns.excluded.begin(), columns.excluded.end());
  result.eliminated.assign(columns.eliminated.begin(),
                           columns.eliminated.end());
  return result;
}

RoundColumns VoteResultSink::BeginRound(size_t module_count) {
  result_ = VoteResult{};
  result_.weights.resize(module_count);
  result_.agreement.resize(module_count);
  result_.history.resize(module_count);
  excluded_.assign(module_count, 0);
  eliminated_.assign(module_count, 0);
  return RoundColumns{result_.weights, result_.agreement, result_.history,
                      excluded_, eliminated_};
}

void VoteResultSink::EndRound(const RoundScalars& scalars) {
  if (scalars.has_value) result_.value = scalars.value;
  result_.outcome = scalars.outcome;
  if (scalars.status != nullptr) result_.status = *scalars.status;
  result_.used_clustering = scalars.used_clustering;
  result_.had_majority = scalars.had_majority;
  result_.present_count = scalars.present_count;
  result_.excluded.assign(excluded_.begin(), excluded_.end());
  result_.eliminated.assign(eliminated_.begin(), eliminated_.end());
}

}  // namespace avoc::core
