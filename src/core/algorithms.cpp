#include "core/algorithms.h"

#include "util/strings.h"

namespace avoc::core {

std::vector<AlgorithmId> AllAlgorithms() {
  return {AlgorithmId::kAverage,
          AlgorithmId::kStandard,
          AlgorithmId::kModuleElimination,
          AlgorithmId::kSoftDynamicThreshold,
          AlgorithmId::kHybrid,
          AlgorithmId::kClusteringOnly,
          AlgorithmId::kAvoc};
}

std::string_view AlgorithmName(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kAverage: return "average";
    case AlgorithmId::kStandard: return "standard";
    case AlgorithmId::kModuleElimination: return "me";
    case AlgorithmId::kSoftDynamicThreshold: return "sdt";
    case AlgorithmId::kHybrid: return "hybrid";
    case AlgorithmId::kClusteringOnly: return "cov";
    case AlgorithmId::kAvoc: return "avoc";
  }
  return "?";
}

Result<AlgorithmId> ParseAlgorithmName(std::string_view name) {
  std::string lower = AsciiToLower(TrimWhitespace(name));
  // Tolerate the paper's abbreviated plot labels ("avg.", "strd.").
  while (!lower.empty() && lower.back() == '.') lower.pop_back();
  if (lower == "average" || lower == "avg" || lower == "mean") {
    return AlgorithmId::kAverage;
  }
  if (lower == "standard" || lower == "strd" || lower == "hbwa") {
    return AlgorithmId::kStandard;
  }
  if (lower == "me" || lower == "module_elimination" ||
      lower == "module-elimination") {
    return AlgorithmId::kModuleElimination;
  }
  if (lower == "sdt" || lower == "soft_dynamic_threshold") {
    return AlgorithmId::kSoftDynamicThreshold;
  }
  if (lower == "hybrid") return AlgorithmId::kHybrid;
  if (lower == "cov" || lower == "clustering" || lower == "clustering_only") {
    return AlgorithmId::kClusteringOnly;
  }
  if (lower == "avoc") return AlgorithmId::kAvoc;
  return NotFoundError("unknown algorithm '" + std::string(name) + "'");
}

EngineConfig MakeConfig(AlgorithmId id, const PresetParams& params) {
  EngineConfig config;
  config.agreement.error = params.error;
  config.agreement.soft_multiple = params.soft_multiple;
  config.agreement.scale = params.scale;
  config.history.reward = params.reward;
  config.history.penalty = params.penalty;
  config.quorum.fraction = params.quorum_fraction;

  switch (id) {
    case AlgorithmId::kAverage:
      config.agreement.mode = AgreementMode::kBinary;
      config.history.rule = HistoryRule::kNone;
      config.weighting = RoundWeighting::kUniform;
      config.collation = Collation::kWeightedAverage;
      config.clustering = ClusteringMode::kOff;
      break;
    case AlgorithmId::kStandard:
      config.agreement.mode = AgreementMode::kBinary;
      config.history.rule = HistoryRule::kCumulativeRatio;
      config.weighting = RoundWeighting::kHistory;
      config.collation = Collation::kWeightedAverage;
      config.clustering = ClusteringMode::kOff;
      break;
    case AlgorithmId::kModuleElimination:
      config.agreement.mode = AgreementMode::kBinary;
      config.history.rule = HistoryRule::kCumulativeRatio;
      config.weighting = RoundWeighting::kHistory;
      config.collation = Collation::kWeightedAverage;
      config.clustering = ClusteringMode::kOff;
      config.module_elimination = true;
      break;
    case AlgorithmId::kSoftDynamicThreshold:
      config.agreement.mode = AgreementMode::kSoftDynamic;
      config.history.rule = HistoryRule::kCumulativeRatio;
      config.weighting = RoundWeighting::kHistory;
      config.collation = Collation::kWeightedAverage;
      config.clustering = ClusteringMode::kOff;
      break;
    case AlgorithmId::kHybrid:
      config.agreement.mode = AgreementMode::kSoftDynamic;
      config.history.rule = HistoryRule::kRewardPenalty;
      config.weighting = RoundWeighting::kHistory;
      config.collation = Collation::kMeanNearestNeighbor;
      config.clustering = ClusteringMode::kOff;
      config.module_elimination = true;
      break;
    case AlgorithmId::kClusteringOnly:
      config.agreement.mode = AgreementMode::kBinary;
      config.history.rule = HistoryRule::kNone;
      config.weighting = RoundWeighting::kUniform;
      config.collation = Collation::kWeightedAverage;
      config.clustering = ClusteringMode::kAlways;
      break;
    case AlgorithmId::kAvoc:
      config.agreement.mode = AgreementMode::kSoftDynamic;
      config.history.rule = HistoryRule::kRewardPenalty;
      config.weighting = RoundWeighting::kHistory;
      config.collation = Collation::kMeanNearestNeighbor;
      config.clustering = ClusteringMode::kBootstrap;
      config.module_elimination = true;
      break;
  }
  if (params.collation.has_value()) {
    config.collation = *params.collation;
  }
  return config;
}

Result<VotingEngine> MakeEngine(AlgorithmId id, size_t modules,
                                const PresetParams& params) {
  return VotingEngine::Create(modules, MakeConfig(id, params));
}

}  // namespace avoc::core
