// Umbrella header: the AVOC library's public API in one include.
//
//   #include "avoc.h"
//
//   auto spec  = avoc::vdx::Spec::Parse(definition_json);
//   auto voter = avoc::vdx::MakeVoter(*spec, modules);
//   auto fused = voter->CastVote(readings);
//
// Fine-grained headers remain available for targeted includes; this one
// exists so applications and quick experiments need exactly one line.
#pragma once

#include "core/algorithms.h"   // the seven §4-§5 algorithm presets
#include "core/batch.h"        // run engines over recorded round tables
#include "core/categorical.h"  // §6 categorical voting
#include "core/engine.h"       // the voting engine itself
#include "core/mlv.h"          // maximum-likelihood voting (extension)
#include "core/multidim.h"     // §5 multi-dimensional voting
#include "data/dataset.h"      // dataset persistence
#include "data/round_table.h"  // the rounds x modules container
#include "data/stream.h"       // asynchronous streams -> rounds
#include "obs/events.h"        // structured JSON event logging
#include "obs/metrics.h"       // lock-free metrics registry
#include "obs/stage_metrics.h"      // the production metrics observer
#include "runtime/group_manager.h"  // multi-group voter management
#include "runtime/pipeline.h"  // deterministic replay middleware
#include "runtime/remote.h"    // the TCP voter service + client
#include "runtime/service.h"   // the threaded soft-real-time service
#include "stats/filters.h"     // post-fusion filters
#include "vdx/factory.h"       // VDX spec -> configured voter
#include "vdx/registry.h"      // named spec collections
#include "vdx/schema.h"        // the published VDX JSON schema

namespace avoc {

/// Library semantic version.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char kVersionString[] = "1.0.0";

}  // namespace avoc
