#include "util/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace avoc {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
LogSink g_sink;  // guarded by g_sink_mutex; empty -> stderr default

void DefaultSink(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s\n", LogLevelName(level).data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void SetLogLevel(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
  } else {
    DefaultSink(level, message);
  }
}

namespace internal {

std::string FormatLog(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace internal
}  // namespace avoc
