#include "util/log.h"

#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace avoc {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
/// Guarded by g_sink_mutex for swap; emitters copy the pointer under the
/// lock and invoke the sink outside it.  null -> stderr default.
std::shared_ptr<const LogSink> g_sink;

void DefaultSink(LogLevel level, std::string_view message) {
  // stdio locks the stream per call, so lines never interleave mid-write.
  std::fprintf(stderr, "[%s] %.*s\n", LogLevelName(level).data(),
               static_cast<int>(message.size()), message.data());
}

bool EqualsIgnoreCase(std::string_view text, std::string_view lower) {
  if (text.size() != lower.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) != lower[i]) {
      return false;
    }
  }
  return true;
}

/// Applies AVOC_LOG_LEVEL before main() so early logging honours it.
[[maybe_unused]] const bool g_env_level_applied = [] {
  InitLogLevelFromEnv();
  return true;
}();

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  if (EqualsIgnoreCase(text, "debug")) return LogLevel::kDebug;
  if (EqualsIgnoreCase(text, "info")) return LogLevel::kInfo;
  if (EqualsIgnoreCase(text, "warn") || EqualsIgnoreCase(text, "warning")) {
    return LogLevel::kWarn;
  }
  if (EqualsIgnoreCase(text, "error")) return LogLevel::kError;
  if (EqualsIgnoreCase(text, "off") || EqualsIgnoreCase(text, "none")) {
    return LogLevel::kOff;
  }
  if (text.size() == 1 && text[0] >= '0' && text[0] <= '4') {
    return static_cast<LogLevel>(text[0] - '0');
  }
  return std::nullopt;
}

void SetLogSink(LogSink sink) {
  std::shared_ptr<const LogSink> next =
      sink ? std::make_shared<const LogSink>(std::move(sink)) : nullptr;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink.swap(next);
  // next (the old sink) destructs outside emitters' hands only when the
  // last concurrent LogMessage drops its copy.
}

void SetLogLevel(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

std::optional<LogLevel> InitLogLevelFromEnv() {
  const char* value = std::getenv("AVOC_LOG_LEVEL");
  if (value == nullptr) return std::nullopt;
  const std::optional<LogLevel> parsed = ParseLogLevel(value);
  if (parsed.has_value()) SetLogLevel(*parsed);
  return parsed;
}

void LogMessage(LogLevel level, std::string_view message) {
  std::shared_ptr<const LogSink> sink;
  {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    sink = g_sink;
  }
  if (sink != nullptr) {
    (*sink)(level, message);
  } else {
    DefaultSink(level, message);
  }
}

namespace internal {

std::string FormatLog(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace internal
}  // namespace avoc
