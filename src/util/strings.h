// Small string utilities shared by the CSV, JSON and CLI layers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace avoc {

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Splits on every occurrence of `sep` (no merging of empty fields).
/// Splitting "" yields {""} to keep CSV row arity stable.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// ASCII lower-casing (locale-independent).
std::string AsciiToLower(std::string_view s);

/// ASCII upper-casing (locale-independent).
std::string AsciiToUpper(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict double parsing: the whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// Strict integer parsing (base 10, whole string consumed).
Result<int64_t> ParseInt(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace avoc
