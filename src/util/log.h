// Minimal leveled logger.  The middleware runtime logs node lifecycle and
// fault-policy events through this; library code stays silent below WARN.
//
// The logger is intentionally tiny: a global level, a single sink callback,
// and printf-style helpers.  It is thread-safe because the runtime's
// threaded mode logs from worker threads: the level is one atomic, and the
// installed sink is published through a shared_ptr that callers copy under
// a short lock and invoke outside it — a slow sink never blocks SetLogSink,
// and a sink may itself log (the recursive call simply re-reads the
// pointer).  Messages through one sink may interleave across threads; sinks
// needing total order serialize internally (the stderr default relies on
// stdio's own locking).
//
// The initial level comes from the AVOC_LOG_LEVEL environment variable
// ("debug", "info", "warn", "error", "off", or a numeric 0-4) and defaults
// to WARN when unset or unparseable.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace avoc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

std::string_view LogLevelName(LogLevel level);

/// Parses "debug" / "info" / "warn"("warning") / "error" / "off"("none"),
/// case-insensitively, or a numeric level 0-4.  nullopt when unparseable.
std::optional<LogLevel> ParseLogLevel(std::string_view text);

/// Sink receives fully formatted messages (no trailing newline).
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the global sink.  Passing nullptr restores the stderr default.
/// A sink already running on another thread may still be invoked after
/// this returns (callers hold a reference while they emit).
void SetLogSink(LogSink sink);

/// Sets the global minimum level; messages below are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Re-reads AVOC_LOG_LEVEL and applies it; returns the level applied, or
/// nullopt (level untouched) when the variable is unset or unparseable.
/// Runs once automatically at startup; call it again after setenv.
std::optional<LogLevel> InitLogLevelFromEnv();

/// Core logging entry point; prefer the AVOC_LOG_* macros.
void LogMessage(LogLevel level, std::string_view message);

namespace internal {
std::string FormatLog(const char* format, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace internal

}  // namespace avoc

#define AVOC_LOG(level, ...)                                       \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::avoc::GetLogLevel())) {                 \
      ::avoc::LogMessage(level, ::avoc::internal::FormatLog(__VA_ARGS__)); \
    }                                                              \
  } while (false)

#define AVOC_LOG_DEBUG(...) AVOC_LOG(::avoc::LogLevel::kDebug, __VA_ARGS__)
#define AVOC_LOG_INFO(...) AVOC_LOG(::avoc::LogLevel::kInfo, __VA_ARGS__)
#define AVOC_LOG_WARN(...) AVOC_LOG(::avoc::LogLevel::kWarn, __VA_ARGS__)
#define AVOC_LOG_ERROR(...) AVOC_LOG(::avoc::LogLevel::kError, __VA_ARGS__)
