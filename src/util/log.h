// Minimal leveled logger.  The middleware runtime logs node lifecycle and
// fault-policy events through this; library code stays silent below WARN.
//
// The logger is intentionally tiny: a global level, a single sink callback,
// and printf-style helpers.  It is thread-safe (sink invocation is
// serialised) because the runtime's threaded mode logs from worker threads.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace avoc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

std::string_view LogLevelName(LogLevel level);

/// Sink receives fully formatted messages (no trailing newline).
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the global sink.  Passing nullptr restores the stderr default.
void SetLogSink(LogSink sink);

/// Sets the global minimum level; messages below are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Core logging entry point; prefer the AVOC_LOG_* macros.
void LogMessage(LogLevel level, std::string_view message);

namespace internal {
std::string FormatLog(const char* format, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace internal

}  // namespace avoc

#define AVOC_LOG(level, ...)                                       \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::avoc::GetLogLevel())) {                 \
      ::avoc::LogMessage(level, ::avoc::internal::FormatLog(__VA_ARGS__)); \
    }                                                              \
  } while (false)

#define AVOC_LOG_DEBUG(...) AVOC_LOG(::avoc::LogLevel::kDebug, __VA_ARGS__)
#define AVOC_LOG_INFO(...) AVOC_LOG(::avoc::LogLevel::kInfo, __VA_ARGS__)
#define AVOC_LOG_WARN(...) AVOC_LOG(::avoc::LogLevel::kWarn, __VA_ARGS__)
#define AVOC_LOG_ERROR(...) AVOC_LOG(::avoc::LogLevel::kError, __VA_ARGS__)
