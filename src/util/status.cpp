#include "util/status.h"

namespace avoc {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kNoQuorum: return "no_quorum";
    case ErrorCode::kNoMajority: return "no_majority";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status ParseError(std::string message) {
  return Status(ErrorCode::kParseError, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(ErrorCode::kOutOfRange, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status UnsupportedError(std::string message) {
  return Status(ErrorCode::kUnsupported, std::move(message));
}
Status NoQuorumError(std::string message) {
  return Status(ErrorCode::kNoQuorum, std::move(message));
}
Status NoMajorityError(std::string message) {
  return Status(ErrorCode::kNoMajority, std::move(message));
}
Status IoError(std::string message) {
  return Status(ErrorCode::kIoError, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}

}  // namespace avoc
