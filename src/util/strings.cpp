#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace avoc {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return ParseError("empty string is not a number");
  double value = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return ParseError("not a valid number: '" + std::string(s) + "'");
  }
  return value;
}

Result<int64_t> ParseInt(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return ParseError("empty string is not an integer");
  int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return ParseError("not a valid integer: '" + std::string(s) + "'");
  }
  return value;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace avoc
