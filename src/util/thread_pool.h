// A small fixed-size worker pool for sharded batch execution.
//
// MultiGroupEngine fans independent voter groups out across these
// workers; nothing here knows about voting.  The design favours being
// obviously race-free (one mutex, two condition variables, counters
// only touched under the lock) over raw throughput — the unit of work
// is an entire group's batch, so dispatch overhead is noise.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace avoc::util {

class ThreadPool {
 public:
  /// `threads == 0` means one worker per hardware thread (at least one).
  explicit ThreadPool(size_t threads = 0);

  /// Drains queued and running tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Enqueues one task.  Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs body(0) .. body(count-1) across the pool and waits for all of
  /// them.  The caller must ensure distinct indices touch distinct data.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace avoc::util
