// Lightweight status / result types used across the AVOC libraries.
//
// Most of the library reports recoverable failures (malformed VDX documents,
// bad CSV rows, quorum failures, ...) by value rather than by exception, so
// that callers on constrained edge devices can compile with -fno-exceptions
// if they wish.  `Status` carries an error code plus a human-readable
// message; `Result<T>` is a status-or-value union in the spirit of
// std::expected (which is C++23, one standard beyond this project).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace avoc {

/// Coarse error taxonomy shared by all AVOC subsystems.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something out of contract
  kParseError,        ///< malformed JSON / CSV / VDX input
  kNotFound,          ///< lookup miss (key, module id, file)
  kOutOfRange,        ///< index or numeric range violation
  kFailedPrecondition,///< object not in the right state for the call
  kUnsupported,       ///< valid request, feature intentionally unavailable
  kNoQuorum,          ///< vote could not be triggered (too few candidates)
  kNoMajority,        ///< vote triggered but no agreement group won
  kIoError,           ///< filesystem failure
  kInternal,          ///< invariant violation inside the library
};

/// Human-readable name of an error code ("parse_error", ...).
std::string_view ErrorCodeName(ErrorCode code);

/// A success-or-error value.  Cheap to copy on success (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code-name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

// Convenience factories mirroring the ErrorCode enumerators.
Status InvalidArgumentError(std::string message);
Status ParseError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnsupportedError(std::string message);
Status NoQuorumError(std::string message);
Status NoMajorityError(std::string message);
Status IoError(std::string message);
Status InternalError(std::string message);

/// Status-or-value.  On success holds a T; on failure holds a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return 42;`
  Result(T value) : value_(std::move(value)) {}
  /// Implicit from error: `return ParseError("...")`.  Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const { return status_; }

  /// Value access; asserts ok() in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this result is an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ engaged
};

}  // namespace avoc

/// Propagates a non-OK Status from an expression, like absl's RETURN_IF_ERROR.
#define AVOC_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::avoc::Status avoc_status_ = (expr);           \
    if (!avoc_status_.ok()) return avoc_status_;    \
  } while (false)

/// Unwraps a Result<T> into `lhs` or propagates its error status.
#define AVOC_ASSIGN_OR_RETURN(lhs, expr)            \
  AVOC_ASSIGN_OR_RETURN_IMPL_(                      \
      AVOC_STATUS_CONCAT_(avoc_result_, __LINE__), lhs, expr)
#define AVOC_STATUS_CONCAT_INNER_(a, b) a##b
#define AVOC_STATUS_CONCAT_(a, b) AVOC_STATUS_CONCAT_INNER_(a, b)
#define AVOC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()
