// Tiny command-line flag parser used by the example binaries and the
// benchmark harness front-ends.  Supports `--name value`, `--name=value`
// and boolean `--flag` / `--no-flag` forms plus positional arguments.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace avoc {

class CommandLine {
 public:
  /// Parses argv (excluding argv[0]).  Unknown flags are kept and can be
  /// rejected by the caller via UnconsumedFlags().
  static Result<CommandLine> Parse(int argc, const char* const* argv);

  /// String flag with default.
  std::string GetString(std::string_view name, std::string_view fallback) const;

  /// Numeric flags with defaults; malformed values fall back too.
  double GetDouble(std::string_view name, double fallback) const;
  int64_t GetInt(std::string_view name, int64_t fallback) const;

  /// Boolean flag: `--x` => true, `--no-x` => false, else fallback.
  bool GetBool(std::string_view name, bool fallback) const;

  bool HasFlag(std::string_view name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags never queried by any Get*/HasFlag call (catches typos).
  std::vector<std::string> UnconsumedFlags() const;

 private:
  std::map<std::string, std::string, std::less<>> flags_;
  mutable std::map<std::string, bool, std::less<>> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace avoc
