#include "util/cli.h"

#include "util/strings.h"

namespace avoc {

Result<CommandLine> CommandLine::Parse(int argc, const char* const* argv) {
  CommandLine cl;
  for (int i = 0; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      cl.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg.empty()) {
      // "--" terminates flag parsing; the rest is positional.
      for (int j = i + 1; j < argc; ++j) cl.positional_.emplace_back(argv[j]);
      break;
    }
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      cl.flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // bare boolean flag.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      cl.flags_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      cl.flags_[std::string(arg)] = "";
    }
  }
  return cl;
}

std::string CommandLine::GetString(std::string_view name,
                                   std::string_view fallback) const {
  consumed_[std::string(name)] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? std::string(fallback) : it->second;
}

double CommandLine::GetDouble(std::string_view name, double fallback) const {
  consumed_[std::string(name)] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  auto parsed = ParseDouble(it->second);
  return parsed.ok() ? *parsed : fallback;
}

int64_t CommandLine::GetInt(std::string_view name, int64_t fallback) const {
  consumed_[std::string(name)] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  auto parsed = ParseInt(it->second);
  return parsed.ok() ? *parsed : fallback;
}

bool CommandLine::GetBool(std::string_view name, bool fallback) const {
  consumed_[std::string(name)] = true;
  consumed_["no-" + std::string(name)] = true;
  if (flags_.count("no-" + std::string(name))) return false;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty()) return true;
  const std::string lower = AsciiToLower(it->second);
  return lower == "1" || lower == "true" || lower == "yes" || lower == "on";
}

bool CommandLine::HasFlag(std::string_view name) const {
  consumed_[std::string(name)] = true;
  return flags_.count(std::string(name)) > 0;
}

std::vector<std::string> CommandLine::UnconsumedFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (!consumed_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace avoc
