// Deterministic pseudo-random number generation for the simulation
// substrate.  Every scenario generator in src/sim is seeded explicitly so
// experiments replay bit-identically across runs and platforms, which is
// the property the paper's pre-recorded datasets were used for.
//
// We implement xoshiro256++ (Blackman & Vigna) seeded through SplitMix64
// instead of relying on std::mt19937 so that the stream is (a) identical
// across standard-library implementations and (b) cheap on constrained
// edge hardware.
#pragma once

#include <array>
#include <cstdint>

namespace avoc {

/// SplitMix64: tiny 64-bit generator used to expand seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next();

 private:
  uint64_t state_;
};

/// xoshiro256++ PRNG.  Satisfies std::uniform_random_bit_generator, so it
/// can also be used with <random> distributions when cross-platform
/// determinism of the *distribution* is not required.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit state words via SplitMix64(seed).
  explicit Rng(uint64_t seed = 0xA5A5'5A5A'DEAD'BEEFull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Raw 64 random bits.
  uint64_t operator()();

  /// Uniform double in [0, 1).  Uses the top 53 bits.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (deterministic, no libm rounding
  /// surprises in practice across glibc versions at our tolerances).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Derives an independent-stream generator (e.g. one per sensor).
  Rng Fork();

 private:
  std::array<uint64_t, 4> s_;
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace avoc
