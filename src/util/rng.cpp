#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace avoc {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~uint64_t{0} - n + 1) % n;
  for (;;) {
    const uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng((*this)()); }

}  // namespace avoc
