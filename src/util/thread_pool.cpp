#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace avoc::util {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  for (size_t i = 0; i < count; ++i) {
    Submit([&body, i] { body(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace avoc::util
