#include "json/schema.h"

#include <cmath>

#include "json/parse.h"
#include "util/strings.h"

namespace avoc::json {
namespace {

class Validator {
 public:
  Status Run(const Value& schema, const Value& instance,
             const std::string& path) {
    return Check(schema, instance, path);
  }

  ValidationReport TakeReport() { return std::move(report_); }

 private:
  void Violate(const std::string& path, std::string message) {
    report_.violations.push_back(
        SchemaViolation{path.empty() ? "/" : path, std::move(message)});
  }

  static bool TypeMatches(std::string_view type, const Value& v) {
    if (type == "null") return v.is_null();
    if (type == "boolean") return v.is_bool();
    if (type == "number") return v.is_number();
    if (type == "integer") return v.is_number() && v.AsInt().ok();
    if (type == "string") return v.is_string();
    if (type == "array") return v.is_array();
    if (type == "object") return v.is_object();
    return false;
  }

  Status CheckType(const Value& type_spec, const Value& instance,
                   const std::string& path) {
    if (type_spec.is_string()) {
      const std::string type = type_spec.StringOr("");
      if (!TypeMatches(type, instance)) {
        Violate(path, "expected type " + type + ", got " +
                          std::string(TypeName(instance.type())));
      }
      return Status::Ok();
    }
    if (type_spec.is_array()) {
      for (const Value& entry : type_spec.array()) {
        if (!entry.is_string()) {
          return ParseError("schema 'type' array entries must be strings");
        }
        if (TypeMatches(entry.StringOr(""), instance)) return Status::Ok();
      }
      Violate(path, "value matches none of the allowed types");
      return Status::Ok();
    }
    return ParseError("schema 'type' must be a string or array of strings");
  }

  Status Check(const Value& schema, const Value& instance,
               const std::string& path) {
    // Boolean schemas: true accepts everything, false rejects everything.
    if (schema.is_bool()) {
      if (!schema.BoolOr(true)) Violate(path, "schema forbids any value");
      return Status::Ok();
    }
    if (!schema.is_object()) {
      return ParseError("schema must be an object or boolean");
    }

    if (const Value* type_spec = schema.Find("type")) {
      const size_t before = report_.violations.size();
      AVOC_RETURN_IF_ERROR(CheckType(*type_spec, instance, path));
      // A type mismatch makes most other checks meaningless noise.
      if (report_.violations.size() > before) return Status::Ok();
    }

    if (const Value* expected = schema.Find("const")) {
      if (!(*expected == instance)) Violate(path, "value differs from const");
    }

    if (const Value* options = schema.Find("enum")) {
      if (!options->is_array()) {
        return ParseError("schema 'enum' must be an array");
      }
      bool found = false;
      for (const Value& option : options->array()) {
        if (option == instance) {
          found = true;
          break;
        }
      }
      if (!found) Violate(path, "value is not one of the enum options");
    }

    if (const Value* any_of = schema.Find("anyOf")) {
      if (!any_of->is_array() || any_of->array().empty()) {
        return ParseError("schema 'anyOf' must be a non-empty array");
      }
      bool matched = false;
      for (const Value& sub : any_of->array()) {
        Validator trial;
        AVOC_RETURN_IF_ERROR(trial.Run(sub, instance, path));
        if (trial.report_.violations.empty()) {
          matched = true;
          break;
        }
      }
      if (!matched) Violate(path, "value matches no anyOf alternative");
    }

    if (instance.is_number()) {
      const double x = instance.DoubleOr(0);
      if (const Value* bound = schema.Find("minimum")) {
        if (x < bound->DoubleOr(0)) {
          Violate(path, StrFormat("%g is below the minimum %g", x,
                                  bound->DoubleOr(0)));
        }
      }
      if (const Value* bound = schema.Find("maximum")) {
        if (x > bound->DoubleOr(0)) {
          Violate(path, StrFormat("%g exceeds the maximum %g", x,
                                  bound->DoubleOr(0)));
        }
      }
      if (const Value* bound = schema.Find("exclusiveMinimum")) {
        if (x <= bound->DoubleOr(0)) {
          Violate(path, StrFormat("%g is not above %g", x,
                                  bound->DoubleOr(0)));
        }
      }
      if (const Value* bound = schema.Find("exclusiveMaximum")) {
        if (x >= bound->DoubleOr(0)) {
          Violate(path, StrFormat("%g is not below %g", x,
                                  bound->DoubleOr(0)));
        }
      }
    }

    if (instance.is_string()) {
      const size_t length = instance.StringOr("").size();
      if (const Value* bound = schema.Find("minLength")) {
        if (length < static_cast<size_t>(bound->IntOr(0))) {
          Violate(path, "string shorter than minLength");
        }
      }
      if (const Value* bound = schema.Find("maxLength")) {
        if (length > static_cast<size_t>(bound->IntOr(0))) {
          Violate(path, "string longer than maxLength");
        }
      }
    }

    if (instance.is_array()) {
      const Array& items = instance.array();
      if (const Value* bound = schema.Find("minItems")) {
        if (items.size() < static_cast<size_t>(bound->IntOr(0))) {
          Violate(path, "array has fewer than minItems elements");
        }
      }
      if (const Value* bound = schema.Find("maxItems")) {
        if (items.size() > static_cast<size_t>(bound->IntOr(0))) {
          Violate(path, "array has more than maxItems elements");
        }
      }
      if (const Value* item_schema = schema.Find("items")) {
        for (size_t i = 0; i < items.size(); ++i) {
          AVOC_RETURN_IF_ERROR(Check(*item_schema, items[i],
                                     path + "/" + std::to_string(i)));
        }
      }
    }

    if (instance.is_object()) {
      const Object& obj = instance.object();
      if (const Value* required = schema.Find("required")) {
        if (!required->is_array()) {
          return ParseError("schema 'required' must be an array");
        }
        for (const Value& name : required->array()) {
          if (!name.is_string()) {
            return ParseError("schema 'required' entries must be strings");
          }
          if (!obj.contains(name.StringOr(""))) {
            Violate(path, "missing required member '" + name.StringOr("") +
                              "'");
          }
        }
      }
      const Value* properties = schema.Find("properties");
      if (properties != nullptr && !properties->is_object()) {
        return ParseError("schema 'properties' must be an object");
      }
      const Value* additional = schema.Find("additionalProperties");
      for (const auto& [key, member] : obj.entries()) {
        const Value* property_schema =
            properties != nullptr ? properties->Find(key) : nullptr;
        if (property_schema != nullptr) {
          AVOC_RETURN_IF_ERROR(Check(*property_schema, member,
                                     path + "/" + key));
        } else if (additional != nullptr) {
          if (additional->is_bool()) {
            if (!additional->BoolOr(true)) {
              Violate(path + "/" + key, "unexpected member");
            }
          } else {
            AVOC_RETURN_IF_ERROR(Check(*additional, member,
                                       path + "/" + key));
          }
        }
      }
    }
    return Status::Ok();
  }

  ValidationReport report_;

  friend Result<ValidationReport> avoc::json::ValidateSchema(
      const Value& schema, const Value& instance);
};

}  // namespace

std::string ValidationReport::ToString() const {
  std::string out;
  for (const SchemaViolation& violation : violations) {
    out += violation.path + ": " + violation.message + "\n";
  }
  return out;
}

Result<ValidationReport> ValidateSchema(const Value& schema,
                                        const Value& instance) {
  Validator validator;
  AVOC_RETURN_IF_ERROR(validator.Run(schema, instance, ""));
  return validator.TakeReport();
}

Result<ValidationReport> ValidateSchemaText(std::string_view schema_text,
                                            std::string_view instance_text) {
  AVOC_ASSIGN_OR_RETURN(const Value schema, Parse(schema_text));
  AVOC_ASSIGN_OR_RETURN(const Value instance, Parse(instance_text));
  return ValidateSchema(schema, instance);
}

}  // namespace avoc::json
