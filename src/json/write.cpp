#include "json/write.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace avoc::json {
namespace {

void AppendEscaped(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendNumber(double d, std::string& out) {
  if (!std::isfinite(d)) {
    // JSON has no NaN/Infinity; emit null as the least-wrong substitute.
    out += "null";
    return;
  }
  if (d == std::nearbyint(d) && std::abs(d) < 1e15) {
    // Integral value: print without decimal point.
    char buf[32];
    auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), static_cast<int64_t>(d));
    out.append(buf, ptr);
    return;
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  out.append(buf, ptr);
}

class Writer {
 public:
  explicit Writer(const WriteOptions& options) : options_(options) {}

  std::string Run(const Value& value) {
    Append(value, 0);
    return std::move(out_);
  }

 private:
  void Newline(int depth) {
    if (!options_.pretty) return;
    out_.push_back('\n');
    out_.append(static_cast<size_t>(depth) *
                    static_cast<size_t>(options_.indent_width),
                ' ');
  }

  void Append(const Value& value, int depth) {
    switch (value.type()) {
      case Type::kNull:
        out_ += "null";
        break;
      case Type::kBool:
        out_ += value.BoolOr(false) ? "true" : "false";
        break;
      case Type::kNumber:
        AppendNumber(value.DoubleOr(0), out_);
        break;
      case Type::kString:
        AppendEscaped(value.StringOr(""), out_);
        break;
      case Type::kArray: {
        const Array& items = value.array();
        if (items.empty()) {
          out_ += "[]";
          break;
        }
        out_.push_back('[');
        for (size_t i = 0; i < items.size(); ++i) {
          if (i > 0) out_.push_back(',');
          Newline(depth + 1);
          Append(items[i], depth + 1);
        }
        Newline(depth);
        out_.push_back(']');
        break;
      }
      case Type::kObject: {
        const Object& obj = value.object();
        if (obj.empty()) {
          out_ += "{}";
          break;
        }
        out_.push_back('{');
        bool first = true;
        for (const auto& [key, member] : obj.entries()) {
          if (!first) out_.push_back(',');
          first = false;
          Newline(depth + 1);
          AppendEscaped(key, out_);
          out_.push_back(':');
          if (options_.pretty) out_.push_back(' ');
          Append(member, depth + 1);
        }
        Newline(depth);
        out_.push_back('}');
        break;
      }
    }
  }

  WriteOptions options_;
  std::string out_;
};

}  // namespace

std::string Write(const Value& value, const WriteOptions& options) {
  return Writer(options).Run(value);
}

std::string WritePretty(const Value& value) {
  WriteOptions options;
  options.pretty = true;
  return Write(value, options);
}

}  // namespace avoc::json
