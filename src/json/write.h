// JSON serialisation: compact single-line or pretty-printed with
// configurable indentation.  Numbers round-trip exactly (shortest form via
// std::to_chars); integral doubles print without a decimal point so that
// VDX documents look like their hand-written originals.
#pragma once

#include <string>

#include "json/value.h"

namespace avoc::json {

struct WriteOptions {
  /// Pretty-print with newlines and indentation; compact otherwise.
  bool pretty = false;
  int indent_width = 2;
};

/// Serialises `value` to a JSON string.
std::string Write(const Value& value, const WriteOptions& options = {});

/// Shorthand for Write with pretty = true.
std::string WritePretty(const Value& value);

}  // namespace avoc::json
