// Minimal JSON Schema validator (a practical draft-07 subset).
//
// The paper's VDX repository ships "the full schema" of the voting
// definition format; this module makes that schema machine-checkable
// without an external dependency.  Supported keywords:
//
//   type (string or array of strings), enum, const,
//   properties, required, additionalProperties (bool or schema),
//   items (single schema), minItems, maxItems,
//   minimum, maximum, exclusiveMinimum, exclusiveMaximum,
//   minLength, maxLength, anyOf
//
// Unknown keywords are ignored (per JSON Schema's open-world rule), so
// schemas written for full validators keep working here as long as their
// constraints fall in the subset.  Validation failures carry a
// JSON-Pointer-style path to the offending value.
#pragma once

#include <string>
#include <vector>

#include "json/value.h"
#include "util/status.h"

namespace avoc::json {

struct SchemaViolation {
  /// JSON-Pointer-ish location of the offending value ("/params/error").
  std::string path;
  /// Human-readable description of the failed constraint.
  std::string message;
};

struct ValidationReport {
  std::vector<SchemaViolation> violations;
  bool ok() const { return violations.empty(); }
  /// All violations joined as "path: message" lines.
  std::string ToString() const;
};

/// Validates `instance` against `schema`.  Returns a parse error when the
/// schema itself is malformed (e.g. "type" holds a number); otherwise a
/// report listing every violation (empty = valid).
Result<ValidationReport> ValidateSchema(const Value& schema,
                                        const Value& instance);

/// Convenience: parses both documents and validates.  (Named distinctly
/// because json::Value converts implicitly from string literals.)
Result<ValidationReport> ValidateSchemaText(std::string_view schema_text,
                                            std::string_view instance_text);

}  // namespace avoc::json
