// Recursive-descent JSON parser (RFC 8259) with precise error locations.
//
// Accepted extensions, both common in hand-written configuration files and
// present in the paper's own Listing 1 (which ends an object with a
// trailing comma):
//   * trailing commas in arrays and objects,
//   * // line comments and /* block comments */.
// Everything else is strict RFC 8259: no single quotes, no NaN/Infinity
// literals, no unquoted keys.
#pragma once

#include <string_view>

#include "json/value.h"
#include "util/status.h"

namespace avoc::json {

struct ParseOptions {
  bool allow_trailing_commas = true;
  bool allow_comments = true;
  /// Parser recursion limit (arrays/objects nesting).
  int max_depth = 256;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
/// Error messages carry 1-based line:column positions.
Result<Value> Parse(std::string_view text, const ParseOptions& options = {});

}  // namespace avoc::json
