// JSON document model.
//
// VDX voting definitions (§6 of the paper) are JSON documents; this module
// is the in-memory representation they parse into.  It is a small,
// self-contained DOM: a tagged union over null / bool / number / string /
// array / object with checked and defaulted accessors.
//
// Objects preserve insertion order so that serialising a parsed document
// reproduces the author's field order — convenient for diffing VDX files.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.h"

namespace avoc::json {

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

std::string_view TypeName(Type type);

class Value;

/// Insertion-ordered string -> Value map.
class Object {
 public:
  using Entry = std::pair<std::string, Value>;

  Object() = default;

  /// Number of members.
  size_t size() const;
  bool empty() const;

  /// Membership test.
  bool contains(std::string_view key) const;

  /// Pointer to the member's value, or nullptr when absent.
  const Value* find(std::string_view key) const;
  Value* find(std::string_view key);

  /// Inserts or overwrites `key`.
  Value& Set(std::string_view key, Value value);

  /// Access-or-insert-null, like std::map::operator[].
  Value& operator[](std::string_view key);

  /// Removes `key` if present; returns whether it was.
  bool Erase(std::string_view key);

  const std::vector<Entry>& entries() const { return entries_; }

  friend bool operator==(const Object& a, const Object& b);

 private:
  std::vector<Entry> entries_;
};

using Array = std::vector<Value>;

/// A JSON value of any type.
class Value {
 public:
  /// Null by default.
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(int64_t i) : data_(static_cast<double>(i)) {}
  Value(size_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const;

  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Checked accessors: error when the value holds a different type.
  Result<bool> AsBool() const;
  Result<double> AsDouble() const;
  /// Number that must be integral (within 1e-9) and in int64 range.
  Result<int64_t> AsInt() const;
  Result<std::string> AsString() const;

  // Defaulted accessors.
  bool BoolOr(bool fallback) const;
  double DoubleOr(double fallback) const;
  int64_t IntOr(int64_t fallback) const;
  std::string StringOr(std::string_view fallback) const;

  // Container access; asserts the type in debug builds via std::get.
  const Array& array() const { return std::get<Array>(data_); }
  Array& array() { return std::get<Array>(data_); }
  const Object& object() const { return std::get<Object>(data_); }
  Object& object() { return std::get<Object>(data_); }

  /// Object member lookup; nullptr when not an object or key absent.
  const Value* Find(std::string_view key) const;

  /// Path lookup: Get("params", "error") descends nested objects.
  const Value* Get(std::initializer_list<std::string_view> path) const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Builds an object from a brace list: MakeObject({{"a", 1}, {"b", "x"}}).
Object MakeObject(std::initializer_list<std::pair<std::string, Value>> members);

/// Builds an array from a brace list.
Array MakeArray(std::initializer_list<Value> items);

}  // namespace avoc::json
