#include "json/parse.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <string>

namespace avoc::json {
namespace {

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  Result<Value> ParseDocument() {
    SkipTrivia();
    AVOC_ASSIGN_OR_RETURN(Value value, ParseValue(0));
    SkipTrivia();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing content");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    size_t line = 1;
    size_t column = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return avoc::ParseError(what + " at line " + std::to_string(line) +
                            ", column " + std::to_string(column));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipTrivia() {
    for (;;) {
      while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
      if (!options_.allow_comments || AtEnd() || Peek() != '/') return;
      if (pos_ + 1 >= text_.size()) return;
      if (text_[pos_ + 1] == '/') {
        pos_ += 2;
        while (!AtEnd() && Peek() != '\n') ++pos_;
      } else if (text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          ++pos_;
        }
        pos_ = pos_ + 1 < text_.size() ? pos_ + 2 : text_.size();
      } else {
        return;
      }
    }
  }

  Result<Value> ParseValue(int depth) {
    if (depth > options_.max_depth) return Error("nesting too deep");
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        AVOC_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value(std::move(s));
      }
      case 't': return ParseKeyword("true", Value(true));
      case 'f': return ParseKeyword("false", Value(false));
      case 'n': return ParseKeyword("null", Value(nullptr));
      default: return ParseNumber();
    }
  }

  Result<Value> ParseKeyword(std::string_view keyword, Value value) {
    if (text_.substr(pos_, keyword.size()) != keyword) {
      return Error("invalid literal");
    }
    pos_ += keyword.size();
    return value;
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      pos_ = start;
      return Error("invalid number");
    }
    // Integer part: single 0 or non-zero-led digits.
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit expected after decimal point");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit expected in exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    double value = 0.0;
    const char* begin = text_.data() + start;
    const char* end = text_.data() + pos_;
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end) return Error("invalid number");
    return Value(value);
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (!AtEnd()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          AVOC_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate");
            }
            pos_ += 2;
            AVOC_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          --pos_;
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        --pos_;
        return Error("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void AppendUtf8(uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<Value> ParseArray(int depth) {
    ++pos_;  // '['
    Array items;
    SkipTrivia();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    for (;;) {
      SkipTrivia();
      if (options_.allow_trailing_commas && !AtEnd() && Peek() == ']') {
        ++pos_;
        return Value(std::move(items));
      }
      AVOC_ASSIGN_OR_RETURN(Value item, ParseValue(depth + 1));
      items.push_back(std::move(item));
      SkipTrivia();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Value(std::move(items));
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<Value> ParseObject(int depth) {
    ++pos_;  // '{'
    Object obj;
    SkipTrivia();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      SkipTrivia();
      if (options_.allow_trailing_commas && !AtEnd() && Peek() == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      if (AtEnd() || Peek() != '"') return Error("expected object key string");
      AVOC_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipTrivia();
      if (AtEnd() || Peek() != ':') return Error("expected ':' after key");
      ++pos_;
      SkipTrivia();
      AVOC_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      if (obj.contains(key)) {
        return Error("duplicate object key '" + key + "'");
      }
      obj.Set(key, std::move(value));
      SkipTrivia();
      if (AtEnd()) return Error("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  ParseOptions options_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text, const ParseOptions& options) {
  return Parser(text, options).ParseDocument();
}

}  // namespace avoc::json
