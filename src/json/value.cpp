#include "json/value.h"

#include <cmath>

namespace avoc::json {

std::string_view TypeName(Type type) {
  switch (type) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

size_t Object::size() const { return entries_.size(); }
bool Object::empty() const { return entries_.empty(); }

bool Object::contains(std::string_view key) const {
  return find(key) != nullptr;
}

const Value* Object::find(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value* Object::find(std::string_view key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value& Object::Set(std::string_view key, Value value) {
  if (Value* existing = find(key)) {
    *existing = std::move(value);
    return *existing;
  }
  entries_.emplace_back(std::string(key), std::move(value));
  return entries_.back().second;
}

Value& Object::operator[](std::string_view key) {
  if (Value* existing = find(key)) return *existing;
  entries_.emplace_back(std::string(key), Value());
  return entries_.back().second;
}

bool Object::Erase(std::string_view key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

bool operator==(const Object& a, const Object& b) {
  // Order-insensitive comparison: two objects are equal when they contain
  // the same key set with equal values.
  if (a.size() != b.size()) return false;
  for (const auto& [k, v] : a.entries_) {
    const Value* other = b.find(k);
    if (other == nullptr || !(*other == v)) return false;
  }
  return true;
}

Type Value::type() const {
  switch (data_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kNumber;
    case 3: return Type::kString;
    case 4: return Type::kArray;
    case 5: return Type::kObject;
  }
  return Type::kNull;
}

Result<bool> Value::AsBool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  return InvalidArgumentError("expected bool, got " +
                              std::string(TypeName(type())));
}

Result<double> Value::AsDouble() const {
  if (const double* d = std::get_if<double>(&data_)) return *d;
  return InvalidArgumentError("expected number, got " +
                              std::string(TypeName(type())));
}

Result<int64_t> Value::AsInt() const {
  AVOC_ASSIGN_OR_RETURN(const double d, AsDouble());
  const double rounded = std::nearbyint(d);
  if (std::abs(d - rounded) > 1e-9) {
    return InvalidArgumentError("number is not integral");
  }
  if (rounded < -9.2233720368547758e18 || rounded > 9.2233720368547758e18) {
    return OutOfRangeError("number exceeds int64 range");
  }
  return static_cast<int64_t>(rounded);
}

Result<std::string> Value::AsString() const {
  if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
  return InvalidArgumentError("expected string, got " +
                              std::string(TypeName(type())));
}

bool Value::BoolOr(bool fallback) const {
  const bool* b = std::get_if<bool>(&data_);
  return b ? *b : fallback;
}

double Value::DoubleOr(double fallback) const {
  const double* d = std::get_if<double>(&data_);
  return d ? *d : fallback;
}

int64_t Value::IntOr(int64_t fallback) const {
  auto r = AsInt();
  return r.ok() ? *r : fallback;
}

std::string Value::StringOr(std::string_view fallback) const {
  const std::string* s = std::get_if<std::string>(&data_);
  return s ? *s : std::string(fallback);
}

const Value* Value::Find(std::string_view key) const {
  const Object* obj = std::get_if<Object>(&data_);
  return obj ? obj->find(key) : nullptr;
}

const Value* Value::Get(std::initializer_list<std::string_view> path) const {
  const Value* current = this;
  for (std::string_view key : path) {
    if (current == nullptr) return nullptr;
    current = current->Find(key);
  }
  return current;
}

bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }

Object MakeObject(
    std::initializer_list<std::pair<std::string, Value>> members) {
  Object obj;
  for (const auto& [k, v] : members) obj.Set(k, v);
  return obj;
}

Array MakeArray(std::initializer_list<Value> items) { return Array(items); }

}  // namespace avoc::json
