// Per-sensor measurement model.
//
// The paper's testbeds use real hardware (Phidget LUX1000 light sensors,
// BLE beacons); this simulator substitutes a parametric error model per
// sensor so the experiments replay deterministically: a ground-truth
// signal is perturbed by calibration bias, Gaussian noise, slow drift,
// transient spikes, stuck-at faults and dropouts.  Each effect maps to a
// data-quality issue surveyed in the paper's related work.
#pragma once

#include <optional>

#include "util/rng.h"

namespace avoc::sim {

struct SensorParams {
  /// Constant calibration offset (uncalibrated redundant sensors disagree
  /// by roughly this much).
  double bias = 0.0;
  /// Gaussian measurement noise (standard deviation).
  double noise_stddev = 0.0;
  /// Linear drift per round (aging/temperature effects).
  double drift_per_round = 0.0;
  /// Probability of an isolated spike per round.
  double spike_probability = 0.0;
  /// Spike magnitude (added with random sign).
  double spike_magnitude = 0.0;
  /// Probability of returning no reading at all (BLE beacon out of reach).
  double dropout_probability = 0.0;
  /// When >= 0, round from which the sensor freezes at its last value.
  long stuck_from_round = -1;
};

/// One simulated sensor.  Deterministic for a given (params, rng) pair.
class SensorModel {
 public:
  SensorModel(SensorParams params, Rng rng)
      : params_(params), rng_(rng) {}

  const SensorParams& params() const { return params_; }

  /// Produces the reading for `round` given the true value, or nullopt on
  /// dropout.
  std::optional<double> Sample(size_t round, double truth);

 private:
  SensorParams params_;
  Rng rng_;
  std::optional<double> last_value_;
};

}  // namespace avoc::sim
