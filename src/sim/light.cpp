#include "sim/light.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "sim/fault.h"
#include "sim/sensor.h"
#include "util/strings.h"

namespace avoc::sim {
namespace {

/// Calibration offsets and noise floors for the five LUX1000 stand-ins.
/// The spread reproduces the Fig. 6-a envelope: uncalibrated but mutually
/// agreeing sensors roughly 17.8–19.2 klx around an 18.5 klx baseline.
struct SensorCalibration {
  double bias;
  double noise;
};

constexpr SensorCalibration kCalibrations[] = {
    {-680.0, 62.0},  // E1: reads low
    {-90.0, 55.0},   // E2: the best-centred sensor (frequent MNN winner)
    {+620.0, 70.0},  // E3: reads high
    {+350.0, 50.0},  // E4: the module §7 injects the fault into
    {-400.0, 65.0},  // E5
};

}  // namespace

LightScenario::LightScenario(LightScenarioParams params)
    : params_(params) {}

double LightScenario::Truth(size_t round) const {
  // Slow daylight variation plus a gentler secondary harmonic, as clouds
  // and sun angle change over the ~20-minute capture.
  const double phase = static_cast<double>(round) /
                       static_cast<double>(params_.rounds > 0 ? params_.rounds : 1);
  const double primary =
      std::sin(2.0 * std::numbers::pi * params_.daylight_cycles * phase);
  const double secondary =
      0.35 * std::sin(2.0 * std::numbers::pi * 4.7 * phase + 1.3);
  return params_.base_lux +
         params_.daylight_amplitude * (primary + secondary);
}

data::RoundTable LightScenario::MakeReferenceTable() const {
  std::vector<std::string> names;
  names.reserve(params_.sensor_count);
  for (size_t i = 0; i < params_.sensor_count; ++i) {
    names.push_back(StrFormat("E%zu", i + 1));
  }
  data::RoundTable table(std::move(names));

  Rng master(params_.seed);
  std::vector<SensorModel> sensors;
  sensors.reserve(params_.sensor_count);
  const size_t calibration_count =
      sizeof(kCalibrations) / sizeof(kCalibrations[0]);
  for (size_t i = 0; i < params_.sensor_count; ++i) {
    const SensorCalibration& cal = kCalibrations[i % calibration_count];
    SensorParams sp;
    sp.bias = cal.bias;
    sp.noise_stddev = cal.noise;
    // Rare transient glitches: about one per sensor per capture.
    sp.spike_probability = 1e-4;
    sp.spike_magnitude = 700.0;
    sensors.emplace_back(sp, master.Fork());
  }

  for (size_t r = 0; r < params_.rounds; ++r) {
    const double truth = Truth(r);
    std::vector<data::Reading> row;
    row.reserve(params_.sensor_count);
    for (SensorModel& sensor : sensors) {
      row.push_back(sensor.Sample(r, truth));
    }
    // Light sensors on a wired hub do not drop readings; guard anyway.
    (void)table.AppendRound(std::move(row));
  }
  return table;
}

data::RoundTable LightScenario::MakeFaultyTable(size_t fault_from) const {
  data::RoundTable table = MakeReferenceTable();
  (void)InjectBias(table, params_.faulty_module, params_.fault_offset,
                   fault_from);
  return table;
}

data::DatasetMetadata LightScenario::Metadata() const {
  data::DatasetMetadata meta;
  meta.scenario = "uc1-light";
  meta.seed = params_.seed;
  meta.units = "lux";
  meta.sample_rate_hz = params_.sample_rate_hz;
  return meta;
}

}  // namespace avoc::sim
