// UC-2: the BLE-beacon tunnel-positioning scenario (§3, Fig. 3).
//
// Two stacks of nine redundant BLE beacons stand 15 m apart; a robot
// drives slowly (0.09 m/s) in a straight line from stack A to stack B,
// sampling the RSSI of every beacon along the way — 297 measurements per
// beacon in the paper's capture.
//
// The simulator substitutes a log-distance path-loss channel with heavy
// log-normal shadowing, per-beacon transmit-power spread, occasional
// multipath fades and distance-dependent dropouts (the paper's data
// "lacks several values as well as mismatched readings in each stack").
// The resulting tables have the chaotic, hole-ridden character of Fig. 7:
// a single beacon per stack cannot resolve which stack is closer, fusion
// of the nine can.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "data/round_table.h"
#include "util/rng.h"

namespace avoc::sim {

struct BleScenarioParams {
  uint64_t seed = 7;
  size_t beacons_per_stack = 9;
  size_t rounds = 297;

  /// Geometry: stack A at x=0, stack B at x=track_length.
  double track_length_m = 15.0;
  double robot_speed_mps = 0.09;

  /// Channel model.
  double tx_power_dbm = -54.0;      ///< RSSI at 1 m
  double path_loss_exponent = 2.1;  ///< indoor corridor, line of sight
  double shadowing_stddev_db = 7.0; ///< log-normal shadowing
  double beacon_bias_spread_db = 3.0;  ///< per-beacon TX calibration spread
  double multipath_fade_db = 12.0;     ///< depth of occasional fades
  double multipath_probability = 0.06;

  /// Dropout: p = base + slope * (distance / track_length).
  double dropout_base = 0.06;
  double dropout_slope = 0.30;

  /// Receiver sensitivity floor and saturation ceiling.
  double rssi_floor_dbm = -100.0;
  double rssi_ceiling_dbm = -45.0;
};

struct BleDataset {
  data::RoundTable stack_a;  ///< 9 beacon columns A1..A9
  data::RoundTable stack_b;  ///< 9 beacon columns B1..B9
};

class BleScenario {
 public:
  explicit BleScenario(BleScenarioParams params = {});

  const BleScenarioParams& params() const { return params_; }

  /// Robot position (m from stack A) at `round`.
  double RobotPosition(size_t round) const;

  /// Noise-free RSSI at distance `d` (m).
  double ExpectedRssi(double distance_m) const;

  /// Generates both stacks' tables.
  BleDataset Generate() const;

  data::DatasetMetadata Metadata() const;

 private:
  data::RoundTable GenerateStack(double stack_position_m,
                                 std::string_view prefix, Rng& rng) const;

  BleScenarioParams params_;
};

}  // namespace avoc::sim
