#include "sim/fault.h"

#include <algorithm>

#include "util/strings.h"

namespace avoc::sim {
namespace {

Status CheckModule(const data::RoundTable& table, size_t module) {
  if (module >= table.module_count()) {
    return OutOfRangeError(StrFormat("module %zu of %zu", module,
                                     table.module_count()));
  }
  return Status::Ok();
}

}  // namespace

Status InjectBias(data::RoundTable& table, size_t module, double offset,
                  size_t from_round, size_t to_round) {
  AVOC_RETURN_IF_ERROR(CheckModule(table, module));
  const size_t end = std::min(to_round, table.round_count());
  for (size_t r = from_round; r < end; ++r) {
    auto cell = table.At(r, module);
    if (cell.has_value()) *cell += offset;
  }
  return Status::Ok();
}

Status InjectDropout(data::RoundTable& table, size_t module,
                     double probability, Rng& rng) {
  AVOC_RETURN_IF_ERROR(CheckModule(table, module));
  if (probability < 0.0 || probability > 1.0) {
    return InvalidArgumentError("dropout probability must lie in [0,1]");
  }
  for (size_t r = 0; r < table.round_count(); ++r) {
    if (rng.Bernoulli(probability)) {
      table.At(r, module).reset();
    }
  }
  return Status::Ok();
}

Status InjectOutage(data::RoundTable& table, size_t module, size_t from_round,
                    size_t to_round) {
  AVOC_RETURN_IF_ERROR(CheckModule(table, module));
  const size_t end = std::min(to_round, table.round_count());
  for (size_t r = from_round; r < end; ++r) {
    table.At(r, module).reset();
  }
  return Status::Ok();
}

Status InjectSpike(data::RoundTable& table, size_t module, size_t round,
                   double magnitude) {
  AVOC_RETURN_IF_ERROR(CheckModule(table, module));
  if (round >= table.round_count()) {
    return OutOfRangeError(StrFormat("round %zu of %zu", round,
                                     table.round_count()));
  }
  auto cell = table.At(round, module);
  if (cell.has_value()) *cell += magnitude;
  return Status::Ok();
}

Status InjectStuckAt(data::RoundTable& table, size_t module,
                     size_t from_round) {
  AVOC_RETURN_IF_ERROR(CheckModule(table, module));
  if (from_round >= table.round_count()) {
    return OutOfRangeError(StrFormat("round %zu of %zu", from_round,
                                     table.round_count()));
  }
  const data::Reading frozen = table.At(from_round, module);
  for (size_t r = from_round; r < table.round_count(); ++r) {
    table.At(r, module) = frozen;
  }
  return Status::Ok();
}

Status InjectConflict(data::RoundTable& table, size_t first_minority_module,
                      double offset, size_t from_round) {
  if (first_minority_module == 0 ||
      first_minority_module >= table.module_count()) {
    return InvalidArgumentError(
        "conflict split must leave modules on both sides");
  }
  for (size_t m = first_minority_module; m < table.module_count(); ++m) {
    AVOC_RETURN_IF_ERROR(InjectBias(table, m, offset, from_round));
  }
  return Status::Ok();
}

}  // namespace avoc::sim
