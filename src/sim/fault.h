// Post-hoc fault injection on recorded round tables.
//
// The paper's UC-1 error-injection experiment perturbs the *recorded*
// reference dataset ("we injected an artificial outlier sensor, by adding
// +6 lumen to one of the sensors") so that every algorithm sees the same
// faulty values.  These helpers implement that and the other §7 fault
// scenarios (missing values, conflicting groups) as pure table
// transformations.
#pragma once

#include <cstddef>

#include "data/round_table.h"
#include "util/rng.h"
#include "util/status.h"

namespace avoc::sim {

/// Adds `offset` to module `module` in rounds [from_round, to_round).
/// to_round == npos means "to the end".
Status InjectBias(data::RoundTable& table, size_t module, double offset,
                  size_t from_round = 0,
                  size_t to_round = static_cast<size_t>(-1));

/// Drops module readings with probability `probability` per round.
Status InjectDropout(data::RoundTable& table, size_t module,
                     double probability, Rng& rng);

/// Removes every reading of `module` in [from_round, to_round) — a dead
/// sensor.
Status InjectOutage(data::RoundTable& table, size_t module, size_t from_round,
                    size_t to_round = static_cast<size_t>(-1));

/// Adds an isolated spike of `magnitude` at `round`.
Status InjectSpike(data::RoundTable& table, size_t module, size_t round,
                   double magnitude);

/// Freezes `module` at its reading from `from_round` onwards (stuck-at).
Status InjectStuckAt(data::RoundTable& table, size_t module,
                     size_t from_round);

/// Splits the modules into two camps from `from_round` on: modules with
/// index >= `first_minority_module` get `offset` added — a persistent
/// conflicting-results scenario where no absolute majority may exist.
Status InjectConflict(data::RoundTable& table, size_t first_minority_module,
                      double offset, size_t from_round = 0);

}  // namespace avoc::sim
