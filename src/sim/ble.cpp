#include "sim/ble.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/strings.h"

namespace avoc::sim {

BleScenario::BleScenario(BleScenarioParams params) : params_(params) {}

double BleScenario::RobotPosition(size_t round) const {
  // The capture spans the full 15 m track in `rounds` samples; round r
  // maps linearly onto [0, track_length].
  if (params_.rounds <= 1) return 0.0;
  return params_.track_length_m * static_cast<double>(round) /
         static_cast<double>(params_.rounds - 1);
}

double BleScenario::ExpectedRssi(double distance_m) const {
  // Log-distance path loss referenced at 1 m; distances below 0.3 m are
  // clamped (the robot never touches the beacon stack).
  const double d = std::max(distance_m, 0.3);
  return params_.tx_power_dbm -
         10.0 * params_.path_loss_exponent * std::log10(d);
}

data::RoundTable BleScenario::GenerateStack(double stack_position_m,
                                            std::string_view prefix,
                                            Rng& rng) const {
  std::vector<std::string> names;
  names.reserve(params_.beacons_per_stack);
  for (size_t b = 0; b < params_.beacons_per_stack; ++b) {
    names.push_back(StrFormat("%.*s%zu", static_cast<int>(prefix.size()),
                              prefix.data(), b + 1));
  }
  data::RoundTable table(std::move(names));

  // Fixed per-beacon TX calibration offsets.
  std::vector<double> beacon_bias(params_.beacons_per_stack);
  for (double& bias : beacon_bias) {
    bias = rng.Gaussian(0.0, params_.beacon_bias_spread_db);
  }
  std::vector<Rng> beacon_rng;
  beacon_rng.reserve(params_.beacons_per_stack);
  for (size_t b = 0; b < params_.beacons_per_stack; ++b) {
    beacon_rng.push_back(rng.Fork());
  }

  for (size_t r = 0; r < params_.rounds; ++r) {
    const double distance =
        std::abs(RobotPosition(r) - stack_position_m);
    const double mean_rssi = ExpectedRssi(distance);
    const double dropout_p =
        params_.dropout_base +
        params_.dropout_slope * (distance / params_.track_length_m);

    std::vector<data::Reading> row;
    row.reserve(params_.beacons_per_stack);
    for (size_t b = 0; b < params_.beacons_per_stack; ++b) {
      Rng& brng = beacon_rng[b];
      // Unconditional draws keep the stream replay-stable.
      const bool dropped = brng.Bernoulli(dropout_p);
      const double shadow =
          brng.Gaussian(0.0, params_.shadowing_stddev_db);
      const bool faded = brng.Bernoulli(params_.multipath_probability);
      const double fade_depth =
          brng.Uniform(0.3, 1.0) * params_.multipath_fade_db;
      if (dropped) {
        row.push_back(std::nullopt);
        continue;
      }
      double rssi = mean_rssi + beacon_bias[b] + shadow;
      if (faded) rssi -= fade_depth;
      rssi = std::clamp(rssi, params_.rssi_floor_dbm,
                        params_.rssi_ceiling_dbm);
      // Receivers report whole-dB RSSI values.
      row.emplace_back(std::round(rssi));
    }
    (void)table.AppendRound(std::move(row));
  }
  return table;
}

BleDataset BleScenario::Generate() const {
  Rng master(params_.seed);
  Rng rng_a = master.Fork();
  Rng rng_b = master.Fork();
  BleDataset dataset;
  dataset.stack_a = GenerateStack(0.0, "A", rng_a);
  dataset.stack_b = GenerateStack(params_.track_length_m, "B", rng_b);
  return dataset;
}

data::DatasetMetadata BleScenario::Metadata() const {
  data::DatasetMetadata meta;
  meta.scenario = "uc2-ble";
  meta.seed = params_.seed;
  meta.units = "dBm";
  // 297 samples over (15 m / 0.09 m/s) seconds.
  const double duration_s =
      params_.track_length_m / std::max(params_.robot_speed_mps, 1e-9);
  meta.sample_rate_hz = static_cast<double>(params_.rounds) / duration_s;
  return meta;
}

}  // namespace avoc::sim
