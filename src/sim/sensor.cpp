#include "sim/sensor.h"

namespace avoc::sim {

std::optional<double> SensorModel::Sample(size_t round, double truth) {
  // Draw the random effects unconditionally so the stream position does
  // not depend on earlier outcomes: replaying a prefix stays bit-identical.
  const bool dropped = rng_.Bernoulli(params_.dropout_probability);
  const double noise = rng_.Gaussian(0.0, params_.noise_stddev);
  const bool spiked = rng_.Bernoulli(params_.spike_probability);
  const bool spike_up = rng_.Bernoulli(0.5);

  if (params_.stuck_from_round >= 0 &&
      round >= static_cast<size_t>(params_.stuck_from_round)) {
    return last_value_;  // frozen at the last emitted value (or missing)
  }
  if (dropped) return std::nullopt;

  double value = truth + params_.bias +
                 params_.drift_per_round * static_cast<double>(round) + noise;
  if (spiked) {
    value += spike_up ? params_.spike_magnitude : -params_.spike_magnitude;
  }
  last_value_ = value;
  return value;
}

}  // namespace avoc::sim
