// UC-1: the smart-building sunlight detection scenario (§3, Fig. 1).
//
// The paper records 10,000 rounds of concurrent measurements from 5 light
// sensors polling at 8 samples/s (1250 s of data).  We regenerate an
// equivalent reference dataset synthetically: a slowly varying sunlight
// level around ~18.5 klx modulated over the capture window, plus a
// per-sensor error model (calibration bias, Gaussian noise, rare spikes)
// calibrated so the raw traces span the ~17–20 klx envelope of Fig. 6-a.
//
// The error-injection experiment of §7 ("adding +6 lumen to one of the
// sensors", i.e. +6 in the figure's ×1000-lumen axis units) is exposed as
// MakeFaultyTable().
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "data/round_table.h"

namespace avoc::sim {

struct LightScenarioParams {
  uint64_t seed = 42;
  size_t sensor_count = 5;
  size_t rounds = 10000;
  double sample_rate_hz = 8.0;

  /// Baseline sunlight level (lux).
  double base_lux = 18500.0;
  /// Amplitude of the slow daylight variation over the capture window.
  double daylight_amplitude = 450.0;
  /// Periods of the daylight variation across the whole capture.
  double daylight_cycles = 1.5;

  /// The faulty-sensor experiment: which module and what offset.
  size_t faulty_module = 3;  // "E4"
  double fault_offset = 6000.0;
};

class LightScenario {
 public:
  explicit LightScenario(LightScenarioParams params = {});

  const LightScenarioParams& params() const { return params_; }

  /// Ground-truth sunlight level at `round`.
  double Truth(size_t round) const;

  /// The clean reference dataset (modules named E1..E5).
  data::RoundTable MakeReferenceTable() const;

  /// Reference dataset with the +offset fault injected on faulty_module
  /// from round `fault_from` on (default: the whole capture, as in §7).
  data::RoundTable MakeFaultyTable(size_t fault_from = 0) const;

  /// Metadata sidecar describing this generation.
  data::DatasetMetadata Metadata() const;

 private:
  LightScenarioParams params_;
};

}  // namespace avoc::sim
