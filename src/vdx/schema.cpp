#include "vdx/schema.h"

#include "json/parse.h"

namespace avoc::vdx {

std::string_view VdxJsonSchema() {
  // Keep in sync with docs/vdx.schema.json (tested by vdx_schema_test).
  static constexpr char kSchema[] = R"({
  "$schema": "http://json-schema.org/draft-07/schema#",
  "title": "VDX voting definition",
  "type": "object",
  "required": ["algorithm_name"],
  "additionalProperties": false,
  "properties": {
    "algorithm_name": { "type": "string", "minLength": 1 },
    "value_type": { "enum": ["NUMERIC", "CATEGORICAL"] },
    "quorum": { "enum": ["ANY", "COUNT", "PERCENT", "UNTIL"] },
    "quorum_percentage": {
      "type": "number", "exclusiveMinimum": 0, "maximum": 100
    },
    "quorum_count": { "type": "integer", "minimum": 1 },
    "exclusion": { "enum": ["NONE", "STDDEV", "MAD"] },
    "exclusion_threshold": { "type": "number", "minimum": 0 },
    "history": {
      "enum": ["NONE", "STANDARD", "MODULE_ELIMINATION", "SDT", "HYBRID"]
    },
    "params": {
      "type": "object",
      "additionalProperties": { "type": ["number", "string"] }
    },
    "collation": {
      "enum": ["WEIGHTED_AVERAGE", "MEAN_NEAREST_NEIGHBOR",
               "WEIGHTED_MEDIAN", "MAJORITY"]
    },
    "bootstrapping": { "type": "boolean" },
    "clustering_always": { "type": "boolean" },
    "fault_policy": {
      "type": "object",
      "additionalProperties": false,
      "properties": {
        "on_no_quorum": {
          "enum": ["ACCEPT", "EMIT_NOTHING", "REVERT_LAST", "RAISE"]
        },
        "on_no_majority": {
          "enum": ["ACCEPT", "EMIT_NOTHING", "REVERT_LAST", "RAISE"]
        }
      }
    }
  }
})";
  return kSchema;
}

Result<json::ValidationReport> ValidateAgainstSchema(
    const json::Value& document) {
  AVOC_ASSIGN_OR_RETURN(const json::Value schema,
                        json::Parse(VdxJsonSchema()));
  return json::ValidateSchema(schema, document);
}

Result<json::ValidationReport> ValidateTextAgainstSchema(
    std::string_view document_text) {
  AVOC_ASSIGN_OR_RETURN(const json::Value document,
                        json::Parse(document_text));
  return ValidateAgainstSchema(document);
}

}  // namespace avoc::vdx
